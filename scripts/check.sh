#!/usr/bin/env bash
# The repo's full static + dynamic checking pass:
#
#   1. warnings-as-errors build of everything (LVM_WERROR=ON);
#   2. clang-tidy over src/ (skipped with a notice if clang-tidy is not
#      installed -- the container image does not ship it);
#   3. the whole test suite under AddressSanitizer + UBSan;
#   4. the threaded tests (parallel engine, race detector, stress) under
#      ThreadSanitizer, selected by the `threaded` ctest label;
#   5. (--racecheck-only) the guest race detector suite, exporting its
#      JSON report to bench-results/RACE_REPORT.json for the CI artifact;
#   6. (--static-only) the repo's own static checkers: build lvm-lint and run
#      it over src/ with a JSON report at bench-results/LINT_REPORT.json, and
#      -- when the compiler is clang -- a -Wthread-safety -Werror build of the
#      whole tree (LVM_THREAD_SAFETY=ON);
#   7. (--wal-only) the durable-WAL suite (crash matrix + property test)
#      under ASan+UBSan, collecting every cell's lvm.walbox.v1 post-mortem
#      dump to bench-results/walbox/ and validating each as strict JSON;
#   8. (--analyze-only) lvm-analyze's whole-program lock-order, blocking-
#      context, and WAL persist-ordering analysis over src/, exporting
#      bench-results/ANALYSIS_REPORT.json + LOCKGRAPH.json (+ .dot), then
#      the runtime witness cross-check proving static ⊇ dynamic;
#   9. (--trace-only) the provenance-waterfall pass: the waterfall suite,
#      a sampled instrumented bench run plus lvm-trace's durable demo, each
#      export validated as strict JSON and rendered (telescoping checked)
#      by lvm-trace, collected under bench-results/.
#
# Usage: scripts/check.sh [mode]; modes are listed in the table at the
# bottom of this file — usage text and dispatch are both generated from it.
# Build trees go under build-check/ (kept out of git by .gitignore).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_werror_build() {
  echo "== [1/4] -Werror build =="
  cmake -B build-check/werror -S . -DLVM_WERROR=ON >/dev/null
  cmake --build build-check/werror -j "${jobs}"
}

run_tidy() {
  echo "== [2/4] clang-tidy =="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping lint (CI runs it)."
    return 0
  fi
  # The -Werror tree already exported compile_commands.json.
  local db="build-check/werror"
  [ -f "${db}/compile_commands.json" ] || {
    cmake -B "${db}" -S . >/dev/null
  }
  # Capture the exit status explicitly: under `set -e` a failing linter at
  # the end of a function body would otherwise be swallowed by the caller's
  # `&&` chain context in some bash versions -- fail loudly instead.
  local files status=0
  files="$(find src -name '*.cc' | wc -l | tr -d ' ')"
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${db}" -quiet "src/.*\.cc$" || status=$?
  else
    find src -name '*.cc' -print0 |
      xargs -0 -P "${jobs}" -n 1 clang-tidy -p "${db}" --quiet || status=$?
  fi
  if [ "${status}" -ne 0 ]; then
    echo "clang-tidy: FAILED (exit ${status}) across ${files} files" >&2
    return "${status}"
  fi
  echo "clang-tidy: linted ${files} files"
}

run_asan_tests() {
  echo "== [3/4] ASan+UBSan test suite =="
  cmake -B build-check/asan -S . \
    -DLVM_SANITIZE=address,undefined -DLVM_WERROR=ON >/dev/null
  cmake --build build-check/asan -j "${jobs}"
  # halt_on_error: a UBSan report must fail the test, not scroll past.
  ( cd build-check/asan &&
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ASAN_OPTIONS=detect_leaks=1 \
    ctest --output-on-failure -j "${jobs}" )
}

run_tsan_tests() {
  echo "== [4/4] TSan threaded tests =="
  # Only the threaded binaries run real threads; TSan and ASan are mutually
  # exclusive, so they get their own tree. Selection is by the `threaded`
  # ctest LABEL (tests/CMakeLists.txt), so a new threaded suite is picked up
  # by marking it THREADED instead of growing a name regex here.
  cmake -B build-check/tsan -S . \
    -DLVM_SANITIZE=thread -DLVM_WERROR=ON >/dev/null
  cmake --build build-check/tsan -j "${jobs}"
  ( cd build-check/tsan &&
    TSAN_OPTIONS=halt_on_error=1 \
    ctest --output-on-failure -j "${jobs}" -L threaded )
}

run_racecheck() {
  echo "== racecheck: guest happens-before race detection =="
  cmake -B build-check/racecheck -S . -DLVM_WERROR=ON >/dev/null
  cmake --build build-check/racecheck -j "${jobs}" --target racecheck_test lvm-inspect
  mkdir -p bench-results
  local report="${PWD}/bench-results/RACE_REPORT.json"
  ( cd build-check/racecheck &&
    LVM_RACE_REPORT="${report}" \
    ctest --output-on-failure -j "${jobs}" -R '^RaceCheck' )
  [ -s "${report}" ] || {
    echo "racecheck: report not written to ${report}" >&2
    return 1
  }
  # The report claims to be strict JSON; lvm-inspect holds it to that.
  ./build-check/racecheck/tools/lvm-inspect --validate "${report}"
  echo "racecheck: report at ${report}"
}

run_walcheck() {
  echo "== walcheck: durable-WAL crash matrix + property test (ASan+UBSan) =="
  # The crash matrix forks and kills children mid-flush; running it under
  # ASan proves the recovery path is clean even on the torn images the
  # children leave behind. Reuses the asan tree when it already exists.
  cmake -B build-check/asan -S . \
    -DLVM_SANITIZE=address,undefined -DLVM_WERROR=ON >/dev/null
  cmake --build build-check/asan -j "${jobs}" \
    --target wal_crash_matrix_test wal_property_test lvm-inspect
  local walbox_dir="${PWD}/bench-results/walbox"
  rm -rf "${walbox_dir}"
  mkdir -p "${walbox_dir}"
  ( cd build-check/asan &&
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ASAN_OPTIONS=detect_leaks=1 \
    LVM_WAL_ARTIFACT_DIR="${walbox_dir}" \
    ctest --output-on-failure -j "${jobs}" -R '^Wal' )
  # Every crash cell leaves a post-mortem dump; hold each to strict JSON.
  local dumps
  dumps="$(find "${walbox_dir}" -name '*.walbox.json' | wc -l | tr -d ' ')"
  if [ "${dumps}" -eq 0 ]; then
    echo "walcheck: no walbox dumps collected in ${walbox_dir}" >&2
    return 1
  fi
  find "${walbox_dir}" -name '*.walbox.json' -print0 |
    xargs -0 ./build-check/asan/tools/lvm-inspect --validate
  echo "walcheck: ${dumps} walbox dumps validated at ${walbox_dir}"
}

run_static() {
  echo "== staticcheck: lvm-lint + thread-safety analysis =="
  # Thread-safety analysis is a Clang feature; with GCC the annotations
  # compile to nothing, so only a clang build actually checks them.
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B build-check/static -S . \
      -DCMAKE_CXX_COMPILER=clang++ -DLVM_THREAD_SAFETY=ON -DLVM_WERROR=ON >/dev/null
  else
    echo "clang++ not installed; skipping -Wthread-safety (CI runs it)."
    cmake -B build-check/static -S . -DLVM_WERROR=ON >/dev/null
  fi
  cmake --build build-check/static -j "${jobs}"
  mkdir -p bench-results
  local report="${PWD}/bench-results/LINT_REPORT.json"
  # lvm-lint exits nonzero (per-rule codes, see tools/lvm_lint/lint.h) on any
  # violation; `set -e` turns that into a failed pass.
  ./build-check/static/tools/lvm-lint --json="${report}" src
  ./build-check/static/tools/lvm-inspect --validate "${report}"
  echo "staticcheck: report at ${report}"
}

run_analyze() {
  echo "== deadlockcheck: lvm-analyze + lock-order witness cross-check =="
  cmake -B build-check/analyze -S . -DLVM_WERROR=ON >/dev/null
  cmake --build build-check/analyze -j "${jobs}" \
    --target lvm-analyze lvm-inspect lockgraph_witness_test
  mkdir -p bench-results
  local report="${PWD}/bench-results/ANALYSIS_REPORT.json"
  local lockgraph="${PWD}/bench-results/LOCKGRAPH.json"
  # lvm-analyze exits nonzero (per-rule codes, see tools/lvm_analyze/
  # analyze.h) on any finding; `set -e` turns that into a failed pass.
  ./build-check/analyze/tools/lvm-analyze \
    --json="${report}" --lockgraph="${lockgraph}" \
    --graph-dot="${PWD}/bench-results/LOCKGRAPH.dot" src
  ./build-check/analyze/tools/lvm-inspect --validate "${report}" "${lockgraph}"
  # The dynamic half: drive real concurrency with the witness enabled and
  # prove every observed edge is in the static graph.
  ( cd build-check/analyze &&
    ctest --output-on-failure -j "${jobs}" -R '^LockGraphWitness' )
  echo "deadlockcheck: reports at ${report} and ${lockgraph}"
}

run_tracecheck() {
  echo "== tracecheck: provenance waterfall suite + sampled artifacts =="
  cmake -B build-check/trace -S . -DLVM_WERROR=ON >/dev/null
  cmake --build build-check/trace -j "${jobs}" \
    --target waterfall_test bench_fig10_logged_writes lvm-trace lvm-inspect
  ( cd build-check/trace &&
    ctest --output-on-failure -j "${jobs}" -R '^Waterfall' )
  mkdir -p bench-results
  local bench_trace="${PWD}/bench-results/WATERFALL_fig10.json"
  local demo_trace="${PWD}/bench-results/WATERFALL_demo.json"
  # A sampled instrumented bench run (sim log path) and lvm-trace's own
  # durable demo (all six stages through WAL commit + replay-on-open).
  ./build-check/trace/bench/bench_fig10_logged_writes --waterfall="${bench_trace}" \
    >/dev/null
  ./build-check/trace/tools/lvm-trace --demo-export "${demo_trace}"
  ./build-check/trace/tools/lvm-inspect --validate "${bench_trace}" "${demo_trace}"
  # Render both: lvm-trace exits nonzero if any record's per-stage deltas
  # fail to telescope to its end-to-end latency.
  ./build-check/trace/tools/lvm-trace --top=3 "${bench_trace}" "${demo_trace}" >/dev/null
  echo "tracecheck: traces at ${bench_trace} and ${demo_trace}"
}

# Mode table: flag, command, one-line summary. The usage message and the
# dispatch below are both generated from this table, so adding a pass is one
# row here (plus its run_* function above) and nothing else.
mode_table() {
  cat <<'EOF'
--tidy-only|run_werror_build && run_tidy|-Werror build + clang-tidy over src/
--asan-only|run_asan_tests|full test suite under ASan+UBSan
--tsan-only|run_tsan_tests|threaded tests under TSan
--racecheck-only|run_racecheck|guest race-detector suite + RACE_REPORT.json
--static-only|run_static|lvm-lint + clang -Wthread-safety
--wal-only|run_walcheck|durable-WAL crash matrix + walbox dumps
--analyze-only|run_analyze|lvm-analyze lock/WAL analysis + witness cross-check
--trace-only|run_tracecheck|waterfall suite + validated lvm.waterfall.v1 artifacts
all|run_werror_build && run_tidy && run_static && run_analyze && run_asan_tests && run_tsan_tests|every pass above (except racecheck/walcheck, which CI runs)
EOF
}

usage() {
  echo "usage: $0 [mode]" >&2
  while IFS='|' read -r flag _ summary; do
    printf '  %-17s %s\n' "${flag}" "${summary}" >&2
  done < <(mode_table)
  exit 2
}

dispatch=""
while IFS='|' read -r flag cmd _; do
  if [ "${mode}" = "${flag}" ]; then
    dispatch="${cmd}"
    break
  fi
done < <(mode_table)
[ -n "${dispatch}" ] || usage
eval "${dispatch}"
echo "check.sh: all requested passes clean"
