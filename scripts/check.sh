#!/usr/bin/env bash
# The repo's full static + dynamic checking pass:
#
#   1. warnings-as-errors build of everything (LVM_WERROR=ON);
#   2. clang-tidy over src/ (skipped with a notice if clang-tidy is not
#      installed -- the container image does not ship it);
#   3. the whole test suite under AddressSanitizer + UBSan;
#   4. the threaded tests (parallel engine, stress) under ThreadSanitizer.
#
# Usage: scripts/check.sh [--tidy-only|--asan-only|--tsan-only]
# Build trees go under build-check/ (kept out of git by .gitignore).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_werror_build() {
  echo "== [1/4] -Werror build =="
  cmake -B build-check/werror -S . -DLVM_WERROR=ON >/dev/null
  cmake --build build-check/werror -j "${jobs}"
}

run_tidy() {
  echo "== [2/4] clang-tidy =="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping lint (CI runs it)."
    return 0
  fi
  # The -Werror tree already exported compile_commands.json.
  local db="build-check/werror"
  [ -f "${db}/compile_commands.json" ] || {
    cmake -B "${db}" -S . >/dev/null
  }
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${db}" -quiet "src/.*\.cc$"
  else
    find src -name '*.cc' -print0 |
      xargs -0 -P "${jobs}" -n 1 clang-tidy -p "${db}" --quiet
  fi
}

run_asan_tests() {
  echo "== [3/4] ASan+UBSan test suite =="
  cmake -B build-check/asan -S . \
    -DLVM_SANITIZE=address,undefined -DLVM_WERROR=ON >/dev/null
  cmake --build build-check/asan -j "${jobs}"
  # halt_on_error: a UBSan report must fail the test, not scroll past.
  ( cd build-check/asan &&
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ASAN_OPTIONS=detect_leaks=1 \
    ctest --output-on-failure -j "${jobs}" )
}

run_tsan_tests() {
  echo "== [4/4] TSan threaded tests =="
  # The parallel engine is the only subsystem that runs real threads; TSan
  # and ASan are mutually exclusive, so it gets its own tree and only the
  # threaded test binaries.
  cmake -B build-check/tsan -S . \
    -DLVM_SANITIZE=thread -DLVM_WERROR=ON >/dev/null
  cmake --build build-check/tsan -j "${jobs}" \
    --target par_determinism_test par_schedule_fuzz_test stress_test
  ( cd build-check/tsan &&
    TSAN_OPTIONS=halt_on_error=1 \
    ctest --output-on-failure -j "${jobs}" -R '^ParDeterminism|^ParScheduleFuzz|^Parallel' )
}

case "${mode}" in
  --tidy-only) run_werror_build && run_tidy ;;
  --asan-only) run_asan_tests ;;
  --tsan-only) run_tsan_tests ;;
  all)         run_werror_build && run_tidy && run_asan_tests && run_tsan_tests ;;
  *) echo "usage: $0 [--tidy-only|--asan-only|--tsan-only]" >&2; exit 2 ;;
esac
echo "check.sh: all requested passes clean"
