#!/usr/bin/env bash
# Runs the reproduction benchmarks and collects machine-readable results.
#
# Each bench binary accepts --json=PATH (structured rows mirroring its
# printed table), --profile=PATH (an lvm.profile.v1 cycle-attribution
# profile of a representative instrumented run), and --waterfall=PATH (an
# lvm.waterfall.v1 per-record provenance trace of the same run, rendered
# with tools/lvm-trace); bench_fig11_overload additionally accepts
# --trace=PATH and writes a Chrome trace of an instrumented overload run
# (load it at ui.perfetto.dev or chrome://tracing).
#
# Usage: scripts/bench.sh [--all] [--out DIR]
#   default: the paper's figures and tables (fig7-12, table2, table3)
#   --all:   also the ablations, the consistency comparison, and the
#            real-host google-benchmark suite
#   --out:   output directory for BENCH_<name>.json / TRACE_<name>.json /
#            PROFILE_<name>.json / WATERFALL_<name>.json
#            (default: bench-results/)
#
# Builds the bench binaries first if they are missing. A failing bench does
# not stop the suite: its partial artifacts are removed, the remaining
# benches still run, and the script exits nonzero listing every failure —
# so CI never diffs a partial JSON as if it were a result.
set -euo pipefail
cd "$(dirname "$0")/.."

run_all=0
out_dir="bench-results"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --all) run_all=1 ;;
    --out) out_dir="$2"; shift ;;
    *) echo "usage: scripts/bench.sh [--all] [--out DIR]" >&2; exit 2 ;;
  esac
  shift
done

# The paper's headline figures and tables.
benches=(
  bench_table2_machine
  bench_table3_rvm
  bench_fig7_checkpointing
  bench_fig8_writes
  bench_fig9_deferred_copy
  bench_fig10_logged_writes
  bench_fig11_overload
  bench_fig12_overload_events
  bench_wal_commit
)
if [[ "${run_all}" -eq 1 ]]; then
  benches+=(
    bench_ablation_onchip
    bench_ablation_fifo
    bench_consistency
    bench_ablation_pageprotect
    bench_ablation_conservative
    bench_ablation_msync
    bench_ablation_txlen
    bench_ablation_engine
    bench_parallel_scaling
    bench_hostlvm
  )
fi

jobs="$(nproc 2>/dev/null || echo 4)"
if [[ ! -d build ]]; then
  cmake -B build -S . >/dev/null
fi
cmake --build build -j "${jobs}" --target "${benches[@]}" lvm-inspect

mkdir -p "${out_dir}"

# BENCH_<short>.json: the leading fig/table number identifies the bench,
# so bench_fig11_overload -> BENCH_fig11.json; others keep the full stem.
short_name() {
  local stem="${1#bench_}"
  case "${stem}" in
    fig[0-9]*_*) echo "${stem%%_*}" ;;
    table[0-9]*_*) echo "${stem%%_*}" ;;
    *) echo "${stem}" ;;
  esac
}

failures=()
for bench in "${benches[@]}"; do
  short="$(short_name "${bench}")"
  args=("--json=${out_dir}/BENCH_${short}.json" "--profile=${out_dir}/PROFILE_${short}.json"
        "--waterfall=${out_dir}/WATERFALL_${short}.json")
  if [[ "${bench}" == bench_fig11_overload ]]; then
    args+=("--trace=${out_dir}/TRACE_${short}.json")
  fi
  echo "== ${bench} =="
  if ! "./build/bench/${bench}" "${args[@]}"; then
    # Partial artifacts from a failed bench must not survive: downstream
    # diffing would mistake them for results.
    rm -f "${out_dir}/BENCH_${short}.json" "${out_dir}/PROFILE_${short}.json" \
          "${out_dir}/TRACE_${short}.json" "${out_dir}/WATERFALL_${short}.json"
    failures+=("${bench}")
    continue
  fi
  # Also drop copies at the repo root: CI diffing and the paper-claims
  # tooling read BENCH_<name>.json from there, and the profile artifact
  # travels next to the table it attributes.
  cp "${out_dir}/BENCH_${short}.json" "BENCH_${short}.json"
  cp "${out_dir}/PROFILE_${short}.json" "PROFILE_${short}.json"
done

# Every artifact this script emitted claims to be strict JSON; hold it to
# that (lvm-inspect --validate exits nonzero on the first offender). The
# waterfall traces stay in ${out_dir} — unlike BENCH_/PROFILE_ they carry
# wall-clock latencies and are not regression-diffed, so no root copies.
./build/tools/lvm-inspect --validate "${out_dir}"/BENCH_*.json "${out_dir}"/TRACE_*.json \
  "${out_dir}"/PROFILE_*.json "${out_dir}"/WATERFALL_*.json

echo "results in ${out_dir}/ (copies at repo root):"
ls -l "${out_dir}"

if [[ "${#failures[@]}" -gt 0 ]]; then
  echo "FAILED benches: ${failures[*]}" >&2
  exit 1
fi
