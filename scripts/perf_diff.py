#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json benchmark tables.

Compares a directory of freshly produced bench results against the committed
baselines at the repo root (or any other baseline directory). Rows are
matched by index -- the benches are deterministic sweeps, so row order is
part of the contract. Every numeric metric in a baseline row must match the
fresh value within a relative tolerance; string fields must match exactly.

Host wall-clock fields (any key ending in "wall_ms") are ignored: they
measure the machine running the suite, not the simulated machine, and are
the one legitimately noisy axis.

Usage:
  scripts/perf_diff.py --baseline-dir . --new-dir bench-results \
      [--tolerance 0.02] [--metric-tolerance speedup=0.05] \
      [--report perf_diff.json]

Exit codes: 0 in tolerance, 1 regression (or missing/broken results),
2 usage error.
"""

import argparse
import glob
import json
import os
import sys

# Mirrors src/obs/schema_ids.h kPerfDiffSchema (lvm-lint rule 13 scopes the
# single-definition rule to the C++ tree; this is the Python mirror).
PERF_DIFF_SCHEMA = "lvm.perfdiff.v1"

DEFAULT_TOLERANCE = 0.02


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load_table(path):
    with open(path, "r", encoding="utf-8") as f:
        table = json.load(f)
    if not isinstance(table, dict) or not isinstance(table.get("rows"), list):
        raise ValueError("not a bench table (missing rows array)")
    return table


def metric_tolerance(key, default, overrides):
    return overrides.get(key, default)


def compare_tables(name, baseline, fresh, default_tol, overrides):
    """Returns a list of violation dicts (empty when in tolerance)."""
    violations = []
    base_rows = baseline["rows"]
    new_rows = fresh["rows"]
    if len(base_rows) != len(new_rows):
        violations.append({
            "kind": "row-count",
            "message": f"{name}: {len(base_rows)} baseline rows vs {len(new_rows)} fresh rows",
        })
        return violations
    for index, (base_row, new_row) in enumerate(zip(base_rows, new_rows)):
        for key, base_value in base_row.items():
            if key.endswith("wall_ms"):
                continue  # Host time, not simulated time.
            if key not in new_row:
                violations.append({
                    "kind": "missing-metric",
                    "row": index,
                    "metric": key,
                    "message": f"{name} row {index}: metric {key} missing from fresh results",
                })
                continue
            new_value = new_row[key]
            if is_number(base_value) and is_number(new_value):
                tol = metric_tolerance(key, default_tol, overrides)
                if base_value == 0:
                    in_tolerance = new_value == 0
                    rel = None if in_tolerance else float("inf")
                else:
                    rel = abs(new_value - base_value) / abs(base_value)
                    in_tolerance = rel <= tol
                if not in_tolerance:
                    violations.append({
                        "kind": "regression",
                        "row": index,
                        "metric": key,
                        "baseline": base_value,
                        "fresh": new_value,
                        "relative_delta": rel,
                        "tolerance": tol,
                        "message": (f"{name} row {index}: {key} moved "
                                    f"{base_value} -> {new_value} "
                                    f"(|delta| {rel:.4f} > tolerance {tol})"),
                    })
            elif base_value != new_value:
                violations.append({
                    "kind": "field-mismatch",
                    "row": index,
                    "metric": key,
                    "message": (f"{name} row {index}: {key} changed "
                                f"{base_value!r} -> {new_value!r}"),
                })
    return violations


def parse_metric_tolerances(specs):
    overrides = {}
    for spec in specs:
        key, sep, frac = spec.partition("=")
        if not sep or not key:
            raise argparse.ArgumentTypeError(
                f"--metric-tolerance expects NAME=FRACTION, got {spec!r}")
        overrides[key] = float(frac)
    return overrides


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff fresh BENCH_*.json results against committed baselines.")
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--new-dir", required=True)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="default relative tolerance per metric "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--metric-tolerance", action="append", default=[],
                        metavar="NAME=FRACTION",
                        help="per-metric tolerance override (repeatable)")
    parser.add_argument("--report", help="write an lvm.perfdiff.v1 JSON report here")
    args = parser.parse_args(argv)

    try:
        overrides = parse_metric_tolerances(args.metric_tolerance)
    except (argparse.ArgumentTypeError, ValueError) as err:
        parser.error(str(err))

    baseline_paths = sorted(glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))
    if not baseline_paths:
        print(f"perf_diff: no BENCH_*.json baselines in {args.baseline_dir}",
              file=sys.stderr)
        return 2

    benches = []
    ok = True
    for baseline_path in baseline_paths:
        filename = os.path.basename(baseline_path)
        fresh_path = os.path.join(args.new_dir, filename)
        entry = {"file": filename, "violations": []}
        try:
            baseline = load_table(baseline_path)
            entry["name"] = baseline.get("bench", filename)
            if not os.path.exists(fresh_path):
                entry["violations"].append({
                    "kind": "missing-results",
                    "message": f"{filename}: no fresh results in {args.new_dir}",
                })
            else:
                fresh = load_table(fresh_path)
                entry["violations"] = compare_tables(
                    entry["name"], baseline, fresh, args.tolerance, overrides)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            entry.setdefault("name", filename)
            entry["violations"].append({
                "kind": "unreadable",
                "message": f"{filename}: {err}",
            })
        entry["ok"] = not entry["violations"]
        ok = ok and entry["ok"]
        benches.append(entry)

    for entry in benches:
        status = "ok" if entry["ok"] else "FAIL"
        print(f"[{status}] {entry['file']} ({entry['name']})")
        for violation in entry["violations"]:
            print(f"    {violation['message']}")

    report = {
        "schema": PERF_DIFF_SCHEMA,
        "tolerance": args.tolerance,
        "metric_tolerances": overrides,
        "baseline_dir": args.baseline_dir,
        "new_dir": args.new_dir,
        "benches": benches,
        "ok": ok,
    }
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=False)
            f.write("\n")
        print(f"report written to {args.report}")

    if ok:
        print(f"perf_diff: {len(benches)} bench table(s) within tolerance")
        return 0
    failing = sum(1 for entry in benches if not entry["ok"])
    print(f"perf_diff: {failing}/{len(benches)} bench table(s) regressed",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
