// lvm-prof: reader CLI over lvm.profile.v1 cycle-attribution profiles.
//
// Default mode renders, per lane, the top-N cost-center paths by attributed
// cycles with their share of the lane and their wall-clock sample counts,
// plus the lane conservation verdict (attributed == clock - baseline).
//
// Modes:
//   lvm-prof [--top=N] PROFILE...      render each profile (exit 1 on parse
//                                      failure or a non-conserved CPU lane)
//   lvm-prof --flame PROFILE           collapsed-stack output on stdout,
//                                      one "lane;path cycles" line per node,
//                                      ready for flamegraph.pl
//   lvm-prof --diff OLD NEW            per-(lane,path) cycle deltas between
//                                      two profiles, sorted by |delta|
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/schema_ids.h"

namespace lvm {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lvm-prof [--top=N] PROFILE...\n"
               "       lvm-prof --flame PROFILE\n"
               "       lvm-prof --diff OLD NEW\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool LoadProfile(const std::string& path, obs::JsonValue* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "lvm-prof: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  if (!obs::ParseJson(text, out, &error)) {
    std::fprintf(stderr, "lvm-prof: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  std::string schema = out->GetString("schema");
  if (schema != obs::kProfileSchema) {
    std::fprintf(stderr, "lvm-prof: %s: schema \"%s\" is not %s\n", path.c_str(),
                 schema.c_str(), obs::kProfileSchema);
    return false;
  }
  return true;
}

struct NodeRow {
  std::string path;
  uint64_t cycles = 0;
  uint64_t wall_samples = 0;
};

std::vector<NodeRow> LaneNodes(const obs::JsonValue& lane) {
  std::vector<NodeRow> rows;
  const obs::JsonValue* nodes = lane.Find("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    return rows;
  }
  rows.reserve(nodes->size());
  for (const obs::JsonValue& node : nodes->Items()) {
    rows.push_back(NodeRow{node.GetString("path"), node.GetUint64("cycles"),
                           node.GetUint64("wall_samples")});
  }
  return rows;
}

// Default mode: per-lane top-N table. A CPU lane that fails conservation
// flips the exit code — the profile itself is evidence of a charge leak.
int Render(const obs::JsonValue& profile, const std::string& path, size_t top) {
  std::printf("=== %s ===\n", path.c_str());
  double hz = profile.GetDouble("cycles_per_second", 0.0);
  if (hz > 0) {
    std::printf("clock: %.0f cycles/s\n", hz);
  }
  int exit_code = 0;
  const obs::JsonValue* lanes = profile.Find("lanes");
  if (lanes == nullptr || !lanes->is_array()) {
    std::fprintf(stderr, "lvm-prof: %s: no lanes\n", path.c_str());
    return 1;
  }
  for (const obs::JsonValue& lane : lanes->Items()) {
    std::string name = lane.GetString("name");
    uint64_t attributed = lane.GetUint64("attributed");
    bool conserved = lane.GetBool("conserved", true);
    bool is_cpu = lane.GetString("kind") == "cpu";
    std::printf("\nlane %s: %" PRIu64 " cycles attributed%s\n", name.c_str(), attributed,
                conserved ? "" : "  ** NOT CONSERVED **");
    if (is_cpu && !conserved) {
      exit_code = 1;
    }
    std::vector<NodeRow> rows = LaneNodes(lane);
    std::sort(rows.begin(), rows.end(),
              [](const NodeRow& a, const NodeRow& b) { return a.cycles > b.cycles; });
    size_t shown = std::min(top, rows.size());
    for (size_t i = 0; i < shown; ++i) {
      double pct = attributed > 0 ? 100.0 * static_cast<double>(rows[i].cycles) /
                                        static_cast<double>(attributed)
                                  : 0.0;
      std::printf("  %12" PRIu64 "  %5.1f%%  %-40s", rows[i].cycles, pct,
                  rows[i].path.c_str());
      if (rows[i].wall_samples > 0) {
        std::printf("  (%" PRIu64 " wall samples)", rows[i].wall_samples);
      }
      std::printf("\n");
    }
    if (rows.size() > shown) {
      std::printf("  ... %zu more path(s)\n", rows.size() - shown);
    }
  }
  uint64_t dropped = profile.GetUint64("dropped_charges");
  if (dropped > 0) {
    std::printf("\ndropped_charges: %" PRIu64 " (node pool exhausted; charges folded "
                "into parents)\n",
                dropped);
  }
  return exit_code;
}

// --flame: collapsed stacks, the same format Profiler::FlameText emits, but
// reconstructed from the JSON so archived profiles can be flamed too.
int Flame(const obs::JsonValue& profile) {
  const obs::JsonValue* lanes = profile.Find("lanes");
  if (lanes == nullptr || !lanes->is_array()) {
    return 1;
  }
  for (const obs::JsonValue& lane : lanes->Items()) {
    std::string name = lane.GetString("name");
    for (const NodeRow& row : LaneNodes(lane)) {
      if (row.cycles == 0) {
        continue;
      }
      std::printf("%s;%s %" PRIu64 "\n", name.c_str(), row.path.c_str(), row.cycles);
    }
  }
  return 0;
}

// --diff: (lane, path) -> cycles from both profiles, rendered as signed
// deltas sorted by magnitude. Paths present on only one side diff against
// zero, so regressions that introduce a whole new cost center surface too.
int Diff(const obs::JsonValue& old_profile, const obs::JsonValue& new_profile) {
  std::map<std::string, std::pair<uint64_t, uint64_t>> cycles;  // key -> (old, new)
  for (int side = 0; side < 2; ++side) {
    const obs::JsonValue& profile = side == 0 ? old_profile : new_profile;
    const obs::JsonValue* lanes = profile.Find("lanes");
    if (lanes == nullptr || !lanes->is_array()) {
      continue;
    }
    for (const obs::JsonValue& lane : lanes->Items()) {
      std::string name = lane.GetString("name");
      for (const NodeRow& row : LaneNodes(lane)) {
        auto& slot = cycles[name + ";" + row.path];
        (side == 0 ? slot.first : slot.second) += row.cycles;
      }
    }
  }
  struct DiffRow {
    std::string key;
    uint64_t old_cycles;
    uint64_t new_cycles;
  };
  std::vector<DiffRow> rows;
  rows.reserve(cycles.size());
  for (const auto& [key, pair] : cycles) {
    if (pair.first != pair.second) {
      rows.push_back(DiffRow{key, pair.first, pair.second});
    }
  }
  auto magnitude = [](const DiffRow& row) {
    return row.new_cycles > row.old_cycles ? row.new_cycles - row.old_cycles
                                           : row.old_cycles - row.new_cycles;
  };
  std::sort(rows.begin(), rows.end(), [&](const DiffRow& a, const DiffRow& b) {
    return magnitude(a) > magnitude(b);
  });
  if (rows.empty()) {
    std::printf("profiles are identical\n");
    return 0;
  }
  for (const DiffRow& row : rows) {
    int64_t delta = static_cast<int64_t>(row.new_cycles) - static_cast<int64_t>(row.old_cycles);
    double pct = row.old_cycles > 0 ? 100.0 * static_cast<double>(delta) /
                                          static_cast<double>(row.old_cycles)
                                    : 0.0;
    std::printf("  %+12" PRId64 "  %12" PRIu64 " -> %-12" PRIu64, delta, row.old_cycles,
                row.new_cycles);
    if (row.old_cycles > 0) {
      std::printf("  %+7.1f%%", pct);
    } else {
      std::printf("      new");
    }
    std::printf("  %s\n", row.key.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  std::vector<std::string> paths;
  size_t top = 10;
  bool flame = false;
  bool diff = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--top=", 0) == 0) {
      top = static_cast<size_t>(std::strtoull(arg.c_str() + 6, nullptr, 10));
      if (top == 0) {
        top = 1;
      }
    } else if (arg == "--flame") {
      flame = true;
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lvm-prof: unknown option %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (diff) {
    if (flame || paths.size() != 2) {
      return Usage();
    }
    obs::JsonValue old_profile;
    obs::JsonValue new_profile;
    if (!LoadProfile(paths[0], &old_profile) || !LoadProfile(paths[1], &new_profile)) {
      return 1;
    }
    return Diff(old_profile, new_profile);
  }
  if (flame) {
    if (paths.size() != 1) {
      return Usage();
    }
    obs::JsonValue profile;
    if (!LoadProfile(paths[0], &profile)) {
      return 1;
    }
    return Flame(profile);
  }
  if (paths.empty()) {
    return Usage();
  }
  int exit_code = 0;
  for (const std::string& path : paths) {
    obs::JsonValue profile;
    if (!LoadProfile(path, &profile)) {
      exit_code = 1;
      continue;
    }
    int rc = Render(profile, path, top);
    if (rc != 0) {
      exit_code = rc;
    }
  }
  return exit_code;
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) { return lvm::Main(argc, argv); }
