// Scope tracker: class/function structure over the shared token stream
// (DESIGN.md §16).
//
// A single forward pass over a tokenized translation unit that recovers just
// enough structure for whole-program convention checks without a real C++
// frontend:
//
//   - the innermost class path at any token ("RaceDetector::Stripe" for a
//     token inside the nested struct), namespaces excluded;
//   - every function definition with its qualified name (enclosing class
//     path plus any explicit A::B:: qualifiers on an out-of-line
//     definition), parameter-list and body token ranges, and the signature
//     tail between ')' and '{' where the thread-safety annotation macros
//     (LVM_REQUIRES, LVM_ACQUIRE, ...) live;
//   - member declarations that carry annotations but no body, so contracts
//     stated only in a header (e.g. `void ParkForOverload(int)
//     LVM_REQUIRES(mu_);`) are visible to the analyzer too.
//
// Heuristics, deliberately: a brace-balanced scan that distinguishes
// namespace / class / enum / initializer braces from function bodies. It is
// tuned to the repo's style (clang-format, no function-try-blocks, no K&R)
// and over-approximates gracefully — a statement misread as a declaration
// records a harmless empty entry.
#ifndef TOOLS_ANALYSIS_SCOPE_TRACKER_H_
#define TOOLS_ANALYSIS_SCOPE_TRACKER_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "tools/analysis/tokenizer.h"

namespace lvm {
namespace analysis {

// A function definition (has a body) or annotated declaration (ends in ';').
struct FunctionDef {
  std::string name;        // Unqualified: "Report".
  std::string qualified;   // Class path + name: "RaceDetector::Report".
  std::string class_path;  // "" for a free function.
  int line = 0;
  size_t params_begin = 0;  // Token index of the '('.
  size_t params_end = 0;    // Token index of the matching ')'.
  size_t sig_end = 0;       // Token index of the body '{' or the ';'.
  size_t body_begin = 0;    // Token index of '{'; 0 for a declaration.
  size_t body_end = 0;      // Token index of the matching '}'; 0 for a decl.
  bool has_body = false;
};

class ScopeInfo {
 public:
  const std::vector<FunctionDef>& functions() const { return functions_; }

  // Innermost class path containing token `index` ("" at namespace scope).
  const std::string& ClassAt(size_t index) const;

 private:
  friend ScopeInfo BuildScopes(const std::vector<Token>& tokens);

  std::vector<FunctionDef> functions_;
  // (first token index, class path) transitions, ascending.
  std::vector<std::pair<size_t, std::string>> class_marks_;
};

ScopeInfo BuildScopes(const std::vector<Token>& tokens);

}  // namespace analysis
}  // namespace lvm

#endif  // TOOLS_ANALYSIS_SCOPE_TRACKER_H_
