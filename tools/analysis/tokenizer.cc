#include "tools/analysis/tokenizer.h"

#include <cctype>

namespace lvm {
namespace analysis {

namespace {

class Lexer {
 public:
  Lexer(std::string_view src, std::string_view allow_tag) : src_(src), allow_tag_(allow_tag) {}

  TokenizedSource Run() && {
    while (pos_ < src_.size()) {
      Step();
    }
    TokenizedSource out;
    out.tokens = std::move(tokens_);
    out.suppressions = std::move(suppressions_);
    return out;
  }

 private:
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Take() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
    }
    return c;
  }

  void Step() {
    char c = Peek();
    if (c == '/' && Peek(1) == '/') {
      LexLineComment();
    } else if (c == '/' && Peek(1) == '*') {
      LexBlockComment();
    } else if (c == '"') {
      LexString();
    } else if (c == '\'') {
      LexCharLiteral();
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      LexIdentifier();
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      LexNumber();
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      Take();
    } else {
      LexPunct();
    }
  }

  void LexLineComment() {
    const int line = line_;
    std::string text;
    while (pos_ < src_.size() && Peek() != '\n') {
      text.push_back(Take());
    }
    MineSuppressions(text, line);
  }

  void LexBlockComment() {
    const int line = line_;
    std::string text;
    Take();  // '/'
    Take();  // '*'
    while (pos_ < src_.size() && !(Peek() == '*' && Peek(1) == '/')) {
      text.push_back(Take());
    }
    if (pos_ < src_.size()) {
      Take();
      Take();
    }
    MineSuppressions(text, line);
  }

  // Recognizes every `<allow_tag><rule>)` in a comment's text.
  void MineSuppressions(const std::string& text, int line) {
    if (allow_tag_.empty()) {
      return;
    }
    size_t at = 0;
    while ((at = text.find(allow_tag_, at)) != std::string::npos) {
      at += allow_tag_.size();
      size_t close = text.find(')', at);
      if (close == std::string::npos) {
        break;
      }
      suppressions_[line].insert(text.substr(at, close - at));
      at = close + 1;
    }
  }

  void LexString() {
    const int line = line_;
    Take();  // opening quote
    std::string text;
    while (pos_ < src_.size()) {
      char c = Take();
      if (c == '\\' && pos_ < src_.size()) {
        text.push_back(c);
        text.push_back(Take());
        continue;
      }
      if (c == '"') {
        break;
      }
      text.push_back(c);
    }
    tokens_.push_back({Token::Kind::kString, std::move(text), line});
  }

  // R"delim( ... )delim" — the identifier ending in R was already consumed
  // by LexIdentifier, which calls this when it sees the opening quote.
  void LexRawString() {
    const int line = line_;
    Take();  // opening quote
    std::string delim;
    while (pos_ < src_.size() && Peek() != '(') {
      delim.push_back(Take());
    }
    if (pos_ < src_.size()) {
      Take();  // '('
    }
    const std::string closer = ")" + delim + "\"";
    std::string text;
    while (pos_ < src_.size() && src_.compare(pos_, closer.size(), closer) != 0) {
      text.push_back(Take());
    }
    for (size_t i = 0; i < closer.size() && pos_ < src_.size(); ++i) {
      Take();
    }
    tokens_.push_back({Token::Kind::kString, std::move(text), line});
  }

  void LexCharLiteral() {
    Take();  // opening quote
    while (pos_ < src_.size()) {
      char c = Take();
      if (c == '\\' && pos_ < src_.size()) {
        Take();
        continue;
      }
      if (c == '\'') {
        break;
      }
    }
  }

  void LexIdentifier() {
    const int line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        text.push_back(Take());
      } else {
        break;
      }
    }
    // Raw-string prefix (R"..., u8R"..., LR"..., ...): hand off to the raw
    // string lexer instead of emitting the prefix as an identifier.
    if (Peek() == '"' && !text.empty() && text.back() == 'R' &&
        (text == "R" || text == "u8R" || text == "uR" || text == "UR" || text == "LR")) {
      LexRawString();
      return;
    }
    tokens_.push_back({Token::Kind::kIdentifier, std::move(text), line});
  }

  void LexNumber() {
    // Swallow the full pp-number (hex digits, suffixes, exponents, digit
    // separators); the checks never look at numeric values.
    while (pos_ < src_.size()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '\'') {
        Take();
      } else if ((c == '+' || c == '-') && pos_ > 0 &&
                 (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E' || src_[pos_ - 1] == 'p' ||
                  src_[pos_ - 1] == 'P')) {
        Take();
      } else {
        break;
      }
    }
  }

  void LexPunct() {
    const int line = line_;
    char c = Take();
    std::string text(1, c);
    if (c == '-' && Peek() == '>') {
      text.push_back(Take());
    } else if (c == ':' && Peek() == ':') {
      text.push_back(Take());
    }
    tokens_.push_back({Token::Kind::kPunct, std::move(text), line});
  }

  std::string_view src_;
  std::string_view allow_tag_;
  size_t pos_ = 0;
  int line_ = 1;
  std::vector<Token> tokens_;
  std::map<int, std::set<std::string>> suppressions_;
};

}  // namespace

TokenizedSource Tokenize(std::string_view src, std::string_view allow_tag) {
  return Lexer(src, allow_tag).Run();
}

}  // namespace analysis
}  // namespace lvm
