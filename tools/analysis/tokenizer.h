// Shared C++ tokenizer for the repo's own static checkers (DESIGN.md §13, §16).
//
// Just enough lexing for convention and structure checks: identifiers, string
// literal contents, and punctuation, each with a 1-based line number. Comments
// are consumed here and mined for `<tool>: allow(<rule>)` suppressions, so
// every checker built on this library shares one suppression syntax; numbers
// and character literals are skipped. Lifted out of tools/lvm_lint so
// tools/lvm_analyze (the lock-order analyzer) parses sources identically.
#ifndef TOOLS_ANALYSIS_TOKENIZER_H_
#define TOOLS_ANALYSIS_TOKENIZER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace lvm {
namespace analysis {

struct Token {
  enum class Kind : uint8_t { kIdentifier, kString, kPunct };
  Kind kind;
  std::string text;
  int line = 0;
};

struct TokenizedSource {
  std::vector<Token> tokens;
  // line -> rule slugs silenced by an allow() comment on that line. Slugs are
  // kept verbatim (including unknown ones) so a checker can report allow()
  // comments that name no real rule.
  std::map<int, std::set<std::string>> suppressions;
};

// Tokenizes `src`. `allow_tag` is the suppression-comment prefix to mine,
// e.g. "lvm-lint: allow(" — everything between it and the closing ')' is
// recorded as a suppression slug for the comment's first line.
TokenizedSource Tokenize(std::string_view src, std::string_view allow_tag);

}  // namespace analysis
}  // namespace lvm

#endif  // TOOLS_ANALYSIS_TOKENIZER_H_
