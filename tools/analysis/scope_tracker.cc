#include "tools/analysis/scope_tracker.h"

#include <algorithm>

namespace lvm {
namespace analysis {

namespace {

bool IsPunct(const std::vector<Token>& tokens, size_t i, std::string_view text) {
  return i < tokens.size() && tokens[i].kind == Token::Kind::kPunct && tokens[i].text == text;
}

bool IsIdent(const std::vector<Token>& tokens, size_t i) {
  return i < tokens.size() && tokens[i].kind == Token::Kind::kIdentifier;
}

// Index of the token matching the opener at `i` (same nesting level), or
// tokens.size() when unbalanced.
size_t MatchForward(const std::vector<Token>& tokens, size_t i, std::string_view open,
                    std::string_view close) {
  int depth = 0;
  for (size_t j = i; j < tokens.size(); ++j) {
    if (IsPunct(tokens, j, open)) {
      ++depth;
    } else if (IsPunct(tokens, j, close)) {
      if (--depth == 0) {
        return j;
      }
    }
  }
  return tokens.size();
}

// Skips a preprocessor directive starting at the '#' token: the rest of its
// line, plus backslash-continued lines (multi-line macro definitions).
size_t SkipPreprocessor(const std::vector<Token>& tokens, size_t i) {
  int line = tokens[i].line;
  size_t j = i + 1;
  while (j < tokens.size()) {
    if (tokens[j].line > line) {
      if (IsPunct(tokens, j - 1, "\\") && tokens[j - 1].line == line) {
        line = tokens[j].line;
        continue;
      }
      break;
    }
    ++j;
  }
  return j;
}

class Builder {
 public:
  explicit Builder(const std::vector<Token>& tokens) : tokens_(tokens) {}

  std::pair<std::vector<FunctionDef>, std::vector<std::pair<size_t, std::string>>> Run() && {
    MarkClass(0);
    size_t i = 0;
    while (i < tokens_.size()) {
      i = Dispatch(i);
    }
    return {std::move(functions_), std::move(class_marks_)};
  }

 private:
  struct Scope {
    enum class Kind : uint8_t { kNamespace, kClass, kEnum, kOther };
    Kind kind;
    std::string name;  // Class name for kClass.
  };

  std::string ClassPath() const {
    std::string path;
    for (const Scope& s : scopes_) {
      if (s.kind == Scope::Kind::kClass) {
        if (!path.empty()) {
          path += "::";
        }
        path += s.name;
      }
    }
    return path;
  }

  void MarkClass(size_t token_index) {
    class_marks_.emplace_back(token_index, ClassPath());
  }

  void Push(Scope::Kind kind, std::string name, size_t token_index) {
    scopes_.push_back({kind, std::move(name)});
    if (kind == Scope::Kind::kClass) {
      MarkClass(token_index);
    }
  }

  void Pop(size_t token_index) {
    if (scopes_.empty()) {
      return;
    }
    const bool was_class = scopes_.back().kind == Scope::Kind::kClass;
    scopes_.pop_back();
    if (was_class) {
      MarkClass(token_index + 1);
    }
  }

  // Handles the token at `i`; returns the index to continue from.
  size_t Dispatch(size_t i) {
    const Token& t = tokens_[i];
    if (t.kind == Token::Kind::kIdentifier) {
      if (t.text == "template") {
        return SkipTemplateHead(i);
      }
      if (t.text == "namespace") {
        return EnterNamespace(i);
      }
      if (t.text == "class" || t.text == "struct" || t.text == "union") {
        return EnterClass(i);
      }
      if (t.text == "enum") {
        return EnterEnum(i);
      }
      return ParseDeclaration(i);
    }
    if (t.kind == Token::Kind::kPunct) {
      if (t.text == "{") {
        Push(Scope::Kind::kOther, "", i);
        return i + 1;
      }
      if (t.text == "}") {
        Pop(i);
        return i + 1;
      }
      if (t.text == "#") {
        return SkipPreprocessor(tokens_, i);
      }
    }
    return ParseDeclaration(i);
  }

  size_t SkipTemplateHead(size_t i) {
    size_t j = i + 1;
    if (!IsPunct(tokens_, j, "<")) {
      return i + 1;
    }
    int depth = 0;
    for (; j < tokens_.size(); ++j) {
      if (IsPunct(tokens_, j, "<")) {
        ++depth;
      } else if (IsPunct(tokens_, j, ">")) {
        if (--depth == 0) {
          return j + 1;
        }
      }
    }
    return tokens_.size();
  }

  size_t EnterNamespace(size_t i) {
    for (size_t j = i + 1; j < tokens_.size(); ++j) {
      if (IsPunct(tokens_, j, "{")) {
        Push(Scope::Kind::kNamespace, "", j);
        return j + 1;
      }
      if (IsPunct(tokens_, j, ";") || IsPunct(tokens_, j, "=")) {
        return j + 1;  // Alias or using-directive tail.
      }
    }
    return tokens_.size();
  }

  size_t EnterClass(size_t i) {
    // Name: the first identifier after the keyword that is not an attribute
    // macro — either one with arguments (identifier immediately followed by
    // '(') or an argless LVM_* one (the repo's macro vocabulary, e.g.
    // `class LVM_SCOPED_CAPABILITY MutexLock`).
    std::string name;
    size_t j = i + 1;
    for (; j < tokens_.size(); ++j) {
      if (IsPunct(tokens_, j, "{") || IsPunct(tokens_, j, ";")) {
        break;
      }
      if (IsPunct(tokens_, j, "(")) {
        j = MatchForward(tokens_, j, "(", ")");
        continue;
      }
      if (name.empty() && IsIdent(tokens_, j) && !IsPunct(tokens_, j + 1, "(") &&
          IsNameCandidate(tokens_[j]) && tokens_[j].text != "final" &&
          tokens_[j].text != "alignas") {
        name = tokens_[j].text;
      }
    }
    // Scan to the body '{' (skipping the base clause) or a terminating ';'
    // (forward declaration / `friend class X;`).
    for (; j < tokens_.size(); ++j) {
      if (IsPunct(tokens_, j, "{")) {
        Push(Scope::Kind::kClass, name, j);
        return j + 1;
      }
      if (IsPunct(tokens_, j, ";")) {
        return j + 1;
      }
      if (IsPunct(tokens_, j, "(")) {
        j = MatchForward(tokens_, j, "(", ")");
      }
    }
    return tokens_.size();
  }

  size_t EnterEnum(size_t i) {
    for (size_t j = i + 1; j < tokens_.size(); ++j) {
      if (IsPunct(tokens_, j, "{")) {
        Push(Scope::Kind::kEnum, "", j);
        return j + 1;
      }
      if (IsPunct(tokens_, j, ";")) {
        return j + 1;
      }
    }
    return tokens_.size();
  }

  // Candidate function names: plain identifiers that are not annotation or
  // convention macros (the repo's macro vocabulary is all LVM_-prefixed).
  static bool IsNameCandidate(const Token& t) {
    return t.kind == Token::Kind::kIdentifier && t.text.rfind("LVM_", 0) != 0;
  }

  // Consumes one declaration/definition starting at `i`: ends at its ';' or
  // past its body '}'. Records a FunctionDef when the statement contains an
  // `ident (` declarator.
  size_t ParseDeclaration(size_t i) {
    FunctionDef def;
    bool named = false;
    size_t j = i;
    while (j < tokens_.size()) {
      const Token& t = tokens_[j];
      if (t.kind == Token::Kind::kIdentifier && !named &&
          (t.text == "namespace" || t.text == "template" || t.text == "class" ||
           t.text == "struct" || t.text == "union" || t.text == "enum")) {
        // A structural keyword before any declarator: not a function
        // declaration after all — let Dispatch handle it. (Unreachable at
        // j == i: Dispatch routes those keywords before calling here.)
        return j;
      }
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "#") {
          if (!named) {
            return j;
          }
          j = SkipPreprocessor(tokens_, j);
          continue;
        }
        if (t.text == ";") {
          if (named) {
            def.sig_end = j;
            Record(std::move(def));
          }
          return j + 1;
        }
        if (t.text == "}") {
          // End of the enclosing scope before any ';' — leave it for the
          // outer loop (malformed or macro-heavy input).
          return j;
        }
        if (t.text == "(") {
          if (!named && j > i && IsNameCandidate(tokens_[j - 1])) {
            named = true;
            def.name = tokens_[j - 1].text;
            def.line = tokens_[j - 1].line;
            def.params_begin = j;
            def.params_end = MatchForward(tokens_, j, "(", ")");
            CollectQualifiers(j - 1, &def);
            j = def.params_end + 1;
            continue;
          }
          j = MatchForward(tokens_, j, "(", ")") + 1;
          continue;
        }
        if (t.text == "{") {
          if (named) {
            def.sig_end = j;
            def.body_begin = j;
            def.body_end = MatchForward(tokens_, j, "{", "}");
            def.has_body = true;
            size_t next = def.body_end + 1;
            Record(std::move(def));
            return next;
          }
          // Brace initializer (`Mutex mu_{...};`): skip it, keep scanning
          // for the declaration's ';'.
          j = MatchForward(tokens_, j, "{", "}") + 1;
          continue;
        }
      }
      ++j;
    }
    return tokens_.size();
  }

  // Walks `A::B::name` qualifiers backwards from the name token and builds
  // the full class path: enclosing scope classes plus explicit qualifiers.
  void CollectQualifiers(size_t name_index, FunctionDef* def) {
    std::vector<std::string> quals;
    size_t k = name_index;
    while (k >= 2 && IsPunct(tokens_, k - 1, "::") && IsIdent(tokens_, k - 2)) {
      quals.push_back(tokens_[k - 2].text);
      k -= 2;
    }
    std::reverse(quals.begin(), quals.end());
    std::string path = ClassPath();
    for (const std::string& q : quals) {
      if (!path.empty()) {
        path += "::";
      }
      path += q;
    }
    def->class_path = std::move(path);
    def->qualified = def->class_path.empty() ? def->name : def->class_path + "::" + def->name;
  }

  void Record(FunctionDef def) { functions_.push_back(std::move(def)); }

  const std::vector<Token>& tokens_;
  std::vector<Scope> scopes_;
  std::vector<FunctionDef> functions_;
  std::vector<std::pair<size_t, std::string>> class_marks_;
};

}  // namespace

const std::string& ScopeInfo::ClassAt(size_t index) const {
  static const std::string kEmpty;
  const std::string* best = &kEmpty;
  for (const auto& [at, path] : class_marks_) {
    if (at > index) {
      break;
    }
    best = &path;
  }
  return *best;
}

ScopeInfo BuildScopes(const std::vector<Token>& tokens) {
  ScopeInfo info;
  auto [functions, marks] = Builder(tokens).Run();
  info.functions_ = std::move(functions);
  info.class_marks_ = std::move(marks);
  return info;
}

}  // namespace analysis
}  // namespace lvm
