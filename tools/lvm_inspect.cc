// lvm-inspect: post-mortem CLI over lvm.blackbox.v1 crash dumps.
//
// Default mode renders a dump for humans — summary, merged flight-recorder
// timeline, component cycle attribution — and cross-checks each dumped log
// tail against the captured memory extents by replay
// (LogReplayVerifier::CrossCheckTail), the same verification the live
// system runs, re-run from the dump alone.
//
// Modes:
//   lvm-inspect DUMP...                   render each dump (exit 1 on parse
//                                         failure, 2 on replay mismatch)
//   lvm-inspect --validate FILE...        strict-JSON check of any emitted
//                                         artifact (dumps, RACE_REPORT.json,
//                                         BENCH_*.json); exit 1 on failure
//   lvm-inspect --demo-crash PATH         seeded run that injects a record
//                                         drop, trips the invariant checker,
//                                         and writes a dump to PATH
//   --events N                            cap the timeline at the newest N
//   --no-replay-check                     skip the tail replay cross-check
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/check/fault_injection.h"
#include "src/check/invariant_checker.h"
#include "src/check/log_replay_verifier.h"
#include "src/lvm/lvm_system.h"
#include "src/obs/blackbox_reader.h"
#include "src/obs/json.h"

namespace lvm {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lvm-inspect [--events N] [--no-replay-check] DUMP...\n"
               "       lvm-inspect --validate FILE...\n"
               "       lvm-inspect --demo-crash PATH\n");
  return 64;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// --validate: every artifact the toolchain emits claims to be strict JSON;
// hold it to that.
int Validate(const std::vector<std::string>& paths) {
  int failures = 0;
  for (const std::string& path : paths) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "lvm-inspect: cannot read %s\n", path.c_str());
      ++failures;
      continue;
    }
    if (!obs::ValidateJson(text)) {
      std::fprintf(stderr, "lvm-inspect: %s: not strict JSON\n", path.c_str());
      ++failures;
      continue;
    }
    std::printf("%s: ok (%zu bytes)\n", path.c_str(), text.size());
  }
  return failures == 0 ? 0 : 1;
}

// The dump's tail records replayed against its memory extents. Returns the
// number of logs whose tail failed to reproduce memory.
int ReplayCheck(const obs::BlackBoxDump& dump) {
  int failed = 0;
  for (const obs::BlackBoxLog& log : dump.logs) {
    if (log.memory.empty()) {
      std::printf("log %d: no memory extents captured; replay check skipped\n", log.log_index);
      continue;
    }
    std::vector<LogRecord> records;
    records.reserve(log.tail_records.size());
    for (const obs::BlackBoxRecord& r : log.tail_records) {
      LogRecord record;
      record.addr = static_cast<uint32_t>(r.addr);
      record.value = static_cast<uint32_t>(r.value);
      record.size = static_cast<uint16_t>(r.size);
      record.flags = static_cast<uint16_t>(r.flags);
      record.timestamp = static_cast<uint32_t>(r.timestamp);
      records.push_back(record);
    }
    std::vector<std::pair<PhysAddr, std::vector<uint8_t>>> memory;
    memory.reserve(log.memory.size());
    for (const obs::BlackBoxMemoryExtent& extent : log.memory) {
      memory.emplace_back(static_cast<PhysAddr>(extent.addr), extent.bytes);
    }
    std::vector<ReplayMismatch> mismatches =
        LogReplayVerifier::CrossCheckTail(records, memory);
    if (mismatches.empty()) {
      std::printf("log %d: tail replay matches memory (%zu records, %zu extents)\n",
                  log.log_index, records.size(), memory.size());
    } else {
      ++failed;
      std::printf("log %d: TAIL REPLAY MISMATCH (%zu bytes differ)\n", log.log_index,
                  mismatches.size());
      std::printf("%s", LogReplayVerifier::Describe(mismatches).c_str());
    }
  }
  return failed;
}

int Inspect(const std::vector<std::string>& paths, size_t max_events, bool replay_check) {
  int exit_code = 0;
  for (const std::string& path : paths) {
    obs::BlackBoxDump dump;
    std::string error;
    if (!obs::LoadBlackBoxDump(path, &dump, &error)) {
      std::fprintf(stderr, "lvm-inspect: %s: %s\n", path.c_str(), error.c_str());
      exit_code = exit_code == 0 ? 1 : exit_code;
      continue;
    }
    std::printf("=== %s ===\n", path.c_str());
    std::printf("%s", obs::RenderSummary(dump).c_str());
    std::printf("\n%s", obs::RenderTimeline(dump, max_events).c_str());
    std::printf("\n%s", obs::RenderAttribution(dump).c_str());
    if (replay_check) {
      std::printf("\n");
      if (ReplayCheck(dump) > 0) {
        exit_code = 2;
      }
    }
  }
  return exit_code;
}

// --demo-crash: a deliberately broken run, end to end. The injector
// corrupts one hardware log record; the invariant checker catches the
// retirement mismatch and, being armed, dumps the black box. Exercises the
// same machinery a real crash would.
int DemoCrash(const std::string& path) {
  LvmConfig config;
  config.seed = 42;
  LvmSystem system(config);
  InvariantChecker checker(&system);
  checker.ArmBlackBox(path);

  StdSegment* segment = system.CreateSegment(4 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment();
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log, LogMode::kNormal);
  system.Activate(as);

  ScriptedFaultInjector injector;
  injector.ArmCorruption(log->log_index, 40,
                         [](LogRecord* record) { record->value ^= 0xdead; });
  system.bus_logger()->set_fault_injector(&injector);

  Cpu& cpu = system.cpu();
  for (uint32_t i = 0; i < 200; ++i) {
    cpu.Write(base + 4 * (i % 256), 0xfeed0000u + i);
    cpu.Compute(300);
  }
  system.SyncLog(&cpu, log);
  checker.CheckDrained();

  if (checker.ok()) {
    std::fprintf(stderr, "demo-crash: injected fault was not detected\n");
    return 1;
  }
  obs::BlackBoxDump dump;
  std::string error;
  if (!obs::LoadBlackBoxDump(path, &dump, &error)) {
    std::fprintf(stderr, "demo-crash: dump unreadable: %s\n", error.c_str());
    return 1;
  }
  std::printf("demo-crash: %zu violation(s) detected, dump written to %s (%zu events)\n",
              checker.violations().size(), path.c_str(), dump.events.size());
  return 0;
}

int Main(int argc, char** argv) {
  std::vector<std::string> paths;
  size_t max_events = 40;
  bool replay_check = true;
  bool validate = false;
  std::string demo_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--validate") {
      validate = true;
    } else if (arg == "--demo-crash") {
      if (++i >= argc) {
        return Usage();
      }
      demo_path = argv[i];
    } else if (arg == "--events") {
      if (++i >= argc) {
        return Usage();
      }
      max_events = static_cast<size_t>(std::strtoull(argv[i], nullptr, 10));
    } else if (arg == "--no-replay-check") {
      replay_check = false;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lvm-inspect: unknown option %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (!demo_path.empty()) {
    return DemoCrash(demo_path);
  }
  if (validate) {
    return paths.empty() ? Usage() : Validate(paths);
  }
  if (paths.empty()) {
    return Usage();
  }
  return Inspect(paths, max_events, replay_check);
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) { return lvm::Main(argc, argv); }
