#include "tools/lvm_analyze/analyze.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "src/obs/json.h"
#include "src/obs/schema_ids.h"
#include "tools/analysis/scope_tracker.h"
#include "tools/analysis/tokenizer.h"

namespace lvm {
namespace analyze {

namespace {

using analysis::FunctionDef;
using analysis::ScopeInfo;
using analysis::Token;
using analysis::TokenizedSource;

constexpr Rule kAllRules[] = {Rule::kLockCycle, Rule::kLockBlocking, Rule::kWalPersistOrder,
                              Rule::kLockDecl};

// Suppression / directive comment prefixes mined from the sources.
constexpr std::string_view kAllowTag = "lvm-analyze: allow(";
constexpr std::string_view kEdgeTag = "lvm-analyze: edge(";

// --- token helpers ---------------------------------------------------------

bool IsPunct(const std::vector<Token>& t, size_t i, std::string_view text) {
  return i < t.size() && t[i].kind == Token::Kind::kPunct && t[i].text == text;
}

bool IsIdent(const std::vector<Token>& t, size_t i) {
  return i < t.size() && t[i].kind == Token::Kind::kIdentifier;
}

bool IsIdent(const std::vector<Token>& t, size_t i, std::string_view text) {
  return IsIdent(t, i) && t[i].text == text;
}

size_t MatchForward(const std::vector<Token>& t, size_t i, std::string_view open,
                    std::string_view close) {
  int depth = 0;
  for (size_t j = i; j < t.size(); ++j) {
    if (IsPunct(t, j, open)) {
      ++depth;
    } else if (IsPunct(t, j, close)) {
      if (--depth == 0) {
        return j;
      }
    }
  }
  return t.size();
}

size_t MatchBackward(const std::vector<Token>& t, size_t i, std::string_view open,
                     std::string_view close) {
  int depth = 0;
  for (size_t j = i + 1; j-- > 0;) {
    if (IsPunct(t, j, close)) {
      ++depth;
    } else if (IsPunct(t, j, open)) {
      if (--depth == 0) {
        return j;
      }
    }
  }
  return 0;
}

// Splits the argument list between `open` ('(' or '{') and its matching
// closer into depth-0 comma-separated token ranges [begin, end).
std::vector<std::pair<size_t, size_t>> SplitArgs(const std::vector<Token>& t, size_t open,
                                                 size_t close) {
  std::vector<std::pair<size_t, size_t>> args;
  size_t begin = open + 1;
  int depth = 0;
  for (size_t j = open + 1; j < close; ++j) {
    if (IsPunct(t, j, "(") || IsPunct(t, j, "[") || IsPunct(t, j, "{")) {
      ++depth;
    } else if (IsPunct(t, j, ")") || IsPunct(t, j, "]") || IsPunct(t, j, "}")) {
      --depth;
    } else if (depth == 0 && IsPunct(t, j, ",")) {
      args.emplace_back(begin, j);
      begin = j + 1;
    }
  }
  if (begin < close) {
    args.emplace_back(begin, close);
  }
  return args;
}

std::vector<std::string> IdentsIn(const std::vector<Token>& t, size_t begin, size_t end) {
  std::vector<std::string> out;
  for (size_t j = begin; j < end; ++j) {
    if (IsIdent(t, j)) {
      out.push_back(t[j].text);
    }
  }
  return out;
}

std::string LowerCore(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c != '_') {
      out.push_back(static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
    }
  }
  return out;
}

std::string LastComponent(const std::string& path) {
  const size_t at = path.rfind("::");
  return at == std::string::npos ? path : path.substr(at + 2);
}

bool Unresolved(const std::string& id) { return !id.empty() && id[0] == '?'; }

const std::set<std::string>& CallExcludedKeywords() {
  static const std::set<std::string> kSet = {
      "if",     "for",       "while",    "switch",   "return", "sizeof",  "alignof",
      "decltype", "noexcept", "catch",    "throw",    "new",    "delete",  "not",
      "and",    "or",        "defined",  "static_assert",      "co_await", "co_return",
      "co_yield", "else",    "do",       "case",     "goto",   "using",   "operator",
      "typeid", "assert",    "this"};
  return kSet;
}

// Primitives that can block the calling thread for an unbounded or
// device-speed interval. CondVar waits are handled separately (they carry an
// exempt mutex).
const std::set<std::string>& BlockingPrims() {
  static const std::set<std::string> kSet = {"join",  "msync",  "fsync", "fdatasync", "ftruncate",
                                             "fopen", "fwrite", "fread", "fclose",    "fflush"};
  return kSet;
}

// Direct flush-barrier spellings inside the WAL layer.
const std::set<std::string>& WalBarrierIdents() {
  static const std::set<std::string> kSet = {"Sync", "SyncAll", "msync", "fsync", "fdatasync"};
  return kSet;
}

// Identifier markers whose presence in a memcpy/memset destination argument
// means persistent (mapped WAL / image) bytes are being written.
bool IsPersistentDest(const std::vector<std::string>& idents) {
  bool has_data = false;
  bool has_mapping = false;
  for (const std::string& id : idents) {
    if (id == "raw_block_bytes" || id == "raw_superblock_bytes" || id == "BlockPayload" ||
        id == "BlockHeader") {
      return true;
    }
    if (id == "data") {
      has_data = true;
    }
    if (id == "file_" || id == "image_") {
      has_mapping = true;
    }
  }
  return has_data && has_mapping;
}

// --- fact structures -------------------------------------------------------

struct LockDecl {
  std::string id;          // Canonical "<ClassPath>::<member>" (member alone at file scope).
  std::string member;
  std::string class_path;
  std::string file;
  int line = 0;
  std::string name_literal;  // First string in the brace initializer, if any.
  std::string rank_ident;    // kRank* identifier in the initializer, if any.
};

// A scoped-guard class whose constructor acquires a lock: `arg_index`-th
// constructor argument, then the member path `suffix` appended to it.
struct GuardSpec {
  size_t arg_index = 0;
  std::vector<std::string> suffix;
};

struct AcqSite {
  std::string lock;
  int line = 0;
  bool is_try = false;
  std::vector<std::string> held;  // Resolved ids held at the acquire.
};

struct FuncFacts;

struct CallSite {
  std::string name;
  std::string receiver;  // Base identifier before '.'/'->' ("" if none).
  int line = 0;
  std::vector<std::string> held;
  std::vector<FuncFacts*> resolved;
};

struct DirectBlock {
  std::string kind;    // "CondVar::Wait" or the primitive name.
  std::string exempt;  // Lock id a wait releases while blocked ("" otherwise).
  int line = 0;
  std::vector<std::string> held;
};

struct WalEvent {
  enum class Kind : uint8_t { kMutation, kBarrier, kCall };
  Kind kind = Kind::kMutation;
  size_t call_index = 0;  // Into FuncFacts::calls for kCall.
  int line = 0;
};

// How a function reaches a lock: a direct acquire site, or through `via`.
struct AcqPath {
  int line = 0;
  FuncFacts* via = nullptr;
};

// A way a function can block: directly or through callees.
struct BlockSpec {
  std::string kind;
  std::string exempt;
  std::string through;  // Callee chain head ("" when direct).

  bool operator<(const BlockSpec& o) const {
    return std::tie(kind, exempt, through) < std::tie(o.kind, o.exempt, o.through);
  }
};

struct FuncFacts {
  std::string qualified;
  std::string class_path;
  std::string file;
  int line = 0;
  bool wal_scope = false;
  std::vector<std::string> entry_held;
  std::vector<AcqSite> acquires;
  std::vector<CallSite> calls;
  std::vector<DirectBlock> blocks;
  std::vector<WalEvent> wal_events;
  // Fixpoint state.
  std::map<std::string, AcqPath> acq_star;
  std::set<BlockSpec> block_star;
  int wal_effect = 0;  // 0 none, 1 ends-clean-with-barrier, 2 ends-dirty.
};

struct DeclaredEdge {
  std::string from;
  std::string to;
  int line = 0;
};

}  // namespace

// --- rule helpers ----------------------------------------------------------

const char* RuleName(Rule rule) {
  switch (rule) {
    case Rule::kLockCycle:
      return "lock-cycle";
    case Rule::kLockBlocking:
      return "lock-blocking";
    case Rule::kWalPersistOrder:
      return "wal-persist-order";
    case Rule::kLockDecl:
      return "lock-decl";
  }
  return "unknown";
}

int RuleExitCode(Rule rule) {
  switch (rule) {
    case Rule::kLockCycle:
      return 20;
    case Rule::kLockBlocking:
      return 21;
    case Rule::kWalPersistOrder:
      return 22;
    case Rule::kLockDecl:
      return 23;
  }
  return 1;
}

bool ParseRuleName(std::string_view name, Rule* out) {
  for (Rule rule : kAllRules) {
    if (name == RuleName(rule)) {
      *out = rule;
      return true;
    }
  }
  return false;
}

// --- analyzer --------------------------------------------------------------

struct Analyzer::Impl {
  struct SourceFile {
    std::string path;
    TokenizedSource ts;
    ScopeInfo scopes;
    std::vector<DeclaredEdge> declared_edges;
    bool primitive = false;
    bool wal = false;
    bool rank_header = false;
  };

  explicit Impl(AnalyzeOptions opts) : options(std::move(opts)) {}

  AnalyzeOptions options;
  std::vector<std::unique_ptr<SourceFile>> files;
};

Analyzer::Analyzer(AnalyzeOptions options) : impl_(new Impl(std::move(options))) {}
Analyzer::~Analyzer() = default;

void Analyzer::AddSource(const std::string& path, std::string_view contents) {
  auto sf = std::make_unique<Impl::SourceFile>();
  sf->path = path;
  sf->ts = analysis::Tokenize(contents, kAllowTag);
  sf->scopes = analysis::BuildScopes(sf->ts.tokens);
  for (const std::string& fragment : impl_->options.primitive_paths) {
    if (path.find(fragment) != std::string::npos) {
      sf->primitive = true;
    }
  }
  for (const std::string& fragment : impl_->options.wal_paths) {
    if (path.find(fragment) != std::string::npos) {
      sf->wal = true;
    }
  }
  sf->rank_header = path.find(impl_->options.rank_header) != std::string::npos;

  // Mine `lvm-analyze: edge(From, To)` declarations from the raw text (they
  // live in comments, which the tokenizer consumes).
  size_t at = 0;
  while ((at = contents.find(kEdgeTag, at)) != std::string_view::npos) {
    const int line =
        1 + static_cast<int>(std::count(contents.begin(), contents.begin() + at, '\n'));
    at += kEdgeTag.size();
    const size_t close = contents.find(')', at);
    if (close == std::string_view::npos) {
      break;
    }
    std::string inside(contents.substr(at, close - at));
    const size_t comma = inside.find(',');
    if (comma != std::string::npos) {
      auto trim = [](std::string s) {
        const size_t b = s.find_first_not_of(" \t");
        const size_t e = s.find_last_not_of(" \t");
        return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
      };
      DeclaredEdge edge;
      edge.from = trim(inside.substr(0, comma));
      edge.to = trim(inside.substr(comma + 1));
      edge.line = line;
      if (!edge.from.empty() && !edge.to.empty()) {
        sf->declared_edges.push_back(std::move(edge));
      }
    }
    at = close + 1;
  }

  impl_->files.push_back(std::move(sf));
}

namespace {

// The whole-program pass over every added source.
class Engine {
 public:
  explicit Engine(Analyzer::Impl* impl) : impl_(impl) {}

  AnalysisResult Run() {
    ScanRanks();
    ScanLockDecls();
    ScanGuards();
    CollectFunctions();
    MergeDeclRequires();
    WalkBodies();
    ResolveCalls();
    AcquireFixpoint();
    BuildEdges();
    CheckBlocking();
    CheckWalOrder();
    CheckDecls();
    CheckCycles();
    Finalize();
    return std::move(result_);
  }

 private:
  using SourceFile = Analyzer::Impl::SourceFile;

  // Rank constants, in declaration order in the rank header. The ordinal of
  // appearance there IS the declared total order.
  void ScanRanks() {
    for (const auto& sf : impl_->files) {
      if (!sf->rank_header) {
        continue;
      }
      for (const Token& t : sf->ts.tokens) {
        if (t.kind == Token::Kind::kIdentifier && t.text.rfind("kRank", 0) == 0 &&
            rank_ordinal_.find(t.text) == rank_ordinal_.end()) {
          rank_ordinal_[t.text] = static_cast<int>(rank_ordinal_.size()) + 1;
        }
      }
    }
  }

  // `Mutex <member> [annotations...] [{"name", kRank...}];` declarations.
  void ScanLockDecls() {
    for (const auto& sf : impl_->files) {
      const auto& t = sf->ts.tokens;
      for (size_t i = 0; i + 1 < t.size(); ++i) {
        if (!IsIdent(t, i, "Mutex")) {
          continue;
        }
        if (i > 0 && (IsIdent(t, i - 1, "class") || IsIdent(t, i - 1, "struct") ||
                      IsIdent(t, i - 1, "friend") || IsIdent(t, i - 1, "using"))) {
          continue;
        }
        if (!IsIdent(t, i + 1)) {
          continue;  // `Mutex&`, `Mutex*`, `Mutex>` ...: not an owning member.
        }
        LockDecl decl;
        decl.member = t[i + 1].text;
        decl.class_path = sf->scopes.ClassAt(i);
        decl.id = decl.class_path.empty() ? decl.member : decl.class_path + "::" + decl.member;
        decl.file = sf->path;
        decl.line = t[i + 1].line;
        // Walk the declaration tail: annotation macros, then an optional
        // brace initializer, then ';'. Anything else means this was not a
        // member declaration (e.g. a function returning Mutex).
        size_t j = i + 2;
        bool ok = false;
        while (j < t.size()) {
          if (IsIdent(t, j) && t[j].text.rfind("LVM_", 0) == 0 && IsPunct(t, j + 1, "(")) {
            j = MatchForward(t, j + 1, "(", ")") + 1;
            continue;
          }
          if (IsPunct(t, j, ";")) {
            ok = true;
            break;
          }
          if (IsPunct(t, j, "{")) {
            const size_t close = MatchForward(t, j, "{", "}");
            for (size_t k = j + 1; k < close; ++k) {
              if (t[k].kind == Token::Kind::kString && decl.name_literal.empty()) {
                decl.name_literal = t[k].text;
              } else if (IsIdent(t, k) && t[k].text.rfind("kRank", 0) == 0) {
                decl.rank_ident = t[k].text;
              }
            }
            j = close + 1;
            continue;
          }
          break;
        }
        if (ok) {
          locks_by_member_[decl.member].push_back(lock_decls_.size());
          lock_ids_.insert(decl.id);
          lock_decls_.push_back(std::move(decl));
        }
      }
    }
  }

  // Scoped-guard discovery: a constructor (function whose name equals its
  // innermost class) carrying LVM_ACQUIRE(<param>[.member...]).
  void ScanGuards() {
    guards_["MutexLock"] = GuardSpec{0, {}};  // The built-in RAII guard.
    for (const auto& sf : impl_->files) {
      const auto& t = sf->ts.tokens;
      for (const FunctionDef& def : sf->scopes.functions()) {
        if (def.class_path.empty() || def.name != LastComponent(def.class_path)) {
          continue;
        }
        // Find LVM_ACQUIRE in the signature tail.
        for (size_t j = def.params_end; j < def.sig_end; ++j) {
          if (!IsIdent(t, j, "LVM_ACQUIRE") || !IsPunct(t, j + 1, "(")) {
            continue;
          }
          const size_t close = MatchForward(t, j + 1, "(", ")");
          const std::vector<std::string> expr = IdentsIn(t, j + 2, close);
          if (expr.empty()) {
            continue;
          }
          // Parameter names: the identifier right before ',' / ')' / '='.
          std::vector<std::string> params;
          for (const auto& [b, e] : SplitArgs(t, def.params_begin, def.params_end)) {
            std::string name;
            for (size_t k = b; k < e; ++k) {
              if (IsIdent(t, k) &&
                  (k + 1 == e || IsPunct(t, k + 1, "=") || IsPunct(t, k + 1, "["))) {
                name = t[k].text;
              }
            }
            params.push_back(std::move(name));
          }
          for (size_t p = 0; p < params.size(); ++p) {
            if (!params[p].empty() && params[p] == expr.front()) {
              GuardSpec spec;
              spec.arg_index = p;
              spec.suffix.assign(expr.begin() + 1, expr.end());
              guards_.emplace(def.name, std::move(spec));
              break;
            }
          }
        }
      }
    }
  }

  // Lock-expression resolution: map `stripe.mu` / `mu_` / `s->mu` to a
  // canonical declared lock id, using the enclosing class for narrowing and
  // the receiver identifier as a tiebreaker. Unresolvable or ambiguous
  // expressions yield a "?member" id that tracks held/released pairing but
  // is excluded from edges and findings.
  std::string ResolveLock(const std::vector<std::string>& expr, const std::string& class_path) {
    if (expr.empty()) {
      return "?";
    }
    const std::string& member = expr.back();
    auto it = locks_by_member_.find(member);
    if (it == locks_by_member_.end()) {
      return "?" + member;
    }
    std::vector<const LockDecl*> cands;
    for (size_t index : it->second) {
      cands.push_back(&lock_decls_[index]);
    }
    // Same-class-family narrowing.
    std::vector<const LockDecl*> close;
    for (const LockDecl* d : cands) {
      if (d->class_path == class_path ||
          (!class_path.empty() && d->class_path.rfind(class_path + "::", 0) == 0) ||
          (!d->class_path.empty() && class_path.rfind(d->class_path + "::", 0) == 0)) {
        close.push_back(d);
      }
    }
    if (!close.empty()) {
      cands = std::move(close);
    }
    if (cands.size() > 1 && expr.size() > 1) {
      // Receiver tiebreak: `ring->mu` prefers a lock declared in a class
      // whose name resembles "ring".
      const std::string recv = LowerCore(expr[expr.size() - 2]);
      std::vector<const LockDecl*> matched;
      for (const LockDecl* d : cands) {
        const std::string cls = LowerCore(LastComponent(d->class_path));
        if (!recv.empty() && !cls.empty() &&
            (cls.find(recv) != std::string::npos || recv.find(cls) != std::string::npos)) {
          matched.push_back(d);
        }
      }
      if (!matched.empty()) {
        cands = std::move(matched);
      }
    }
    std::set<std::string> ids;
    for (const LockDecl* d : cands) {
      ids.insert(d->id);
    }
    if (ids.size() == 1) {
      return *ids.begin();
    }
    return "?" + member;
  }

  bool SigHas(const SourceFile& sf, const FunctionDef& def, std::string_view macro) {
    for (size_t j = def.params_end; j < def.sig_end; ++j) {
      if (IsIdent(sf.ts.tokens, j) && sf.ts.tokens[j].text == macro) {
        return true;
      }
    }
    return false;
  }

  void ParseRequires(const SourceFile& sf, const FunctionDef& def, FuncFacts* f) {
    const auto& t = sf.ts.tokens;
    for (size_t j = def.params_end; j < def.sig_end; ++j) {
      if (!IsIdent(t, j, "LVM_REQUIRES") || !IsPunct(t, j + 1, "(")) {
        continue;
      }
      const size_t close = MatchForward(t, j + 1, "(", ")");
      for (const auto& [b, e] : SplitArgs(t, j + 1, close)) {
        const std::string id = ResolveLock(IdentsIn(t, b, e), def.class_path);
        if (!Unresolved(id) &&
            std::find(f->entry_held.begin(), f->entry_held.end(), id) == f->entry_held.end()) {
          f->entry_held.push_back(id);
        }
      }
      j = close;
    }
  }

  void CollectFunctions() {
    for (const auto& sf : impl_->files) {
      for (const FunctionDef& def : sf->scopes.functions()) {
        if (!def.has_body) {
          decls_by_qualified_[def.qualified].emplace_back(sf.get(), &def);
          continue;
        }
        if (sf->primitive) {
          continue;  // The locking primitives themselves produce no facts.
        }
        auto f = std::make_unique<FuncFacts>();
        f->qualified = def.qualified;
        f->class_path = def.class_path;
        f->file = sf->path;
        f->line = def.line;
        f->wal_scope = sf->wal;
        if (!SigHas(*sf, def, "LVM_NO_THREAD_SAFETY_ANALYSIS")) {
          ParseRequires(*sf, def, f.get());
          bodies_.emplace_back(sf.get(), &def, f.get());
        }
        funcs_by_name_[def.name].push_back(f.get());
        funcs_.push_back(std::move(f));
      }
    }
    result_.functions = funcs_.size();
  }

  // Contracts stated only on a declaration (usually in the header) apply to
  // the definition too.
  void MergeDeclRequires() {
    for (auto& [sf, def, f] : bodies_) {
      auto it = decls_by_qualified_.find(f->qualified);
      if (it == decls_by_qualified_.end()) {
        continue;
      }
      for (const auto& [decl_sf, decl_def] : it->second) {
        ParseRequires(*decl_sf, *decl_def, f);
      }
    }
  }

  void WalkBodies() {
    for (auto& [sf, def, f] : bodies_) {
      WalkBody(*sf, *def, f);
    }
  }

  struct Held {
    std::string id;
    int depth = 0;     // Brace depth of a scoped guard; -1 for manual Lock().
    bool scoped = false;
  };

  static std::vector<std::string> Snapshot(const FuncFacts& f, const std::vector<Held>& held) {
    std::vector<std::string> out;
    auto add = [&out](const std::string& id) {
      if (!Unresolved(id) && std::find(out.begin(), out.end(), id) == out.end()) {
        out.push_back(id);
      }
    };
    for (const std::string& id : f.entry_held) {
      add(id);
    }
    for (const Held& h : held) {
      add(h.id);
    }
    return out;
  }

  // Base identifier of the receiver chain ending just before token `i`
  // (which is preceded by '.' or '->'): `flight_.Record` -> "flight_",
  // `race_detector()->GlobalBarrier` -> "race_detector".
  static std::string ReceiverBase(const std::vector<Token>& t, size_t i) {
    if (i < 2) {
      return "";
    }
    size_t k = i - 2;
    if (IsPunct(t, k, ")")) {
      const size_t open = MatchBackward(t, k, "(", ")");
      if (open == 0) {
        return "";
      }
      k = open - 1;
    } else if (IsPunct(t, k, "]")) {
      const size_t open = MatchBackward(t, k, "[", "]");
      if (open == 0) {
        return "";
      }
      k = open - 1;
    }
    return IsIdent(t, k) ? t[k].text : "";
  }

  // Tokens of the object expression before a `.Lock()` / `->Wait(...)`:
  // walks back over a contiguous identifier/member chain.
  static std::vector<std::string> ReceiverExpr(const std::vector<Token>& t, size_t i) {
    std::vector<std::string> out;
    size_t k = i - 1;  // The '.' or '->'.
    while (k > 0) {
      const size_t prev = k - 1;
      if (IsIdent(t, prev)) {
        out.push_back(t[prev].text);
        if (prev == 0) {
          break;
        }
        const Token& before = t[prev - 1];
        if (before.kind == Token::Kind::kPunct &&
            (before.text == "." || before.text == "->" || before.text == "::")) {
          k = prev - 1;
          continue;
        }
        break;
      }
      if (IsPunct(t, prev, "]")) {
        k = MatchBackward(t, prev, "[", "]");
        continue;
      }
      break;
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  void RecordAcquire(FuncFacts* f, std::vector<Held>* held, int depth, bool scoped,
                     const std::string& lock, int line, bool is_try) {
    AcqSite site;
    site.lock = lock;
    site.line = line;
    site.is_try = is_try;
    site.held = Snapshot(*f, *held);
    f->acquires.push_back(std::move(site));
    held->push_back(Held{lock, scoped ? depth : -1, scoped});
  }

  void WalkBody(const SourceFile& sf, const FunctionDef& def, FuncFacts* f) {
    const auto& t = sf.ts.tokens;
    std::vector<Held> held;
    int depth = 0;
    for (size_t i = def.body_begin + 1; i < def.body_end; ++i) {
      const Token& tok = t[i];
      if (tok.kind == Token::Kind::kPunct) {
        if (tok.text == "{") {
          ++depth;
        } else if (tok.text == "}") {
          held.erase(std::remove_if(held.begin(), held.end(),
                                    [depth](const Held& h) { return h.scoped && h.depth == depth; }),
                     held.end());
          --depth;
        }
        continue;
      }
      if (tok.kind != Token::Kind::kIdentifier) {
        continue;
      }
      const std::string& id = tok.text;
      const bool next_open = IsPunct(t, i + 1, "(");
      const bool after_member =
          i > 0 && t[i - 1].kind == Token::Kind::kPunct &&
          (t[i - 1].text == "." || t[i - 1].text == "->");

      // Scoped guard construction: `MutexLock lk(mu_);` / `G g{expr};`.
      auto git = guards_.find(id);
      if (git != guards_.end() && !after_member && IsIdent(t, i + 1) &&
          (IsPunct(t, i + 2, "(") || IsPunct(t, i + 2, "{")) &&
          !(i > 0 && (IsIdent(t, i - 1, "class") || IsIdent(t, i - 1, "struct") ||
                      IsIdent(t, i - 1, "friend")))) {
        const bool paren = IsPunct(t, i + 2, "(");
        const size_t close =
            paren ? MatchForward(t, i + 2, "(", ")") : MatchForward(t, i + 2, "{", "}");
        const auto args = SplitArgs(t, i + 2, close);
        const GuardSpec& spec = git->second;
        if (spec.arg_index < args.size()) {
          std::vector<std::string> expr =
              IdentsIn(t, args[spec.arg_index].first, args[spec.arg_index].second);
          expr.insert(expr.end(), spec.suffix.begin(), spec.suffix.end());
          RecordAcquire(f, &held, depth, /*scoped=*/true, ResolveLock(expr, f->class_path),
                        tok.line, /*is_try=*/false);
        }
        continue;
      }

      // Manual `x.Lock()` / `x->Unlock()` / `x.TryLock()`.
      if (next_open && after_member && (id == "Lock" || id == "Unlock" || id == "TryLock")) {
        const std::string lock = ResolveLock(ReceiverExpr(t, i), f->class_path);
        if (id == "Unlock") {
          for (size_t h = held.size(); h-- > 0;) {
            if (held[h].id == lock) {
              held.erase(held.begin() + static_cast<long>(h));
              break;
            }
          }
        } else {
          RecordAcquire(f, &held, depth, /*scoped=*/false, lock, tok.line, id == "TryLock");
        }
        continue;
      }

      // `cv.Wait(mu)`: blocks, releasing (only) its own mutex.
      if (next_open && after_member && id == "Wait") {
        const size_t close = MatchForward(t, i + 1, "(", ")");
        const auto args = SplitArgs(t, i + 1, close);
        DirectBlock block;
        block.kind = "CondVar::Wait";
        block.line = tok.line;
        block.held = Snapshot(*f, held);
        if (!args.empty()) {
          const std::string lock =
              ResolveLock(IdentsIn(t, args[0].first, args[0].second), f->class_path);
          if (!Unresolved(lock)) {
            block.exempt = lock;
          }
        }
        f->blocks.push_back(std::move(block));
        continue;
      }

      // Blocking primitives (thread join, flush/file I/O syscalls).
      if (next_open && BlockingPrims().count(id) > 0) {
        DirectBlock block;
        block.kind = id;
        block.line = tok.line;
        block.held = Snapshot(*f, held);
        f->blocks.push_back(std::move(block));
        if (sf.wal && WalBarrierIdents().count(id) > 0) {
          f->wal_events.push_back(WalEvent{WalEvent::Kind::kBarrier, 0, tok.line});
        }
        continue;
      }

      // WAL mutation / barrier events.
      if (sf.wal && next_open && (id == "memcpy" || id == "memset")) {
        const size_t close = MatchForward(t, i + 1, "(", ")");
        const auto args = SplitArgs(t, i + 1, close);
        if (!args.empty() && IsPersistentDest(IdentsIn(t, args[0].first, args[0].second))) {
          f->wal_events.push_back(WalEvent{WalEvent::Kind::kMutation, 0, tok.line});
        }
        continue;
      }
      if (sf.wal && next_open && id == "BlockHeader") {
        // `BlockHeader(...)->field = ...`: a raw header store.
        const size_t close = MatchForward(t, i + 1, "(", ")");
        if (IsPunct(t, close + 1, "->") && IsIdent(t, close + 2) && IsPunct(t, close + 3, "=") &&
            !IsPunct(t, close + 4, "=")) {
          f->wal_events.push_back(WalEvent{WalEvent::Kind::kMutation, 0, tok.line});
        }
        // Fall through: BlockHeader(...) is also an ordinary accessor call.
      }

      // General call.
      if (next_open && id.rfind("LVM_", 0) != 0 && CallExcludedKeywords().count(id) == 0 &&
          id != "memcpy" && id != "memset") {
        CallSite call;
        call.name = id;
        call.receiver = after_member ? ReceiverBase(t, i) : "";
        call.line = tok.line;
        call.held = Snapshot(*f, held);
        if (sf.wal && WalBarrierIdents().count(id) > 0) {
          f->wal_events.push_back(WalEvent{WalEvent::Kind::kBarrier, 0, tok.line});
        } else if (sf.wal) {
          f->wal_events.push_back(WalEvent{WalEvent::Kind::kCall, f->calls.size(), tok.line});
        }
        f->calls.push_back(std::move(call));
      }
    }
  }

  void ResolveCalls() {
    for (auto& f : funcs_) {
      for (CallSite& call : f->calls) {
        auto it = funcs_by_name_.find(call.name);
        if (it == funcs_by_name_.end()) {
          continue;
        }
        std::vector<FuncFacts*> cands = it->second;
        if (call.receiver.empty()) {
          // Unqualified call: prefer the enclosing class's own method, then
          // free functions (the only other thing an unqualified name can
          // denote — another class's non-static method is unreachable
          // without a receiver). Keeping every candidate only when neither
          // exists covers the rare inherited-method call.
          std::vector<FuncFacts*> same;
          std::vector<FuncFacts*> free_fns;
          for (FuncFacts* g : cands) {
            if (g->class_path == f->class_path) {
              same.push_back(g);
            } else if (g->class_path.empty()) {
              free_fns.push_back(g);
            }
          }
          if (!same.empty()) {
            cands = std::move(same);
          } else if (!free_fns.empty()) {
            cands = std::move(free_fns);
          }
        } else {
          // Method call through a receiver: keep only candidates whose class
          // name resembles the receiver identifier (`flight_->Record` ->
          // FlightRecorder::Record, `logs_[i]->Append` -> TraceLog::Append).
          // No resemblance at all means the receiver is a std:: container or
          // an out-of-repo object — resolving such generic names (`size`,
          // `Join`, ...) against every same-named repo method would flood
          // the graph with phantom chains, so the call resolves to nothing.
          const std::string recv = LowerCore(call.receiver);
          std::string singular = recv;
          if (!singular.empty() && singular.back() == 's') {
            singular.pop_back();
          }
          // Resemblance, strictest first: exact name, prefix/suffix
          // (`flight_` -> FlightRecorder, `memory_` -> PhysicalMemory), and
          // substring only for receivers long enough that an accidental hit
          // (`all` inside ParALLelEngine) is unlikely.
          auto resembles = [&](const std::string& cls) {
            for (const std::string& r : {recv, singular}) {
              if (r.empty()) {
                continue;
              }
              if (cls == r || cls.rfind(r, 0) == 0 ||
                  (cls.size() >= r.size() &&
                   cls.compare(cls.size() - r.size(), r.size(), r) == 0)) {
                return true;
              }
              if (r.size() >= 4 && cls.find(r) != std::string::npos) {
                return true;
              }
              if (r.rfind(cls, 0) == 0) {
                return true;
              }
            }
            return false;
          };
          std::vector<FuncFacts*> matched;
          for (FuncFacts* g : cands) {
            const std::string cls = LowerCore(LastComponent(g->class_path));
            if (!cls.empty() && resembles(cls)) {
              matched.push_back(g);
            }
          }
          cands = std::move(matched);
        }
        call.resolved = std::move(cands);
      }
    }
  }

  // Transitive may-acquire sets. AcqPath remembers the first discovery (a
  // direct site or the callee it came through) so cycle findings can print
  // the full acquisition chain.
  void AcquireFixpoint() {
    for (auto& f : funcs_) {
      for (const AcqSite& a : f->acquires) {
        if (!a.is_try && !Unresolved(a.lock) && f->acq_star.find(a.lock) == f->acq_star.end()) {
          f->acq_star[a.lock] = AcqPath{a.line, nullptr};
        }
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& f : funcs_) {
        for (const CallSite& call : f->calls) {
          for (FuncFacts* g : call.resolved) {
            for (const auto& [lock, path] : g->acq_star) {
              if (f->acq_star.find(lock) == f->acq_star.end()) {
                f->acq_star[lock] = AcqPath{call.line, g};
                changed = true;
              }
            }
          }
        }
      }
    }
  }

  std::string PathFor(FuncFacts* f, const std::string& lock, int depth = 0) {
    auto it = f->acq_star.find(lock);
    if (it == f->acq_star.end()) {
      return f->qualified + " -> ? " + lock;
    }
    std::string site = f->qualified + " (" + f->file + ":" + std::to_string(it->second.line) + ")";
    if (it->second.via == nullptr) {
      return site + " acquires " + lock;
    }
    if (depth > 8) {
      return site + " -> ...";
    }
    return site + " -> " + PathFor(it->second.via, lock, depth + 1);
  }

  void AddEdge(const std::string& from, const std::string& to, const std::string& function,
               const std::string& file, int line, std::string path) {
    if (Unresolved(from) || Unresolved(to)) {
      return;
    }
    auto key = std::make_pair(from, to);
    if (edges_.find(key) != edges_.end()) {
      return;
    }
    LockEdge edge;
    edge.from = from;
    edge.to = to;
    edge.function = function;
    edge.file = file;
    edge.line = line;
    edge.path = std::move(path);
    edges_.emplace(std::move(key), std::move(edge));
  }

  void BuildEdges() {
    for (auto& f : funcs_) {
      for (const AcqSite& a : f->acquires) {
        if (a.is_try || Unresolved(a.lock)) {
          continue;
        }
        for (const std::string& h : a.held) {
          AddEdge(h, a.lock, f->qualified, f->file, a.line,
                  f->qualified + " (" + f->file + ":" + std::to_string(a.line) + ") acquires " +
                      a.lock + " while holding " + h);
        }
      }
      for (const CallSite& call : f->calls) {
        if (call.held.empty()) {
          continue;
        }
        for (FuncFacts* g : call.resolved) {
          for (const auto& [lock, path] : g->acq_star) {
            if (std::find(call.held.begin(), call.held.end(), lock) != call.held.end()) {
              continue;  // Already held: no new edge (and re-entry is g's bug).
            }
            for (const std::string& h : call.held) {
              AddEdge(h, lock, f->qualified, f->file, call.line,
                      f->qualified + " (" + f->file + ":" + std::to_string(call.line) +
                          ") holding " + h + " -> " + PathFor(g, lock));
            }
          }
        }
      }
    }
    for (const auto& sf : impl_->files) {
      for (const DeclaredEdge& d : sf->declared_edges) {
        AddEdge(d.from, d.to, "(declared)", sf->path, d.line,
                "declared by comment at " + sf->path + ":" + std::to_string(d.line));
      }
    }
  }

  void CheckBlocking() {
    // Transitive blocking reachability.
    for (auto& f : funcs_) {
      for (const DirectBlock& b : f->blocks) {
        f->block_star.insert(BlockSpec{b.kind, b.exempt, ""});
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& f : funcs_) {
        for (const CallSite& call : f->calls) {
          for (FuncFacts* g : call.resolved) {
            for (const BlockSpec& spec : g->block_star) {
              if (f->block_star.size() >= 8) {
                break;
              }
              BlockSpec lifted{spec.kind, spec.exempt,
                               spec.through.empty() ? g->qualified : spec.through};
              if (f->block_star.insert(lifted).second) {
                changed = true;
              }
            }
          }
        }
      }
    }
    // Direct findings.
    for (auto& f : funcs_) {
      for (const DirectBlock& b : f->blocks) {
        std::vector<std::string> offending;
        for (const std::string& h : b.held) {
          if (h != b.exempt) {
            offending.push_back(h);
          }
        }
        if (!offending.empty()) {
          Emit(Rule::kLockBlocking, f->file, b.line,
               f->qualified + " holds " + Join(offending) + " across blocking " + b.kind +
                   (b.exempt.empty() ? "" : " (which releases only " + b.exempt + ")"));
        }
      }
      // Transitive findings at the call site.
      for (const CallSite& call : f->calls) {
        if (call.held.empty()) {
          continue;
        }
        std::vector<std::string> offending;
        std::string reason;
        for (FuncFacts* g : call.resolved) {
          for (const BlockSpec& spec : g->block_star) {
            for (const std::string& h : call.held) {
              if (h != spec.exempt &&
                  std::find(offending.begin(), offending.end(), h) == offending.end()) {
                offending.push_back(h);
                if (reason.empty()) {
                  reason = (spec.through.empty() ? g->qualified : spec.through) +
                           " reaches blocking " + spec.kind;
                }
              }
            }
          }
        }
        if (!offending.empty()) {
          Emit(Rule::kLockBlocking, f->file, call.line,
               f->qualified + " holds " + Join(offending) + " across call to " + call.name +
                   ": " + reason);
        }
      }
    }
  }

  void CheckWalOrder() {
    // Effect fixpoint: does a function end with dirty (unflushed) persistent
    // bytes, end clean behind a barrier, or touch nothing?
    bool changed = true;
    size_t passes = 0;
    while (changed && passes++ <= funcs_.size() + 1) {
      changed = false;
      for (auto& f : funcs_) {
        if (!f->wal_scope) {
          continue;
        }
        bool dirty = false;
        bool barrier = false;
        for (const WalEvent& ev : f->wal_events) {
          switch (ev.kind) {
            case WalEvent::Kind::kMutation:
              dirty = true;
              break;
            case WalEvent::Kind::kBarrier:
              dirty = false;
              barrier = true;
              break;
            case WalEvent::Kind::kCall: {
              int effect = 0;
              for (FuncFacts* g : f->calls[ev.call_index].resolved) {
                if (g->wal_scope) {
                  effect = std::max(effect, g->wal_effect);
                }
              }
              if (effect == 2) {
                dirty = true;
              } else if (effect == 1) {
                dirty = false;
                barrier = true;
              }
              break;
            }
          }
        }
        const int effect = dirty ? 2 : (barrier ? 1 : 0);
        if (effect != f->wal_effect) {
          f->wal_effect = effect;
          changed = true;
        }
      }
    }
    // A dirty function is exempt when some caller orders a barrier after the
    // call (the helper-plus-flushing-caller pattern); otherwise it is an API
    // that can return with unpersisted WAL/image bytes.
    for (auto& f : funcs_) {
      if (!f->wal_scope || f->wal_effect != 2) {
        continue;
      }
      bool called = false;
      bool barriered = false;
      for (auto& g : funcs_) {
        if (!g->wal_scope || g.get() == f.get()) {
          continue;
        }
        for (size_t e = 0; e < g->wal_events.size(); ++e) {
          const WalEvent& ev = g->wal_events[e];
          if (ev.kind != WalEvent::Kind::kCall) {
            continue;
          }
          const CallSite& call = g->calls[ev.call_index];
          if (std::find(call.resolved.begin(), call.resolved.end(), f.get()) ==
              call.resolved.end()) {
            continue;
          }
          called = true;
          for (size_t later = e + 1; later < g->wal_events.size() && !barriered; ++later) {
            const WalEvent& lev = g->wal_events[later];
            if (lev.kind == WalEvent::Kind::kBarrier) {
              barriered = true;
            } else if (lev.kind == WalEvent::Kind::kCall) {
              for (FuncFacts* h : g->calls[lev.call_index].resolved) {
                if (h->wal_scope && h->wal_effect == 1) {
                  barriered = true;
                }
              }
            }
          }
        }
      }
      if (!barriered) {
        Emit(Rule::kWalPersistOrder, f->file, f->line,
             f->qualified + " mutates persistent WAL/image bytes but ends without a flush "
                            "barrier, and " +
                 (called ? "no caller orders a barrier after the call"
                         : "it has no caller that could order one"));
      }
    }
  }

  void CheckDecls() {
    for (const LockDecl& d : lock_decls_) {
      if (!d.name_literal.empty() && d.name_literal != d.id) {
        Emit(Rule::kLockDecl, d.file, d.line,
             "lock " + d.id + " is constructed with runtime name \"" + d.name_literal +
                 "\"; the witness cross-check needs the canonical id \"" + d.id + "\"");
      }
      if (!d.rank_ident.empty()) {
        auto it = rank_ordinal_.find(d.rank_ident);
        if (it == rank_ordinal_.end()) {
          Emit(Rule::kLockDecl, d.file, d.line,
               "lock " + d.id + " uses rank " + d.rank_ident + ", which is not declared in " +
                   impl_->options.rank_header);
        } else {
          lock_rank_[d.id] = it->second;
        }
      }
    }
    for (const auto& [key, edge] : edges_) {
      auto from = lock_rank_.find(edge.from);
      auto to = lock_rank_.find(edge.to);
      if (from != lock_rank_.end() && to != lock_rank_.end() && from->second >= to->second) {
        Emit(Rule::kLockDecl, edge.file, edge.line,
             "edge " + edge.from + " -> " + edge.to + " contradicts the declared rank order (" +
                 std::to_string(from->second) + " >= " + std::to_string(to->second) + " in " +
                 impl_->options.rank_header + "): " + edge.path);
      }
    }
  }

  // Tarjan SCC over the lock-order graph; any SCC with more than one lock,
  // or a self-edge, is a static deadlock.
  void CheckCycles() {
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [key, edge] : edges_) {
      adj[edge.from].push_back(edge.to);
      adj[edge.to];
    }
    std::map<std::string, int> index;
    std::map<std::string, int> low;
    std::map<std::string, bool> on_stack;
    std::vector<std::string> stack;
    std::vector<std::vector<std::string>> sccs;
    int next = 0;
    std::function<void(const std::string&)> strongconnect = [&](const std::string& v) {
      index[v] = low[v] = next++;
      stack.push_back(v);
      on_stack[v] = true;
      for (const std::string& w : adj[v]) {
        if (index.find(w) == index.end()) {
          strongconnect(w);
          low[v] = std::min(low[v], low[w]);
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      }
      if (low[v] == index[v]) {
        std::vector<std::string> scc;
        while (true) {
          const std::string w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc.push_back(w);
          if (w == v) {
            break;
          }
        }
        sccs.push_back(std::move(scc));
      }
    };
    for (const auto& [v, unused] : adj) {
      if (index.find(v) == index.end()) {
        strongconnect(v);
      }
    }
    for (std::vector<std::string>& scc : sccs) {
      const bool self_loop =
          scc.size() == 1 && edges_.find(std::make_pair(scc[0], scc[0])) != edges_.end();
      if (scc.size() < 2 && !self_loop) {
        continue;
      }
      std::sort(scc.begin(), scc.end());
      const std::set<std::string> members(scc.begin(), scc.end());
      std::string message = "lock-order cycle among {" + Join(scc) + "}:";
      const LockEdge* site = nullptr;
      size_t listed = 0;
      for (const auto& [key, edge] : edges_) {
        if (members.count(edge.from) == 0 || members.count(edge.to) == 0) {
          continue;
        }
        if (site == nullptr) {
          site = &edge;
        }
        if (listed++ < 6) {
          message += " [" + edge.from + " -> " + edge.to + " via " + edge.path + "]";
        }
      }
      if (site != nullptr) {
        Emit(Rule::kLockCycle, site->file, site->line, message);
      }
    }
  }

  void Finalize() {
    result_.lock_ids.assign(lock_ids_.begin(), lock_ids_.end());
    result_.lock_ranks = lock_rank_;
    for (auto& [key, edge] : edges_) {
      result_.edges.push_back(std::move(edge));
    }
    std::sort(result_.edges.begin(), result_.edges.end(),
              [](const LockEdge& a, const LockEdge& b) {
                return std::tie(a.from, a.to) < std::tie(b.from, b.to);
              });
    result_.files_scanned = impl_->files.size();
  }

  static std::string Join(const std::vector<std::string>& items) {
    std::string out;
    for (const std::string& item : items) {
      if (!out.empty()) {
        out += ", ";
      }
      out += item;
    }
    return out;
  }

  void Emit(Rule rule, const std::string& file, int line, std::string message) {
    auto sup = suppressions_cache_.find(file);
    if (sup == suppressions_cache_.end()) {
      for (const auto& sf : impl_->files) {
        if (sf->path == file) {
          sup = suppressions_cache_.emplace(file, &sf->ts.suppressions).first;
          break;
        }
      }
    }
    if (sup != suppressions_cache_.end()) {
      for (int probe = line; probe >= line - 1; --probe) {
        auto it = sup->second->find(probe);
        if (it != sup->second->end() && it->second.count(RuleName(rule)) > 0) {
          ++result_.suppressions_used;
          return;
        }
      }
    }
    Finding finding;
    finding.rule = rule;
    finding.file = file;
    finding.line = line;
    finding.message = std::move(message);
    result_.findings.push_back(std::move(finding));
  }

  Analyzer::Impl* impl_;
  AnalysisResult result_;

  std::vector<LockDecl> lock_decls_;
  std::map<std::string, std::vector<size_t>> locks_by_member_;
  std::set<std::string> lock_ids_;
  std::map<std::string, GuardSpec> guards_;
  std::map<std::string, int> rank_ordinal_;
  std::map<std::string, int> lock_rank_;
  std::vector<std::unique_ptr<FuncFacts>> funcs_;
  std::map<std::string, std::vector<FuncFacts*>> funcs_by_name_;
  std::map<std::string, std::vector<std::pair<const SourceFile*, const FunctionDef*>>>
      decls_by_qualified_;
  std::vector<std::tuple<const SourceFile*, const FunctionDef*, FuncFacts*>> bodies_;
  std::map<std::pair<std::string, std::string>, LockEdge> edges_;
  std::map<std::string, const std::map<int, std::set<std::string>>*> suppressions_cache_;
};

bool IsSourceFile(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h";
}

}  // namespace

AnalysisResult Analyzer::Run() { return Engine(impl_.get()).Run(); }

bool AnalyzePaths(const std::vector<std::string>& paths, const AnalyzeOptions& options,
                  AnalysisResult* result, std::string* error) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    fs::file_status status = fs::status(path, ec);
    if (ec || status.type() == fs::file_type::not_found) {
      if (error != nullptr) {
        *error = "no such file or directory: " + path;
      }
      return false;
    }
    if (fs::is_directory(status)) {
      for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
      if (ec) {
        if (error != nullptr) {
          *error = "error walking " + path + ": " + ec.message();
        }
        return false;
      }
    } else {
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());
  Analyzer analyzer(options);
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      if (error != nullptr) {
        *error = "cannot read " + file;
      }
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    analyzer.AddSource(file, buffer.str());
  }
  *result = analyzer.Run();
  return true;
}

std::string ReportJson(const AnalysisResult& result) {
  std::string out = "{\"schema\":\"";
  out += obs::kAnalysisReportSchema;
  out += "\",\"files_scanned\":" + obs::JsonNumber(static_cast<uint64_t>(result.files_scanned));
  out += ",\"functions\":" + obs::JsonNumber(static_cast<uint64_t>(result.functions));
  out += ",\"suppressions_used\":" +
         obs::JsonNumber(static_cast<uint64_t>(result.suppressions_used));
  out += ",\"locks\":[";
  bool first = true;
  for (const std::string& id : result.lock_ids) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"id\":";
    obs::AppendJsonString(&out, id);
    auto rank = result.lock_ranks.find(id);
    out += ",\"rank\":" +
           obs::JsonNumber(static_cast<uint64_t>(rank == result.lock_ranks.end() ? 0
                                                                                 : rank->second));
    out += "}";
  }
  out += "],\"edges\":[";
  first = true;
  for (const LockEdge& edge : result.edges) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"from\":";
    obs::AppendJsonString(&out, edge.from);
    out += ",\"to\":";
    obs::AppendJsonString(&out, edge.to);
    out += ",\"function\":";
    obs::AppendJsonString(&out, edge.function);
    out += ",\"file\":";
    obs::AppendJsonString(&out, edge.file);
    out += ",\"line\":" + obs::JsonNumber(static_cast<uint64_t>(edge.line));
    out += ",\"path\":";
    obs::AppendJsonString(&out, edge.path);
    out += "}";
  }
  out += "],\"finding_count\":" + obs::JsonNumber(static_cast<uint64_t>(result.findings.size()));
  out += ",\"findings\":[";
  first = true;
  for (const Finding& f : result.findings) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"rule\":";
    obs::AppendJsonString(&out, RuleName(f.rule));
    out += ",\"exit_code\":" + obs::JsonNumber(static_cast<uint64_t>(RuleExitCode(f.rule)));
    out += ",\"file\":";
    obs::AppendJsonString(&out, f.file);
    out += ",\"line\":" + obs::JsonNumber(static_cast<uint64_t>(f.line));
    out += ",\"message\":";
    obs::AppendJsonString(&out, f.message);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string LockGraphJson(const AnalysisResult& result) {
  std::string out = "{\"schema\":\"";
  out += obs::kLockGraphSchema;
  out += "\",\"source\":\"static\",\"locks\":[";
  bool first = true;
  for (const std::string& id : result.lock_ids) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":";
    obs::AppendJsonString(&out, id);
    auto rank = result.lock_ranks.find(id);
    out += ",\"rank\":" +
           obs::JsonNumber(static_cast<uint64_t>(rank == result.lock_ranks.end() ? 0
                                                                                 : rank->second));
    out += "}";
  }
  out += "],\"edges\":[";
  first = true;
  for (const LockEdge& edge : result.edges) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"from\":";
    obs::AppendJsonString(&out, edge.from);
    out += ",\"to\":";
    obs::AppendJsonString(&out, edge.to);
    out += ",\"file\":";
    obs::AppendJsonString(&out, edge.file);
    out += ",\"line\":" + obs::JsonNumber(static_cast<uint64_t>(edge.line));
    out += "}";
  }
  out += "],\"violations\":[]}";
  return out;
}

std::string GraphDot(const AnalysisResult& result) {
  std::string out = "digraph lvm_lockorder {\n  rankdir=LR;\n  node [shape=box];\n";
  for (const std::string& id : result.lock_ids) {
    auto rank = result.lock_ranks.find(id);
    out += "  \"" + id + "\"";
    if (rank != result.lock_ranks.end()) {
      out += " [label=\"" + id + "\\nrank " + std::to_string(rank->second) + "\"]";
    }
    out += ";\n";
  }
  for (const LockEdge& edge : result.edges) {
    out += "  \"" + edge.from + "\" -> \"" + edge.to + "\" [label=\"" + edge.file + ":" +
           std::to_string(edge.line) + "\"];\n";
  }
  out += "}\n";
  return out;
}

int ExitCodeFor(const AnalysisResult& result) {
  if (result.findings.empty()) {
    return 0;
  }
  const Rule first = result.findings.front().rule;
  for (const Finding& f : result.findings) {
    if (f.rule != first) {
      return 1;  // Mixed rules: no single rule-specific code applies.
    }
  }
  return RuleExitCode(first);
}

}  // namespace analyze
}  // namespace lvm
