// lvm-analyze: whole-program lock-order & blocking-context analyzer
// (DESIGN.md §16).
//
// A dependency-free analyzer over the C++ sources, built on the shared
// tools/analysis tokenizer + scope tracker. It extracts per-function
// lock-acquisition facts from lvm::MutexLock / Mutex::Lock() / scoped-guard
// sites and a call graph, propagates held-lock sets interprocedurally, and
// enforces:
//
//   lock-cycle        (exit 20)  The global lock-order graph has a cycle:
//                                two code paths acquire the same locks in
//                                opposite orders — a static deadlock. The
//                                finding prints every edge's acquisition
//                                path.
//   lock-blocking     (exit 21)  A mutex is held across a blocking call
//                                (CondVar::Wait on another lock, thread
//                                join, msync/fsync, file I/O): a latency
//                                cliff and, for waits, a deadlock hazard.
//                                CondVar::Wait is exempt w.r.t. its own
//                                mutex (it releases it while blocked).
//   wal-persist-order (exit 22)  A src/hostlvm function mutates persistent
//                                WAL/image bytes (mapped-memory writes) but
//                                ends without a flush barrier, and no caller
//                                orders a barrier after it — the crash
//                                matrix's persist discipline, enforced
//                                statically.
//   lock-decl         (exit 23)  A lock declaration contradicts the global
//                                order: its runtime name literal differs
//                                from the canonical <Class>::<member> id the
//                                analyzer derives (so witness edges could
//                                not be matched to static edges), its rank
//                                names no constant in src/base/lock_order.h,
//                                or an observed edge runs against the
//                                declared rank order.
//
// Beyond checking, the analyzer exports its artifacts: the lvm.analysis.v1
// JSON report and the static lock-order graph as lvm.lockgraph.v1 — the
// same schema the runtime LockOrderWitness (src/base/lock_witness.h) emits,
// so a test can assert static-graph ⊇ dynamic-edges.
//
// Known blind spots, by design of a lexical tool: calls through
// std::function/function pointers are invisible (declare those edges with a
// `// lvm-analyze: edge(From::mu, To::mu)` comment), and fatal crash-dump
// paths running under LVM_CHECK failure are exempt (they use TryLock).
//
// A finding is silenced by `// lvm-analyze: allow(<rule>)` on the same or
// the preceding line of the reported site. Exit codes: 0 clean, the rule's
// code when all findings share one rule, 1 for a mix, 2 for usage/IO errors.
#ifndef TOOLS_LVM_ANALYZE_ANALYZE_H_
#define TOOLS_LVM_ANALYZE_ANALYZE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lvm {
namespace analyze {

enum class Rule : uint8_t {
  kLockCycle,
  kLockBlocking,
  kWalPersistOrder,
  kLockDecl,
};

inline constexpr int kUsageError = 2;

const char* RuleName(Rule rule);
// The rule's dedicated process exit code (20..23).
int RuleExitCode(Rule rule);
bool ParseRuleName(std::string_view name, Rule* out);

struct Finding {
  Rule rule = Rule::kLockCycle;
  std::string file;
  int line = 0;
  std::string message;
};

// One lock-order edge: `from` was held while `to` was acquired. `path` is
// the human-readable acquisition chain that witnesses the edge (function and
// call sites down to the acquire).
struct LockEdge {
  std::string from;
  std::string to;
  std::string function;  // Where the edge materializes.
  std::string file;
  int line = 0;
  std::string path;
};

struct AnalysisResult {
  std::vector<std::string> lock_ids;       // Every declared lock, sorted.
  std::map<std::string, int> lock_ranks;   // id -> declared rank ordinal (1-based).
  std::vector<LockEdge> edges;             // Deduped by (from, to); first witness.
  std::vector<Finding> findings;
  size_t files_scanned = 0;
  size_t functions = 0;
  size_t suppressions_used = 0;
};

struct AnalyzeOptions {
  // Path fragments selecting the WAL persist-ordering scope.
  std::vector<std::string> wal_paths = {"src/hostlvm/"};
  // Files implementing the locking primitives themselves: scanned for lock
  // and guard declarations, but their bodies (which manipulate the raw
  // std primitives) produce no acquisition facts.
  std::vector<std::string> primitive_paths = {"src/base/mutex.h", "src/base/lock_witness"};
  // The header whose kRank* constants define the global order; the order of
  // their appearance there is the declared rank order.
  std::string rank_header = "src/base/lock_order.h";
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzeOptions options = {});
  ~Analyzer();
  Analyzer(const Analyzer&) = delete;
  Analyzer& operator=(const Analyzer&) = delete;

  // Adds one translation unit. `path` scopes the path-based rules.
  void AddSource(const std::string& path, std::string_view contents);

  // Runs the whole-program analysis over every added source.
  AnalysisResult Run();

  struct Impl;  // Internal state; public only for the implementation file.

 private:
  std::unique_ptr<Impl> impl_;
};

// Analyzes every .h/.cc under `paths` (files or directories). Returns false
// and sets `error` on a missing path or unreadable file.
bool AnalyzePaths(const std::vector<std::string>& paths, const AnalyzeOptions& options,
                  AnalysisResult* result, std::string* error);

// The result as a strict-JSON lvm.analysis.v1 document.
std::string ReportJson(const AnalysisResult& result);
// The static lock-order graph as a strict-JSON lvm.lockgraph.v1 document
// (source "static"), the same schema LockOrderWitness exports.
std::string LockGraphJson(const AnalysisResult& result);
// The lock-order graph as Graphviz dot.
std::string GraphDot(const AnalysisResult& result);

// 0 when clean; RuleExitCode(r) when every finding is of rule r; 1 mixed.
int ExitCodeFor(const AnalysisResult& result);

}  // namespace analyze
}  // namespace lvm

#endif  // TOOLS_LVM_ANALYZE_ANALYZE_H_
