// lvm-analyze CLI: whole-program lock-order and blocking-context analysis.
//
//   lvm-analyze [--json=PATH] [--lockgraph=PATH] [--graph-dot[=PATH]] <file-or-dir>...
//
// Prints one line per finding (file:line: [rule] message) and a summary of
// the lock-order graph. --json writes the strict-JSON lvm.analysis.v1
// report; --lockgraph writes the static lock-order graph as
// lvm.lockgraph.v1 (the schema the runtime LockOrderWitness also emits);
// --graph-dot emits Graphviz (stdout without =PATH). Exit codes: 0 clean; a
// rule's dedicated code (20..23, see analyze.h) when all findings share that
// rule; 1 for mixed rules; 2 for usage or I/O errors.
#include <cstdio>
#include <string>
#include <vector>

#include "tools/lvm_analyze/analyze.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lvm-analyze [--json=PATH] [--lockgraph=PATH] [--graph-dot[=PATH]] "
               "<file-or-dir>...\n"
               "rules (exit codes): lock-cycle(20) lock-blocking(21) wal-persist-order(22) "
               "lock-decl(23)\n"
               "suppress with: // lvm-analyze: allow(<rule>)\n"
               "declare an invisible edge with: // lvm-analyze: edge(From::mu, To::mu)\n");
  return lvm::analyze::kUsageError;
}

bool WriteFileOrDie(const std::string& path, const std::string& contents) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "lvm-analyze: cannot write %s\n", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  const bool close_ok = std::fclose(file) == 0;
  if (written != contents.size() || !close_ok) {
    std::fprintf(stderr, "lvm-analyze: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string json_path;
  std::string lockgraph_path;
  std::string dot_path;
  bool dot_stdout = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      if (json_path.empty()) {
        return Usage();
      }
    } else if (arg.rfind("--lockgraph=", 0) == 0) {
      lockgraph_path = arg.substr(12);
      if (lockgraph_path.empty()) {
        return Usage();
      }
    } else if (arg.rfind("--graph-dot=", 0) == 0) {
      dot_path = arg.substr(12);
      if (dot_path.empty()) {
        return Usage();
      }
    } else if (arg == "--graph-dot") {
      dot_stdout = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "lvm-analyze: unknown option %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (paths.empty()) {
    return Usage();
  }

  lvm::analyze::AnalyzeOptions options;
  lvm::analyze::AnalysisResult result;
  std::string error;
  if (!lvm::analyze::AnalyzePaths(paths, options, &result, &error)) {
    std::fprintf(stderr, "lvm-analyze: %s\n", error.c_str());
    return lvm::analyze::kUsageError;
  }

  for (const lvm::analyze::Finding& f : result.findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 lvm::analyze::RuleName(f.rule), f.message.c_str());
  }
  std::printf(
      "lvm-analyze: %zu files, %zu functions, %zu locks, %zu lock-order edges, "
      "%zu finding(s), %zu suppressed\n",
      result.files_scanned, result.functions, result.lock_ids.size(), result.edges.size(),
      result.findings.size(), result.suppressions_used);

  if (!json_path.empty() && !WriteFileOrDie(json_path, lvm::analyze::ReportJson(result))) {
    return lvm::analyze::kUsageError;
  }
  if (!lockgraph_path.empty() &&
      !WriteFileOrDie(lockgraph_path, lvm::analyze::LockGraphJson(result))) {
    return lvm::analyze::kUsageError;
  }
  if (!dot_path.empty() && !WriteFileOrDie(dot_path, lvm::analyze::GraphDot(result))) {
    return lvm::analyze::kUsageError;
  }
  if (dot_stdout) {
    const std::string dot = lvm::analyze::GraphDot(result);
    std::fwrite(dot.data(), 1, dot.size(), stdout);
  }

  return lvm::analyze::ExitCodeFor(result);
}
