// lvm-lint CLI: lint source trees against the repo conventions.
//
//   lvm-lint [--json=PATH] <file-or-dir>...
//
// Prints one line per violation (file:line: [rule] message) and a summary.
// --json=PATH additionally writes the strict-JSON lvm.lint_report.v1 report.
// Exit codes: 0 clean; a rule's dedicated code (10..17, see lint.h) when all
// violations share that rule; 1 for mixed rules; 2 for usage or I/O errors.
#include <cstdio>
#include <string>
#include <vector>

#include "tools/lvm_lint/lint.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lvm-lint [--json=PATH] <file-or-dir>...\n"
               "rules (exit codes): raw-store(10) flight-pairing(11) metric-name(12) "
               "schema-version(13) check-macro(14) prof-scope(15) wal-raw-store(16) "
               "dead-suppression(17)\n"
               "suppress with: // lvm-lint: allow(<rule>)\n");
  return lvm::lint::kUsageError;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      if (json_path.empty()) {
        return Usage();
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "lvm-lint: unknown option %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (paths.empty()) {
    return Usage();
  }

  lvm::lint::LintOptions options;
  lvm::lint::LintResult result;
  std::string error;
  if (!lvm::lint::LintPaths(paths, options, &result, &error)) {
    std::fprintf(stderr, "lvm-lint: %s\n", error.c_str());
    return lvm::lint::kUsageError;
  }

  for (const lvm::lint::Violation& v : result.violations) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(), v.line, lvm::lint::RuleName(v.rule),
                 v.message.c_str());
  }
  std::printf("lvm-lint: %zu files scanned, %zu violation(s), %zu suppressed\n",
              result.files_scanned, result.violations.size(), result.suppressions_used);

  if (!json_path.empty()) {
    const std::string report = lvm::lint::ReportJson(result);
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "lvm-lint: cannot write %s\n", json_path.c_str());
      return lvm::lint::kUsageError;
    }
    const size_t written = std::fwrite(report.data(), 1, report.size(), file);
    const bool close_ok = std::fclose(file) == 0;
    if (written != report.size() || !close_ok) {
      std::fprintf(stderr, "lvm-lint: short write to %s\n", json_path.c_str());
      return lvm::lint::kUsageError;
    }
  }

  return lvm::lint::ExitCodeFor(result);
}
