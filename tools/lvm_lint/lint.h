// lvm-lint: the repo's own static checker (DESIGN.md §13).
//
// A dependency-free lexical analyzer over the C++ sources enforcing the
// conventions the compiler cannot:
//
//   raw-store       (exit 10)  Direct physical-memory mutation (raw_mutable,
//                              WriteBlock, CopyBlock, Zero) outside the
//                              whitelisted machine/kernel layers. Recoverable-
//                              region stores must flow through the logged
//                              write path or the hardware would never see
//                              them — a silent recovery hole.
//   flight-pairing  (exit 11)  Paired flight-recorder event kinds recorded
//                              unevenly within a file (a Suspend without its
//                              Resume, a Start without its Join): the
//                              post-mortem timeline would show an open
//                              interval that never closes.
//   metric-name     (exit 12)  A metric registered under a literal that does
//                              not follow the `subsystem.name` lowercase-dot
//                              convention every dashboard and test greps for.
//   schema-version  (exit 13)  A `lvm.<doc>.v<N>` schema literal outside the
//                              single registry header (src/obs/schema_ids.h),
//                              where readers and writers could drift apart.
//   check-macro     (exit 14)  `assert(...)` in non-test code; LVM_CHECK is
//                              the project invariant macro (always on, flight
//                              recorded, black-box dumping).
//   prof-scope      (exit 15)  LVM_PROF_BEGIN and LVM_PROF_END used in
//                              unmatched numbers within a file: an open
//                              profiler scope mis-attributes every cycle
//                              charged after it (prefer the RAII
//                              LVM_PROF_SCOPE, which cannot unbalance).
//   wal-raw-store   (exit 16)  A raw_block_bytes()/raw_superblock_bytes()
//                              call outside src/hostlvm/: writing mapped WAL
//                              memory directly bypasses the framed append
//                              path (BEGIN/END signatures, checksums, the
//                              commit cursor), so recovery would either
//                              discard the bytes or replay garbage.
//   dead-suppression (exit 17) An `allow()` comment that silences nothing:
//                              either it names no known rule, or the finding
//                              it once fenced is gone. Stale suppressions
//                              accumulate silently and would hide the next
//                              real finding on that line.
//
// A finding is silenced by `// lvm-lint: allow(<rule>)` on the same or the
// preceding line. Exit codes: 0 clean, the rule's code when all violations
// share one rule, 1 for a mix, 2 for usage/IO errors.
#ifndef TOOLS_LVM_LINT_LINT_H_
#define TOOLS_LVM_LINT_LINT_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace lvm {
namespace lint {

enum class Rule : uint8_t {
  kRawStore,
  kFlightPairing,
  kMetricName,
  kSchemaVersion,
  kCheckMacro,
  kProfScope,
  kWalRawStore,
  kDeadSuppression,
};

inline constexpr int kUsageError = 2;

// Stable rule slug ("raw-store", ...), used in reports and allow() comments.
const char* RuleName(Rule rule);
// The rule's dedicated process exit code (10..17).
int RuleExitCode(Rule rule);
// Parses a slug back to its rule; false if unknown.
bool ParseRuleName(std::string_view name, Rule* out);

struct Violation {
  Rule rule = Rule::kRawStore;
  std::string file;  // Path as passed to the linter.
  int line = 0;      // 1-based.
  std::string message;
};

struct LintResult {
  std::vector<Violation> violations;
  size_t files_scanned = 0;
  // Violations silenced by lvm-lint: allow(...) comments.
  size_t suppressions_used = 0;
};

struct LintOptions {
  // Path fragments naming the layers allowed to mutate physical memory
  // directly: the machine model itself, the logging hardware, and the
  // kernel (whose fault/copy paths are the logged-write implementation).
  std::vector<std::string> raw_store_allowed_dirs = {
      "src/sim/",
      "src/logger/",
      "src/vm/",
      "src/lvm/",
  };
  // The one header allowed to define schema version literals.
  std::string schema_registry = "src/obs/schema_ids.h";
  // The layer that owns the WAL arena's mapped bytes; only it may write
  // them raw (it is the framed append path).
  std::vector<std::string> wal_raw_store_allowed_dirs = {
      "src/hostlvm/",
  };
};

// Lints one translation unit. `path` is used for reporting and for the
// path-scoped rules (raw-store whitelist, schema registry exemption).
void LintSource(const std::string& path, std::string_view contents, const LintOptions& options,
                LintResult* result);

// Lints every .h/.cc file under `paths` (each a file or a directory,
// directories walked recursively). Returns false and sets `error` on a
// missing path or unreadable file.
bool LintPaths(const std::vector<std::string>& paths, const LintOptions& options,
               LintResult* result, std::string* error);

// The result as a strict-JSON lvm.lint_report.v1 document.
std::string ReportJson(const LintResult& result);

// 0 when clean; RuleExitCode(r) when every violation is of rule r; 1 when
// rules are mixed.
int ExitCodeFor(const LintResult& result);

}  // namespace lint
}  // namespace lvm

#endif  // TOOLS_LVM_LINT_LINT_H_
