#include "tools/lvm_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "src/obs/json.h"
#include "src/obs/schema_ids.h"
#include "tools/analysis/tokenizer.h"

namespace lvm {
namespace lint {

namespace {

using analysis::Token;

constexpr Rule kAllRules[] = {Rule::kRawStore,   Rule::kFlightPairing, Rule::kMetricName,
                              Rule::kSchemaVersion, Rule::kCheckMacro, Rule::kProfScope,
                              Rule::kWalRawStore, Rule::kDeadSuppression};

// The suppression-comment prefix the shared tokenizer mines for this tool.
constexpr std::string_view kAllowTag = "lvm-lint: allow(";

// --- rule helpers ----------------------------------------------------------

bool PathContains(const std::string& path, const std::string& fragment) {
  return path.find(fragment) != std::string::npos;
}

// subsystem.name: lowercase [a-z0-9_] atoms joined by dots, at least two.
bool IsValidMetricName(std::string_view name) {
  size_t atoms = 0;
  size_t atom_len = 0;
  for (char c : name) {
    if (c == '.') {
      if (atom_len == 0) {
        return false;
      }
      ++atoms;
      atom_len = 0;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      ++atom_len;
    } else {
      return false;
    }
  }
  return atom_len > 0 && atoms >= 1;
}

// lvm.<doc>.v<digits>, the schema-id shape registered in schema_ids.h.
bool IsSchemaVersionLiteral(std::string_view text) {
  if (text.substr(0, 4) != "lvm.") {
    return false;
  }
  size_t dot = text.rfind('.');
  if (dot < 4 || dot == std::string::npos) {
    return false;
  }
  std::string_view tail = text.substr(dot + 1);
  if (tail.size() < 2 || tail[0] != 'v') {
    return false;
  }
  for (size_t i = 1; i < tail.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tail[i]))) {
      return false;
    }
  }
  std::string_view middle = text.substr(4, dot - 4);
  if (middle.empty()) {
    return false;
  }
  for (char c : middle) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.')) {
      return false;
    }
  }
  return true;
}

class FileLinter {
 public:
  FileLinter(const std::string& path, std::string_view contents, const LintOptions& options,
             LintResult* result)
      : path_(path), options_(options), result_(result) {
    analysis::TokenizedSource source = analysis::Tokenize(contents, kAllowTag);
    tokens_ = std::move(source.tokens);
    suppressions_map_ = std::move(source.suppressions);
  }

  void Run() {
    CheckRawStores();
    CheckFlightPairing();
    CheckMetricNames();
    CheckSchemaVersions();
    CheckCheckMacro();
    CheckProfScope();
    CheckWalRawStores();
    // Last: every other rule has consumed its suppressions by now, so
    // whatever allow() entries remain unused are dead.
    CheckDeadSuppressions();
  }

 private:
  // Consumes a matching allow() entry (same or preceding line), marking it
  // used so the dead-suppression pass can report the leftovers.
  bool Suppressed(Rule rule, int line) {
    const std::string slug = RuleName(rule);
    for (int probe : {line, line - 1}) {
      auto it = suppressions_map_.find(probe);
      if (it != suppressions_map_.end() && it->second.count(slug) != 0) {
        used_suppressions_[probe].insert(slug);
        return true;
      }
    }
    return false;
  }

  void Emit(Rule rule, int line, std::string message) {
    if (Suppressed(rule, line)) {
      ++result_->suppressions_used;
      return;
    }
    result_->violations.push_back({rule, path_, line, std::move(message)});
  }

  bool IsIdent(size_t i, std::string_view text) const {
    return i < tokens_.size() && tokens_[i].kind == Token::Kind::kIdentifier &&
           tokens_[i].text == text;
  }
  bool IsPunct(size_t i, std::string_view text) const {
    return i < tokens_.size() && tokens_[i].kind == Token::Kind::kPunct && tokens_[i].text == text;
  }

  // raw-store: member calls that mutate physical memory behind the logger's
  // back, outside the layers that implement the logged-write path.
  void CheckRawStores() {
    for (const std::string& dir : options_.raw_store_allowed_dirs) {
      if (PathContains(path_, dir)) {
        return;
      }
    }
    static constexpr std::string_view kMutators[] = {"raw_mutable", "WriteBlock", "CopyBlock",
                                                     "Zero"};
    for (size_t i = 1; i + 1 < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.kind != Token::Kind::kIdentifier) {
        continue;
      }
      bool mutator = false;
      for (std::string_view name : kMutators) {
        if (t.text == name) {
          mutator = true;
          break;
        }
      }
      if (!mutator || !IsPunct(i + 1, "(")) {
        continue;
      }
      if (!IsPunct(i - 1, ".") && !IsPunct(i - 1, "->")) {
        continue;
      }
      Emit(Rule::kRawStore, t.line,
           "raw physical-memory store `" + t.text +
               "` outside the machine/kernel layers; recoverable-region writes must go "
               "through the logged-write path (Cpu::Write or a kernel copy primitive)");
    }
  }

  // flight-pairing: interval event kinds must be recorded in matched
  // numbers within a file, or the post-mortem timeline has an open edge.
  void CheckFlightPairing() {
    struct Pair {
      std::string_view begin;
      std::string_view end;
    };
    static constexpr Pair kPairs[] = {
        {"kOverloadSuspend", "kOverloadResume"},
        {"kEngineStart", "kEngineJoin"},
    };
    for (const Pair& pair : kPairs) {
      int begin_count = 0;
      int end_count = 0;
      int last_line = 0;
      for (const Token& t : tokens_) {
        if (t.kind != Token::Kind::kIdentifier) {
          continue;
        }
        if (t.text == pair.begin) {
          ++begin_count;
          last_line = t.line;
        } else if (t.text == pair.end) {
          ++end_count;
          last_line = t.line;
        }
      }
      if (begin_count != end_count) {
        Emit(Rule::kFlightPairing, last_line,
             "unbalanced flight-recorder events: " + std::string(pair.begin) + " x" +
                 std::to_string(begin_count) + " vs " + std::string(pair.end) + " x" +
                 std::to_string(end_count) + " in this file");
      }
    }
  }

  // metric-name: literals registered with the metrics registry follow the
  // subsystem.name lowercase-dot convention.
  void CheckMetricNames() {
    static constexpr std::string_view kRegistrars[] = {
        "RegisterCounter", "RegisterGauge", "RegisterHistogram", "RegisterCallback",
        "counter",         "gauge",         "histogram",
    };
    for (size_t i = 0; i + 2 < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.kind != Token::Kind::kIdentifier) {
        continue;
      }
      bool registrar = false;
      for (std::string_view name : kRegistrars) {
        if (t.text == name) {
          registrar = true;
          break;
        }
      }
      if (!registrar || !IsPunct(i + 1, "(")) {
        continue;
      }
      const Token& arg = tokens_[i + 2];
      if (arg.kind != Token::Kind::kString) {
        continue;  // Computed name (prefix + "suffix"): out of scope.
      }
      if (!IsValidMetricName(arg.text)) {
        Emit(Rule::kMetricName, arg.line,
             "metric name \"" + arg.text +
                 "\" does not follow the subsystem.name convention "
                 "(lowercase [a-z0-9_] atoms joined by dots)");
      }
    }
  }

  // schema-version: lvm.<doc>.v<N> literals live only in the registry
  // header, where readers and writers share one definition.
  void CheckSchemaVersions() {
    if (!options_.schema_registry.empty() && PathContains(path_, options_.schema_registry)) {
      return;
    }
    for (const Token& t : tokens_) {
      if (t.kind == Token::Kind::kString && IsSchemaVersionLiteral(t.text)) {
        Emit(Rule::kSchemaVersion, t.line,
             "schema version literal \"" + t.text + "\" outside " + options_.schema_registry +
                 "; reference the registered constant instead");
      }
    }
  }

  // check-macro: LVM_CHECK aborts through the flight recorder and black box;
  // assert() vanishes under NDEBUG and leaves no trace when it fires.
  void CheckCheckMacro() {
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (IsIdent(i, "assert") && IsPunct(i + 1, "(")) {
        Emit(Rule::kCheckMacro, tokens_[i].line,
             "assert() in non-test code; use LVM_CHECK / LVM_CHECK_MSG (always on, "
             "flight-recorded, black-box dumping)");
      }
    }
  }

  // prof-scope: explicit profiler scope markers must balance within a file.
  // An unmatched LVM_PROF_BEGIN leaves a scope open and silently charges
  // every later cycle to the wrong cost center; an unmatched LVM_PROF_END
  // pops a scope someone else opened. (The RAII LVM_PROF_SCOPE cannot
  // unbalance and is exempt.) Same lexical shape as flight-pairing: the
  // profiler's own header defines each macro exactly once, so it stays
  // balanced by construction.
  void CheckProfScope() {
    int begin_count = 0;
    int end_count = 0;
    int last_line = 0;
    for (const Token& t : tokens_) {
      if (t.kind != Token::Kind::kIdentifier) {
        continue;
      }
      if (t.text == "LVM_PROF_BEGIN") {
        ++begin_count;
        last_line = t.line;
      } else if (t.text == "LVM_PROF_END") {
        ++end_count;
        last_line = t.line;
      }
    }
    if (begin_count != end_count) {
      Emit(Rule::kProfScope, last_line,
           "unbalanced profiler scopes: LVM_PROF_BEGIN x" + std::to_string(begin_count) +
               " vs LVM_PROF_END x" + std::to_string(end_count) +
               " in this file; an open scope mis-attributes every cycle charged after it "
               "(prefer the RAII LVM_PROF_SCOPE)");
    }
  }

  // wal-raw-store: member calls exposing the WAL arena's mapped bytes for
  // direct mutation, outside the layer that implements the framed append
  // path. Raw writes there skip the BEGIN/END framing and checksums, so
  // recovery either discards them or replays garbage.
  void CheckWalRawStores() {
    for (const std::string& dir : options_.wal_raw_store_allowed_dirs) {
      if (PathContains(path_, dir)) {
        return;
      }
    }
    static constexpr std::string_view kAccessors[] = {"raw_block_bytes", "raw_superblock_bytes"};
    for (size_t i = 1; i + 1 < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.kind != Token::Kind::kIdentifier) {
        continue;
      }
      bool accessor = false;
      for (std::string_view name : kAccessors) {
        if (t.text == name) {
          accessor = true;
          break;
        }
      }
      if (!accessor || !IsPunct(i + 1, "(")) {
        continue;
      }
      if (!IsPunct(i - 1, ".") && !IsPunct(i - 1, "->")) {
        continue;
      }
      Emit(Rule::kWalRawStore, t.line,
           "raw mapped-WAL access `" + t.text +
               "` outside src/hostlvm/; WAL bytes must flow through the framed "
               "append path (WalArena::Append / Flush) or recovery cannot trust them");
    }
  }

  // dead-suppression: an allow() that silenced nothing is itself a finding,
  // so suppressions cannot accumulate after the code they fenced changes.
  // Two shapes: a slug naming no known rule (typo — it never could match),
  // and a known rule whose finding is gone. An intentional keeper is fenced
  // with `allow(dead-suppression)` on the same or preceding line (that
  // fence, when consulted, is marked used by Suppressed() like any other).
  void CheckDeadSuppressions() {
    for (const auto& [line, slugs] : suppressions_map_) {
      for (const std::string& slug : slugs) {
        auto used_it = used_suppressions_.find(line);
        if (used_it != used_suppressions_.end() && used_it->second.count(slug) != 0) {
          continue;
        }
        Rule rule;
        if (!ParseRuleName(slug, &rule)) {
          Emit(Rule::kDeadSuppression, line,
               "allow(" + slug + ") names no lvm-lint rule; the suppression can never match");
        } else {
          Emit(Rule::kDeadSuppression, line,
               "allow(" + slug +
                   ") no longer matches any finding; remove the stale suppression "
                   "(or fence it with allow(dead-suppression) and a justification)");
        }
      }
    }
  }

  const std::string path_;
  const LintOptions& options_;
  LintResult* result_;
  std::vector<Token> tokens_;
  std::map<int, std::set<std::string>> suppressions_map_;
  std::map<int, std::set<std::string>> used_suppressions_;
};

bool IsLintableFile(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h";
}

}  // namespace

const char* RuleName(Rule rule) {
  switch (rule) {
    case Rule::kRawStore:
      return "raw-store";
    case Rule::kFlightPairing:
      return "flight-pairing";
    case Rule::kMetricName:
      return "metric-name";
    case Rule::kSchemaVersion:
      return "schema-version";
    case Rule::kCheckMacro:
      return "check-macro";
    case Rule::kProfScope:
      return "prof-scope";
    case Rule::kWalRawStore:
      return "wal-raw-store";
    case Rule::kDeadSuppression:
      return "dead-suppression";
  }
  return "unknown";
}

int RuleExitCode(Rule rule) {
  switch (rule) {
    case Rule::kRawStore:
      return 10;
    case Rule::kFlightPairing:
      return 11;
    case Rule::kMetricName:
      return 12;
    case Rule::kSchemaVersion:
      return 13;
    case Rule::kCheckMacro:
      return 14;
    case Rule::kProfScope:
      return 15;
    case Rule::kWalRawStore:
      return 16;
    case Rule::kDeadSuppression:
      return 17;
  }
  return 1;
}

bool ParseRuleName(std::string_view name, Rule* out) {
  for (Rule rule : kAllRules) {
    if (name == RuleName(rule)) {
      *out = rule;
      return true;
    }
  }
  return false;
}

void LintSource(const std::string& path, std::string_view contents, const LintOptions& options,
                LintResult* result) {
  ++result->files_scanned;
  FileLinter linter(path, contents, options, result);
  linter.Run();
}

bool LintPaths(const std::vector<std::string>& paths, const LintOptions& options,
               LintResult* result, std::string* error) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    fs::file_status status = fs::status(path, ec);
    if (ec || status.type() == fs::file_type::not_found) {
      if (error != nullptr) {
        *error = "no such file or directory: " + path;
      }
      return false;
    }
    if (fs::is_directory(status)) {
      for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
        if (entry.is_regular_file() && IsLintableFile(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
      if (ec) {
        if (error != nullptr) {
          *error = "error walking " + path + ": " + ec.message();
        }
        return false;
      }
    } else {
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      if (error != nullptr) {
        *error = "cannot read " + file;
      }
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    LintSource(file, buffer.str(), options, result);
  }
  return true;
}

std::string ReportJson(const LintResult& result) {
  std::string out = "{\"schema\":\"";
  out += obs::kLintReportSchema;
  out += "\",\"files_scanned\":" + obs::JsonNumber(static_cast<uint64_t>(result.files_scanned));
  out += ",\"suppressions_used\":" +
         obs::JsonNumber(static_cast<uint64_t>(result.suppressions_used));
  out += ",\"violation_count\":" +
         obs::JsonNumber(static_cast<uint64_t>(result.violations.size()));
  out += ",\"violations\":[";
  bool first = true;
  for (const Violation& v : result.violations) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"rule\":";
    obs::AppendJsonString(&out, RuleName(v.rule));
    out += ",\"exit_code\":" + obs::JsonNumber(static_cast<uint64_t>(RuleExitCode(v.rule)));
    out += ",\"file\":";
    obs::AppendJsonString(&out, v.file);
    out += ",\"line\":" + obs::JsonNumber(static_cast<uint64_t>(v.line));
    out += ",\"message\":";
    obs::AppendJsonString(&out, v.message);
    out += "}";
  }
  out += "]}";
  return out;
}

int ExitCodeFor(const LintResult& result) {
  if (result.violations.empty()) {
    return 0;
  }
  const Rule first = result.violations.front().rule;
  for (const Violation& v : result.violations) {
    if (v.rule != first) {
      return 1;  // Mixed rules: no single rule-specific code applies.
    }
  }
  return RuleExitCode(first);
}

}  // namespace lint
}  // namespace lvm
