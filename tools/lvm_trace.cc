// lvm-trace: reader CLI over lvm.waterfall.v1 per-record provenance traces.
//
// Default mode renders each export: the per-stage latency table (count,
// p50/p99/max, queue-depth peak) followed by per-record ASCII waterfalls —
// one bar per hop, scaled to the record's end-to-end latency. Every
// rendered waterfall is checked for the telescoping invariant (hop deltas
// sum exactly to end_to_end_ns); a violated record flips the exit code,
// because the export itself is then evidence of a broken stamp path.
//
// Modes:
//   lvm-trace [--top=N] TRACE...    render each trace (default N=10 records)
//   lvm-trace --diff OLD NEW        per-stage p50/p99 deltas between exports
//   lvm-trace --demo-export PATH    run a small durable two-worker parallel
//                                   workload end to end (shards -> drain ->
//                                   segment append -> WAL commit -> reopen
//                                   replay) and write its trace to PATH
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/hostlvm/log_wal_bridge.h"
#include "src/hostlvm/wal_arena.h"
#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"
#include "src/obs/json.h"
#include "src/obs/schema_ids.h"
#include "src/obs/waterfall.h"
#include "src/par/engine.h"

namespace lvm {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lvm-trace [--top=N] TRACE...\n"
               "       lvm-trace --diff OLD NEW\n"
               "       lvm-trace --demo-export PATH\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool LoadTrace(const std::string& path, obs::JsonValue* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "lvm-trace: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  if (!obs::ParseJson(text, out, &error)) {
    std::fprintf(stderr, "lvm-trace: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  std::string schema = out->GetString("schema");
  if (schema != obs::kWaterfallSchema) {
    std::fprintf(stderr, "lvm-trace: %s: schema \"%s\" is not %s\n", path.c_str(),
                 schema.c_str(), obs::kWaterfallSchema);
    return false;
  }
  return true;
}

// --- default mode -----------------------------------------------------------

void RenderStageTable(const obs::JsonValue& trace) {
  const obs::JsonValue* stages = trace.Find("stages");
  if (stages == nullptr || !stages->is_array() || stages->size() == 0) {
    std::printf("no stage samples\n");
    return;
  }
  std::printf("%-15s %10s %12s %12s %12s %8s\n", "stage", "count", "p50_ns", "p99_ns",
              "max_ns", "q_peak");
  for (const obs::JsonValue& stage : stages->Items()) {
    std::printf("%-15s %10" PRIu64 " %12" PRIu64 " %12" PRIu64 " %12" PRIu64 " %8" PRIu64 "\n",
                stage.GetString("stage").c_str(), stage.GetUint64("count"),
                stage.GetUint64("p50_ns"), stage.GetUint64("p99_ns"), stage.GetUint64("max_ns"),
                stage.GetUint64("queue_peak"));
  }
}

// One record's waterfall: each hop is a bar whose left edge is the hop's
// arrival offset and whose width is the time spent reaching it, both scaled
// to the record's end-to-end latency across `kBarWidth` columns.
constexpr int kBarWidth = 40;

// Returns false if the record violates the telescoping invariant.
bool RenderWaterfall(const obs::JsonValue& record) {
  uint64_t end_to_end = record.GetUint64("end_to_end_ns");
  std::printf("record %#" PRIx64 "  lane %" PRIu64 "  addr %#" PRIx64 "  value %#" PRIx64
              "  ts %" PRIu64 "  e2e %" PRIu64 "ns\n",
              record.GetUint64("id"), record.GetUint64("lane"), record.GetUint64("addr"),
              record.GetUint64("value"), record.GetUint64("timestamp"), end_to_end);
  const obs::JsonValue* hops = record.Find("hops");
  if (hops == nullptr || !hops->is_array() || hops->size() == 0) {
    std::printf("  (no hops)\n");
    return false;
  }
  uint64_t prev_ns = 0;
  bool ok = true;
  for (const obs::JsonValue& hop : hops->Items()) {
    uint64_t at = hop.GetUint64("wall_ns");
    uint64_t delta = at >= prev_ns ? at - prev_ns : 0;
    int start = 0;
    int width = 0;
    if (end_to_end > 0) {
      start = static_cast<int>(prev_ns * kBarWidth / end_to_end);
      width = static_cast<int>(at * kBarWidth / end_to_end) - start;
    }
    std::string bar(static_cast<size_t>(start), ' ');
    bar.append(std::max(width, 1), '#');
    std::printf("  %-15s +%-10" PRIu64 " q=%-6" PRIu64 " |%s\n",
                hop.GetString("stage").c_str(), delta, hop.GetUint64("queue_depth"),
                bar.c_str());
    prev_ns = at;
  }
  // Telescoping: the last hop's relative wall time IS the end-to-end
  // latency, so the per-hop deltas sum to it exactly.
  if (prev_ns != end_to_end) {
    std::printf("  ** hop deltas sum to %" PRIu64 "ns, not end_to_end %" PRIu64 "ns **\n",
                prev_ns, end_to_end);
    ok = false;
  }
  return ok;
}

int Render(const obs::JsonValue& trace, const std::string& path, size_t top) {
  std::printf("=== %s ===\n", path.c_str());
  const obs::JsonValue* counters = trace.Find("counters");
  if (counters != nullptr) {
    std::printf("sampled %" PRIu64 "  completed %" PRIu64 "  dropped %" PRIu64
                "  abandoned %" PRIu64 "  truncated %" PRIu64 "  inflight %" PRIu64 "\n",
                counters->GetUint64("sampled"), counters->GetUint64("completed"),
                counters->GetUint64("dropped"), counters->GetUint64("abandoned"),
                counters->GetUint64("truncated"), counters->GetUint64("inflight"));
  }
  uint64_t queue_age = trace.GetUint64("queue_age_peak_ns");
  if (queue_age > 0) {
    std::printf("queue_age_peak: %" PRIu64 "ns (oldest enqueue-to-drain wait seen)\n",
                queue_age);
  }
  std::printf("\n");
  RenderStageTable(trace);
  int exit_code = 0;
  const obs::JsonValue* waterfalls = trace.Find("waterfalls");
  if (waterfalls == nullptr || !waterfalls->is_array()) {
    return exit_code;
  }
  size_t shown = std::min(top, waterfalls->size());
  for (size_t i = 0; i < shown; ++i) {
    std::printf("\n");
    if (!RenderWaterfall(waterfalls->Items()[i])) {
      exit_code = 1;
    }
  }
  if (waterfalls->size() > shown) {
    std::printf("\n... %zu more record(s); rerun with --top=%zu to see all\n",
                waterfalls->size() - shown, waterfalls->size());
  }
  return exit_code;
}

// --- --diff -----------------------------------------------------------------

struct StageRow {
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
};

std::map<std::string, StageRow> StageRows(const obs::JsonValue& trace) {
  std::map<std::string, StageRow> rows;
  const obs::JsonValue* stages = trace.Find("stages");
  if (stages == nullptr || !stages->is_array()) {
    return rows;
  }
  for (const obs::JsonValue& stage : stages->Items()) {
    rows[stage.GetString("stage")] = StageRow{stage.GetUint64("count"),
                                              stage.GetUint64("p50_ns"),
                                              stage.GetUint64("p99_ns")};
  }
  return rows;
}

int Diff(const obs::JsonValue& old_trace, const obs::JsonValue& new_trace) {
  std::map<std::string, StageRow> old_rows = StageRows(old_trace);
  std::map<std::string, StageRow> new_rows = StageRows(new_trace);
  std::map<std::string, std::pair<StageRow, StageRow>> merged;
  for (const auto& [stage, row] : old_rows) {
    merged[stage].first = row;
  }
  for (const auto& [stage, row] : new_rows) {
    merged[stage].second = row;
  }
  if (merged.empty()) {
    std::printf("no stages on either side\n");
    return 0;
  }
  std::printf("%-15s %14s %14s %14s\n", "stage", "d_count", "d_p50_ns", "d_p99_ns");
  for (const auto& [stage, pair] : merged) {
    const StageRow& a = pair.first;
    const StageRow& b = pair.second;
    std::printf("%-15s %+14" PRId64 " %+14" PRId64 " %+14" PRId64 "\n", stage.c_str(),
                static_cast<int64_t>(b.count) - static_cast<int64_t>(a.count),
                static_cast<int64_t>(b.p50) - static_cast<int64_t>(a.p50),
                static_cast<int64_t>(b.p99) - static_cast<int64_t>(a.p99));
  }
  return 0;
}

// --- --demo-export ----------------------------------------------------------
//
// A self-contained durable run that exercises every waterfall stage: two
// parallel workers stream logged writes through per-CPU shards, the shard
// logs bridge into a WAL arena that is flushed, closed, reopened, and
// replayed — all against one tracer, so a single sampled write's waterfall
// spans record -> shard_enqueue -> drain -> segment_append -> wal_commit ->
// replay.

constexpr int kDemoWorkers = 2;
constexpr uint32_t kDemoSteps = 600;
constexpr uint32_t kDemoRegionWords = 256;

uint32_t DemoMix(uint32_t worker, uint32_t step) {
  uint32_t z = worker * 0x9e3779b9u + step * 0x85ebca6bu + 1;
  z ^= z >> 16;
  z *= 0x7feb352du;
  z ^= z >> 15;
  return z;
}

int DemoExport(const std::string& path) {
  LvmConfig config;
  config.num_cpus = kDemoWorkers;
  LvmSystem system(config);
  obs::WaterfallConfig wconfig;
  wconfig.sample_shift = 4;  // 1/16: dense enough to see, sparse enough to finish.
  obs::WaterfallTracer* waterfall = system.EnableWaterfall(wconfig);

  AddressSpace* as = system.CreateAddressSpace();
  std::vector<Region*> regions;
  std::vector<LogSegment*> logs;
  std::vector<VirtAddr> bases;
  for (int i = 0; i < kDemoWorkers; ++i) {
    Region* region = system.CreateRegion(system.CreateSegment(kDemoRegionWords * 4));
    bases.push_back(as->BindRegion(region));
    LogSegment* log = system.CreateLogSegment(8);
    system.AttachLog(region, log);
    regions.push_back(region);
    logs.push_back(log);
  }
  for (int i = 0; i < kDemoWorkers; ++i) {
    system.Activate(as, i);
    system.TouchRegion(&system.cpu(i), regions[i]);
  }

  par::EngineConfig engine_config;
  engine_config.mode = par::Mode::kParallel;
  par::ParallelEngine engine(&system, engine_config);
  for (int i = 0; i < kDemoWorkers; ++i) {
    VirtAddr base = bases[i];
    engine.AddWorker(logs[i], [base, i](Cpu& cpu, uint64_t step) {
      cpu.Write(base + 4 * (step % kDemoRegionWords),
                DemoMix(static_cast<uint32_t>(i), static_cast<uint32_t>(step)));
      cpu.Compute(40);
      return step + 1 < kDemoSteps;
    });
  }
  engine.Run();
  for (int i = 0; i < kDemoWorkers; ++i) {
    system.SyncLog(&system.cpu(i), logs[i]);
  }

  // Durable leg: bridge both shard logs into a WAL arena, flush, then
  // reopen and replay against the same tracer.
  std::string wal_path = path + ".wal";
  std::string error;
  std::unique_ptr<WalArena> arena = WalArena::Create(wal_path, WalOptions{}, &error);
  if (arena == nullptr) {
    std::fprintf(stderr, "lvm-trace: cannot create %s: %s\n", wal_path.c_str(), error.c_str());
    return 1;
  }
  arena->set_waterfall(waterfall);
  LogWalBridgeStats bridged;
  for (int i = 0; i < kDemoWorkers; ++i) {
    LogReader reader(system.memory(), *logs[i]);
    LogWalBridgeStats stats =
        BridgeLogToWal(reader, 0, reader.size(), /*records_per_commit=*/64,
                       /*timestamp_ns=*/1, arena.get(), waterfall);
    bridged.commits += stats.commits;
    bridged.records += stats.records;
    bridged.tokens += stats.tokens;
    bridged.rejected += stats.rejected;
  }
  arena->Flush();
  arena.reset();  // Close; the reopen below is the recovery path.

  arena = WalArena::Open(wal_path, &error);
  if (arena == nullptr) {
    std::fprintf(stderr, "lvm-trace: cannot reopen %s: %s\n", wal_path.c_str(), error.c_str());
    return 1;
  }
  arena->set_waterfall(waterfall);
  WalRecoveryStats recovery = arena->Replay([](const WalRecoveredCommit&) {});
  arena.reset();
  std::remove(wal_path.c_str());

  if (!system.WriteWaterfall(path)) {
    std::fprintf(stderr, "lvm-trace: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("demo: %" PRIu64 " records bridged in %" PRIu64 " commits, %" PRIu64
              " tokens carried, %" PRIu64 " commits replayed\n",
              bridged.records, bridged.commits, bridged.tokens, recovery.commits_applied);
  std::printf("demo: %" PRIu64 " sampled, %" PRIu64 " completed -> %s\n",
              waterfall->sampled(), waterfall->completed(), path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  std::vector<std::string> paths;
  size_t top = 10;
  bool diff = false;
  std::string demo_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--top=", 0) == 0) {
      top = static_cast<size_t>(std::strtoull(arg.c_str() + 6, nullptr, 10));
      if (top == 0) {
        top = 1;
      }
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg.rfind("--demo-export=", 0) == 0) {
      demo_path = arg.substr(14);
    } else if (arg == "--demo-export") {
      if (i + 1 >= argc) {
        return Usage();
      }
      demo_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lvm-trace: unknown option %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (!demo_path.empty()) {
    if (diff || !paths.empty()) {
      return Usage();
    }
    return DemoExport(demo_path);
  }
  if (diff) {
    if (paths.size() != 2) {
      return Usage();
    }
    obs::JsonValue old_trace;
    obs::JsonValue new_trace;
    if (!LoadTrace(paths[0], &old_trace) || !LoadTrace(paths[1], &new_trace)) {
      return 1;
    }
    return Diff(old_trace, new_trace);
  }
  if (paths.empty()) {
    return Usage();
  }
  int exit_code = 0;
  for (const std::string& path : paths) {
    obs::JsonValue trace;
    if (!LoadTrace(path, &trace)) {
      exit_code = 1;
      continue;
    }
    int rc = Render(trace, path, top);
    if (rc != 0) {
      exit_code = rc;
    }
  }
  return exit_code;
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) { return lvm::Main(argc, argv); }
