// Common interface of the two recoverable virtual memory implementations
// the paper compares (Section 2.5, Section 4.2):
//   - rvm::Rvm: the Coda-RVM baseline, where the application must call
//     set_range() before every modification of recoverable memory;
//   - rvm::Rlvm: recoverable *logged* virtual memory, where LVM records
//     every write automatically and set_range() is unnecessary.
//
// Applications address recoverable memory through [data_base, data_base +
// data_size): virtual addresses within the store's recoverable region.
#ifndef SRC_RVM_RECOVERABLE_STORE_H_
#define SRC_RVM_RECOVERABLE_STORE_H_

#include <cstdint>

#include "src/base/types.h"
#include "src/sim/cpu.h"

namespace lvm {

class RecoverableStore {
 public:
  virtual ~RecoverableStore() = default;

  // First usable recoverable virtual address.
  virtual VirtAddr data_base() const = 0;
  // Usable recoverable bytes.
  virtual uint32_t data_size() const = 0;

  // Transaction boundaries. Transactions do not nest.
  virtual void Begin(Cpu* cpu) = 0;
  virtual void Commit(Cpu* cpu) = 0;
  virtual void Abort(Cpu* cpu) = 0;

  // Declares that [addr, addr + len) is about to be modified. Mandatory
  // before writes under Rvm; a no-op under Rlvm.
  virtual void SetRange(Cpu* cpu, VirtAddr addr, uint32_t len) = 0;

  // Recoverable accesses (within a transaction for writes).
  virtual void Write(Cpu* cpu, VirtAddr addr, uint32_t value, uint8_t size = 4) = 0;
  virtual uint32_t Read(Cpu* cpu, VirtAddr addr, uint8_t size = 4) = 0;

  // Applies the store's device-log truncation policy; called by drivers
  // between transactions.
  virtual void MaybeTruncate(Cpu* cpu) = 0;

  // --- statistics ---
  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }

 protected:
  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
};

}  // namespace lvm

#endif  // SRC_RVM_RECOVERABLE_STORE_H_
