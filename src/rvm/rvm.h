// The Coda-RVM baseline (Section 2.5 and Section 5.3).
//
// The application maps a recoverable segment and must bracket every
// modification with set_range(), which copies the old values aside (the
// undo record) and registers the range for the redo log written at commit.
// This is the error-prone, processing-heavy discipline LVM eliminates:
// Table 3 measures a single recoverable write at ~3,515 cycles here.
//
// The cost structure follows the paper: set_range() pays a fixed
// bookkeeping charge (range-table insertion, undo-buffer allocation — the
// Camelot-derived machinery the paper measures) plus per-word old-value
// copies through the machine; commit streams the registered ranges' new
// values to the RAM-disk redo log and forces it; truncation periodically
// applies the device log to the home image.
//
// A write not covered by a registered range is the classic RVM bug: it is
// counted (unprotected_writes) and, on abort, silently survives — exactly
// the failure mode Section 2.7 warns about.
#ifndef SRC_RVM_RVM_H_
#define SRC_RVM_RVM_H_

#include <cstdint>
#include <vector>

#include "src/base/types.h"
#include "src/lvm/lvm_system.h"
#include "src/rvm/ram_disk.h"
#include "src/rvm/recoverable_store.h"

namespace lvm {

struct RvmParams {
  // Fixed cost of one set_range() call: range registration and undo-record
  // setup. Calibrated so a single recoverable write costs ~3,515 cycles
  // (Table 3).
  uint32_t set_range_base_cycles = 3450;
  // Kernel cost per word of saving the old value into the undo buffer.
  uint32_t undo_copy_word_cycles = 11;
  // Kernel cost per word of restoring old values on abort.
  uint32_t undo_apply_word_cycles = 11;
  // Kernel cost per word of gathering new values into the redo buffer at
  // commit.
  uint32_t redo_gather_word_cycles = 9;
  // Apply the device log to the home image every this many commits.
  uint32_t truncate_interval = 64;
};

class Rvm : public RecoverableStore {
 public:
  // Creates a recoverable store of `size` bytes on `system`, persisted to
  // `disk`. The segment is mapped (unlogged) into `as`.
  Rvm(LvmSystem* system, AddressSpace* as, RamDisk* disk, uint32_t size,
      const RvmParams& params = RvmParams{});

  VirtAddr data_base() const override { return base_; }
  uint32_t data_size() const override { return size_; }

  void Begin(Cpu* cpu) override;
  void Commit(Cpu* cpu) override;
  void Abort(Cpu* cpu) override;
  void SetRange(Cpu* cpu, VirtAddr addr, uint32_t len) override;
  void Write(Cpu* cpu, VirtAddr addr, uint32_t value, uint8_t size = 4) override;
  uint32_t Read(Cpu* cpu, VirtAddr addr, uint8_t size = 4) override;
  void MaybeTruncate(Cpu* cpu) override;

  uint64_t set_range_calls() const { return set_range_calls_; }
  // Writes issued without a covering set_range: latent recovery bugs.
  uint64_t unprotected_writes() const { return unprotected_writes_; }
  RamDisk* disk() { return disk_; }

 private:
  struct RangeRecord {
    VirtAddr addr = 0;
    uint32_t len = 0;
    std::vector<uint8_t> old_bytes;
  };

  bool Covered(VirtAddr addr, uint8_t size) const;

  LvmSystem* system_;
  RamDisk* disk_;
  RvmParams params_;
  Region* region_;
  VirtAddr base_ = 0;
  uint32_t size_ = 0;
  bool in_transaction_ = false;
  std::vector<RangeRecord> ranges_;
  uint64_t set_range_calls_ = 0;
  uint64_t unprotected_writes_ = 0;
  uint32_t commits_since_truncate_ = 0;
};

}  // namespace lvm

#endif  // SRC_RVM_RVM_H_
