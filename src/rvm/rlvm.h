// RLVM: recoverable logged virtual memory (Section 2.5).
//
// The recoverable segment is mapped through a *logged* region, so every
// modification is recorded automatically — no set_range() calls, no
// old-value copies on the write path. The structure is Figure 3's:
//
//   committed-image segment  --deferred copy-->  recoverable (working) segment
//                                                        |  logging
//                                                        v
//                                                   LVM log segment
//
// The transaction identifier is written to a special logged control word at
// the start of the region whenever it changes, so log records can be
// attributed to transactions (Section 2.5). Commit synchronizes with the
// log, streams the new values to the RAM-disk redo log (the same
// commit/force/truncate machinery as Rvm — LVM does not reduce those
// costs, Section 4.2), rolls the committed image forward by applying the
// records, and truncates the LVM log. Abort is a resetDeferredCopy(): the
// working segment falls back to the committed image with no copying.
#ifndef SRC_RVM_RLVM_H_
#define SRC_RVM_RLVM_H_

#include <cstdint>

#include "src/base/types.h"
#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"
#include "src/rvm/ram_disk.h"
#include "src/rvm/recoverable_store.h"

namespace lvm {

struct RlvmParams {
  // Apply the device log to the home image every this many commits.
  uint32_t truncate_interval = 64;
};

class Rlvm : public RecoverableStore {
 public:
  Rlvm(LvmSystem* system, AddressSpace* as, RamDisk* disk, uint32_t size,
       const RlvmParams& params = RlvmParams{});

  VirtAddr data_base() const override { return base_ + kHeaderBytes; }
  uint32_t data_size() const override { return size_ - kHeaderBytes; }

  void Begin(Cpu* cpu) override;
  void Commit(Cpu* cpu) override;
  void Abort(Cpu* cpu) override;
  // No-op: LVM logs every write automatically.
  void SetRange(Cpu* cpu, VirtAddr addr, uint32_t len) override;
  void Write(Cpu* cpu, VirtAddr addr, uint32_t value, uint8_t size = 4) override;
  uint32_t Read(Cpu* cpu, VirtAddr addr, uint8_t size = 4) override;
  void MaybeTruncate(Cpu* cpu) override;

  uint32_t current_transaction() const { return transaction_counter_; }
  LogSegment* log() { return log_; }
  RamDisk* disk() { return disk_; }

 private:
  // The control word (transaction id) lives in the first header bytes of
  // the region; application data follows.
  static constexpr uint32_t kHeaderBytes = 64;

  LvmSystem* system_;
  RamDisk* disk_;
  RlvmParams params_;
  StdSegment* working_ = nullptr;
  StdSegment* image_ = nullptr;
  Region* region_ = nullptr;
  LogSegment* log_ = nullptr;
  AddressSpace* as_ = nullptr;
  VirtAddr base_ = 0;
  uint32_t size_ = 0;
  bool in_transaction_ = false;
  uint32_t transaction_counter_ = 0;
  uint32_t commits_since_truncate_ = 0;
};

}  // namespace lvm

#endif  // SRC_RVM_RLVM_H_
