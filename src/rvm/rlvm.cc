#include "src/rvm/rlvm.h"

namespace lvm {

Rlvm::Rlvm(LvmSystem* system, AddressSpace* as, RamDisk* disk, uint32_t size,
           const RlvmParams& params)
    : system_(system), disk_(disk), params_(params), as_(as),
      size_(AlignUp(size + kHeaderBytes, kPageSize)) {
  image_ = system_->CreateSegment(size_);
  working_ = system_->CreateSegment(size_);
  working_->SetSourceSegment(image_);
  region_ = system_->CreateRegion(working_);
  base_ = as->BindRegion(region_);
  log_ = system_->CreateLogSegment();
  system_->AttachLog(region_, log_);
}

void Rlvm::Begin(Cpu* cpu) {
  LVM_CHECK_MSG(!in_transaction_, "transactions do not nest");
  in_transaction_ = true;
  ++transaction_counter_;
  // Write the transaction identifier to the logged control word; the
  // resulting record attributes everything that follows to this
  // transaction (Section 2.5).
  cpu->Write(base_, transaction_counter_);
}

void Rlvm::SetRange(Cpu* cpu, VirtAddr addr, uint32_t len) {
  // Nothing to do: this is the point of RLVM.
  (void)cpu;
  (void)addr;
  (void)len;
}

void Rlvm::Write(Cpu* cpu, VirtAddr addr, uint32_t value, uint8_t size) {
  LVM_CHECK(in_transaction_);
  LVM_CHECK_MSG(addr >= data_base() && addr + size <= base_ + size_,
                "write outside the recoverable store");
  cpu->Write(addr, value, size);
}

uint32_t Rlvm::Read(Cpu* cpu, VirtAddr addr, uint8_t size) { return cpu->Read(addr, size); }

void Rlvm::Commit(Cpu* cpu) {
  LVM_CHECK(in_transaction_);
  obs::ScopedSpan span(&system_->trace(), "rvm", "commit", static_cast<uint32_t>(cpu->id()),
                       [cpu] { return cpu->now(); });
  system_->SyncLog(cpu, log_);
  LogReader reader(system_->memory(), *log_);
  span.SetArg("log_records", reader.size());
  // Stream the new values to the RAM-disk redo log. The transaction-id
  // marker record (the write below the data base) maps to the device's
  // commit marker rather than a data record.
  disk_->BeginAppend(cpu);
  for (size_t i = 0; i < reader.size(); ++i) {
    LogRecord logged = reader.At(i);
    int32_t page_index = working_->PageIndexOfFrame(logged.addr);
    LVM_DCHECK(page_index >= 0);
    uint32_t segment_offset =
        static_cast<uint32_t>(page_index) * kPageSize + PageOffset(logged.addr);
    if (segment_offset < kHeaderBytes) {
      continue;  // Control-word (transaction-id) record.
    }
    DeviceRecord record;
    record.offset = segment_offset - kHeaderBytes;
    record.value = logged.value;
    record.size = static_cast<uint8_t>(logged.size);
    disk_->AppendRecord(cpu, record);
  }
  disk_->CommitAndForce(cpu);
  // Roll the committed image forward and drop the consumed records: the
  // working segment's deferred-copy source now reflects this transaction.
  LogApplier applier(system_);
  applier.ApplyRetargeted(cpu, reader, 0, reader.size(), *working_, image_);
  // The working copies of the committed data are identical to the image
  // now, but their lines still shadow it; keep them (they are correct) and
  // empty the LVM log.
  system_->TruncateLog(cpu, log_);
  in_transaction_ = false;
  ++commits_;
  ++commits_since_truncate_;
}

void Rlvm::Abort(Cpu* cpu) {
  LVM_CHECK(in_transaction_);
  system_->SyncLog(cpu, log_);
  // Roll the working segment back to the committed image: no copying.
  system_->ResetDeferredCopy(cpu, as_, base_, base_ + size_);
  system_->TruncateLog(cpu, log_);
  in_transaction_ = false;
  ++aborts_;
}

void Rlvm::MaybeTruncate(Cpu* cpu) {
  if (commits_since_truncate_ >= params_.truncate_interval) {
    disk_->TruncateToImage(cpu);
    commits_since_truncate_ = 0;
  }
}

}  // namespace lvm
