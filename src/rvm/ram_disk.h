// RAM-disk model for the persistent transaction log (Section 4.2).
//
// The TPC-A measurements of Table 3 hold the recoverable-memory redo log on
// a RAM disk. The model charges device costs (append, force, truncate) and
// *stores the redo contents*, so recovery is real: after a crash the
// committed state can be rebuilt from the home image plus the forced log.
//
// Device format: a stream of {offset, size, value} redo records punctuated
// by commit markers. Records become durable when the log is forced; a
// crash discards everything after the last force, and recovery replays
// durable records only up to the last commit marker (a forced but
// uncommitted tail would mean a torn transaction).
#ifndef SRC_RVM_RAM_DISK_H_
#define SRC_RVM_RAM_DISK_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/base/check.h"
#include "src/sim/cpu.h"

namespace lvm {

struct RamDiskParams {
  // Streaming an appended byte to the device.
  uint32_t append_per_byte_cycles = 25;
  // Fixed device-operation overhead per commit's worth of appends.
  uint32_t append_base_cycles = 2000;
  // Forcing the log at commit (commit record + synchronization).
  uint32_t force_cycles = 40000;
  // Truncation: applying logged bytes to the home image.
  uint32_t apply_per_byte_cycles = 10;
  uint32_t apply_base_cycles = 5000;
  // Wire overhead per record (descriptor) and per commit marker.
  uint32_t record_descriptor_bytes = 8;
  uint32_t commit_record_bytes = 16;
};

// One store-relative redo record.
struct DeviceRecord {
  uint32_t offset = 0;
  uint32_t value = 0;
  uint8_t size = 0;
};

class RamDisk {
 public:
  explicit RamDisk(const RamDiskParams& params = RamDiskParams{}) : params_(params) {}

  // Begins a transaction's worth of appends (charges the device-operation
  // base cost once).
  void BeginAppend(Cpu* cpu) { cpu->AddCycles(params_.append_base_cycles); }

  // Appends one redo record to the volatile tail of the device log.
  void AppendRecord(Cpu* cpu, const DeviceRecord& record) {
    uint32_t bytes = record.size + params_.record_descriptor_bytes;
    cpu->AddCycles(static_cast<Cycles>(bytes) * params_.append_per_byte_cycles);
    pending_.push_back(record);
    pending_bytes_ += bytes;
  }

  // Appends a commit marker and forces the log: everything appended so far
  // becomes durable. This is the commit point.
  void CommitAndForce(Cpu* cpu) {
    cpu->AddCycles(static_cast<Cycles>(params_.commit_record_bytes) *
                   params_.append_per_byte_cycles);
    cpu->AddCycles(params_.force_cycles);
    durable_log_.insert(durable_log_.end(), pending_.begin(), pending_.end());
    durable_bytes_ += pending_bytes_ + params_.commit_record_bytes;
    total_bytes_logged_ += pending_bytes_ + params_.commit_record_bytes;
    pending_.clear();
    pending_bytes_ = 0;
    ++forces_;
  }

  // Discards appended-but-unforced records (a transaction abort).
  void DiscardPending() {
    pending_.clear();
    pending_bytes_ = 0;
  }

  // Applies the durable log to the home image and empties it (truncation).
  void TruncateToImage(Cpu* cpu) {
    cpu->AddCycles(params_.apply_base_cycles +
                   static_cast<Cycles>(durable_bytes_) * params_.apply_per_byte_cycles);
    for (const DeviceRecord& record : durable_log_) {
      ApplyToImage(record);
    }
    durable_log_.clear();
    durable_bytes_ = 0;
    ++truncations_;
  }

  // A crash: volatile state (the unforced tail) is lost; the home image
  // and the forced log survive.
  void Crash() {
    pending_.clear();
    pending_bytes_ = 0;
  }

  // Rebuilds the committed store contents: home image plus the durable
  // log, as recovery would after a crash.
  std::vector<uint8_t> RecoverImage(uint32_t store_bytes) const {
    std::vector<uint8_t> recovered(store_bytes, 0);
    auto copy_in = [&recovered, store_bytes](const DeviceRecord& record) {
      LVM_CHECK(record.offset + record.size <= store_bytes);
      std::memcpy(&recovered[record.offset], &record.value, record.size);
    };
    for (const DeviceRecord& record : image_) {
      copy_in(record);
    }
    for (const DeviceRecord& record : durable_log_) {
      copy_in(record);
    }
    return recovered;
  }

  // --- statistics ---
  uint64_t log_bytes() const { return durable_bytes_; }
  uint64_t total_bytes_logged() const { return total_bytes_logged_; }
  uint64_t forces() const { return forces_; }
  uint64_t truncations() const { return truncations_; }
  size_t durable_records() const { return durable_log_.size(); }

 private:
  void ApplyToImage(const DeviceRecord& record) { image_.push_back(record); }

  RamDiskParams params_;
  std::vector<DeviceRecord> pending_;   // Appended, not yet forced.
  std::vector<DeviceRecord> durable_log_;
  // The home image as an (append-only) record list; RecoverImage folds it.
  std::vector<DeviceRecord> image_;
  uint64_t pending_bytes_ = 0;
  uint64_t durable_bytes_ = 0;
  uint64_t total_bytes_logged_ = 0;
  uint64_t forces_ = 0;
  uint64_t truncations_ = 0;
};

}  // namespace lvm

#endif  // SRC_RVM_RAM_DISK_H_
