#include "src/rvm/rvm.h"

namespace lvm {

Rvm::Rvm(LvmSystem* system, AddressSpace* as, RamDisk* disk, uint32_t size,
         const RvmParams& params)
    : system_(system), disk_(disk), params_(params), size_(AlignUp(size, kPageSize)) {
  StdSegment* segment = system_->CreateSegment(size_);
  region_ = system_->CreateRegion(segment);
  base_ = as->BindRegion(region_);
}

void Rvm::Begin(Cpu* cpu) {
  LVM_CHECK_MSG(!in_transaction_, "transactions do not nest");
  cpu->AddCycles(50);  // Transaction descriptor setup.
  in_transaction_ = true;
  ranges_.clear();
}

void Rvm::SetRange(Cpu* cpu, VirtAddr addr, uint32_t len) {
  LVM_CHECK(in_transaction_);
  LVM_CHECK_MSG(addr >= base_ && addr + len <= base_ + size_, "set_range outside the store");
  ++set_range_calls_;
  cpu->AddCycles(params_.set_range_base_cycles);
  RangeRecord record;
  record.addr = addr;
  record.len = len;
  record.old_bytes.resize(len);
  // Save the old values so the transaction can be undone.
  for (uint32_t i = 0; i < len; ++i) {
    record.old_bytes[i] = static_cast<uint8_t>(cpu->Read(addr + i, 1));
  }
  cpu->AddCycles(static_cast<Cycles>((len + 3) / 4) * params_.undo_copy_word_cycles);
  ranges_.push_back(std::move(record));
}

bool Rvm::Covered(VirtAddr addr, uint8_t size) const {
  for (const RangeRecord& range : ranges_) {
    if (addr >= range.addr && addr + size <= range.addr + range.len) {
      return true;
    }
  }
  return false;
}

void Rvm::Write(Cpu* cpu, VirtAddr addr, uint32_t value, uint8_t size) {
  LVM_CHECK(in_transaction_);
  if (!Covered(addr, size)) {
    // The modification will not be undone or redone: a latent bug the
    // programmer gets no warning about (Section 2.7).
    ++unprotected_writes_;
  }
  cpu->Write(addr, value, size);
}

uint32_t Rvm::Read(Cpu* cpu, VirtAddr addr, uint8_t size) { return cpu->Read(addr, size); }

void Rvm::Commit(Cpu* cpu) {
  LVM_CHECK(in_transaction_);
  obs::ScopedSpan span(&system_->trace(), "rvm", "commit", static_cast<uint32_t>(cpu->id()),
                       [cpu] { return cpu->now(); });
  span.SetArg("ranges", ranges_.size());
  // Gather new values of every registered range into the redo log.
  disk_->BeginAppend(cpu);
  for (const RangeRecord& range : ranges_) {
    cpu->AddCycles(static_cast<Cycles>((range.len + 3) / 4) * params_.redo_gather_word_cycles);
    for (uint32_t done = 0; done < range.len;) {
      auto size = static_cast<uint8_t>(range.len - done >= 4 ? 4 : range.len - done);
      DeviceRecord record;
      record.offset = range.addr + done - base_;
      record.size = size;
      record.value = cpu->Read(range.addr + done, size);
      disk_->AppendRecord(cpu, record);
      done += size;
    }
  }
  disk_->CommitAndForce(cpu);
  ranges_.clear();
  in_transaction_ = false;
  ++commits_;
  ++commits_since_truncate_;
}

void Rvm::Abort(Cpu* cpu) {
  LVM_CHECK(in_transaction_);
  // Restore the old values, newest range first.
  for (auto it = ranges_.rbegin(); it != ranges_.rend(); ++it) {
    for (uint32_t i = 0; i < it->len; ++i) {
      cpu->Write(it->addr + i, it->old_bytes[i], 1);
    }
    cpu->AddCycles(static_cast<Cycles>((it->len + 3) / 4) * params_.undo_apply_word_cycles);
  }
  ranges_.clear();
  in_transaction_ = false;
  ++aborts_;
}

void Rvm::MaybeTruncate(Cpu* cpu) {
  if (commits_since_truncate_ >= params_.truncate_interval) {
    disk_->TruncateToImage(cpu);
    commits_since_truncate_ = 0;
  }
}

}  // namespace lvm
