// Second-level cache model.
//
// The prototype's 4 MB board-level cache sits between the CPUs and memory
// and implements the deferred-copy mechanism: each line carries a source
// address, lines of a deferred-copy destination fill from the source
// segment, and a written-back line's source is reset to the destination so
// later loads come from the destination (Section 3.3, after VMP).
//
// The model keeps the *data* authoritative in PhysicalMemory and tracks
// per-line presence/dirtiness here:
//   - a write to a non-dirty line first "fills" the line by copying the
//     16-byte block from its resolved source into the destination memory,
//     then applies the write and marks the line dirty;
//   - reads of a dirty line come from the destination memory; reads of a
//     clean line resolve through the DeferredCopyPolicy (source segment
//     until the line has been written back);
//   - FlushPage writes dirty lines back (notifying the policy, which flips
//     the line's source to the destination); InvalidatePage drops lines
//     without writeback, which is what makes resetDeferredCopy() free of
//     copying.
//
// The cache is modeled with unbounded capacity: the prototype's 4 MB cache
// comfortably holds the largest (2 MB) segments the paper evaluates, so
// natural evictions do not occur in any experiment. Timing for fills,
// writebacks and invalidations is charged by the callers using
// MachineParams.
//
// Concurrency: line/page state is sharded into kStripes stripes keyed by
// page number, so a page's lines and its dirty count always live in one
// stripe. SetConcurrent(true) (the parallel engine, before workers start)
// arms the per-stripe mutexes; in the default serial mode no locks are
// taken and behavior is bit-identical to the unsharded cache. Same-line
// and same-page accesses from different workers serialize on the stripe —
// these are the paper's rare shared-line cases. DeferredCopyPolicy
// callbacks run under the stripe lock; during a concurrent run the policy
// map must be read-only (the kernel mutates it only in serialized paths).
#ifndef SRC_SIM_L2_CACHE_H_
#define SRC_SIM_L2_CACHE_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "src/base/check.h"
#include "src/base/lock_order.h"
#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/base/types.h"
#include "src/obs/metrics.h"
#include "src/sim/interfaces.h"
#include "src/sim/phys_mem.h"

namespace lvm {

class L2Cache {
 public:
  static constexpr size_t kStripes = 64;

  explicit L2Cache(PhysicalMemory* memory) : memory_(memory) {}

  // Installs the deferred-copy resolution policy (owned by the VM layer).
  // Passing nullptr restores identity resolution.
  void set_policy(DeferredCopyPolicy* policy) { policy_ = policy; }

  // Arms (or disarms) the per-stripe locks. Toggle only while no other
  // thread is accessing the cache.
  void SetConcurrent(bool on) { concurrent_.store(on, std::memory_order_relaxed); }
  bool concurrent() const { return concurrent_.load(std::memory_order_relaxed); }

  // Functional read honoring deferred-copy resolution. `paddr` must be
  // naturally aligned for `size`.
  uint32_t Read(PhysAddr paddr, uint8_t size) const;

  // Functional write: fill-on-write for deferred lines, marks the line
  // dirty, stores to destination memory.
  void Write(PhysAddr paddr, uint32_t value, uint8_t size);

  // Presence tracking for hit/miss timing.
  bool Contains(PhysAddr paddr) const;
  // Installs a (clean) line after a fill, unless already present.
  void Touch(PhysAddr paddr);

  bool LineDirty(PhysAddr paddr) const;

  // O(1) per-page dirty check: the prototype checks the per-page dirty bit
  // rather than inspecting every line's tags (Section 3.3).
  bool PageDirty(PhysAddr page_base) const;

  struct PageOpResult {
    uint32_t lines_present = 0;
    uint32_t dirty_lines = 0;
  };

  // Writes back every dirty line of the page (policy notified per line) and
  // leaves lines present but clean.
  PageOpResult FlushPage(PhysAddr page_base);

  // Drops every line of the page without writeback. Dirty data is discarded
  // (the essence of resetDeferredCopy).
  PageOpResult InvalidatePage(PhysAddr page_base);

  // Writes back a single dirty line, if dirty. Returns true if a writeback
  // happened.
  bool FlushLine(PhysAddr paddr);

  // Drops a single line without writeback (dirty data discarded). Returns
  // true if the line was present.
  bool InvalidateLine(PhysAddr paddr);

  uint64_t fills() const { return fills_.value(); }
  uint64_t writebacks() const { return writebacks_.value(); }
  uint64_t stripe_contention() const { return stripe_contention_.value(); }

  void RegisterMetrics(obs::MetricsRegistry* registry) const {
    registry->RegisterCounter("l2.fills", &fills_);
    registry->RegisterCounter("l2.writebacks", &writebacks_);
    registry->RegisterCounter("l2.stripe_contention", &stripe_contention_);
  }

 private:
  struct LineState {
    bool dirty = false;
  };

  // A page's line states and its dirty-line count live in the same stripe,
  // so every page-scoped operation takes exactly one lock.
  struct Stripe {
    mutable Mutex mu LVM_ACQUIRED_AFTER(lockorder::kLevelFlightRing){
        "L2Cache::Stripe::mu", lockorder::kRankL2Stripe};
    // keyed by LineBase
    std::unordered_map<PhysAddr, LineState> lines LVM_GUARDED_BY(mu);
    // keyed by PageBase
    std::unordered_map<PhysAddr, uint32_t> dirty_in_page LVM_GUARDED_BY(mu);
  };

  // Holds the stripe lock only in concurrent mode; counts contended
  // acquisitions (the shared-line serialization the paper calls rare).
  // The conditional acquisition is invisible to the thread-safety analysis
  // (hence the escapes); the scoped-capability contract is still sound: in
  // serial mode exactly one thread touches the cache, so the guarded fields
  // are data-race-free whether or not the lock is physically taken.
  class LVM_SCOPED_CAPABILITY StripeGuard {
   public:
    StripeGuard(const Stripe& stripe, bool concurrent, obs::Counter* contended)
        LVM_ACQUIRE(stripe.mu) LVM_NO_THREAD_SAFETY_ANALYSIS
        : mu_(concurrent ? &stripe.mu : nullptr) {
      if (mu_ != nullptr && !mu_->TryLock()) {
        contended->Increment();
        mu_->Lock();
      }
    }
    ~StripeGuard() LVM_RELEASE() LVM_NO_THREAD_SAFETY_ANALYSIS {
      if (mu_ != nullptr) {
        mu_->Unlock();
      }
    }
    StripeGuard(const StripeGuard&) = delete;
    StripeGuard& operator=(const StripeGuard&) = delete;

   private:
    Mutex* mu_;
  };

  Stripe& StripeFor(PhysAddr paddr) { return stripes_[PageNumber(paddr) % kStripes]; }
  const Stripe& StripeFor(PhysAddr paddr) const {
    return stripes_[PageNumber(paddr) % kStripes];
  }

  void MarkDirty(Stripe& stripe, PhysAddr line, LineState* state) LVM_REQUIRES(stripe.mu);
  void MarkClean(Stripe& stripe, PhysAddr line, LineState* state) LVM_REQUIRES(stripe.mu);

  PhysicalMemory* memory_;
  DeferredCopyPolicy* policy_ = nullptr;
  Stripe stripes_[kStripes];
  std::atomic<bool> concurrent_{false};
  obs::Counter fills_;
  obs::Counter writebacks_;
  // Incremented from const read paths too.
  mutable obs::Counter stripe_contention_;
};

}  // namespace lvm

#endif  // SRC_SIM_L2_CACHE_H_
