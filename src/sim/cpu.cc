#include "src/sim/cpu.h"

#include <string>

namespace lvm {

namespace {
// Sentinel for an empty on-chip tag slot.
constexpr PhysAddr kInvalidTag = ~PhysAddr{0};
}  // namespace

Cpu::Cpu(int id, const MachineParams* params, Bus* bus, L2Cache* l2, PhysicalMemory* memory)
    : id_(id),
      params_(params),
      bus_(bus),
      l2_(l2),
      memory_(memory),
      l1_tags_(params->l1_data_lines, kInvalidTag) {}

Translation Cpu::TranslateOrFault(VirtAddr va, AccessKind access) {
  LVM_CHECK_MSG(translator_ != nullptr, "no address space bound to CPU");
  Translation translation;
  if (translator_->Translate(va, access, &translation)) {
    return translation;
  }
  page_faults_.Increment();
  LVM_CHECK_MSG(fault_handler_ != nullptr, "page fault with no handler installed");
  bool resolved = fault_handler_->OnPageFault(this, va, access);
  LVM_CHECK_MSG(resolved, "unresolvable page fault (bad address)");
  bool mapped = translator_->Translate(va, access, &translation);
  LVM_CHECK_MSG(mapped, "page fault handler did not establish the mapping");
  return translation;
}

uint32_t Cpu::Read(VirtAddr va, uint8_t size) {
  reads_.Increment();
  Translation translation = TranslateOrFault(va, AccessKind::kRead);
  Cycles cost = ChargeRead(translation.paddr);
  Bump(cost);
  ChargeProf(obs::CostCenter::kMemRead, cost);
  if (access_observer_ != nullptr) {
    access_observer_->OnMemoryAccess(id_, AccessKind::kRead, va, translation.paddr, size,
                                     translation.logged, now());
  }
  return l2_->Read(translation.paddr, size);
}

uint32_t Cpu::ChargeRead(PhysAddr paddr) {
  PhysAddr line = LineBase(paddr);
  size_t index = (line >> kLineShift) % l1_tags_.size();
  if (l1_tags_[index] == line) {
    return params_->l1_read_hit_cycles;
  }
  l1_tags_[index] = line;
  if (l2_->Contains(paddr)) {
    // Block fill from the second-level cache over the bus.
    bus_->Acquire(now(), params_->cache_block_write_bus);
    return params_->l2_read_hit_cycles;
  }
  l2_->Touch(paddr);
  bus_->Acquire(now(), params_->cache_block_write_bus);
  return params_->memory_read_cycles;
}

void Cpu::Write(VirtAddr va, uint32_t value, uint8_t size) {
  writes_.Increment();
  Translation translation = TranslateOrFault(va, AccessKind::kWrite);
  if (translation.logged) {
    logged_writes_.Increment();
  }
  if (translation.write_through) {
    WriteThrough(translation.paddr, value, size, translation.logged);
  } else {
    Bump(params_->unlogged_write_cycles);
    ChargeProf(obs::CostCenter::kMemWrite, params_->unlogged_write_cycles);
  }
  if (translation.logged && log_sink_ != nullptr) {
    log_sink_->OnLoggedWrite(this, va, translation.paddr, value, size);
  }
  if (access_observer_ != nullptr) {
    access_observer_->OnMemoryAccess(id_, AccessKind::kWrite, va, translation.paddr, size,
                                     translation.logged, now());
  }
  l2_->Write(translation.paddr, value, size);
}

void Cpu::WriteThrough(PhysAddr paddr, uint32_t value, uint8_t size, bool logged) {
  // Retire buffered writes whose bus transactions completed.
  while (!write_buffer_.empty() && write_buffer_.front() <= now()) {
    write_buffer_.pop_front();
  }
  // Stall when the buffer is full (Section 4.5.2: the write-through penalty
  // grows with the burst size the buffer cannot absorb).
  if (write_buffer_.size() >= params_->write_buffer_depth) {
    AdvanceTo(write_buffer_.front(), obs::CostCenter::kBusContention);
    write_buffer_.pop_front();
  }
  // CPU-side cost of issuing the buffered write, then the bus transfer
  // drains in the background (Table 2: 6 cycles total, 5 of them bus).
  Cycles issue = params_->word_write_through_total - params_->word_write_through_bus;
  Bump(issue);
  ChargeProf(obs::CostCenter::kMemWrite, issue);
  Cycles grant = bus_->Write(now(), params_->word_write_through_bus, paddr, value, size, logged,
                             id_);
  write_buffer_.push_back(grant + params_->word_write_through_bus);
}

void Cpu::DrainWriteBuffer() {
  if (!write_buffer_.empty()) {
    AdvanceTo(write_buffer_.back());
    write_buffer_.clear();
  }
}

void Cpu::RegisterMetrics(obs::MetricsRegistry* registry) const {
  std::string prefix = "cpu" + std::to_string(id_) + ".";
  registry->RegisterCounter(prefix + "reads", &reads_);
  registry->RegisterCounter(prefix + "writes", &writes_);
  registry->RegisterCounter(prefix + "logged_writes", &logged_writes_);
  registry->RegisterCounter(prefix + "stall_cycles", &stall_cycles_);
  registry->RegisterCounter(prefix + "page_faults", &page_faults_);
  registry->RegisterCounter(prefix + "compute_cycles", &compute_cycles_);
}

void Cpu::InvalidateL1Page(PhysAddr page_base) {
  page_base = PageBase(page_base);
  for (uint32_t i = 0; i < kLinesPerPage; ++i) {
    PhysAddr line = page_base + i * kLineSize;
    size_t index = (line >> kLineShift) % l1_tags_.size();
    if (l1_tags_[index] == line) {
      l1_tags_[index] = kInvalidTag;
    }
  }
}

}  // namespace lvm
