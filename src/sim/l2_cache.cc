#include "src/sim/l2_cache.h"

namespace lvm {

namespace {
PhysAddr Identity(PhysAddr paddr) { return paddr; }
}  // namespace

uint32_t L2Cache::Read(PhysAddr paddr, uint8_t size) const {
  LVM_DCHECK(paddr % size == 0);
  PhysAddr line = LineBase(paddr);
  const Stripe& stripe = StripeFor(paddr);
  StripeGuard guard(stripe, concurrent(), &stripe_contention_);
  auto it = stripe.lines.find(line);
  if (it != stripe.lines.end() && it->second.dirty) {
    return memory_->Read(paddr, size);
  }
  PhysAddr resolved = policy_ != nullptr ? policy_->ResolveClean(paddr) : Identity(paddr);
  return memory_->Read(resolved, size);
}

void L2Cache::Write(PhysAddr paddr, uint32_t value, uint8_t size) {
  LVM_DCHECK(paddr % size == 0);
  PhysAddr line = LineBase(paddr);
  Stripe& stripe = StripeFor(paddr);
  StripeGuard guard(stripe, concurrent(), &stripe_contention_);
  LineState& state = stripe.lines[line];
  if (!state.dirty) {
    if (policy_ != nullptr) {
      PhysAddr source_line = policy_->ResolveClean(line);
      if (source_line != line) {
        // Line fill from the deferred-copy source before the partial write.
        memory_->CopyBlock(line, source_line, kLineSize);
        fills_.Increment();
      }
    }
    MarkDirty(stripe, line, &state);
  }
  memory_->Write(paddr, value, size);
}

bool L2Cache::Contains(PhysAddr paddr) const {
  const Stripe& stripe = StripeFor(paddr);
  StripeGuard guard(stripe, concurrent(), &stripe_contention_);
  return stripe.lines.find(LineBase(paddr)) != stripe.lines.end();
}

void L2Cache::Touch(PhysAddr paddr) {
  PhysAddr line = LineBase(paddr);
  Stripe& stripe = StripeFor(paddr);
  StripeGuard guard(stripe, concurrent(), &stripe_contention_);
  stripe.lines.try_emplace(line);
  fills_.Increment();
}

bool L2Cache::LineDirty(PhysAddr paddr) const {
  const Stripe& stripe = StripeFor(paddr);
  StripeGuard guard(stripe, concurrent(), &stripe_contention_);
  auto it = stripe.lines.find(LineBase(paddr));
  return it != stripe.lines.end() && it->second.dirty;
}

bool L2Cache::PageDirty(PhysAddr page_base) const {
  const Stripe& stripe = StripeFor(page_base);
  StripeGuard guard(stripe, concurrent(), &stripe_contention_);
  auto it = stripe.dirty_in_page.find(PageBase(page_base));
  return it != stripe.dirty_in_page.end() && it->second > 0;
}

L2Cache::PageOpResult L2Cache::FlushPage(PhysAddr page_base) {
  page_base = PageBase(page_base);
  Stripe& stripe = StripeFor(page_base);
  StripeGuard guard(stripe, concurrent(), &stripe_contention_);
  PageOpResult result;
  for (uint32_t i = 0; i < kLinesPerPage; ++i) {
    PhysAddr line = page_base + i * kLineSize;
    auto it = stripe.lines.find(line);
    if (it == stripe.lines.end()) {
      continue;
    }
    ++result.lines_present;
    if (it->second.dirty) {
      ++result.dirty_lines;
      writebacks_.Increment();
      if (policy_ != nullptr) {
        policy_->OnLineWriteback(line);
      }
      MarkClean(stripe, line, &it->second);
    }
  }
  return result;
}

L2Cache::PageOpResult L2Cache::InvalidatePage(PhysAddr page_base) {
  page_base = PageBase(page_base);
  Stripe& stripe = StripeFor(page_base);
  StripeGuard guard(stripe, concurrent(), &stripe_contention_);
  PageOpResult result;
  for (uint32_t i = 0; i < kLinesPerPage; ++i) {
    PhysAddr line = page_base + i * kLineSize;
    auto it = stripe.lines.find(line);
    if (it == stripe.lines.end()) {
      continue;
    }
    ++result.lines_present;
    if (it->second.dirty) {
      ++result.dirty_lines;
      MarkClean(stripe, line, &it->second);
    }
    stripe.lines.erase(it);
  }
  return result;
}

bool L2Cache::FlushLine(PhysAddr paddr) {
  PhysAddr line = LineBase(paddr);
  Stripe& stripe = StripeFor(paddr);
  StripeGuard guard(stripe, concurrent(), &stripe_contention_);
  auto it = stripe.lines.find(line);
  if (it == stripe.lines.end() || !it->second.dirty) {
    return false;
  }
  writebacks_.Increment();
  if (policy_ != nullptr) {
    policy_->OnLineWriteback(line);
  }
  MarkClean(stripe, line, &it->second);
  return true;
}

bool L2Cache::InvalidateLine(PhysAddr paddr) {
  PhysAddr line = LineBase(paddr);
  Stripe& stripe = StripeFor(paddr);
  StripeGuard guard(stripe, concurrent(), &stripe_contention_);
  auto it = stripe.lines.find(line);
  if (it == stripe.lines.end()) {
    return false;
  }
  MarkClean(stripe, line, &it->second);
  stripe.lines.erase(it);
  return true;
}

void L2Cache::MarkDirty(Stripe& stripe, PhysAddr line, LineState* state) {
  if (!state->dirty) {
    state->dirty = true;
    ++stripe.dirty_in_page[PageBase(line)];
  }
}

void L2Cache::MarkClean(Stripe& stripe, PhysAddr line, LineState* state) {
  if (state->dirty) {
    state->dirty = false;
    auto it = stripe.dirty_in_page.find(PageBase(line));
    LVM_DCHECK(it != stripe.dirty_in_page.end() && it->second > 0);
    if (--it->second == 0) {
      stripe.dirty_in_page.erase(it);
    }
  }
}

}  // namespace lvm
