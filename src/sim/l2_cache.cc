#include "src/sim/l2_cache.h"

namespace lvm {

namespace {
PhysAddr Identity(PhysAddr paddr) { return paddr; }
}  // namespace

uint32_t L2Cache::Read(PhysAddr paddr, uint8_t size) const {
  LVM_DCHECK(paddr % size == 0);
  PhysAddr line = LineBase(paddr);
  auto it = lines_.find(line);
  if (it != lines_.end() && it->second.dirty) {
    return memory_->Read(paddr, size);
  }
  PhysAddr resolved = policy_ != nullptr ? policy_->ResolveClean(paddr) : Identity(paddr);
  return memory_->Read(resolved, size);
}

void L2Cache::Write(PhysAddr paddr, uint32_t value, uint8_t size) {
  LVM_DCHECK(paddr % size == 0);
  PhysAddr line = LineBase(paddr);
  LineState& state = lines_[line];
  if (!state.dirty) {
    if (policy_ != nullptr) {
      PhysAddr source_line = policy_->ResolveClean(line);
      if (source_line != line) {
        // Line fill from the deferred-copy source before the partial write.
        memory_->CopyBlock(line, source_line, kLineSize);
        fills_.Increment();
      }
    }
    MarkDirty(line, &state);
  }
  memory_->Write(paddr, value, size);
}

void L2Cache::Touch(PhysAddr paddr) {
  PhysAddr line = LineBase(paddr);
  lines_.try_emplace(line);
  fills_.Increment();
}

L2Cache::PageOpResult L2Cache::FlushPage(PhysAddr page_base) {
  page_base = PageBase(page_base);
  PageOpResult result;
  for (uint32_t i = 0; i < kLinesPerPage; ++i) {
    PhysAddr line = page_base + i * kLineSize;
    auto it = lines_.find(line);
    if (it == lines_.end()) {
      continue;
    }
    ++result.lines_present;
    if (it->second.dirty) {
      ++result.dirty_lines;
      writebacks_.Increment();
      if (policy_ != nullptr) {
        policy_->OnLineWriteback(line);
      }
      MarkClean(line, &it->second);
    }
  }
  return result;
}

L2Cache::PageOpResult L2Cache::InvalidatePage(PhysAddr page_base) {
  page_base = PageBase(page_base);
  PageOpResult result;
  for (uint32_t i = 0; i < kLinesPerPage; ++i) {
    PhysAddr line = page_base + i * kLineSize;
    auto it = lines_.find(line);
    if (it == lines_.end()) {
      continue;
    }
    ++result.lines_present;
    if (it->second.dirty) {
      ++result.dirty_lines;
      MarkClean(line, &it->second);
    }
    lines_.erase(it);
  }
  return result;
}

bool L2Cache::FlushLine(PhysAddr paddr) {
  PhysAddr line = LineBase(paddr);
  auto it = lines_.find(line);
  if (it == lines_.end() || !it->second.dirty) {
    return false;
  }
  writebacks_.Increment();
  if (policy_ != nullptr) {
    policy_->OnLineWriteback(line);
  }
  MarkClean(line, &it->second);
  return true;
}

bool L2Cache::InvalidateLine(PhysAddr paddr) {
  PhysAddr line = LineBase(paddr);
  auto it = lines_.find(line);
  if (it == lines_.end()) {
    return false;
  }
  MarkClean(line, &it->second);
  lines_.erase(it);
  return true;
}

void L2Cache::MarkDirty(PhysAddr line, LineState* state) {
  if (!state->dirty) {
    state->dirty = true;
    ++dirty_lines_in_page_[PageBase(line)];
  }
}

void L2Cache::MarkClean(PhysAddr line, LineState* state) {
  if (state->dirty) {
    state->dirty = false;
    auto it = dirty_lines_in_page_.find(PageBase(line));
    LVM_DCHECK(it != dirty_lines_in_page_.end() && it->second > 0);
    if (--it->second == 0) {
      dirty_lines_in_page_.erase(it);
    }
  }
}

}  // namespace lvm
