// Interfaces decoupling the machine model from the virtual memory system and
// the bus logger. `sim` depends only on `base`; the VM layer implements
// AddressTranslator / PageFaultHandler / DeferredCopyPolicy, and the logger
// implements BusSnooper.
#ifndef SRC_SIM_INTERFACES_H_
#define SRC_SIM_INTERFACES_H_

#include <cstdint>

#include "src/base/types.h"

namespace lvm {

class Cpu;

enum class AccessKind : uint8_t { kRead, kWrite };

// Outcome of a virtual-to-physical translation.
struct Translation {
  PhysAddr paddr = 0;
  // Logged pages run the on-chip cache in write-through mode so every write
  // appears on the system bus (Section 3.2).
  bool write_through = false;
  // Asserts the bus signal that tells the logger to capture this write. In
  // the prototype this is controlled by the page mapping (Section 3.1).
  bool logged = false;
};

// Virtual-to-physical translation, implemented by the VM system.
class AddressTranslator {
 public:
  virtual ~AddressTranslator() = default;
  // Returns true and fills `out` when `va` is mapped with sufficient access;
  // returns false to signal a page fault.
  virtual bool Translate(VirtAddr va, AccessKind access, Translation* out) = 0;
};

// Kernel page-fault entry point.
class PageFaultHandler {
 public:
  virtual ~PageFaultHandler() = default;
  // Resolves the fault so that a retried translation succeeds. Returns false
  // for an unresolvable fault (an application addressing error).
  virtual bool OnPageFault(Cpu* cpu, VirtAddr va, AccessKind access) = 0;
};

// Observes every write that appears on the system bus.
class BusSnooper {
 public:
  virtual ~BusSnooper() = default;
  // `logged` is the page-mapping-controlled bus signal; `time` is the bus
  // grant time of the write; `cpu_id` identifies the writing processor.
  virtual void OnBusWrite(PhysAddr paddr, uint32_t value, uint8_t size, bool logged,
                          Cycles time, int cpu_id) = 0;
};

// Receives logged writes with their *virtual* address at the CPU, before
// they reach the bus. This is the integration point for the next-generation
// on-chip logger of Section 4.6 (logging inside the CPU's VM unit); the
// prototype's bus logger instead snoops physical addresses via BusSnooper.
class LoggedWriteSink {
 public:
  virtual ~LoggedWriteSink() = default;
  virtual void OnLoggedWrite(Cpu* cpu, VirtAddr va, PhysAddr paddr, uint32_t value,
                             uint8_t size) = 0;
};

// Observes every data access the CPU makes, after translation, with the
// writing/reading processor's id, its cycle clock at the access, and the
// page-mapping-controlled logged bit. This is the feed for guest-level
// analysis tools (the src/race happens-before detector); unlike BusSnooper
// it also sees reads and unlogged copyback writes, which never appear on
// the bus. Called on the thread driving the CPU, so an observer shared by
// several CPUs must be internally thread-safe under the parallel engine.
class MemoryAccessObserver {
 public:
  virtual ~MemoryAccessObserver() = default;
  virtual void OnMemoryAccess(int cpu_id, AccessKind kind, VirtAddr va, PhysAddr paddr,
                              uint8_t size, bool logged, Cycles time) = 0;
};

// Resolves deferred-copy indirection for the second-level cache (Section
// 3.3). The default behaviour is the identity (no deferred copy).
class DeferredCopyPolicy {
 public:
  virtual ~DeferredCopyPolicy() = default;
  // Physical address whose memory holds the current datum for `paddr` when
  // the second-level cache line is not dirty: the deferred-copy source, the
  // destination itself once the line has been written back, or the identity.
  virtual PhysAddr ResolveClean(PhysAddr paddr) { return paddr; }
  // A dirty line is being written back to its destination address; loads of
  // that line must come from the destination from now on.
  virtual void OnLineWriteback(PhysAddr line_paddr) { (void)line_paddr; }
};

}  // namespace lvm

#endif  // SRC_SIM_INTERFACES_H_
