// Shared system bus: arbitration timing plus write snooping.
//
// The bus is a single shared resource. A transaction requested at `ready`
// is granted at max(ready, next_free) and occupies the bus for its busy
// time. Registered snoopers (the bus logger) observe every write together
// with the page-mapping-controlled "logged" signal, exactly as the
// prototype's logger snoops the ParaDiGM bus (Section 3.1).
#ifndef SRC_SIM_BUS_H_
#define SRC_SIM_BUS_H_

#include <cstdint>
#include <vector>

#include "src/base/types.h"
#include "src/obs/metrics.h"
#include "src/sim/interfaces.h"

namespace lvm {

class Bus {
 public:
  // Acquires the bus for `busy` cycles no earlier than `ready`. Returns the
  // grant time.
  Cycles Acquire(Cycles ready, uint32_t busy) {
    Cycles grant = ready > next_free_ ? ready : next_free_;
    next_free_ = grant + busy;
    busy_cycles_.Add(busy);
    transactions_.Increment();
    return grant;
  }

  // Issues a write transaction: acquires the bus and notifies snoopers.
  // Returns the grant time.
  Cycles Write(Cycles ready, uint32_t busy, PhysAddr paddr, uint32_t value, uint8_t size,
               bool logged, int cpu_id) {
    Cycles grant = Acquire(ready, busy);
    for (BusSnooper* snooper : snoopers_) {
      snooper->OnBusWrite(paddr, value, size, logged, grant, cpu_id);
    }
    return grant;
  }

  void AddSnooper(BusSnooper* snooper) { snoopers_.push_back(snooper); }

  // Registers a snooper ahead of those already present. The invariant
  // checker (src/check) uses this so it records a write's ground truth
  // before the logger can consume the write — the logger's overload drain
  // retires FIFO entries synchronously inside its own OnBusWrite.
  void AddSnooperFront(BusSnooper* snooper) {
    snoopers_.insert(snoopers_.begin(), snooper);
  }

  // Unregisters a snooper (a checker detaching before the machine dies).
  void RemoveSnooper(BusSnooper* snooper) {
    for (auto it = snoopers_.begin(); it != snoopers_.end(); ++it) {
      if (*it == snooper) {
        snoopers_.erase(it);
        return;
      }
    }
  }

  Cycles next_free() const { return next_free_; }
  uint64_t busy_cycles() const { return busy_cycles_.value(); }
  uint64_t transactions() const { return transactions_.value(); }

  void RegisterMetrics(obs::MetricsRegistry* registry) const {
    registry->RegisterCounter("bus.busy_cycles", &busy_cycles_);
    registry->RegisterCounter("bus.transactions", &transactions_);
  }

 private:
  std::vector<BusSnooper*> snoopers_;
  Cycles next_free_ = 0;
  obs::Counter busy_cycles_;
  obs::Counter transactions_;
};

}  // namespace lvm

#endif  // SRC_SIM_BUS_H_
