// Shared system bus: arbitration timing plus write snooping.
//
// The bus is a single shared resource. A transaction requested at `ready`
// is granted at max(ready, next_free) and occupies the bus for its busy
// time. Registered snoopers (the bus logger) observe every write together
// with the page-mapping-controlled "logged" signal, exactly as the
// prototype's logger snoops the ParaDiGM bus (Section 3.1).
//
// Thread safety: arbitration uses an atomic compare-exchange on next_free_
// and the counters are atomic, so concurrent Acquire calls are safe. The
// snooper list must be quiescent while multiple threads issue writes; the
// parallel engine (src/par) detaches the bus logger before going
// free-running and routes logged writes through per-CPU shards instead.
//
// Free-running mode (parallel engine only): each worker advances its own
// simulated clock, so the clocks of concurrently running CPUs are mutually
// unordered. Arbitrating against a shared next_free_ would couple them —
// a worker scheduled late on the host would inherit grant times from a
// worker that already simulated far into the future, destroying per-CPU
// cycle accounting. SetFreeRunning(true) therefore grants every request at
// its ready time (no cross-CPU arbitration) while still accumulating
// busy-cycle/transaction counters; same-line ordering is enforced by the
// striped L2/data-path locks, and the deterministic engine mode keeps exact
// arbitration by running one CPU at a time.
#ifndef SRC_SIM_BUS_H_
#define SRC_SIM_BUS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/base/types.h"
#include "src/obs/metrics.h"
#include "src/sim/interfaces.h"

namespace lvm {

class Bus {
 public:
  // Acquires the bus for `busy` cycles no earlier than `ready`. Returns the
  // grant time.
  Cycles Acquire(Cycles ready, uint32_t busy) {
    busy_cycles_.Add(busy);
    transactions_.Increment();
    if (free_running_.load(std::memory_order_relaxed)) {
      return ready;
    }
    Cycles observed = next_free_.load(std::memory_order_relaxed);
    Cycles grant;
    do {
      grant = ready > observed ? ready : observed;
    } while (!next_free_.compare_exchange_weak(observed, grant + busy,
                                               std::memory_order_relaxed));
    return grant;
  }

  // Issues a write transaction: acquires the bus and notifies snoopers.
  // Returns the grant time.
  Cycles Write(Cycles ready, uint32_t busy, PhysAddr paddr, uint32_t value, uint8_t size,
               bool logged, int cpu_id) {
    Cycles grant = Acquire(ready, busy);
    for (BusSnooper* snooper : snoopers_) {
      snooper->OnBusWrite(paddr, value, size, logged, grant, cpu_id);
    }
    return grant;
  }

  void AddSnooper(BusSnooper* snooper) { snoopers_.push_back(snooper); }

  // Registers a snooper ahead of those already present. The invariant
  // checker (src/check) uses this so it records a write's ground truth
  // before the logger can consume the write — the logger's overload drain
  // retires FIFO entries synchronously inside its own OnBusWrite.
  void AddSnooperFront(BusSnooper* snooper) {
    snoopers_.insert(snoopers_.begin(), snooper);
  }

  // Unregisters a snooper (a checker detaching before the machine dies).
  void RemoveSnooper(BusSnooper* snooper) {
    for (auto it = snoopers_.begin(); it != snoopers_.end(); ++it) {
      if (*it == snooper) {
        snoopers_.erase(it);
        return;
      }
    }
  }

  // Parallel engine only; see the header comment. Must be toggled while no
  // transactions are in flight.
  void SetFreeRunning(bool on) { free_running_.store(on, std::memory_order_relaxed); }
  bool free_running() const { return free_running_.load(std::memory_order_relaxed); }

  Cycles next_free() const { return next_free_.load(std::memory_order_relaxed); }
  uint64_t busy_cycles() const { return busy_cycles_.value(); }
  uint64_t transactions() const { return transactions_.value(); }

  void RegisterMetrics(obs::MetricsRegistry* registry) const {
    registry->RegisterCounter("bus.busy_cycles", &busy_cycles_);
    registry->RegisterCounter("bus.transactions", &transactions_);
  }

 private:
  std::vector<BusSnooper*> snoopers_;
  std::atomic<Cycles> next_free_{0};
  std::atomic<bool> free_running_{false};
  obs::Counter busy_cycles_;
  obs::Counter transactions_;
};

}  // namespace lvm

#endif  // SRC_SIM_BUS_H_
