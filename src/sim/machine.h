// The simulated ParaDiGM machine: CPUs, system bus, second-level cache and
// physical memory, owned together and wired up.
#ifndef SRC_SIM_MACHINE_H_
#define SRC_SIM_MACHINE_H_

#include <memory>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"
#include "src/sim/bus.h"
#include "src/sim/cpu.h"
#include "src/sim/l2_cache.h"
#include "src/sim/params.h"
#include "src/sim/phys_mem.h"

namespace lvm {

class Machine {
 public:
  // Creates a machine with `memory_size` bytes of physical memory (page
  // aligned) and `num_cpus` processors. The prototype has four.
  explicit Machine(const MachineParams& params, uint32_t memory_size = 64u << 20,
                   int num_cpus = 1)
      : params_(params), memory_(memory_size), l2_(&memory_) {
    LVM_CHECK(num_cpus >= 1);
    cpus_.reserve(static_cast<size_t>(num_cpus));
    for (int i = 0; i < num_cpus; ++i) {
      cpus_.push_back(std::make_unique<Cpu>(i, &params_, &bus_, &l2_, &memory_));
    }
  }

  const MachineParams& params() const { return params_; }
  PhysicalMemory& memory() { return memory_; }
  Bus& bus() { return bus_; }
  const Bus& bus() const { return bus_; }
  L2Cache& l2() { return l2_; }
  const L2Cache& l2() const { return l2_; }
  Cpu& cpu(int i = 0) { return *cpus_.at(static_cast<size_t>(i)); }
  const Cpu& cpu(int i = 0) const { return *cpus_.at(static_cast<size_t>(i)); }
  int num_cpus() const { return static_cast<int>(cpus_.size()); }

  // Registers bus, L2 and per-CPU counters with `registry`.
  void RegisterMetrics(obs::MetricsRegistry* registry) const {
    bus_.RegisterMetrics(registry);
    l2_.RegisterMetrics(registry);
    for (const auto& cpu : cpus_) {
      cpu->RegisterMetrics(registry);
    }
  }

  // Invalidates the on-chip tags for `page_base` on every CPU (used when the
  // deferred-copy mapping of a page changes underneath the caches).
  void InvalidateL1PageAllCpus(PhysAddr page_base) {
    for (auto& cpu : cpus_) {
      cpu->InvalidateL1Page(page_base);
    }
  }

 private:
  MachineParams params_;
  PhysicalMemory memory_;
  Bus bus_;
  L2Cache l2_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
};

}  // namespace lvm

#endif  // SRC_SIM_MACHINE_H_
