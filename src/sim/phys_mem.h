// Simulated physical memory: a flat byte array with word and block accessors.
#ifndef SRC_SIM_PHYS_MEM_H_
#define SRC_SIM_PHYS_MEM_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"

namespace lvm {

class PhysicalMemory {
 public:
  // `size` must be page aligned.
  explicit PhysicalMemory(uint32_t size) : bytes_(size) {
    LVM_CHECK(size % kPageSize == 0);
  }

  uint32_t size() const { return static_cast<uint32_t>(bytes_.size()); }

  // Reads `size` (1, 2, or 4) bytes at `paddr`, zero extended.
  uint32_t Read(PhysAddr paddr, uint8_t size) const {
    CheckRange(paddr, size);
    uint32_t value = 0;
    std::memcpy(&value, &bytes_[paddr], size);
    return value;
  }

  // Writes the low `size` (1, 2, or 4) bytes of `value` at `paddr`.
  void Write(PhysAddr paddr, uint32_t value, uint8_t size) {
    CheckRange(paddr, size);
    std::memcpy(&bytes_[paddr], &value, size);
  }

  // Bulk accessors for block transfers (cache fills, DMA, bcopy).
  void ReadBlock(PhysAddr paddr, void* out, uint32_t len) const {
    CheckRange(paddr, len);
    std::memcpy(out, &bytes_[paddr], len);
  }
  void WriteBlock(PhysAddr paddr, const void* data, uint32_t len) {
    CheckRange(paddr, len);
    std::memcpy(&bytes_[paddr], data, len);
  }
  void CopyBlock(PhysAddr dst, PhysAddr src, uint32_t len) {
    CheckRange(dst, len);
    CheckRange(src, len);
    std::memmove(&bytes_[dst], &bytes_[src], len);
  }
  void Zero(PhysAddr paddr, uint32_t len) {
    CheckRange(paddr, len);
    std::memset(&bytes_[paddr], 0, len);
  }

  const uint8_t* raw(PhysAddr paddr) const { return &bytes_[paddr]; }
  uint8_t* raw_mutable(PhysAddr paddr) { return &bytes_[paddr]; }

 private:
  void CheckRange(PhysAddr paddr, uint32_t len) const {
    LVM_CHECK_MSG(static_cast<uint64_t>(paddr) + len <= bytes_.size(),
                  "physical address out of range");
  }

  std::vector<uint8_t> bytes_;
};

}  // namespace lvm

#endif  // SRC_SIM_PHYS_MEM_H_
