// Machine cost model for the simulated ParaDiGM multiprocessor.
//
// Every timing constant the benchmarks depend on lives here. The defaults
// reproduce the prototype of the paper: four 25 MHz 68040s sharing a system
// bus with a 4 MB second-level cache and the FPGA bus logger. Table 2 of the
// paper calibrates the three bus operations; the remaining values are set so
// the measured shapes of Figures 7-12 hold (see DESIGN.md section 5 and
// EXPERIMENTS.md for the derivations).
#ifndef SRC_SIM_PARAMS_H_
#define SRC_SIM_PARAMS_H_

#include <cstdint>

#include "src/base/types.h"

namespace lvm {

struct MachineParams {
  // --- Clock ---
  // 25 MHz CPU clock: one cycle is 40 ns.
  uint32_t cycle_ns = 40;
  // Log record timestamps tick at 6.25 MHz, i.e. once every 4 CPU cycles.
  uint32_t timestamp_divider = 4;

  // --- Table 2: basic machine operations ---
  // Word write in write-through mode (logged pages): total / bus portion.
  uint32_t word_write_through_total = 6;
  uint32_t word_write_through_bus = 5;
  // Cache block (16-byte line) write to the bus: total / bus portion.
  uint32_t cache_block_write_total = 9;
  uint32_t cache_block_write_bus = 8;
  // DMA of one 16-byte log record into memory: total / bus portion.
  uint32_t log_record_dma_total = 18;
  uint32_t log_record_dma_bus = 8;

  // --- CPU-side memory costs ---
  // Effective cost of a write to an unlogged (copyback-cached) page. The
  // 68040's on-chip cache absorbs these; writebacks overlap with computation.
  uint32_t unlogged_write_cycles = 2;
  // Read hitting the on-chip cache.
  uint32_t l1_read_hit_cycles = 1;
  // Read missing on-chip but hitting the second-level cache (block fill).
  uint32_t l2_read_hit_cycles = 9;
  // Read missing both caches (main-memory block fetch).
  uint32_t memory_read_cycles = 24;
  // Number of outstanding write-through words the CPU write buffer absorbs
  // before the processor stalls. Section 4.5.2: the write-through penalty
  // grows with the burst size because the prototype's buffer is small.
  uint32_t write_buffer_depth = 2;
  // On-chip data cache modeled for read timing: 8 KB split I/D, so 4 KB of
  // data lines (256 direct-mapped 16-byte lines).
  uint32_t l1_data_lines = 256;

  // --- Kernel costs ---
  // Page-fault handling (allocate frame, map, logger table loads).
  uint32_t page_fault_cycles = 800;
  // Kernel share of a logging fault (reload mapping / advance log tail).
  uint32_t logging_fault_cpu_cycles = 400;
  // Logger pipeline stall while the kernel services a logging fault.
  uint32_t logging_fault_logger_stall = 100;
  // Kernel cost of an overload interrupt: suspend every logging process,
  // then resume them once the FIFOs drain. Section 4.5.3 measures the whole
  // overload event at more than 30,000 cycles; the drain itself accounts for
  // the rest (fifo_overload_threshold * log_record_dma_total).
  uint32_t overload_kernel_cycles = 21000;

  // --- Bus logger (Section 3.1) ---
  // FIFO capacity in entries and the occupancy that triggers overload.
  uint32_t logger_fifo_capacity = 819;
  uint32_t logger_fifo_threshold = 512;
  // End-to-end service time per record while the CPUs are running: the
  // FPGA logger's snoop -> lookup -> record FIFO -> DMA pipeline, contended
  // by CPU bus traffic. Section 4.5.3: overload is avoided as long as there
  // is no more than one logged write per 27 compute cycles on average; this
  // also yields Figure 7's drop-off below c ~= 200 for w = 8 and Figure
  // 12's overload events vanishing around c ~= 30 for l = 1.
  uint32_t logger_service_active_cycles = 27;
  // Service time per record while the processors are suspended for an
  // overload drain: the DMA rate of Table 2.
  uint32_t logger_service_drain_cycles = 18;

  // Kernel cost of applying one log record to a segment during roll-forward
  // or checkpoint update (read the record, store the datum, loop).
  uint32_t log_apply_record_cycles = 16;
  // Base kernel cost of truncating a log segment.
  uint32_t log_truncate_base_cycles = 300;

  // --- Deferred copy (Section 3.3, Figure 9) ---
  // resetDeferredCopy() per-page cost applied to every page in the range:
  // reset the per-page source mapping and check the dirty bit.
  uint32_t reset_page_cycles = 340;
  // Additional per-dirty-page cost (locate the page's lines).
  uint32_t reset_dirty_page_cycles = 256;
  // Per-line cost of invalidating a modified line and resetting its source.
  uint32_t reset_dirty_line_cycles = 24;
  // bcopy() cost per 16-byte block: block read plus block write.
  uint32_t bcopy_block_cycles = 18;

  // --- Simplifications (see DESIGN.md) ---
  // When true, log-record DMA arbitrates for the system bus against CPU
  // traffic. Off by default: the experiments' effects do not hinge on
  // DMA-versus-CPU contention, and lazy logger draining makes strict
  // interleaving approximate anyway.
  bool dma_contends_bus = false;
};

}  // namespace lvm

#endif  // SRC_SIM_PARAMS_H_
