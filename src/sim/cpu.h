// Simulated processor: a cycle-accounted 25 MHz 68040-class CPU.
//
// Workloads drive the machine through Read / Write / Compute. Every call
// advances this CPU's cycle clock by the modeled cost:
//   - writes to logged (write-through) pages enter a small write buffer and
//     issue word transactions on the system bus, where the logger snoops
//     them; the CPU stalls when the buffer is full (Section 4.5.2);
//   - writes to ordinary copyback pages cost MachineParams::
//     unlogged_write_cycles (the on-chip cache absorbs them);
//   - reads hit the modeled on-chip data cache (timing-only direct-mapped
//     tag array), the second-level cache, or memory.
//
// Translation faults call into the installed PageFaultHandler (the kernel),
// which charges its own cost and establishes the mapping; the access is then
// retried.
#ifndef SRC_SIM_CPU_H_
#define SRC_SIM_CPU_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/sim/bus.h"
#include "src/sim/interfaces.h"
#include "src/sim/l2_cache.h"
#include "src/sim/params.h"
#include "src/sim/phys_mem.h"

namespace lvm {

class Cpu {
 public:
  Cpu(int id, const MachineParams* params, Bus* bus, L2Cache* l2, PhysicalMemory* memory);

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  int id() const { return id_; }
  // Safe to read from any thread (metrics callbacks snapshot it while the
  // parallel engine's workers run); only the owning worker thread and the
  // serialized kernel paths write it.
  Cycles now() const { return now_.load(std::memory_order_relaxed); }

  // The VM layer installs these before the CPU touches memory.
  void set_translator(AddressTranslator* translator) { translator_ = translator; }
  void set_fault_handler(PageFaultHandler* handler) { fault_handler_ = handler; }
  // Optional on-chip logging hook (Section 4.6); nullptr for the bus logger.
  void set_log_sink(LoggedWriteSink* sink) { log_sink_ = sink; }
  // Optional analysis hook observing every translated access (src/race).
  void set_access_observer(MemoryAccessObserver* observer) { access_observer_ = observer; }
  // Optional cycle-attribution profiler; this CPU charges lane `id()`.
  // Charges never advance the clock, so attribution cannot perturb timing.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

  // Spends `cycles` of pure computation. Buffered write-throughs drain in
  // the background during this time.
  void Compute(Cycles cycles) {
    compute_cycles_.Add(cycles);
    Bump(cycles);
    ChargeProf(obs::CostCenter::kCompute, cycles);
  }

  // Advances the clock to `time` if it is in the future (used by the kernel
  // to model suspensions and interrupt handling). The stalled-for cycles
  // are attributed to `center` (overload park, drain waits, ...).
  void AdvanceTo(Cycles time, obs::CostCenter center = obs::CostCenter::kStall) {
    Cycles current = now();
    if (time > current) {
      stall_cycles_.Add(time - current);
      now_.store(time, std::memory_order_relaxed);
      ChargeProf(center, time - current);
    }
  }
  // Charges `cycles` of kernel overhead to this CPU, attributed to `center`
  // (kKernel charges the innermost open profiler scope).
  void AddCycles(Cycles cycles, obs::CostCenter center = obs::CostCenter::kKernel) {
    Bump(cycles);
    ChargeProf(center, cycles);
  }

  // Loads `size` (1, 2, or 4) bytes at virtual address `va`.
  uint32_t Read(VirtAddr va, uint8_t size = 4);
  // Stores the low `size` bytes of `value` at virtual address `va`.
  void Write(VirtAddr va, uint32_t value, uint8_t size = 4);

  // Blocks until every buffered write-through has issued on the bus.
  void DrainWriteBuffer();

  // Timing-only invalidation of on-chip lines for a physical page; used by
  // resetDeferredCopy so post-rollback reads refill.
  void InvalidateL1Page(PhysAddr page_base);

  // --- statistics ---
  uint64_t reads() const { return reads_.value(); }
  uint64_t writes() const { return writes_.value(); }
  uint64_t logged_writes() const { return logged_writes_.value(); }
  uint64_t stall_cycles() const { return stall_cycles_.value(); }
  uint64_t page_faults() const { return page_faults_.value(); }
  uint64_t compute_cycles() const { return compute_cycles_.value(); }

  // Registers this CPU's counters as "cpu<id>.<counter>" externals. The
  // registry must not outlive the CPU.
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

 private:
  Translation TranslateOrFault(VirtAddr va, AccessKind access);
  void WriteThrough(PhysAddr paddr, uint32_t value, uint8_t size, bool logged);
  uint32_t ChargeRead(PhysAddr paddr);

  void Bump(Cycles cycles) {
    now_.store(now_.load(std::memory_order_relaxed) + cycles, std::memory_order_relaxed);
  }

  // Every clock mutation pairs with a charge through here (or AdvanceTo),
  // which is what makes per-lane attribution conserve cpu.now() - baseline.
  void ChargeProf(obs::CostCenter center, Cycles cycles) {
    if (profiler_ != nullptr) {
      profiler_->Charge(id_, center, cycles);
    }
  }

  const int id_;
  const MachineParams* params_;
  Bus* bus_;
  L2Cache* l2_;
  PhysicalMemory* memory_;
  AddressTranslator* translator_ = nullptr;
  PageFaultHandler* fault_handler_ = nullptr;
  LoggedWriteSink* log_sink_ = nullptr;
  MemoryAccessObserver* access_observer_ = nullptr;
  obs::Profiler* profiler_ = nullptr;

  std::atomic<Cycles> now_{0};

  // Completion (bus-drain) times of buffered write-through words.
  std::deque<Cycles> write_buffer_;

  // Direct-mapped on-chip data-cache tag array (timing only).
  std::vector<PhysAddr> l1_tags_;

  obs::Counter reads_;
  obs::Counter writes_;
  obs::Counter logged_writes_;
  obs::Counter stall_cycles_;
  obs::Counter page_faults_;
  obs::Counter compute_cycles_;
};

}  // namespace lvm

#endif  // SRC_SIM_CPU_H_
