// LvmSystem: the kernel of the logged virtual memory prototype.
//
// This is the software half of Section 3: it owns the simulated machine,
// instantiates the bus logger (or the Section 4.6 on-chip logger), and
// implements the virtual memory system extensions —
//   - page faults on logged pages put the page in write-through mode and
//     load the logger's page mapping / log table entries (Section 3.2);
//   - logging faults reload displaced mapping entries or advance a log's
//     tail to the next frame of its log segment, falling back to the
//     default absorb page when the user has not extended the log;
//   - overload interrupts suspend the logging processors until the FIFOs
//     drain (Section 3.1.3);
//   - resetDeferredCopy() (Table 1) undoes all modifications to a
//     deferred-copy destination without copying (Section 3.3);
//   - log synchronization, truncation, and the bcopy()-equivalent segment
//     copy the paper compares against.
//
// Applications create segments, regions and address spaces through the
// factory methods (the objects are owned by the system) and then drive the
// machine through Cpu::Read / Write / Compute.
#ifndef SRC_LVM_LVM_SYSTEM_H_
#define SRC_LVM_LVM_SYSTEM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/lock_order.h"
#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/base/types.h"
#include "src/logger/hardware_logger.h"
#include "src/logger/onchip_logger.h"
#include "src/logger/tables.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/obs/waterfall.h"
#include "src/race/race_detector.h"
#include "src/sim/machine.h"
#include "src/vm/address_space.h"
#include "src/vm/deferred_copy.h"
#include "src/vm/frame_allocator.h"
#include "src/vm/region.h"
#include "src/vm/segment.h"

namespace lvm {

// Which logging hardware the machine is built with.
enum class LoggerKind : uint8_t {
  // The prototype's FPGA bus snooper (Section 3.1): physical addresses,
  // write-through logged pages, FIFO overload.
  kBusLogger,
  // The next-generation design (Section 4.6): logging inside the CPU's VM
  // unit, virtual addresses, per-region logs, no overload.
  kOnChip,
};

struct LvmConfig {
  MachineParams params;
  uint32_t memory_size = 64u << 20;
  int num_cpus = 1;
  LoggerKind logger_kind = LoggerKind::kBusLogger;
  // When true the kernel extends a log segment that runs out of frames;
  // when false records overflow into the default absorb page and are lost,
  // as in the prototype when the user has not extended the log in advance.
  bool auto_extend_logs = true;
  // On-chip logger only (Section 4.6 extension): also log the memory data
  // before each write, enabling undo from the log.
  bool onchip_log_old_values = false;
  // Bus logger only (Section 3.1.2 ASIC option): load a reverse
  // translation into the page mapping table so records carry virtual
  // addresses, relying on the single-logged-region-per-segment rule.
  bool bus_logger_virtual_records = false;
  // Workload seed, recorded for reproduction: the simulator itself is
  // deterministic, so a black-box dump plus this seed replays the run.
  uint64_t seed = 0;
  // Flight-recorder sizing (always on; see src/obs/flight_recorder.h).
  obs::FlightConfig flight;
};

class LvmSystem : public PageFaultHandler, public LoggerFaultClient {
 public:
  explicit LvmSystem(const LvmConfig& config = LvmConfig{});
  ~LvmSystem() override;

  LvmSystem(const LvmSystem&) = delete;
  LvmSystem& operator=(const LvmSystem&) = delete;

  Machine& machine() { return machine_; }
  const Machine& machine() const { return machine_; }
  Cpu& cpu(int i = 0) { return machine_.cpu(i); }
  PhysicalMemory& memory() { return machine_.memory(); }
  FrameAllocator& frames() { return frame_allocator_; }
  DeferredCopyMap& deferred_copy() { return deferred_copy_; }
  const LvmConfig& config() const { return config_; }
  // Null unless the corresponding LoggerKind is configured.
  HardwareLogger* bus_logger() { return bus_logger_.get(); }
  const HardwareLogger* bus_logger() const { return bus_logger_.get(); }
  OnChipLogger* onchip_logger() { return onchip_logger_.get(); }
  const OnChipLogger* onchip_logger() const { return onchip_logger_.get(); }

  // --- observability ---
  // Every counter in the system is registered here (machine, logger and
  // kernel counters) at construction; GetStats() is a view over it.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::TraceRecorder& trace() { return trace_; }
  const obs::TraceRecorder& trace() const { return trace_; }
  // Arms cycle tracing with an event budget (bounded; overflowing events
  // are dropped and counted) and names the viewer tracks. Instrumentation
  // is free when this has not been called.
  void EnableTracing(size_t capacity);
  // Writes the recorded trace as Chrome trace-event JSON (load it at
  // ui.perfetto.dev). Returns false if the file could not be written.
  bool WriteTrace(const std::string& path) const { return trace_.WriteChromeTraceFile(path); }
  // The always-on flight recorder: one bounded event ring per CPU plus a
  // kernel ring, fed by the fault/overload/reset/rollback paths.
  obs::FlightRecorder& flight() { return flight_; }
  const obs::FlightRecorder& flight() const { return flight_; }

  // --- cycle-attribution profiler (src/obs/profiler, DESIGN.md §14) ---
  // Builds the profiler (one lane per CPU plus a logger lane), charges every
  // CPU clock funnel and logger service step through it, baselines each lane
  // at the CPU's current clock, and starts the wall sampler if configured.
  // Charges never advance simulated clocks, so enabling this cannot change
  // a single bench number. Call at most once. Returns the profiler (owned
  // by the system).
  obs::Profiler* EnableProfiler(const obs::ProfilerConfig& config = obs::ProfilerConfig{});
  // Null until EnableProfiler.
  obs::Profiler* profiler() { return profiler_.get(); }
  const obs::Profiler* profiler() const { return profiler_.get(); }
  // lvm.profile.v1 export with current lane clocks (cpu.now() per CPU lane).
  std::string ProfileJson() const;
  // Returns false if the file could not be written (or no profiler).
  bool WriteProfile(const std::string& path) const;

  // --- provenance waterfall (src/obs/waterfall, DESIGN.md §17) ---
  // Builds the per-record provenance tracer (one lane per CPU) and wires
  // it into whichever logger variant is active; the parallel engine wires
  // its shards at Start(). Stage stamps never advance simulated clocks,
  // so enabling this cannot change a simulation result. Call at most
  // once. Returns the tracer (owned by the system).
  obs::WaterfallTracer* EnableWaterfall(
      const obs::WaterfallConfig& config = obs::WaterfallConfig{});
  // Null until EnableWaterfall.
  obs::WaterfallTracer* waterfall() { return waterfall_.get(); }
  const obs::WaterfallTracer* waterfall() const { return waterfall_.get(); }
  // lvm.waterfall.v1 export of whatever has completed so far.
  std::string WaterfallJson() const;
  // End-of-run export: finishes still-in-flight waterfalls at their last
  // stamped hop first (so call it after any WAL bridge / replay pass that
  // needs live tokens). Returns false if the file could not be written
  // (or no tracer).
  bool WriteWaterfall(const std::string& path);

  // --- black box (src/lvm/black_box.cc) ---
  // Serializes the lvm.blackbox.v1 bundle — config, flight-recorder
  // timeline, final metrics snapshot, per-log tails with the memory bytes
  // they replay to, pending race reports, and `violations` (kind, message)
  // pairs — as strict JSON at `path`. Returns false if the file could not
  // be written. `cause` is one of "invariant_violation", "check_failure",
  // "signal", "manual".
  bool DumpBlackBox(const std::string& path, const std::string& cause = "manual",
                    const std::string& cause_detail = "",
                    const std::vector<std::pair<std::string, std::string>>& violations = {});
  // The dump as a string (testing / in-process inspection).
  std::string BlackBoxJson(const std::string& cause = "manual",
                           const std::string& cause_detail = "",
                           const std::vector<std::pair<std::string, std::string>>& violations = {});
  // Arms process-wide crash capture for THIS system: a CHECK failure or a
  // fatal signal (SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT) writes the
  // black box to `path` before the process dies. One system at a time;
  // call again with "" to disarm (the destructor disarms automatically).
  void InstallCrashHandler(const std::string& path);

  // --- introspection (the src/check invariant checker reads these) ---
  // Every address space created so far.
  std::vector<AddressSpace*> AddressSpaces() const;
  // The log segment registered under hardware log-table index `index`, or
  // nullptr if the index is unused.
  LogSegment* FindLogByIndex(uint32_t index) const;
  // The default page that absorbs records of an exhausted log segment.
  PhysAddr absorb_frame() const { return absorb_frame_; }

  // --- object factories (results owned by the system) ---
  AddressSpace* CreateAddressSpace();
  StdSegment* CreateSegment(uint32_t size_bytes, uint32_t flags = 0,
                            SegmentManager* manager = nullptr);
  LogSegment* CreateLogSegment(uint32_t initial_pages = 4);
  Region* CreateRegion(Segment* segment);

  // Makes `as` the current address space of CPU `cpu_id`.
  void Activate(AddressSpace* as, int cpu_id = 0);

  // Tears a region's mapping down: drains in-flight log records, removes
  // its page table entries and disarms logging. The segment, its contents
  // and its deferred-copy relation survive; the region may be bound again.
  void UnbindRegion(Region* region);

  // Severs a segment's deferred-copy relation: materializes the effective
  // contents (source data where unmodified) into the segment's own frames
  // and clears the source. The inverse of Segment::SetSourceSegment.
  void DetachSource(Cpu* cpu, Segment* segment);
  AddressSpace* active_address_space(int cpu_id = 0) const {
    return active_as_.at(static_cast<size_t>(cpu_id));
  }

  // --- logging control ---
  // Declares `log` as the log segment for `region` (Table 1,
  // Region::log(ls)) and registers it with the logging hardware. Pages of
  // the region already mapped become logged immediately, so a debugger can
  // attach a log to a running program (Section 2.7).
  void AttachLog(Region* region, LogSegment* log, LogMode mode = LogMode::kNormal);
  // Section 3.1.2 extension (bus logger): per-processor logs for a shared
  // region — writes from CPU i land in `logs[i]`. `logs` must have one
  // entry per machine CPU; the hardware selects within the group by the
  // writing processor's id.
  void AttachPerCpuLogs(Region* region, const std::vector<LogSegment*>& logs);
  // Dynamically enables or disables logging for a region (Section 2.7).
  void SetRegionLogging(Region* region, bool enabled);

  // Synchronizes with the end of the log: drains the logger (advancing
  // `cpu`'s clock over the wait) and updates the log's append offset.
  void SyncLog(Cpu* cpu, LogSegment* log);
  // Empties the log (the truncation step of CULT). Implies SyncLog.
  void TruncateLog(Cpu* cpu, LogSegment* log);
  // Discards everything after the first `keep_records` records (invalidated
  // speculation after a rollback). Implies SyncLog. Normal-mode logs only.
  void TruncateLogTo(Cpu* cpu, LogSegment* log, size_t keep_records);
  // Drops the first `first_record` records, sliding the live suffix to the
  // front of the segment (the truncation half of CULT when speculative
  // records newer than GVT must survive). Implies SyncLog. Normal mode only.
  void CompactLog(Cpu* cpu, LogSegment* log, size_t first_record);
  // Ensures at least `pages` frames remain beyond the append offset, the
  // "extend in advance" discipline of Section 3.2.
  void EnsureLogCapacity(LogSegment* log, uint32_t pages);

  // --- guest-level race detection (src/race) ---
  // Builds a happens-before detector over the simulated CPUs and installs
  // it as every CPU's access observer. Reports surface through
  // GetRaceReports(); "race.*" counters join the metrics registry. Call at
  // most once, before the accesses to be checked. Returns the detector
  // (owned by the system) for direct queries.
  race::RaceDetector* EnableRaceDetection(const race::RaceConfig& config = race::RaceConfig{});
  // Null until EnableRaceDetection.
  race::RaceDetector* race_detector() { return race_detector_.get(); }
  const race::RaceDetector* race_detector() const { return race_detector_.get(); }
  // The deduplicated race reports so far (empty when detection is off).
  std::vector<race::RaceReport> GetRaceReports() const;
  // Workload annotation of guest synchronization: a release publishes CPU
  // `cpu_id`'s history under `sync_id`, an acquire adopts it — the
  // happens-before edge of a guest lock, semaphore or message. `sync_id`
  // must stay below race::kInternalSyncBase. No-op while detection is off.
  // Call on the thread driving `cpu_id`, like Cpu::Read/Write.
  enum class SyncOp : uint8_t { kAcquire, kRelease };
  void GuestSyncEvent(int cpu_id, SyncOp op, uint64_t sync_id);

  // --- parallel engine hooks (src/par) ---
  // Publishes a shard-maintained append offset back into the kernel
  // bookkeeping and re-points the hardware tail to match, so SyncLog /
  // LogReader see records a per-CPU shard appended without going through
  // the bus logger (whose tail would otherwise clobber the offset back).
  void AdoptAppendOffset(LogSegment* log, uint32_t append_offset);
  // Records an overload suspension initiated by the sharded logger path:
  // counts it and advances every CPU clock to `resume` (drain completion
  // plus kernel overhead, precomputed by the engine). Call only while the
  // workers are parked — this writes other CPUs' clocks.
  void NoteOverloadSuspension(Cycles interrupt_time, Cycles resume);

  // --- deferred copy / checkpointing ---
  // Table 1: AddressSpace::resetDeferredCopy(start, end). Undoes all
  // modifications to deferred-copy destinations in [start, end): the next
  // read of each address returns the deferred-copy source datum.
  void ResetDeferredCopy(Cpu* cpu, AddressSpace* as, VirtAddr start, VirtAddr end);

  // The conventional alternative: copies `source`'s contents over `dest`
  // (both materialized fully), charging bcopy() block-copy costs.
  void CopySegment(Cpu* cpu, Segment* dest, Segment* source);

  // Writes back all dirty second-level cache lines of `segment`, making its
  // memory image current (and flipping deferred-copy line sources to the
  // destination).
  void FlushSegment(Cpu* cpu, Segment* segment);

  // Faults in every page of `region` without disturbing its contents.
  void TouchRegion(Cpu* cpu, Region* region);

  // Materializes the frame for `segment`'s page `page_index`, registering
  // the deferred-copy mapping if the segment has a source. All kernel paths
  // that touch segment frames go through here.
  PhysAddr EnsureSegmentPage(Segment* segment, uint32_t page_index);

  // Reads the 16 effective bytes at `paddr`'s line, honoring dirty lines and
  // deferred-copy resolution.
  void ReadEffectiveLine(PhysAddr line_paddr, uint8_t out[kLineSize]);

  // --- statistics ---
  uint64_t overload_suspensions() const { return overload_suspensions_.value(); }
  uint64_t logging_faults_handled() const { return logging_faults_handled_.value(); }

  // A one-shot snapshot of system-wide counters (for monitoring tools and
  // experiment reports). A thin view over the metrics registry. Safe to
  // call from another thread while the parallel engine's workers run: every
  // registered metric and callback reads relaxed atomics.
  struct Stats {
    uint64_t records_logged = 0;
    uint64_t records_dropped = 0;
    uint64_t mapping_faults = 0;
    uint64_t tail_faults = 0;
    uint64_t overload_suspensions = 0;
    uint64_t logging_faults_handled = 0;
    uint64_t page_faults = 0;      // Summed over CPUs.
    uint64_t logged_writes = 0;    // Summed over CPUs.
    uint64_t writes = 0;           // Summed over CPUs.
    uint64_t bus_busy_cycles = 0;
    uint64_t l2_fills = 0;
    uint64_t l2_writebacks = 0;
    Cycles max_cpu_cycles = 0;
    // Silent-loss visibility: events the bounded observability buffers let
    // go of (trace: new events dropped at capacity; flight: oldest events
    // overwritten).
    uint64_t trace_events_dropped = 0;
    uint64_t flight_events_recorded = 0;
    uint64_t flight_events_dropped = 0;

    // Per-phase difference (saturating at 0): every field subtracts, so
    // max_cpu_cycles becomes the cycles elapsed during the phase.
    Stats Delta(const Stats& before) const;
  };
  Stats GetStats() const;

  // --- sim::PageFaultHandler ---
  bool OnPageFault(Cpu* cpu, VirtAddr va, AccessKind access) override;

  // --- logger::LoggerFaultClient ---
  bool OnMappingFault(PhysAddr paddr, Cycles time) override;
  bool OnLogTailFault(uint32_t log_index, Cycles time) override;
  void OnOverload(Cycles interrupt_time, Cycles drain_complete) override;

 private:
  struct LoggedFrameBinding {
    uint32_t log_index = 0;
    PhysAddr direct_frame = 0;
    bool per_cpu = false;
    bool has_va = false;
    VirtAddr va_page = 0;
  };

  LogTable& log_table();
  // Registers `log` with the hardware log table if not yet registered.
  void RegisterLog(LogSegment* log, LogMode mode);
  // Points the hardware tail at the log's current append offset, extending
  // the segment if allowed and necessary.
  void SetTailToAppendOffset(LogSegment* log);
  // Marks one mapped page of a logged region as logged: PTE flags, logged-
  // frame binding, page mapping table / descriptor-table entries.
  void ArmLoggedPage(Region* region, VirtAddr va, AddressSpace::Pte* pte);
  void DisarmLoggedPage(Region* region, VirtAddr va, AddressSpace::Pte* pte);
  // Refreshes the append offset from the hardware tail.
  void RefreshAppendOffset(LogSegment* log);

  // --- log registry (guarded by log_registry_mu_) ---
  // Adds `log` under `index` with a clean absorb state.
  void RegisterLogIndex(uint32_t index, LogSegment* log);
  // Whether `index` is currently spilling into the absorb page.
  bool IsAbsorbing(uint32_t index) const;
  void SetAbsorbing(uint32_t index, bool absorbing);
  // Best-effort ordered copy for the crash-time black-box dump: TryLock, so
  // a crash taken while a kernel path holds the registry lock degrades to an
  // empty log list instead of deadlocking the dumper. The conditional
  // TryLock/Unlock pairing is invisible to the thread-safety analysis.
  std::map<uint32_t, LogSegment*> SnapshotLogsForDump() const LVM_NO_THREAD_SAFETY_ANALYSIS;

  // Declared first so they are destroyed last: the registry holds non-owning
  // pointers to counters living in the machine and loggers below.
  obs::MetricsRegistry metrics_;
  obs::TraceRecorder trace_;

  LvmConfig config_;
  obs::FlightRecorder flight_;
  Machine machine_;
  FrameAllocator frame_allocator_;
  DeferredCopyMap deferred_copy_;
  std::unique_ptr<HardwareLogger> bus_logger_;
  std::unique_ptr<OnChipLogger> onchip_logger_;
  std::unique_ptr<race::RaceDetector> race_detector_;
  std::unique_ptr<obs::Profiler> profiler_;
  std::unique_ptr<obs::WaterfallTracer> waterfall_;

  // The default page that absorbs log records when a log segment has no
  // frames left (Section 3.2).
  PhysAddr absorb_frame_;

  std::vector<std::unique_ptr<AddressSpace>> address_spaces_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<std::unique_ptr<Region>> regions_;
  std::vector<AddressSpace*> active_as_;

  // Guards the log registry: registration and absorb-state flips happen on
  // kernel paths, but the crash-time black-box dump (signal/abort context,
  // possibly on another thread) walks logs_by_index_ concurrently.
  mutable Mutex log_registry_mu_ LVM_ACQUIRED_AFTER(lockorder::kLevelParEngine){
      "LvmSystem::log_registry_mu_", lockorder::kRankLogRegistry};
  // Logs by hardware log-table index.
  std::unordered_map<uint32_t, LogSegment*> logs_by_index_ LVM_GUARDED_BY(log_registry_mu_);
  // Bus-logger mode: the single log attached to each segment.
  std::unordered_map<Segment*, LogSegment*> segment_log_;
  // Per-processor log groups by region (Section 3.1.2 extension).
  std::unordered_map<Region*, std::vector<LogSegment*>> per_cpu_logs_;
  // Physical page number -> log binding, for mapping-fault reloads.
  std::unordered_map<uint32_t, LoggedFrameBinding> logged_frames_;
  // Logs currently spilling into the absorb page.
  std::unordered_map<uint32_t, bool> absorbing_ LVM_GUARDED_BY(log_registry_mu_);

  obs::Counter overload_suspensions_;
  obs::Counter logging_faults_handled_;
};

}  // namespace lvm

#endif  // SRC_LVM_LVM_SYSTEM_H_
