#include "src/lvm/log_reader.h"

namespace lvm {

bool RecordVirtualAddress(const LogRecord& record, const Region& region, VirtAddr* out) {
  int32_t page_index = region.segment()->PageIndexOfFrame(record.addr);
  if (page_index < 0 || !region.bound()) {
    return false;
  }
  *out = region.base() + static_cast<uint32_t>(page_index) * kPageSize +
         PageOffset(record.addr);
  return true;
}

void LogApplier::ApplyPhysical(Cpu* cpu, const LogReader& reader, size_t first, size_t last) {
  const MachineParams& params = system_->machine().params();
  for (size_t i = first; i < last; ++i) {
    LogRecord record = reader.At(i);
    system_->machine().l2().Write(record.addr, record.value,
                                  static_cast<uint8_t>(record.size));
    cpu->AddCycles(params.log_apply_record_cycles);
  }
}

void LogApplier::ApplyRetargeted(Cpu* cpu, const LogReader& reader, size_t first, size_t last,
                                 const Segment& recorded_in, Segment* target) {
  const MachineParams& params = system_->machine().params();
  for (size_t i = first; i < last; ++i) {
    LogRecord record = reader.At(i);
    int32_t page_index = recorded_in.PageIndexOfFrame(record.addr);
    cpu->AddCycles(params.log_apply_record_cycles);
    if (page_index < 0 || static_cast<uint32_t>(page_index) >= target->page_count()) {
      continue;
    }
    PhysAddr frame = target->EnsureFrame(static_cast<uint32_t>(page_index));
    system_->machine().l2().Write(frame + PageOffset(record.addr), record.value,
                                  static_cast<uint8_t>(record.size));
  }
}

bool LogApplier::ResolveVirtual(const LogRecord& record, AddressSpace* as, PhysAddr* frame) {
  const AddressSpace::Pte* pte = as->FindPte(record.addr);
  if (pte != nullptr) {
    *frame = pte->frame;
    return true;
  }
  // Unmapped page of a bound region: materialize it, as a kernel touch
  // would.
  Region* region = as->FindRegion(record.addr);
  if (region == nullptr) {
    return false;  // Record outside every region of this space.
  }
  *frame = system_->EnsureSegmentPage(region->segment(), region->PageIndexOf(record.addr));
  return true;
}

void LogApplier::ApplyVirtual(Cpu* cpu, const LogReader& reader, size_t first, size_t last,
                              AddressSpace* as) {
  const MachineParams& params = system_->machine().params();
  for (size_t i = first; i < last; ++i) {
    LogRecord record = reader.At(i);
    cpu->AddCycles(params.log_apply_record_cycles);
    if (record.flags & kRecordFlagOldValue) {
      continue;  // Pre-images do not participate in roll-forward.
    }
    PhysAddr frame = 0;
    if (!ResolveVirtual(record, as, &frame)) {
      continue;
    }
    system_->machine().l2().Write(frame + PageOffset(record.addr), record.value,
                                  static_cast<uint8_t>(record.size));
  }
}

void LogApplier::UndoVirtual(Cpu* cpu, const LogReader& reader, size_t first, size_t last,
                             AddressSpace* as) {
  const MachineParams& params = system_->machine().params();
  for (size_t i = last; i > first; --i) {
    LogRecord record = reader.At(i - 1);
    cpu->AddCycles(params.log_apply_record_cycles);
    if (!(record.flags & kRecordFlagOldValue)) {
      continue;  // Only pre-images participate in undo.
    }
    PhysAddr frame = 0;
    if (!ResolveVirtual(record, as, &frame)) {
      continue;
    }
    system_->machine().l2().Write(frame + PageOffset(record.addr), record.value,
                                  static_cast<uint8_t>(record.size));
  }
}

}  // namespace lvm
