// Debugger-style queries over LVM logs (Sections 1 and 2.7).
//
// The log answers "who wrote this, and when?" without breakpoints or
// program changes: FindWritesTo scans a log for writes landing in a
// virtual address range of a region; LastWriterBefore locates the most
// recent write to an address before a timestamp (the reverse-execution
// primitive: back up to just before that record with LogApplier).
#ifndef SRC_LVM_WATCH_H_
#define SRC_LVM_WATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/types.h"
#include "src/lvm/log_reader.h"
#include "src/vm/region.h"

namespace lvm {

struct WatchHit {
  size_t record_index = 0;
  VirtAddr va = 0;
  uint32_t value = 0;
  uint8_t size = 0;
  uint32_t timestamp = 0;
};

// All writes in `reader` that touch [va_lo, va_hi) of `region`, in log
// order. Works for physically-addressed (bus logger) records; a record's
// virtual address is reconstructed through the region's segment.
std::vector<WatchHit> FindWritesTo(const LogReader& reader, const Region& region,
                                   VirtAddr va_lo, VirtAddr va_hi);

// The latest write to an address overlapping [va_lo, va_hi) with timestamp
// strictly below `before_timestamp`. Returns false if none.
bool LastWriterBefore(const LogReader& reader, const Region& region, VirtAddr va_lo,
                      VirtAddr va_hi, uint32_t before_timestamp, WatchHit* out);

// Placement audit (Section 2.7: "misplacement of objects in regions can be
// detected by audit code"): checks that every record of the log falls
// inside one of the expected virtual ranges of `region`. Returns the number
// of records landing *outside* every range — writes to data that should
// not live in the logged region (or objects that were misplaced into it).
struct AuditRange {
  VirtAddr lo = 0;
  VirtAddr hi = 0;  // Exclusive.
};
size_t AuditLogPlacement(const LogReader& reader, const Region& region,
                         const std::vector<AuditRange>& expected,
                         std::vector<WatchHit>* strays = nullptr);

}  // namespace lvm

#endif  // SRC_LVM_WATCH_H_
