// Incremental log consumption: a cursor that remembers its position in a
// log across synchronizations, so consumers (output processes, consistency
// protocols, monitors) process each record exactly once without rescanning
// (Section 2.6's asynchronous output process, which "only synchronizes on
// the end of the log").
#ifndef SRC_LVM_LOG_STREAM_H_
#define SRC_LVM_LOG_STREAM_H_

#include <cstddef>

#include "src/base/check.h"
#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"

namespace lvm {

class LogStream {
 public:
  LogStream(LvmSystem* system, LogSegment* log) : system_(system), log_(log) {}

  // Synchronizes with the end of the log and returns how many unconsumed
  // records are available.
  size_t Refresh(Cpu* cpu) {
    system_->SyncLog(cpu, log_);
    size_t total = log_->append_offset / kLogRecordSize;
    LVM_CHECK_MSG(consumed_ <= total, "log was truncated under a live stream");
    return total - consumed_;
  }

  bool HasNext() const { return consumed_ < log_->append_offset / kLogRecordSize; }

  // Returns the next unconsumed record and advances. Call Refresh first.
  LogRecord Next() {
    LVM_CHECK(HasNext());
    LogReader reader(system_->memory(), *log_);
    return reader.At(consumed_++);
  }

  // Records consumed so far (an index into the log).
  size_t position() const { return consumed_; }

  // The producer truncated/compacted the log after the consumer caught up:
  // restart from the front.
  void Rebase() { consumed_ = 0; }

  // Consumed everything and the producer may now truncate: returns the
  // number of records that can be dropped.
  size_t Consumable() const { return consumed_; }

 private:
  LvmSystem* system_;
  LogSegment* log_;
  size_t consumed_ = 0;
};

}  // namespace lvm

#endif  // SRC_LVM_LOG_STREAM_H_
