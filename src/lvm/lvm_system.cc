#include "src/lvm/lvm_system.h"

#include <string>

#include "src/logger/log_record.h"

namespace lvm {

namespace {
// Frame layout of the low physical pages: frame 0 is never used (so a zero
// physical address is always a bug), frame 1 absorbs overflowing log
// records, general allocation starts at frame 2.
constexpr PhysAddr kAbsorbFrame = kPageSize;
constexpr PhysAddr kFirstAllocatableFrame = 2 * kPageSize;
}  // namespace

LvmSystem::LvmSystem(const LvmConfig& config)
    : config_(config),
      flight_(config.num_cpus, config.flight),
      machine_(config.params, config.memory_size, config.num_cpus),
      frame_allocator_(&machine_.memory(), kFirstAllocatableFrame),
      absorb_frame_(kAbsorbFrame),
      active_as_(static_cast<size_t>(config.num_cpus), nullptr) {
  machine_.l2().set_policy(&deferred_copy_);
  switch (config_.logger_kind) {
    case LoggerKind::kBusLogger:
      bus_logger_ =
          std::make_unique<HardwareLogger>(&machine_.params(), &machine_.memory(),
                                           &machine_.bus());
      bus_logger_->set_fault_client(this);
      machine_.bus().AddSnooper(bus_logger_.get());
      break;
    case LoggerKind::kOnChip:
      onchip_logger_ = std::make_unique<OnChipLogger>(&machine_.params(), &machine_.memory(),
                                                      &machine_.bus(), config_.num_cpus);
      onchip_logger_->set_fault_client(this);
      if (config_.onchip_log_old_values) {
        onchip_logger_->EnableOldValueCapture(&machine_.l2());
      }
      for (int i = 0; i < machine_.num_cpus(); ++i) {
        machine_.cpu(i).set_log_sink(onchip_logger_.get());
      }
      break;
  }
  for (int i = 0; i < machine_.num_cpus(); ++i) {
    machine_.cpu(i).set_fault_handler(this);
  }

  // Wire every counter in the system into the registry; GetStats() and any
  // monitoring tool read them from here by name.
  machine_.RegisterMetrics(&metrics_);
  if (bus_logger_ != nullptr) {
    bus_logger_->RegisterMetrics(&metrics_);
  } else if (onchip_logger_ != nullptr) {
    onchip_logger_->RegisterMetrics(&metrics_);
  }
  metrics_.RegisterCounter("kernel.overload_suspensions", &overload_suspensions_);
  metrics_.RegisterCounter("kernel.logging_faults_handled", &logging_faults_handled_);
  // Aggregates over the CPUs, evaluated at snapshot time.
  metrics_.RegisterCallback("cpu.page_faults", [this] {
    uint64_t total = 0;
    for (int i = 0; i < machine_.num_cpus(); ++i) {
      total += machine_.cpu(i).page_faults();
    }
    return total;
  });
  metrics_.RegisterCallback("cpu.logged_writes", [this] {
    uint64_t total = 0;
    for (int i = 0; i < machine_.num_cpus(); ++i) {
      total += machine_.cpu(i).logged_writes();
    }
    return total;
  });
  metrics_.RegisterCallback("cpu.writes", [this] {
    uint64_t total = 0;
    for (int i = 0; i < machine_.num_cpus(); ++i) {
      total += machine_.cpu(i).writes();
    }
    return total;
  });
  metrics_.RegisterCallback("cpu.compute_cycles", [this] {
    uint64_t total = 0;
    for (int i = 0; i < machine_.num_cpus(); ++i) {
      total += machine_.cpu(i).compute_cycles();
    }
    return total;
  });
  metrics_.RegisterCallback("cpu.max_cycles", [this] {
    Cycles max = 0;
    for (int i = 0; i < machine_.num_cpus(); ++i) {
      if (machine_.cpu(i).now() > max) {
        max = machine_.cpu(i).now();
      }
    }
    return max;
  });
  if (bus_logger_ != nullptr) {
    metrics_.RegisterCallback("logger.fifo_occupancy",
                              [this] { return static_cast<uint64_t>(bus_logger_->fifo_occupancy()); });
  }
  flight_.RegisterMetrics(&metrics_);
  trace_.RegisterMetrics(&metrics_);
  // Metrics-sync payload for the flight timeline: cumulative records
  // logged, logged writes, overload suspensions (all relaxed atomics, so
  // the sampler is safe on any recording thread).
  flight_.SetSyncSampler([this](uint64_t* a0, uint64_t* a1, uint64_t* a2) {
    *a0 = bus_logger_ != nullptr ? bus_logger_->records_logged()
                                 : onchip_logger_->records_logged();
    uint64_t logged_writes = 0;
    for (int i = 0; i < machine_.num_cpus(); ++i) {
      logged_writes += machine_.cpu(i).logged_writes();
    }
    *a1 = logged_writes;
    *a2 = overload_suspensions_.value();
  });
}

void LvmSystem::EnableTracing(size_t capacity) {
  trace_.Enable(capacity);
  for (int i = 0; i < machine_.num_cpus(); ++i) {
    trace_.SetThreadName(static_cast<uint32_t>(i), "cpu" + std::to_string(i));
  }
  if (bus_logger_ != nullptr) {
    trace_.SetThreadName(kLoggerTraceTid, "bus logger");
    bus_logger_->set_trace(&trace_);
  }
  if (onchip_logger_ != nullptr) {
    onchip_logger_->set_trace(&trace_);
  }
}

LvmSystem::~LvmSystem() {
  // Disarm process-wide crash capture if this system armed it.
  InstallCrashHandler("");
}

race::RaceDetector* LvmSystem::EnableRaceDetection(const race::RaceConfig& config) {
  LVM_CHECK_MSG(race_detector_ == nullptr, "race detection already enabled");
  race_detector_ = std::make_unique<race::RaceDetector>(machine_.num_cpus(), config);
  for (int i = 0; i < machine_.num_cpus(); ++i) {
    machine_.cpu(i).set_access_observer(race_detector_.get());
  }
  race_detector_->RegisterMetrics(&metrics_);
  race_detector_->SetFlightRecorder(&flight_);
  return race_detector_.get();
}

obs::Profiler* LvmSystem::EnableProfiler(const obs::ProfilerConfig& config) {
  LVM_CHECK_MSG(profiler_ == nullptr, "profiler already enabled");
  profiler_ = std::make_unique<obs::Profiler>(machine_.num_cpus(), config);
  for (int i = 0; i < machine_.num_cpus(); ++i) {
    // Baseline at the current clock: conservation is baseline + attributed
    // == cpu.now(), so enabling mid-run starts a fresh attribution window.
    profiler_->SetLaneBaseline(i, machine_.cpu(i).now());
    machine_.cpu(i).set_profiler(profiler_.get());
  }
  if (bus_logger_ != nullptr) {
    bus_logger_->set_profiler(profiler_.get(), profiler_->logger_lane());
  }
  profiler_->RegisterMetrics(&metrics_);
  if (config.wall_sampling) {
    profiler_->StartWallSampling();
  }
  return profiler_.get();
}

obs::WaterfallTracer* LvmSystem::EnableWaterfall(const obs::WaterfallConfig& config) {
  LVM_CHECK_MSG(waterfall_ == nullptr, "waterfall already enabled");
  waterfall_ = std::make_unique<obs::WaterfallTracer>(machine_.num_cpus(), config);
  if (bus_logger_ != nullptr) {
    bus_logger_->set_waterfall(waterfall_.get());
  }
  if (onchip_logger_ != nullptr) {
    onchip_logger_->set_waterfall(waterfall_.get());
  }
  waterfall_->RegisterMetrics(&metrics_);
  waterfall_->SetFlightRecorder(&flight_);
  return waterfall_.get();
}

std::string LvmSystem::WaterfallJson() const {
  LVM_CHECK_MSG(waterfall_ != nullptr, "EnableWaterfall first");
  return waterfall_->Json();
}

bool LvmSystem::WriteWaterfall(const std::string& path) {
  if (waterfall_ == nullptr) {
    return false;
  }
  waterfall_->FinishInFlight();
  return waterfall_->WriteJsonFile(path);
}

std::string LvmSystem::ProfileJson() const {
  LVM_CHECK_MSG(profiler_ != nullptr, "EnableProfiler first");
  std::vector<Cycles> clocks(static_cast<size_t>(profiler_->num_lanes()), 0);
  for (int i = 0; i < machine_.num_cpus(); ++i) {
    clocks[static_cast<size_t>(i)] = machine_.cpu(i).now();
  }
  return profiler_->ExportJson(clocks);
}

bool LvmSystem::WriteProfile(const std::string& path) const {
  if (profiler_ == nullptr) {
    return false;
  }
  std::vector<Cycles> clocks(static_cast<size_t>(profiler_->num_lanes()), 0);
  for (int i = 0; i < machine_.num_cpus(); ++i) {
    clocks[static_cast<size_t>(i)] = machine_.cpu(i).now();
  }
  return profiler_->WriteJsonFile(path, clocks);
}

std::vector<race::RaceReport> LvmSystem::GetRaceReports() const {
  if (race_detector_ == nullptr) {
    return {};
  }
  return race_detector_->Reports();
}

void LvmSystem::GuestSyncEvent(int cpu_id, SyncOp op, uint64_t sync_id) {
  LVM_CHECK_MSG(sync_id < race::kInternalSyncBase, "sync id collides with the runtime's");
  if (race_detector_ == nullptr) {
    return;
  }
  if (op == SyncOp::kAcquire) {
    race_detector_->Acquire(cpu_id, sync_id);
  } else {
    race_detector_->Release(cpu_id, sync_id);
  }
}

LogTable& LvmSystem::log_table() {
  return bus_logger_ != nullptr ? bus_logger_->log_table() : onchip_logger_->log_table();
}

std::vector<AddressSpace*> LvmSystem::AddressSpaces() const {
  std::vector<AddressSpace*> spaces;
  spaces.reserve(address_spaces_.size());
  for (const auto& as : address_spaces_) {
    spaces.push_back(as.get());
  }
  return spaces;
}

LogSegment* LvmSystem::FindLogByIndex(uint32_t index) const {
  MutexLock lock(log_registry_mu_);
  auto it = logs_by_index_.find(index);
  return it == logs_by_index_.end() ? nullptr : it->second;
}

void LvmSystem::RegisterLogIndex(uint32_t index, LogSegment* log) {
  MutexLock lock(log_registry_mu_);
  logs_by_index_[index] = log;
  absorbing_[index] = false;
}

bool LvmSystem::IsAbsorbing(uint32_t index) const {
  MutexLock lock(log_registry_mu_);
  auto it = absorbing_.find(index);
  return it != absorbing_.end() && it->second;
}

void LvmSystem::SetAbsorbing(uint32_t index, bool absorbing) {
  MutexLock lock(log_registry_mu_);
  absorbing_[index] = absorbing;
}

std::map<uint32_t, LogSegment*> LvmSystem::SnapshotLogsForDump() const {
  std::map<uint32_t, LogSegment*> ordered;
  if (!log_registry_mu_.TryLock()) {
    // The crash interrupted a kernel path mid-registration: dump whatever
    // else is available rather than deadlocking on our own lock.
    return ordered;
  }
  ordered.insert(logs_by_index_.begin(), logs_by_index_.end());
  log_registry_mu_.Unlock();
  return ordered;
}

AddressSpace* LvmSystem::CreateAddressSpace() {
  address_spaces_.push_back(std::make_unique<AddressSpace>());
  return address_spaces_.back().get();
}

StdSegment* LvmSystem::CreateSegment(uint32_t size_bytes, uint32_t flags,
                                     SegmentManager* manager) {
  auto segment = std::make_unique<StdSegment>(&frame_allocator_, size_bytes, flags, manager);
  StdSegment* raw = segment.get();
  segments_.push_back(std::move(segment));
  return raw;
}

LogSegment* LvmSystem::CreateLogSegment(uint32_t initial_pages) {
  auto segment = std::make_unique<LogSegment>(&frame_allocator_);
  segment->Extend(initial_pages);
  LogSegment* raw = segment.get();
  segments_.push_back(std::move(segment));
  return raw;
}

Region* LvmSystem::CreateRegion(Segment* segment) {
  regions_.push_back(std::make_unique<Region>(segment));
  return regions_.back().get();
}

void LvmSystem::Activate(AddressSpace* as, int cpu_id) {
  active_as_.at(static_cast<size_t>(cpu_id)) = as;
  machine_.cpu(cpu_id).set_translator(as);
  if (onchip_logger_ != nullptr) {
    // Context switch: reload the on-chip log descriptor table for the
    // incoming address space's logged pages.
    onchip_logger_->ClearCpu(cpu_id);
    if (as != nullptr) {
      for (Region* region : as->regions()) {
        if (!region->logging_enabled() || region->log_segment() == nullptr) {
          continue;
        }
        uint32_t log_index = region->log_segment()->log_index;
        for (uint32_t page = 0; page < region->size(); page += kPageSize) {
          VirtAddr va = region->base() + page;
          if (as->FindPte(va) != nullptr) {
            onchip_logger_->LoadDescriptor(cpu_id, va, log_index);
          }
        }
      }
    }
  }
}

void LvmSystem::UnbindRegion(Region* region) {
  LVM_CHECK(region != nullptr);
  if (!region->bound()) {
    return;
  }
  // Retire in-flight logged writes before dismantling the logger mappings,
  // or their FIFO entries would fault against nothing and be dropped.
  if (bus_logger_ != nullptr) {
    bus_logger_->SyncDrain(0);
  }
  AddressSpace* as = region->address_space();
  for (uint32_t offset = 0; offset < region->size(); offset += kPageSize) {
    VirtAddr va = region->base() + offset;
    AddressSpace::Pte* pte = as->FindPte(va);
    if (pte == nullptr) {
      continue;
    }
    if (pte->logged) {
      DisarmLoggedPage(region, va, pte);
    }
    // Deferred-copy state is a segment-to-segment relation (Table 1's
    // Segment::sourceSegment) and survives unbinding; DetachSource severs
    // it explicitly.
    machine_.InvalidateL1PageAllCpus(pte->frame);
    as->RemovePte(va);
  }
  as->UnbindRegion(region);
}

void LvmSystem::DetachSource(Cpu* cpu, Segment* segment) {
  LVM_CHECK(segment != nullptr);
  if (segment->source_segment() == nullptr) {
    return;
  }
  Cycles span_start = cpu->now();
  LVM_PROF_SCOPE(profiler_.get(), cpu->id(), obs::CostCenter::kCheckpoint);
  const MachineParams& params = machine_.params();
  for (uint32_t page = 0; page < segment->page_count(); ++page) {
    if (!segment->HasFrame(page)) {
      continue;
    }
    PhysAddr frame = segment->FrameAt(page);
    if (!deferred_copy_.IsMapped(frame)) {
      continue;
    }
    // Materialize the effective contents into the frame so the segment
    // stands alone, then drop the deferred state.
    for (uint32_t line = 0; line < kPageSize; line += kLineSize) {
      uint8_t bytes[kLineSize];
      ReadEffectiveLine(frame + line, bytes);
      machine_.memory().WriteBlock(frame + line, bytes, kLineSize);
    }
    machine_.l2().InvalidatePage(frame);
    deferred_copy_.UnmapPage(frame);
    machine_.InvalidateL1PageAllCpus(frame);
    cpu->AddCycles(static_cast<Cycles>(kLinesPerPage) * params.bcopy_block_cycles);
  }
  segment->SetSourceSegment(nullptr);
  trace_.Complete("vm", "detach_source", static_cast<uint32_t>(cpu->id()), span_start,
                  cpu->now());
}

void LvmSystem::RegisterLog(LogSegment* log, LogMode mode) {
  if (log->log_index != LogSegment::kUnregistered) {
    LVM_CHECK_MSG(log_table().at(log->log_index).mode == mode,
                  "log segment already registered with a different mode");
    return;
  }
  uint32_t index = 0;
  bool allocated = log_table().Allocate(mode, &index);
  LVM_CHECK_MSG(allocated, "hardware log table is full");
  log->log_index = index;
  RegisterLogIndex(index, log);
}

void LvmSystem::AttachLog(Region* region, LogSegment* log, LogMode mode) {
  LVM_CHECK(region != nullptr && log != nullptr);
  if (config_.logger_kind == LoggerKind::kBusLogger) {
    // Prototype restriction (Section 3.1.2): the bus logger sees physical
    // addresses, so a segment can feed only one log. The on-chip logger
    // lifts this and supports per-region logs.
    auto [it, inserted] = segment_log_.try_emplace(region->segment(), log);
    LVM_CHECK_MSG(inserted || it->second == log,
                  "bus-logger prototype supports a single log per segment (Section 3.1.2)");
  }
  RegisterLog(log, mode);
  region->SetLogSegment(log, mode);
  // Arm pages of the region that are already mapped (a debugger attaching a
  // log to a running program, Section 2.7).
  if (region->bound()) {
    AddressSpace* as = region->address_space();
    for (uint32_t offset = 0; offset < region->size(); offset += kPageSize) {
      VirtAddr va = region->base() + offset;
      AddressSpace::Pte* pte = as->FindPte(va);
      if (pte != nullptr) {
        ArmLoggedPage(region, va, pte);
      }
    }
  }
}

void LvmSystem::AttachPerCpuLogs(Region* region, const std::vector<LogSegment*>& logs) {
  LVM_CHECK(region != nullptr);
  LVM_CHECK_MSG(config_.logger_kind == LoggerKind::kBusLogger,
                "per-CPU log groups are a bus-logger extension; the on-chip logger "
                "already supports per-region logs");
  LVM_CHECK_MSG(logs.size() == static_cast<size_t>(machine_.num_cpus()),
                "per-CPU log group needs one log per processor");
  auto [it, inserted] = segment_log_.try_emplace(region->segment(), logs[0]);
  LVM_CHECK_MSG(inserted || it->second == logs[0],
                "bus-logger prototype supports a single log per segment (Section 3.1.2)");
  // The hardware selects log_index + cpu_id, so the group's log-table
  // entries must be consecutive.
  uint32_t first = 0;
  bool allocated =
      log_table().AllocateRange(LogMode::kNormal, static_cast<uint32_t>(logs.size()), &first);
  LVM_CHECK_MSG(allocated, "hardware log table has no free run for the group");
  for (size_t i = 0; i < logs.size(); ++i) {
    LVM_CHECK(logs[i] != nullptr &&
              logs[i]->log_index == LogSegment::kUnregistered);
    logs[i]->log_index = first + static_cast<uint32_t>(i);
    RegisterLogIndex(logs[i]->log_index, logs[i]);
    SetTailToAppendOffset(logs[i]);
  }
  region->SetLogSegment(logs[0], LogMode::kNormal);
  region->per_cpu_logging_ = true;
  per_cpu_logs_[region] = logs;
  if (region->bound()) {
    AddressSpace* as = region->address_space();
    for (uint32_t offset = 0; offset < region->size(); offset += kPageSize) {
      VirtAddr va = region->base() + offset;
      AddressSpace::Pte* pte = as->FindPte(va);
      if (pte != nullptr) {
        ArmLoggedPage(region, va, pte);
      }
    }
  }
}

void LvmSystem::SetRegionLogging(Region* region, bool enabled) {
  LVM_CHECK_MSG(region->log_segment() != nullptr, "region has no log segment attached");
  if (region->logging_enabled_ == enabled) {
    return;
  }
  region->logging_enabled_ = enabled;
  if (!region->bound()) {
    return;
  }
  AddressSpace* as = region->address_space();
  for (uint32_t offset = 0; offset < region->size(); offset += kPageSize) {
    VirtAddr va = region->base() + offset;
    AddressSpace::Pte* pte = as->FindPte(va);
    if (pte == nullptr) {
      continue;
    }
    if (enabled) {
      ArmLoggedPage(region, va, pte);
    } else {
      DisarmLoggedPage(region, va, pte);
    }
  }
}

void LvmSystem::ArmLoggedPage(Region* region, VirtAddr va, AddressSpace::Pte* pte) {
  LogSegment* log = region->log_segment();
  uint32_t log_index = log->log_index;
  pte->logged = true;
  if (config_.logger_kind == LoggerKind::kBusLogger) {
    // Write-through mode makes every write visible on the bus (Section 3.2).
    pte->write_through = true;
    PhysAddr direct_frame = 0;
    if (region->log_mode() == LogMode::kDirectMapped) {
      uint32_t page_index = region->PageIndexOf(va);
      while (log->page_count() <= page_index) {
        log->Extend(1);
      }
      direct_frame = log->EnsureFrame(page_index);
    } else if (!log_table().at(log_index).tail_valid && !log->hw_tail_initialized) {
      // Load the log table entry eagerly so the first record does not fault.
      SetTailToAppendOffset(log);
    }
    bool per_cpu = region->per_cpu_logging();
    bool has_va = config_.bus_logger_virtual_records;
    VirtAddr va_page = PageBase(va);
    logged_frames_[PageNumber(pte->frame)] =
        LoggedFrameBinding{log_index, direct_frame, per_cpu, has_va, va_page};
    bus_logger_->page_mapping_table().Load(pte->frame, static_cast<uint16_t>(log_index),
                                           direct_frame, per_cpu, has_va, va_page);
  } else {
    // On-chip logging leaves the page copyback-cached; the VM unit sees
    // every write internally (Section 4.6).
    pte->write_through = false;
    if (!log_table().at(log_index).tail_valid && !log->hw_tail_initialized) {
      SetTailToAppendOffset(log);
    }
    for (int cpu_id = 0; cpu_id < machine_.num_cpus(); ++cpu_id) {
      if (active_as_[static_cast<size_t>(cpu_id)] == region->address_space()) {
        onchip_logger_->LoadDescriptor(cpu_id, va, log_index);
      }
    }
  }
}

void LvmSystem::DisarmLoggedPage(Region* region, VirtAddr va, AddressSpace::Pte* pte) {
  pte->logged = false;
  pte->write_through = false;
  if (config_.logger_kind == LoggerKind::kBusLogger) {
    logged_frames_.erase(PageNumber(pte->frame));
    bus_logger_->page_mapping_table().Invalidate(pte->frame);
  } else {
    for (int cpu_id = 0; cpu_id < machine_.num_cpus(); ++cpu_id) {
      if (active_as_[static_cast<size_t>(cpu_id)] == region->address_space()) {
        onchip_logger_->InvalidateDescriptor(cpu_id, va);
      }
    }
  }
}

bool LvmSystem::OnPageFault(Cpu* cpu, VirtAddr va, AccessKind access) {
  (void)access;
  Cycles fault_start = cpu->now();
  LVM_PROF_SCOPE(profiler_.get(), cpu->id(), obs::CostCenter::kVmFault);
  cpu->AddCycles(machine_.params().page_fault_cycles);
  AddressSpace* as = active_as_.at(static_cast<size_t>(cpu->id()));
  if (as == nullptr) {
    return false;
  }
  Region* region = as->FindRegion(va);
  if (region == nullptr) {
    return false;
  }
  uint32_t page_index = region->PageIndexOf(va);
  PhysAddr frame = EnsureSegmentPage(region->segment(), page_index);

  AddressSpace::Pte pte;
  pte.frame = frame;
  pte.region = region;
  as->InstallPte(va, pte);
  if (region->logging_enabled() && region->log_segment() != nullptr) {
    ArmLoggedPage(region, va, as->FindPte(va));
  }
  trace_.Complete("vm", "page_fault", static_cast<uint32_t>(cpu->id()), fault_start, cpu->now(),
                  "va", va);
  return true;
}

bool LvmSystem::OnMappingFault(PhysAddr paddr, Cycles time) {
  logging_faults_handled_.Increment();
  Cycles start = machine_.cpu(0).now();
  // Logging faults are serviced on CPU 0 (the prototype fields logger
  // interrupts there), so the scope lives on lane 0.
  LVM_PROF_SCOPE(profiler_.get(), 0, obs::CostCenter::kLogFault);
  machine_.cpu(0).AddCycles(machine_.params().logging_fault_cpu_cycles);
  trace_.Complete("vm", "mapping_fault", 0, start, machine_.cpu(0).now(), "paddr", paddr,
                  "logger_time", time);
  flight_.Record(flight_.kernel_ring(), obs::FlightEventKind::kLoggingFault, start,
                 "mapping_fault", paddr, time);
  auto it = logged_frames_.find(PageNumber(paddr));
  if (it == logged_frames_.end()) {
    return false;
  }
  bus_logger_->page_mapping_table().Load(paddr, static_cast<uint16_t>(it->second.log_index),
                                         it->second.direct_frame, it->second.per_cpu,
                                         it->second.has_va, it->second.va_page);
  return true;
}

bool LvmSystem::OnLogTailFault(uint32_t log_index, Cycles time) {
  logging_faults_handled_.Increment();
  Cycles start = machine_.cpu(0).now();
  LVM_PROF_SCOPE(profiler_.get(), 0, obs::CostCenter::kLogFault);
  machine_.cpu(0).AddCycles(machine_.params().logging_fault_cpu_cycles);
  trace_.Complete("vm", "tail_fault", 0, start, machine_.cpu(0).now(), "log_index", log_index,
                  "logger_time", time);
  flight_.Record(flight_.kernel_ring(), obs::FlightEventKind::kLoggingFault, start,
                 "tail_fault", log_index, time);
  LogSegment* log = FindLogByIndex(log_index);
  if (log == nullptr) {
    return false;
  }
  if (IsAbsorbing(log_index)) {
    // The absorb page filled up; those records are gone (Section 3.2).
    log->records_lost += kPageSize / kLogRecordSize;
  } else if (log->hw_tail_initialized) {
    // The tail crossed out of the active frame: that frame is now full.
    log->append_offset = (log->active_frame + 1) * kPageSize;
  }
  SetTailToAppendOffset(log);
  return log_table().at(log_index).tail_valid;
}

void LvmSystem::OnOverload(Cycles interrupt_time, Cycles drain_complete) {
  overload_suspensions_.Increment();
  // Suspend every process that might be generating log data until the FIFOs
  // drain, then pay the kernel's interrupt/suspend/resume overhead.
  Cycles resume = drain_complete + machine_.params().overload_kernel_cycles;
  for (int i = 0; i < machine_.num_cpus(); ++i) {
    machine_.cpu(i).AdvanceTo(resume, obs::CostCenter::kOverloadPark);
  }
  trace_.Complete("kernel", "overload_suspend", 0, interrupt_time, resume, "drain_complete",
                  drain_complete);
  flight_.Record(flight_.kernel_ring(), obs::FlightEventKind::kOverloadSuspend, interrupt_time,
                 "fifo_overload", drain_complete, resume);
  flight_.Record(flight_.kernel_ring(), obs::FlightEventKind::kOverloadResume, resume,
                 "fifo_drained", resume - interrupt_time);
}

void LvmSystem::AdoptAppendOffset(LogSegment* log, uint32_t append_offset) {
  LVM_CHECK(log != nullptr);
  log->append_offset = append_offset;
  if (log->log_index != LogSegment::kUnregistered) {
    SetTailToAppendOffset(log);
  }
}

void LvmSystem::NoteOverloadSuspension(Cycles interrupt_time, Cycles resume) {
  overload_suspensions_.Increment();
  for (int i = 0; i < machine_.num_cpus(); ++i) {
    machine_.cpu(i).AdvanceTo(resume, obs::CostCenter::kOverloadPark);
  }
  trace_.Complete("kernel", "overload_suspend", 0, interrupt_time, resume);
  flight_.Record(flight_.kernel_ring(), obs::FlightEventKind::kOverloadSuspend, interrupt_time,
                 "sharded_overload", 0, resume);
  flight_.Record(flight_.kernel_ring(), obs::FlightEventKind::kOverloadResume, resume,
                 "sharded_drained", resume - interrupt_time);
}

void LvmSystem::SetTailToAppendOffset(LogSegment* log) {
  uint32_t log_index = log->log_index;
  LVM_CHECK(log_index != LogSegment::kUnregistered);
  uint32_t frame_index = log->append_offset / kPageSize;
  if (frame_index >= log->page_count()) {
    if (config_.auto_extend_logs) {
      log->Extend(frame_index + 1 - log->page_count());
    } else {
      // No frame available: absorb records into the default page.
      log_table().SetTail(log_index, absorb_frame_);
      SetAbsorbing(log_index, true);
      flight_.Record(flight_.kernel_ring(), obs::FlightEventKind::kLogTailAdvance,
                     machine_.cpu(0).now(), "absorb", log_index, log->append_offset);
      return;
    }
  }
  log_table().SetTail(log_index, log->FrameAt(frame_index) + PageOffset(log->append_offset));
  log->active_frame = frame_index;
  log->hw_tail_initialized = true;
  SetAbsorbing(log_index, false);
  flight_.Record(flight_.kernel_ring(), obs::FlightEventKind::kLogTailAdvance,
                 machine_.cpu(0).now(), "tail_advance", log_index, log->append_offset);
}

void LvmSystem::RefreshAppendOffset(LogSegment* log) {
  if (log->log_index == LogSegment::kUnregistered || !log->hw_tail_initialized) {
    return;
  }
  const LogTable::Entry& entry = log_table().at(log->log_index);
  if (IsAbsorbing(log->log_index)) {
    return;  // The real segment's append offset is frozen while absorbing.
  }
  if (entry.tail_valid) {
    PhysAddr frame = log->FrameAt(log->active_frame);
    log->append_offset = log->active_frame * kPageSize + (entry.tail - frame);
  } else {
    log->append_offset = (log->active_frame + 1) * kPageSize;
  }
}

void LvmSystem::SyncLog(Cpu* cpu, LogSegment* log) {
  // Same-center nesting collapses, so the TruncateLog/CompactLog callers'
  // scopes absorb this one instead of stacking log/maintenance twice.
  LVM_PROF_SCOPE(profiler_.get(), cpu->id(), obs::CostCenter::kLogMaintenance);
  cpu->DrainWriteBuffer();
  if (bus_logger_ != nullptr) {
    Cycles done = bus_logger_->SyncDrain(cpu->now());
    cpu->AdvanceTo(done);
  }
  RefreshAppendOffset(log);
}

void LvmSystem::TruncateLog(Cpu* cpu, LogSegment* log) {
  LVM_PROF_SCOPE(profiler_.get(), cpu->id(), obs::CostCenter::kLogMaintenance);
  SyncLog(cpu, log);
  cpu->AddCycles(machine_.params().log_truncate_base_cycles);
  log->append_offset = 0;
  log->active_frame = 0;
  if (log->log_index != LogSegment::kUnregistered) {
    SetTailToAppendOffset(log);
  }
}

void LvmSystem::TruncateLogTo(Cpu* cpu, LogSegment* log, size_t keep_records) {
  LVM_PROF_SCOPE(profiler_.get(), cpu->id(), obs::CostCenter::kLogMaintenance);
  SyncLog(cpu, log);
  uint32_t keep_bytes = static_cast<uint32_t>(keep_records) * kLogRecordSize;
  LVM_CHECK(keep_bytes <= log->append_offset);
  cpu->AddCycles(machine_.params().log_truncate_base_cycles);
  log->append_offset = keep_bytes;
  if (log->log_index != LogSegment::kUnregistered) {
    SetTailToAppendOffset(log);
  }
}

void LvmSystem::CompactLog(Cpu* cpu, LogSegment* log, size_t first_record) {
  LVM_PROF_SCOPE(profiler_.get(), cpu->id(), obs::CostCenter::kLogMaintenance);
  SyncLog(cpu, log);
  const MachineParams& params = machine_.params();
  size_t total = log->append_offset / kLogRecordSize;
  LVM_CHECK(first_record <= total);
  cpu->AddCycles(params.log_truncate_base_cycles);
  // Slide the surviving suffix to the front: a kernel block copy, one
  // 16-byte record per block-copy charge.
  size_t survivors = total - first_record;
  for (size_t i = 0; i < survivors; ++i) {
    uint32_t src = static_cast<uint32_t>((first_record + i) * kLogRecordSize);
    uint32_t dst = static_cast<uint32_t>(i * kLogRecordSize);
    machine_.memory().CopyBlock(log->FrameAt(PageNumber(dst)) + PageOffset(dst),
                                log->FrameAt(PageNumber(src)) + PageOffset(src),
                                kLogRecordSize);
  }
  cpu->AddCycles(static_cast<Cycles>(survivors) * params.bcopy_block_cycles);
  log->append_offset = static_cast<uint32_t>(survivors) * kLogRecordSize;
  if (log->log_index != LogSegment::kUnregistered) {
    SetTailToAppendOffset(log);
  }
}

void LvmSystem::EnsureLogCapacity(LogSegment* log, uint32_t pages) {
  uint32_t needed = log->append_offset / kPageSize + pages;
  if (log->page_count() < needed) {
    log->Extend(needed - log->page_count());
  }
  if (log->log_index != LogSegment::kUnregistered && IsAbsorbing(log->log_index)) {
    SetTailToAppendOffset(log);
  }
}

void LvmSystem::ResetDeferredCopy(Cpu* cpu, AddressSpace* as, VirtAddr start, VirtAddr end) {
  const MachineParams& params = machine_.params();
  Cycles span_start = cpu->now();
  LVM_PROF_SCOPE(profiler_.get(), cpu->id(), obs::CostCenter::kDeferredCopy);
  uint64_t pages_reset = 0;
  for (VirtAddr va = PageBase(start); va < end; va += kPageSize) {
    AddressSpace::Pte* pte = as->FindPte(va);
    if (pte == nullptr || !deferred_copy_.IsMapped(pte->frame)) {
      continue;
    }
    // Reset the page's source pointers; check the per-page dirty bit rather
    // than inspecting every line (the Section 3.3 optimization).
    cpu->AddCycles(params.reset_page_cycles);
    ++pages_reset;
    uint32_t written_back = deferred_copy_.WrittenBackLines(pte->frame);
    bool dirty_in_cache = machine_.l2().PageDirty(pte->frame);
    if (!dirty_in_cache && written_back == 0) {
      continue;
    }
    cpu->AddCycles(params.reset_dirty_page_cycles);
    L2Cache::PageOpResult result = machine_.l2().InvalidatePage(pte->frame);
    deferred_copy_.ResetPage(pte->frame);
    cpu->AddCycles(static_cast<Cycles>(result.dirty_lines + written_back) *
                   params.reset_dirty_line_cycles);
    machine_.InvalidateL1PageAllCpus(pte->frame);
  }
  trace_.Complete("vm", "reset_deferred_copy", static_cast<uint32_t>(cpu->id()), span_start,
                  cpu->now(), "pages", pages_reset);
  flight_.Record(cpu->id(), obs::FlightEventKind::kDeferredCopyReset, span_start,
                 "reset_deferred_copy", pages_reset, start, end);
  // The reset is a kernel-serialized rendezvous (it rewrites every CPU's
  // view of the range and invalidates their L1s): a happens-before barrier
  // for the race detector.
  if (race_detector_ != nullptr) {
    race_detector_->GlobalBarrier();
  }
}

void LvmSystem::ReadEffectiveLine(PhysAddr line_paddr, uint8_t out[kLineSize]) {
  PhysAddr line = LineBase(line_paddr);
  if (machine_.l2().LineDirty(line)) {
    machine_.memory().ReadBlock(line, out, kLineSize);
    return;
  }
  PhysAddr resolved = deferred_copy_.ResolveClean(line);
  machine_.memory().ReadBlock(resolved, out, kLineSize);
}

PhysAddr LvmSystem::EnsureSegmentPage(Segment* segment, uint32_t page_index) {
  PhysAddr frame = segment->EnsureFrame(page_index);
  // Deferred-copy destination: tie this frame to the corresponding source
  // frame so unmodified reads come from the source (Section 3.3).
  Segment* source = segment->source_segment();
  if (source != nullptr && !deferred_copy_.IsMapped(frame)) {
    uint32_t source_page = page_index + PageNumber(segment->source_offset());
    if (source_page < source->page_count()) {
      deferred_copy_.MapPage(frame, EnsureSegmentPage(source, source_page));
    }
  }
  return frame;
}

void LvmSystem::CopySegment(Cpu* cpu, Segment* dest, Segment* source) {
  uint32_t pages = dest->page_count() < source->page_count() ? dest->page_count()
                                                             : source->page_count();
  Cycles span_start = cpu->now();
  LVM_PROF_SCOPE(profiler_.get(), cpu->id(), obs::CostCenter::kCheckpoint);
  const MachineParams& params = machine_.params();
  uint8_t line[kLineSize];
  for (uint32_t i = 0; i < pages; ++i) {
    PhysAddr dframe = EnsureSegmentPage(dest, i);
    PhysAddr sframe = EnsureSegmentPage(source, i);
    for (uint32_t l = 0; l < kLinesPerPage; ++l) {
      ReadEffectiveLine(sframe + l * kLineSize, line);
      machine_.memory().WriteBlock(dframe + l * kLineSize, line, kLineSize);
    }
    machine_.l2().InvalidatePage(dframe);
    if (deferred_copy_.IsMapped(dframe)) {
      // The copy overwrote the whole destination; its lines all diverge from
      // the deferred-copy source now.
      deferred_copy_.MarkAllWrittenBack(dframe);
    }
    machine_.InvalidateL1PageAllCpus(dframe);
    cpu->AddCycles(static_cast<Cycles>(kLinesPerPage) * params.bcopy_block_cycles);
  }
  trace_.Complete("vm", "copy_segment", static_cast<uint32_t>(cpu->id()), span_start, cpu->now(),
                  "pages", pages);
}

void LvmSystem::FlushSegment(Cpu* cpu, Segment* segment) {
  const MachineParams& params = machine_.params();
  Cycles span_start = cpu->now();
  LVM_PROF_SCOPE(profiler_.get(), cpu->id(), obs::CostCenter::kCheckpoint);
  uint64_t dirty_lines = 0;
  for (uint32_t i = 0; i < segment->page_count(); ++i) {
    if (!segment->HasFrame(i)) {
      continue;
    }
    L2Cache::PageOpResult result = machine_.l2().FlushPage(segment->FrameAt(i));
    dirty_lines += result.dirty_lines;
    cpu->AddCycles(static_cast<Cycles>(result.dirty_lines) * params.cache_block_write_total);
  }
  trace_.Complete("vm", "flush_segment", static_cast<uint32_t>(cpu->id()), span_start,
                  cpu->now(), "dirty_lines", dirty_lines);
}

LvmSystem::Stats LvmSystem::GetStats() const {
  // Thin view over the metrics registry: every field reads the snapshot by
  // name. Counters absent under the configured logger (mapping faults and
  // overload exist only for the bus logger) read as 0.
  obs::Snapshot snapshot = metrics_.TakeSnapshot();
  Stats stats;
  stats.records_logged = snapshot.counter("logger.records_logged");
  stats.records_dropped = snapshot.counter("logger.records_dropped");
  stats.mapping_faults = snapshot.counter("logger.mapping_faults");
  stats.tail_faults = snapshot.counter("logger.tail_faults");
  stats.overload_suspensions = snapshot.counter("kernel.overload_suspensions");
  stats.logging_faults_handled = snapshot.counter("kernel.logging_faults_handled");
  stats.page_faults = snapshot.counter("cpu.page_faults");
  stats.logged_writes = snapshot.counter("cpu.logged_writes");
  stats.writes = snapshot.counter("cpu.writes");
  stats.bus_busy_cycles = snapshot.counter("bus.busy_cycles");
  stats.l2_fills = snapshot.counter("l2.fills");
  stats.l2_writebacks = snapshot.counter("l2.writebacks");
  stats.max_cpu_cycles = snapshot.counter("cpu.max_cycles");
  stats.trace_events_dropped = snapshot.counter("trace.events_dropped");
  stats.flight_events_recorded = snapshot.counter("flight.events_recorded");
  stats.flight_events_dropped = snapshot.counter("flight.events_dropped");
  return stats;
}

LvmSystem::Stats LvmSystem::Stats::Delta(const Stats& before) const {
  auto sub = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
  Stats d;
  d.records_logged = sub(records_logged, before.records_logged);
  d.records_dropped = sub(records_dropped, before.records_dropped);
  d.mapping_faults = sub(mapping_faults, before.mapping_faults);
  d.tail_faults = sub(tail_faults, before.tail_faults);
  d.overload_suspensions = sub(overload_suspensions, before.overload_suspensions);
  d.logging_faults_handled = sub(logging_faults_handled, before.logging_faults_handled);
  d.page_faults = sub(page_faults, before.page_faults);
  d.logged_writes = sub(logged_writes, before.logged_writes);
  d.writes = sub(writes, before.writes);
  d.bus_busy_cycles = sub(bus_busy_cycles, before.bus_busy_cycles);
  d.l2_fills = sub(l2_fills, before.l2_fills);
  d.l2_writebacks = sub(l2_writebacks, before.l2_writebacks);
  d.max_cpu_cycles = sub(max_cpu_cycles, before.max_cpu_cycles);
  d.trace_events_dropped = sub(trace_events_dropped, before.trace_events_dropped);
  d.flight_events_recorded = sub(flight_events_recorded, before.flight_events_recorded);
  d.flight_events_dropped = sub(flight_events_dropped, before.flight_events_dropped);
  return d;
}

void LvmSystem::TouchRegion(Cpu* cpu, Region* region) {
  LVM_CHECK(region->bound());
  AddressSpace* as = region->address_space();
  for (uint32_t offset = 0; offset < region->size(); offset += kPageSize) {
    VirtAddr va = region->base() + offset;
    if (as->FindPte(va) == nullptr) {
      bool ok = OnPageFault(cpu, va, AccessKind::kRead);
      LVM_CHECK(ok);
    }
  }
}

}  // namespace lvm
