#include "src/lvm/watch.h"

namespace lvm {

namespace {
// Whether [a, a+len) overlaps [lo, hi).
bool Overlaps(VirtAddr a, uint32_t len, VirtAddr lo, VirtAddr hi) {
  return a < hi && a + len > lo;
}
}  // namespace

std::vector<WatchHit> FindWritesTo(const LogReader& reader, const Region& region,
                                   VirtAddr va_lo, VirtAddr va_hi) {
  std::vector<WatchHit> hits;
  for (size_t i = 0; i < reader.size(); ++i) {
    LogRecord record = reader.At(i);
    VirtAddr va = 0;
    if (!RecordVirtualAddress(record, region, &va)) {
      continue;
    }
    if (!Overlaps(va, record.size, va_lo, va_hi)) {
      continue;
    }
    hits.push_back(WatchHit{i, va, record.value, static_cast<uint8_t>(record.size),
                            record.timestamp});
  }
  return hits;
}

size_t AuditLogPlacement(const LogReader& reader, const Region& region,
                         const std::vector<AuditRange>& expected,
                         std::vector<WatchHit>* strays) {
  size_t stray_count = 0;
  for (size_t i = 0; i < reader.size(); ++i) {
    LogRecord record = reader.At(i);
    VirtAddr va = 0;
    if (!RecordVirtualAddress(record, region, &va)) {
      continue;  // Not a record of this region's segment.
    }
    bool covered = false;
    for (const AuditRange& range : expected) {
      if (va >= range.lo && va + record.size <= range.hi) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      ++stray_count;
      if (strays != nullptr) {
        strays->push_back(WatchHit{i, va, record.value, static_cast<uint8_t>(record.size),
                                   record.timestamp});
      }
    }
  }
  return stray_count;
}

bool LastWriterBefore(const LogReader& reader, const Region& region, VirtAddr va_lo,
                      VirtAddr va_hi, uint32_t before_timestamp, WatchHit* out) {
  bool found = false;
  for (const WatchHit& hit : FindWritesTo(reader, region, va_lo, va_hi)) {
    if (hit.timestamp < before_timestamp) {
      *out = hit;
      found = true;
    }
  }
  return found;
}

}  // namespace lvm
