// Address-trace analysis over LVM logs (Section 1).
//
// A log of a region is a complete, timestamped write trace of that region:
// "a detailed address trace of a program, which can be useful for detecting
// and isolating performance problems or as input to memory system
// simulators". TraceStats summarizes a log (footprint, densities, hot
// spots, write bursts); TraceCacheSim replays the trace through a small
// direct-mapped write-back cache model to estimate locality.
#ifndef SRC_LVM_TRACE_STATS_H_
#define SRC_LVM_TRACE_STATS_H_

#include <cstdint>
#include <vector>

#include "src/base/types.h"
#include "src/lvm/log_reader.h"

namespace lvm {

struct TraceStats {
  uint64_t records = 0;
  uint64_t bytes_written = 0;
  // Footprint.
  uint32_t unique_words = 0;
  uint32_t unique_lines = 0;
  uint32_t unique_pages = 0;
  // Rewrite behaviour: how many writes hit a word already written (the
  // redundancy LVM makes visible, Section 2.7).
  uint64_t rewrites = 0;
  // Timing (6.25 MHz timestamp ticks).
  uint32_t first_timestamp = 0;
  uint32_t last_timestamp = 0;
  // Peak writes within any single timestamp-tick window of `burst_window`
  // ticks (burstiness; bursts are what size the logger FIFOs).
  uint32_t burst_window = 64;
  uint32_t peak_burst = 0;
  // Hottest page and its write count.
  uint32_t hottest_page = 0;
  uint64_t hottest_page_writes = 0;

  // Mean write rate in writes per 1000 ticks (0 if the trace is empty or
  // instantaneous).
  double WritesPerKilotick() const {
    if (records == 0 || last_timestamp <= first_timestamp) {
      return 0.0;
    }
    return 1000.0 * static_cast<double>(records) /
           static_cast<double>(last_timestamp - first_timestamp);
  }
};

// Computes statistics over records [0, reader.size()).
TraceStats AnalyzeTrace(const LogReader& reader, uint32_t burst_window = 64);

// Histogram of line-granularity reuse distances: for each write, how many
// *distinct* lines were touched since the previous write to the same line
// (the classic stack-distance metric memory-system studies feed on; cold
// first touches land in the `cold` bucket). Bucket i counts distances in
// [2^i, 2^(i+1)).
struct ReuseHistogram {
  static constexpr uint32_t kBuckets = 20;
  uint64_t cold = 0;
  uint64_t buckets[kBuckets] = {};

  // Fraction of non-cold accesses with reuse distance < `lines` (an
  // estimate of the hit rate of a fully-associative LRU cache that size).
  double HitFraction(uint32_t lines) const;
};

ReuseHistogram ComputeReuseHistogram(const LogReader& reader);

// A small direct-mapped cache fed by the write trace: estimates how well a
// cache of `lines` 16-byte lines would absorb the write stream.
struct TraceCacheResult {
  uint64_t accesses = 0;
  uint64_t misses = 0;
  double MissRate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

TraceCacheResult SimulateTraceCache(const LogReader& reader, uint32_t lines);

}  // namespace lvm

#endif  // SRC_LVM_TRACE_STATS_H_
