// Reading and replaying logs.
//
// LogReader presents a (normal-mode) log segment as a random-access sequence
// of LogRecords, reading them straight out of the simulated memory frames
// the logger DMA'd them into. Synchronize with the end of the log first
// (LvmSystem::SyncLog) so the append offset is current.
//
// LogApplier rolls logged updates forward: onto the segment they were
// recorded against (rollback roll-forward) or onto another segment's
// corresponding pages (the checkpoint-update half of CULT).
#ifndef SRC_LVM_LOG_READER_H_
#define SRC_LVM_LOG_READER_H_

#include <cstddef>
#include <cstdint>
#include <iterator>

#include "src/base/check.h"
#include "src/base/types.h"
#include "src/logger/log_record.h"
#include "src/lvm/lvm_system.h"
#include "src/vm/region.h"
#include "src/vm/segment.h"

namespace lvm {

class LogReader {
 public:
  LogReader(const PhysicalMemory& memory, const LogSegment& log)
      : memory_(&memory), log_(&log) {}

  // Number of complete records in the log.
  size_t size() const { return log_->append_offset / kLogRecordSize; }
  bool empty() const { return size() == 0; }

  // The i-th record (0 is the earliest write).
  LogRecord At(size_t i) const {
    LVM_DCHECK(i < size());
    uint32_t offset = static_cast<uint32_t>(i) * kLogRecordSize;
    PhysAddr frame = log_->FrameAt(PageNumber(offset));
    return LoadLogRecord(*memory_, frame + PageOffset(offset));
  }
  LogRecord operator[](size_t i) const { return At(i); }

  class Iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = LogRecord;
    using difference_type = std::ptrdiff_t;

    Iterator(const LogReader* reader, size_t index) : reader_(reader), index_(index) {}
    LogRecord operator*() const { return reader_->At(index_); }
    Iterator& operator++() {
      ++index_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator copy = *this;
      ++index_;
      return copy;
    }
    bool operator==(const Iterator& other) const { return index_ == other.index_; }

   private:
    const LogReader* reader_;
    size_t index_;
  };

  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, size()); }

 private:
  const PhysicalMemory* memory_;
  const LogSegment* log_;
};

// Reads an indexed-mode log (a stream of values without addresses) as
// 32-bit words. Indexed logs with uniform word-sized writes are the
// streamed-output mode of Section 2.6.
class IndexedLogReader {
 public:
  IndexedLogReader(const PhysicalMemory& memory, const LogSegment& log)
      : memory_(&memory), log_(&log) {}

  size_t size() const { return log_->append_offset / sizeof(uint32_t); }

  uint32_t At(size_t i) const {
    LVM_DCHECK(i < size());
    uint32_t offset = static_cast<uint32_t>(i * sizeof(uint32_t));
    PhysAddr frame = log_->FrameAt(PageNumber(offset));
    return memory_->Read(frame + PageOffset(offset), 4);
  }

 private:
  const PhysicalMemory* memory_;
  const LogSegment* log_;
};

// Reconstructs the virtual address of a physically-addressed record for a
// region mapping the logged segment (the reverse translation an ASIC logger
// would do in hardware, Section 3.1.2). Returns false if the record's frame
// does not back the region's segment.
bool RecordVirtualAddress(const LogRecord& record, const Region& region, VirtAddr* out);

class LogApplier {
 public:
  explicit LogApplier(LvmSystem* system) : system_(system) {}

  // Applies records [first, last) at their recorded physical addresses
  // (roll-forward after resetDeferredCopy). Kernel writes: they do not
  // generate new log records.
  void ApplyPhysical(Cpu* cpu, const LogReader& reader, size_t first, size_t last);

  // Applies records [first, last), retargeting each from its page in
  // `recorded_in` to the corresponding page of `target` (checkpoint
  // update). Records against frames outside `recorded_in` are skipped.
  void ApplyRetargeted(Cpu* cpu, const LogReader& reader, size_t first, size_t last,
                       const Segment& recorded_in, Segment* target);

  // Applies virtually-addressed records (on-chip logger) through `as`'s
  // page table.
  void ApplyVirtual(Cpu* cpu, const LogReader& reader, size_t first, size_t last,
                    AddressSpace* as);

  // Undoes the writes in records [first, last), newest first, by storing
  // the old-value records back (requires a log produced with old-value
  // capture, the Section 4.6 extension). Virtually addressed.
  void UndoVirtual(Cpu* cpu, const LogReader& reader, size_t first, size_t last,
                   AddressSpace* as);

 private:
  // Resolves a virtually-addressed record to a frame in `as`, materializing
  // the page if its region is bound but untouched. Returns false when the
  // record falls outside every region.
  bool ResolveVirtual(const LogRecord& record, AddressSpace* as, PhysAddr* frame);

  LvmSystem* system_;
};

}  // namespace lvm

#endif  // SRC_LVM_LOG_READER_H_
