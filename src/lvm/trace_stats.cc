#include "src/lvm/trace_stats.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace lvm {

TraceStats AnalyzeTrace(const LogReader& reader, uint32_t burst_window) {
  TraceStats stats;
  stats.burst_window = burst_window;
  if (reader.empty()) {
    return stats;
  }

  std::unordered_set<uint32_t> words;
  std::unordered_set<uint32_t> lines;
  std::unordered_map<uint32_t, uint64_t> page_writes;

  // Burst detection: a sliding window over the (sorted) timestamps; the
  // log is already time ordered.
  std::vector<uint32_t> timestamps;
  timestamps.reserve(reader.size());

  stats.first_timestamp = reader.At(0).timestamp;
  for (size_t i = 0; i < reader.size(); ++i) {
    LogRecord record = reader.At(i);
    ++stats.records;
    stats.bytes_written += record.size;
    stats.last_timestamp = record.timestamp;
    timestamps.push_back(record.timestamp);

    uint32_t word = record.addr & ~3u;
    if (!words.insert(word).second) {
      ++stats.rewrites;
    }
    lines.insert(LineBase(record.addr));
    ++page_writes[PageNumber(record.addr)];
  }
  stats.unique_words = static_cast<uint32_t>(words.size());
  stats.unique_lines = static_cast<uint32_t>(lines.size());
  stats.unique_pages = static_cast<uint32_t>(page_writes.size());

  for (const auto& [page, count] : page_writes) {
    if (count > stats.hottest_page_writes) {
      stats.hottest_page_writes = count;
      stats.hottest_page = page;
    }
  }

  size_t window_start = 0;
  for (size_t i = 0; i < timestamps.size(); ++i) {
    while (timestamps[i] - timestamps[window_start] > burst_window) {
      ++window_start;
    }
    auto in_window = static_cast<uint32_t>(i - window_start + 1);
    if (in_window > stats.peak_burst) {
      stats.peak_burst = in_window;
    }
  }
  return stats;
}

double ReuseHistogram::HitFraction(uint32_t lines) const {
  uint64_t total = 0;
  uint64_t hits = 0;
  for (uint32_t bucket = 0; bucket < kBuckets; ++bucket) {
    total += buckets[bucket];
    if ((1ull << (bucket + 1)) <= lines) {
      hits += buckets[bucket];
    }
  }
  total += cold;
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

ReuseHistogram ComputeReuseHistogram(const LogReader& reader) {
  ReuseHistogram histogram;
  // Stack-distance via an ordered recency list: position of a line in the
  // list (from the most recent end) is its reuse distance. O(n * d) with
  // the modest distances of our traces.
  std::vector<PhysAddr> recency;  // Most recent at the back.
  for (size_t i = 0; i < reader.size(); ++i) {
    PhysAddr line = LineBase(reader.At(i).addr);
    bool found = false;
    size_t position = 0;
    for (size_t j = recency.size(); j > 0; --j) {
      if (recency[j - 1] == line) {
        position = recency.size() - j;
        recency.erase(recency.begin() + static_cast<std::ptrdiff_t>(j - 1));
        found = true;
        break;
      }
    }
    if (!found) {
      ++histogram.cold;
    } else {
      uint32_t bucket = 0;
      while (bucket + 1 < ReuseHistogram::kBuckets && (1ull << (bucket + 1)) <= position) {
        ++bucket;
      }
      histogram.buckets[bucket] += 1;
    }
    recency.push_back(line);
  }
  return histogram;
}

TraceCacheResult SimulateTraceCache(const LogReader& reader, uint32_t lines) {
  TraceCacheResult result;
  std::vector<PhysAddr> tags(lines, ~PhysAddr{0});
  for (size_t i = 0; i < reader.size(); ++i) {
    PhysAddr line = LineBase(reader.At(i).addr);
    size_t index = (line >> kLineShift) % lines;
    ++result.accesses;
    if (tags[index] != line) {
      ++result.misses;
      tags[index] = line;
    }
  }
  return result;
}

}  // namespace lvm
