// The black-box dump: LvmSystem serialized for post-mortem inspection.
//
// Applies the paper's own premise to the simulator: a bounded log of what
// the machine did (the flight recorder), the final counter state, and the
// tail of every hardware log segment together reconstruct the crash
// without a debugger attached. The bundle is strict JSON (`lvm.blackbox.v1`)
// readable by obs/blackbox_reader.h and the lvm-inspect CLI.
//
// Each log section carries the last kTailRecords decoded records plus the
// effective memory bytes they address, so LogReplayVerifier::CrossCheckTail
// can re-run the replay-versus-memory diff from the dump alone (bus-logger
// physical records only; virtually-addressed records need a live address
// space to resolve).
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"
#include "src/obs/blackbox_reader.h"
#include "src/obs/json.h"

namespace lvm {

namespace {

// Bounds that keep a dump small enough to attach to a CI failure.
constexpr size_t kTailRecords = 64;
constexpr size_t kMaxMemoryLines = 256;

void AppendKeyString(std::string* out, const char* key, std::string_view value) {
  obs::AppendJsonString(out, key);
  out->push_back(':');
  obs::AppendJsonString(out, value);
}

void AppendKeyNumber(std::string* out, const char* key, uint64_t value) {
  obs::AppendJsonString(out, key);
  out->push_back(':');
  out->append(obs::JsonNumber(value));
}

void AppendParams(std::string* out, const MachineParams& params) {
  out->append("\"params\":{");
  AppendKeyNumber(out, "page_fault_cycles", params.page_fault_cycles);
  out->push_back(',');
  AppendKeyNumber(out, "logging_fault_cpu_cycles", params.logging_fault_cpu_cycles);
  out->push_back(',');
  AppendKeyNumber(out, "overload_kernel_cycles", params.overload_kernel_cycles);
  out->push_back(',');
  AppendKeyNumber(out, "logger_service_active_cycles", params.logger_service_active_cycles);
  out->push_back(',');
  AppendKeyNumber(out, "logger_service_drain_cycles", params.logger_service_drain_cycles);
  out->push_back(',');
  AppendKeyNumber(out, "logger_fifo_capacity", params.logger_fifo_capacity);
  out->push_back(',');
  AppendKeyNumber(out, "logger_fifo_threshold", params.logger_fifo_threshold);
  out->push_back(',');
  AppendKeyNumber(out, "memory_read_cycles", params.memory_read_cycles);
  out->push_back(',');
  AppendKeyNumber(out, "cache_block_write_total", params.cache_block_write_total);
  out->push_back(',');
  AppendKeyNumber(out, "word_write_through_total", params.word_write_through_total);
  out->push_back(',');
  AppendKeyNumber(out, "log_record_dma_total", params.log_record_dma_total);
  out->push_back(',');
  AppendKeyNumber(out, "timestamp_divider", params.timestamp_divider);
  out->push_back('}');
}

void AppendMetrics(std::string* out, const obs::Snapshot& snapshot) {
  out->append("\"metrics\":{\"counters\":{");
  bool first = true;
  for (const auto& [name, value] : snapshot.counters()) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    obs::AppendJsonString(out, name);
    out->push_back(':');
    out->append(obs::JsonNumber(value));
  }
  out->append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : snapshot.gauges()) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    obs::AppendJsonString(out, name);
    out->push_back(':');
    out->append(obs::JsonNumber(value));
  }
  out->append("},\"histograms\":{");
  first = true;
  for (const auto& [name, hist] : snapshot.histograms()) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    obs::AppendJsonString(out, name);
    out->append(":{");
    AppendKeyNumber(out, "count", hist.count);
    out->push_back(',');
    AppendKeyNumber(out, "sum", hist.sum);
    out->push_back(',');
    AppendKeyNumber(out, "min", hist.min);
    out->push_back(',');
    AppendKeyNumber(out, "max", hist.max);
    out->push_back(',');
    AppendKeyNumber(out, "p50", hist.Percentile(50));
    out->push_back(',');
    AppendKeyNumber(out, "p90", hist.Percentile(90));
    out->push_back(',');
    AppendKeyNumber(out, "p99", hist.Percentile(99));
    out->push_back('}');
  }
  out->append("}}");
}

void AppendFlight(std::string* out, const obs::FlightRecorder& flight) {
  out->append("\"flight\":{");
  AppendKeyNumber(out, "events_recorded", flight.events_recorded());
  out->push_back(',');
  AppendKeyNumber(out, "events_dropped", flight.events_dropped());
  out->push_back(',');
  AppendKeyNumber(out, "rings", static_cast<uint64_t>(flight.num_rings()));
  out->push_back(',');
  AppendKeyNumber(out, "ring_capacity", flight.ring_capacity());
  out->append(",\"events\":[");
  bool first = true;
  for (const obs::FlightEvent& e : flight.MergedEvents()) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    out->push_back('{');
    AppendKeyNumber(out, "seq", e.seq);
    out->push_back(',');
    AppendKeyNumber(out, "ring", e.ring);
    out->push_back(',');
    AppendKeyString(out, "kind", obs::ToString(e.kind));
    out->push_back(',');
    AppendKeyString(out, "component", obs::ComponentOf(e.kind));
    out->push_back(',');
    AppendKeyNumber(out, "ts", e.ts);
    if (e.detail != nullptr) {
      out->push_back(',');
      AppendKeyString(out, "detail", e.detail);
    }
    out->push_back(',');
    AppendKeyNumber(out, "a0", e.a0);
    out->push_back(',');
    AppendKeyNumber(out, "a1", e.a1);
    out->push_back(',');
    AppendKeyNumber(out, "a2", e.a2);
    out->push_back('}');
  }
  out->append("]}");
}

void AppendRaces(std::string* out, const std::vector<race::RaceReport>& reports) {
  out->append("\"races\":[");
  bool first = true;
  for (const race::RaceReport& r : reports) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    out->push_back('{');
    AppendKeyString(out, "kind", race::ToString(r.kind));
    out->push_back(',');
    AppendKeyNumber(out, "paddr", r.paddr);
    out->push_back(',');
    AppendKeyNumber(out, "va", r.va);
    out->push_back(',');
    AppendKeyNumber(out, "size", r.size);
    out->append(",\"logged\":");
    out->append(r.logged ? "true" : "false");
    out->push_back(',');
    AppendKeyNumber(out, "cpu_a", r.cpu_a);
    out->push_back(',');
    AppendKeyNumber(out, "cycle_a", r.cycle_a);
    out->push_back(',');
    AppendKeyNumber(out, "cpu_b", r.cpu_b);
    out->push_back(',');
    AppendKeyNumber(out, "cycle_b", r.cycle_b);
    out->push_back(',');
    AppendKeyNumber(out, "count", r.count);
    out->push_back('}');
  }
  out->push_back(']');
}

// The fatal-signal path: one system armed process-wide, dump-once guard.
std::atomic<LvmSystem*> g_crash_system{nullptr};
std::atomic<bool> g_crash_dumped{false};
std::string g_crash_path;  // Written while disarmed, read by the hooks.

const char* SignalName(int signo) {
  switch (signo) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGBUS:
      return "SIGBUS";
    case SIGFPE:
      return "SIGFPE";
    case SIGILL:
      return "SIGILL";
    case SIGABRT:
      return "SIGABRT";
  }
  return "signal";
}

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};

void CheckFailureDump() {
  LvmSystem* system = g_crash_system.load();
  if (system == nullptr || g_crash_dumped.exchange(true)) {
    return;
  }
  system->DumpBlackBox(g_crash_path, "check_failure", "LVM_CHECK failed; see stderr");
}

void FatalSignalDump(int signo) {
  // Best effort: the dumper is not async-signal-safe, but the process is
  // about to die regardless and a torn dump beats no dump. Disarm first so
  // a crash inside the dumper cannot recurse.
  LvmSystem* system = g_crash_system.exchange(nullptr);
  if (system != nullptr && !g_crash_dumped.exchange(true)) {
    system->DumpBlackBox(g_crash_path, "signal", SignalName(signo));
  }
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

}  // namespace

std::string LvmSystem::BlackBoxJson(
    const std::string& cause, const std::string& cause_detail,
    const std::vector<std::pair<std::string, std::string>>& violations) {
  std::string out;
  out.reserve(64u << 10);
  out.append("{\"format\":");
  obs::AppendJsonString(&out, obs::kBlackBoxFormat);
  out.push_back(',');
  AppendKeyString(&out, "cause", cause);
  out.push_back(',');
  AppendKeyString(&out, "cause_detail", cause_detail);

  // --- config ---
  out.append(",\"config\":{");
  AppendKeyNumber(&out, "num_cpus", static_cast<uint64_t>(config_.num_cpus));
  out.push_back(',');
  AppendKeyString(&out, "logger_kind",
                  config_.logger_kind == LoggerKind::kBusLogger ? "bus" : "onchip");
  out.push_back(',');
  AppendKeyNumber(&out, "memory_size", config_.memory_size);
  out.push_back(',');
  AppendKeyNumber(&out, "seed", config_.seed);
  out.append(",\"auto_extend_logs\":");
  out.append(config_.auto_extend_logs ? "true" : "false");
  out.push_back(',');
  AppendParams(&out, config_.params);
  out.push_back('}');

  // --- flight recorder ---
  out.push_back(',');
  AppendFlight(&out, flight_);

  // --- metrics ---
  out.push_back(',');
  AppendMetrics(&out, metrics_.TakeSnapshot());

  // --- logs ---
  // Physical record addresses resolve without an address space only in the
  // plain bus-logger configuration; only then can memory bytes back a
  // post-mortem replay cross-check.
  bool physical_records =
      config_.logger_kind == LoggerKind::kBusLogger && !config_.bus_logger_virtual_records;
  out.append(",\"logs\":[");
  std::map<uint32_t, LogSegment*> ordered = SnapshotLogsForDump();
  bool first_log = true;
  for (const auto& [index, log] : ordered) {
    if (!first_log) {
      out.push_back(',');
    }
    first_log = false;
    // append_offset is kernel bookkeeping, reconciled only at SyncLog and
    // tail faults — in a mid-run crash it lags the hardware tail. The dump
    // reads the live log-table tail so the records the hardware already
    // wrote are not silently missing from the post-mortem.
    uint32_t effective_append = log->append_offset;
    LogTable& table = log_table();
    if (log->hw_tail_initialized && index < table.size()) {
      const LogTable::Entry& entry = table.at(index);
      if (entry.tail_valid && log->active_frame < log->page_count() &&
          PageBase(entry.tail) == log->FrameAt(log->active_frame)) {
        uint32_t hw_append = log->active_frame * kPageSize + PageOffset(entry.tail);
        if (hw_append > effective_append) {
          effective_append = hw_append;
        }
      }
    }
    size_t records = effective_append / kLogRecordSize;
    size_t tail_count = std::min(records, kTailRecords);
    size_t tail_first = records - tail_count;
    out.push_back('{');
    AppendKeyNumber(&out, "log_index", index);
    out.push_back(',');
    AppendKeyNumber(&out, "append_offset", effective_append);
    out.push_back(',');
    AppendKeyNumber(&out, "pages", log->page_count());
    out.push_back(',');
    AppendKeyNumber(&out, "records", records);
    out.push_back(',');
    AppendKeyNumber(&out, "records_lost", log->records_lost);
    out.push_back(',');
    AppendKeyNumber(&out, "tail_first", tail_first);
    out.append(",\"tail_records\":[");
    std::set<PhysAddr> lines;
    for (size_t i = tail_first; i < records; ++i) {
      // Not LogReader::At — it bounds-checks against the stale
      // append_offset this dump deliberately reads past.
      uint32_t offset = static_cast<uint32_t>(i) * kLogRecordSize;
      LogRecord record = LoadLogRecord(machine_.memory(),
                                       log->FrameAt(PageNumber(offset)) + PageOffset(offset));
      if (i != tail_first) {
        out.push_back(',');
      }
      out.push_back('{');
      AppendKeyNumber(&out, "addr", record.addr);
      out.push_back(',');
      AppendKeyNumber(&out, "value", record.value);
      out.push_back(',');
      AppendKeyNumber(&out, "size", record.size);
      out.push_back(',');
      AppendKeyNumber(&out, "flags", record.flags);
      out.push_back(',');
      AppendKeyNumber(&out, "timestamp", record.timestamp);
      out.push_back('}');
      if (physical_records && lines.size() < kMaxMemoryLines && record.size > 0) {
        for (PhysAddr line = LineBase(record.addr);
             line < record.addr + record.size && lines.size() < kMaxMemoryLines;
             line += kLineSize) {
          lines.insert(line);
        }
      }
    }
    out.append("],\"memory\":[");
    bool first_line = true;
    for (PhysAddr line : lines) {
      if (!first_line) {
        out.push_back(',');
      }
      first_line = false;
      uint8_t bytes[kLineSize];
      ReadEffectiveLine(line, bytes);
      out.push_back('{');
      AppendKeyNumber(&out, "addr", line);
      out.push_back(',');
      AppendKeyString(&out, "hex", obs::HexEncode(bytes, kLineSize));
      out.push_back('}');
    }
    out.append("]}");
  }
  out.push_back(']');

  // --- races ---
  out.push_back(',');
  AppendRaces(&out, GetRaceReports());

  // --- violations ---
  out.append(",\"violations\":[");
  bool first_violation = true;
  for (const auto& [kind, message] : violations) {
    if (!first_violation) {
      out.push_back(',');
    }
    first_violation = false;
    out.push_back('{');
    AppendKeyString(&out, "kind", kind);
    out.push_back(',');
    AppendKeyString(&out, "message", message);
    out.push_back('}');
  }
  out.append("]}");
  LVM_DCHECK(obs::ValidateJson(out));
  return out;
}

bool LvmSystem::DumpBlackBox(const std::string& path, const std::string& cause,
                             const std::string& cause_detail,
                             const std::vector<std::pair<std::string, std::string>>& violations) {
  std::string json = BlackBoxJson(cause, cause_detail, violations);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

void LvmSystem::InstallCrashHandler(const std::string& path) {
  if (path.empty()) {
    // Disarm only if this system armed the hooks.
    LvmSystem* expected = this;
    if (g_crash_system.compare_exchange_strong(expected, nullptr)) {
      SetCheckFailureHook(nullptr);
      for (int signo : kFatalSignals) {
        std::signal(signo, SIG_DFL);
      }
    }
    return;
  }
  g_crash_system.store(nullptr);  // Quiesce the hooks while the path swaps.
  g_crash_path = path;
  g_crash_dumped.store(false);
  g_crash_system.store(this);
  SetCheckFailureHook(&CheckFailureDump);
  for (int signo : kFatalSignals) {
    std::signal(signo, &FatalSignalDump);
  }
}

}  // namespace lvm
