#include "src/consistency/protocols.h"

#include <cstring>

#include "src/base/check.h"

namespace lvm {

Replica::Replica(LvmSystem* system, uint32_t size)
    : system_(system), segment_(system->CreateSegment(size)), size_(AlignUp(size, kPageSize)) {}

void Replica::Apply(uint32_t offset, uint32_t value, uint8_t size) {
  LVM_DCHECK(offset + size <= size_);
  PhysAddr frame = system_->EnsureSegmentPage(segment_, PageNumber(offset));
  system_->machine().l2().Write(frame + PageOffset(offset), value, size);
}

uint32_t Replica::ReadWord(uint32_t offset) const {
  const_cast<LvmSystem*>(system_)->EnsureSegmentPage(segment_, PageNumber(offset));
  return system_->machine().l2().Read(segment_->FrameAt(PageNumber(offset)) +
                                      PageOffset(offset), 4);
}

LogBasedProtocol::LogBasedProtocol(LvmSystem* system, uint32_t size,
                                   const ConsistencyCosts& costs)
    : system_(system),
      costs_(costs),
      segment_(system->CreateSegment(size)),
      region_(system->CreateRegion(segment_)),
      log_(system->CreateLogSegment(16)),
      as_(system->CreateAddressSpace()),
      replica_(system, size) {
  base_ = as_->BindRegion(region_);
  system->AttachLog(region_, log_);
  system->Activate(as_);
}

void LogBasedProtocol::Write(Cpu* cpu, uint32_t offset, uint32_t value) {
  cpu->Write(base_ + offset, value);
}

void LogBasedProtocol::Release(Cpu* cpu) {
  // "The output process executes asynchronously ... and only synchronizes
  // on the end of the log" (Section 2.6).
  system_->SyncLog(cpu, log_);
  LogReader reader(system_->memory(), *log_);
  uint32_t bytes = 0;
  for (size_t i = 0; i < reader.size(); ++i) {
    LogRecord record = reader.At(i);
    int32_t page_index = segment_->PageIndexOfFrame(record.addr);
    LVM_DCHECK(page_index >= 0);
    uint32_t offset = static_cast<uint32_t>(page_index) * kPageSize + PageOffset(record.addr);
    replica_.Apply(offset, record.value, static_cast<uint8_t>(record.size));
    bytes += kUpdateWireBytes;
    cpu->AddCycles(costs_.send_update_cycles);
  }
  if (bytes > 0) {
    channel_.Transmit(bytes);
  }
  system_->TruncateLog(cpu, log_);
}

MuninTwinProtocol::MuninTwinProtocol(LvmSystem* system, uint32_t size,
                                     const ConsistencyCosts& costs)
    : system_(system),
      costs_(costs),
      segment_(system->CreateSegment(size)),
      region_(system->CreateRegion(segment_)),
      as_(system->CreateAddressSpace()),
      replica_(system, size) {
  base_ = as_->BindRegion(region_);
  system->Activate(as_);
}

void MuninTwinProtocol::Write(Cpu* cpu, uint32_t offset, uint32_t value) {
  uint32_t page = PageNumber(offset);
  auto it = twins_.find(page);
  if (it == twins_.end()) {
    // First write to this page in the interval: protection fault, twin it,
    // unprotect (Section 2.6's description of Munin).
    ++twin_faults_;
    cpu->AddCycles(costs_.twin_fault_cycles);
    PhysAddr frame = system_->EnsureSegmentPage(segment_, page);
    std::vector<uint8_t> twin(kPageSize);
    for (uint32_t line = 0; line < kPageSize; line += kLineSize) {
      system_->ReadEffectiveLine(frame + line, &twin[line]);
    }
    cpu->AddCycles(static_cast<Cycles>(kLinesPerPage) *
                   system_->machine().params().bcopy_block_cycles);
    twins_.emplace(page, std::move(twin));
  }
  cpu->Write(base_ + offset, value);
}

void MuninTwinProtocol::Release(Cpu* cpu) {
  uint32_t bytes = 0;
  for (auto& [page, twin] : twins_) {
    PhysAddr frame = segment_->FrameAt(page);
    // Word-by-word comparison against the twin.
    for (uint32_t offset = 0; offset < kPageSize; offset += 4) {
      uint32_t current = system_->machine().l2().Read(frame + offset, 4);
      uint32_t old = 0;
      std::memcpy(&old, &twin[offset], 4);
      if (current != old) {
        replica_.Apply(page * kPageSize + offset, current, 4);
        bytes += kUpdateWireBytes;
        cpu->AddCycles(costs_.send_update_cycles);
      }
    }
    cpu->AddCycles(static_cast<Cycles>(kPageSize / 4) * costs_.diff_word_cycles);
    cpu->AddCycles(costs_.protect_page_cycles);
  }
  twins_.clear();
  if (bytes > 0) {
    channel_.Transmit(bytes);
  }
}

}  // namespace lvm
