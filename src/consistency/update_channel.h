// Transmission accounting for the distributed-consistency protocols
// (Section 2.6): bytes and messages a producer ships to its consumers.
#ifndef SRC_CONSISTENCY_UPDATE_CHANNEL_H_
#define SRC_CONSISTENCY_UPDATE_CHANNEL_H_

#include <cstdint>

namespace lvm {

class UpdateChannel {
 public:
  void Transmit(uint32_t bytes) {
    bytes_sent_ += bytes;
    ++messages_;
  }

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages() const { return messages_; }

 private:
  uint64_t bytes_sent_ = 0;
  uint64_t messages_ = 0;
};

}  // namespace lvm

#endif  // SRC_CONSISTENCY_UPDATE_CHANNEL_H_
