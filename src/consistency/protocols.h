// Log-based consistency versus Munin-style twin/diff consistency
// (Section 2.6).
//
// Both protocols keep a consumer replica of a producer's write-shared
// region consistent at release (lock-release / flush) points:
//
//   - LogBasedProtocol: the producer's region is logged; at release the
//     producer synchronizes with the log, streams each record's
//     {offset, value, size} to the consumers, applies it to the replica,
//     and truncates. Update identification is free at write time; the time
//     to process a release shrinks to the synchronization with the log.
//
//   - MuninTwinProtocol: the region is write-protected; the first write to
//     a page in an interval faults, makes a twin (a copy) of the page, and
//     unprotects it. At release every twinned page is compared word by
//     word against its twin; the differences are transmitted and the pages
//     re-protected.
//
// The trade-off the paper notes: LVM can transmit *more* than Munin when
// the same location is written repeatedly between acquire and release
// (every write is a record), while Munin pays twin copies, diff scans and
// a protection fault per page per interval.
#ifndef SRC_CONSISTENCY_PROTOCOLS_H_
#define SRC_CONSISTENCY_PROTOCOLS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/types.h"
#include "src/consistency/update_channel.h"
#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"

namespace lvm {

// Per-update wire overhead: a 2-byte offset tag plus the datum, rounded to
// {offset(4), value(<=4)} = 8 bytes for word updates.
inline constexpr uint32_t kUpdateWireBytes = 8;

struct ConsistencyCosts {
  // Protection-fault cost of Munin's first write to a page per interval
  // (trap, twin allocation bookkeeping).
  uint32_t twin_fault_cycles = 350;
  // Word-by-word diff scan: two reads and a compare per word.
  uint32_t diff_word_cycles = 6;
  // Re-protecting a page at release.
  uint32_t protect_page_cycles = 60;
  // Per-update transmission processing (either protocol).
  uint32_t send_update_cycles = 12;
};

// Common consumer-side replica over a plain segment.
class Replica {
 public:
  Replica(LvmSystem* system, uint32_t size);

  // Applies one update at `offset` within the shared region.
  void Apply(uint32_t offset, uint32_t value, uint8_t size);
  uint32_t ReadWord(uint32_t offset) const;
  uint32_t size() const { return size_; }

 private:
  LvmSystem* system_;
  StdSegment* segment_;
  uint32_t size_;
};

class LogBasedProtocol {
 public:
  LogBasedProtocol(LvmSystem* system, uint32_t size, const ConsistencyCosts& costs);

  // Producer-side write (an ordinary write to the logged region).
  void Write(Cpu* cpu, uint32_t offset, uint32_t value);
  // Release point: stream the accumulated updates to the replica.
  void Release(Cpu* cpu);

  Replica& replica() { return replica_; }
  UpdateChannel& channel() { return channel_; }
  VirtAddr base() const { return base_; }

 private:
  LvmSystem* system_;
  ConsistencyCosts costs_;
  StdSegment* segment_;
  Region* region_;
  LogSegment* log_;
  AddressSpace* as_;
  VirtAddr base_ = 0;
  Replica replica_;
  UpdateChannel channel_;
};

class MuninTwinProtocol {
 public:
  MuninTwinProtocol(LvmSystem* system, uint32_t size, const ConsistencyCosts& costs);

  // Producer-side write: first write to a page in the interval pays the
  // protection fault and twin copy.
  void Write(Cpu* cpu, uint32_t offset, uint32_t value);
  // Release point: diff twinned pages, transmit differences, re-protect.
  void Release(Cpu* cpu);

  Replica& replica() { return replica_; }
  UpdateChannel& channel() { return channel_; }
  VirtAddr base() const { return base_; }
  uint64_t twin_faults() const { return twin_faults_; }

 private:
  LvmSystem* system_;
  ConsistencyCosts costs_;
  StdSegment* segment_;
  Region* region_;
  AddressSpace* as_;
  VirtAddr base_ = 0;
  Replica replica_;
  UpdateChannel channel_;
  // Page index -> twin copy made at the first write of this interval.
  std::unordered_map<uint32_t, std::vector<uint8_t>> twins_;
  uint64_t twin_faults_ = 0;
};

}  // namespace lvm

#endif  // SRC_CONSISTENCY_PROTOCOLS_H_
