// Vector clocks and epochs for the guest-level happens-before race
// detector (src/race), following the FastTrack representation: a thread's
// full knowledge is a VectorClock C_t; a single access is summarized by an
// Epoch c@t (the accessor's component of its own clock at the access).
//
// A CPU's clock starts with only its *own* component at 1 and every other
// component at 0 (the FastTrack initial state): CPUs know nothing about
// each other until a sync edge says so, and clock 0 stays a reliable
// "never accessed" sentinel in shadow cells. Sync-object clocks start at
// bottom (all zeros).
#ifndef SRC_RACE_VECTOR_CLOCK_H_
#define SRC_RACE_VECTOR_CLOCK_H_

#include <cstdint>
#include <vector>

#include "src/base/check.h"

namespace lvm {
namespace race {

// One access, compressed: component `clock` of CPU `cpu`'s vector clock.
// clock == 0 means "no such access yet".
struct Epoch {
  uint32_t clock = 0;
  uint8_t cpu = 0;
};

class VectorClock {
 public:
  VectorClock() = default;
  // Bottom: all components 0 (sync objects before their first release).
  explicit VectorClock(size_t num_cpus) : clocks_(num_cpus, 0) {}
  // A CPU's initial clock: own component 1, everything else 0.
  VectorClock(size_t num_cpus, size_t owner) : clocks_(num_cpus, 0) { clocks_[owner] = 1; }

  uint32_t Get(size_t cpu) const { return clocks_[cpu]; }
  void Set(size_t cpu, uint32_t value) { clocks_[cpu] = value; }
  void Tick(size_t cpu) { ++clocks_[cpu]; }
  size_t size() const { return clocks_.size(); }

  // Pointwise maximum: this := this ⊔ other.
  void Join(const VectorClock& other) {
    LVM_CHECK(clocks_.size() == other.clocks_.size());
    for (size_t i = 0; i < clocks_.size(); ++i) {
      if (other.clocks_[i] > clocks_[i]) {
        clocks_[i] = other.clocks_[i];
      }
    }
  }

  // The epoch of CPU `cpu`'s own component.
  Epoch OwnEpoch(size_t cpu) const {
    return Epoch{clocks_[cpu], static_cast<uint8_t>(cpu)};
  }

  // True iff the access summarized by `e` happens-before this clock's
  // owner: e.clock <= C[e.cpu]. An empty epoch (clock 0) is vacuously
  // ordered.
  bool Covers(const Epoch& e) const { return e.clock <= clocks_[e.cpu]; }

 private:
  std::vector<uint32_t> clocks_;
};

}  // namespace race
}  // namespace lvm

#endif  // SRC_RACE_VECTOR_CLOCK_H_
