#include "src/race/race_detector.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/json.h"
#include "src/obs/schema_ids.h"

namespace lvm {
namespace race {

const char* ToString(RaceKind kind) {
  switch (kind) {
    case RaceKind::kWriteWrite:
      return "write-write";
    case RaceKind::kReadWrite:
      return "read-write";
    case RaceKind::kWriteRead:
      return "write-read";
  }
  return "unknown";
}

RaceDetector::RaceDetector(int num_cpus, const RaceConfig& config)
    : config_(config),
      num_cpus_(num_cpus),
      stripe_budget_(std::max<size_t>(1, config.max_shadow_cells / kStripes)) {
  LVM_CHECK(num_cpus >= 1);
  cpus_.reserve(static_cast<size_t>(num_cpus));
  for (int i = 0; i < num_cpus; ++i) {
    auto state = std::make_unique<CpuState>();
    state->vc = VectorClock(static_cast<size_t>(num_cpus), static_cast<size_t>(i));
    cpus_.push_back(std::move(state));
  }
}

RaceDetector::Cell& RaceDetector::CellFor(Stripe& stripe, uint32_t word_index) {
  auto it = stripe.cells.find(word_index);
  if (it != stripe.cells.end()) {
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru);
    return it->second;
  }
  if (stripe.cells.size() >= stripe_budget_) {
    // Forgetting a cell can only miss a race, never invent one; the
    // eviction counter is the soundness caveat made visible.
    const uint32_t victim = stripe.lru.back();
    stripe.lru.pop_back();
    stripe.cells.erase(victim);
    shadow_evictions_.Increment();
  }
  stripe.lru.push_front(word_index);
  Cell& cell = stripe.cells[word_index];
  cell.lru = stripe.lru.begin();
  return cell;
}

void RaceDetector::PushTrail(int cpu, VirtAddr va) {
  CpuState& state = *cpus_[static_cast<size_t>(cpu)];
  MutexLock lk(state.trail_mu);
  state.trail[state.trail_next] = va;
  state.trail_next = (state.trail_next + 1) % kTrailMax;
  if (state.trail_len < kTrailMax) {
    ++state.trail_len;
  }
}

std::vector<VirtAddr> RaceDetector::SnapshotTrail(int cpu) const {
  const CpuState& state = *cpus_[static_cast<size_t>(cpu)];
  MutexLock lk(state.trail_mu);
  const size_t depth = std::min({state.trail_len, config_.trail_depth, kTrailMax});
  std::vector<VirtAddr> trail;
  trail.reserve(depth);
  for (size_t i = 0; i < depth; ++i) {
    // Newest first: trail_next points one past the most recent entry.
    const size_t slot = (state.trail_next + kTrailMax - 1 - i) % kTrailMax;
    trail.push_back(state.trail[slot]);
  }
  return trail;
}

void RaceDetector::Report(RaceKind kind, uint32_t word_index, const RaceReport& prototype) {
  const uint8_t lo = std::min(prototype.cpu_a, prototype.cpu_b);
  const uint8_t hi = std::max(prototype.cpu_a, prototype.cpu_b);
  const uint64_t key = (static_cast<uint64_t>(word_index) << 32) |
                       (static_cast<uint64_t>(kind) << 16) |
                       (static_cast<uint64_t>(lo) << 8) | hi;
  MutexLock lk(report_mu_);
  auto it = dedup_.find(key);
  if (it != dedup_.end()) {
    ++reports_[it->second].count;
    races_deduped_.Increment();
    return;
  }
  if (reports_.size() >= config_.max_reports) {
    reports_dropped_.Increment();
    return;
  }
  RaceReport report = prototype;
  report.kind = kind;
  report.pcs_a = SnapshotTrail(report.cpu_a);
  report.pcs_b = SnapshotTrail(report.cpu_b);
  dedup_[key] = reports_.size();
  reports_.push_back(std::move(report));
  races_reported_.Increment();
  if (flight_ != nullptr) {
    flight_->Record(prototype.cpu_b, obs::FlightEventKind::kRaceReport, prototype.cycle_b,
                    ToString(kind), prototype.paddr, prototype.cpu_a, prototype.cpu_b);
  }
}

void RaceDetector::OnMemoryAccess(int cpu_id, AccessKind kind, VirtAddr va, PhysAddr paddr,
                                  uint8_t size, bool logged, Cycles time) {
  if (config_.logged_only && !logged) {
    return;
  }
  accesses_observed_.Increment();
  PushTrail(cpu_id, va);
  CpuState& me = *cpus_[static_cast<size_t>(cpu_id)];
  const Epoch e = me.vc.OwnEpoch(static_cast<size_t>(cpu_id));
  const uint32_t word_index = paddr >> 2;

  RaceReport proto;
  proto.paddr = paddr;
  proto.va = va;
  proto.size = size;
  proto.logged = logged;
  proto.cpu_b = static_cast<uint8_t>(cpu_id);
  proto.clock_b = e.clock;
  proto.cycle_b = time;

  Stripe& stripe = StripeFor(word_index);
  MutexLock lk(stripe.mu);
  Cell& cell = CellFor(stripe, word_index);

  if (kind == AccessKind::kWrite) {
    if (cell.write.clock == e.clock && cell.write.cpu == e.cpu) {
      cell.write_va = va;
      cell.write_cycle = time;
      return;  // Same-epoch write: nothing new to check.
    }
    if (cell.write.clock != 0 && !me.vc.Covers(cell.write)) {
      proto.cpu_a = cell.write.cpu;
      proto.clock_a = cell.write.clock;
      proto.cycle_a = cell.write_cycle;
      Report(RaceKind::kWriteWrite, word_index, proto);
    }
    if (cell.reads != nullptr) {
      for (size_t u = 0; u < cell.reads->size(); ++u) {
        const ReadMark& mark = (*cell.reads)[u];
        if (mark.clock != 0 && mark.clock > me.vc.Get(u)) {
          proto.cpu_a = static_cast<uint8_t>(u);
          proto.clock_a = mark.clock;
          proto.cycle_a = mark.cycle;
          Report(RaceKind::kReadWrite, word_index, proto);
        }
      }
    } else if (cell.read.clock != 0 && !me.vc.Covers(cell.read)) {
      proto.cpu_a = cell.read.cpu;
      proto.clock_a = cell.read.clock;
      proto.cycle_a = cell.read_cycle;
      Report(RaceKind::kReadWrite, word_index, proto);
    }
    // A race-free write dominates all prior accesses, so the read state can
    // be discarded (and a racing write was already reported above).
    cell.write = e;
    cell.write_va = va;
    cell.write_cycle = time;
    cell.read = Epoch{};
    cell.reads.reset();
    return;
  }

  // --- read ---
  if (cell.reads != nullptr) {
    ReadMark& mark = (*cell.reads)[static_cast<size_t>(cpu_id)];
    if (mark.clock == e.clock) {
      return;  // Same-epoch read.
    }
    if (cell.write.clock != 0 && !me.vc.Covers(cell.write)) {
      proto.cpu_a = cell.write.cpu;
      proto.clock_a = cell.write.clock;
      proto.cycle_a = cell.write_cycle;
      Report(RaceKind::kWriteRead, word_index, proto);
    }
    mark = ReadMark{e.clock, va, time};
    return;
  }
  if (cell.read.clock == e.clock && cell.read.cpu == e.cpu) {
    return;  // Same-epoch read (exclusive fast path).
  }
  if (cell.write.clock != 0 && !me.vc.Covers(cell.write)) {
    proto.cpu_a = cell.write.cpu;
    proto.clock_a = cell.write.clock;
    proto.cycle_a = cell.write_cycle;
    Report(RaceKind::kWriteRead, word_index, proto);
  }
  if (cell.read.clock == 0 || me.vc.Covers(cell.read)) {
    // Still a single reader chain: stay in epoch representation.
    cell.read = e;
    cell.read_va = va;
    cell.read_cycle = time;
    return;
  }
  // Two concurrent readers: promote to the full read vector (adaptive
  // promotion — allocated only for genuinely shared read locations).
  cell.reads = std::make_unique<std::vector<ReadMark>>(static_cast<size_t>(num_cpus_));
  (*cell.reads)[cell.read.cpu] = ReadMark{cell.read.clock, cell.read_va, cell.read_cycle};
  (*cell.reads)[static_cast<size_t>(cpu_id)] = ReadMark{e.clock, va, time};
  cell.read = Epoch{};
}

void RaceDetector::Release(int cpu, uint64_t sync_id) {
  sync_releases_.Increment();
  CpuState& me = *cpus_[static_cast<size_t>(cpu)];
  MutexLock lk(sync_mu_);
  auto [it, inserted] =
      sync_objects_.try_emplace(sync_id, VectorClock(static_cast<size_t>(num_cpus_)));
  // Join rather than overwrite: a sync object accumulates every releaser's
  // history (semaphore semantics), which is what bare acquire/release
  // annotations express. Lock-style strict hand-off is a special case.
  it->second.Join(me.vc);
  (void)inserted;
  me.vc.Tick(static_cast<size_t>(cpu));
}

void RaceDetector::Acquire(int cpu, uint64_t sync_id) {
  sync_acquires_.Increment();
  CpuState& me = *cpus_[static_cast<size_t>(cpu)];
  MutexLock lk(sync_mu_);
  auto it = sync_objects_.find(sync_id);
  if (it != sync_objects_.end()) {
    me.vc.Join(it->second);
  }
}

void RaceDetector::GlobalBarrier() {
  barriers_.Increment();
  MutexLock lk(sync_mu_);
  VectorClock all(static_cast<size_t>(num_cpus_));
  for (const auto& state : cpus_) {
    all.Join(state->vc);
  }
  for (size_t i = 0; i < cpus_.size(); ++i) {
    cpus_[i]->vc = all;
    cpus_[i]->vc.Tick(i);
  }
}

std::vector<RaceReport> RaceDetector::Reports() const {
  MutexLock lk(report_mu_);
  return reports_;
}

std::string RaceDetector::ReportsJson() const {
  const std::vector<RaceReport> reports = Reports();
  std::string out = "{\"schema\":\"";
  out += obs::kRaceReportSchema;
  out += "\",\"stats\":{";
  out += "\"accesses_observed\":" + obs::JsonNumber(accesses_observed_.value());
  out += ",\"reports\":" + obs::JsonNumber(races_reported_.value());
  out += ",\"deduped\":" + obs::JsonNumber(races_deduped_.value());
  out += ",\"reports_dropped\":" + obs::JsonNumber(reports_dropped_.value());
  out += ",\"shadow_evictions\":" + obs::JsonNumber(shadow_evictions_.value());
  out += ",\"sync_acquires\":" + obs::JsonNumber(sync_acquires_.value());
  out += ",\"sync_releases\":" + obs::JsonNumber(sync_releases_.value());
  out += ",\"barriers\":" + obs::JsonNumber(barriers_.value());
  out += "},\"races\":[";
  bool first = true;
  for (const RaceReport& report : reports) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"kind\":";
    obs::AppendJsonString(&out, ToString(report.kind));
    out += ",\"paddr\":" + obs::JsonNumber(static_cast<uint64_t>(report.paddr));
    out += ",\"va\":" + obs::JsonNumber(static_cast<uint64_t>(report.va));
    out += ",\"size\":" + obs::JsonNumber(static_cast<uint64_t>(report.size));
    out += ",\"logged\":";
    out += report.logged ? "true" : "false";
    out += ",\"cpu_a\":" + obs::JsonNumber(static_cast<uint64_t>(report.cpu_a));
    out += ",\"clock_a\":" + obs::JsonNumber(static_cast<uint64_t>(report.clock_a));
    out += ",\"cycle_a\":" + obs::JsonNumber(static_cast<uint64_t>(report.cycle_a));
    out += ",\"cpu_b\":" + obs::JsonNumber(static_cast<uint64_t>(report.cpu_b));
    out += ",\"clock_b\":" + obs::JsonNumber(static_cast<uint64_t>(report.clock_b));
    out += ",\"cycle_b\":" + obs::JsonNumber(static_cast<uint64_t>(report.cycle_b));
    out += ",\"count\":" + obs::JsonNumber(report.count);
    for (int side = 0; side < 2; ++side) {
      out += side == 0 ? ",\"pcs_a\":[" : ",\"pcs_b\":[";
      const std::vector<VirtAddr>& pcs = side == 0 ? report.pcs_a : report.pcs_b;
      for (size_t i = 0; i < pcs.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += obs::JsonNumber(static_cast<uint64_t>(pcs[i]));
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

bool RaceDetector::WriteReportJson(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const std::string json = ReportsJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool close_ok = std::fclose(file) == 0;
  return written == json.size() && close_ok;
}

void RaceDetector::RegisterMetrics(obs::MetricsRegistry* registry) const {
  registry->RegisterCounter("race.accesses_observed", &accesses_observed_);
  registry->RegisterCounter("race.reports", &races_reported_);
  registry->RegisterCounter("race.deduped", &races_deduped_);
  registry->RegisterCounter("race.reports_dropped", &reports_dropped_);
  registry->RegisterCounter("race.shadow_evictions", &shadow_evictions_);
  registry->RegisterCounter("race.sync_acquires", &sync_acquires_);
  registry->RegisterCounter("race.sync_releases", &sync_releases_);
  registry->RegisterCounter("race.barriers", &barriers_);
}

}  // namespace race
}  // namespace lvm
