// Guest-level happens-before race detector for the simulated machine.
//
// LVM's rollback and Time Warp recovery are only sound when concurrent
// guest writes to logged regions are ordered by the guest program's own
// synchronization: two log records for the same address whose writers are
// unordered can replay in either order, silently corrupting recovery. The
// host-level tools (TSan, the invariant checker) cannot see this — the
// simulator is free of host races even while the *simulated* CPUs race.
//
// The detector is a FastTrack-style vector-clock engine (Flanagan &
// Freund, PLDI 2009) fed by the Cpu's MemoryAccessObserver hook:
//   - each simulated CPU carries a vector clock; a single access is
//     summarized by an epoch c@cpu;
//   - shadow state is kept per 4-byte word, keyed by (page, word offset),
//     remembering the last write epoch and either a last-read epoch or —
//     after concurrent reads — a promoted full read vector ("adaptive
//     promotion": the common same-epoch / ordered cases never allocate);
//   - happens-before edges come from the parallel engine (deterministic
//     token handoffs, overload park/resume barriers, Start/Join), from
//     kernel barriers (resetDeferredCopy), and from explicit
//     LvmSystem::GuestSyncEvent(acquire/release, id) workload annotations;
//   - shadow memory is bounded: stripes carry an LRU list and a per-stripe
//     cell budget; evictions are counted ("race.shadow_evictions") because
//     an evicted cell forgets history and can miss (never invent) a race.
//
// Reports are deduplicated by (word, kind, cpu pair), capped, exported as
// strict JSON (obs::ValidateJson-clean) and surfaced through
// LvmSystem::GetRaceReports().
//
// Thread model: OnMemoryAccess runs on the thread driving the accessing
// CPU. A CPU's vector clock is only touched by that thread, except for
// Acquire/Release/barrier calls made on its behalf by the engine while the
// worker is parked or token-blocked (the engine's mutex orders those).
// Shadow cells are guarded by per-stripe mutexes, reports by their own.
#ifndef SRC_RACE_RACE_DETECTOR_H_
#define SRC_RACE_RACE_DETECTOR_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/lock_order.h"
#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/base/types.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/race/vector_clock.h"
#include "src/sim/interfaces.h"

namespace lvm {
namespace race {

// Sync-object ids at or above this value are reserved for the runtime (the
// parallel engine's token, ...); workload annotations must stay below.
inline constexpr uint64_t kInternalSyncBase = 1ull << 63;
inline constexpr uint64_t kTokenSyncId = kInternalSyncBase + 1;

struct RaceConfig {
  // Total shadow-cell budget across all stripes (LRU-evicted beyond it).
  size_t max_shadow_cells = 1u << 16;
  // Deduplicated reports kept; further distinct races only count.
  size_t max_reports = 64;
  // Track only accesses to logged pages (the soundness-critical subset).
  bool logged_only = false;
  // Recent-access addresses attached to each report per CPU (<= 16).
  size_t trail_depth = 8;
};

enum class RaceKind : uint8_t {
  kWriteWrite,  // Unordered write after write.
  kReadWrite,   // Write racing an unordered earlier read.
  kWriteRead,   // Read racing an unordered earlier write.
};

const char* ToString(RaceKind kind);

// One deduplicated race. Access `a` is the earlier (shadow) access, `b`
// the one that detected the race. `pcs_*` are the CPUs' most-recent
// accessed virtual addresses at report time, newest first — the
// simulator's stand-in for stacks (workloads have no PCs).
struct RaceReport {
  RaceKind kind = RaceKind::kWriteWrite;
  PhysAddr paddr = 0;  // Exact address of access b.
  VirtAddr va = 0;     // Virtual address of access b.
  uint8_t size = 0;    // Size of access b in bytes.
  bool logged = false;
  uint8_t cpu_a = 0;
  uint32_t clock_a = 0;  // Epoch component of access a.
  Cycles cycle_a = 0;    // Simulated time of access a.
  uint8_t cpu_b = 0;
  uint32_t clock_b = 0;
  Cycles cycle_b = 0;
  uint64_t count = 1;  // Occurrences folded into this report.
  std::vector<VirtAddr> pcs_a;
  std::vector<VirtAddr> pcs_b;
};

class RaceDetector : public MemoryAccessObserver {
 public:
  RaceDetector(int num_cpus, const RaceConfig& config);

  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  // --- sim::MemoryAccessObserver ---
  void OnMemoryAccess(int cpu_id, AccessKind kind, VirtAddr va, PhysAddr paddr, uint8_t size,
                      bool logged, Cycles time) override;

  // --- happens-before edges ---
  // Release: publish `cpu`'s clock into sync object `sync_id`, then tick.
  void Release(int cpu, uint64_t sync_id);
  // Acquire: join sync object `sync_id` into `cpu`'s clock.
  void Acquire(int cpu, uint64_t sync_id);
  // Joins every CPU's clock with every other's and ticks each — a full
  // barrier (engine Start/Join, overload park/resume, deferred-copy
  // reset). Caller must ensure no CPU is concurrently accessing memory.
  void GlobalBarrier();

  // --- results ---
  // Stable copy of the deduplicated reports (safe mid-run).
  std::vector<RaceReport> Reports() const;
  size_t report_count() const { return races_reported_.value(); }
  // The reports plus detector counters as one strict JSON document.
  std::string ReportsJson() const;
  // Writes ReportsJson() to `path`; false if the file could not be written.
  bool WriteReportJson(const std::string& path) const;

  // Registers "race.*" counters. Call at most once per registry.
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

  // Each new deduplicated report also lands in the flight recorder (ring of
  // the detecting CPU) so the black-box timeline shows when races surfaced.
  void SetFlightRecorder(obs::FlightRecorder* flight) { flight_ = flight; }

  uint64_t accesses_observed() const { return accesses_observed_.value(); }
  uint64_t races_deduped() const { return races_deduped_.value(); }
  uint64_t shadow_evictions() const { return shadow_evictions_.value(); }
  uint64_t reports_dropped() const { return reports_dropped_.value(); }
  int num_cpus() const { return num_cpus_; }

 private:
  static constexpr size_t kStripes = 64;
  static constexpr size_t kTrailMax = 16;

  // Promoted read state: one mark per CPU (FastTrack's read vector clock,
  // with enough metadata to report the racing read).
  struct ReadMark {
    uint32_t clock = 0;
    VirtAddr va = 0;
    Cycles cycle = 0;
  };

  // Shadow state for one 4-byte word. `read` is the exclusive-reader fast
  // path; `reads` replaces it once two unordered reads have been seen.
  struct Cell {
    Epoch write;
    VirtAddr write_va = 0;
    Cycles write_cycle = 0;
    Epoch read;
    VirtAddr read_va = 0;
    Cycles read_cycle = 0;
    std::unique_ptr<std::vector<ReadMark>> reads;
    std::list<uint32_t>::iterator lru;
  };

  struct Stripe {
    Mutex mu LVM_ACQUIRED_AFTER(lockorder::kLevelWalRegion){
        "RaceDetector::Stripe::mu", lockorder::kRankRaceStripe};
    // Keyed by word index.
    std::unordered_map<uint32_t, Cell> cells LVM_GUARDED_BY(mu);
    // Front = most recently used.
    std::list<uint32_t> lru LVM_GUARDED_BY(mu);
  };

  // A CPU's clock plus its recent-access trail. The clock is written by
  // the owning thread (accesses, annotations) or by the engine while the
  // owner is parked; the trail has its own lock so another CPU's report
  // can copy it.
  struct CpuState {
    // Deliberately unannotated: thread-confined to the owning worker except
    // for engine calls made while the owner is parked (ordered externally).
    VectorClock vc;
    mutable Mutex trail_mu LVM_ACQUIRED_AFTER(lockorder::kLevelRaceReport){
        "RaceDetector::CpuState::trail_mu", lockorder::kRankRaceTrail};
    VirtAddr trail[kTrailMax] LVM_GUARDED_BY(trail_mu) = {};
    size_t trail_len LVM_GUARDED_BY(trail_mu) = 0;
    size_t trail_next LVM_GUARDED_BY(trail_mu) = 0;
  };

  Stripe& StripeFor(uint32_t word_index) {
    return stripes_[(word_index >> (kPageShift - 2)) % kStripes];
  }
  // Looks up or creates the cell for `word_index`, evicting the stripe's
  // LRU cell when the per-stripe budget is exhausted.
  Cell& CellFor(Stripe& stripe, uint32_t word_index) LVM_REQUIRES(stripe.mu);
  void PushTrail(int cpu, VirtAddr va);
  std::vector<VirtAddr> SnapshotTrail(int cpu) const;
  void Report(RaceKind kind, uint32_t word_index, const RaceReport& prototype);

  const RaceConfig config_;
  const int num_cpus_;
  const size_t stripe_budget_;  // Max cells per stripe.
  obs::FlightRecorder* flight_ = nullptr;

  std::vector<std::unique_ptr<CpuState>> cpus_;
  Stripe stripes_[kStripes];

  mutable Mutex sync_mu_ LVM_ACQUIRED_AFTER(lockorder::kLevelRaceStripe){
      "RaceDetector::sync_mu_", lockorder::kRankRaceSync};
  std::unordered_map<uint64_t, VectorClock> sync_objects_ LVM_GUARDED_BY(sync_mu_);

  mutable Mutex report_mu_ LVM_ACQUIRED_AFTER(lockorder::kLevelRaceSync){
      "RaceDetector::report_mu_", lockorder::kRankRaceReport};
  std::vector<RaceReport> reports_ LVM_GUARDED_BY(report_mu_);
  // (word_index, kind, cpu_lo, cpu_hi) -> index into reports_.
  std::unordered_map<uint64_t, size_t> dedup_ LVM_GUARDED_BY(report_mu_);

  obs::Counter accesses_observed_;
  obs::Counter races_reported_;   // Distinct deduplicated reports.
  obs::Counter races_deduped_;    // Occurrences folded into existing reports.
  obs::Counter reports_dropped_;  // Distinct races beyond max_reports.
  obs::Counter shadow_evictions_;
  obs::Counter sync_acquires_;
  obs::Counter sync_releases_;
  obs::Counter barriers_;
};

}  // namespace race
}  // namespace lvm

#endif  // SRC_RACE_RACE_DETECTOR_H_
