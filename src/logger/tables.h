// The logger's on-board lookup tables (Section 3.1, Figures 5 and 6).
//
// The page mapping table is a direct-mapped, TLB-like structure that maps a
// physical page to a log table index: the 20-bit physical page number is
// split into a 5-bit tag (upper bits) and a 15-bit index (lower bits). The
// log table holds, per log, the physical address at which the next record is
// written; crossing a page boundary invalidates the entry, raising a logging
// fault on the next record.
#ifndef SRC_LOGGER_TABLES_H_
#define SRC_LOGGER_TABLES_H_

#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"

namespace lvm {

// How records for a log are placed in its log segment (Section 2.6).
enum class LogMode : uint8_t {
  // Append 16-byte records sequentially (the standard mode).
  kNormal,
  // Write the datum at the offset in the log segment corresponding to its
  // offset in the data segment (mapped-I/O output).
  kDirectMapped,
  // Append just the data values, without addresses or timestamps
  // (streamed-output mode).
  kIndexed,
};

class PageMappingTable {
 public:
  static constexpr uint32_t kIndexBits = 15;
  static constexpr uint32_t kEntries = 1u << kIndexBits;
  static constexpr uint32_t kIndexMask = kEntries - 1;

  struct Entry {
    bool valid = false;
    uint8_t tag = 0;         // Upper 5 bits of the physical page number.
    uint16_t log_index = 0;  // Index into the log table.
    // Per-processor logging (the Section 3.1.2 extension the prototype
    // lacked space for): the effective log is log_index + cpu_id.
    bool per_cpu = false;
    // Reverse translation (Section 3.1.2: "the logger could store a
    // reverse-translation in its page mapping table, relying on there
    // being a single logged region per segment"): when set, records carry
    // va_page + offset instead of the physical address. An ASIC would have
    // the table space; the FPGA prototype did not.
    bool has_va = false;
    VirtAddr va_page = 0;
    // Direct-mapped mode only: physical frame in the log segment that
    // mirrors this data page.
    PhysAddr direct_frame = 0;
  };

  PageMappingTable() : entries_(kEntries) {}

  static uint32_t IndexOf(PhysAddr paddr) { return PageNumber(paddr) & kIndexMask; }
  static uint8_t TagOf(PhysAddr paddr) {
    return static_cast<uint8_t>(PageNumber(paddr) >> kIndexBits);
  }

  // Returns the entry for `paddr`'s page if present and tag-matching,
  // nullptr otherwise (a logging fault in hardware).
  const Entry* Lookup(PhysAddr paddr) const {
    const Entry& entry = entries_[IndexOf(paddr)];
    if (!entry.valid || entry.tag != TagOf(paddr)) {
      return nullptr;
    }
    return &entry;
  }

  // Loads the entry for `paddr`'s page, displacing whatever shared its
  // direct-mapped slot. Returns true if a valid entry was displaced.
  bool Load(PhysAddr paddr, uint16_t log_index, PhysAddr direct_frame = 0,
            bool per_cpu = false, bool has_va = false, VirtAddr va_page = 0) {
    Entry& entry = entries_[IndexOf(paddr)];
    bool displaced = entry.valid && entry.tag != TagOf(paddr);
    entry.valid = true;
    entry.tag = TagOf(paddr);
    entry.log_index = log_index;
    entry.per_cpu = per_cpu;
    entry.has_va = has_va;
    entry.va_page = va_page;
    entry.direct_frame = direct_frame;
    return displaced;
  }

  // Invalidates the entry for `paddr`'s page if it is currently loaded.
  void Invalidate(PhysAddr paddr) {
    Entry& entry = entries_[IndexOf(paddr)];
    if (entry.valid && entry.tag == TagOf(paddr)) {
      entry.valid = false;
    }
  }

  void Clear() {
    for (Entry& entry : entries_) {
      entry.valid = false;
    }
  }

 private:
  std::vector<Entry> entries_;
};

// Observes kernel-initiated tail loads (LogTable::SetTail). The invariant
// checker (src/check) listens so it can tell a legitimate kernel tail reload
// apart from the hardware tail silently jumping.
class LogTailListener {
 public:
  virtual ~LogTailListener() = default;
  virtual void OnTailSet(uint32_t log_index, PhysAddr tail) = 0;
};

class LogTable {
 public:
  struct Entry {
    bool in_use = false;   // Allocated to a log by the kernel.
    bool tail_valid = false;
    LogMode mode = LogMode::kNormal;
    PhysAddr tail = 0;  // Physical address of the next record.
  };

  explicit LogTable(uint32_t entries = 64) : entries_(entries) {}

  uint32_t size() const { return static_cast<uint32_t>(entries_.size()); }

  Entry& at(uint32_t index) { return entries_.at(index); }
  const Entry& at(uint32_t index) const { return entries_.at(index); }

  // Allocates a free slot; returns false if the table is full.
  bool Allocate(LogMode mode, uint32_t* out_index) {
    return AllocateRange(mode, 1, out_index);
  }

  // Allocates `count` consecutive free slots (per-processor log groups use
  // log_index + cpu_id). Returns false if no such run exists.
  bool AllocateRange(LogMode mode, uint32_t count, uint32_t* out_first) {
    for (uint32_t start = 0; start + count <= entries_.size(); ++start) {
      bool free = true;
      for (uint32_t i = 0; i < count; ++i) {
        if (entries_[start + i].in_use) {
          free = false;
          break;
        }
      }
      if (!free) {
        continue;
      }
      for (uint32_t i = 0; i < count; ++i) {
        entries_[start + i] =
            Entry{.in_use = true, .tail_valid = false, .mode = mode, .tail = 0};
      }
      *out_first = start;
      return true;
    }
    return false;
  }

  void Release(uint32_t index) { entries_.at(index) = Entry{}; }

  // Sets the tail (next record address) for a log and validates the entry.
  void SetTail(uint32_t index, PhysAddr tail) {
    Entry& entry = entries_.at(index);
    LVM_CHECK(entry.in_use);
    entry.tail = tail;
    entry.tail_valid = true;
    if (tail_listener_ != nullptr) {
      tail_listener_->OnTailSet(index, tail);
    }
  }

  void set_tail_listener(LogTailListener* listener) { tail_listener_ = listener; }

 private:
  std::vector<Entry> entries_;
  LogTailListener* tail_listener_ = nullptr;
};

}  // namespace lvm

#endif  // SRC_LOGGER_TABLES_H_
