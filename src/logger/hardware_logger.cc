#include "src/logger/hardware_logger.h"

namespace lvm {

HardwareLogger::HardwareLogger(const MachineParams* params, PhysicalMemory* memory, Bus* bus)
    : params_(params), memory_(memory), bus_(bus), fifo_(params->logger_fifo_capacity) {}

void HardwareLogger::OnBusWrite(PhysAddr paddr, uint32_t value, uint8_t size, bool logged,
                                Cycles time, int cpu_id) {
  if (!logged) {
    return;
  }
  DrainUpTo(time);
  if (fifo_.full()) {
    // With the overload threshold below capacity this cannot happen unless a
    // client ignores OnOverload; count rather than crash.
    records_dropped_.Increment();
    return;
  }
  uint64_t prov = 0;
  if (waterfall_ != nullptr) {
    prov = waterfall_->SampleRecord(cpu_id, time, static_cast<uint32_t>(fifo_.size()));
  }
  fifo_.Push(FifoEntry{paddr, value, size, static_cast<uint8_t>(cpu_id), time, prov});
  if (prov != 0) {
    waterfall_->Stamp(prov, obs::WaterfallStage::kShardEnqueue, cpu_id, time,
                      static_cast<uint32_t>(fifo_.size()));
  }
  if (trace_ != nullptr) {
    trace_->CounterValue("logger", "fifo_occupancy", kLoggerTraceTid, time, fifo_.size());
  }
  if (fifo_.size() >= params_->logger_fifo_threshold) {
    overload_events_.Increment();
    // The kernel suspends the logging processes; the FIFOs drain completely
    // at the Table-2 DMA rate before execution resumes.
    if (service_free_ < time) {
      service_free_ = time;
    }
    size_t drained = fifo_.size();
    while (!fifo_.empty()) {
      ProcessOne(params_->logger_service_drain_cycles, obs::CostCenter::kLogDrain);
    }
    overload_drain_cycles_.Record(service_free_ - time);
    if (trace_ != nullptr) {
      trace_->Instant("logger", "overload_interrupt", kLoggerTraceTid, time, "fifo_entries",
                      drained);
      trace_->Complete("logger", "overload_drain", kLoggerTraceTid, time, service_free_,
                       "fifo_entries", drained);
    }
    if (observer_ != nullptr) {
      observer_->OnOverloadDrain(time, service_free_);
    }
    if (client_ != nullptr) {
      client_->OnOverload(time, service_free_);
    }
  }
}

void HardwareLogger::DrainUpTo(Cycles time) {
  while (!fifo_.empty()) {
    Cycles start = fifo_.Front().time > service_free_ ? fifo_.Front().time : service_free_;
    if (start + params_->logger_service_active_cycles > time) {
      return;
    }
    ProcessOne(params_->logger_service_active_cycles, obs::CostCenter::kLogEmit);
  }
}

void HardwareLogger::ProcessOne(uint32_t service_cycles, obs::CostCenter center) {
  FifoEntry entry = fifo_.Pop();
  if (entry.time > service_free_) {
    service_free_ = entry.time;
  }
  if (entry.prov != 0) {
    waterfall_->Stamp(entry.prov, obs::WaterfallStage::kDrain, entry.cpu_id, service_free_,
                      static_cast<uint32_t>(fifo_.size()));
  }
  if (EmitRecord(entry)) {
    records_logged_.Increment();
    if (params_->dma_contends_bus && bus_ != nullptr) {
      bus_->Acquire(service_free_, params_->log_record_dma_bus);
    }
    if (trace_ != nullptr) {
      trace_->Instant("logger", "record", kLoggerTraceTid, service_free_, "paddr", entry.paddr);
    }
  } else {
    records_dropped_.Increment();
    if (entry.prov != 0) {
      waterfall_->Abandon(entry.prov);
    }
    if (trace_ != nullptr) {
      trace_->Instant("logger", "record_drop", kLoggerTraceTid, service_free_, "paddr",
                      entry.paddr);
    }
  }
  service_free_ += service_cycles;
  ChargeProf(center, service_cycles);
}

bool HardwareLogger::EmitRecord(const FifoEntry& entry) {
  const PageMappingTable::Entry* mapping = page_mapping_table_.Lookup(entry.paddr);
  if (mapping == nullptr) {
    mapping_faults_.Increment();
    service_free_ += params_->logging_fault_logger_stall;
    ChargeProf(obs::CostCenter::kLogFault, params_->logging_fault_logger_stall);
    if (client_ == nullptr || !client_->OnMappingFault(entry.paddr, service_free_)) {
      NotifyRetired(RetiredWrite::Kind::kDropped, entry, 0, 0, 0, 0);
      return false;
    }
    mapping = page_mapping_table_.Lookup(entry.paddr);
    if (mapping == nullptr) {
      NotifyRetired(RetiredWrite::Kind::kDropped, entry, 0, 0, 0, 0);
      return false;
    }
  }

  // Per-processor logs: the writing CPU selects within the group.
  uint32_t log_index = mapping->log_index;
  if (mapping->per_cpu) {
    log_index += entry.cpu_id;
  }
  LogTable::Entry& log = log_table_.at(log_index);
  switch (log.mode) {
    case LogMode::kDirectMapped: {
      // The datum lands at the corresponding offset of the log segment; no
      // tail, no boundary faults.
      PhysAddr stored_at = mapping->direct_frame + PageOffset(entry.paddr);
      memory_->Write(stored_at, entry.value, entry.size);
      if (entry.prov != 0) {
        // No record framing, so the journey ends at the store.
        waterfall_->Complete(entry.prov, obs::WaterfallStage::kSegmentAppend, entry.cpu_id,
                             service_free_, 0);
      }
      NotifyRetired(RetiredWrite::Kind::kDirectMapped, entry, log_index, stored_at, 0, 0);
      return true;
    }
    case LogMode::kNormal:
    case LogMode::kIndexed:
      break;
  }

  if (!log.tail_valid) {
    tail_faults_.Increment();
    service_free_ += params_->logging_fault_logger_stall;
    ChargeProf(obs::CostCenter::kLogFault, params_->logging_fault_logger_stall);
    if (client_ == nullptr || !client_->OnLogTailFault(log_index, service_free_)) {
      NotifyRetired(RetiredWrite::Kind::kDropped, entry, log_index, 0, 0, 0);
      return false;
    }
    if (!log.tail_valid) {
      NotifyRetired(RetiredWrite::Kind::kDropped, entry, log_index, 0, 0, 0);
      return false;
    }
  }

  PhysAddr tail_before = log.tail;
  if (log.mode == LogMode::kNormal) {
    // With reverse translation loaded (ASIC option, Section 3.1.2) the
    // record carries the virtual address.
    uint32_t record_addr = mapping->has_va ? mapping->va_page + PageOffset(entry.paddr)
                                           : entry.paddr;
    LogRecord record{
        .addr = record_addr,
        .value = entry.value,
        .size = entry.size,
        .flags = entry.prov != 0 ? kRecordFlagSampled : uint16_t{0},
        .timestamp = static_cast<uint32_t>(entry.time / params_->timestamp_divider),
    };
    LogFaultInjector::Action action = LogFaultInjector::Action::kNone;
    if (injector_ != nullptr) {
      action = injector_->OnEmit(log_index, &record);
    }
    switch (action) {
      case LogFaultInjector::Action::kNone:
        StoreLogRecord(memory_, log.tail, record);
        log.tail += kLogRecordSize;
        break;
      case LogFaultInjector::Action::kDropRecord:
        // The DMA is lost; the tail still advances over the stale bytes.
        log.tail += kLogRecordSize;
        break;
      case LogFaultInjector::Action::kDuplicateRecord:
        StoreLogRecord(memory_, log.tail, record);
        StoreLogRecord(memory_, log.tail + kLogRecordSize, record);
        log.tail += 2 * kLogRecordSize;
        break;
      case LogFaultInjector::Action::kSkipTailAdvance:
        StoreLogRecord(memory_, log.tail, record);
        break;
    }
    if (entry.prov != 0) {
      // Identity is the post-injector record: MatchToken must find the
      // bytes that actually landed in the segment.
      waterfall_->SetIdentity(entry.prov, record.addr, record.value, record.timestamp);
      waterfall_->Stamp(entry.prov, obs::WaterfallStage::kSegmentAppend, entry.cpu_id,
                        service_free_, 0);
    }
    // The observer report describes the emission the logger believes it
    // performed; an injected fault is visible only through its effects.
    NotifyRetired(RetiredWrite::Kind::kRecord, entry, log_index, tail_before, tail_before,
                  tail_before + kLogRecordSize, &record);
  } else {  // LogMode::kIndexed: just the data values, back to back.
    memory_->Write(log.tail, entry.value, entry.size);
    log.tail += entry.size;
    if (entry.prov != 0) {
      waterfall_->Complete(entry.prov, obs::WaterfallStage::kSegmentAppend, entry.cpu_id,
                           service_free_, 0);
    }
    NotifyRetired(RetiredWrite::Kind::kIndexed, entry, log_index, tail_before, tail_before,
                  log.tail);
  }
  if (PageOffset(log.tail) == 0) {
    log.tail_valid = false;
  }
  return true;
}

void HardwareLogger::NotifyRetired(RetiredWrite::Kind kind, const FifoEntry& entry,
                                   uint32_t log_index, PhysAddr stored_at, PhysAddr tail_before,
                                   PhysAddr tail_after, const LogRecord* record) {
  if (observer_ == nullptr) {
    return;
  }
  RetiredWrite retired;
  retired.kind = kind;
  retired.log_index = log_index;
  retired.write_paddr = entry.paddr;
  retired.value = entry.value;
  retired.size = entry.size;
  retired.cpu_id = entry.cpu_id;
  retired.write_time = entry.time;
  retired.stored_at = stored_at;
  retired.tail_before = tail_before;
  retired.tail_after = tail_after;
  if (record != nullptr) {
    retired.record = *record;
  }
  observer_->OnWriteRetired(retired);
}

Cycles HardwareLogger::SyncDrain(Cycles now) {
  while (!fifo_.empty()) {
    ProcessOne(params_->logger_service_active_cycles, obs::CostCenter::kLogEmit);
  }
  return service_free_ > now ? service_free_ : now;
}

void HardwareLogger::RegisterMetrics(obs::MetricsRegistry* registry) const {
  registry->RegisterCounter("logger.records_logged", &records_logged_);
  registry->RegisterCounter("logger.records_dropped", &records_dropped_);
  registry->RegisterCounter("logger.mapping_faults", &mapping_faults_);
  registry->RegisterCounter("logger.tail_faults", &tail_faults_);
  registry->RegisterCounter("logger.overload_events", &overload_events_);
  registry->RegisterHistogram("logger.overload_drain_cycles", &overload_drain_cycles_);
}

}  // namespace lvm
