// The 16-byte log record the logger DMAs into a log segment (Section 3.1).
//
// Each record describes one memory write: the address written (physical in
// the prototype's bus logger, virtual with the on-chip logger of Section
// 4.6), the datum, its size, and a high-resolution timestamp in 6.25 MHz
// ticks. Records are stored little-endian, packed back to back, earlier
// writes at lower offsets.
#ifndef SRC_LOGGER_LOG_RECORD_H_
#define SRC_LOGGER_LOG_RECORD_H_

#include <cstdint>
#include <cstring>

#include "src/base/types.h"
#include "src/sim/phys_mem.h"

namespace lvm {

// Record flags. The prototype's records carry none; the Section 4.6
// on-chip design has "the option of placing other information in the log
// records (such as the memory data before the write)": a record flagged
// kRecordFlagOldValue holds the *previous* datum of the address and
// immediately precedes the new-value record of the same write.
inline constexpr uint16_t kRecordFlagOldValue = 0x1;

// The record was sampled by the provenance waterfall tracer
// (src/obs/waterfall.h): downstream consumers (replay verification, the
// WAL bridge) recover its in-flight token by identity and stamp their
// stage. Purely observational — replay semantics ignore it.
inline constexpr uint16_t kRecordFlagSampled = 0x2;

struct LogRecord {
  uint32_t addr = 0;
  uint32_t value = 0;
  uint16_t size = 0;
  uint16_t flags = 0;
  // 6.25 MHz timestamp (one tick per four CPU cycles).
  uint32_t timestamp = 0;
};
static_assert(sizeof(LogRecord) == 16, "log records are exactly 16 bytes");

inline constexpr uint32_t kLogRecordSize = sizeof(LogRecord);

// Serializes `record` into simulated memory at `paddr`.
inline void StoreLogRecord(PhysicalMemory* memory, PhysAddr paddr, const LogRecord& record) {
  memory->WriteBlock(paddr, &record, kLogRecordSize);
}

// Deserializes a record from simulated memory at `paddr`.
inline LogRecord LoadLogRecord(const PhysicalMemory& memory, PhysAddr paddr) {
  LogRecord record;
  memory.ReadBlock(paddr, &record, kLogRecordSize);
  return record;
}

}  // namespace lvm

#endif  // SRC_LOGGER_LOG_RECORD_H_
