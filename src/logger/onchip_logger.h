// Next-generation on-chip logger (Section 4.6, Figure 13).
//
// A processor designed to support logging carries a log descriptor table in
// its VM unit: TLB entries are extended with a log index, records carry the
// *virtual* address, per-region logs are directly supported, and overload is
// impossible — the processor simply stalls when record traffic exceeds what
// its write buffers absorb, exactly as rapid write-through does. The cost of
// a logged write approaches an unlogged write plus the bus overhead of the
// record.
//
// The model keeps one kernel-loaded descriptor table per CPU mapping virtual
// pages to log indices (loaded on page faults, cleared on context switch),
// shares the LogTable tail mechanism with the bus logger, and rate-limits
// record emission through a small per-CPU store buffer draining at the
// Table-2 DMA bus rate.
#ifndef SRC_LOGGER_ONCHIP_LOGGER_H_
#define SRC_LOGGER_ONCHIP_LOGGER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/base/types.h"
#include "src/logger/hardware_logger.h"
#include "src/logger/log_record.h"
#include "src/logger/tables.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/bus.h"
#include "src/sim/cpu.h"
#include "src/sim/interfaces.h"
#include "src/sim/params.h"
#include "src/sim/phys_mem.h"

namespace lvm {

class OnChipLogger : public LoggedWriteSink {
 public:
  OnChipLogger(const MachineParams* params, PhysicalMemory* memory, Bus* bus, int num_cpus);

  void set_fault_client(LoggerFaultClient* client) { client_ = client; }
  // Optional trace sink (instant events per emitted record).
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }
  // Optional provenance waterfall (sampled new-value records only; the
  // old-value companion record rides unsampled).
  void set_waterfall(obs::WaterfallTracer* waterfall) { waterfall_ = waterfall; }

  // Section 4.6 extension: also log the memory data *before* each write
  // (an extra record flagged kRecordFlagOldValue preceding the new-value
  // record). Requires the L2 cache for the pre-image read. Enables direct
  // undo-based rollback (LogApplier::UndoVirtual).
  void EnableOldValueCapture(L2Cache* l2) {
    capture_old_values_ = true;
    l2_ = l2;
  }
  bool capture_old_values() const { return capture_old_values_; }

  LogTable& log_table() { return log_table_; }

  // Kernel interface: loads / removes descriptor-table entries mapping a
  // virtual page on `cpu_id` to a log.
  void LoadDescriptor(int cpu_id, VirtAddr vpage, uint32_t log_index);
  void InvalidateDescriptor(int cpu_id, VirtAddr vpage);
  // Context switch: the kernel unloads this CPU's descriptors.
  void ClearCpu(int cpu_id);

  // LoggedWriteSink: called by the CPU for every write to a logged page.
  void OnLoggedWrite(Cpu* cpu, VirtAddr va, PhysAddr paddr, uint32_t value,
                     uint8_t size) override;

  uint64_t records_logged() const { return records_logged_.value(); }
  uint64_t records_dropped() const { return records_dropped_.value(); }
  uint64_t tail_faults() const { return tail_faults_.value(); }

  // Registers the same "logger.*" counter names the bus logger uses, so
  // consumers read one name regardless of the logger variant. Mapping and
  // overload counters do not exist here (overload is impossible, Section
  // 4.6) and are registered as zero-valued owned counters by LvmSystem.
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

 private:
  // Emits one record into `log_index` (tail fault handling, store-buffer
  // rate limiting, DMA). Returns false if the record had to be dropped.
  // `prov` is the record's waterfall token (0 = unsampled).
  bool EmitRecord(Cpu* cpu, uint32_t log_index, LogRecord record, uint64_t prov = 0);

  const MachineParams* params_;
  PhysicalMemory* memory_;
  Bus* bus_;
  LoggerFaultClient* client_ = nullptr;
  L2Cache* l2_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::WaterfallTracer* waterfall_ = nullptr;
  bool capture_old_values_ = false;

  LogTable log_table_;
  // Per-CPU descriptor tables: virtual page number -> log index.
  std::vector<std::unordered_map<uint32_t, uint32_t>> descriptors_;
  // Per-CPU record store buffers: completion times of in-flight records.
  std::vector<std::deque<Cycles>> record_buffers_;

  obs::Counter records_logged_;
  obs::Counter records_dropped_;
  obs::Counter tail_faults_;
};

}  // namespace lvm

#endif  // SRC_LOGGER_ONCHIP_LOGGER_H_
