#include "src/logger/onchip_logger.h"

#include "src/base/check.h"

namespace lvm {

OnChipLogger::OnChipLogger(const MachineParams* params, PhysicalMemory* memory, Bus* bus,
                           int num_cpus)
    : params_(params),
      memory_(memory),
      bus_(bus),
      descriptors_(static_cast<size_t>(num_cpus)),
      record_buffers_(static_cast<size_t>(num_cpus)) {
  LVM_CHECK(num_cpus >= 1);
}

void OnChipLogger::LoadDescriptor(int cpu_id, VirtAddr vpage, uint32_t log_index) {
  descriptors_.at(static_cast<size_t>(cpu_id))[PageNumber(vpage)] = log_index;
}

void OnChipLogger::InvalidateDescriptor(int cpu_id, VirtAddr vpage) {
  descriptors_.at(static_cast<size_t>(cpu_id)).erase(PageNumber(vpage));
}

void OnChipLogger::ClearCpu(int cpu_id) {
  descriptors_.at(static_cast<size_t>(cpu_id)).clear();
}

bool OnChipLogger::EmitRecord(Cpu* cpu, uint32_t log_index, LogRecord record, uint64_t prov) {
  LogTable::Entry& log = log_table_.at(log_index);
  if (!log.tail_valid) {
    tail_faults_.Increment();
    // Synchronous kernel fixup; the fault client charges the CPU cost.
    if (client_ == nullptr || !client_->OnLogTailFault(log_index, cpu->now())) {
      records_dropped_.Increment();
      if (prov != 0) {
        waterfall_->Abandon(prov);
      }
      return false;
    }
    if (!log.tail_valid) {
      records_dropped_.Increment();
      if (prov != 0) {
        waterfall_->Abandon(prov);
      }
      return false;
    }
  }

  // Rate-limit record emission through the CPU's store buffer: the record
  // goes out over the bus at the DMA rate; the processor stalls only when
  // the buffer is full (no FIFOs, no overload interrupts).
  auto& buffer = record_buffers_.at(static_cast<size_t>(cpu->id()));
  while (!buffer.empty() && buffer.front() <= cpu->now()) {
    buffer.pop_front();
  }
  if (buffer.size() >= params_->write_buffer_depth) {
    cpu->AdvanceTo(buffer.front());
    buffer.pop_front();
  }
  if (prov != 0) {
    waterfall_->Stamp(prov, obs::WaterfallStage::kShardEnqueue, cpu->id(), cpu->now(),
                      static_cast<uint32_t>(buffer.size()));
  }
  Cycles grant = bus_->Acquire(cpu->now(), params_->log_record_dma_bus);
  buffer.push_back(grant + params_->log_record_dma_bus);
  if (prov != 0) {
    waterfall_->Stamp(prov, obs::WaterfallStage::kDrain, cpu->id(), grant,
                      static_cast<uint32_t>(buffer.size()));
  }

  if (log.mode == LogMode::kNormal) {
    if (prov != 0) {
      record.flags |= kRecordFlagSampled;
    }
    StoreLogRecord(memory_, log.tail, record);
    log.tail += kLogRecordSize;
    if (prov != 0) {
      waterfall_->SetIdentity(prov, record.addr, record.value, record.timestamp);
      waterfall_->Stamp(prov, obs::WaterfallStage::kSegmentAppend, cpu->id(), cpu->now(), 0);
    }
  } else {
    memory_->Write(log.tail, record.value, static_cast<uint8_t>(record.size));
    log.tail += record.size;
    if (prov != 0) {
      // No record framing: the journey ends at the indexed append.
      waterfall_->Complete(prov, obs::WaterfallStage::kSegmentAppend, cpu->id(), cpu->now(), 0);
    }
  }
  records_logged_.Increment();
  if (trace_ != nullptr) {
    trace_->Instant("logger", "record", static_cast<uint32_t>(cpu->id()), cpu->now(),
                    "log_index", log_index);
  }
  if (PageOffset(log.tail) == 0) {
    log.tail_valid = false;
  }
  return true;
}

void OnChipLogger::OnLoggedWrite(Cpu* cpu, VirtAddr va, PhysAddr paddr, uint32_t value,
                                 uint8_t size) {
  auto& table = descriptors_.at(static_cast<size_t>(cpu->id()));
  auto it = table.find(PageNumber(va));
  if (it == table.end()) {
    // The kernel did not register this page with the on-chip logger.
    records_dropped_.Increment();
    return;
  }
  uint32_t log_index = it->second;
  auto timestamp = static_cast<uint32_t>(cpu->now() / params_->timestamp_divider);

  if (capture_old_values_ && l2_ != nullptr &&
      log_table_.at(log_index).mode == LogMode::kNormal) {
    // Section 4.6 extension: place the memory data before the write in the
    // log. The sink runs before the data store, so the old datum is still
    // readable.
    LogRecord old_record{
        .addr = va,
        .value = l2_->Read(paddr, size),
        .size = size,
        .flags = kRecordFlagOldValue,
        .timestamp = timestamp,
    };
    EmitRecord(cpu, log_index, old_record);
  }

  LogRecord record{
      .addr = va,
      .value = value,
      .size = size,
      .flags = 0,
      .timestamp = timestamp,
  };
  uint64_t prov = 0;
  if (waterfall_ != nullptr) {
    prov = waterfall_->SampleRecord(
        cpu->id(), cpu->now(),
        static_cast<uint32_t>(record_buffers_.at(static_cast<size_t>(cpu->id())).size()));
  }
  EmitRecord(cpu, log_index, record, prov);
}

void OnChipLogger::RegisterMetrics(obs::MetricsRegistry* registry) const {
  registry->RegisterCounter("logger.records_logged", &records_logged_);
  registry->RegisterCounter("logger.records_dropped", &records_dropped_);
  registry->RegisterCounter("logger.tail_faults", &tail_faults_);
}

}  // namespace lvm
