// The bus-snooping hardware logger of the prototype (Section 3.1, Figure 5).
//
// The logger watches the system bus for write operations whose page mapping
// asserts the "logged" bus signal. Captured writes enter the write FIFO;
// when an entry reaches the head, the logger looks up the physical page in
// its direct-mapped page mapping table to find the log index, fetches the
// log's tail address from the log table, and DMAs a 16-byte record into the
// log segment, advancing the tail. A tail that crosses a page boundary is
// invalidated; the next record for that log raises a *logging fault* to the
// kernel, as does a page mapping miss. When FIFO occupancy reaches the
// overload threshold the logger interrupts the kernel, which suspends the
// logging processes until the FIFOs drain (Section 3.1.3).
//
// Timing model: the logger is an asynchronous agent simulated lazily on the
// same cycle clock as the CPUs. While processors run, one record completes
// every MachineParams::logger_service_active_cycles (the FPGA pipeline,
// contended by CPU bus traffic: Section 4.5.3 measures that overload is
// avoided only below one logged write per ~270 cycles). During an overload
// drain the processors are quiesced and records retire at the Table-2 DMA
// rate.
#ifndef SRC_LOGGER_HARDWARE_LOGGER_H_
#define SRC_LOGGER_HARDWARE_LOGGER_H_

#include <cstdint>

#include "src/base/ring_buffer.h"
#include "src/base/types.h"
#include "src/logger/log_record.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/obs/waterfall.h"
#include "src/logger/tables.h"
#include "src/sim/bus.h"
#include "src/sim/interfaces.h"
#include "src/sim/params.h"
#include "src/sim/phys_mem.h"

namespace lvm {

// Kernel-side handling of logger interrupts. Implemented by lvm::LvmSystem.
class LoggerFaultClient {
 public:
  virtual ~LoggerFaultClient() = default;

  // Page mapping table miss for the page containing `paddr`: the kernel
  // loads a mapping (and, if needed, log table) entry. Returns false if the
  // page is not actually logged any more and the record must be dropped.
  virtual bool OnMappingFault(PhysAddr paddr, Cycles time) = 0;

  // Log `log_index` has an invalid tail (just crossed a page boundary): the
  // kernel installs the next frame of the log segment, or the default absorb
  // page. Returns false to drop the record.
  virtual bool OnLogTailFault(uint32_t log_index, Cycles time) = 0;

  // FIFO occupancy reached the threshold at `interrupt_time`. The kernel
  // must suspend every process that may generate log data until
  // `drain_complete` (plus its own interrupt-handling cost).
  virtual void OnOverload(Cycles interrupt_time, Cycles drain_complete) = 0;
};

// How the logger disposed of one retired FIFO entry. Reported to the
// registered LoggerObserver so an external checker (src/check) can
// cross-check the logger, write by write, against the bus traffic it
// snooped. Retire events are reported in FIFO order.
struct RetiredWrite {
  enum class Kind : uint8_t {
    kRecord,        // Normal mode: a 16-byte LogRecord went to the segment.
    kDirectMapped,  // Direct-mapped mode: datum stored at its mirror offset.
    kIndexed,       // Indexed mode: datum appended, no record framing.
    kDropped,       // Dropped: unresolved mapping/tail fault, or the kernel
                    // declared the page no longer logged.
  };
  Kind kind = Kind::kDropped;
  // Log-table index the entry resolved to (undefined for kDropped entries
  // that missed the page mapping table).
  uint32_t log_index = 0;
  // The snooped bus write this FIFO entry came from.
  PhysAddr write_paddr = 0;
  uint32_t value = 0;
  uint8_t size = 0;
  uint8_t cpu_id = 0;
  Cycles write_time = 0;
  // Where the datum landed and how the log tail moved (except kDropped /
  // kDirectMapped, which have no tail).
  PhysAddr stored_at = 0;
  PhysAddr tail_before = 0;
  PhysAddr tail_after = 0;
  // The emitted record (kRecord only).
  LogRecord record;
};

// Observes the logger's retirement pipeline. Implemented by the invariant
// checker; all callbacks fire synchronously from the logger's lazy drain.
class LoggerObserver {
 public:
  virtual ~LoggerObserver() = default;
  virtual void OnWriteRetired(const RetiredWrite& retired) = 0;
  // FIFO occupancy hit the overload threshold and the FIFOs were drained
  // at the DMA rate while the processors were suspended.
  virtual void OnOverloadDrain(Cycles interrupt_time, Cycles drain_complete) {
    (void)interrupt_time;
    (void)drain_complete;
  }
};

// Test-only shim on the normal-mode record emission path: lets the
// fault-injection tests (src/check) seed hardware misbehaviour and prove the
// checker catches it. The injected fault corrupts the DMA itself; the
// logger's own accounting and its observer report believe the emission
// happened normally, exactly as broken hardware would.
class LogFaultInjector {
 public:
  enum class Action : uint8_t {
    kNone,             // Emit normally.
    kDropRecord,       // Store nothing; the tail still advances.
    kDuplicateRecord,  // Store the record twice, advancing the tail twice.
    kSkipTailAdvance,  // Store the record but leave the tail in place.
  };
  virtual ~LogFaultInjector() = default;
  // May mutate `record` (value/size/timestamp corruption) in addition to
  // returning an action.
  virtual Action OnEmit(uint32_t log_index, LogRecord* record) = 0;
};

// Trace track id used for logger-side events; CPU events use the CPU id, so
// any value above the largest CPU count keeps the tracks distinct.
inline constexpr uint32_t kLoggerTraceTid = 64;

class HardwareLogger : public BusSnooper {
 public:
  // `bus` may be null; it is only used when params->dma_contends_bus.
  HardwareLogger(const MachineParams* params, PhysicalMemory* memory, Bus* bus);

  void set_fault_client(LoggerFaultClient* client) { client_ = client; }
  void set_observer(LoggerObserver* observer) { observer_ = observer; }
  void set_fault_injector(LogFaultInjector* injector) { injector_ = injector; }
  // Optional trace sink; when unset (or disabled) the write path performs no
  // tracing work beyond a null/flag check.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }
  // Optional cycle-attribution profiler: service cycles charge `lane`
  // (the dedicated logger lane, exempt from CPU-clock conservation since
  // the service pipeline is not a single monotonic clock).
  void set_profiler(obs::Profiler* profiler, int lane) {
    profiler_ = profiler;
    prof_lane_ = lane;
  }
  // Optional provenance waterfall: sampled writes carry a token from FIFO
  // entry to record emission (stage stamps never advance simulated time).
  void set_waterfall(obs::WaterfallTracer* waterfall) { waterfall_ = waterfall; }

  PageMappingTable& page_mapping_table() { return page_mapping_table_; }
  LogTable& log_table() { return log_table_; }

  // BusSnooper: captures logged writes into the write FIFO.
  void OnBusWrite(PhysAddr paddr, uint32_t value, uint8_t size, bool logged, Cycles time,
                  int cpu_id) override;

  // Processes every pending FIFO entry at the running-system rate and
  // returns the completion time (>= `now`). Applications use this through
  // LvmSystem to synchronize with the end of the log before reading it.
  Cycles SyncDrain(Cycles now);

  // --- statistics ---
  uint64_t records_logged() const { return records_logged_.value(); }
  uint64_t records_dropped() const { return records_dropped_.value(); }
  uint64_t mapping_faults() const { return mapping_faults_.value(); }
  uint64_t tail_faults() const { return tail_faults_.value(); }
  uint64_t overload_events() const { return overload_events_.value(); }
  size_t fifo_occupancy() const { return fifo_.size(); }

  // Registers the logger's counters (plus the overload-drain histogram)
  // under "logger.*". The registry must not outlive this logger.
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct FifoEntry {
    PhysAddr paddr = 0;
    uint32_t value = 0;
    uint8_t size = 0;
    // Writing processor, for per-processor logs (Section 3.1.2 extension).
    uint8_t cpu_id = 0;
    Cycles time = 0;
    // Waterfall provenance token (0 = unsampled).
    uint64_t prov = 0;
  };

  // Retires FIFO entries whose service completes by `time`.
  void DrainUpTo(Cycles time);
  // Retires the head entry with the given per-record service time,
  // attributing it to `center` (steady-state emit vs overload drain).
  void ProcessOne(uint32_t service_cycles, obs::CostCenter center);
  void ChargeProf(obs::CostCenter center, Cycles cycles) {
    if (profiler_ != nullptr) {
      profiler_->Charge(prof_lane_, center, cycles);
    }
  }
  // Emits the record for `entry` according to its log's mode. Returns false
  // if the record had to be dropped.
  bool EmitRecord(const FifoEntry& entry);

  // Reports the disposal of `entry` to the observer, if any.
  void NotifyRetired(RetiredWrite::Kind kind, const FifoEntry& entry, uint32_t log_index,
                     PhysAddr stored_at, PhysAddr tail_before, PhysAddr tail_after,
                     const LogRecord* record = nullptr);

  const MachineParams* params_;
  PhysicalMemory* memory_;
  Bus* bus_;
  LoggerFaultClient* client_ = nullptr;
  LoggerObserver* observer_ = nullptr;
  LogFaultInjector* injector_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  int prof_lane_ = 0;
  obs::WaterfallTracer* waterfall_ = nullptr;

  PageMappingTable page_mapping_table_;
  LogTable log_table_;
  RingBuffer<FifoEntry> fifo_;
  // Time at which the logger pipeline is free.
  Cycles service_free_ = 0;

  obs::Counter records_logged_;
  obs::Counter records_dropped_;
  obs::Counter mapping_faults_;
  obs::Counter tail_faults_;
  obs::Counter overload_events_;
  obs::Histogram overload_drain_cycles_;
};

}  // namespace lvm

#endif  // SRC_LOGGER_HARDWARE_LOGGER_H_
