// The global lock order (DESIGN.md §16).
//
// Every long-lived mutex in the system is assigned a rank here, and locks
// may only be acquired in strictly ascending rank order. The table is the
// single source of truth three enforcement layers share:
//
//   - lvm-analyze reads this header lexically: the ORDER OF DECLARATION of
//     the kRank* constants below is the declared total order, and any
//     statically discovered lock-order edge that runs against it is a
//     lock-decl finding. Keep the constants sorted by value.
//   - The runtime LockOrderWitness (src/base/lock_witness.h) records each
//     named Mutex's rank at acquisition and flags out-of-order acquisition
//     on real executions.
//   - Clang's -Wthread-safety (when LVM_THREAD_SAFETY=ON) checks the
//     LVM_ACQUIRED_AFTER annotations on the mutex declarations, which name
//     the LockLevel anchors below.
//
// Adding a lock: pick the position its acquisition context dictates, insert
// a kRank* constant (renumber freely — only the order matters, and gaps
// leave room), add a LockLevel anchor, and construct the Mutex as
// `Mutex mu_{"Class::mu_", lockorder::kRankX}` with the canonical
// <Class>::<member> id lvm-analyze derives — the witness cross-check test
// fails on any drift.
#ifndef SRC_BASE_LOCK_ORDER_H_
#define SRC_BASE_LOCK_ORDER_H_

#include "src/base/thread_annotations.h"

namespace lvm {
namespace lockorder {

// Ranks, ascending == outermost first. ParallelEngine::mu_ is the root: it
// is held while draining shards, parking workers, and running barriers, so
// everything else must nest inside it.
inline constexpr int kRankParEngine = 10;    // ParallelEngine::mu_
inline constexpr int kRankLogRegistry = 20;  // LvmSystem::log_registry_mu_
inline constexpr int kRankWalRegion = 30;    // DurableTransactionalRegion::mu_
inline constexpr int kRankRaceStripe = 40;   // RaceDetector::Stripe::mu
inline constexpr int kRankRaceSync = 50;     // RaceDetector::sync_mu_
inline constexpr int kRankRaceReport = 60;   // RaceDetector::report_mu_
inline constexpr int kRankRaceTrail = 70;    // RaceDetector::CpuState::trail_mu
inline constexpr int kRankMetrics = 80;      // MetricsRegistry::mu_
inline constexpr int kRankWaterfall = 85;    // WaterfallTracer::mu_
inline constexpr int kRankFlightRing = 90;   // FlightRecorder::Ring::mu
inline constexpr int kRankL2Stripe = 100;    // L2Cache::Stripe::mu
inline constexpr int kRankFrame = 110;       // FrameAllocator::mu_

// Anchors for the clang thread-safety analysis. A mutex declared
// LVM_ACQUIRED_AFTER(lockorder::kLevel<X>) may only be acquired while no
// lock of level <X> or later is wanted first; chaining each level after its
// predecessor encodes the same total order as the ranks above.
class LVM_CAPABILITY("lock_order") LockLevel {
 public:
  constexpr LockLevel() = default;
  LockLevel(const LockLevel&) = delete;
  LockLevel& operator=(const LockLevel&) = delete;
};

inline constexpr LockLevel kLevelParEngine;
inline constexpr LockLevel kLevelLogRegistry;
inline constexpr LockLevel kLevelWalRegion;
inline constexpr LockLevel kLevelRaceStripe;
inline constexpr LockLevel kLevelRaceSync;
inline constexpr LockLevel kLevelRaceReport;
inline constexpr LockLevel kLevelRaceTrail;
inline constexpr LockLevel kLevelMetrics;
inline constexpr LockLevel kLevelWaterfall;
inline constexpr LockLevel kLevelFlightRing;
inline constexpr LockLevel kLevelL2Stripe;
inline constexpr LockLevel kLevelFrame;

}  // namespace lockorder
}  // namespace lvm

#endif  // SRC_BASE_LOCK_ORDER_H_
