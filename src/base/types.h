// Fundamental types shared across the LVM libraries.
//
// The simulated machine reproduces the ParaDiGM prototype of the paper: a
// 32-bit physical/virtual address space with 4-kilobyte pages and 16-byte
// cache lines. Cycle counts are 64-bit so long benchmark runs cannot
// overflow.
#ifndef SRC_BASE_TYPES_H_
#define SRC_BASE_TYPES_H_

#include <cstdint>

namespace lvm {

// Virtual address within one address space.
using VirtAddr = uint32_t;
// Physical memory address.
using PhysAddr = uint32_t;
// Simulated machine time, in CPU cycles (40 ns at the prototype's 25 MHz).
using Cycles = uint64_t;

inline constexpr uint32_t kPageShift = 12;
inline constexpr uint32_t kPageSize = 1u << kPageShift;  // 4 KB, as the prototype.
inline constexpr uint32_t kPageOffsetMask = kPageSize - 1;

inline constexpr uint32_t kLineShift = 4;
inline constexpr uint32_t kLineSize = 1u << kLineShift;  // 16-byte cache lines.
inline constexpr uint32_t kLineOffsetMask = kLineSize - 1;
inline constexpr uint32_t kLinesPerPage = kPageSize / kLineSize;

// Page number of an address (virtual or physical).
constexpr uint32_t PageNumber(uint32_t addr) { return addr >> kPageShift; }
// Address of the start of the page containing `addr`.
constexpr uint32_t PageBase(uint32_t addr) { return addr & ~kPageOffsetMask; }
// Offset of `addr` within its page.
constexpr uint32_t PageOffset(uint32_t addr) { return addr & kPageOffsetMask; }
// Address of the start of the cache line containing `addr`.
constexpr uint32_t LineBase(uint32_t addr) { return addr & ~kLineOffsetMask; }
// Index of the cache line within its page.
constexpr uint32_t LineIndexInPage(uint32_t addr) {
  return (addr & kPageOffsetMask) >> kLineShift;
}

// Rounds `value` up to the next multiple of `alignment` (a power of two).
constexpr uint32_t AlignUp(uint32_t value, uint32_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

}  // namespace lvm

#endif  // SRC_BASE_TYPES_H_
