// Fixed-capacity FIFO ring buffer.
//
// Models the hardware FIFOs of the bus logger (write FIFO and log-record
// FIFO): bounded, no allocation after construction, strict FIFO order.
//
// Mutation is single-threaded, but size() is an atomic read so an occupancy
// gauge (LvmSystem's "logger.fifo_occupancy" callback) can be snapshotted
// from another thread without tearing. For a cross-thread producer/consumer
// queue use par::SpscRing instead.
#ifndef SRC_BASE_RING_BUFFER_H_
#define SRC_BASE_RING_BUFFER_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/base/check.h"

namespace lvm {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(size_t capacity) : slots_(capacity) { LVM_CHECK(capacity > 0); }

  size_t capacity() const { return slots_.size(); }
  size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }
  bool full() const { return size() == slots_.size(); }

  // Appends an element. The buffer must not be full.
  void Push(T value) {
    LVM_CHECK_MSG(!full(), "RingBuffer overflow");
    slots_[(head_ + size()) % slots_.size()] = std::move(value);
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  // Returns the oldest element without removing it.
  const T& Front() const {
    LVM_CHECK_MSG(!empty(), "RingBuffer underflow");
    return slots_[head_];
  }

  // Removes and returns the oldest element.
  T Pop() {
    LVM_CHECK_MSG(!empty(), "RingBuffer underflow");
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    size_.fetch_sub(1, std::memory_order_relaxed);
    return value;
  }

  void Clear() {
    head_ = 0;
    size_.store(0, std::memory_order_relaxed);
  }

 private:
  std::vector<T> slots_;
  size_t head_ = 0;
  std::atomic<size_t> size_{0};
};

}  // namespace lvm

#endif  // SRC_BASE_RING_BUFFER_H_
