// Runtime lock-order witness (DESIGN.md §16).
//
// The dynamic counterpart to lvm-analyze's static lock-order graph: when
// enabled, every named Mutex acquisition is pushed on a per-thread stack,
// and each (held, acquired) pair of named locks becomes an edge in a
// process-wide graph. A test then asserts containment — every edge the
// witness observed under real concurrency must appear in the static graph,
// proving the analyzer's call-resolution heuristics did not miss a path —
// and that no acquisition ran against the declared rank order
// (src/base/lock_order.h).
//
// Disabled (the default) the witness costs one relaxed atomic load and a
// predicted-untaken branch per Lock/Unlock; nothing is recorded. Enable()
// is meant for tests and diagnostics, not steady-state production.
//
// TryLock acquisitions are pushed on the stack (their outgoing edges are
// real ordering constraints) but record no incoming edge and no rank
// violation: TryLock is the sanctioned out-of-order primitive — crash-time
// best-effort paths use it precisely because it cannot deadlock.
#ifndef SRC_BASE_LOCK_WITNESS_H_
#define SRC_BASE_LOCK_WITNESS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lvm {

class LockOrderWitness {
 public:
  struct Edge {
    std::string from;
    std::string to;
    uint64_t count = 0;
  };
  struct Violation {
    std::string held;      // The lock whose rank should have come later.
    std::string acquired;  // The lock acquired against the order.
    uint64_t count = 0;
  };
  struct NamedLock {
    std::string name;
    int rank = 0;
  };

  static void Enable();
  static void Disable();
  static bool enabled();

  // Drops every recorded edge, violation, and lock (not the enabled flag).
  static void Reset();

  // Hooks called by Mutex; `name` is nullptr for anonymous mutexes, which
  // participate in the held stack but never in the graph.
  static void OnAcquire(const void* mu, const char* name, int rank, bool is_try);
  static void OnRelease(const void* mu);

  static std::vector<NamedLock> Locks();
  static std::vector<Edge> Edges();
  static std::vector<Violation> Violations();

  // The observed graph as a strict-JSON lvm.lockgraph.v1 document with
  // source "witness" — the same schema lvm-analyze emits for the static
  // graph, so the two are directly comparable.
  static std::string LockGraphJson();
};

}  // namespace lvm

#endif  // SRC_BASE_LOCK_WITNESS_H_
