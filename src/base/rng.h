// Deterministic pseudo-random number generator (splitmix64 / xoshiro-style).
//
// All stochastic workloads in the benchmarks use this generator with fixed
// seeds so every experiment is exactly reproducible run to run.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cmath>
#include <cstdint>

namespace lvm {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed != 0 ? seed : 0x9e3779b97f4a7c15ull) {}

  // Next raw 64-bit value (splitmix64).
  uint64_t Next64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). `bound` must be nonzero.
  uint64_t Uniform(uint64_t bound) { return Next64() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next64() >> 11) * 0x1.0p-53; }

  // Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  // Exponentially distributed value with the given mean (for event
  // inter-arrival times in the Time Warp workloads).
  double Exponential(double mean) { return -mean * std::log1p(-NextDouble()); }

 private:
  uint64_t state_;
};

}  // namespace lvm

#endif  // SRC_BASE_RNG_H_
