// Lightweight assertion macros for invariant checking.
//
// CHECK is always on; DCHECK compiles out in NDEBUG builds. Failures print the
// condition and location and abort. These are for programming errors only;
// recoverable conditions use explicit status returns.
#ifndef SRC_BASE_CHECK_H_
#define SRC_BASE_CHECK_H_

namespace lvm {

// Prints a failure message and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* condition, const char* file, int line,
                              const char* message);

// Hook invoked once, after the failure message but before abort(), on the
// first CHECK failure — the black-box dumper installs one. The hook runs in
// regular (not async-signal) context; a CHECK failing inside the hook does
// not re-enter it. Returns the previously installed hook (nullptr if none).
using CheckFailureHook = void (*)();
CheckFailureHook SetCheckFailureHook(CheckFailureHook hook);

}  // namespace lvm

#define LVM_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) {                                             \
      ::lvm::CheckFailed(#cond, __FILE__, __LINE__, nullptr);  \
    }                                                          \
  } while (0)

#define LVM_CHECK_MSG(cond, msg)                            \
  do {                                                      \
    if (!(cond)) {                                          \
      ::lvm::CheckFailed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                       \
  } while (0)

#ifdef NDEBUG
#define LVM_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define LVM_DCHECK(cond) LVM_CHECK(cond)
#endif

#endif  // SRC_BASE_CHECK_H_
