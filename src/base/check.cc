#include "src/base/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace lvm {

namespace {
std::atomic<CheckFailureHook> g_failure_hook{nullptr};
std::atomic<bool> g_in_failure_hook{false};
}  // namespace

CheckFailureHook SetCheckFailureHook(CheckFailureHook hook) {
  return g_failure_hook.exchange(hook);
}

void CheckFailed(const char* condition, const char* file, int line, const char* message) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", condition, file, line,
               message != nullptr ? ": " : "", message != nullptr ? message : "");
  std::fflush(stderr);
  CheckFailureHook hook = g_failure_hook.load();
  if (hook != nullptr && !g_in_failure_hook.exchange(true)) {
    hook();
  }
  std::abort();
}

}  // namespace lvm
