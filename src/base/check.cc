#include "src/base/check.h"

#include <cstdio>
#include <cstdlib>

namespace lvm {

void CheckFailed(const char* condition, const char* file, int line, const char* message) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", condition, file, line,
               message != nullptr ? ": " : "", message != nullptr ? message : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace lvm
