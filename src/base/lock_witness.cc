#include "src/base/lock_witness.h"

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <utility>

#include "src/obs/schema_ids.h"

namespace lvm {

namespace {

std::atomic<bool> g_enabled{false};

struct HeldLock {
  const void* mu = nullptr;
  const char* name = nullptr;
  int rank = 0;
};

// The per-thread acquisition stack. A plain vector: depth is tiny (the rank
// table is ~a dozen locks) and pops are almost always from the back.
thread_local std::vector<HeldLock> t_held;

// Process-wide graph state. A std::mutex, deliberately not lvm::Mutex: the
// witness must not recurse into itself.
std::mutex& GraphMu() {
  static std::mutex mu;
  return mu;
}

struct Graph {
  std::map<std::string, int> locks;                               // name -> rank
  std::map<std::pair<std::string, std::string>, uint64_t> edges;  // (from, to)
  std::map<std::pair<std::string, std::string>, uint64_t> violations;
};

Graph& TheGraph() {
  static Graph* graph = new Graph;  // Leaked: usable during static teardown.
  return *graph;
}

// Minimal strict-JSON string emitter (lock names are identifiers, but stay
// correct for arbitrary bytes). Local so lvm_base does not depend on the
// obs JSON library.
void AppendJson(std::string* out, const std::string& text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void LockOrderWitness::Enable() { g_enabled.store(true, std::memory_order_relaxed); }
void LockOrderWitness::Disable() { g_enabled.store(false, std::memory_order_relaxed); }
bool LockOrderWitness::enabled() { return g_enabled.load(std::memory_order_relaxed); }

void LockOrderWitness::Reset() {
  std::lock_guard<std::mutex> lk(GraphMu());
  TheGraph().locks.clear();
  TheGraph().edges.clear();
  TheGraph().violations.clear();
}

void LockOrderWitness::OnAcquire(const void* mu, const char* name, int rank, bool is_try) {
  if (name != nullptr) {
    std::lock_guard<std::mutex> lk(GraphMu());
    Graph& graph = TheGraph();
    graph.locks.emplace(name, rank);
    for (const HeldLock& held : t_held) {
      if (held.name == nullptr) {
        continue;
      }
      if (!is_try) {
        ++graph.edges[{held.name, name}];
        // Equal ranks are a violation too: two locks that can be held
        // together must be strictly ordered.
        if (held.rank > 0 && rank > 0 && held.rank >= rank) {
          ++graph.violations[{held.name, name}];
        }
      }
    }
  }
  t_held.push_back(HeldLock{mu, name, rank});
}

void LockOrderWitness::OnRelease(const void* mu) {
  for (size_t i = t_held.size(); i-- > 0;) {
    if (t_held[i].mu == mu) {
      t_held.erase(t_held.begin() + static_cast<long>(i));
      return;
    }
  }
}

std::vector<LockOrderWitness::NamedLock> LockOrderWitness::Locks() {
  std::lock_guard<std::mutex> lk(GraphMu());
  std::vector<NamedLock> out;
  for (const auto& [name, rank] : TheGraph().locks) {
    out.push_back(NamedLock{name, rank});
  }
  return out;
}

std::vector<LockOrderWitness::Edge> LockOrderWitness::Edges() {
  std::lock_guard<std::mutex> lk(GraphMu());
  std::vector<Edge> out;
  for (const auto& [key, count] : TheGraph().edges) {
    out.push_back(Edge{key.first, key.second, count});
  }
  return out;
}

std::vector<LockOrderWitness::Violation> LockOrderWitness::Violations() {
  std::lock_guard<std::mutex> lk(GraphMu());
  std::vector<Violation> out;
  for (const auto& [key, count] : TheGraph().violations) {
    out.push_back(Violation{key.first, key.second, count});
  }
  return out;
}

std::string LockOrderWitness::LockGraphJson() {
  std::string out = "{\"schema\":\"";
  out += obs::kLockGraphSchema;
  out += "\",\"source\":\"witness\",\"locks\":[";
  bool first = true;
  for (const NamedLock& lock : Locks()) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":";
    AppendJson(&out, lock.name);
    out += ",\"rank\":" + std::to_string(lock.rank) + "}";
  }
  out += "],\"edges\":[";
  first = true;
  for (const Edge& edge : Edges()) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"from\":";
    AppendJson(&out, edge.from);
    out += ",\"to\":";
    AppendJson(&out, edge.to);
    out += ",\"count\":" + std::to_string(edge.count) + "}";
  }
  out += "],\"violations\":[";
  first = true;
  for (const Violation& v : Violations()) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"held\":";
    AppendJson(&out, v.held);
    out += ",\"acquired\":";
    AppendJson(&out, v.acquired);
    out += ",\"count\":" + std::to_string(v.count) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace lvm
