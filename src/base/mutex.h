// Annotated mutex primitives for the thread-safety analysis (DESIGN.md §13).
//
// std::mutex carries no capability attributes (libstdc++ ships none), so
// Clang's -Wthread-safety cannot see through std::lock_guard/std::unique_lock.
// These thin wrappers add zero runtime cost — every method is an inline
// forward to the std primitive — and give the analysis the ACQUIRE/RELEASE
// vocabulary it needs:
//
//   Mutex      an exclusive capability (LVM_CAPABILITY)
//   MutexLock  std::lock_guard with a scoped-capability contract
//   CondVar    std::condition_variable bound to Mutex; Wait() REQUIRES the
//              mutex, so "while (!cond) cv.Wait(mu);" keeps the condition
//              reads inside the capability — predicate lambdas (which the
//              analysis cannot attribute) are deliberately not offered.
#ifndef SRC_BASE_MUTEX_H_
#define SRC_BASE_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/base/lock_witness.h"
#include "src/base/thread_annotations.h"

namespace lvm {

class LVM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  // A named, ranked mutex participating in the lock-order discipline:
  // `name` must be the canonical <Class>::<member> id lvm-analyze derives
  // for this declaration, `rank` a lockorder::kRank* constant
  // (src/base/lock_order.h). The LockOrderWitness records acquisition
  // edges and rank violations for named mutexes when enabled.
  Mutex(const char* name, int rank) : name_(name), rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LVM_ACQUIRE() {
    mu_.lock();
    if (LockOrderWitness::enabled()) {
      LockOrderWitness::OnAcquire(this, name_, rank_, /*is_try=*/false);
    }
  }
  void Unlock() LVM_RELEASE() {
    if (LockOrderWitness::enabled()) {
      LockOrderWitness::OnRelease(this);
    }
    mu_.unlock();
  }
  // Returns true (holding the lock) or false (not holding it); callers on
  // crash-time best-effort paths use this to avoid self-deadlock.
  bool TryLock() LVM_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
    if (LockOrderWitness::enabled()) {
      LockOrderWitness::OnAcquire(this, name_, rank_, /*is_try=*/true);
    }
    return true;
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_ = nullptr;
  int rank_ = 0;
};

// RAII lock for one scope, like std::lock_guard.
class LVM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LVM_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() LVM_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu` and blocks; re-acquires before returning. The
  // adopt/release dance keeps std::condition_variable's unique_lock contract
  // without ever double-locking — invisible to the analysis, hence the
  // escape, but the REQUIRES contract keeps every caller honest.
  void Wait(Mutex& mu) LVM_REQUIRES(mu) LVM_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lvm

#endif  // SRC_BASE_MUTEX_H_
