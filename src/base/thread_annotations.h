// Clang thread-safety-analysis annotations (DESIGN.md §13).
//
// These macros expand to Clang's capability attributes under a compiler that
// understands them and to nothing elsewhere, so GCC builds are unaffected and
// a Clang build with -Wthread-safety (CMake option LVM_THREAD_SAFETY, the CI
// staticcheck job) proves at compile time that every access to an annotated
// field happens with the right lock held.
//
// Conventions:
//   - every std::mutex-protected structure uses lvm::Mutex (src/base/mutex.h),
//     the annotated wrapper; fields it protects carry LVM_GUARDED_BY(mu);
//   - private helpers called with a lock already held carry LVM_REQUIRES(mu)
//     instead of re-locking;
//   - the rare deliberate escapes (crash-time best-effort TryLock snapshots,
//     conditional stripe guards) carry LVM_NO_THREAD_SAFETY_ANALYSIS plus a
//     comment explaining why the analysis cannot follow them.
#ifndef SRC_BASE_THREAD_ANNOTATIONS_H_
#define SRC_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define LVM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LVM_THREAD_ANNOTATION(x)  // no-op
#endif

// Type attributes: a class that is a lockable capability, and an RAII type
// whose lifetime acquires/releases one.
#define LVM_CAPABILITY(x) LVM_THREAD_ANNOTATION(capability(x))
#define LVM_SCOPED_CAPABILITY LVM_THREAD_ANNOTATION(scoped_lockable)

// Data members: readable/writable only with the given capability held.
#define LVM_GUARDED_BY(x) LVM_THREAD_ANNOTATION(guarded_by(x))
#define LVM_PT_GUARDED_BY(x) LVM_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering declarations between capabilities.
#define LVM_ACQUIRED_BEFORE(...) LVM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define LVM_ACQUIRED_AFTER(...) LVM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function contracts: the caller must hold / must not hold, the function
// acquires / releases, or conditionally acquires (TryLock).
#define LVM_REQUIRES(...) LVM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define LVM_REQUIRES_SHARED(...) \
  LVM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define LVM_ACQUIRE(...) LVM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LVM_ACQUIRE_SHARED(...) LVM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define LVM_RELEASE(...) LVM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define LVM_RELEASE_SHARED(...) LVM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define LVM_TRY_ACQUIRE(...) LVM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define LVM_EXCLUDES(...) LVM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define LVM_ASSERT_CAPABILITY(x) LVM_THREAD_ANNOTATION(assert_capability(x))
#define LVM_RETURN_CAPABILITY(x) LVM_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: the function manipulates locks in a way the static analysis
// cannot follow (conditional locking, adopt/release hand-offs). Always pair
// with a comment justifying the escape.
#define LVM_NO_THREAD_SAFETY_ANALYSIS LVM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SRC_BASE_THREAD_ANNOTATIONS_H_
