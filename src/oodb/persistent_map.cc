#include "src/oodb/persistent_map.h"

#include "src/base/check.h"

namespace lvm {

PersistentMap::PersistentMap(ObjectStore* store, std::string_view root_name, uint32_t buckets)
    : store_(store) {
  table_ = store->GetRoot(root_name);
  if (table_ == kNullRef) {
    store->Begin();
    table_ = store->Allocate(4 * (2 + buckets), kTypeTable);
    store->WriteField(table_, 0, buckets);
    store->WriteField(table_, 1, 0);
    for (uint32_t i = 0; i < buckets; ++i) {
      store->WriteField(table_, 2 + i, kNullRef);
    }
    store->SetRoot(root_name, table_);
    store->Commit();
  }
  LVM_CHECK_MSG(store->TypeOf(table_) == kTypeTable, "root is not a map");
}

uint32_t PersistentMap::buckets() { return store_->ReadField(table_, 0); }
uint32_t PersistentMap::size() { return store_->ReadField(table_, 1); }

uint32_t PersistentMap::BucketOf(uint32_t key) {
  uint32_t hash = key * 2654435761u;
  return 2 + (hash % buckets());
}

void PersistentMap::Put(uint32_t key, uint32_t value) {
  uint32_t bucket = BucketOf(key);
  for (ObjRef node = store_->ReadField(table_, bucket); node != kNullRef;
       node = store_->ReadField(node, 2)) {
    if (store_->ReadField(node, 0) == key) {
      store_->WriteField(node, 1, value);
      return;
    }
  }
  ObjRef node = store_->Allocate(12, kTypeNode);
  store_->WriteField(node, 0, key);
  store_->WriteField(node, 1, value);
  store_->WriteField(node, 2, store_->ReadField(table_, bucket));
  store_->WriteField(table_, bucket, node);
  store_->WriteField(table_, 1, size() + 1);
}

bool PersistentMap::Get(uint32_t key, uint32_t* value_out) {
  for (ObjRef node = store_->ReadField(table_, BucketOf(key)); node != kNullRef;
       node = store_->ReadField(node, 2)) {
    if (store_->ReadField(node, 0) == key) {
      *value_out = store_->ReadField(node, 1);
      return true;
    }
  }
  return false;
}

bool PersistentMap::Remove(uint32_t key) {
  uint32_t bucket = BucketOf(key);
  ObjRef prev = kNullRef;
  for (ObjRef node = store_->ReadField(table_, bucket); node != kNullRef;
       node = store_->ReadField(node, 2)) {
    if (store_->ReadField(node, 0) == key) {
      ObjRef next = store_->ReadField(node, 2);
      if (prev == kNullRef) {
        store_->WriteField(table_, bucket, next);
      } else {
        store_->WriteField(prev, 2, next);
      }
      store_->Free(node);
      store_->WriteField(table_, 1, size() - 1);
      return true;
    }
    prev = node;
  }
  return false;
}

}  // namespace lvm
