#include "src/oodb/persistent_queue.h"

#include "src/base/check.h"

namespace lvm {

PersistentQueue::PersistentQueue(ObjectStore* store, std::string_view root_name)
    : store_(store) {
  descriptor_ = store->GetRoot(root_name);
  if (descriptor_ == kNullRef) {
    store->Begin();
    descriptor_ = store->Allocate(20, kTypeDescriptor);
    ObjRef chunk = NewChunk();
    store->WriteField(descriptor_, 0, 0);      // Size.
    store->WriteField(descriptor_, 1, chunk);  // Head chunk.
    store->WriteField(descriptor_, 2, 0);      // Head index.
    store->WriteField(descriptor_, 3, chunk);  // Tail chunk.
    store->WriteField(descriptor_, 4, 0);      // Tail index.
    store->SetRoot(root_name, descriptor_);
    store->Commit();
  }
  LVM_CHECK_MSG(store->TypeOf(descriptor_) == kTypeDescriptor, "root is not a queue");
}

ObjRef PersistentQueue::NewChunk() {
  ObjRef chunk = store_->Allocate(4 * (1 + kChunkSlots), kTypeChunk);
  store_->WriteField(chunk, 0, kNullRef);
  return chunk;
}

uint32_t PersistentQueue::size() { return store_->ReadField(descriptor_, 0); }

void PersistentQueue::Enqueue(uint32_t value) {
  ObjRef tail_chunk = store_->ReadField(descriptor_, 3);
  uint32_t tail_index = store_->ReadField(descriptor_, 4);
  if (tail_index == kChunkSlots) {
    ObjRef fresh = NewChunk();
    store_->WriteField(tail_chunk, 0, fresh);
    store_->WriteField(descriptor_, 3, fresh);
    store_->WriteField(descriptor_, 4, 0);
    tail_chunk = fresh;
    tail_index = 0;
  }
  store_->WriteField(tail_chunk, 1 + tail_index, value);
  store_->WriteField(descriptor_, 4, tail_index + 1);
  store_->WriteField(descriptor_, 0, size() + 1);
}

bool PersistentQueue::Peek(uint32_t* value_out) {
  if (size() == 0) {
    return false;
  }
  ObjRef head_chunk = store_->ReadField(descriptor_, 1);
  uint32_t head_index = store_->ReadField(descriptor_, 2);
  *value_out = store_->ReadField(head_chunk, 1 + head_index);
  return true;
}

bool PersistentQueue::Dequeue(uint32_t* value_out) {
  if (!Peek(value_out)) {
    return false;
  }
  ObjRef head_chunk = store_->ReadField(descriptor_, 1);
  uint32_t head_index = store_->ReadField(descriptor_, 2) + 1;
  if (head_index == kChunkSlots) {
    // The head chunk is spent; advance to the next (the tail stays put if
    // this was also the tail and the queue is now empty — re-point both).
    ObjRef next = store_->ReadField(head_chunk, 0);
    if (next == kNullRef) {
      next = head_chunk;  // Reuse in place: the queue is empty.
      store_->WriteField(descriptor_, 3, head_chunk);
      store_->WriteField(descriptor_, 4, 0);
    } else {
      store_->Free(head_chunk);
    }
    store_->WriteField(descriptor_, 1, next);
    store_->WriteField(descriptor_, 2, 0);
  } else {
    store_->WriteField(descriptor_, 2, head_index);
  }
  store_->WriteField(descriptor_, 0, size() - 1);
  return true;
}

}  // namespace lvm
