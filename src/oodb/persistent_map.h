// A persistent hash map built from ObjectStore objects: chained buckets of
// {key, value, next} nodes, entirely in recoverable memory. Insertions,
// updates and removals are transactional — an abort rolls back the node
// allocations, link updates and values together, with no undo code.
//
// This is the paper's OODB pitch in miniature: a pointer-based data
// structure manipulated like ordinary memory, made atomic and recoverable
// by the VM system.
#ifndef SRC_OODB_PERSISTENT_MAP_H_
#define SRC_OODB_PERSISTENT_MAP_H_

#include <cstdint>
#include <string_view>

#include "src/oodb/object_store.h"

namespace lvm {

class PersistentMap {
 public:
  static constexpr uint32_t kTypeTable = 0x7ab1e;
  static constexpr uint32_t kTypeNode = 0x0de;

  // Opens the map named `root_name`, creating it (with `buckets` chains)
  // inside its own transaction if absent.
  PersistentMap(ObjectStore* store, std::string_view root_name, uint32_t buckets = 16);

  // Inserts or updates (within a caller transaction).
  void Put(uint32_t key, uint32_t value);
  // Looks a key up; false if absent.
  bool Get(uint32_t key, uint32_t* value_out);
  // Removes a key (node returns to the free list); false if absent.
  bool Remove(uint32_t key);

  uint32_t size();
  uint32_t buckets();

 private:
  // Table payload: [0] buckets, [1] size, [2..] bucket heads.
  // Node payload: [0] key, [1] value, [2] next ref.
  uint32_t BucketOf(uint32_t key);

  ObjectStore* store_;
  ObjRef table_ = kNullRef;
};

}  // namespace lvm

#endif  // SRC_OODB_PERSISTENT_MAP_H_
