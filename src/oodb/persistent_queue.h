// A persistent FIFO queue of word values: a linked list of chunk objects
// threaded through the ObjectStore, with head/tail cursors in a descriptor
// object. Enqueues and dequeues are transactional like everything else in
// the heap — an aborted dequeue puts the element logically back.
#ifndef SRC_OODB_PERSISTENT_QUEUE_H_
#define SRC_OODB_PERSISTENT_QUEUE_H_

#include <cstdint>
#include <string_view>

#include "src/oodb/object_store.h"

namespace lvm {

class PersistentQueue {
 public:
  static constexpr uint32_t kTypeDescriptor = 0x01fe;
  static constexpr uint32_t kTypeChunk = 0xc4;
  // Values per chunk.
  static constexpr uint32_t kChunkSlots = 14;

  // Opens the queue named `root_name`, creating it if absent.
  PersistentQueue(ObjectStore* store, std::string_view root_name);

  // Appends a value (within a caller transaction).
  void Enqueue(uint32_t value);
  // Removes the oldest value; false if empty.
  bool Dequeue(uint32_t* value_out);
  // Oldest value without removing it; false if empty.
  bool Peek(uint32_t* value_out);

  uint32_t size();

 private:
  // Descriptor payload: [0] size, [1] head chunk, [2] head index,
  //                     [3] tail chunk, [4] tail index.
  // Chunk payload: [0] next chunk, [1..kChunkSlots] values.
  ObjRef NewChunk();

  ObjectStore* store_;
  ObjRef descriptor_ = kNullRef;
};

}  // namespace lvm

#endif  // SRC_OODB_PERSISTENT_QUEUE_H_
