// A miniature memory-mapped object database on recoverable logged virtual
// memory — the paper's motivating application (Sections 1, 2.5): persistent
// objects read and written in virtual memory with the efficiency of
// ordinary C++ objects, transaction atomicity and recoverability coming
// from LVM's automatic logging rather than per-write annotations.
//
// Layout of the recoverable heap (all word-aligned, all state persistent):
//
//   [0]  magic
//   [1]  heap break (offset of the next free byte)
//   [2]  free-list head (offset of the first free block, 0 = empty)
//   [3]  root directory: kMaxRoots (name-hash, object-offset) pairs
//   ...  objects: {size, type} header followed by payload
//
// Everything, allocator metadata included, lives in recoverable memory, so
// an abort rolls back allocation and free-list changes along with object
// contents — the property that is tedious and error-prone to get right
// with explicit set_range annotations.
#ifndef SRC_OODB_OBJECT_STORE_H_
#define SRC_OODB_OBJECT_STORE_H_

#include <cstdint>
#include <string_view>

#include "src/base/types.h"
#include "src/rvm/recoverable_store.h"

namespace lvm {

// A handle to a persistent object: its offset within the heap.
using ObjRef = uint32_t;
inline constexpr ObjRef kNullRef = 0;

class ObjectStore {
 public:
  static constexpr uint32_t kMaxRoots = 32;

  // Opens (or formats) an object heap on `store`. The store must be
  // activated on the CPU used for operations.
  ObjectStore(RecoverableStore* store, Cpu* cpu);

  // --- transactions (delegated to the recoverable store) ---
  void Begin() { store_->Begin(cpu_); }
  void Commit() { store_->Commit(cpu_); }
  void Abort() { store_->Abort(cpu_); }

  // --- allocation (within a transaction) ---
  // Allocates a persistent object of `bytes` payload (word aligned) with a
  // type tag. Returns its reference.
  ObjRef Allocate(uint32_t bytes, uint32_t type_tag);
  // Frees an object (its block enters the persistent free list).
  void Free(ObjRef ref);

  // --- object access ---
  uint32_t TypeOf(ObjRef ref);
  uint32_t SizeOf(ObjRef ref);
  // Reads/writes word `index` of the object's payload.
  uint32_t ReadField(ObjRef ref, uint32_t index);
  void WriteField(ObjRef ref, uint32_t index, uint32_t value);

  // --- named roots ---
  // Binds `name` to `ref` (persistent; within a transaction).
  void SetRoot(std::string_view name, ObjRef ref);
  // Looks a root up; kNullRef if absent.
  ObjRef GetRoot(std::string_view name);

  // --- statistics ---
  uint32_t heap_break();
  uint32_t live_free_blocks();

 private:
  static constexpr uint32_t kMagic = 0x0DB0DB01;
  // Header word offsets (in words).
  static constexpr uint32_t kMagicWord = 0;
  static constexpr uint32_t kBreakWord = 1;
  static constexpr uint32_t kFreeHeadWord = 2;
  static constexpr uint32_t kRootsWord = 3;             // kMaxRoots pairs follow.
  static constexpr uint32_t kHeapStartWord = kRootsWord + 2 * kMaxRoots;
  // Object header words (before the payload).
  static constexpr uint32_t kObjSizeWord = 0;  // Payload bytes.
  static constexpr uint32_t kObjTypeWord = 1;
  static constexpr uint32_t kObjHeaderBytes = 8;

  uint32_t ReadWordAt(uint32_t byte_offset);
  void WriteWordAt(uint32_t byte_offset, uint32_t value);
  static uint32_t HashName(std::string_view name);

  RecoverableStore* store_;
  Cpu* cpu_;
};

}  // namespace lvm

#endif  // SRC_OODB_OBJECT_STORE_H_
