#include "src/oodb/object_store.h"

#include "src/base/check.h"

namespace lvm {

ObjectStore::ObjectStore(RecoverableStore* store, Cpu* cpu) : store_(store), cpu_(cpu) {
  if (ReadWordAt(4 * kMagicWord) != kMagic) {
    // Format the heap in one transaction.
    store_->Begin(cpu_);
    store_->SetRange(cpu_, store_->data_base(), 4 * kHeapStartWord);
    WriteWordAt(4 * kMagicWord, kMagic);
    WriteWordAt(4 * kBreakWord, 4 * kHeapStartWord);
    WriteWordAt(4 * kFreeHeadWord, 0);
    for (uint32_t i = 0; i < 2 * kMaxRoots; ++i) {
      WriteWordAt(4 * (kRootsWord + i), 0);
    }
    store_->Commit(cpu_);
  }
}

uint32_t ObjectStore::ReadWordAt(uint32_t byte_offset) {
  return store_->Read(cpu_, store_->data_base() + byte_offset);
}

void ObjectStore::WriteWordAt(uint32_t byte_offset, uint32_t value) {
  // Under plain RVM a caller would have to set_range every one of these;
  // the ObjectStore conservatively covers each word so it runs on both
  // store kinds. Under RLVM this is a no-op.
  store_->SetRange(cpu_, store_->data_base() + byte_offset, 4);
  store_->Write(cpu_, store_->data_base() + byte_offset, value);
}

ObjRef ObjectStore::Allocate(uint32_t bytes, uint32_t type_tag) {
  bytes = AlignUp(bytes, 4);
  LVM_CHECK(bytes > 0);

  // First-fit search of the persistent free list.
  uint32_t prev = 0;
  uint32_t block = ReadWordAt(4 * kFreeHeadWord);
  while (block != 0) {
    uint32_t block_bytes = ReadWordAt(block + 4 * kObjSizeWord);
    uint32_t next = ReadWordAt(block + 4 * kObjTypeWord);  // Next-ptr while free.
    if (block_bytes >= bytes) {
      // Unlink and reuse (no splitting: simple and always correct).
      if (prev == 0) {
        WriteWordAt(4 * kFreeHeadWord, next);
      } else {
        WriteWordAt(prev + 4 * kObjTypeWord, next);
      }
      WriteWordAt(block + 4 * kObjSizeWord, block_bytes);
      WriteWordAt(block + 4 * kObjTypeWord, type_tag);
      return block;
    }
    prev = block;
    block = next;
  }

  // Bump allocation from the heap break.
  uint32_t break_offset = ReadWordAt(4 * kBreakWord);
  uint32_t total = kObjHeaderBytes + bytes;
  LVM_CHECK_MSG(break_offset + total <= store_->data_size(), "object heap exhausted");
  WriteWordAt(4 * kBreakWord, break_offset + total);
  WriteWordAt(break_offset + 4 * kObjSizeWord, bytes);
  WriteWordAt(break_offset + 4 * kObjTypeWord, type_tag);
  return break_offset;
}

void ObjectStore::Free(ObjRef ref) {
  LVM_CHECK(ref != kNullRef);
  // Push onto the persistent free list; the type word becomes the link.
  WriteWordAt(ref + 4 * kObjTypeWord, ReadWordAt(4 * kFreeHeadWord));
  WriteWordAt(4 * kFreeHeadWord, ref);
}

uint32_t ObjectStore::TypeOf(ObjRef ref) { return ReadWordAt(ref + 4 * kObjTypeWord); }

uint32_t ObjectStore::SizeOf(ObjRef ref) { return ReadWordAt(ref + 4 * kObjSizeWord); }

uint32_t ObjectStore::ReadField(ObjRef ref, uint32_t index) {
  LVM_DCHECK(4 * index < SizeOf(ref));
  return ReadWordAt(ref + kObjHeaderBytes + 4 * index);
}

void ObjectStore::WriteField(ObjRef ref, uint32_t index, uint32_t value) {
  LVM_DCHECK(4 * index < SizeOf(ref));
  WriteWordAt(ref + kObjHeaderBytes + 4 * index, value);
}

uint32_t ObjectStore::HashName(std::string_view name) {
  uint32_t hash = 2166136261u;
  for (char c : name) {
    hash = (hash ^ static_cast<uint8_t>(c)) * 16777619u;
  }
  return hash != 0 ? hash : 1;  // 0 marks an empty root slot.
}

void ObjectStore::SetRoot(std::string_view name, ObjRef ref) {
  uint32_t hash = HashName(name);
  uint32_t free_slot = kMaxRoots;
  for (uint32_t i = 0; i < kMaxRoots; ++i) {
    uint32_t slot_hash = ReadWordAt(4 * (kRootsWord + 2 * i));
    if (slot_hash == hash) {
      WriteWordAt(4 * (kRootsWord + 2 * i + 1), ref);
      return;
    }
    if (slot_hash == 0 && free_slot == kMaxRoots) {
      free_slot = i;
    }
  }
  LVM_CHECK_MSG(free_slot < kMaxRoots, "root directory full");
  WriteWordAt(4 * (kRootsWord + 2 * free_slot), hash);
  WriteWordAt(4 * (kRootsWord + 2 * free_slot + 1), ref);
}

ObjRef ObjectStore::GetRoot(std::string_view name) {
  uint32_t hash = HashName(name);
  for (uint32_t i = 0; i < kMaxRoots; ++i) {
    if (ReadWordAt(4 * (kRootsWord + 2 * i)) == hash) {
      return ReadWordAt(4 * (kRootsWord + 2 * i + 1));
    }
  }
  return kNullRef;
}

uint32_t ObjectStore::heap_break() { return ReadWordAt(4 * kBreakWord); }

uint32_t ObjectStore::live_free_blocks() {
  uint32_t count = 0;
  for (uint32_t block = ReadWordAt(4 * kFreeHeadWord); block != 0;
       block = ReadWordAt(block + 4 * kObjTypeWord)) {
    ++count;
  }
  return count;
}

}  // namespace lvm
