// Parallel multi-CPU execution engine: runs each simulated Cpu on its own
// host thread.
//
// Two modes (DESIGN.md §10):
//
//   kParallel — free-running throughput mode. The engine detaches the bus
//   logger from the bus, installs a per-CPU LogShard as each worker's
//   LoggedWriteSink (the sharded write FIFO with batched tail append), puts
//   the bus into free-running arbitration and the L2 into striped-lock
//   concurrent mode, and lets the workers run unsynchronized. Overload
//   interrupts are the serialized exception: the shard that crosses its
//   ring threshold parks every running worker, drains all rings at the
//   drain rate, charges the kernel suspend/resume overhead through
//   LvmSystem::NoteOverloadSuspension, and releases the workers — each
//   active worker is suspended and resumed exactly once per event. Page
//   faults are unsupported while free-running (pre-fault the working set
//   with LvmSystem::TouchRegion); a stray fault aborts with a clear
//   message rather than racing.
//
//   kDeterministic — a seeded scheduler hands an execution token to one
//   worker at a time for a random quantum of steps, drawn from Rng(seed)
//   only. Workers still live on real threads (the same code paths as
//   parallel mode) but exactly one runs at any instant, through the
//   *unmodified* machine: bus arbitration, bus logger, overloads and page
//   faults behave exactly as in single-threaded simulation, so the same
//   seed yields bit-identical log contents and metrics on every run, and
//   the schedule fuzzer can replay a failing seed.
//
// Workers are registered with AddWorker before Start. Worker i drives
// Cpu i with its step function until it returns false. Start/Join are
// split so a monitor thread can hammer LvmSystem::GetStats() mid-run.
#ifndef SRC_PAR_ENGINE_H_
#define SRC_PAR_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "src/base/lock_order.h"
#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/base/types.h"
#include "src/lvm/lvm_system.h"
#include "src/obs/metrics.h"
#include "src/par/log_shard.h"

namespace lvm {
namespace par {

enum class Mode : uint8_t { kParallel, kDeterministic };

struct EngineConfig {
  Mode mode = Mode::kParallel;
  // Deterministic mode: schedule seed and the step-quantum range granted
  // per scheduling decision.
  uint64_t seed = 1;
  uint32_t min_quantum = 1;
  uint32_t max_quantum = 16;
  // Deterministic mode: publish each token handoff to the race detector as
  // a happens-before edge (the schedule serializes the workers, so with
  // edges on, a token-scheduled run is race-free by construction). Turn
  // off to hunt guest races under a *replayable* schedule: the handoff is
  // a scheduler artifact, not guest synchronization, and without the edge
  // the detector sees exactly the guest program's own ordering.
  bool publish_token_sync = true;
  // Parallel mode: shard tuning. Unset fields default from MachineParams
  // (ring capacity/threshold from the logger FIFO, service rates, divider).
  std::optional<ShardConfig> shard;
};

class ParallelEngine : public ShardOverloadPort {
 public:
  // One step of a worker's program; return false when done. `step` counts
  // calls for this worker.
  using StepFn = std::function<bool(Cpu& cpu, uint64_t step)>;

  struct WorkerStats {
    uint64_t steps = 0;
    uint64_t suspensions = 0;  // Overload parks (exactly one per event while active).
    uint64_t resumes = 0;      // Must equal suspensions after Join: no lost wakeups.
  };

  ParallelEngine(LvmSystem* system, const EngineConfig& config);
  ~ParallelEngine() override;

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  // Registers worker i (driving Cpu i). In parallel mode `shard_log` is the
  // worker's private log segment (required); in deterministic mode logging
  // goes through the normal AttachLog machinery and `shard_log` must be
  // null. Returns the worker id.
  int AddWorker(LogSegment* shard_log, StepFn fn);

  // Registers "par.*" metrics (per-shard counters, overload counter, the
  // occupancy and drain histograms) with the system's registry. Optional;
  // call after AddWorker and at most once per LvmSystem.
  void RegisterMetrics();

  // Reconfigures the machine for the selected mode and launches the worker
  // threads (and the deterministic scheduler).
  void Start();
  // Waits for every worker, drains and publishes the shards (parallel
  // mode), and restores the machine to serial single-thread operation.
  void Join();
  void Run() {
    Start();
    Join();
  }

  // --- results (stable after Join) ---
  const WorkerStats& worker_stats(int worker_id) const {
    return workers_.at(static_cast<size_t>(worker_id)).stats;
  }
  LogShard* shard(int worker_id) { return workers_.at(static_cast<size_t>(worker_id)).shard.get(); }
  uint64_t overload_events() const { return overload_events_.value(); }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  // --- ShardOverloadPort ---
  void OnShardOverload(int worker_id, Cycles now) override;

 private:
  struct Worker {
    StepFn fn;
    LogSegment* log = nullptr;
    std::unique_ptr<LogShard> shard;
    std::thread thread;
    WorkerStats stats;
  };

  // Aborts on any page fault while free-running (see header comment).
  class ForbidFaults : public PageFaultHandler {
   public:
    bool OnPageFault(Cpu* cpu, VirtAddr va, AccessKind access) override;
  };

  void ParallelWorkerBody(int worker_id);
  void DeterministicWorkerBody(int worker_id);
  void SchedulerBody();
  // Parks the calling worker until the in-progress overload event resolves.
  // `worker_id` is the parking worker.
  void ParkForOverload(int worker_id) LVM_REQUIRES(mu_);

  LvmSystem* const system_;
  const EngineConfig config_;
  ShardConfig shard_config_;
  ForbidFaults forbid_faults_;
  std::vector<Worker> workers_;
  bool started_ = false;
  bool joined_ = false;

  // --- overload suspension protocol (parallel mode) ---
  // Root of the lock order (kRankParEngine): held while draining shards,
  // parking workers, and running barriers, so every other lock nests inside.
  Mutex mu_{"ParallelEngine::mu_", lockorder::kRankParEngine};
  CondVar cv_;
  std::atomic<bool> suspend_requested_{false};
  // Workers whose thread has not finished.
  int active_workers_ LVM_GUARDED_BY(mu_) = 0;
  // Workers waiting out the current event.
  int parked_ LVM_GUARDED_BY(mu_) = 0;
  uint64_t overload_generation_ LVM_GUARDED_BY(mu_) = 0;

  // --- deterministic scheduler state ---
  std::thread scheduler_;
  // Token holder; -1 while the scheduler decides.
  int current_worker_ LVM_GUARDED_BY(mu_) = -1;
  uint32_t quantum_ LVM_GUARDED_BY(mu_) = 0;
  bool worker_done_ LVM_GUARDED_BY(mu_) = false;

  obs::Counter overload_events_;
  obs::Histogram shard_occupancy_;       // Ring occupancy at each batch flush.
  obs::Histogram overload_drain_records_;  // Records drained per overload event.
};

}  // namespace par
}  // namespace lvm

#endif  // SRC_PAR_ENGINE_H_
