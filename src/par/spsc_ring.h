// Bounded lock-free single-producer/single-consumer ring.
//
// This is the parallel engine's replacement for the bus logger's global
// write FIFO: each simulated CPU (one host thread) produces into its own
// ring, and the same shard retires entries in batches, so the logged-write
// hot path never touches a shared lock. The producer and consumer are
// usually the same thread (the shard services its ring lazily, like the
// hardware logger's DMA engine); during an overload suspension the
// initiating worker drains every shard's ring while the other workers are
// parked — the engine's mutex provides the happens-before edge for that
// hand-off, and the acquire/release indices make the steady-state path
// safe if producer and consumer ever run on different threads.
//
// Capacity is rounded up to a power of two; one slot is sacrificed to
// distinguish full from empty.
#ifndef SRC_PAR_SPSC_RING_H_
#define SRC_PAR_SPSC_RING_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <vector>

#include "src/base/check.h"

namespace lvm {
namespace par {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity)
      : slots_(std::bit_ceil(capacity + 1)), mask_(slots_.size() - 1) {
    LVM_CHECK(capacity > 0);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Usable capacity (at least the constructor argument).
  size_t capacity() const { return slots_.size() - 1; }

  size_t size() const {
    size_t head = head_.load(std::memory_order_acquire);
    size_t tail = tail_.load(std::memory_order_acquire);
    return (tail - head) & mask_;
  }
  bool empty() const { return size() == 0; }
  bool full() const { return size() == capacity(); }

  // Producer side. Returns false when the ring is full.
  bool TryPush(const T& value) {
    size_t tail = tail_.load(std::memory_order_relaxed);
    size_t next = (tail + 1) & mask_;
    if (next == head_.load(std::memory_order_acquire)) {
      return false;
    }
    slots_[tail] = value;
    tail_.store(next, std::memory_order_release);
    return true;
  }

  // Consumer side: oldest entry without removing it. The ring must not be
  // empty (check Empty()/TryPop instead when racing a producer).
  const T& Front() const {
    LVM_CHECK_MSG(!empty(), "SpscRing underflow");
    return slots_[head_.load(std::memory_order_relaxed)];
  }

  // Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) {
      return false;
    }
    *out = slots_[head];
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

 private:
  std::vector<T> slots_;
  const size_t mask_;
  std::atomic<size_t> head_{0};  // Next slot to pop (consumer-owned).
  std::atomic<size_t> tail_{0};  // Next slot to fill (producer-owned).
};

}  // namespace par
}  // namespace lvm

#endif  // SRC_PAR_SPSC_RING_H_
