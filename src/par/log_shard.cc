#include "src/par/log_shard.h"

#include "src/base/check.h"
#include "src/sim/cpu.h"

namespace lvm {
namespace par {

LogShard::LogShard(int worker_id, LogSegment* log, PhysicalMemory* memory,
                   const ShardConfig& config, ShardOverloadPort* port)
    : worker_id_(worker_id),
      log_(log),
      memory_(memory),
      config_(config),
      port_(port),
      ring_(config.ring_capacity),
      append_offset_(log->append_offset) {
  LVM_CHECK(log != nullptr && memory != nullptr);
  LVM_CHECK_MSG(config.overload_threshold <= config.ring_capacity,
                "overload threshold beyond ring capacity");
  LVM_CHECK(config.batch_records > 0);
  staging_.reserve(config.batch_records);
  staging_prov_.reserve(config.batch_records);
}

void LogShard::OnLoggedWrite(Cpu* cpu, VirtAddr va, PhysAddr paddr, uint32_t value,
                             uint8_t size) {
  (void)va;  // Records carry physical addresses, like the bus logger's.
  Cycles now = cpu->now();
  uint64_t prov = 0;
  if (waterfall_ != nullptr) {
    prov = waterfall_->SampleRecord(worker_id_, now, static_cast<uint32_t>(ring_.size()));
  }
  Entry entry{paddr, value, now, size, prov};
  if (!ring_.TryPush(entry)) {
    // Only reachable when the threshold equals the capacity (or the port is
    // detached): forced synchronous drain, the FIFO-full stall.
    ring_full_stalls_.Increment();
    DrainAll(now, config_.service_active_cycles);
    bool pushed = ring_.TryPush(entry);
    LVM_CHECK(pushed);
  }
  if (prov != 0) {
    waterfall_->Stamp(prov, obs::WaterfallStage::kShardEnqueue, worker_id_, now,
                      static_cast<uint32_t>(ring_.size()));
  }
  DrainReady(now);
  if (port_ != nullptr && ring_.size() >= config_.overload_threshold) {
    port_->OnShardOverload(worker_id_, now);
  }
}

void LogShard::DrainReady(Cycles now) {
  uint32_t retired = 0;
  while (!ring_.empty()) {
    const Entry& front = ring_.Front();
    Cycles start = front.time > service_free_ ? front.time : service_free_;
    Cycles done = start + config_.service_active_cycles;
    if (done > now) {
      break;
    }
    service_free_ = done;
    Entry entry;
    ring_.TryPop(&entry);
    if (entry.prov != 0) {
      waterfall_->Stamp(entry.prov, obs::WaterfallStage::kDrain, worker_id_, done,
                        static_cast<uint32_t>(ring_.size()));
    }
    Stage(entry);
    ++retired;
  }
  if (profiler_ != nullptr && retired != 0) {
    prof_pending_emit_ += static_cast<Cycles>(retired) * config_.service_active_cycles;
  }
}

Cycles LogShard::DrainAll(Cycles now, uint32_t per_record_cycles, obs::CostCenter center) {
  Entry entry;
  uint32_t retired = 0;
  while (ring_.TryPop(&entry)) {
    Cycles start = entry.time > service_free_ ? entry.time : service_free_;
    service_free_ = start + per_record_cycles;
    if (entry.prov != 0) {
      waterfall_->Stamp(entry.prov, obs::WaterfallStage::kDrain, worker_id_, service_free_,
                        static_cast<uint32_t>(ring_.size()));
    }
    Stage(entry);
    ++retired;
  }
  FlushBatch();
  if (profiler_ != nullptr && retired != 0) {
    if (center == obs::CostCenter::kLogDrain) {
      prof_pending_drain_ += static_cast<Cycles>(retired) * per_record_cycles;
    } else {
      prof_pending_emit_ += static_cast<Cycles>(retired) * per_record_cycles;
    }
  }
  FlushProf();  // A full drain is a sync point: publish the attribution.
  return service_free_ > now ? service_free_ : now;
}

void LogShard::FlushProf() {
  if (profiler_ == nullptr) {
    return;
  }
  if (prof_pending_emit_ != 0) {
    profiler_->Charge(prof_lane_, obs::CostCenter::kLogEmit, prof_pending_emit_);
    prof_pending_emit_ = 0;
  }
  if (prof_pending_drain_ != 0) {
    profiler_->Charge(prof_lane_, obs::CostCenter::kLogDrain, prof_pending_drain_);
    prof_pending_drain_ = 0;
  }
}

void LogShard::Stage(const Entry& entry) {
  LogRecord record;
  record.addr = entry.paddr;
  record.value = entry.value;
  record.size = entry.size;
  record.flags = entry.prov != 0 ? kRecordFlagSampled : uint16_t{0};
  record.timestamp = static_cast<uint32_t>(entry.time / config_.timestamp_divider);
  staging_.push_back(record);
  staging_prov_.push_back(entry.prov);
  if (staging_.size() >= config_.batch_records) {
    FlushBatch();
  }
}

void LogShard::FlushBatch() {
  if (staging_.empty()) {
    return;
  }
  if (occupancy_histogram_ != nullptr) {
    occupancy_histogram_->Record(ring_.size());
  }
  // Batched append: one frame lookup per record but a single bookkeeping
  // advance per batch; the kernel-visible tail moves only at publish time.
  uint32_t offset = append_offset_;
  for (size_t i = 0; i < staging_.size(); ++i) {
    const LogRecord& record = staging_[i];
    uint32_t frame_index = offset / kPageSize;
    while (frame_index >= log_->page_count()) {
      log_->Extend(1);  // Thread-safe: only this shard grows this segment.
    }
    StoreLogRecord(memory_, log_->FrameAt(frame_index) + PageOffset(offset), record);
    offset += kLogRecordSize;
    if (staging_prov_[i] != 0) {
      waterfall_->SetIdentity(staging_prov_[i], record.addr, record.value, record.timestamp);
      waterfall_->Stamp(staging_prov_[i], obs::WaterfallStage::kSegmentAppend, worker_id_,
                        service_free_, static_cast<uint32_t>(staging_.size() - 1 - i));
    }
  }
  records_appended_.Add(staging_.size());
  batches_.Increment();
  append_offset_ = offset;
  staging_.clear();
  staging_prov_.clear();
}

void LogShard::RegisterMetrics(obs::MetricsRegistry* registry, const std::string& prefix) const {
  registry->RegisterCounter(prefix + "records_appended", &records_appended_);
  registry->RegisterCounter(prefix + "batches", &batches_);
  registry->RegisterCounter(prefix + "ring_full_stalls", &ring_full_stalls_);
}

}  // namespace par
}  // namespace lvm
