// Per-CPU log shard: the parallel engine's replacement for the bus
// logger's global write FIFO (Section 3.1.2's consecutive per-processor
// logs, driven from the CPU side).
//
// Each worker's Cpu gets a LogShard installed as its LoggedWriteSink. A
// logged write pushes {paddr, value, size, time} into the shard's bounded
// SPSC ring and lazily retires entries that the modeled DMA engine has had
// time to service (logger_service_active_cycles per record, exactly the
// hardware logger's service model), appending 16-byte LogRecords in
// batches directly into the shard's own LogSegment frames. The segment is
// extended through the (mutex-protected) frame allocator when it runs out
// of frames, mirroring the kernel's auto-extend discipline.
//
// When the ring occupancy reaches the overload threshold the shard calls
// into the engine's ShardOverloadPort — the cross-thread analogue of the
// FIFO overload interrupt (Section 3.1.3): the engine parks every worker,
// drains all rings at the faster logger_service_drain_cycles rate, charges
// the kernel suspend/resume overhead and releases the workers.
//
// Thread model: OnLoggedWrite and DrainReady run on the owning worker's
// thread. DrainAll additionally runs on the overload initiator's thread
// while the owner is parked (the engine's mutex orders that hand-off) and
// on the engine thread after Join.
#ifndef SRC_PAR_LOG_SHARD_H_
#define SRC_PAR_LOG_SHARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/logger/log_record.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/waterfall.h"
#include "src/par/spsc_ring.h"
#include "src/sim/interfaces.h"
#include "src/sim/phys_mem.h"
#include "src/vm/segment.h"

namespace lvm {
namespace par {

// Engine-side handler for a shard crossing its overload threshold. Called
// on the producing worker's thread; returns after the rings are drained
// and the clocks advanced (the writer was suspended and resumed).
class ShardOverloadPort {
 public:
  virtual ~ShardOverloadPort() = default;
  virtual void OnShardOverload(int worker_id, Cycles now) = 0;
};

struct ShardConfig {
  // Ring capacity and overload threshold, defaulted by the engine from
  // MachineParams::logger_fifo_capacity / logger_fifo_threshold.
  size_t ring_capacity = 819;
  uint32_t overload_threshold = 512;
  // Records staged per batched append (the batched tail advancement).
  uint32_t batch_records = 32;
  // DMA service rates, from MachineParams.
  uint32_t service_active_cycles = 27;
  uint32_t service_drain_cycles = 18;
  // LogRecord timestamps are time / timestamp_divider (6.25 MHz ticks).
  uint32_t timestamp_divider = 4;
};

class LogShard : public LoggedWriteSink {
 public:
  LogShard(int worker_id, LogSegment* log, PhysicalMemory* memory, const ShardConfig& config,
           ShardOverloadPort* port);

  LogShard(const LogShard&) = delete;
  LogShard& operator=(const LogShard&) = delete;

  // --- producer side (owning worker's thread) ---
  void OnLoggedWrite(Cpu* cpu, VirtAddr va, PhysAddr paddr, uint32_t value,
                     uint8_t size) override;

  // --- consumer side ---
  // Retires every ring entry the DMA engine completed by `now` into the
  // staging batch, flushing full batches to the log segment.
  void DrainReady(Cycles now);
  // Drains the ring completely at `per_record_cycles` per record and
  // flushes the staging batch. Returns the drain completion time (>= the
  // running service_free horizon). Used by the engine for overload drains
  // (drain rate, attributed kLogDrain) and after Join (active rate).
  Cycles DrainAll(Cycles now, uint32_t per_record_cycles,
                  obs::CostCenter center = obs::CostCenter::kLogEmit);

  int worker_id() const { return worker_id_; }
  LogSegment* log() const { return log_; }
  // Bytes appended so far; the engine publishes this into the kernel's
  // bookkeeping via LvmSystem::AdoptAppendOffset after the run.
  uint32_t append_offset() const { return append_offset_; }
  size_t ring_occupancy() const { return ring_.size(); }

  uint64_t records_appended() const { return records_appended_.value(); }
  uint64_t batches() const { return batches_.value(); }
  uint64_t ring_full_stalls() const { return ring_full_stalls_.value(); }

  // Registers "<prefix>records_appended", "<prefix>batches" and
  // "<prefix>ring_full_stalls" as external counters.
  void RegisterMetrics(obs::MetricsRegistry* registry, const std::string& prefix) const;

  // Engine-owned histogram fed with the ring occupancy at each batch flush
  // (the contention pressure on the sharded log path). Optional.
  void set_occupancy_histogram(obs::Histogram* histogram) { occupancy_histogram_ = histogram; }

  // Optional cycle-attribution profiler: per-record service cycles charge
  // `lane` (the shared logger lane; Charge is thread-safe so every worker's
  // shard may charge it concurrently).
  void set_profiler(obs::Profiler* profiler, int lane) {
    profiler_ = profiler;
    prof_lane_ = lane;
  }

  // Optional provenance waterfall: sampled writes carry a token from ring
  // push to batched segment append. The shard samples on its own lane
  // (worker id), so the sampled set matches the deterministic mode's
  // per-CPU stride for the same seed.
  void set_waterfall(obs::WaterfallTracer* waterfall) { waterfall_ = waterfall; }

 private:
  struct Entry {
    PhysAddr paddr = 0;
    uint32_t value = 0;
    Cycles time = 0;
    uint8_t size = 0;
    // Waterfall provenance token (0 = unsampled).
    uint64_t prov = 0;
  };

  void Stage(const Entry& entry);
  void FlushBatch();
  // Pushes the accumulated service cycles to the profiler's logger lane.
  // Charges batch here rather than per retired record: the logger lane is
  // shared by every worker, so per-record Charge calls would contend on
  // one node's counter from all threads at once.
  void FlushProf();

  const int worker_id_;
  LogSegment* const log_;
  PhysicalMemory* const memory_;
  const ShardConfig config_;
  ShardOverloadPort* const port_;

  SpscRing<Entry> ring_;
  std::vector<LogRecord> staging_;
  // Tokens of the staged records, index-parallel with staging_.
  std::vector<uint64_t> staging_prov_;
  // DMA engine availability: the service completion time of the last
  // retired record (the hardware logger's service_free_).
  Cycles service_free_ = 0;
  uint32_t append_offset_ = 0;

  obs::Histogram* occupancy_histogram_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  obs::WaterfallTracer* waterfall_ = nullptr;
  int prof_lane_ = 0;
  // Service cycles retired but not yet charged (same thread model as
  // service_free_: the drain paths are serialized by the engine).
  Cycles prof_pending_emit_ = 0;
  Cycles prof_pending_drain_ = 0;
  obs::Counter records_appended_;
  obs::Counter batches_;
  obs::Counter ring_full_stalls_;
};

}  // namespace par
}  // namespace lvm

#endif  // SRC_PAR_LOG_SHARD_H_
