#include "src/par/engine.h"

#include <algorithm>
#include <string>

#include "src/base/check.h"
#include "src/base/rng.h"
#include "src/obs/flight_recorder.h"

namespace lvm {
namespace par {

bool ParallelEngine::ForbidFaults::OnPageFault(Cpu* cpu, VirtAddr va, AccessKind access) {
  (void)cpu;
  (void)access;
  LVM_CHECK_MSG(false,
                "page fault during free-running parallel execution; pre-fault the "
                "working set (LvmSystem::TouchRegion) before Start()");
  (void)va;
  return false;
}

ParallelEngine::ParallelEngine(LvmSystem* system, const EngineConfig& config)
    : system_(system), config_(config) {
  LVM_CHECK(system != nullptr);
  if (config.shard.has_value()) {
    shard_config_ = *config.shard;
  } else {
    const MachineParams& params = system->machine().params();
    shard_config_.ring_capacity = params.logger_fifo_capacity;
    shard_config_.overload_threshold = params.logger_fifo_threshold;
    shard_config_.service_active_cycles = params.logger_service_active_cycles;
    shard_config_.service_drain_cycles = params.logger_service_drain_cycles;
    shard_config_.timestamp_divider = params.timestamp_divider;
  }
}

ParallelEngine::~ParallelEngine() {
  if (started_ && !joined_) {
    Join();
  }
}

int ParallelEngine::AddWorker(LogSegment* shard_log, StepFn fn) {
  LVM_CHECK(!started_);
  LVM_CHECK(fn != nullptr);
  int id = static_cast<int>(workers_.size());
  LVM_CHECK_MSG(id < system_->machine().num_cpus(), "more workers than CPUs");
  Worker worker;
  worker.fn = std::move(fn);
  worker.log = shard_log;
  if (config_.mode == Mode::kParallel) {
    LVM_CHECK_MSG(shard_log != nullptr, "parallel mode needs a per-worker log segment");
    worker.shard = std::make_unique<LogShard>(id, shard_log, &system_->memory(), shard_config_,
                                              this);
    worker.shard->set_occupancy_histogram(&shard_occupancy_);
  } else {
    LVM_CHECK_MSG(shard_log == nullptr,
                  "deterministic mode logs through the normal AttachLog machinery");
  }
  workers_.push_back(std::move(worker));
  return id;
}

void ParallelEngine::RegisterMetrics() {
  obs::MetricsRegistry* registry = &system_->metrics();
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].shard != nullptr) {
      workers_[i].shard->RegisterMetrics(registry, "par.shard" + std::to_string(i) + ".");
    }
  }
  registry->RegisterCounter("par.overload_events", &overload_events_);
  registry->RegisterHistogram("par.shard_occupancy", &shard_occupancy_);
  registry->RegisterHistogram("par.overload_drain_records", &overload_drain_records_);
}

void ParallelEngine::Start() {
  LVM_CHECK(!started_ && !joined_);
  LVM_CHECK_MSG(!workers_.empty(), "no workers registered");
  started_ = true;
  {
    MutexLock lk(mu_);
    active_workers_ = static_cast<int>(workers_.size());
  }
  obs::FlightRecorder& flight = system_->flight();
  flight.Record(flight.kernel_ring(), obs::FlightEventKind::kEngineStart,
                system_->cpu(0).now(), config_.mode == Mode::kParallel ? "parallel" : "deterministic",
                workers_.size(), 0, 0);
  // Launching the workers is a synchronization point: setup-phase accesses
  // (TouchRegion pre-faulting, initialization writes) happen-before every
  // worker's first step.
  if (system_->race_detector() != nullptr) {
    system_->race_detector()->GlobalBarrier();
  }
  if (config_.mode == Mode::kParallel) {
    LVM_CHECK_MSG(system_->onchip_logger() == nullptr,
                  "parallel mode shards the bus-logger path; on-chip logging is unsupported");
    // Detach the bus snooper: logged writes flow through the per-CPU shards
    // instead of the global write FIFO.
    if (system_->bus_logger() != nullptr) {
      system_->machine().bus().RemoveSnooper(system_->bus_logger());
    }
    system_->machine().bus().SetFreeRunning(true);
    system_->machine().l2().SetConcurrent(true);
    for (size_t i = 0; i < workers_.size(); ++i) {
      Cpu& cpu = system_->cpu(static_cast<int>(i));
      cpu.set_log_sink(workers_[i].shard.get());
      cpu.set_fault_handler(&forbid_faults_);
      if (system_->profiler() != nullptr) {
        workers_[i].shard->set_profiler(system_->profiler(),
                                        system_->profiler()->logger_lane());
      }
      if (system_->waterfall() != nullptr) {
        workers_[i].shard->set_waterfall(system_->waterfall());
      }
    }
    for (size_t i = 0; i < workers_.size(); ++i) {
      workers_[i].thread = std::thread(&ParallelEngine::ParallelWorkerBody, this,
                                       static_cast<int>(i));
    }
  } else {
    for (size_t i = 0; i < workers_.size(); ++i) {
      workers_[i].thread = std::thread(&ParallelEngine::DeterministicWorkerBody, this,
                                       static_cast<int>(i));
    }
    scheduler_ = std::thread(&ParallelEngine::SchedulerBody, this);
  }
}

void ParallelEngine::Join() {
  LVM_CHECK(started_ && !joined_);
  for (Worker& worker : workers_) {
    worker.thread.join();
  }
  if (scheduler_.joinable()) {
    scheduler_.join();
  }
  joined_ = true;
  {
    Cycles max_now = 0;
    for (size_t i = 0; i < workers_.size(); ++i) {
      max_now = std::max(max_now, system_->cpu(static_cast<int>(i)).now());
    }
    obs::FlightRecorder& flight = system_->flight();
    flight.Record(flight.kernel_ring(), obs::FlightEventKind::kEngineJoin, max_now, "join",
                  workers_.size(), 0, 0);
  }
  // Thread join is the converse edge: every worker's last step
  // happens-before anything the caller does after Join.
  if (system_->race_detector() != nullptr) {
    system_->race_detector()->GlobalBarrier();
  }
  if (config_.mode != Mode::kParallel) {
    return;
  }
  // Drain the leftover ring entries at the active service rate and publish
  // each shard's append offset into the kernel bookkeeping, then restore
  // serial operation.
  for (size_t i = 0; i < workers_.size(); ++i) {
    Worker& worker = workers_[i];
    Cpu& cpu = system_->cpu(static_cast<int>(i));
    worker.shard->DrainAll(cpu.now(), shard_config_.service_active_cycles);
    system_->AdoptAppendOffset(worker.log, worker.shard->append_offset());
    cpu.set_log_sink(nullptr);
    cpu.set_fault_handler(system_);
  }
  system_->machine().bus().SetFreeRunning(false);
  system_->machine().l2().SetConcurrent(false);
  if (system_->bus_logger() != nullptr) {
    system_->machine().bus().AddSnooper(system_->bus_logger());
  }
}

void ParallelEngine::ParallelWorkerBody(int worker_id) {
  Worker& worker = workers_[static_cast<size_t>(worker_id)];
  Cpu& cpu = system_->cpu(worker_id);
  uint64_t step = 0;
  for (;; ++step) {
    // Per-step checkpoint: park if an overload suspension is in progress.
    if (suspend_requested_.load(std::memory_order_acquire)) {
      MutexLock lk(mu_);
      if (suspend_requested_.load(std::memory_order_relaxed)) {
        ParkForOverload(worker_id);
      }
    }
    if (!worker.fn(cpu, step)) {
      break;
    }
  }
  worker.stats.steps = step + 1;
  MutexLock lk(mu_);
  --active_workers_;
  cv_.NotifyAll();
}

void ParallelEngine::OnShardOverload(int worker_id, Cycles now) {
  MutexLock lk(mu_);
  if (suspend_requested_.load(std::memory_order_relaxed)) {
    // Another worker is already running the event; wait it out (our ring is
    // drained by that initiator).
    ParkForOverload(worker_id);
    return;
  }
  // Become the initiator: park every other active worker, then drain all
  // rings at the overload drain rate — the cross-thread form of the FIFO
  // overload interrupt (Section 3.1.3).
  suspend_requested_.store(true, std::memory_order_release);
  overload_events_.Increment();
  workers_[static_cast<size_t>(worker_id)].stats.suspensions++;
  while (parked_ + 1 != active_workers_) {
    cv_.Wait(mu_);
  }
  uint64_t pending = 0;
  for (Worker& worker : workers_) {
    pending += worker.shard->ring_occupancy();
  }
  Cycles drain_complete = now;
  for (Worker& worker : workers_) {
    Cycles done = worker.shard->DrainAll(now, shard_config_.service_drain_cycles,
                                         obs::CostCenter::kLogDrain);
    if (done > drain_complete) {
      drain_complete = done;
    }
  }
  overload_drain_records_.Record(pending);
  Cycles resume = drain_complete + system_->machine().params().overload_kernel_cycles;
  system_->NoteOverloadSuspension(now, resume);
  // Every active worker is parked (and every finished worker has exited):
  // the park/resume generation is a global happens-before barrier.
  if (system_->race_detector() != nullptr) {
    system_->race_detector()->GlobalBarrier();
  }
  workers_[static_cast<size_t>(worker_id)].stats.resumes++;
  suspend_requested_.store(false, std::memory_order_release);
  ++overload_generation_;
  cv_.NotifyAll();
}

void ParallelEngine::ParkForOverload(int worker_id) {
  WorkerStats& stats = workers_[static_cast<size_t>(worker_id)].stats;
  stats.suspensions++;
  ++parked_;
  const uint64_t generation = overload_generation_;
  cv_.NotifyAll();
  while (overload_generation_ == generation) {
    cv_.Wait(mu_);
  }
  --parked_;
  stats.resumes++;
}

void ParallelEngine::DeterministicWorkerBody(int worker_id) {
  Worker& worker = workers_[static_cast<size_t>(worker_id)];
  Cpu& cpu = system_->cpu(worker_id);
  mu_.Lock();
  for (;;) {
    while (current_worker_ != worker_id) {
      cv_.Wait(mu_);
    }
    const uint32_t quantum = quantum_;
    mu_.Unlock();
    bool alive = true;
    for (uint32_t i = 0; i < quantum && alive; ++i) {
      alive = worker.fn(cpu, worker.stats.steps);
      ++worker.stats.steps;
    }
    mu_.Lock();
    current_worker_ = -1;
    worker_done_ = !alive;
    cv_.NotifyAll();
    if (!alive) {
      mu_.Unlock();
      return;
    }
  }
}

void ParallelEngine::SchedulerBody() {
  // The schedule is a pure function of the seed: which worker runs next and
  // for how many steps comes only from this generator, so identical seeds
  // replay identical interleavings (and identical logs and metrics).
  Rng rng(config_.seed);
  race::RaceDetector* detector =
      config_.publish_token_sync ? system_->race_detector() : nullptr;
  int previous_worker = -1;
  std::vector<int> alive;
  alive.reserve(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    alive.push_back(static_cast<int>(i));
  }
  MutexLock lk(mu_);
  while (!alive.empty()) {
    size_t pick = static_cast<size_t>(rng.Uniform(alive.size()));
    quantum_ = static_cast<uint32_t>(
        rng.UniformRange(config_.min_quantum, config_.max_quantum));
    current_worker_ = alive[pick];
    // Publish the token handoff as a sync edge: the outgoing holder's
    // quantum happens-before the incoming holder's. Both workers are
    // token-blocked here, so touching their clocks from the scheduler
    // thread is ordered by mu_.
    if (detector != nullptr) {
      if (previous_worker >= 0 && previous_worker != current_worker_) {
        detector->Release(previous_worker, race::kTokenSyncId);
        detector->Acquire(current_worker_, race::kTokenSyncId);
      }
      previous_worker = current_worker_;
    }
    cv_.NotifyAll();
    while (current_worker_ != -1) {
      cv_.Wait(mu_);
    }
    if (worker_done_) {
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
}

}  // namespace par
}  // namespace lvm
