#include "src/timewarp/scheduler.h"

#include "src/base/check.h"
#include "src/timewarp/simulation.h"

namespace lvm {

Scheduler::Scheduler(TimeWarpSimulation* simulation, uint32_t id, Cpu* cpu, StateSaver* saver,
                     LvmSystem* system, uint32_t num_objects, uint32_t object_size)
    : simulation_(simulation),
      id_(id),
      cpu_(cpu),
      saver_(saver),
      system_(system),
      num_objects_(num_objects),
      object_size_(object_size) {
  LVM_CHECK(object_size % 4 == 0);
  as_ = system->CreateAddressSpace();
  layout_ = saver->Setup(system, as_, kStateHeaderBytes + num_objects * object_size);
}

void Scheduler::InitObjectWord(uint32_t index, uint32_t offset, uint32_t value) {
  LVM_CHECK(index < num_objects_ && offset + 4 <= object_size_);
  system_->Activate(as_, cpu_->id());
  cpu_->Write(layout_.init_base + kStateHeaderBytes + index * object_size_ + offset, value);
}

void Scheduler::Deliver(const Event& event) {
  if (!event.anti) {
    input_.insert(event);
    return;
  }
  // Anti-message: annihilate the positive copy.
  for (auto it = input_.begin(); it != input_.end(); ++it) {
    if (it->sequence == event.sequence && it->sender == event.sender) {
      input_.erase(it);
      return;
    }
  }
  // The positive copy was already processed: roll back to its time, which
  // re-enqueues it, then annihilate.
  Rollback(event.time);
  for (auto it = input_.begin(); it != input_.end(); ++it) {
    if (it->sequence == event.sequence && it->sender == event.sender) {
      input_.erase(it);
      return;
    }
  }
  LVM_CHECK_MSG(false, "anti-message with no matching positive event");
}

VirtualTime Scheduler::NextEventTime() const {
  return input_.empty() ? kNever : input_.begin()->time;
}

bool Scheduler::ProcessOne() {
  if (input_.empty()) {
    return false;
  }
  system_->Activate(as_, cpu_->id());
  Event event = *input_.begin();
  if (!processed_.empty() && EventOrder()(event, processed_.back())) {
    // Straggler: it sorts before something already executed. Roll back to
    // its time (equal-time events all re-execute, in deterministic order)
    // and process it (Section 2.4).
    Rollback(event.time);
    event = *input_.begin();
  }
  input_.erase(input_.begin());
  cpu_->Compute(simulation_->config().event_dispatch_cycles);
  if (event.time > lvt_ || events_processed_ == 0) {
    lvt_ = event.time;
    saver_->OnLvtAdvance(cpu_, lvt_);
  }
  saver_->BeforeEvent(cpu_, event, ObjectAddr(simulation_->LocalIndex(event.target_object)),
                      object_size_);
  simulation_->model()->Execute(cpu_, this, event);
  processed_.push_back(event);
  ++events_processed_;
  return true;
}

void Scheduler::Send(Event event) {
  LVM_CHECK_MSG(event.time >= lvt_, "models may not schedule events in the past");
  cpu_->Compute(simulation_->config().send_cycles);
  event.sender = id_;
  event.sequence = next_sequence_++;
  event.anti = false;
  sent_.push_back(SentRecord{lvt_, event});
  simulation_->Route(event);
}

void Scheduler::Rollback(VirtualTime to) {
  ++rollbacks_;
  obs::ScopedSpan span(&system_->trace(), "timewarp", "rollback",
                       static_cast<uint32_t>(cpu_->id()), [this] { return cpu_->now(); });
  span.SetArg("to_vt", to);
  uint64_t rolled_back_before = events_rolled_back_;
  saver_->Rollback(cpu_, to);
  // Un-process events at or after `to`.
  while (!processed_.empty() && processed_.back().time >= to) {
    input_.insert(processed_.back());
    processed_.pop_back();
    ++events_rolled_back_;
  }
  // Cancel sends performed at or after `to`.
  while (!sent_.empty() && sent_.back().send_time >= to) {
    Event anti = sent_.back().event;
    anti.anti = true;
    sent_.pop_back();
    ++anti_messages_sent_;
    simulation_->Route(anti);
  }
  lvt_ = processed_.empty() ? saver_checkpoint_floor_ : processed_.back().time;
  rollback_depth_.Record(events_rolled_back_ - rolled_back_before);
}

uint32_t Scheduler::TotalObjects() const { return simulation_->total_objects(); }

uint64_t Scheduler::StateDigest(uint64_t digest) {
  system_->Activate(as_, cpu_->id());
  for (uint32_t object = 0; object < num_objects_; ++object) {
    VirtAddr base = ObjectAddr(object);
    for (uint32_t offset = 0; offset < object_size_; offset += 4) {
      digest = (digest ^ cpu_->Read(base + offset)) * 0x100000001b3ull;
    }
  }
  return digest;
}

void Scheduler::FossilCollect(VirtualTime gvt) {
  saver_->AdvanceCheckpoint(cpu_, gvt);
  saver_checkpoint_floor_ = gvt > saver_checkpoint_floor_ ? gvt : saver_checkpoint_floor_;
  while (!processed_.empty() && processed_.front().time < gvt) {
    processed_.pop_front();
  }
  while (!sent_.empty() && sent_.front().send_time < gvt) {
    sent_.pop_front();
  }
}

}  // namespace lvm
