#include "src/timewarp/copy_state_saver.h"

#include <algorithm>

#include "src/base/check.h"

namespace lvm {

namespace {
// Save-buffer capacity. A ring: checkpoint advances recycle space.
constexpr uint32_t kSaveAreaBytes = 2u << 20;
}  // namespace

StateSaver::StateLayout CopyStateSaver::Setup(LvmSystem* system, AddressSpace* as,
                                              uint32_t bytes) {
  system_ = system;
  as_ = as;
  state_ = system->CreateSegment(AlignUp(bytes, kPageSize));
  state_region_ = system->CreateRegion(state_);
  state_base_ = as->BindRegion(state_region_);
  save_area_ = system->CreateSegment(kSaveAreaBytes);
  save_capacity_ = kSaveAreaBytes;
  return StateLayout{.state_base = state_base_, .init_base = state_base_};
}

void CopyStateSaver::CopyOut(Cpu* cpu, VirtAddr object_va, uint32_t save_offset,
                             uint32_t len) {
  uint32_t state_offset = object_va - state_base_;
  for (uint32_t done = 0; done < len;) {
    uint32_t src = state_offset + done;
    uint32_t dst = save_offset + done;
    uint32_t chunk = len - done;
    chunk = std::min(chunk, kPageSize - PageOffset(src));
    chunk = std::min(chunk, kPageSize - PageOffset(dst));
    PhysAddr src_frame = system_->EnsureSegmentPage(state_, PageNumber(src));
    PhysAddr dst_frame = system_->EnsureSegmentPage(save_area_, PageNumber(dst));
    // Deliberately unlogged: this IS the copying baseline the paper measures
    // LVM against; the save area is not a recoverable region.
    // lvm-lint: allow(raw-store)
    system_->memory().CopyBlock(dst_frame + PageOffset(dst), src_frame + PageOffset(src),
                                chunk);
    done += chunk;
  }
  cpu->AddCycles(static_cast<Cycles>((len + kLineSize - 1) / kLineSize) *
                 system_->machine().params().bcopy_block_cycles);
}

void CopyStateSaver::CopyBack(Cpu* cpu, uint32_t save_offset, VirtAddr object_va,
                              uint32_t len) {
  uint32_t state_offset = object_va - state_base_;
  for (uint32_t done = 0; done < len;) {
    uint32_t src = save_offset + done;
    uint32_t dst = state_offset + done;
    uint32_t chunk = len - done;
    chunk = std::min(chunk, kPageSize - PageOffset(src));
    chunk = std::min(chunk, kPageSize - PageOffset(dst));
    PhysAddr src_frame = system_->EnsureSegmentPage(save_area_, PageNumber(src));
    PhysAddr dst_frame = system_->EnsureSegmentPage(state_, PageNumber(dst));
    // Restore through the cache so line state stays coherent.
    for (uint32_t i = 0; i < chunk; i += 4) {
      uint32_t value = system_->memory().Read(src_frame + PageOffset(src) + i, 4);
      system_->machine().l2().Write(dst_frame + PageOffset(dst) + i, value, 4);
    }
    done += chunk;
  }
  cpu->AddCycles(static_cast<Cycles>((len + kLineSize - 1) / kLineSize) *
                 system_->machine().params().bcopy_block_cycles);
}

void CopyStateSaver::BeforeEvent(Cpu* cpu, const Event& event, VirtAddr object_va,
                                 uint32_t object_size) {
  // Allocate a save slot (wrapping ring).
  if (next_save_offset_ + object_size > save_capacity_) {
    next_save_offset_ = 0;
  }
  if (!saves_.empty()) {
    // The ring must not overwrite the oldest live save.
    const Save& oldest = saves_.front();
    bool clobbers = next_save_offset_ <= oldest.save_offset &&
                    next_save_offset_ + object_size > oldest.save_offset;
    LVM_CHECK_MSG(!clobbers, "copy-saver ring exhausted: advance the checkpoint more often");
  }
  Save save;
  save.time = event.time;
  save.object_va = object_va;
  save.size = object_size;
  save.save_offset = next_save_offset_;
  next_save_offset_ += object_size;
  CopyOut(cpu, object_va, save.save_offset, object_size);
  saves_.push_back(save);
}

void CopyStateSaver::Rollback(Cpu* cpu, VirtualTime to) {
  ++rollbacks_;
  while (!saves_.empty() && saves_.back().time >= to) {
    const Save& save = saves_.back();
    CopyBack(cpu, save.save_offset, save.object_va, save.size);
    saves_.pop_back();
  }
}

void CopyStateSaver::AdvanceCheckpoint(Cpu* cpu, VirtualTime gvt) {
  (void)cpu;  // Discarding saves is free.
  while (!saves_.empty() && saves_.front().time < gvt) {
    saves_.pop_front();
  }
}

}  // namespace lvm
