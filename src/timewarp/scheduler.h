// A Time Warp scheduler: one optimistically-executing process owning a set
// of simulation objects (Section 2.4).
//
// The scheduler keeps an input queue of pending events, processes them in
// virtual-time order ahead of global virtual time, and rolls back when a
// straggler or anti-message arrives for an earlier time. State protection
// is delegated to a StateSaver (copy-based or LVM-based); event and message
// bookkeeping (processed list, output list, anti-message emission) lives
// here and is common to both.
#ifndef SRC_TIMEWARP_SCHEDULER_H_
#define SRC_TIMEWARP_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <set>

#include "src/base/types.h"
#include "src/lvm/lvm_system.h"
#include "src/obs/metrics.h"
#include "src/timewarp/event.h"
#include "src/timewarp/state_saver.h"

namespace lvm {

class TimeWarpSimulation;

class Scheduler {
 public:
  // Header bytes at the front of the state region; the LVT marker control
  // word is the first word.
  static constexpr uint32_t kStateHeaderBytes = 64;

  Scheduler(TimeWarpSimulation* simulation, uint32_t id, Cpu* cpu, StateSaver* saver,
            LvmSystem* system, uint32_t num_objects, uint32_t object_size);

  uint32_t id() const { return id_; }
  Cpu* cpu() { return cpu_; }
  StateSaver* saver() { return saver_; }
  AddressSpace* address_space() const { return as_; }
  VirtualTime lvt() const { return lvt_; }
  uint32_t num_objects() const { return num_objects_; }
  uint32_t object_size() const { return object_size_; }

  // Virtual address of local object `index`'s state.
  VirtAddr ObjectAddr(uint32_t index) const {
    return layout_.state_base + kStateHeaderBytes + index * object_size_;
  }

  // Object count across the whole simulation (for models picking targets).
  uint32_t TotalObjects() const;

  // Extends an FNV-1a digest with this scheduler's live object states, read
  // through the memory system (deferred copy and dirty lines included).
  // Chaining schedulers in id order digests the same word stream a single
  // scheduler covering all objects would.
  uint64_t StateDigest(uint64_t digest);

  // Writes a word of an object's *initial* state (before the simulation
  // starts): goes to the checkpoint under the LVM saver.
  void InitObjectWord(uint32_t index, uint32_t offset, uint32_t value);

  // Delivers an event (or anti-message) from the transport.
  void Deliver(const Event& event);

  // Earliest pending event time, or kNever.
  VirtualTime NextEventTime() const;
  bool HasWork() const { return !input_.empty(); }

  // Processes the earliest pending event (rolling back first if it is a
  // straggler). Returns false if there was nothing to do.
  bool ProcessOne();

  // Sends `event` to its target object's scheduler, recording it so a
  // rollback can cancel it. Called by models during event execution.
  void Send(Event event);

  // CULT entry point: state saver checkpoint advance plus fossil
  // collection of processed/sent records older than `gvt`.
  void FossilCollect(VirtualTime gvt);

  // --- statistics ---
  uint64_t events_processed() const { return events_processed_; }
  uint64_t rollbacks() const { return rollbacks_; }
  uint64_t events_rolled_back() const { return events_rolled_back_; }
  uint64_t anti_messages_sent() const { return anti_messages_sent_; }
  // Distribution of events undone per rollback.
  const obs::Histogram& rollback_depth() const { return rollback_depth_; }

 private:
  struct SentRecord {
    VirtualTime send_time = 0;  // LVT when the send happened.
    Event event;
  };

  // Rolls state, processed events and sends back to just before `to`.
  void Rollback(VirtualTime to);

  TimeWarpSimulation* simulation_;
  uint32_t id_;
  Cpu* cpu_;
  StateSaver* saver_;
  LvmSystem* system_;
  AddressSpace* as_ = nullptr;
  uint32_t num_objects_;
  uint32_t object_size_;
  StateSaver::StateLayout layout_;

  std::set<Event, EventOrder> input_;
  std::deque<Event> processed_;    // Nondecreasing processing order.
  std::deque<SentRecord> sent_;    // Nondecreasing send_time.
  VirtualTime lvt_ = 0;
  // LVT floor after a rollback that empties the processed list: the
  // checkpoint time established by the last fossil collection.
  VirtualTime saver_checkpoint_floor_ = 0;
  uint64_t next_sequence_ = 1;

  uint64_t events_processed_ = 0;
  uint64_t rollbacks_ = 0;
  uint64_t events_rolled_back_ = 0;
  uint64_t anti_messages_sent_ = 0;
  obs::Histogram rollback_depth_;
};

}  // namespace lvm

#endif  // SRC_TIMEWARP_SCHEDULER_H_
