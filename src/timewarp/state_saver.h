// State-saving strategies for optimistic simulation (Sections 2.4, 4.3).
//
// A scheduler protects its simulation state so it can roll back to any
// virtual time at or after global virtual time. The paper compares:
//   - CopyStateSaver: the conventional approach — copy the affected
//     object's state before processing each event;
//   - LvmStateSaver: logged virtual memory — the working region is logged,
//     the checkpoint segment is its deferred-copy source, rollback is
//     resetDeferredCopy() plus roll-forward from the log, and CULT
//     (checkpoint update and log truncation) advances the checkpoint to GVT.
#ifndef SRC_TIMEWARP_STATE_SAVER_H_
#define SRC_TIMEWARP_STATE_SAVER_H_

#include <cstdint>

#include "src/base/types.h"
#include "src/lvm/lvm_system.h"
#include "src/timewarp/event.h"

namespace lvm {

class Scheduler;

class StateSaver {
 public:
  struct StateLayout {
    // Where the scheduler reads/writes live state during event processing.
    VirtAddr state_base = 0;
    // Where initial state is written before the simulation starts (the
    // checkpoint region for the LVM saver, the state itself otherwise).
    VirtAddr init_base = 0;
  };

  virtual ~StateSaver() = default;

  // Creates the memory structure for `bytes` of simulation state (header
  // included) in `as`.
  virtual StateLayout Setup(LvmSystem* system, AddressSpace* as, uint32_t bytes) = 0;

  // Called before an event executes against [object_va, object_va + size).
  virtual void BeforeEvent(Cpu* cpu, const Event& event, VirtAddr object_va,
                           uint32_t object_size) = 0;

  // Called when the scheduler's local virtual time advances to `lvt`.
  virtual void OnLvtAdvance(Cpu* cpu, VirtualTime lvt) = 0;

  // Restores the state to what it was before any event with time >= `to`
  // executed.
  virtual void Rollback(Cpu* cpu, VirtualTime to) = 0;

  // The scheduler will never roll back before `gvt` again: release or
  // consolidate history (CULT for the LVM saver).
  virtual void AdvanceCheckpoint(Cpu* cpu, VirtualTime gvt) = 0;

  // Pages of rollback history currently held (log pages for the LVM saver;
  // 0 where the notion does not apply). Drives the Section 2.4 policy of
  // forcing CULT when a scheduler "actually runs out of memory for the
  // log".
  virtual uint32_t HistoryPages() const { return 0; }

  // --- statistics ---
  uint64_t rollbacks() const { return rollbacks_; }

 protected:
  uint64_t rollbacks_ = 0;
};

}  // namespace lvm

#endif  // SRC_TIMEWARP_STATE_SAVER_H_
