#include "src/timewarp/simulation.h"

#include "src/base/check.h"
#include "src/timewarp/copy_state_saver.h"
#include "src/timewarp/lvm_state_saver.h"

namespace lvm {

TimeWarpSimulation::TimeWarpSimulation(LvmSystem* system, SimulationModel* model,
                                       const TimeWarpConfig& config)
    : system_(system), model_(model), config_(config) {
  LVM_CHECK(config.num_schedulers >= 1);
  for (uint32_t i = 0; i < config.num_schedulers; ++i) {
    std::unique_ptr<StateSaver> saver;
    if (config.state_saving == StateSaving::kLvm) {
      saver = std::make_unique<LvmStateSaver>();
    } else {
      saver = std::make_unique<CopyStateSaver>();
    }
    int cpu_id = static_cast<int>(i) % system->machine().num_cpus();
    schedulers_.push_back(std::make_unique<Scheduler>(
        this, i, &system->cpu(cpu_id), saver.get(), system, config.objects_per_scheduler,
        config.object_size));
    savers_.push_back(std::move(saver));
  }
}

void TimeWarpSimulation::Bootstrap(const Event& event) {
  Event seeded = event;
  seeded.sequence = 0;
  seeded.sender = SchedulerOf(event.target_object);
  seeded.anti = false;
  Route(seeded);
}

void TimeWarpSimulation::Route(const Event& event) {
  uint32_t target = SchedulerOf(event.target_object);
  LVM_CHECK_MSG(target < schedulers_.size(), "event addressed to a nonexistent object");
  schedulers_[target]->Deliver(event);
}

VirtualTime TimeWarpSimulation::ComputeGvt() const {
  VirtualTime gvt = kNever;
  for (const auto& scheduler : schedulers_) {
    VirtualTime t = scheduler->NextEventTime();
    if (t < gvt) {
      gvt = t;
    }
  }
  return gvt;
}

void TimeWarpSimulation::Run(VirtualTime end_time) {
  while (true) {
    VirtualTime gvt = ComputeGvt();
    if (gvt >= end_time) {
      break;  // Everything before the horizon is committed (or no events).
    }
    VirtualTime horizon = end_time;
    if (config_.conservative && gvt + config_.lookahead < horizon) {
      horizon = gvt + config_.lookahead;
    }
    bool progressed = false;
    for (auto& scheduler : schedulers_) {
      if (scheduler->NextEventTime() < horizon && scheduler->ProcessOne()) {
        progressed = true;
        ++events_since_cult_;
      }
    }
    if (!progressed) {
      break;
    }
    if (config_.conservative) {
      // Blocked processors idle until the round's stragglers-free frontier
      // catches up: their clocks advance to the busiest processor's.
      Cycles frontier = ElapsedCycles();
      for (auto& scheduler : schedulers_) {
        scheduler->cpu()->AdvanceTo(frontier);
      }
    }
    // Out-of-memory CULT: a scheduler whose log grew past the limit
    // fossil-collects now, bottleneck or not (Section 2.4).
    if (config_.cult_log_pages_limit != 0) {
      VirtualTime memory_gvt = 0;
      bool computed = false;
      for (auto& scheduler : schedulers_) {
        if (scheduler->saver()->HistoryPages() >= config_.cult_log_pages_limit) {
          if (!computed) {
            memory_gvt = ComputeGvt();
            if (memory_gvt > end_time) {
              memory_gvt = end_time;
            }
            computed = true;
          }
          scheduler->FossilCollect(memory_gvt);
        }
      }
    }
    if (events_since_cult_ >=
        static_cast<uint64_t>(config_.cult_interval) * schedulers_.size()) {
      events_since_cult_ = 0;
      VirtualTime fresh_gvt = ComputeGvt();
      if (fresh_gvt > end_time) {
        fresh_gvt = end_time;
      }
      for (auto& scheduler : schedulers_) {
        // Section 2.4: a scheduler close to GVT may be the bottleneck; it
        // defers CULT rather than slow the whole simulation down.
        if (config_.cult_laziness != 0 &&
            scheduler->lvt() < fresh_gvt + config_.cult_laziness) {
          continue;
        }
        scheduler->FossilCollect(fresh_gvt);
      }
    }
  }
}

uint64_t TimeWarpSimulation::total_events_processed() const {
  uint64_t total = 0;
  for (const auto& scheduler : schedulers_) {
    total += scheduler->events_processed();
  }
  return total;
}

uint64_t TimeWarpSimulation::total_rollbacks() const {
  uint64_t total = 0;
  for (const auto& scheduler : schedulers_) {
    total += scheduler->rollbacks();
  }
  return total;
}

uint64_t TimeWarpSimulation::total_events_rolled_back() const {
  uint64_t total = 0;
  for (const auto& scheduler : schedulers_) {
    total += scheduler->events_rolled_back();
  }
  return total;
}

uint64_t TimeWarpSimulation::total_anti_messages() const {
  uint64_t total = 0;
  for (const auto& scheduler : schedulers_) {
    total += scheduler->anti_messages_sent();
  }
  return total;
}

double TimeWarpSimulation::Efficiency() const {
  uint64_t processed = total_events_processed();
  if (processed == 0) {
    return 1.0;
  }
  uint64_t wasted = total_events_rolled_back();
  return static_cast<double>(processed - (wasted < processed ? wasted : processed)) /
         static_cast<double>(processed);
}

Cycles TimeWarpSimulation::ElapsedCycles() const {
  Cycles max = 0;
  for (int i = 0; i < system_->machine().num_cpus(); ++i) {
    Cycles t = system_->cpu(i).now();
    if (t > max) {
      max = t;
    }
  }
  return max;
}

}  // namespace lvm
