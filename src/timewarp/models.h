// Simulation models for the Time Warp engine.
//
// SyntheticModel is the paper's Section 4.3 "'simulated' simulation": each
// event performs c compute cycles and w word writes against an object of s
// bytes, then schedules a successor event. Sweeping (c, s, w) reproduces
// Figures 7 and 8.
//
// PholdModel is the classic PHOLD benchmark: a fixed population of jobs
// hops between objects at exponentially distributed increments, each hop
// updating the target object's state. Both models are deterministic
// functions of the event payload, so optimistic re-execution converges to
// the sequential result.
#ifndef SRC_TIMEWARP_MODELS_H_
#define SRC_TIMEWARP_MODELS_H_

#include <cstdint>

#include "src/base/rng.h"
#include "src/timewarp/simulation.h"

namespace lvm {

// Splits an event payload into a fresh deterministic stream.
inline uint64_t DerivePayload(uint64_t payload, uint64_t salt) {
  Rng rng(payload ^ (salt * 0x9e3779b97f4a7c15ull));
  return rng.Next64();
}

class SyntheticModel : public SimulationModel {
 public:
  struct Params {
    uint32_t compute_cycles = 512;  // c
    uint32_t writes = 4;            // w (word writes per event)
    // Virtual-time increment distribution for the successor event.
    uint32_t min_delay = 1;
    uint32_t max_delay = 16;
    // Probability the successor targets a different object (cross-scheduler
    // traffic and rollbacks come from this).
    double remote_probability = 0.1;
  };

  explicit SyntheticModel(const Params& params) : params_(params) {}

  void Execute(Cpu* cpu, Scheduler* scheduler, const Event& event) override;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

class PholdModel : public SimulationModel {
 public:
  struct Params {
    double mean_delay = 8.0;
    uint32_t compute_cycles = 256;
    uint32_t writes = 4;
    // Fraction of hops staying within the job's locality domain. The
    // domain is defined on *global* object ids (groups of
    // `locality_domain` consecutive objects), so event streams are
    // identical regardless of how objects are partitioned onto
    // schedulers — the sequential reference stays valid.
    double locality = 0.0;
    // Objects per locality domain; 0 disables locality (uniform hops).
    // Set it to objects_per_scheduler to make local hops scheduler-local.
    uint32_t locality_domain = 0;
  };

  explicit PholdModel(const Params& params) : params_(params) {}

  void Execute(Cpu* cpu, Scheduler* scheduler, const Event& event) override;

 private:
  Params params_;
};

// A closed queueing network: jobs circulate among service stations. Object
// state (all in simulated, possibly logged, memory): [0] queue length,
// [1] busy flag, [2] jobs served, [3] arrivals seen. Event kinds are
// encoded in the payload's top bit: arrivals enqueue or seize the server;
// departures complete service, route the job onward, and start the next
// queued job. This is the "sophisticated simulation" shape the paper
// argues LVM serves best: state-dependent behaviour over multi-field
// objects.
class QueueingNetworkModel : public SimulationModel {
 public:
  struct Params {
    uint32_t min_service = 4;
    uint32_t max_service = 12;
    uint32_t min_transit = 2;
    uint32_t max_transit = 6;
    uint32_t compute_cycles = 300;
    // Routing locality (config-independent domains of consecutive global
    // station ids, as in PholdModel): 0 disables.
    double locality = 0.0;
    uint32_t locality_domain = 0;
  };

  explicit QueueingNetworkModel(const Params& params) : params_(params) {}

  // Builds the bootstrap arrival for one job.
  static Event JobArrival(VirtualTime time, uint32_t station, uint64_t seed);

  void Execute(Cpu* cpu, Scheduler* scheduler, const Event& event) override;

  // Minimum timestamp increment (for conservative lookahead).
  VirtualTime MinIncrement() const {
    return params_.min_service < params_.min_transit ? params_.min_service
                                                     : params_.min_transit;
  }

 private:
  static constexpr uint64_t kDepartureBit = 1ull << 63;

  Params params_;
};

// Reference check: runs `model` over the same bootstrap events on a
// sequential (conservative, globally time-ordered) executor and returns a
// digest of the final object states. Used to verify that the optimistic
// engine, rollbacks and all, computes the same answer.
uint64_t SequentialDigest(LvmSystem* system, SimulationModel* model,
                          const TimeWarpConfig& config, const std::vector<Event>& bootstrap,
                          VirtualTime end_time);

// Digest of the committed object states of an optimistic run (call after
// Run; fossil-collects to the horizon first so all state is committed).
uint64_t OptimisticDigest(TimeWarpSimulation* simulation, VirtualTime end_time);

}  // namespace lvm

#endif  // SRC_TIMEWARP_MODELS_H_
