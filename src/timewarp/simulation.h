// The Time Warp simulation: schedulers, message transport, GVT, and the run
// loop (Section 2.4).
#ifndef SRC_TIMEWARP_SIMULATION_H_
#define SRC_TIMEWARP_SIMULATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/lvm/lvm_system.h"
#include "src/timewarp/event.h"
#include "src/timewarp/scheduler.h"
#include "src/timewarp/state_saver.h"

namespace lvm {

// Application behaviour: what processing an event means. Implementations
// must be deterministic functions of (event, object state) so re-execution
// after a rollback reproduces the original behaviour.
class SimulationModel {
 public:
  virtual ~SimulationModel() = default;
  virtual void Execute(Cpu* cpu, Scheduler* scheduler, const Event& event) = 0;
};

// Which state saver each scheduler uses.
enum class StateSaving : uint8_t { kCopy, kLvm };

struct TimeWarpConfig {
  uint32_t num_schedulers = 2;
  uint32_t objects_per_scheduler = 8;
  uint32_t object_size = 128;  // Bytes of state per object.
  StateSaving state_saving = StateSaving::kLvm;
  // Run CULT every this many processed events per scheduler.
  uint32_t cult_interval = 256;
  // Section 2.4: defer CULT on a scheduler that might be the bottleneck
  // (LVT within this distance of GVT). 0 disables the heuristic.
  VirtualTime cult_laziness = 0;
  // Section 2.4: a scheduler may defer CULT "until it ... actually runs
  // out of memory for the log" — when nonzero, a scheduler whose rollback
  // history exceeds this many pages fossil-collects immediately,
  // overriding laziness.
  uint32_t cult_log_pages_limit = 0;
  // Engine overhead charged per event (queue operations, dispatch) and per
  // message send. Section 4.3: "in practice there are enough computation
  // cycles required for event scheduling and dispatch that a processor
  // would rarely overload the log FIFO".
  uint32_t event_dispatch_cycles = 250;
  uint32_t send_cycles = 80;
  // Conservative execution (the paper's contrast in Section 2.4: a process
  // "can be thought of as performing speculative execution as an
  // alternative to going idle ... as would occur in conservative
  // simulation"): schedulers only process events with time < GVT +
  // lookahead and otherwise idle. Safe (rollback-free) when `lookahead`
  // does not exceed the model's minimum timestamp increment.
  bool conservative = false;
  VirtualTime lookahead = 1;
};

class TimeWarpSimulation {
 public:
  // Schedulers are placed round-robin over the machine's CPUs.
  TimeWarpSimulation(LvmSystem* system, SimulationModel* model, const TimeWarpConfig& config);

  Scheduler& scheduler(uint32_t i) { return *schedulers_.at(i); }
  uint32_t num_schedulers() const { return static_cast<uint32_t>(schedulers_.size()); }
  const TimeWarpConfig& config() const { return config_; }
  SimulationModel* model() { return model_; }
  LvmSystem* system() { return system_; }

  // Owning scheduler of a global object id.
  uint32_t SchedulerOf(uint32_t object) const { return object / config_.objects_per_scheduler; }
  // Local index of a global object id within its scheduler.
  uint32_t LocalIndex(uint32_t object) const { return object % config_.objects_per_scheduler; }
  uint32_t total_objects() const {
    return config_.num_schedulers * config_.objects_per_scheduler;
  }

  // Seeds the initial event population (before Run).
  void Bootstrap(const Event& event);

  // Routes an event (or anti-message) to its target's scheduler.
  void Route(const Event& event);

  // Runs until every event with time < `end_time` has been processed and
  // committed (GVT >= end_time or the event population is exhausted).
  void Run(VirtualTime end_time);

  // Lower bound on any future rollback: the minimum pending event time.
  VirtualTime ComputeGvt() const;

  // --- aggregate statistics ---
  uint64_t total_events_processed() const;
  uint64_t total_rollbacks() const;
  uint64_t total_events_rolled_back() const;
  uint64_t total_anti_messages() const;
  // Committed events / processed events: 1.0 means no wasted speculation.
  double Efficiency() const;
  // The largest CPU clock across the machine: the elapsed time of the run.
  Cycles ElapsedCycles() const;

 private:
  LvmSystem* system_;
  SimulationModel* model_;
  TimeWarpConfig config_;
  std::vector<std::unique_ptr<StateSaver>> savers_;
  std::vector<std::unique_ptr<Scheduler>> schedulers_;
  std::vector<AddressSpace*> scheduler_as_;
  uint64_t events_since_cult_ = 0;
};

}  // namespace lvm

#endif  // SRC_TIMEWARP_SIMULATION_H_
