#include "src/timewarp/models.h"

#include "src/base/check.h"

namespace lvm {

void SyntheticModel::Execute(Cpu* cpu, Scheduler* scheduler, const Event& event) {
  // All behaviour derives from the event payload so re-execution after a
  // rollback is identical.
  Rng rng(event.payload);
  VirtAddr object = scheduler->ObjectAddr(event.target_object %
                                          scheduler->num_objects());
  uint32_t words = scheduler->object_size() / 4;

  cpu->Compute(params_.compute_cycles);
  for (uint32_t i = 0; i < params_.writes; ++i) {
    uint32_t offset = static_cast<uint32_t>(rng.Uniform(words)) * 4;
    cpu->Write(object + offset, static_cast<uint32_t>(rng.Next64()));
  }

  // Schedule the successor.
  Event next;
  next.time = event.time + rng.UniformRange(params_.min_delay, params_.max_delay);
  next.target_object = event.target_object;
  if (rng.Chance(params_.remote_probability)) {
    next.target_object = static_cast<uint32_t>(rng.Uniform(scheduler->TotalObjects()));
  }
  next.payload = DerivePayload(event.payload, 1);
  scheduler->Send(next);
}

void PholdModel::Execute(Cpu* cpu, Scheduler* scheduler, const Event& event) {
  Rng rng(event.payload);
  VirtAddr object = scheduler->ObjectAddr(event.target_object % scheduler->num_objects());

  // The job visits the object: bump its visit counter and scribble state.
  uint32_t visits = cpu->Read(object);
  cpu->Write(object, visits + 1);
  for (uint32_t i = 0; i < params_.writes; ++i) {
    uint32_t offset =
        4 + static_cast<uint32_t>(rng.Uniform(scheduler->object_size() / 4 - 1)) * 4;
    cpu->Write(object + offset, static_cast<uint32_t>(rng.Next64()) ^ visits);
  }
  cpu->Compute(params_.compute_cycles);

  // Hop to another object after an exponential delay: within the locality
  // domain with probability `locality`, uniformly otherwise.
  Event next;
  auto delay = static_cast<VirtualTime>(rng.Exponential(params_.mean_delay)) + 1;
  next.time = event.time + delay;
  if (params_.locality_domain != 0 && rng.Chance(params_.locality)) {
    uint32_t domain_base =
        (event.target_object / params_.locality_domain) * params_.locality_domain;
    next.target_object =
        domain_base + static_cast<uint32_t>(rng.Uniform(params_.locality_domain));
  } else {
    next.target_object = static_cast<uint32_t>(rng.Uniform(scheduler->TotalObjects()));
  }
  next.payload = DerivePayload(event.payload, 2);
  scheduler->Send(next);
}

Event QueueingNetworkModel::JobArrival(VirtualTime time, uint32_t station, uint64_t seed) {
  Event event;
  event.time = time;
  event.target_object = station;
  event.payload = seed & ~kDepartureBit;
  return event;
}

void QueueingNetworkModel::Execute(Cpu* cpu, Scheduler* scheduler, const Event& event) {
  Rng rng(event.payload | (event.payload >> 32));
  VirtAddr station = scheduler->ObjectAddr(event.target_object % scheduler->num_objects());
  VirtAddr queue_len = station + 0;
  VirtAddr busy = station + 4;
  VirtAddr served = station + 8;
  VirtAddr arrivals = station + 12;

  cpu->Compute(params_.compute_cycles);
  bool departure = (event.payload & kDepartureBit) != 0;
  if (!departure) {
    // A job arrives: seize the idle server or queue up.
    cpu->Write(arrivals, cpu->Read(arrivals) + 1);
    if (cpu->Read(busy) == 0) {
      cpu->Write(busy, 1);
      Event done;
      done.time = event.time + rng.UniformRange(params_.min_service, params_.max_service);
      done.target_object = event.target_object;
      done.payload = DerivePayload(event.payload, 3) | kDepartureBit;
      scheduler->Send(done);
    } else {
      cpu->Write(queue_len, cpu->Read(queue_len) + 1);
    }
    return;
  }

  // Service completes: count it, route the job onward, start the next one.
  cpu->Write(served, cpu->Read(served) + 1);
  Event onward;
  onward.time = event.time + rng.UniformRange(params_.min_transit, params_.max_transit);
  if (params_.locality_domain != 0 && rng.Chance(params_.locality)) {
    uint32_t domain_base =
        (event.target_object / params_.locality_domain) * params_.locality_domain;
    onward.target_object =
        domain_base + static_cast<uint32_t>(rng.Uniform(params_.locality_domain));
  } else {
    onward.target_object = static_cast<uint32_t>(rng.Uniform(scheduler->TotalObjects()));
  }
  onward.payload = DerivePayload(event.payload, 4) & ~kDepartureBit;
  scheduler->Send(onward);
  uint32_t queued = cpu->Read(queue_len);
  if (queued > 0) {
    cpu->Write(queue_len, queued - 1);
    Event done;
    done.time = event.time + rng.UniformRange(params_.min_service, params_.max_service);
    done.target_object = event.target_object;
    done.payload = DerivePayload(event.payload, 5) | kDepartureBit;
    scheduler->Send(done);
  } else {
    cpu->Write(busy, 0);
  }
}

uint64_t OptimisticDigest(TimeWarpSimulation* simulation, VirtualTime end_time) {
  (void)end_time;
  uint64_t digest = 0xcbf29ce484222325ull;  // FNV offset basis.
  for (uint32_t i = 0; i < simulation->num_schedulers(); ++i) {
    digest = simulation->scheduler(i).StateDigest(digest);
  }
  return digest;
}

uint64_t SequentialDigest(LvmSystem* system, SimulationModel* model,
                          const TimeWarpConfig& config, const std::vector<Event>& bootstrap,
                          VirtualTime end_time) {
  // A single-scheduler optimistic simulation processes events in global
  // virtual-time order and never rolls back: it is the conservative
  // sequential reference.
  TimeWarpConfig sequential = config;
  sequential.num_schedulers = 1;
  sequential.objects_per_scheduler = config.num_schedulers * config.objects_per_scheduler;
  sequential.state_saving = StateSaving::kCopy;
  TimeWarpSimulation simulation(system, model, sequential);
  for (const Event& event : bootstrap) {
    simulation.Bootstrap(event);
  }
  simulation.Run(end_time);
  LVM_CHECK(simulation.total_rollbacks() == 0);
  return OptimisticDigest(&simulation, end_time);
}

}  // namespace lvm
