#include "src/timewarp/lvm_state_saver.h"

#include <unordered_set>

#include "src/base/check.h"
#include "src/obs/flight_recorder.h"

namespace lvm {

StateSaver::StateLayout LvmStateSaver::Setup(LvmSystem* system, AddressSpace* as,
                                             uint32_t bytes) {
  system_ = system;
  as_ = as;
  bytes_ = AlignUp(bytes, kPageSize);
  checkpoint_ = system->CreateSegment(bytes_);
  working_ = system->CreateSegment(bytes_);
  working_->SetSourceSegment(checkpoint_);
  checkpoint_region_ = system->CreateRegion(checkpoint_);
  working_region_ = system->CreateRegion(working_);
  checkpoint_base_ = as->BindRegion(checkpoint_region_);
  working_base_ = as->BindRegion(working_region_);
  log_ = system->CreateLogSegment(/*initial_pages=*/8);
  system->AttachLog(working_region_, log_);
  return StateLayout{.state_base = working_base_, .init_base = checkpoint_base_};
}

bool LvmStateSaver::VirtualRecords() const {
  return system_->config().logger_kind == LoggerKind::kOnChip ||
         system_->config().bus_logger_virtual_records;
}

bool LvmStateSaver::IsMarker(const LogRecord& record) const {
  if (VirtualRecords()) {
    // Records carry virtual addresses; the control word is the region base.
    return record.addr == working_base_;
  }
  // The control word is the first word of the working segment.
  return working_->page_count() > 0 && working_->HasFrame(0) &&
         record.addr == working_->FrameAt(0);
}

PhysAddr LvmStateSaver::WorkingLine(uint32_t record_addr) const {
  if (!VirtualRecords()) {
    return LineBase(record_addr);
  }
  uint32_t offset = record_addr - working_base_;
  return LineBase(working_->FrameAt(PageNumber(offset)) + PageOffset(offset));
}

size_t LvmStateSaver::FindCut(const LogReader& reader, VirtualTime t) const {
  for (size_t i = 0; i < reader.size(); ++i) {
    LogRecord record = reader.At(i);
    if (IsMarker(record) && record.value >= t) {
      return i;
    }
  }
  return reader.size();
}

void LvmStateSaver::ApplyToWorking(Cpu* cpu, const LogReader& reader, size_t first,
                                   size_t last) {
  LogApplier applier(system_);
  if (VirtualRecords()) {
    applier.ApplyVirtual(cpu, reader, first, last, as_);
  } else {
    applier.ApplyPhysical(cpu, reader, first, last);
  }
}

void LvmStateSaver::ApplyToCheckpoint(Cpu* cpu, const LogReader& reader, size_t first,
                                      size_t last) {
  if (!VirtualRecords()) {
    LogApplier applier(system_);
    applier.ApplyRetargeted(cpu, reader, first, last, *working_, checkpoint_);
    return;
  }
  // Virtual records: retarget by the offset within the working region.
  const MachineParams& params = system_->machine().params();
  for (size_t i = first; i < last; ++i) {
    LogRecord record = reader.At(i);
    cpu->AddCycles(params.log_apply_record_cycles);
    uint32_t offset = record.addr - working_base_;
    if (offset >= bytes_) {
      continue;
    }
    PhysAddr frame = system_->EnsureSegmentPage(checkpoint_, PageNumber(offset));
    system_->machine().l2().Write(frame + PageOffset(offset), record.value,
                                  static_cast<uint8_t>(record.size));
  }
}

void LvmStateSaver::Rollback(Cpu* cpu, VirtualTime to) {
  LVM_CHECK_MSG(to >= checkpoint_time_,
                "cannot roll back before the checkpoint (GVT guarantee violated)");
  ++rollbacks_;
  // Nested kernel scopes (SyncLog, ResetDeferredCopy, TruncateLogTo) become
  // children of timewarp/rollback in the profile tree.
  LVM_PROF_SCOPE(system_->profiler(), cpu->id(), obs::CostCenter::kRollback);
  system_->SyncLog(cpu, log_);
  LogReader reader(system_->memory(), *log_);
  size_t cut = FindCut(reader, to);
  system_->flight().Record(cpu->id(), obs::FlightEventKind::kTimeWarpRollback, cpu->now(),
                           "rollback", to, cut, reader.size() - cut);
  // Reset the working segment to the checkpoint, then roll forward the
  // updates that belong to times before `to` (Section 2.4).
  system_->ResetDeferredCopy(cpu, as_, working_base_, working_base_ + bytes_);
  ApplyToWorking(cpu, reader, 0, cut);
  // Records of the rolled-back speculation are invalid now.
  system_->TruncateLogTo(cpu, log_, cut);
}

void LvmStateSaver::AdvanceCheckpoint(Cpu* cpu, VirtualTime gvt) {
  if (gvt <= checkpoint_time_) {
    return;
  }
  // CULT: apply all logged updates older than GVT to the checkpoint
  // segment, then truncate them from the log (Section 2.4).
  system_->SyncLog(cpu, log_);
  LogReader reader(system_->memory(), *log_);
  size_t cut = FindCut(reader, gvt);
  ApplyToCheckpoint(cpu, reader, 0, cut);

  // The applied lines now match the advanced checkpoint: point their
  // sources back at it so a later rollback's reset only pays for data
  // modified since GVT. Lines that also carry post-GVT (speculative)
  // records must keep their working contents.
  std::unordered_set<PhysAddr> speculative_lines;
  for (size_t i = cut; i < reader.size(); ++i) {
    speculative_lines.insert(WorkingLine(reader.At(i).addr));
  }
  std::unordered_set<PhysAddr> folded_lines;
  for (size_t i = 0; i < cut; ++i) {
    PhysAddr line = WorkingLine(reader.At(i).addr);
    if (!speculative_lines.contains(line) && folded_lines.insert(line).second) {
      system_->machine().l2().InvalidateLine(line);
      system_->deferred_copy().ResetLine(line);
      cpu->AddCycles(system_->machine().params().reset_dirty_line_cycles);
    }
  }

  system_->CompactLog(cpu, log_, cut);
  checkpoint_time_ = gvt;
}

}  // namespace lvm
