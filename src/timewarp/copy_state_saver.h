// Conventional copy-based state saving (Section 4.3's baseline).
//
// Before processing each event, the scheduler copies the affected object's
// state into a save buffer; rollback restores the copies in reverse order;
// advancing the checkpoint simply discards saves older than GVT. Every
// processor pays the copy on every event — including the bottleneck
// processor, which is the overhead LVM eliminates.
#ifndef SRC_TIMEWARP_COPY_STATE_SAVER_H_
#define SRC_TIMEWARP_COPY_STATE_SAVER_H_

#include <cstdint>
#include <deque>

#include "src/lvm/lvm_system.h"
#include "src/timewarp/state_saver.h"

namespace lvm {

class CopyStateSaver : public StateSaver {
 public:
  CopyStateSaver() = default;

  StateLayout Setup(LvmSystem* system, AddressSpace* as, uint32_t bytes) override;

  void BeforeEvent(Cpu* cpu, const Event& event, VirtAddr object_va,
                   uint32_t object_size) override;

  void OnLvtAdvance(Cpu* cpu, VirtualTime lvt) override {
    (void)cpu;
    (void)lvt;
  }

  void Rollback(Cpu* cpu, VirtualTime to) override;
  void AdvanceCheckpoint(Cpu* cpu, VirtualTime gvt) override;

  size_t live_saves() const { return saves_.size(); }

 private:
  struct Save {
    VirtualTime time = 0;
    VirtAddr object_va = 0;
    uint32_t size = 0;
    uint32_t save_offset = 0;  // Byte offset into the save segment.
  };

  // Copies `len` bytes between the state region and the save segment,
  // charging block-copy costs.
  void CopyOut(Cpu* cpu, VirtAddr object_va, uint32_t save_offset, uint32_t len);
  void CopyBack(Cpu* cpu, uint32_t save_offset, VirtAddr object_va, uint32_t len);

  LvmSystem* system_ = nullptr;
  AddressSpace* as_ = nullptr;
  StdSegment* state_ = nullptr;
  Region* state_region_ = nullptr;
  StdSegment* save_area_ = nullptr;
  VirtAddr state_base_ = 0;
  uint32_t save_capacity_ = 0;
  uint32_t next_save_offset_ = 0;
  std::deque<Save> saves_;  // Oldest first.
};

}  // namespace lvm

#endif  // SRC_TIMEWARP_COPY_STATE_SAVER_H_
