// LVM-based state saving: the Figure 3 structure.
//
//   checkpoint segment --deferred copy--> working segment --logging--> log
//
// Event processing writes the working region freely; the logger records
// every write. The scheduler's LVT is written to the control word at the
// start of the working region whenever it changes; those records are the
// markers the rollback algorithm uses to find virtual-time boundaries in
// the log (Section 2.4, footnote 2).
#ifndef SRC_TIMEWARP_LVM_STATE_SAVER_H_
#define SRC_TIMEWARP_LVM_STATE_SAVER_H_

#include <cstdint>

#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"
#include "src/timewarp/state_saver.h"

namespace lvm {

class LvmStateSaver : public StateSaver {
 public:
  LvmStateSaver() = default;

  StateLayout Setup(LvmSystem* system, AddressSpace* as, uint32_t bytes) override;

  // LVM logs everything automatically; nothing to do per event.
  void BeforeEvent(Cpu* cpu, const Event& event, VirtAddr object_va,
                   uint32_t object_size) override {
    (void)cpu;
    (void)event;
    (void)object_va;
    (void)object_size;
  }

  void OnLvtAdvance(Cpu* cpu, VirtualTime lvt) override {
    // The marker write: a logged store of the new LVT to the control word.
    cpu->Write(working_base_, static_cast<uint32_t>(lvt));
  }

  void Rollback(Cpu* cpu, VirtualTime to) override;
  void AdvanceCheckpoint(Cpu* cpu, VirtualTime gvt) override;
  uint32_t HistoryPages() const override {
    return (log_->append_offset + kPageSize - 1) / kPageSize;
  }

  LogSegment* log() { return log_; }
  VirtualTime checkpoint_time() const { return checkpoint_time_; }

 private:
  // Index of the first log record belonging to virtual time >= `t`: the
  // position just before the first LVT marker with value >= t.
  size_t FindCut(const LogReader& reader, VirtualTime t) const;
  bool IsMarker(const LogRecord& record) const;
  // Whether log records carry virtual addresses (on-chip logger machines).
  bool VirtualRecords() const;
  // Physical line address in the working segment for a record address.
  PhysAddr WorkingLine(uint32_t record_addr) const;
  // Applies records [first, last) back onto the working segment.
  void ApplyToWorking(Cpu* cpu, const LogReader& reader, size_t first, size_t last);
  // Applies records [first, last) onto the checkpoint segment.
  void ApplyToCheckpoint(Cpu* cpu, const LogReader& reader, size_t first, size_t last);

  LvmSystem* system_ = nullptr;
  AddressSpace* as_ = nullptr;
  StdSegment* checkpoint_ = nullptr;
  StdSegment* working_ = nullptr;
  Region* working_region_ = nullptr;
  Region* checkpoint_region_ = nullptr;
  LogSegment* log_ = nullptr;
  VirtAddr working_base_ = 0;
  VirtAddr checkpoint_base_ = 0;
  uint32_t bytes_ = 0;
  VirtualTime checkpoint_time_ = 0;
};

}  // namespace lvm

#endif  // SRC_TIMEWARP_LVM_STATE_SAVER_H_
