// Events and virtual time for the optimistic (Time Warp) simulator
// (Section 2.4).
#ifndef SRC_TIMEWARP_EVENT_H_
#define SRC_TIMEWARP_EVENT_H_

#include <cstdint>
#include <limits>

namespace lvm {

// Simulation (virtual) time. Kept below 2^32 in practice so LVT markers fit
// a logged word.
using VirtualTime = uint64_t;
inline constexpr VirtualTime kNever = std::numeric_limits<VirtualTime>::max();

struct Event {
  VirtualTime time = 0;
  // Global object identifier; the owning scheduler is derived from it.
  uint32_t target_object = 0;
  // Deterministic payload: models derive all their randomness from it, so
  // re-execution after a rollback reproduces the same behaviour.
  uint64_t payload = 0;
  // Unique send identifier for anti-message annihilation.
  uint64_t sequence = 0;
  // Scheduler that sent the event.
  uint32_t sender = 0;
  // True for an anti-message cancelling the positive copy with the same
  // sequence.
  bool anti = false;
};

// Processing order: virtual time, then the deterministic payload as a
// tie-break (so re-executions order equal-time events identically), then
// target. `sequence` deliberately does not participate: it differs between
// an original and a re-sent copy of the same logical event.
struct EventOrder {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    if (a.payload != b.payload) {
      return a.payload < b.payload;
    }
    if (a.target_object != b.target_object) {
      return a.target_object < b.target_object;
    }
    return a.sequence < b.sequence;
  }
};

}  // namespace lvm

#endif  // SRC_TIMEWARP_EVENT_H_
