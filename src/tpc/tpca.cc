#include "src/tpc/tpca.h"

#include "src/base/check.h"

namespace lvm {

TpcA::TpcA(RecoverableStore* store, const TpcAConfig& config)
    : store_(store), config_(config), rng_(config.seed) {
  LVM_CHECK_MSG(store->data_size() >= config.RequiredBytes(),
                "recoverable store too small for the TPC-A schema");
  LVM_CHECK(config.branches >= 1 && config.tellers >= config.branches);
}

VirtAddr TpcA::BranchAddr(uint32_t i) const {
  return store_->data_base() + i * TpcAConfig::kRowBytes;
}
VirtAddr TpcA::TellerAddr(uint32_t i) const {
  return BranchAddr(config_.branches) + i * TpcAConfig::kRowBytes;
}
VirtAddr TpcA::AccountAddr(uint32_t i) const {
  return TellerAddr(config_.tellers) + i * TpcAConfig::kRowBytes;
}
VirtAddr TpcA::HistoryAddr(uint32_t slot) const {
  return AccountAddr(config_.accounts) + slot * TpcAConfig::kRowBytes;
}

void TpcA::Setup(Cpu* cpu) {
  // Zero balances; the frames come back zero-filled, so setup just commits
  // an empty transaction establishing the schema.
  store_->Begin(cpu);
  store_->SetRange(cpu, BranchAddr(0), TpcAConfig::kRowBytes);
  store_->Write(cpu, BranchAddr(0), 0);
  store_->Commit(cpu);
}

void TpcA::Transact(Cpu* cpu, bool commit) {
  uint32_t teller = static_cast<uint32_t>(rng_.Uniform(config_.tellers));
  uint32_t branch = teller % config_.branches;
  uint32_t account = static_cast<uint32_t>(rng_.Uniform(config_.accounts));
  auto magnitude = static_cast<int32_t>(rng_.UniformRange(1, 99999));
  int32_t delta = rng_.Chance(0.5) ? magnitude : -magnitude;

  store_->Begin(cpu);

  // Account.
  store_->SetRange(cpu, AccountAddr(account), 4);
  auto account_balance = static_cast<int32_t>(store_->Read(cpu, AccountAddr(account)));
  store_->Write(cpu, AccountAddr(account), static_cast<uint32_t>(account_balance + delta));

  // Teller.
  store_->SetRange(cpu, TellerAddr(teller), 4);
  auto teller_balance = static_cast<int32_t>(store_->Read(cpu, TellerAddr(teller)));
  store_->Write(cpu, TellerAddr(teller), static_cast<uint32_t>(teller_balance + delta));

  // Branch.
  store_->SetRange(cpu, BranchAddr(branch), 4);
  auto branch_balance = static_cast<int32_t>(store_->Read(cpu, BranchAddr(branch)));
  store_->Write(cpu, BranchAddr(branch), static_cast<uint32_t>(branch_balance + delta));

  // History record.
  VirtAddr history = HistoryAddr(history_cursor_);
  history_cursor_ = (history_cursor_ + 1) % config_.history_slots;
  store_->SetRange(cpu, history, TpcAConfig::kRowBytes);
  store_->Write(cpu, history + 0, account);
  store_->Write(cpu, history + 4, teller);
  store_->Write(cpu, history + 8, static_cast<uint32_t>(delta));
  store_->Write(cpu, history + 12, static_cast<uint32_t>(transactions_));

  if (commit) {
    store_->Commit(cpu);
    expected_total_ += delta;
    ++transactions_;
  } else {
    store_->Abort(cpu);
  }
  store_->MaybeTruncate(cpu);
}

void TpcA::RunTransaction(Cpu* cpu) { Transact(cpu, /*commit=*/true); }

void TpcA::RunAbortedTransaction(Cpu* cpu) { Transact(cpu, /*commit=*/false); }

int32_t TpcA::BranchBalance(Cpu* cpu, uint32_t branch) {
  return static_cast<int32_t>(store_->Read(cpu, BranchAddr(branch)));
}
int32_t TpcA::TellerBalance(Cpu* cpu, uint32_t teller) {
  return static_cast<int32_t>(store_->Read(cpu, TellerAddr(teller)));
}
int32_t TpcA::AccountBalance(Cpu* cpu, uint32_t account) {
  return static_cast<int32_t>(store_->Read(cpu, AccountAddr(account)));
}

bool TpcA::CheckConsistency(Cpu* cpu) {
  int64_t branches = 0;
  for (uint32_t i = 0; i < config_.branches; ++i) {
    branches += BranchBalance(cpu, i);
  }
  int64_t tellers = 0;
  for (uint32_t i = 0; i < config_.tellers; ++i) {
    tellers += TellerBalance(cpu, i);
  }
  int64_t accounts = 0;
  for (uint32_t i = 0; i < config_.accounts; ++i) {
    accounts += AccountBalance(cpu, i);
  }
  return branches == expected_total_ && tellers == expected_total_ &&
         accounts == expected_total_;
}

}  // namespace lvm
