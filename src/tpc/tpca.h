// TPC-A debit-credit workload over a RecoverableStore (Section 4.2).
//
// The classic bank schema: branches, tellers, accounts, and a history ring.
// Each transaction picks a teller, its branch, an account and a delta,
// updates the three balances, and appends a history record — a short
// sequence of small recoverable writes, which is exactly the profile where
// set_range() overhead dominates the in-transaction time.
//
// Record layout: 16 bytes per row, the balance in the first word. The
// history record stores {account, teller, delta, transaction}.
#ifndef SRC_TPC_TPCA_H_
#define SRC_TPC_TPCA_H_

#include <cstdint>

#include "src/base/rng.h"
#include "src/base/types.h"
#include "src/rvm/recoverable_store.h"

namespace lvm {

struct TpcAConfig {
  uint32_t branches = 1;
  uint32_t tellers = 10;
  uint32_t accounts = 10000;
  uint32_t history_slots = 4096;
  uint64_t seed = 1;

  // Bytes the schema needs in the recoverable store.
  uint32_t RequiredBytes() const {
    return (branches + tellers + accounts + history_slots) * kRowBytes;
  }

  static constexpr uint32_t kRowBytes = 16;
};

class TpcA {
 public:
  TpcA(RecoverableStore* store, const TpcAConfig& config);

  // Populates the schema (one setup transaction); balances start at zero.
  void Setup(Cpu* cpu);

  // Runs one debit-credit transaction.
  void RunTransaction(Cpu* cpu);

  // Runs one transaction that aborts after its updates (for recovery
  // tests); balances must be unchanged afterwards.
  void RunAbortedTransaction(Cpu* cpu);

  // --- audit ---
  int32_t BranchBalance(Cpu* cpu, uint32_t branch);
  int32_t TellerBalance(Cpu* cpu, uint32_t teller);
  int32_t AccountBalance(Cpu* cpu, uint32_t account);
  // Sum of all committed deltas, tracked outside the store.
  int64_t expected_total() const { return expected_total_; }
  // TPC-A consistency: sum(branches) == sum(tellers) == sum(accounts).
  bool CheckConsistency(Cpu* cpu);

  uint64_t transactions() const { return transactions_; }

 private:
  VirtAddr BranchAddr(uint32_t i) const;
  VirtAddr TellerAddr(uint32_t i) const;
  VirtAddr AccountAddr(uint32_t i) const;
  VirtAddr HistoryAddr(uint32_t slot) const;
  // One transaction body; commits when `commit`, aborts otherwise.
  void Transact(Cpu* cpu, bool commit);

  RecoverableStore* store_;
  TpcAConfig config_;
  Rng rng_;
  uint64_t transactions_ = 0;
  uint32_t history_cursor_ = 0;
  int64_t expected_total_ = 0;
};

}  // namespace lvm

#endif  // SRC_TPC_TPCA_H_
