#include "src/ckpt/page_protect.h"

#include <cstring>

#include "src/base/check.h"

namespace lvm {

PageProtectCheckpoint::PageProtectCheckpoint(LvmSystem* system, uint32_t size,
                                             const PageProtectCosts& costs)
    : system_(system),
      costs_(costs),
      segment_(system->CreateSegment(size)),
      region_(system->CreateRegion(segment_)),
      as_(system->CreateAddressSpace()) {
  size_ = AlignUp(size, kPageSize);
  base_ = as_->BindRegion(region_);
  system->Activate(as_);
}

void PageProtectCheckpoint::Write(Cpu* cpu, uint32_t offset, uint32_t value, uint8_t size) {
  LVM_DCHECK(offset + size <= size_);
  uint32_t page = PageNumber(offset);
  if (saved_pages_.find(page) == saved_pages_.end()) {
    // First write to a protected page: trap and save the page as part of
    // the previous checkpoint (Li and Appel).
    ++write_faults_;
    cpu->AddCycles(costs_.write_fault_cycles);
    PhysAddr frame = system_->EnsureSegmentPage(segment_, page);
    std::vector<uint8_t> copy(kPageSize);
    for (uint32_t line = 0; line < kPageSize; line += kLineSize) {
      system_->ReadEffectiveLine(frame + line, &copy[line]);
    }
    cpu->AddCycles(static_cast<Cycles>(kLinesPerPage) *
                   system_->machine().params().bcopy_block_cycles);
    saved_pages_.emplace(page, std::move(copy));
  }
  cpu->Write(base_ + offset, value, size);
}

uint32_t PageProtectCheckpoint::Read(Cpu* cpu, uint32_t offset, uint8_t size) {
  return cpu->Read(base_ + offset, size);
}

void PageProtectCheckpoint::Checkpoint(Cpu* cpu) {
  // Creating a new checkpoint re-protects every page written since the
  // last one and drops the old saved copies.
  cpu->AddCycles(static_cast<Cycles>(saved_pages_.size()) * costs_.protect_page_cycles);
  saved_pages_.clear();
}

void PageProtectCheckpoint::Restore(Cpu* cpu) {
  // Reset the modified pages to their saved copies.
  for (const auto& [page, copy] : saved_pages_) {
    PhysAddr frame = segment_->FrameAt(page);
    for (uint32_t offset = 0; offset < kPageSize; offset += 4) {
      uint32_t value = 0;
      std::memcpy(&value, &copy[offset], 4);
      system_->machine().l2().Write(frame + offset, value, 4);
    }
    cpu->AddCycles(static_cast<Cycles>(kLinesPerPage) *
                   system_->machine().params().bcopy_block_cycles);
    cpu->AddCycles(costs_.protect_page_cycles);
  }
  saved_pages_.clear();
}

PageProtectWriteLogger::PageProtectWriteLogger(LvmSystem* system, uint32_t size,
                                               const PageProtectCosts& costs)
    : system_(system),
      costs_(costs),
      segment_(system->CreateSegment(size)),
      region_(system->CreateRegion(segment_)),
      as_(system->CreateAddressSpace()) {
  base_ = as_->BindRegion(region_);
  system->Activate(as_);
}

void PageProtectWriteLogger::Write(Cpu* cpu, uint32_t offset, uint32_t value, uint8_t size) {
  // Every write traps: the kernel completes the store and logs it
  // (Section 5.1: over 300 cycles on then-current processors).
  cpu->AddCycles(costs_.write_fault_cycles + costs_.append_record_cycles);
  cpu->Write(base_ + offset, value, size);
  PhysAddr frame = segment_->FrameAt(PageNumber(offset));
  log_.push_back(LogRecord{
      .addr = frame + PageOffset(offset),
      .value = value,
      .size = size,
      .flags = 0,
      .timestamp = static_cast<uint32_t>(cpu->now() / system_->machine().params().timestamp_divider),
  });
}

}  // namespace lvm
