// Page-protection-based alternatives the paper compares against
// (Section 5.1).
//
// PageProtectCheckpoint models Li and Appel's virtual-memory checkpointing:
// after a checkpoint, every page is write-protected; the first write to a
// page traps and saves a copy of the page as part of the previous
// checkpoint; restoring resets the mappings to those saved pages.
//
// PageProtectWriteLogger models using the same trap machinery for
// *word-level logging*: every write to the logged region takes a write
// protection fault, completes the write, and appends a record — the paper
// estimates over 300 cycles per write even implemented at a low level in
// the kernel, which is what motivates hardware support.
#ifndef SRC_CKPT_PAGE_PROTECT_H_
#define SRC_CKPT_PAGE_PROTECT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/types.h"
#include "src/logger/log_record.h"
#include "src/lvm/lvm_system.h"

namespace lvm {

struct PageProtectCosts {
  // Write-protection trap: kernel entry, fault decode, mapping update,
  // return (per Section 5.1's >300-cycle estimate the fault alone is the
  // bulk of this).
  uint32_t write_fault_cycles = 320;
  // Re-protecting one page when a checkpoint is taken.
  uint32_t protect_page_cycles = 60;
  // Software record append (build the record, bump the tail).
  uint32_t append_record_cycles = 30;
};

class PageProtectCheckpoint {
 public:
  PageProtectCheckpoint(LvmSystem* system, uint32_t size,
                        const PageProtectCosts& costs = PageProtectCosts{});

  VirtAddr base() const { return base_; }
  uint32_t size() const { return size_; }

  // A write through the checkpointed region: the first write to each page
  // since the last checkpoint pays the fault and the page save.
  void Write(Cpu* cpu, uint32_t offset, uint32_t value, uint8_t size = 4);
  uint32_t Read(Cpu* cpu, uint32_t offset, uint8_t size = 4);

  // Takes a checkpoint: discard saved pages, re-protect everything dirty.
  void Checkpoint(Cpu* cpu);
  // Restores the state of the last checkpoint.
  void Restore(Cpu* cpu);

  uint64_t write_faults() const { return write_faults_; }

 private:
  LvmSystem* system_;
  PageProtectCosts costs_;
  StdSegment* segment_;
  Region* region_;
  AddressSpace* as_;
  VirtAddr base_ = 0;
  uint32_t size_ = 0;
  // Page index -> copy saved at first write since the checkpoint.
  std::unordered_map<uint32_t, std::vector<uint8_t>> saved_pages_;
  uint64_t write_faults_ = 0;
};

class PageProtectWriteLogger {
 public:
  PageProtectWriteLogger(LvmSystem* system, uint32_t size,
                         const PageProtectCosts& costs = PageProtectCosts{});

  VirtAddr base() const { return base_; }

  // A logged write: trap on every store, append a software record.
  void Write(Cpu* cpu, uint32_t offset, uint32_t value, uint8_t size = 4);

  const std::vector<LogRecord>& log() const { return log_; }

 private:
  LvmSystem* system_;
  PageProtectCosts costs_;
  StdSegment* segment_;
  Region* region_;
  AddressSpace* as_;
  VirtAddr base_ = 0;
  std::vector<LogRecord> log_;
};

}  // namespace lvm

#endif  // SRC_CKPT_PAGE_PROTECT_H_
