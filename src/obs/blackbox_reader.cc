#include "src/obs/blackbox_reader.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace lvm {
namespace obs {

namespace {

bool FailParse(std::string* error, const std::string& message) {
  if (error != nullptr && error->empty()) {
    *error = message;
  }
  return false;
}

BlackBoxEvent ParseEvent(const JsonValue& v) {
  BlackBoxEvent e;
  e.seq = v.GetUint64("seq");
  e.ring = static_cast<int>(v.GetInt64("ring"));
  e.kind = v.GetString("kind");
  e.component = v.GetString("component");
  e.ts = v.GetUint64("ts");
  e.detail = v.GetString("detail");
  e.a0 = v.GetUint64("a0");
  e.a1 = v.GetUint64("a1");
  e.a2 = v.GetUint64("a2");
  return e;
}

BlackBoxRecord ParseRecord(const JsonValue& v) {
  BlackBoxRecord r;
  r.addr = v.GetUint64("addr");
  r.value = v.GetUint64("value");
  r.size = static_cast<uint32_t>(v.GetUint64("size"));
  r.flags = static_cast<uint32_t>(v.GetUint64("flags"));
  r.timestamp = v.GetUint64("timestamp");
  return r;
}

std::string RingName(const BlackBoxDump& dump, int ring) {
  char buffer[24];
  if (dump.rings > 0 && ring == dump.rings - 1) {
    return "krnl";
  }
  std::snprintf(buffer, sizeof(buffer), "cpu%d", ring);
  return buffer;
}

}  // namespace

uint64_t BlackBoxDump::Counter(std::string_view name) const {
  const JsonValue* counters = metrics.Find("counters");
  return counters != nullptr ? counters->GetUint64(name) : 0;
}

uint64_t BlackBoxDump::Param(std::string_view name, uint64_t fallback) const {
  const JsonValue* params = config.Find("params");
  return params != nullptr ? params->GetUint64(name, fallback) : fallback;
}

bool ParseBlackBoxDump(std::string_view json, BlackBoxDump* out, std::string* error) {
  *out = BlackBoxDump();
  JsonValue root;
  std::string parse_error;
  if (!ParseJson(json, &root, &parse_error)) {
    return FailParse(error, "not valid JSON: " + parse_error);
  }
  if (!root.is_object()) {
    return FailParse(error, "dump is not a JSON object");
  }
  std::string format = root.GetString("format");
  if (format != kBlackBoxFormat) {
    return FailParse(error, "unrecognized format \"" + format + "\" (want " +
                                std::string(kBlackBoxFormat) + ")");
  }
  out->cause = root.GetString("cause");
  out->cause_detail = root.GetString("cause_detail");
  if (const JsonValue* config = root.Find("config")) {
    out->config = *config;
  }
  if (const JsonValue* flight = root.Find("flight")) {
    out->events_recorded = flight->GetUint64("events_recorded");
    out->events_dropped = flight->GetUint64("events_dropped");
    out->rings = static_cast<int>(flight->GetInt64("rings"));
    out->ring_capacity = flight->GetUint64("ring_capacity");
    if (const JsonValue* events = flight->Find("events"); events != nullptr &&
        events->is_array()) {
      out->events.reserve(events->Items().size());
      for (const JsonValue& e : events->Items()) {
        out->events.push_back(ParseEvent(e));
      }
    }
  }
  if (const JsonValue* metrics = root.Find("metrics")) {
    out->metrics = *metrics;
  }
  if (const JsonValue* logs = root.Find("logs"); logs != nullptr && logs->is_array()) {
    for (const JsonValue& l : logs->Items()) {
      BlackBoxLog log;
      log.log_index = static_cast<int>(l.GetInt64("log_index"));
      log.append_offset = l.GetUint64("append_offset");
      log.pages = l.GetUint64("pages");
      log.records = l.GetUint64("records");
      log.tail_first = l.GetUint64("tail_first");
      if (const JsonValue* tail = l.Find("tail_records"); tail != nullptr && tail->is_array()) {
        for (const JsonValue& r : tail->Items()) {
          log.tail_records.push_back(ParseRecord(r));
        }
      }
      if (const JsonValue* memory = l.Find("memory"); memory != nullptr && memory->is_array()) {
        for (const JsonValue& m : memory->Items()) {
          BlackBoxMemoryExtent extent;
          extent.addr = m.GetUint64("addr");
          if (!HexDecode(m.GetString("hex"), &extent.bytes)) {
            return FailParse(error, "bad hex in memory extent");
          }
          log.memory.push_back(std::move(extent));
        }
      }
      out->logs.push_back(std::move(log));
    }
  }
  if (const JsonValue* races = root.Find("races")) {
    out->races = *races;
  }
  if (const JsonValue* violations = root.Find("violations");
      violations != nullptr && violations->is_array()) {
    for (const JsonValue& v : violations->Items()) {
      out->violations.push_back(BlackBoxViolation{v.GetString("kind"), v.GetString("message")});
    }
  }
  return true;
}

bool LoadBlackBoxDump(const std::string& path, BlackBoxDump* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return FailParse(error, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseBlackBoxDump(buffer.str(), out, error);
}

std::string HexEncode(const uint8_t* data, size_t size) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(size * 2);
  for (size_t i = 0; i < size; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  return out;
}

bool HexDecode(std::string_view hex, std::vector<uint8_t>* out) {
  out->clear();
  if (hex.size() % 2 != 0) {
    return false;
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') {
      return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
      return c - 'a' + 10;
    }
    if (c >= 'A' && c <= 'F') {
      return c - 'A' + 10;
    }
    return -1;
  };
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    out->push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return true;
}

std::string RenderSummary(const BlackBoxDump& dump) {
  std::ostringstream out;
  out << "black box: cause=" << dump.cause;
  if (!dump.cause_detail.empty()) {
    out << " (" << dump.cause_detail << ")";
  }
  out << "\n";
  out << "config: " << dump.config.GetUint64("num_cpus", 1) << " cpu(s), "
      << dump.config.GetString("logger_kind", "?") << " logger, "
      << dump.config.GetUint64("memory_size") << " B memory, seed "
      << dump.config.GetUint64("seed") << "\n";
  out << "flight: " << dump.events_recorded << " events recorded, " << dump.events_dropped
      << " overwritten, " << dump.events.size() << " retained in " << dump.rings
      << " ring(s) x " << dump.ring_capacity << "\n";
  uint64_t total_records = 0;
  for (const BlackBoxLog& log : dump.logs) {
    total_records += log.records;
  }
  out << "logs: " << dump.logs.size() << " segment(s), " << total_records << " record(s)\n";
  size_t races = dump.races.is_array() ? dump.races.Items().size() : 0;
  out << "races: " << races << " pending report(s)\n";
  if (!dump.violations.empty()) {
    out << "violations (" << dump.violations.size() << "):\n";
    for (const BlackBoxViolation& v : dump.violations) {
      out << "  - " << v.kind << ": " << v.message << "\n";
    }
  }
  return out.str();
}

std::string RenderTimeline(const BlackBoxDump& dump, size_t max_events) {
  std::ostringstream out;
  size_t first = 0;
  if (max_events > 0 && dump.events.size() > max_events) {
    first = dump.events.size() - max_events;
    out << "... " << first << " earlier event(s) elided\n";
  }
  out << "     seq          ts ring  component  event\n";
  // Cumulative counters carried by the previous sync point, for deltas.
  bool have_sync = false;
  uint64_t sync0 = 0;
  uint64_t sync1 = 0;
  uint64_t sync2 = 0;
  for (size_t i = 0; i < dump.events.size(); ++i) {
    const BlackBoxEvent& e = dump.events[i];
    bool is_sync = e.kind == "metrics_sync";
    if (i < first) {
      if (is_sync) {  // Keep delta continuity across the elision.
        have_sync = true;
        sync0 = e.a0;
        sync1 = e.a1;
        sync2 = e.a2;
      }
      continue;
    }
    char head[80];
    std::snprintf(head, sizeof(head), "%8llu %11llu %-5s %-10s ",
                  static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned long long>(e.ts), RingName(dump, e.ring).c_str(),
                  e.component.c_str());
    out << head << e.kind;
    if (is_sync) {
      if (have_sync) {
        out << " d_records=+" << (e.a0 - sync0) << " d_logged_writes=+" << (e.a1 - sync1)
            << " d_overloads=+" << (e.a2 - sync2);
      } else {
        out << " records=" << e.a0 << " logged_writes=" << e.a1 << " overloads=" << e.a2;
      }
      have_sync = true;
      sync0 = e.a0;
      sync1 = e.a1;
      sync2 = e.a2;
    } else {
      if (!e.detail.empty() && e.detail != e.kind) {
        out << " " << e.detail;
      }
      if (e.a0 != 0 || e.a1 != 0 || e.a2 != 0) {
        out << " [" << e.a0 << ", " << e.a1 << ", " << e.a2 << "]";
      }
    }
    out << "\n";
  }
  return out.str();
}

std::vector<std::pair<std::string, double>> AttributeCycles(const BlackBoxDump& dump) {
  std::vector<std::pair<std::string, double>> buckets;
  double kernel =
      static_cast<double>(dump.Counter("kernel.logging_faults_handled")) *
          static_cast<double>(dump.Param("logging_fault_cpu_cycles", 400)) +
      static_cast<double>(dump.Counter("kernel.overload_suspensions")) *
          static_cast<double>(dump.Param("overload_kernel_cycles", 21000));
  double vm = static_cast<double>(dump.Counter("cpu.page_faults")) *
              static_cast<double>(dump.Param("page_fault_cycles", 800));
  double logger = static_cast<double>(dump.Counter("logger.records_logged")) *
                  static_cast<double>(dump.Param("logger_service_active_cycles", 27));
  double bus = static_cast<double>(dump.Counter("bus.busy_cycles"));
  double l2 = static_cast<double>(dump.Counter("l2.fills")) *
                  static_cast<double>(dump.Param("memory_read_cycles", 24)) +
              static_cast<double>(dump.Counter("l2.writebacks")) *
                  static_cast<double>(dump.Param("cache_block_write_total", 9));
  double app = static_cast<double>(dump.Counter("cpu.compute_cycles"));
  buckets.emplace_back("app", app);
  buckets.emplace_back("kernel", kernel);
  buckets.emplace_back("vm", vm);
  buckets.emplace_back("logger", logger);
  buckets.emplace_back("bus", bus);
  buckets.emplace_back("l2", l2);
  std::sort(buckets.begin(), buckets.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return buckets;
}

std::string RenderAttribution(const BlackBoxDump& dump) {
  std::ostringstream out;
  double max_cycles = static_cast<double>(dump.Counter("cpu.max_cycles"));
  out << "cycle attribution (vs cpu.max_cycles=" << dump.Counter("cpu.max_cycles") << "):\n";
  for (const auto& [component, cycles] : AttributeCycles(dump)) {
    char line[96];
    double share = max_cycles > 0 ? 100.0 * cycles / max_cycles : 0.0;
    std::snprintf(line, sizeof(line), "  %-7s %14.0f cycles  %6.2f%%\n", component.c_str(),
                  cycles, share);
    out << line;
  }
  return out.str();
}

}  // namespace obs
}  // namespace lvm
