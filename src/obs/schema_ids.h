// Registry of strict-JSON schema version literals (DESIGN.md §13).
//
// Every JSON document the repo emits carries a `"schema"` field naming its
// format and version (`lvm.<doc>.v<N>`). Those literals live here — and only
// here — so readers and writers cannot drift apart silently, and so the
// lvm-lint schema-version rule can enforce that no `lvm.*.v<N>` string
// appears anywhere else in src/. Bump a version by adding a new constant;
// never reuse or edit an existing literal.
#ifndef SRC_OBS_SCHEMA_IDS_H_
#define SRC_OBS_SCHEMA_IDS_H_

namespace lvm {
namespace obs {

// Black-box crash dump envelope (src/lvm/black_box.cc, blackbox_reader.h).
inline constexpr const char kBlackBoxSchema[] = "lvm.blackbox.v1";

// Happens-before race detector report (src/race/race_detector.cc).
inline constexpr const char kRaceReportSchema[] = "lvm.race_report.v1";

// lvm-lint --json report (tools/lvm_lint).
inline constexpr const char kLintReportSchema[] = "lvm.lint_report.v1";

// Cycle-attribution profiler export (src/obs/profiler.cc, tools/lvm_prof).
inline constexpr const char kProfileSchema[] = "lvm.profile.v1";

// Live telemetry NDJSON stream lines (src/obs/telemetry.cc).
inline constexpr const char kTelemetrySchema[] = "lvm.telemetry.v1";

// Durable-WAL post-mortem dump from a dying process
// (src/hostlvm/wal_arena.cc, tests/wal_crash_matrix_test.cc).
inline constexpr const char kWalBoxSchema[] = "lvm.walbox.v1";

// scripts/perf_diff.py machine-readable report. The Python gate mirrors
// this literal (lint only scans src/ C++, so the registry entry here is
// the single C++-side source of truth for readers).
inline constexpr const char kPerfDiffSchema[] = "lvm.perfdiff.v1";

// Per-record provenance waterfall export (src/obs/waterfall.cc,
// tools/lvm_trace).
inline constexpr const char kWaterfallSchema[] = "lvm.waterfall.v1";

// lvm-analyze --json report: lock-order, blocking-context, and WAL
// persist-ordering findings (tools/lvm_analyze).
inline constexpr const char kAnalysisReportSchema[] = "lvm.analysis.v1";

// Lock-order graph, emitted both by lvm-analyze (source "static") and by
// the runtime LockOrderWitness (source "witness", src/base/lock_witness.cc)
// so the deadlock-check test can assert static ⊇ dynamic.
inline constexpr const char kLockGraphSchema[] = "lvm.lockgraph.v1";

}  // namespace obs
}  // namespace lvm

#endif  // SRC_OBS_SCHEMA_IDS_H_
