// Sampled per-record provenance tracing: the log-path waterfall.
//
// The profiler (DESIGN.md §14) says how many cycles each subsystem burned;
// the waterfall says where one *logged write* spent its life between the CPU
// store and durability. A configurable fraction of logged writes (1 in
// 2^sample_shift, per lane) is assigned a provenance token at record-creation
// time; every hop of the log path — FIFO/shard enqueue, DMA drain, segment
// append, WAL group commit, replay — stamps a (stage, sim-cycle, wall-ns,
// queue-depth) tuple into the token's staging slot. A completed waterfall
// folds its per-stage wall-ns deltas into log2 histograms and is retained
// (bounded) for the strict-JSON lvm.waterfall.v1 export that tools/lvm_trace
// renders.
//
// Design rules (mirrors the profiler's):
//   1. Stamps NEVER advance simulated clocks or mutate records beyond the
//      kRecordFlagSampled bit, so enabling the tracer cannot change a
//      simulation result.
//   2. Disabled means absent: call sites hold a WaterfallTracer* that is
//      null until LvmSystem::EnableWaterfall, so the off cost is one
//      pointer test. An enabled tracer charges unsampled writes one
//      per-lane counter increment and a mask test.
//   3. Sampling is deterministic: each lane samples on a fixed stride of
//      its own logged-write sequence (phase derived from the seed), so the
//      seeded token-scheduler mode samples the identical record set on
//      every run with the same seed.
//
// Token lifecycle and threading: SampleRecord allocates a slot in the
// origin lane's fixed table and returns a nonzero token (lane, slot,
// generation); 0 means "not sampled" and every API ignores it. Between
// SampleRecord and Complete the token is owned by one thread at a time —
// hand-offs ride the log path's existing synchronization (SPSC rings,
// engine join), exactly like the records themselves. Complete (and the
// bounded completed store behind it) is safe from concurrent lanes; the
// identity scans (MatchToken / TokensForSeq) and the export run on
// quiesced logs, after drain/join.
#ifndef SRC_OBS_WATERFALL_H_
#define SRC_OBS_WATERFALL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/lock_order.h"
#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/base/types.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace lvm {
namespace obs {

// The hops of the log path, in pipeline order. A waterfall's hop sequence
// is a subsequence of this enum (e.g. non-durable runs have no kWalCommit).
enum class WaterfallStage : uint8_t {
  kRecord,         // Provenance assigned at record creation (bus/on-chip).
  kShardEnqueue,   // Entered the write FIFO or a per-CPU shard ring.
  kDrain,          // The modeled DMA engine retired it from the queue.
  kSegmentAppend,  // The 16-byte LogRecord landed in a LogSegment frame.
  kWalCommit,      // Its WAL commit group was persisted (durable runs).
  kReplay,         // Replay (verifier or WAL replay-on-open) consumed it.
  kCount,
};

// Stable identifier for exports and tests (e.g. "segment_append").
const char* ToString(WaterfallStage stage);

struct WaterfallHop {
  WaterfallStage stage = WaterfallStage::kRecord;
  uint16_t lane = 0;         // Lane that stamped the hop (CPU/worker id).
  uint32_t queue_depth = 0;  // Occupancy of the queue the hop observed.
  Cycles sim_cycle = 0;      // Simulated time at the hop (0 host-side).
  uint64_t wall_ns = 0;      // Host wall clock, relative to tracer epoch.
};

struct WaterfallConfig {
  // Sample 1 in 2^sample_shift logged writes per lane (0 = every write).
  uint32_t sample_shift = 10;
  // In-flight staging slots per lane; an exhausted lane drops the sample
  // (counted, flight-recorded) rather than blocking the log path.
  uint32_t inflight_slots = 64;
  // Completed waterfalls retained for the export; excess completions still
  // feed the stage histograms and are counted as truncated.
  uint32_t completed_capacity = 256;
  // Perturbs each lane's sampling phase (not its stride), so different
  // seeds sample different-but-equally-spaced record sets.
  uint64_t seed = 0;
};

// One finished record journey, retained for the export.
struct CompletedWaterfall {
  uint64_t id = 0;       // (origin lane << 32) | per-lane ordinal.
  uint16_t lane = 0;     // Origin lane.
  uint32_t addr = 0;     // Record identity, as SetIdentity saw it.
  uint32_t value = 0;
  uint32_t timestamp = 0;
  uint64_t end_to_end_ns = 0;
  std::vector<WaterfallHop> hops;
};

class WaterfallTracer {
 public:
  // Hops per waterfall; the 6 stages plus slack for a repeated stage.
  static constexpr size_t kMaxHops = 8;

  // One lane per simulated CPU / parallel worker.
  WaterfallTracer(int lanes, const WaterfallConfig& config = WaterfallConfig{});

  WaterfallTracer(const WaterfallTracer&) = delete;
  WaterfallTracer& operator=(const WaterfallTracer&) = delete;

  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  const WaterfallConfig& config() const { return config_; }

  // --- the record path (lane-owner thread) ---
  // Decides whether this logged write is sampled. Returns 0 (not sampled,
  // or no free slot: a counted drop) or a token whose kRecord hop is
  // already stamped.
  uint64_t SampleRecord(int lane, Cycles sim_now, uint32_t queue_depth);
  // Stamps one hop. Token 0 and unknown/stale tokens are ignored; hops
  // beyond kMaxHops are dropped (the waterfall still completes).
  void Stamp(uint64_t token, WaterfallStage stage, int lane, Cycles sim_now,
             uint32_t queue_depth);
  // Attaches the emitted record's identity so post-append consumers can
  // recover the token from log bytes (MatchToken).
  void SetIdentity(uint64_t token, uint32_t addr, uint32_t value, uint32_t timestamp);
  // Stamps the final hop, folds per-stage latencies into the histograms
  // and retires the slot into the bounded completed store.
  void Complete(uint64_t token, WaterfallStage stage, int lane, Cycles sim_now,
                uint32_t queue_depth);
  // Releases a token whose record was dropped by the logger (mapping/tail
  // fault): nothing is folded or retained.
  void Abandon(uint64_t token);

  // --- identity recovery (quiesced logs) ---
  // Finds the in-flight token whose SetIdentity matches; 0 if none.
  uint64_t MatchToken(uint32_t addr, uint32_t value, uint32_t timestamp) const;
  // WAL hand-off: tags `token` with a commit sequence number at group
  // flush; replay-on-open recovers the group's tokens by sequence.
  void BindSeq(uint64_t token, uint64_t seq);
  void TokensForSeq(uint64_t seq, std::vector<uint64_t>* out) const;

  // Completes every still-in-flight waterfall at its last stamped hop, so
  // an export taken at the end of a run (a bench without replay) covers
  // the hops that did happen. Returns how many were finished.
  uint64_t FinishInFlight();

  // --- accounting ---
  uint64_t sampled() const { return sampled_.value(); }
  uint64_t completed() const { return completed_count_.value(); }
  uint64_t dropped() const { return dropped_.value(); }
  uint64_t abandoned() const { return abandoned_.value(); }
  uint64_t inflight() const;
  std::vector<CompletedWaterfall> Completed() const;

  // Registers waterfall.sampled / waterfall.completed / waterfall.dropped /
  // waterfall.abandoned / waterfall.truncated, the per-stage
  // waterfall.stage_ns.<stage> histograms, the waterfall.queue_peak.<stage>
  // callbacks and waterfall.queue_age_peak_ns. Call at most once per
  // registry; the tracer must outlive it.
  void RegisterMetrics(MetricsRegistry* registry) const;
  // Routes kWaterfallSampled / kWaterfallDropped events to `flight`; the
  // origin lane selects the ring (clamped to the kernel ring).
  void SetFlightRecorder(FlightRecorder* flight) { flight_ = flight; }

  // Strict-JSON lvm.waterfall.v1 export.
  std::string Json() const;
  bool WriteJsonFile(const std::string& path) const;

 private:
  struct Slot {
    // Even = free, odd = active; the token carries the odd generation so
    // stale tokens fail validation after the slot is recycled.
    std::atomic<uint32_t> gen{0};
    uint64_t id = 0;
    uint32_t addr = 0;
    uint32_t value = 0;
    uint32_t timestamp = 0;
    bool has_identity = false;
    uint64_t seq = 0;  // WAL commit sequence (0 = unbound).
    uint32_t hop_count = 0;
    std::array<WaterfallHop, kMaxHops> hops{};
  };

  struct Lane {
    // Owner-thread sampling state.
    uint64_t counter = 0;
    uint64_t phase = 0;
    uint64_t next_ordinal = 0;
    std::vector<Slot> slots;
  };

  // Wall clock in ns since the tracer's construction epoch.
  uint64_t NowNs() const;
  // Decodes and validates a token; null if stale/malformed.
  Slot* Resolve(uint64_t token);
  const Slot* Resolve(uint64_t token) const;
  // Folds a finished slot into histograms + completed store and frees it.
  void Retire(Slot* slot, uint16_t origin_lane);
  void RecordFlight(FlightEventKind kind, int lane, Cycles ts, uint64_t a0, uint64_t a1);

  const WaterfallConfig config_;
  const uint64_t sample_mask_;
  const uint64_t epoch_ns_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  FlightRecorder* flight_ = nullptr;

  Counter sampled_;
  Counter completed_count_;
  Counter dropped_;
  Counter abandoned_;
  Counter truncated_;
  std::array<Histogram, static_cast<size_t>(WaterfallStage::kCount)> stage_ns_;
  std::array<std::atomic<uint64_t>, static_cast<size_t>(WaterfallStage::kCount)> queue_peak_{};
  std::atomic<uint64_t> queue_age_peak_ns_{0};

  // Guards only the bounded completed store; the stamp path never takes it.
  mutable Mutex mu_ LVM_ACQUIRED_AFTER(lockorder::kLevelMetrics){
      "WaterfallTracer::mu_", lockorder::kRankWaterfall};
  std::vector<CompletedWaterfall> completed_ LVM_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace lvm

#endif  // SRC_OBS_WATERFALL_H_
