#include "src/obs/flight_recorder.h"

#include <algorithm>

#include "src/base/check.h"

namespace lvm {
namespace obs {

const char* ToString(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kLoggingFault:
      return "logging_fault";
    case FlightEventKind::kLogTailAdvance:
      return "log_tail_advance";
    case FlightEventKind::kOverloadSuspend:
      return "overload_suspend";
    case FlightEventKind::kOverloadResume:
      return "overload_resume";
    case FlightEventKind::kDeferredCopyReset:
      return "deferred_copy_reset";
    case FlightEventKind::kTimeWarpRollback:
      return "timewarp_rollback";
    case FlightEventKind::kRaceReport:
      return "race_report";
    case FlightEventKind::kInvariantViolation:
      return "invariant_violation";
    case FlightEventKind::kCheckFailure:
      return "check_failure";
    case FlightEventKind::kEngineStart:
      return "engine_start";
    case FlightEventKind::kEngineJoin:
      return "engine_join";
    case FlightEventKind::kMetricsSync:
      return "metrics_sync";
    case FlightEventKind::kWalCommit:
      return "wal_commit";
    case FlightEventKind::kWalGroupFlush:
      return "wal_group_flush";
    case FlightEventKind::kWalRecovery:
      return "wal_recovery";
    case FlightEventKind::kWaterfallSampled:
      return "waterfall_sampled";
    case FlightEventKind::kWaterfallDropped:
      return "waterfall_dropped";
    case FlightEventKind::kMarker:
      return "marker";
  }
  return "unknown";
}

const char* ComponentOf(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kLoggingFault:
    case FlightEventKind::kOverloadSuspend:
    case FlightEventKind::kOverloadResume:
    case FlightEventKind::kCheckFailure:
      return "kernel";
    case FlightEventKind::kLogTailAdvance:
    case FlightEventKind::kInvariantViolation:
      return "logger";
    case FlightEventKind::kDeferredCopyReset:
      return "vm";
    case FlightEventKind::kTimeWarpRollback:
      return "timewarp";
    case FlightEventKind::kRaceReport:
      return "race";
    case FlightEventKind::kEngineStart:
    case FlightEventKind::kEngineJoin:
      return "engine";
    case FlightEventKind::kMetricsSync:
      return "obs";
    case FlightEventKind::kWalCommit:
    case FlightEventKind::kWalGroupFlush:
    case FlightEventKind::kWalRecovery:
      return "wal";
    case FlightEventKind::kWaterfallSampled:
    case FlightEventKind::kWaterfallDropped:
      return "waterfall";
    case FlightEventKind::kMarker:
      return "app";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(int num_cpus, const FlightConfig& config) : config_(config) {
  LVM_CHECK(num_cpus >= 1);
  LVM_CHECK(config.ring_capacity >= 1);
  rings_.reserve(static_cast<size_t>(num_cpus) + 1);
  for (int i = 0; i <= num_cpus; ++i) {
    auto ring = std::make_unique<Ring>();
    ring->slots.resize(config_.ring_capacity);
    rings_.push_back(std::move(ring));
  }
}

void FlightRecorder::Push(int ring_index, const FlightEvent& event) {
  Ring& ring = *rings_.at(static_cast<size_t>(ring_index));
  MutexLock lock(ring.mu);
  ring.slots[ring.next] = event;
  ring.next = (ring.next + 1) % ring.slots.size();
  if (ring.size < ring.slots.size()) {
    ++ring.size;
  } else {
    events_dropped_.Increment();  // The slot held a now-lost older event.
  }
}

void FlightRecorder::Record(int ring, FlightEventKind kind, Cycles ts, const char* detail,
                            uint64_t a0, uint64_t a1, uint64_t a2) {
  FlightEvent event;
  event.kind = kind;
  event.ring = static_cast<uint16_t>(ring);
  event.ts = ts;
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  event.detail = detail;
  event.a0 = a0;
  event.a1 = a1;
  event.a2 = a2;
  Push(ring, event);
  events_recorded_.Increment();

  // Interleave a metrics sync point every sync_interval events. The check
  // is against the recorded count, not the sequence, so the sync event
  // itself (recorded below with its own sequence number) cannot recurse.
  if (sampler_ != nullptr && config_.sync_interval != 0 && kind != FlightEventKind::kMetricsSync &&
      events_recorded_.value() % config_.sync_interval == 0) {
    uint64_t s0 = 0;
    uint64_t s1 = 0;
    uint64_t s2 = 0;
    sampler_(&s0, &s1, &s2);
    Record(kernel_ring(), FlightEventKind::kMetricsSync, ts, "sync", s0, s1, s2);
  }
}

size_t FlightRecorder::occupancy() const {
  size_t total = 0;
  for (const auto& ring : rings_) {
    MutexLock lock(ring->mu);
    total += ring->size;
  }
  return total;
}

std::vector<FlightEvent> FlightRecorder::MergedEvents() const {
  std::vector<FlightEvent> events;
  for (const auto& ring : rings_) {
    MutexLock lock(ring->mu);
    // Oldest first: the slot after `next` when the ring has wrapped.
    size_t start = ring->size < ring->slots.size() ? 0 : ring->next;
    for (size_t i = 0; i < ring->size; ++i) {
      events.push_back(ring->slots[(start + i) % ring->slots.size()]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) { return a.seq < b.seq; });
  return events;
}

void FlightRecorder::Clear() {
  for (const auto& ring : rings_) {
    MutexLock lock(ring->mu);
    ring->next = 0;
    ring->size = 0;
  }
}

void FlightRecorder::RegisterMetrics(MetricsRegistry* registry) const {
  registry->RegisterCounter("flight.events_recorded", &events_recorded_);
  registry->RegisterCounter("flight.events_dropped", &events_dropped_);
  registry->RegisterCallback("flight.ring_occupancy",
                             [this] { return static_cast<uint64_t>(occupancy()); });
}

}  // namespace obs
}  // namespace lvm
