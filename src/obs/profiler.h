// Simulated-cycle cost-attribution profiler (DESIGN.md §14).
//
// GetStats() gives totals and the flight recorder gives events; neither says
// *where* simulated time goes. The profiler answers that with hierarchical
// cost centers charged in simulated cycles, one attribution lane per CPU
// plus one for the hardware logger, exported as strict JSON
// (`lvm.profile.v1`) and as collapsed-stack flamegraph text.
//
// Design rules (these are what make the conservation invariant cheap):
//
//  1. Charges NEVER advance a simulated clock. Every Cpu clock mutation
//     funnels through Cpu::Bump/AdvanceTo, and those funnels are the only
//     charge sites on CPU lanes — so per-lane attributed cycles equal
//     `cpu.now() - baseline` by construction, and enabling the profiler
//     cannot perturb a single bench number.
//  2. Hierarchy comes from kernel-side RAII scopes (LVM_PROF_SCOPE): a
//     page-fault scope makes the fault's stall cycles children of
//     "vm/page_fault" instead of toplevel "stall". Scopes are per-lane and
//     owned by the simulation thread driving that lane; charges into a lane
//     may come from any thread (the node tree uses lock-free CAS insertion,
//     counters are relaxed atomics).
//  3. Generic kernel cycles (CostCenter::kKernel) charge the innermost open
//     scope directly rather than a "kernel" child, so AddCycles() calls
//     inside OnPageFault land *in* vm/page_fault.
//  4. Disabled means a null pointer check per funnel — zero overhead — and
//     the wall sampler (host-thread profile of the par-engine workers) is a
//     separate opt-in thread that only reads atomics.
//
// Node pools are bounded (ProfilerConfig::nodes_per_lane); overflow charges
// the parent node and bumps `dropped_charges` instead of allocating, so the
// recording path never takes a lock or touches the heap.
#ifndef SRC_OBS_PROFILER_H_
#define SRC_OBS_PROFILER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/types.h"
#include "src/obs/metrics.h"

namespace lvm {
namespace obs {

// Where a simulated cycle is spent. Kept small and closed: call sites name
// a center, the tree shape comes from which scopes are open, not from
// free-form strings.
enum class CostCenter : uint8_t {
  kRoot = 0,         // Lane root; never charged directly.
  kCompute,          // Cpu::Compute application work.
  kMemRead,          // Read path: L1/L2/memory access cycles.
  kMemWrite,         // Unlogged writes + logged write issue cost.
  kBusContention,    // Write-buffer-full stalls waiting on bus grants.
  kStall,            // Generic AdvanceTo stalls (drains, barriers).
  kKernel,           // Generic kernel cost; charges the open scope.
  kVmFault,          // Page-fault handling (vm/page_fault).
  kLogFault,         // Logging faults: mapping + log-tail.
  kOverloadPark,     // Parked while the overloaded FIFO/shards drain.
  kDeferredCopy,     // resetDeferredCopy processing.
  kCheckpoint,       // Checkpoint copies/flushes, deferred-copy detach.
  kLogMaintenance,   // SyncLog / truncate / compact.
  kRollback,         // Time Warp rollback.
  kLogEmit,          // Logger lane: steady-state record emission.
  kLogDrain,         // Logger lane: overload drain processing.
  kCount,
};

// Stable flamegraph/JSON frame name ("vm/page_fault", "log/drain", ...).
const char* ToString(CostCenter center);

struct ProfilerConfig {
  // Node pool per lane; overflow charges the parent and counts a drop.
  uint32_t nodes_per_lane = 256;
  // Scope nesting beyond this re-pushes the current node (pops stay
  // balanced, attribution just stops refining).
  uint32_t max_depth = 16;
  // Wall-clock sampler period. The sampler bumps the current node of every
  // lane, building a host-time census next to the simulated-cycle one.
  // 100 Hz: on core-starved hosts every sampler wakeup preempts a worker,
  // so a 1 kHz default would cost several percent of wall time by itself.
  uint32_t wall_sample_interval_us = 10000;
  // Start the sampler thread from LvmSystem::EnableProfiler.
  bool wall_sampling = true;
};

class Profiler {
 public:
  // One lane per simulated CPU plus one logger lane (`logger_lane()`).
  explicit Profiler(int num_cpus, const ProfilerConfig& config = ProfilerConfig{});
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  int logger_lane() const { return num_lanes() - 1; }

  // The clock value attribution starts from; conservation on a CPU lane is
  // `baseline + attributed == cpu.now()`.
  void SetLaneBaseline(int lane, Cycles baseline);
  Cycles lane_baseline(int lane) const;

  // Charges `cycles` to `center` under the lane's open scope. Thread-safe
  // for any lane (the parallel engine charges the logger lane from every
  // worker). Zero-cycle charges are dropped without touching the tree.
  //
  // CPU lanes are charged only by the thread driving that CPU (the
  // Bump/AdvanceTo funnels), so they take an owner-thread fast path: the
  // charge lands in a per-center pending accumulator (two relaxed loads
  // and a store on an owned cache line — no RMW, no tree walk) and drains
  // into the node tree on the next scope change. The logger lane has many
  // concurrent writers and always takes the shared atomic path.
  void Charge(int lane, CostCenter center, Cycles cycles) {
    if (cycles == 0) {
      return;
    }
    Lane& l = *lanes_[static_cast<size_t>(lane)];
    const auto c = static_cast<size_t>(center);
    if (l.is_cpu && l.pending_epoch[c] == l.scope_epoch) {
      l.pending[c].store(l.pending[c].load(std::memory_order_relaxed) + cycles,
                         std::memory_order_relaxed);
      return;
    }
    ChargeSlow(l, center, cycles);
  }

  // Scope stack — owner-thread only (the thread simulating the lane).
  void PushScope(int lane, CostCenter center);
  void PopScope(int lane);

  // Sum of every node's cycles in the lane.
  Cycles LaneAttributed(int lane) const;
  // Sum of the lane's cycles charged to `center` across all tree positions.
  Cycles CenterCycles(int lane, CostCenter center) const;

  uint64_t dropped_charges() const { return dropped_charges_.value(); }
  uint64_t wall_samples() const { return wall_samples_.value(); }

  // Host wall-clock sampler over the lanes' current scopes. Idempotent
  // start; Stop joins the thread (also called by the destructor).
  void StartWallSampling();
  void StopWallSampling();

  // Registers "prof.dropped_charges" / "prof.wall_samples". Call at most
  // once per registry; the profiler must outlive it.
  void RegisterMetrics(MetricsRegistry* registry) const;

  // Strict-JSON lvm.profile.v1 export. `lane_clocks[i]` is lane i's current
  // clock (cpu.now() for CPU lanes; pass 0 for the logger lane, whose
  // service pipeline has no single clock and is exempt from conservation).
  std::string ExportJson(const std::vector<Cycles>& lane_clocks) const;
  bool WriteJsonFile(const std::string& path, const std::vector<Cycles>& lane_clocks) const;

  // Collapsed-stack flamegraph text: "lane;frame;frame <cycles>" per line.
  std::string FlameText() const;
  bool WriteFlameFile(const std::string& path) const;

 private:
  struct Node {
    CostCenter center = CostCenter::kRoot;
    int32_t parent = -1;
    std::atomic<int32_t> first_child{-1};
    std::atomic<int32_t> next_sibling{-1};
    std::atomic<uint64_t> cycles{0};
    std::atomic<uint64_t> wall_samples{0};
  };

  static constexpr size_t kNumCenters = static_cast<size_t>(CostCenter::kCount);

  struct Lane {
    std::string name;
    bool is_cpu = true;
    Cycles baseline = 0;
    // Fixed pool; nodes_[0] is the root. node_count is the allocation
    // cursor (CAS-free fetch_add; slots past the pool are abandoned).
    std::vector<Node> nodes;
    std::atomic<uint32_t> node_count{1};
    // Innermost open scope; read by Charge() from any thread, written only
    // by the owner thread via Push/PopScope.
    std::atomic<int32_t> current{0};
    // Owner-thread scope stack (current's history); not synchronized.
    std::vector<int32_t> stack;
    // CPU-lane fast path: per-center cycles not yet drained into the tree.
    // Written only by the owner thread (plain load/store pairs, never RMW);
    // atomic so mid-run readers (telemetry's LaneAttributed) see whole
    // values. Drained by FlushPending on every scope change, so each slot
    // always belongs to the node memoized in pending_node under the
    // current scope_epoch.
    std::array<std::atomic<uint64_t>, kNumCenters> pending{};
    // Owner-thread memo: the resolved tree node for each center (valid
    // while pending_epoch matches scope_epoch) and the epoch counter that
    // Push/PopScope bump to invalidate it.
    std::array<int32_t, kNumCenters> pending_node{};
    std::array<uint64_t, kNumCenters> pending_epoch{};
    uint64_t scope_epoch = 1;
  };

  // Finds `center` under `parent`, inserting lock-free if absent. Returns
  // the parent itself when the pool is exhausted (and counts a drop).
  int32_t FindOrCreateChild(Lane& lane, int32_t parent, CostCenter center);
  // Resolves the target node for a charge under the lane's open scope.
  int32_t ResolveTarget(Lane& lane, CostCenter center);
  // Charge's out-of-line tail: the logger lane's shared atomic path, and
  // the CPU-lane memo miss (resolve the node, start a new pending run).
  void ChargeSlow(Lane& lane, CostCenter center, Cycles cycles);
  // Owner-thread: drains every pending accumulator into the node tree.
  void FlushPending(Lane& lane);
  // Pending cycles destined for `node` (owner-thread / post-run readers).
  uint64_t PendingFor(const Lane& lane, int32_t node) const;
  void AppendLaneJson(std::string* out, const Lane& lane, Cycles clock) const;
  void AppendNodePath(std::string* out, const Lane& lane, int32_t index) const;

  const ProfilerConfig config_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  Counter dropped_charges_;
  Counter wall_samples_;

  std::thread sampler_;
  std::atomic<bool> sampling_{false};
};

// RAII scope: pushes `center` on `lane` for the lifetime of the object.
// Null-profiler safe, so call sites need no enabled-check of their own.
class ScopedCostCenter {
 public:
  ScopedCostCenter(Profiler* profiler, int lane, CostCenter center)
      : profiler_(profiler), lane_(lane) {
    if (profiler_ != nullptr) {
      profiler_->PushScope(lane_, center);
    }
  }
  ~ScopedCostCenter() {
    if (profiler_ != nullptr) {
      profiler_->PopScope(lane_);
    }
  }

  ScopedCostCenter(const ScopedCostCenter&) = delete;
  ScopedCostCenter& operator=(const ScopedCostCenter&) = delete;

 private:
  Profiler* profiler_;
  int lane_;
};

// Lexically scoped cost center. `profiler` may be null.
#define LVM_PROF_SCOPE_CAT2(a, b) a##b
#define LVM_PROF_SCOPE_CAT(a, b) LVM_PROF_SCOPE_CAT2(a, b)
#define LVM_PROF_SCOPE(profiler, lane, center) \
  ::lvm::obs::ScopedCostCenter LVM_PROF_SCOPE_CAT(lvm_prof_scope_, __LINE__)(profiler, lane, center)

// Non-lexical begin/end pair for scopes that cross statement boundaries.
// lvm-lint rule 15 (prof-scope) checks these stay balanced per file.
#define LVM_PROF_BEGIN(profiler, lane, center)  \
  do {                                          \
    ::lvm::obs::Profiler* p_ = (profiler);      \
    if (p_ != nullptr) {                        \
      p_->PushScope((lane), (center));          \
    }                                           \
  } while (0)
#define LVM_PROF_END(profiler, lane)       \
  do {                                     \
    ::lvm::obs::Profiler* p_ = (profiler); \
    if (p_ != nullptr) {                   \
      p_->PopScope((lane));                \
    }                                      \
  } while (0)

}  // namespace obs
}  // namespace lvm

#endif  // SRC_OBS_PROFILER_H_
