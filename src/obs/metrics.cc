#include "src/obs/metrics.h"

#include "src/base/check.h"

namespace lvm {
namespace obs {

namespace {

template <typename Map>
bool Contains(const Map& m, const std::string& name) {
  return m.find(name) != m.end();
}

}  // namespace

uint64_t Snapshot::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

int64_t Snapshot::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) {
    return 0;
  }
  if (p <= 0.0) {
    return min;
  }
  if (p >= 100.0) {
    return max;
  }
  // Rank of the target value (1-based, ceil so p50 of two values is the
  // first), then walk the cumulative bucket counts.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count));
  if (rank * 100 < static_cast<uint64_t>(p * static_cast<double>(count))) {
    ++rank;
  }
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Bucket 0 holds zeros; bucket i holds [2^(i-1), 2^i), upper bound
      // inclusive 2^i - 1. Clamp into [min, max]: the top bucket saturates
      // and a one-bucket histogram should report its actual extrema.
      uint64_t upper = i == 0 ? 0 : (i >= 64 ? ~uint64_t{0} : (uint64_t{1} << i) - 1);
      if (upper < min) {
        upper = min;
      }
      if (upper > max) {
        upper = max;
      }
      return upper;
    }
  }
  return max;
}

const HistogramSnapshot* Snapshot::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

Snapshot Snapshot::Delta(const Snapshot& before) const {
  Snapshot out;
  for (const auto& [name, value] : counters_) {
    uint64_t prev = before.counter(name);
    out.counters_[name] = value > prev ? value - prev : 0;
  }
  out.gauges_ = gauges_;
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot d = hist;
    if (const HistogramSnapshot* prev = before.histogram(name)) {
      d.count = hist.count > prev->count ? hist.count - prev->count : 0;
      d.sum = hist.sum > prev->sum ? hist.sum - prev->sum : 0;
      for (size_t i = 0; i < d.buckets.size() && i < prev->buckets.size(); ++i) {
        d.buckets[i] = d.buckets[i] > prev->buckets[i] ? d.buckets[i] - prev->buckets[i] : 0;
      }
    }
    out.histograms_[name] = std::move(d);
  }
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto it = owned_counters_.find(name);
  if (it == owned_counters_.end()) {
    LVM_CHECK_MSG(!Contains(external_counters_, name) && !Contains(callbacks_, name),
                  "metric name already registered");
    it = owned_counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto it = owned_gauges_.find(name);
  if (it == owned_gauges_.end()) {
    LVM_CHECK_MSG(!Contains(external_gauges_, name), "metric name already registered");
    it = owned_gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  auto it = owned_histograms_.find(name);
  if (it == owned_histograms_.end()) {
    LVM_CHECK_MSG(!Contains(external_histograms_, name), "metric name already registered");
    it = owned_histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

void MetricsRegistry::RegisterCounter(const std::string& name, const Counter* external) {
  LVM_CHECK(external != nullptr);
  MutexLock lock(mu_);
  LVM_CHECK_MSG(!Contains(owned_counters_, name) && !Contains(external_counters_, name) &&
                    !Contains(callbacks_, name),
                "metric name already registered");
  external_counters_.emplace(name, external);
}

void MetricsRegistry::RegisterGauge(const std::string& name, const Gauge* external) {
  LVM_CHECK(external != nullptr);
  MutexLock lock(mu_);
  LVM_CHECK_MSG(!Contains(owned_gauges_, name) && !Contains(external_gauges_, name),
                "metric name already registered");
  external_gauges_.emplace(name, external);
}

void MetricsRegistry::RegisterHistogram(const std::string& name, const Histogram* external) {
  LVM_CHECK(external != nullptr);
  MutexLock lock(mu_);
  LVM_CHECK_MSG(!Contains(owned_histograms_, name) && !Contains(external_histograms_, name),
                "metric name already registered");
  external_histograms_.emplace(name, external);
}

void MetricsRegistry::RegisterCallback(const std::string& name, std::function<uint64_t()> fn) {
  LVM_CHECK(fn != nullptr);
  MutexLock lock(mu_);
  LVM_CHECK_MSG(!Contains(owned_counters_, name) && !Contains(external_counters_, name) &&
                    !Contains(callbacks_, name),
                "metric name already registered");
  callbacks_.emplace(name, std::move(fn));
}

Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot out;
  MutexLock lock(mu_);
  for (const auto& [name, c] : owned_counters_) {
    out.counters_[name] = c->value();
  }
  for (const auto& [name, c] : external_counters_) {
    out.counters_[name] = c->value();
  }
  // Callbacks run under mu_ and may take their owner's locks; the known case
  // is FlightRecorder's ring-occupancy callback locking a Ring. The
  // std::function indirection hides this from lvm-analyze's call graph, so
  // declare the edge explicitly.
  // lvm-analyze: edge(MetricsRegistry::mu_, FlightRecorder::Ring::mu)
  for (const auto& [name, fn] : callbacks_) {
    out.counters_[name] = fn();
  }
  for (const auto& [name, g] : owned_gauges_) {
    out.gauges_[name] = g->value();
  }
  for (const auto& [name, g] : external_gauges_) {
    out.gauges_[name] = g->value();
  }
  auto copy_histogram = [](const Histogram& h) {
    HistogramSnapshot s;
    s.count = h.count();
    s.sum = h.sum();
    s.min = h.min();
    s.max = h.max();
    s.buckets.resize(Histogram::kBuckets);
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      s.buckets[i] = h.bucket(i);
    }
    return s;
  };
  for (const auto& [name, h] : owned_histograms_) {
    out.histograms_[name] = copy_histogram(*h);
  }
  for (const auto& [name, h] : external_histograms_) {
    out.histograms_[name] = copy_histogram(*h);
  }
  return out;
}

}  // namespace obs
}  // namespace lvm
