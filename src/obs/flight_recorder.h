// Always-on flight recorder: the black box the post-mortem tools read.
//
// Where the TraceRecorder is an opt-in, prefix-keeping event buffer for a
// human in a trace viewer, the FlightRecorder is always armed and keeps the
// *most recent* structured machine events — logging faults, overload
// park/resume, log-tail advances, deferred-copy resets, Time Warp
// rollbacks, race reports, invariant violations — in bounded rings that
// overwrite their oldest entry and count every overwrite as a drop.
//
// Ring layout mirrors the parallel engine's shard design (DESIGN.md §10):
// one ring per simulated CPU plus a kernel ring (`kernel_ring()`), so a
// free-running worker records into its own ring without contending with the
// others. Each ring is guarded by its own mutex — uncontended in steady
// state, and safe for the dumper to walk mid-run or from a crash hook.
//
// Every `sync_interval` recorded events the recorder interleaves a
// kMetricsSync event carrying counter deltas from an installed sampler
// (LvmSystem wires records-logged / logged-writes / overloads), giving the
// merged timeline periodic registry sync points to anchor against.
//
// Events carry a global sequence number so per-ring streams merge into one
// totally ordered timeline even when free-running CPU clocks disagree.
// Payloads are two small integers plus a string literal: nothing on the
// recording path allocates (the rings are sized at construction).
#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/lock_order.h"
#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/base/types.h"
#include "src/obs/metrics.h"

namespace lvm {
namespace obs {

enum class FlightEventKind : uint8_t {
  kLoggingFault,       // Mapping or tail fault handled by the kernel.
  kLogTailAdvance,     // Kernel pointed a hardware log tail (SetTail).
  kOverloadSuspend,    // FIFO/ring overload parked the logging processors.
  kOverloadResume,     // The parked processors were released.
  kDeferredCopyReset,  // resetDeferredCopy() over a range.
  kTimeWarpRollback,   // A Time Warp state saver rolled back.
  kRaceReport,         // The happens-before detector reported a race.
  kInvariantViolation, // The invariant checker added a violation.
  kCheckFailure,       // LVM_CHECK failed; the process is about to abort.
  kEngineStart,        // Parallel engine launched its workers.
  kEngineJoin,         // Parallel engine joined and republished state.
  kMetricsSync,        // Periodic metrics-delta sync point.
  kWalCommit,          // A commit was staged in the durable WAL arena.
  kWalGroupFlush,      // A WAL group flush persisted staged commits.
  kWalRecovery,        // WAL replay-on-open finished (a0 commits, a2 torn).
  kWaterfallSampled,   // The waterfall tracer sampled a logged write.
  kWaterfallDropped,   // A sampled write was dropped: no free staging slot.
  kMarker,             // Application-defined annotation.
};

// Stable identifier for dumps and tests (e.g. "log_tail_advance").
const char* ToString(FlightEventKind kind);

// The component a kind attributes to in the post-mortem timeline
// ("logger", "kernel", "vm", "race", "check", "engine", "obs", "app").
const char* ComponentOf(FlightEventKind kind);

struct FlightEvent {
  FlightEventKind kind = FlightEventKind::kMarker;
  uint16_t ring = 0;  // Originating ring: CPU id, or kernel_ring().
  Cycles ts = 0;      // Simulated time at the originating clock.
  uint64_t seq = 0;   // Global order across rings.
  // Kind-specific payload: a string literal (never freed, never copied)
  // plus up to three numbers whose meaning the kind defines.
  const char* detail = nullptr;
  uint64_t a0 = 0;
  uint64_t a1 = 0;
  uint64_t a2 = 0;
};

struct FlightConfig {
  // Events retained per ring; older events are overwritten and counted.
  size_t ring_capacity = 256;
  // Interleave a kMetricsSync event every this many recorded events
  // (0 disables the sync points).
  uint64_t sync_interval = 128;
};

class FlightRecorder {
 public:
  // One ring per CPU plus the kernel ring.
  explicit FlightRecorder(int num_cpus, const FlightConfig& config = FlightConfig{});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  int num_rings() const { return static_cast<int>(rings_.size()); }
  int kernel_ring() const { return num_rings() - 1; }
  size_t ring_capacity() const { return config_.ring_capacity; }

  // Appends an event to `ring` (a CPU id or kernel_ring()), overwriting the
  // ring's oldest event when full. Callable from any thread; per-ring
  // mutexes order concurrent writers and the dumper.
  void Record(int ring, FlightEventKind kind, Cycles ts, const char* detail = nullptr,
              uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0);

  // Installs the metrics-sync sampler: called at each sync point to fill
  // the kMetricsSync payload (cumulative counter values; the reader turns
  // consecutive sync points into deltas). Must be callable from any
  // recording thread — read relaxed atomics, not mutable containers.
  using SyncSampler = std::function<void(uint64_t* a0, uint64_t* a1, uint64_t* a2)>;
  void SetSyncSampler(SyncSampler sampler) { sampler_ = std::move(sampler); }

  // --- introspection / dump support ---
  uint64_t events_recorded() const { return events_recorded_.value(); }
  uint64_t events_dropped() const { return events_dropped_.value(); }
  // Events currently held across all rings.
  size_t occupancy() const;
  // Stable copy of every retained event, ordered by global sequence.
  // Safe to call mid-run (locks one ring at a time).
  std::vector<FlightEvent> MergedEvents() const;
  void Clear();

  // Registers "flight.events_recorded", "flight.events_dropped" and the
  // "flight.ring_occupancy" callback. Call at most once per registry.
  void RegisterMetrics(MetricsRegistry* registry) const;

 private:
  struct Ring {
    mutable Mutex mu LVM_ACQUIRED_AFTER(lockorder::kLevelMetrics){
        "FlightRecorder::Ring::mu", lockorder::kRankFlightRing};
    // Fixed capacity, circular. The slot vector is sized once at
    // construction; only its elements are guarded.
    std::vector<FlightEvent> slots LVM_GUARDED_BY(mu);
    size_t next LVM_GUARDED_BY(mu) = 0;  // Slot the next event lands in.
    size_t size LVM_GUARDED_BY(mu) = 0;  // Retained events (<= capacity).
  };

  void Push(int ring, const FlightEvent& event);

  const FlightConfig config_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<uint64_t> seq_{0};
  SyncSampler sampler_;
  Counter events_recorded_;
  Counter events_dropped_;
};

}  // namespace obs
}  // namespace lvm

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
