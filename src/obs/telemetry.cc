#include "src/obs/telemetry.h"

#include <unistd.h>

#include "src/obs/json.h"
#include "src/obs/schema_ids.h"

namespace lvm {
namespace obs {

TelemetryStream::TelemetryStream(const MetricsRegistry* registry, const Profiler* profiler)
    : registry_(registry), profiler_(profiler) {}

TelemetryStream::~TelemetryStream() { Stop(); }

bool TelemetryStream::Start(const std::string& path, const TelemetryConfig& config) {
  if (running_.load(std::memory_order_acquire)) {
    return false;
  }
  std::FILE* sink = std::fopen(path.c_str(), "wb");
  if (sink == nullptr) {
    return false;
  }
  return StartWithSink(sink, config);
}

bool TelemetryStream::StartFd(int fd, const TelemetryConfig& config) {
  if (running_.load(std::memory_order_acquire)) {
    return false;
  }
  const int dup_fd = ::dup(fd);
  if (dup_fd < 0) {
    return false;
  }
  std::FILE* sink = ::fdopen(dup_fd, "w");
  if (sink == nullptr) {
    ::close(dup_fd);
    return false;
  }
  return StartWithSink(sink, config);
}

bool TelemetryStream::StartWithSink(std::FILE* sink, const TelemetryConfig& config) {
  sink_ = sink;
  config_ = config;
  stop_.store(false, std::memory_order_release);
  prev_ = Snapshot{};
  seq_ = 0;
  start_time_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  monitor_ = std::thread([this] { Run(); });
  return true;
}

void TelemetryStream::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (monitor_.joinable()) {
    monitor_.join();
  }
  std::fclose(sink_);
  sink_ = nullptr;
  running_.store(false, std::memory_order_release);
}

void TelemetryStream::Run() {
  const auto interval = std::chrono::milliseconds(config_.interval_ms);
  auto next_tick = std::chrono::steady_clock::now() + interval;
  while (!stop_.load(std::memory_order_acquire)) {
    const auto now = std::chrono::steady_clock::now();
    if (now < next_tick) {
      // Short naps keep Stop() responsive without a timed condvar.
      const auto remaining = next_tick - now;
      std::this_thread::sleep_for(
          remaining < std::chrono::milliseconds(5) ? remaining : std::chrono::milliseconds(5));
      continue;
    }
    EmitLine();
    next_tick += interval;
  }
  // Final sample so short runs still stream at least one line.
  EmitLine();
}

void TelemetryStream::EmitLine() {
  const Snapshot snapshot = registry_->TakeSnapshot();
  const Snapshot delta = snapshot.Delta(prev_);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start_time_)
                           .count();

  std::string line;
  line.reserve(512);
  line.append("{\"schema\":");
  AppendJsonString(&line, kTelemetrySchema);
  line.append(",\"seq\":");
  line.append(JsonNumber(seq_));
  line.append(",\"wall_ms\":");
  line.append(JsonNumber(static_cast<int64_t>(wall_ms)));
  line.append(",\"counters\":{");
  bool first = true;
  for (const auto& [name, value] : delta.counters()) {
    if (value == 0) {
      continue;  // Idle counters would drown the interesting ones.
    }
    if (!first) {
      line.push_back(',');
    }
    first = false;
    AppendJsonString(&line, name);
    line.push_back(':');
    line.append(JsonNumber(value));
  }
  line.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : snapshot.gauges()) {
    if (!first) {
      line.push_back(',');
    }
    first = false;
    AppendJsonString(&line, name);
    line.push_back(':');
    line.append(JsonNumber(value));
  }
  line.append("}");
  if (profiler_ != nullptr) {
    line.append(",\"profile\":{\"lanes\":[");
    for (int lane = 0; lane < profiler_->num_lanes(); ++lane) {
      if (lane != 0) {
        line.push_back(',');
      }
      line.append("{\"lane\":");
      line.append(JsonNumber(static_cast<uint64_t>(lane)));
      line.append(",\"attributed\":");
      line.append(JsonNumber(static_cast<uint64_t>(profiler_->LaneAttributed(lane))));
      line.append("}");
    }
    line.append("],\"dropped_charges\":");
    line.append(JsonNumber(profiler_->dropped_charges()));
    line.append("}");
  }
  line.append("}\n");

  std::fwrite(line.data(), 1, line.size(), sink_);
  std::fflush(sink_);
  lines_emitted_.Increment();
  prev_ = snapshot;
  ++seq_;
}

}  // namespace obs
}  // namespace lvm
