#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace lvm {
namespace obs {

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20 || c >= 0x7f) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  // %g can produce "1e+06" style exponents, which JSON accepts, but never a
  // bare trailing dot; nothing to patch up.
  return buffer;
}

std::string JsonNumber(uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu", static_cast<unsigned long long>(value));
  return buffer;
}

std::string JsonNumber(int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
  return buffer;
}

namespace {

// Recursive-descent acceptor over RFC 8259. `pos` advances past the value;
// depth is bounded to keep malicious inputs from smashing the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Accept() {
    SkipSpace();
    if (!Value(0)) {
      return false;
    }
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Value(int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object(depth);
      case '[':
        return Array(depth);
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object(int depth) {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (Peek() != '"' || !String()) {
        return false;
      }
      SkipSpace();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipSpace();
      if (!Value(depth + 1)) {
        return false;
      }
      SkipSpace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array(int depth) {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!Value(depth + 1)) {
        return false;
      }
      SkipSpace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        return false;  // Raw control character.
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // Unterminated.
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    if (!DigitRun()) {
      return false;
    }
    // No leading zeros: "0" alone or a nonzero first digit.
    if (text_[pos_ == start ? start : start + (text_[start] == '-' ? 1 : 0)] == '0') {
      size_t first = start + (text_[start] == '-' ? 1 : 0);
      if (pos_ - first > 1) {
        return false;
      }
    }
    if (Peek() == '.') {
      ++pos_;
      if (!DigitRun()) {
        return false;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!DigitRun()) {
        return false;
      }
    }
    return true;
  }

  bool DigitRun() {
    size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        return;
      }
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

bool ValidateJson(std::string_view text) { return JsonParser(text).Accept(); }

}  // namespace obs
}  // namespace lvm
