#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lvm {
namespace obs {

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20 || c >= 0x7f) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  // %g can produce "1e+06" style exponents, which JSON accepts, but never a
  // bare trailing dot; nothing to patch up.
  return buffer;
}

std::string JsonNumber(uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu", static_cast<unsigned long long>(value));
  return buffer;
}

std::string JsonNumber(int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
  return buffer;
}

namespace {

// Recursive-descent acceptor over RFC 8259. `pos` advances past the value;
// depth is bounded to keep malicious inputs from smashing the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Accept() {
    SkipSpace();
    if (!Value(0)) {
      return false;
    }
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Value(int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object(depth);
      case '[':
        return Array(depth);
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object(int depth) {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (Peek() != '"' || !String()) {
        return false;
      }
      SkipSpace();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipSpace();
      if (!Value(depth + 1)) {
        return false;
      }
      SkipSpace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array(int depth) {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!Value(depth + 1)) {
        return false;
      }
      SkipSpace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        return false;  // Raw control character.
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // Unterminated.
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    if (!DigitRun()) {
      return false;
    }
    // No leading zeros: "0" alone or a nonzero first digit.
    if (text_[pos_ == start ? start : start + (text_[start] == '-' ? 1 : 0)] == '0') {
      size_t first = start + (text_[start] == '-' ? 1 : 0);
      if (pos_ - first > 1) {
        return false;
      }
    }
    if (Peek() == '.') {
      ++pos_;
      if (!DigitRun()) {
        return false;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!DigitRun()) {
        return false;
      }
    }
    return true;
  }

  bool DigitRun() {
    size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        return;
      }
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

bool ValidateJson(std::string_view text) { return JsonParser(text).Accept(); }

bool JsonValue::AsBool(bool fallback) const { return type_ == Type::kBool ? bool_ : fallback; }

double JsonValue::AsDouble(double fallback) const {
  if (type_ != Type::kNumber) {
    return fallback;
  }
  return std::strtod(str_.c_str(), nullptr);
}

uint64_t JsonValue::AsUint64(uint64_t fallback) const {
  if (type_ != Type::kNumber || str_.empty() || str_[0] == '-') {
    return fallback;
  }
  if (str_.find_first_of(".eE") != std::string::npos) {
    double d = std::strtod(str_.c_str(), nullptr);
    return d < 0 ? fallback : static_cast<uint64_t>(d);
  }
  return std::strtoull(str_.c_str(), nullptr, 10);
}

int64_t JsonValue::AsInt64(int64_t fallback) const {
  if (type_ != Type::kNumber) {
    return fallback;
  }
  if (str_.find_first_of(".eE") != std::string::npos) {
    return static_cast<int64_t>(std::strtod(str_.c_str(), nullptr));
  }
  return std::strtoll(str_.c_str(), nullptr, 10);
}

const std::string& JsonValue::AsString() const {
  static const std::string kEmpty;
  return type_ == Type::kString ? str_ : kEmpty;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& member : members_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsBool(fallback) : fallback;
}

double JsonValue::GetDouble(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsDouble(fallback) : fallback;
}

uint64_t JsonValue::GetUint64(std::string_view key, uint64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsUint64(fallback) : fallback;
}

int64_t JsonValue::GetInt64(std::string_view key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsInt64(fallback) : fallback;
}

std::string JsonValue::GetString(std::string_view key, std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : std::string(fallback);
}

// DOM-building twin of the acceptor above: same grammar, same depth bound,
// but materializes values and reports the offset of the first error.
class JsonDomParser {
 public:
  JsonDomParser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!Value(out, 0)) {
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing garbage after value");
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = "offset " + std::to_string(pos_) + ": " + message;
    }
    return false;
  }

  bool Value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return Object(out, depth);
      case '[':
        return Array(out, depth);
      case '"': {
        out->type_ = JsonValue::Type::kString;
        return String(&out->str_);
      }
      case 't':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return Literal("true");
      case 'f':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return Literal("false");
      case 'n':
        out->type_ = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return Number(out);
    }
  }

  bool Object(JsonValue* out, int depth) {
    out->type_ = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (Peek() != '"' || !String(&key)) {
        return Fail("expected object key string");
      }
      SkipSpace();
      if (Peek() != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipSpace();
      out->members_.emplace_back(std::move(key), JsonValue());
      if (!Value(&out->members_.back().second, depth + 1)) {
        return false;
      }
      SkipSpace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool Array(JsonValue* out, int depth) {
    out->type_ = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      out->items_.emplace_back();
      if (!Value(&out->items_.back(), depth + 1)) {
        return false;
      }
      SkipSpace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool String(std::string* out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return Fail("unterminated escape");
        }
        char e = text_[pos_];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              ++pos_;
              if (pos_ >= text_.size() ||
                  !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
                return Fail("bad \\u escape");
              }
              unsigned char h = static_cast<unsigned char>(text_[pos_]);
              code = code * 16 + (std::isdigit(h) ? h - '0' : (std::tolower(h) - 'a') + 10);
            }
            // The exporters only emit \u00xx (escaped control / non-ASCII
            // bytes); decode the BMP code point as UTF-8 without surrogate
            // pairing — enough for round-tripping our own artifacts.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xc0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out->push_back(static_cast<char>(0xe0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return Fail("bad escape character");
        }
      } else {
        out->push_back(static_cast<char>(c));
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool Number(JsonValue* out) {
    size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    if (!DigitRun()) {
      return Fail("expected a value");
    }
    size_t first = start + (text_[start] == '-' ? 1 : 0);
    if (text_[first] == '0' && pos_ - first > 1) {
      return Fail("leading zero in number");
    }
    if (Peek() == '.') {
      ++pos_;
      if (!DigitRun()) {
        return Fail("expected digits after decimal point");
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!DigitRun()) {
        return Fail("expected exponent digits");
      }
    }
    out->type_ = JsonValue::Type::kNumber;
    out->str_.assign(text_.substr(start, pos_ - start));
    return true;
  }

  bool DigitRun() {
    size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        return;
      }
      ++pos_;
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  if (error != nullptr) {
    error->clear();
  }
  return JsonDomParser(text, error).Parse(out);
}

}  // namespace obs
}  // namespace lvm
