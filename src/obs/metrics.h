// Unified metrics registry for the simulator.
//
// Three metric kinds, all with inline zero-allocation recording:
//   Counter   - monotonically increasing uint64 (records logged, faults, ...)
//   Gauge     - last-written int64 (FIFO occupancy, queue depth, ...)
//   Histogram - log2-bucketed distribution (drain lengths, commit sizes, ...)
//
// A MetricsRegistry names metrics and snapshots them. Components that are
// constructible without a registry (Cpu, Bus, L2Cache, the loggers — benches
// and tests build them standalone) keep their counters as plain members and
// expose RegisterMetrics(registry), which registers those members as
// *external* (non-owning) metrics. Registered pointers must outlive the
// registry's last TakeSnapshot(); LvmSystem declares its registry first so it
// is destroyed last.
//
// Thread safety: recording and reading are lock-free relaxed atomics, so a
// snapshot may be taken while the parallel engine's workers are recording
// (LvmSystem::GetStats() during a run). A snapshot is a consistent read of
// each individual metric, not an atomic cut across metrics; histogram
// count/sum/min/max may be mid-update relative to each other by one record.
//
// Snapshot/Delta: counters and histogram counts subtract, gauges keep the
// later value — so `after.Delta(before)` reports per-phase activity.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/lock_order.h"
#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"

namespace lvm {
namespace obs {

class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Power-of-two bucketed histogram: bucket 0 holds zeros, bucket i (i >= 1)
// holds values in [2^(i-1), 2^i). 33 buckets cover the full uint32 cycle
// range; larger values clamp into the top bucket.
class Histogram {
 public:
  static constexpr size_t kBuckets = 33;

  static size_t BucketIndex(uint64_t value) {
    size_t width = static_cast<size_t>(std::bit_width(value));
    return width < kBuckets ? width : kBuckets - 1;
  }

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    AtomicMin(&min_, value);
    AtomicMax(&max_, value);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const {
    uint64_t v = min_.load(std::memory_order_relaxed);
    return v == kEmptyMin ? 0 : v;
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const { return buckets_[i].load(std::memory_order_relaxed); }

 private:
  static constexpr uint64_t kEmptyMin = ~uint64_t{0};

  static void AtomicMin(std::atomic<uint64_t>* slot, uint64_t value) {
    uint64_t cur = slot->load(std::memory_order_relaxed);
    while (value < cur &&
           !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<uint64_t>* slot, uint64_t value) {
    uint64_t cur = slot->load(std::memory_order_relaxed);
    while (value > cur &&
           !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{kEmptyMin};
  std::atomic<uint64_t> max_{0};
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;

  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }

  // Approximate percentile from the log2 buckets: returns the inclusive
  // upper bound of the bucket holding the p-th ranked value, clamped to
  // [min, max] so single-bucket and saturating distributions stay sane.
  // Empty histograms return 0; p <= 0 returns min, p >= 100 returns max.
  uint64_t Percentile(double p) const;
};

// Point-in-time copy of every metric in a registry.
class Snapshot {
 public:
  // Returns the counter value, or 0 for an unknown name (so callers reading
  // e.g. "logger.tail_faults" work against either logger variant).
  uint64_t counter(const std::string& name) const;
  int64_t gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;

  // Per-phase difference: counters and histogram counts/sums subtract
  // (saturating at 0 if `before` is from a later point); gauges and
  // histogram min/max keep this snapshot's values.
  Snapshot Delta(const Snapshot& before) const;

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, int64_t>& gauges() const { return gauges_; }
  const std::map<std::string, HistogramSnapshot>& histograms() const { return histograms_; }

 private:
  friend class MetricsRegistry;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, int64_t> gauges_;
  std::map<std::string, HistogramSnapshot> histograms_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create an owned metric. Pointers are stable for the registry's
  // lifetime; recording through them never allocates.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  // Registers a metric owned elsewhere (a component member). The pointer
  // must stay valid until the registry is destroyed or the entry is never
  // snapshotted again. Duplicate names are a programming error.
  void RegisterCounter(const std::string& name, const Counter* external);
  void RegisterGauge(const std::string& name, const Gauge* external);
  void RegisterHistogram(const std::string& name, const Histogram* external);

  // Registers a counter computed at snapshot time (e.g. a sum over CPUs).
  // The callback must be safe to invoke while workers run if snapshots are
  // taken during parallel execution (read atomics, not mutable containers).
  void RegisterCallback(const std::string& name, std::function<uint64_t()> fn);

  Snapshot TakeSnapshot() const;

 private:
  // Guards the registration maps: registration is setup-phase, but
  // TakeSnapshot may run from a monitor thread mid-run, and nothing stops a
  // late RegisterMetrics from racing it. Recording never takes this lock —
  // it goes through the stable metric pointers.
  mutable Mutex mu_ LVM_ACQUIRED_AFTER(lockorder::kLevelRaceTrail){
      "MetricsRegistry::mu_", lockorder::kRankMetrics};
  std::map<std::string, std::unique_ptr<Counter>> owned_counters_ LVM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> owned_gauges_ LVM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> owned_histograms_ LVM_GUARDED_BY(mu_);
  std::map<std::string, const Counter*> external_counters_ LVM_GUARDED_BY(mu_);
  std::map<std::string, const Gauge*> external_gauges_ LVM_GUARDED_BY(mu_);
  std::map<std::string, const Histogram*> external_histograms_ LVM_GUARDED_BY(mu_);
  std::map<std::string, std::function<uint64_t()>> callbacks_ LVM_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace lvm

#endif  // SRC_OBS_METRICS_H_
