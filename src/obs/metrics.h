// Unified metrics registry for the simulator.
//
// Three metric kinds, all with inline zero-allocation recording:
//   Counter   - monotonically increasing uint64 (records logged, faults, ...)
//   Gauge     - last-written int64 (FIFO occupancy, queue depth, ...)
//   Histogram - log2-bucketed distribution (drain lengths, commit sizes, ...)
//
// A MetricsRegistry names metrics and snapshots them. Components that are
// constructible without a registry (Cpu, Bus, L2Cache, the loggers — benches
// and tests build them standalone) keep their counters as plain members and
// expose RegisterMetrics(registry), which registers those members as
// *external* (non-owning) metrics. Registered pointers must outlive the
// registry's last TakeSnapshot(); LvmSystem declares its registry first so it
// is destroyed last.
//
// Snapshot/Delta: counters and histogram counts subtract, gauges keep the
// later value — so `after.Delta(before)` reports per-phase activity.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lvm {
namespace obs {

class Counter {
 public:
  void Increment() { ++value_; }
  void Add(uint64_t n) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t n) { value_ += n; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Power-of-two bucketed histogram: bucket 0 holds zeros, bucket i (i >= 1)
// holds values in [2^(i-1), 2^i). 33 buckets cover the full uint32 cycle
// range; larger values clamp into the top bucket.
class Histogram {
 public:
  static constexpr size_t kBuckets = 33;

  static size_t BucketIndex(uint64_t value) {
    size_t width = static_cast<size_t>(std::bit_width(value));
    return width < kBuckets ? width : kBuckets - 1;
  }

  void Record(uint64_t value) {
    ++buckets_[BucketIndex(value)];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) {
      min_ = value;
    }
    if (value > max_) {
      max_ = value;
    }
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return min_; }
  uint64_t max() const { return max_; }
  uint64_t bucket(size_t i) const { return buckets_[i]; }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;

  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
};

// Point-in-time copy of every metric in a registry.
class Snapshot {
 public:
  // Returns the counter value, or 0 for an unknown name (so callers reading
  // e.g. "logger.tail_faults" work against either logger variant).
  uint64_t counter(const std::string& name) const;
  int64_t gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;

  // Per-phase difference: counters and histogram counts/sums subtract
  // (saturating at 0 if `before` is from a later point); gauges and
  // histogram min/max keep this snapshot's values.
  Snapshot Delta(const Snapshot& before) const;

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, int64_t>& gauges() const { return gauges_; }
  const std::map<std::string, HistogramSnapshot>& histograms() const { return histograms_; }

 private:
  friend class MetricsRegistry;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, int64_t> gauges_;
  std::map<std::string, HistogramSnapshot> histograms_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create an owned metric. Pointers are stable for the registry's
  // lifetime; recording through them never allocates.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  // Registers a metric owned elsewhere (a component member). The pointer
  // must stay valid until the registry is destroyed or the entry is never
  // snapshotted again. Duplicate names are a programming error.
  void RegisterCounter(const std::string& name, const Counter* external);
  void RegisterGauge(const std::string& name, const Gauge* external);
  void RegisterHistogram(const std::string& name, const Histogram* external);

  // Registers a counter computed at snapshot time (e.g. a sum over CPUs).
  void RegisterCallback(const std::string& name, std::function<uint64_t()> fn);

  Snapshot TakeSnapshot() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> owned_counters_;
  std::map<std::string, std::unique_ptr<Gauge>> owned_gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> owned_histograms_;
  std::map<std::string, const Counter*> external_counters_;
  std::map<std::string, const Gauge*> external_gauges_;
  std::map<std::string, const Histogram*> external_histograms_;
  std::map<std::string, std::function<uint64_t()>> callbacks_;
};

}  // namespace obs
}  // namespace lvm

#endif  // SRC_OBS_METRICS_H_
