#include "src/obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "src/base/check.h"
#include "src/obs/json.h"
#include "src/obs/schema_ids.h"

namespace lvm {
namespace obs {

const char* ToString(CostCenter center) {
  switch (center) {
    case CostCenter::kRoot:
      return "root";
    case CostCenter::kCompute:
      return "compute";
    case CostCenter::kMemRead:
      return "mem/read";
    case CostCenter::kMemWrite:
      return "mem/write";
    case CostCenter::kBusContention:
      return "bus/contention";
    case CostCenter::kStall:
      return "stall";
    case CostCenter::kKernel:
      return "kernel";
    case CostCenter::kVmFault:
      return "vm/page_fault";
    case CostCenter::kLogFault:
      return "log/fault";
    case CostCenter::kOverloadPark:
      return "overload/park";
    case CostCenter::kDeferredCopy:
      return "vm/deferred_copy";
    case CostCenter::kCheckpoint:
      return "ckpt/copy";
    case CostCenter::kLogMaintenance:
      return "log/maintenance";
    case CostCenter::kRollback:
      return "timewarp/rollback";
    case CostCenter::kLogEmit:
      return "log/emit";
    case CostCenter::kLogDrain:
      return "log/drain";
    case CostCenter::kCount:
      break;
  }
  return "unknown";
}

Profiler::Profiler(int num_cpus, const ProfilerConfig& config) : config_(config) {
  LVM_CHECK(num_cpus >= 1);
  LVM_CHECK(config_.nodes_per_lane >= 2);
  lanes_.reserve(static_cast<size_t>(num_cpus) + 1);
  for (int i = 0; i <= num_cpus; ++i) {
    auto lane = std::make_unique<Lane>();
    if (i < num_cpus) {
      lane->name = "cpu" + std::to_string(i);
      lane->is_cpu = true;
    } else {
      lane->name = "logger";
      lane->is_cpu = false;
    }
    lane->nodes = std::vector<Node>(config_.nodes_per_lane);
    lane->stack.reserve(config_.max_depth + 4);
    lanes_.push_back(std::move(lane));
  }
}

Profiler::~Profiler() { StopWallSampling(); }

void Profiler::SetLaneBaseline(int lane, Cycles baseline) {
  LVM_CHECK(lane >= 0 && lane < num_lanes());
  lanes_[static_cast<size_t>(lane)]->baseline = baseline;
}

Cycles Profiler::lane_baseline(int lane) const {
  LVM_CHECK(lane >= 0 && lane < num_lanes());
  return lanes_[static_cast<size_t>(lane)]->baseline;
}

int32_t Profiler::FindOrCreateChild(Lane& lane, int32_t parent, CostCenter center) {
  Node& parent_node = lane.nodes[static_cast<size_t>(parent)];
  // Walk the sibling chain; append at the tail if the center is absent.
  // On CAS failure keep walking — the winner may be our center.
  std::atomic<int32_t>* link = &parent_node.first_child;
  int32_t allocated = -1;
  for (;;) {
    int32_t next = link->load(std::memory_order_acquire);
    if (next >= 0) {
      Node& node = lane.nodes[static_cast<size_t>(next)];
      if (node.center == center) {
        return next;  // An allocated-but-unlinked slot of ours is abandoned.
      }
      link = &node.next_sibling;
      continue;
    }
    if (allocated < 0) {
      uint32_t index = lane.node_count.fetch_add(1, std::memory_order_relaxed);
      if (index >= lane.nodes.size()) {
        dropped_charges_.Increment();
        return parent;  // Pool exhausted: refinement stops, cycles stay conserved.
      }
      allocated = static_cast<int32_t>(index);
      Node& node = lane.nodes[static_cast<size_t>(index)];
      node.center = center;
      node.parent = parent;
    }
    int32_t expected = -1;
    if (link->compare_exchange_strong(expected, allocated, std::memory_order_release,
                                      std::memory_order_acquire)) {
      return allocated;
    }
  }
}

int32_t Profiler::ResolveTarget(Lane& lane, CostCenter center) {
  const int32_t current = lane.current.load(std::memory_order_acquire);
  const Node& current_node = lane.nodes[static_cast<size_t>(current)];
  if (current_node.center == center || (center == CostCenter::kKernel && current != 0)) {
    // Same-center charge, or generic kernel cost inside a named scope:
    // charge the scope itself (AddCycles inside OnPageFault lands *in*
    // vm/page_fault, not a "kernel" child).
    return current;
  }
  return FindOrCreateChild(lane, current, center);
}

void Profiler::ChargeSlow(Lane& lane, CostCenter center, Cycles cycles) {
  const int32_t target = ResolveTarget(lane, center);
  if (!lane.is_cpu) {
    lane.nodes[static_cast<size_t>(target)].cycles.fetch_add(cycles, std::memory_order_relaxed);
    return;
  }
  // CPU-lane memo miss: start a pending run for this center under the
  // current scope. The slot is zero here — FlushPending drained it when
  // the epoch last changed.
  const auto c = static_cast<size_t>(center);
  lane.pending_node[c] = target;
  lane.pending_epoch[c] = lane.scope_epoch;
  lane.pending[c].store(lane.pending[c].load(std::memory_order_relaxed) + cycles,
                        std::memory_order_relaxed);
}

void Profiler::FlushPending(Lane& lane) {
  for (size_t c = 0; c < kNumCenters; ++c) {
    const uint64_t cycles = lane.pending[c].load(std::memory_order_relaxed);
    if (cycles == 0) {
      continue;
    }
    lane.nodes[static_cast<size_t>(lane.pending_node[c])].cycles.fetch_add(
        cycles, std::memory_order_relaxed);
    lane.pending[c].store(0, std::memory_order_relaxed);
  }
}

uint64_t Profiler::PendingFor(const Lane& lane, int32_t node) const {
  uint64_t total = 0;
  for (size_t c = 0; c < kNumCenters; ++c) {
    if (lane.pending_node[c] == node) {
      total += lane.pending[c].load(std::memory_order_relaxed);
    }
  }
  return total;
}

void Profiler::PushScope(int lane_index, CostCenter center) {
  Lane& lane = *lanes_[static_cast<size_t>(lane_index)];
  // Scope change: drain the pending runs (they belong to the old scope's
  // nodes) and invalidate the charge memos.
  FlushPending(lane);
  ++lane.scope_epoch;
  const int32_t current = lane.current.load(std::memory_order_relaxed);
  int32_t target;
  if (lane.nodes[static_cast<size_t>(current)].center == center) {
    // Same-center nesting collapses (TruncateLog -> SyncLog are both
    // log/maintenance); re-pushing keeps pops balanced.
    target = current;
  } else if (lane.stack.size() >= config_.max_depth) {
    target = current;
  } else {
    target = FindOrCreateChild(lane, current, center);
  }
  lane.stack.push_back(current);
  lane.current.store(target, std::memory_order_release);
}

void Profiler::PopScope(int lane_index) {
  Lane& lane = *lanes_[static_cast<size_t>(lane_index)];
  LVM_CHECK_MSG(!lane.stack.empty(), "PopScope on a lane with no open scope");
  FlushPending(lane);
  ++lane.scope_epoch;
  lane.current.store(lane.stack.back(), std::memory_order_release);
  lane.stack.pop_back();
}

Cycles Profiler::LaneAttributed(int lane_index) const {
  const Lane& lane = *lanes_[static_cast<size_t>(lane_index)];
  const size_t count = std::min<size_t>(lane.node_count.load(std::memory_order_acquire),
                                        lane.nodes.size());
  Cycles total = 0;
  for (size_t i = 0; i < count; ++i) {
    total += lane.nodes[i].cycles.load(std::memory_order_relaxed);
  }
  // Cycles still in the pending accumulators are attributed too: the sum is
  // conserved at every instant, not just at scope boundaries.
  for (size_t c = 0; c < kNumCenters; ++c) {
    total += lane.pending[c].load(std::memory_order_relaxed);
  }
  return total;
}

Cycles Profiler::CenterCycles(int lane_index, CostCenter center) const {
  const Lane& lane = *lanes_[static_cast<size_t>(lane_index)];
  const size_t count = std::min<size_t>(lane.node_count.load(std::memory_order_acquire),
                                        lane.nodes.size());
  Cycles total = 0;
  for (size_t i = 0; i < count; ++i) {
    if (lane.nodes[i].center == center) {
      total += lane.nodes[i].cycles.load(std::memory_order_relaxed);
      total += PendingFor(lane, static_cast<int32_t>(i));
    }
  }
  return total;
}

void Profiler::StartWallSampling() {
  if (sampling_.exchange(true)) {
    return;
  }
  sampler_ = std::thread([this] {
    const auto interval = std::chrono::microseconds(config_.wall_sample_interval_us);
    while (sampling_.load(std::memory_order_relaxed)) {
      for (const std::unique_ptr<Lane>& lane : lanes_) {
        const int32_t current = lane->current.load(std::memory_order_acquire);
        lane->nodes[static_cast<size_t>(current)].wall_samples.fetch_add(
            1, std::memory_order_relaxed);
        wall_samples_.Increment();
      }
      std::this_thread::sleep_for(interval);
    }
  });
}

void Profiler::StopWallSampling() {
  if (!sampling_.exchange(false)) {
    return;
  }
  if (sampler_.joinable()) {
    sampler_.join();
  }
}

void Profiler::RegisterMetrics(MetricsRegistry* registry) const {
  registry->RegisterCounter("prof.dropped_charges", &dropped_charges_);
  registry->RegisterCounter("prof.wall_samples", &wall_samples_);
}

void Profiler::AppendNodePath(std::string* out, const Lane& lane, int32_t index) const {
  // Collect root->node frame names; the chain is short (max_depth-bounded).
  std::vector<const char*> frames;
  for (int32_t i = index; i > 0; i = lane.nodes[static_cast<size_t>(i)].parent) {
    frames.push_back(ToString(lane.nodes[static_cast<size_t>(i)].center));
  }
  for (size_t i = frames.size(); i > 0; --i) {
    out->append(frames[i - 1]);
    if (i > 1) {
      out->push_back(';');
    }
  }
}

void Profiler::AppendLaneJson(std::string* out, const Lane& lane, Cycles clock) const {
  Cycles attributed = 0;
  const size_t count = std::min<size_t>(lane.node_count.load(std::memory_order_acquire),
                                        lane.nodes.size());
  for (size_t i = 0; i < count; ++i) {
    attributed += lane.nodes[i].cycles.load(std::memory_order_relaxed);
  }
  for (size_t c = 0; c < kNumCenters; ++c) {
    attributed += lane.pending[c].load(std::memory_order_relaxed);
  }
  out->append("{\"name\":");
  AppendJsonString(out, lane.name);
  out->append(",\"kind\":");
  AppendJsonString(out, lane.is_cpu ? "cpu" : "logger");
  out->append(",\"baseline\":");
  out->append(JsonNumber(static_cast<uint64_t>(lane.baseline)));
  out->append(",\"clock\":");
  out->append(JsonNumber(static_cast<uint64_t>(clock)));
  out->append(",\"attributed\":");
  out->append(JsonNumber(static_cast<uint64_t>(attributed)));
  out->append(",\"conserved\":");
  const bool conserved = !lane.is_cpu || lane.baseline + attributed == clock;
  out->append(conserved ? "true" : "false");
  out->append(",\"nodes\":[");
  // Depth-first over the linked tree so parent paths precede children.
  // Abandoned (unlinked) slots from lost CAS races are invisible here and
  // hold zero cycles, so `attributed` above still matches the tree sum.
  std::vector<int32_t> pending;
  for (int32_t child = lane.nodes[0].first_child.load(std::memory_order_acquire); child >= 0;
       child = lane.nodes[static_cast<size_t>(child)].next_sibling.load(
           std::memory_order_acquire)) {
    pending.push_back(child);
  }
  // pending is a stack; reverse the root's children to keep DFS in
  // insertion order.
  std::reverse(pending.begin(), pending.end());
  bool first = true;
  uint64_t root_samples = lane.nodes[0].wall_samples.load(std::memory_order_relaxed);
  if (root_samples != 0) {
    out->append("{\"path\":\"root\",\"center\":\"root\",\"cycles\":0,\"wall_samples\":");
    out->append(JsonNumber(root_samples));
    out->append("}");
    first = false;
  }
  while (!pending.empty()) {
    const int32_t index = pending.back();
    pending.pop_back();
    const Node& node = lane.nodes[static_cast<size_t>(index)];
    if (!first) {
      out->push_back(',');
    }
    first = false;
    out->append("{\"path\":\"");
    AppendNodePath(out, lane, index);
    out->append("\",\"center\":");
    AppendJsonString(out, ToString(node.center));
    out->append(",\"cycles\":");
    out->append(JsonNumber(node.cycles.load(std::memory_order_relaxed) +
                           PendingFor(lane, index)));
    out->append(",\"wall_samples\":");
    out->append(JsonNumber(node.wall_samples.load(std::memory_order_relaxed)));
    out->append("}");
    std::vector<int32_t> children;
    for (int32_t child = node.first_child.load(std::memory_order_acquire); child >= 0;
         child = lane.nodes[static_cast<size_t>(child)].next_sibling.load(
             std::memory_order_acquire)) {
      children.push_back(child);
    }
    for (size_t i = children.size(); i > 0; --i) {
      pending.push_back(children[i - 1]);
    }
  }
  out->append("]}");
}

std::string Profiler::ExportJson(const std::vector<Cycles>& lane_clocks) const {
  LVM_CHECK(lane_clocks.size() == lanes_.size());
  std::string out;
  out.reserve(4096);
  out.append("{\"schema\":");
  AppendJsonString(&out, kProfileSchema);
  out.append(",\"cycles_per_second\":25000000,\"lanes\":[");
  for (size_t i = 0; i < lanes_.size(); ++i) {
    if (i != 0) {
      out.push_back(',');
    }
    AppendLaneJson(&out, *lanes_[i], lane_clocks[i]);
  }
  out.append("],\"dropped_charges\":");
  out.append(JsonNumber(dropped_charges_.value()));
  out.append(",\"wall_samples\":");
  out.append(JsonNumber(wall_samples_.value()));
  out.append("}");
  return out;
}

bool Profiler::WriteJsonFile(const std::string& path,
                             const std::vector<Cycles>& lane_clocks) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return false;
  }
  file << ExportJson(lane_clocks) << "\n";
  return static_cast<bool>(file);
}

std::string Profiler::FlameText() const {
  std::string out;
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    std::vector<int32_t> pending;
    for (int32_t child = lane->nodes[0].first_child.load(std::memory_order_acquire); child >= 0;
         child = lane->nodes[static_cast<size_t>(child)].next_sibling.load(
             std::memory_order_acquire)) {
      pending.push_back(child);
    }
    std::reverse(pending.begin(), pending.end());
    while (!pending.empty()) {
      const int32_t index = pending.back();
      pending.pop_back();
      const Node& node = lane->nodes[static_cast<size_t>(index)];
      const uint64_t cycles =
          node.cycles.load(std::memory_order_relaxed) + PendingFor(*lane, index);
      if (cycles != 0) {
        out.append(lane->name);
        out.push_back(';');
        AppendNodePath(&out, *lane, index);
        out.push_back(' ');
        out.append(JsonNumber(cycles));
        out.push_back('\n');
      }
      std::vector<int32_t> children;
      for (int32_t child = node.first_child.load(std::memory_order_acquire); child >= 0;
           child = lane->nodes[static_cast<size_t>(child)].next_sibling.load(
               std::memory_order_acquire)) {
        children.push_back(child);
      }
      for (size_t i = children.size(); i > 0; --i) {
        pending.push_back(children[i - 1]);
      }
    }
  }
  return out;
}

bool Profiler::WriteFlameFile(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return false;
  }
  file << FlameText();
  return static_cast<bool>(file);
}

}  // namespace obs
}  // namespace lvm
