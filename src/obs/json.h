// Minimal JSON building blocks shared by the observability exporters.
//
// The trace recorder, the metrics snapshots and the benchmark tables all
// emit JSON by string concatenation (no DOM, no allocation per value beyond
// the output buffer). ValidateJson is the inverse direction: a strict
// recursive-descent acceptor used by tests and examples to assert that an
// exported file actually parses, without pulling in a JSON library the
// container does not ship. ParseJson builds a small DOM (JsonValue) over
// the same grammar for the consumers that must *read* exported artifacts —
// the black-box inspector foremost.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lvm {
namespace obs {

// Appends `text` as a quoted JSON string, escaping quotes, backslashes,
// control characters and non-ASCII bytes.
void AppendJsonString(std::string* out, std::string_view text);

// Renders a double as a JSON number. Non-finite values (which JSON cannot
// represent) become null.
std::string JsonNumber(double value);
std::string JsonNumber(uint64_t value);
std::string JsonNumber(int64_t value);

// Returns true iff `text` is one complete, well-formed JSON value
// (RFC 8259 grammar; trailing whitespace allowed, trailing garbage not).
bool ValidateJson(std::string_view text);

// A parsed JSON value. Objects preserve insertion order and are looked up
// by linear scan — the documents this reads (black-box dumps, bench
// tables, Chrome traces) have small objects and are read once.
//
// Numbers keep their source token: AsUint64/AsInt64 reparse the token so
// 64-bit counters (cycle counts, addresses) round-trip exactly instead of
// going through a double.
class JsonValue {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors return `fallback` on type mismatch rather than throw:
  // the inspector degrades gracefully on a truncated or foreign dump.
  bool AsBool(bool fallback = false) const;
  double AsDouble(double fallback = 0.0) const;
  uint64_t AsUint64(uint64_t fallback = 0) const;
  int64_t AsInt64(int64_t fallback = 0) const;
  const std::string& AsString() const;  // Empty string on mismatch.

  const std::vector<JsonValue>& Items() const { return items_; }
  size_t size() const { return type_ == Type::kObject ? members_.size() : items_.size(); }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  // Shorthand for Find(key)->As...() with a fallback for missing members.
  bool GetBool(std::string_view key, bool fallback = false) const;
  double GetDouble(std::string_view key, double fallback = 0.0) const;
  uint64_t GetUint64(std::string_view key, uint64_t fallback = 0) const;
  int64_t GetInt64(std::string_view key, int64_t fallback = 0) const;
  std::string GetString(std::string_view key, std::string_view fallback = "") const;

  const std::vector<std::pair<std::string, JsonValue>>& Members() const { return members_; }

 private:
  friend class JsonDomParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  // String payload, or the verbatim number token for kNumber.
  std::string str_;
  std::vector<JsonValue> items_;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;  // kObject
};

// Parses one complete JSON value with the same strict grammar as
// ValidateJson. On failure returns false and, if `error` is non-null,
// describes the first problem with its byte offset.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error = nullptr);

}  // namespace obs
}  // namespace lvm

#endif  // SRC_OBS_JSON_H_
