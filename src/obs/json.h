// Minimal JSON building blocks shared by the observability exporters.
//
// The trace recorder, the metrics snapshots and the benchmark tables all
// emit JSON by string concatenation (no DOM, no allocation per value beyond
// the output buffer). ValidateJson is the inverse direction: a strict
// recursive-descent acceptor used by tests and examples to assert that an
// exported file actually parses, without pulling in a JSON library the
// container does not ship.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace lvm {
namespace obs {

// Appends `text` as a quoted JSON string, escaping quotes, backslashes,
// control characters and non-ASCII bytes.
void AppendJsonString(std::string* out, std::string_view text);

// Renders a double as a JSON number. Non-finite values (which JSON cannot
// represent) become null.
std::string JsonNumber(double value);
std::string JsonNumber(uint64_t value);
std::string JsonNumber(int64_t value);

// Returns true iff `text` is one complete, well-formed JSON value
// (RFC 8259 grammar; trailing whitespace allowed, trailing garbage not).
bool ValidateJson(std::string_view text);

}  // namespace obs
}  // namespace lvm

#endif  // SRC_OBS_JSON_H_
