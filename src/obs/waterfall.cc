#include "src/obs/waterfall.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "src/base/check.h"
#include "src/obs/json.h"
#include "src/obs/schema_ids.h"

namespace lvm {
namespace obs {
namespace {

// splitmix64: decorrelates each lane's sampling phase from the seed.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

constexpr size_t kNumStages = static_cast<size_t>(WaterfallStage::kCount);

void AtomicMax(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (value > cur &&
         !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

// Token layout: [63:48] lane, [47:32] slot, [31:0] odd generation.
uint64_t MakeToken(int lane, size_t slot, uint32_t gen) {
  return (static_cast<uint64_t>(lane) << 48) | (static_cast<uint64_t>(slot) << 32) |
         static_cast<uint64_t>(gen);
}

}  // namespace

const char* ToString(WaterfallStage stage) {
  switch (stage) {
    case WaterfallStage::kRecord:
      return "record";
    case WaterfallStage::kShardEnqueue:
      return "shard_enqueue";
    case WaterfallStage::kDrain:
      return "drain";
    case WaterfallStage::kSegmentAppend:
      return "segment_append";
    case WaterfallStage::kWalCommit:
      return "wal_commit";
    case WaterfallStage::kReplay:
      return "replay";
    case WaterfallStage::kCount:
      break;
  }
  return "unknown";
}

WaterfallTracer::WaterfallTracer(int lanes, const WaterfallConfig& config)
    : config_(config),
      sample_mask_((config.sample_shift >= 63 ? ~uint64_t{0}
                                              : (uint64_t{1} << config.sample_shift) - 1)),
      epoch_ns_(SteadyNowNs()) {
  LVM_CHECK(lanes >= 1 && lanes < (1 << 16));
  LVM_CHECK(config.inflight_slots >= 1 && config.inflight_slots < (1u << 16));
  lanes_.reserve(static_cast<size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->phase = Mix64(config.seed ^ static_cast<uint64_t>(i)) & sample_mask_;
    lane->slots = std::vector<Slot>(config.inflight_slots);
    lanes_.push_back(std::move(lane));
  }
}

uint64_t WaterfallTracer::NowNs() const { return SteadyNowNs() - epoch_ns_; }

void WaterfallTracer::RecordFlight(FlightEventKind kind, int lane, Cycles ts, uint64_t a0,
                                   uint64_t a1) {
  if (flight_ == nullptr) {
    return;
  }
  int ring = lane < flight_->kernel_ring() ? lane : flight_->kernel_ring();
  flight_->Record(ring, kind, ts, "waterfall", a0, a1, static_cast<uint64_t>(lane));
}

uint64_t WaterfallTracer::SampleRecord(int lane_id, Cycles sim_now, uint32_t queue_depth) {
  Lane& lane = *lanes_[static_cast<size_t>(lane_id)];
  if (((lane.counter++ + lane.phase) & sample_mask_) != 0) {
    return 0;
  }
  // Find a free slot (even generation). Only the lane owner allocates, but
  // Complete may free concurrently from another thread; the CAS makes the
  // claim race-free either way.
  for (size_t i = 0; i < lane.slots.size(); ++i) {
    Slot& slot = lane.slots[i];
    uint32_t gen = slot.gen.load(std::memory_order_relaxed);
    if ((gen & 1u) != 0) {
      continue;
    }
    if (!slot.gen.compare_exchange_strong(gen, gen + 1, std::memory_order_acquire)) {
      continue;
    }
    slot.id = (static_cast<uint64_t>(lane_id) << 32) | lane.next_ordinal++;
    slot.has_identity = false;
    slot.seq = 0;
    slot.hop_count = 1;
    slot.hops[0] = WaterfallHop{WaterfallStage::kRecord, static_cast<uint16_t>(lane_id),
                                queue_depth, sim_now, NowNs()};
    AtomicMax(&queue_peak_[static_cast<size_t>(WaterfallStage::kRecord)], queue_depth);
    sampled_.Increment();
    uint64_t token = MakeToken(lane_id, i, gen + 1);
    RecordFlight(FlightEventKind::kWaterfallSampled, lane_id, sim_now, slot.id, queue_depth);
    return token;
  }
  dropped_.Increment();
  RecordFlight(FlightEventKind::kWaterfallDropped, lane_id, sim_now, lane.counter - 1,
               queue_depth);
  return 0;
}

WaterfallTracer::Slot* WaterfallTracer::Resolve(uint64_t token) {
  if (token == 0) {
    return nullptr;
  }
  size_t lane = token >> 48;
  size_t slot_index = (token >> 32) & 0xffffu;
  auto gen = static_cast<uint32_t>(token & 0xffffffffu);
  if (lane >= lanes_.size() || slot_index >= lanes_[lane]->slots.size()) {
    return nullptr;
  }
  Slot& slot = lanes_[lane]->slots[slot_index];
  if (slot.gen.load(std::memory_order_relaxed) != gen) {
    return nullptr;  // Recycled or never issued: a stale token.
  }
  return &slot;
}

const WaterfallTracer::Slot* WaterfallTracer::Resolve(uint64_t token) const {
  return const_cast<WaterfallTracer*>(this)->Resolve(token);
}

void WaterfallTracer::Stamp(uint64_t token, WaterfallStage stage, int lane, Cycles sim_now,
                            uint32_t queue_depth) {
  Slot* slot = Resolve(token);
  if (slot == nullptr) {
    return;
  }
  AtomicMax(&queue_peak_[static_cast<size_t>(stage)], queue_depth);
  if (slot->hop_count >= kMaxHops) {
    return;
  }
  slot->hops[slot->hop_count++] = WaterfallHop{stage, static_cast<uint16_t>(lane), queue_depth,
                                               sim_now, NowNs()};
}

void WaterfallTracer::SetIdentity(uint64_t token, uint32_t addr, uint32_t value,
                                  uint32_t timestamp) {
  Slot* slot = Resolve(token);
  if (slot == nullptr) {
    return;
  }
  slot->addr = addr;
  slot->value = value;
  slot->timestamp = timestamp;
  slot->has_identity = true;
}

uint64_t WaterfallTracer::MatchToken(uint32_t addr, uint32_t value, uint32_t timestamp) const {
  for (size_t lane = 0; lane < lanes_.size(); ++lane) {
    const std::vector<Slot>& slots = lanes_[lane]->slots;
    for (size_t i = 0; i < slots.size(); ++i) {
      const Slot& slot = slots[i];
      uint32_t gen = slot.gen.load(std::memory_order_acquire);
      if ((gen & 1u) == 0 || !slot.has_identity) {
        continue;
      }
      if (slot.addr == addr && slot.value == value && slot.timestamp == timestamp) {
        return MakeToken(static_cast<int>(lane), i, gen);
      }
    }
  }
  return 0;
}

void WaterfallTracer::BindSeq(uint64_t token, uint64_t seq) {
  Slot* slot = Resolve(token);
  if (slot == nullptr) {
    return;
  }
  slot->seq = seq;
}

void WaterfallTracer::TokensForSeq(uint64_t seq, std::vector<uint64_t>* out) const {
  if (seq == 0) {
    return;
  }
  for (size_t lane = 0; lane < lanes_.size(); ++lane) {
    const std::vector<Slot>& slots = lanes_[lane]->slots;
    for (size_t i = 0; i < slots.size(); ++i) {
      const Slot& slot = slots[i];
      uint32_t gen = slot.gen.load(std::memory_order_acquire);
      if ((gen & 1u) != 0 && slot.seq == seq) {
        out->push_back(MakeToken(static_cast<int>(lane), i, gen));
      }
    }
  }
}

void WaterfallTracer::Retire(Slot* slot, uint16_t origin_lane) {
  // Fold: each hop after the first charges its stage with the wall-ns
  // delta from the previous hop, so per-stage latencies telescope exactly
  // to end-to-end.
  uint64_t prev = slot->hops[0].wall_ns;
  for (uint32_t i = 1; i < slot->hop_count; ++i) {
    const WaterfallHop& hop = slot->hops[i];
    stage_ns_[static_cast<size_t>(hop.stage)].Record(hop.wall_ns - prev);
    if (hop.stage == WaterfallStage::kDrain && i >= 1 &&
        slot->hops[i - 1].stage == WaterfallStage::kShardEnqueue) {
      AtomicMax(&queue_age_peak_ns_, hop.wall_ns - prev);
    }
    prev = hop.wall_ns;
  }
  CompletedWaterfall done;
  done.id = slot->id;
  done.lane = origin_lane;
  done.addr = slot->addr;
  done.value = slot->value;
  done.timestamp = slot->timestamp;
  done.end_to_end_ns = slot->hops[slot->hop_count - 1].wall_ns - slot->hops[0].wall_ns;
  done.hops.assign(slot->hops.begin(), slot->hops.begin() + slot->hop_count);
  completed_count_.Increment();
  {
    MutexLock lock(mu_);
    if (completed_.size() < config_.completed_capacity) {
      completed_.push_back(std::move(done));
    } else {
      truncated_.Increment();
    }
  }
  // Free last: the release pairs with SampleRecord's acquire CAS so the
  // next owner sees a fully retired slot.
  slot->gen.fetch_add(1, std::memory_order_release);
}

void WaterfallTracer::Complete(uint64_t token, WaterfallStage stage, int lane, Cycles sim_now,
                               uint32_t queue_depth) {
  Slot* slot = Resolve(token);
  if (slot == nullptr) {
    return;
  }
  AtomicMax(&queue_peak_[static_cast<size_t>(stage)], queue_depth);
  if (slot->hop_count < kMaxHops) {
    slot->hops[slot->hop_count++] = WaterfallHop{stage, static_cast<uint16_t>(lane), queue_depth,
                                                 sim_now, NowNs()};
  }
  Retire(slot, static_cast<uint16_t>(token >> 48));
}

void WaterfallTracer::Abandon(uint64_t token) {
  Slot* slot = Resolve(token);
  if (slot == nullptr) {
    return;
  }
  abandoned_.Increment();
  slot->gen.fetch_add(1, std::memory_order_release);
}

uint64_t WaterfallTracer::FinishInFlight() {
  uint64_t finished = 0;
  for (size_t lane = 0; lane < lanes_.size(); ++lane) {
    std::vector<Slot>& slots = lanes_[lane]->slots;
    for (Slot& slot : slots) {
      if ((slot.gen.load(std::memory_order_acquire) & 1u) != 0) {
        Retire(&slot, static_cast<uint16_t>(lane));
        ++finished;
      }
    }
  }
  return finished;
}

uint64_t WaterfallTracer::inflight() const {
  uint64_t active = 0;
  for (const auto& lane : lanes_) {
    for (const Slot& slot : lane->slots) {
      active += slot.gen.load(std::memory_order_relaxed) & 1u;
    }
  }
  return active;
}

std::vector<CompletedWaterfall> WaterfallTracer::Completed() const {
  MutexLock lock(mu_);
  return completed_;
}

void WaterfallTracer::RegisterMetrics(MetricsRegistry* registry) const {
  registry->RegisterCounter("waterfall.sampled", &sampled_);
  registry->RegisterCounter("waterfall.completed", &completed_count_);
  registry->RegisterCounter("waterfall.dropped", &dropped_);
  registry->RegisterCounter("waterfall.abandoned", &abandoned_);
  registry->RegisterCounter("waterfall.truncated", &truncated_);
  for (size_t i = 0; i < kNumStages; ++i) {
    auto stage = static_cast<WaterfallStage>(i);
    registry->RegisterHistogram(std::string("waterfall.stage_ns.") + ToString(stage),
                                &stage_ns_[i]);
    const std::atomic<uint64_t>* peak = &queue_peak_[i];
    registry->RegisterCallback(std::string("waterfall.queue_peak.") + ToString(stage),
                               [peak] { return peak->load(std::memory_order_relaxed); });
  }
  const std::atomic<uint64_t>* age = &queue_age_peak_ns_;
  registry->RegisterCallback("waterfall.queue_age_peak_ns",
                             [age] { return age->load(std::memory_order_relaxed); });
}

std::string WaterfallTracer::Json() const {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":";
  AppendJsonString(&out, kWaterfallSchema);
  out += ",\"config\":{\"lanes\":" + JsonNumber(static_cast<uint64_t>(lanes_.size()));
  out += ",\"sample_shift\":" + JsonNumber(static_cast<uint64_t>(config_.sample_shift));
  out += ",\"inflight_slots\":" + JsonNumber(static_cast<uint64_t>(config_.inflight_slots));
  out += ",\"completed_capacity\":" +
         JsonNumber(static_cast<uint64_t>(config_.completed_capacity));
  out += ",\"seed\":" + JsonNumber(config_.seed);
  out += "},\"counters\":{\"sampled\":" + JsonNumber(sampled());
  out += ",\"completed\":" + JsonNumber(completed());
  out += ",\"dropped\":" + JsonNumber(dropped());
  out += ",\"abandoned\":" + JsonNumber(abandoned());
  out += ",\"truncated\":" + JsonNumber(truncated_.value());
  out += ",\"inflight\":" + JsonNumber(inflight());
  out += "},\"queue_age_peak_ns\":" +
         JsonNumber(queue_age_peak_ns_.load(std::memory_order_relaxed));
  out += ",\"stages\":[";
  bool first = true;
  for (size_t i = 0; i < kNumStages; ++i) {
    const Histogram& h = stage_ns_[i];
    if (h.count() == 0) {
      continue;
    }
    HistogramSnapshot snap;
    snap.count = h.count();
    snap.sum = h.sum();
    snap.min = h.min();
    snap.max = h.max();
    snap.buckets.resize(Histogram::kBuckets);
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      snap.buckets[b] = h.bucket(b);
    }
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"stage\":";
    AppendJsonString(&out, ToString(static_cast<WaterfallStage>(i)));
    out += ",\"count\":" + JsonNumber(snap.count);
    out += ",\"min_ns\":" + JsonNumber(snap.min);
    out += ",\"max_ns\":" + JsonNumber(snap.max);
    out += ",\"mean_ns\":" + JsonNumber(snap.Mean());
    out += ",\"p50_ns\":" + JsonNumber(snap.Percentile(50));
    out += ",\"p99_ns\":" + JsonNumber(snap.Percentile(99));
    out += ",\"queue_peak\":" + JsonNumber(queue_peak_[i].load(std::memory_order_relaxed));
    out += "}";
  }
  out += "],\"waterfalls\":[";
  {
    MutexLock lock(mu_);
    for (size_t w = 0; w < completed_.size(); ++w) {
      const CompletedWaterfall& done = completed_[w];
      if (w != 0) {
        out += ",";
      }
      out += "{\"id\":" + JsonNumber(done.id);
      out += ",\"lane\":" + JsonNumber(static_cast<uint64_t>(done.lane));
      out += ",\"addr\":" + JsonNumber(static_cast<uint64_t>(done.addr));
      out += ",\"value\":" + JsonNumber(static_cast<uint64_t>(done.value));
      out += ",\"timestamp\":" + JsonNumber(static_cast<uint64_t>(done.timestamp));
      out += ",\"end_to_end_ns\":" + JsonNumber(done.end_to_end_ns);
      out += ",\"hops\":[";
      uint64_t base = done.hops.empty() ? 0 : done.hops[0].wall_ns;
      for (size_t h = 0; h < done.hops.size(); ++h) {
        const WaterfallHop& hop = done.hops[h];
        if (h != 0) {
          out += ",";
        }
        out += "{\"stage\":";
        AppendJsonString(&out, ToString(hop.stage));
        out += ",\"lane\":" + JsonNumber(static_cast<uint64_t>(hop.lane));
        out += ",\"queue_depth\":" + JsonNumber(static_cast<uint64_t>(hop.queue_depth));
        out += ",\"sim_cycle\":" + JsonNumber(static_cast<uint64_t>(hop.sim_cycle));
        out += ",\"wall_ns\":" + JsonNumber(hop.wall_ns - base);
        out += "}";
      }
      out += "]}";
    }
  }
  out += "]}";
  return out;
}

bool WaterfallTracer::WriteJsonFile(const std::string& path) const {
  std::string json = Json();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  int closed = std::fclose(file);
  return written == json.size() && closed == 0;
}

}  // namespace obs
}  // namespace lvm
