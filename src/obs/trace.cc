#include "src/obs/trace.h"

#include <cstdio>

#include "src/obs/json.h"

namespace lvm {
namespace obs {

namespace {

std::string Microseconds(Cycles cycles) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.3f",
                static_cast<double>(cycles) / TraceRecorder::kCyclesPerMicrosecond);
  return buffer;
}

}  // namespace

void TraceRecorder::Enable(size_t capacity) {
  capacity_ = capacity;
  events_.reserve(capacity);
  enabled_ = true;
}

void TraceRecorder::AppendChromeTrace(std::string* out) const {
  out->append("{\"traceEvents\":[");
  bool first = true;
  auto separator = [&] {
    if (!first) {
      out->push_back(',');
    }
    first = false;
  };
  // Metadata: one process, named tracks per tid.
  separator();
  out->append(
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"lvm-sim\"}}");
  for (const auto& [tid, name] : thread_names_) {
    separator();
    char head[96];
    std::snprintf(head, sizeof(head),
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\",\"args\":{\"name\":",
                  tid);
    out->append(head);
    AppendJsonString(out, name);
    out->append("}}");
  }
  for (const TraceEvent& e : events_) {
    separator();
    out->append("{\"ph\":\"");
    out->push_back(e.phase);
    out->append("\",\"pid\":1,\"tid\":");
    out->append(JsonNumber(static_cast<uint64_t>(e.tid)));
    out->append(",\"cat\":");
    AppendJsonString(out, e.category);
    out->append(",\"name\":");
    AppendJsonString(out, e.name);
    out->append(",\"ts\":");
    out->append(Microseconds(e.ts));
    if (e.phase == 'X') {
      out->append(",\"dur\":");
      out->append(Microseconds(e.dur));
    }
    if (e.arg1_name != nullptr || e.arg2_name != nullptr) {
      out->append(",\"args\":{");
      bool first_arg = true;
      if (e.arg1_name != nullptr) {
        AppendJsonString(out, e.arg1_name);
        out->push_back(':');
        out->append(JsonNumber(e.arg1));
        first_arg = false;
      }
      if (e.arg2_name != nullptr) {
        if (!first_arg) {
          out->push_back(',');
        }
        AppendJsonString(out, e.arg2_name);
        out->push_back(':');
        out->append(JsonNumber(e.arg2));
      }
      out->push_back('}');
    }
    out->push_back('}');
  }
  out->append("],\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock_mhz\":25,"
              "\"dropped_events\":");
  out->append(JsonNumber(dropped_events_.value()));
  out->append("}}");
}

std::string TraceRecorder::ChromeTraceJson() const {
  std::string out;
  out.reserve(events_.size() * 120 + 256);
  AppendChromeTrace(&out);
  return out;
}

bool TraceRecorder::WriteChromeTraceFile(const std::string& path) const {
  std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

}  // namespace obs
}  // namespace lvm
