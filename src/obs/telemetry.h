// Live telemetry: a monitor thread streaming NDJSON metric deltas.
//
// Long benches and the future serving layer need to be watchable *in
// flight*, not just post-mortem. A TelemetryStream takes a periodic
// MetricsRegistry snapshot, diffs it against the previous tick, and writes
// one `lvm.telemetry.v1` JSON object per line (NDJSON) to a file or an
// inherited fd — counters as per-tick deltas (zero deltas elided), gauges
// as current values, plus per-lane attributed cycles from an optional
// Profiler. `tail -f` the file, or point a collector at the fd.
//
// The monitor thread only reads atomics through TakeSnapshot() and the
// profiler's lane sums, both documented mid-run-safe, so the stream can run
// while the parallel engine's workers are hot. A final line is always
// emitted on Stop() so short runs still produce at least one sample.
#ifndef SRC_OBS_TELEMETRY_H_
#define SRC_OBS_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"

namespace lvm {
namespace obs {

struct TelemetryConfig {
  // Snapshot-and-emit period. The stop path never waits longer than a few
  // milliseconds regardless of this value.
  uint32_t interval_ms = 100;
};

class TelemetryStream {
 public:
  // `registry` must outlive the stream; `profiler` may be null (no
  // "profile" member in the emitted lines then).
  explicit TelemetryStream(const MetricsRegistry* registry, const Profiler* profiler = nullptr);
  ~TelemetryStream();

  TelemetryStream(const TelemetryStream&) = delete;
  TelemetryStream& operator=(const TelemetryStream&) = delete;

  // Starts the monitor thread writing to `path` (truncates). Returns false
  // (and stays stopped) if the file cannot be opened or already running.
  bool Start(const std::string& path, const TelemetryConfig& config = TelemetryConfig{});
  // Same, writing to a duplicate of `fd` (the caller keeps ownership of the
  // original descriptor).
  bool StartFd(int fd, const TelemetryConfig& config = TelemetryConfig{});

  // Emits one final line, joins the monitor thread, closes the sink.
  // Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint64_t lines_emitted() const { return lines_emitted_.value(); }

 private:
  bool StartWithSink(std::FILE* sink, const TelemetryConfig& config);
  void Run();
  void EmitLine();

  const MetricsRegistry* registry_;
  const Profiler* profiler_;
  TelemetryConfig config_;

  std::FILE* sink_ = nullptr;
  std::thread monitor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  Counter lines_emitted_;

  // Monitor-thread state (owner: Run()).
  Snapshot prev_;
  uint64_t seq_ = 0;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace obs
}  // namespace lvm

#endif  // SRC_OBS_TELEMETRY_H_
