// Reader-side model of the lvm.blackbox.v1 crash dump.
//
// The writer (LvmSystem::DumpBlackBox, src/lvm/black_box.cc) serializes the
// flight recorder, final metrics snapshot, per-log tails and pending race
// reports into one strict-JSON bundle. This header is the other half: a
// plain-struct model, a parser over obs/json's DOM, and the rendering
// helpers the lvm-inspect CLI and tests/blackbox_test.cc share (summary,
// merged timeline, component cycle attribution).
//
// Layering: this stays in src/obs with no simulator dependencies so the
// inspector can load a dump from a process that never built an LvmSystem.
// The replay cross-check, which needs LogRecord semantics, lives in
// src/check (LogReplayVerifier::CrossCheckTail) and consumes these structs
// converted by the caller.
#ifndef SRC_OBS_BLACKBOX_READER_H_
#define SRC_OBS_BLACKBOX_READER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/schema_ids.h"

namespace lvm {
namespace obs {

// Alias of the registered schema id (src/obs/schema_ids.h) under the
// reader's historical name.
inline constexpr const char* kBlackBoxFormat = kBlackBoxSchema;

// One flight-recorder event as dumped (kind/component already stringified).
struct BlackBoxEvent {
  uint64_t seq = 0;
  int ring = 0;
  std::string kind;
  std::string component;
  uint64_t ts = 0;
  std::string detail;
  uint64_t a0 = 0;
  uint64_t a1 = 0;
  uint64_t a2 = 0;
};

// One decoded log record from a dumped tail (mirrors logger/log_record.h
// without depending on it).
struct BlackBoxRecord {
  uint64_t addr = 0;
  uint64_t value = 0;
  uint32_t size = 0;
  uint32_t flags = 0;
  uint64_t timestamp = 0;
};

// Effective memory bytes at dump time for a physically contiguous range.
struct BlackBoxMemoryExtent {
  uint64_t addr = 0;
  std::vector<uint8_t> bytes;
};

// One log segment's dump section: identity, tail records, and the memory
// image the tail should replay to.
struct BlackBoxLog {
  int log_index = 0;
  uint64_t append_offset = 0;
  uint64_t pages = 0;
  uint64_t records = 0;
  uint64_t tail_first = 0;  // Index of tail_records[0] within the log.
  std::vector<BlackBoxRecord> tail_records;
  std::vector<BlackBoxMemoryExtent> memory;
};

struct BlackBoxViolation {
  std::string kind;
  std::string message;
};

struct BlackBoxDump {
  std::string cause;         // invariant_violation | check_failure | signal | manual
  std::string cause_detail;  // Free-form: the violation message, signal name, ...
  JsonValue config;          // num_cpus / logger_kind / seed / params subset.
  uint64_t events_recorded = 0;
  uint64_t events_dropped = 0;
  int rings = 0;
  uint64_t ring_capacity = 0;
  std::vector<BlackBoxEvent> events;  // Sequence-ordered merged timeline.
  JsonValue metrics;                  // counters / gauges / histograms objects.
  std::vector<BlackBoxLog> logs;
  JsonValue races;  // The race-report array, verbatim.
  std::vector<BlackBoxViolation> violations;

  // Counter value from the dumped metrics snapshot (0 when absent).
  uint64_t Counter(std::string_view name) const;
  // Machine parameter from config.params (fallback when absent).
  uint64_t Param(std::string_view name, uint64_t fallback) const;
};

// Parses a dump; rejects anything that is not well-formed JSON with
// format == lvm.blackbox.v1. On failure returns false and describes the
// problem in *error (if non-null).
bool ParseBlackBoxDump(std::string_view json, BlackBoxDump* out, std::string* error = nullptr);
// ParseBlackBoxDump over a file's contents.
bool LoadBlackBoxDump(const std::string& path, BlackBoxDump* out, std::string* error = nullptr);

// Hex encoding for memory extents ("00af3c..."; two lowercase digits per
// byte). Decode returns false on odd length or a non-hex digit.
std::string HexEncode(const uint8_t* data, size_t size);
bool HexDecode(std::string_view hex, std::vector<uint8_t>* out);

// --- rendering (shared by lvm-inspect and tests) ---

// Cause, config one-liner, event/drop counts, violation list.
std::string RenderSummary(const BlackBoxDump& dump);

// The merged event timeline, one line per event, oldest first. When
// max_events > 0 only the newest that many events render (a "... N earlier
// events" header notes the elision). kMetricsSync events render the deltas
// between consecutive sync points.
std::string RenderTimeline(const BlackBoxDump& dump, size_t max_events = 0);

// Attributes simulated cycles to components from the dumped counters and
// the machine parameters recorded in config.params:
//   kernel - logging-fault handling + overload suspensions
//   vm     - page-fault handling
//   logger - record service time
//   bus    - busy cycles as seen by the bus model
//   l2     - fills and writebacks
// Returns (component, cycles) pairs, largest first. The buckets overlap
// (bus busy time includes logged-write traffic) — this is a profile of
// where simulated time went, not a partition.
std::vector<std::pair<std::string, double>> AttributeCycles(const BlackBoxDump& dump);
// The attribution table as text, with each bucket as a share of
// cpu.max_cycles.
std::string RenderAttribution(const BlackBoxDump& dump);

}  // namespace obs
}  // namespace lvm

#endif  // SRC_OBS_BLACKBOX_READER_H_
