// Cycle-timestamped event tracing with Chrome trace-event JSON export.
//
// The recorder is disabled by default and costs one branch per call site
// (`if (!enabled()) return;`) — no heap allocation anywhere on the recording
// path, which keeps the logger write path clean when tracing is off. Enable()
// pre-reserves a bounded buffer; once full, NEW events are dropped and
// counted (the prefix of a run is usually what a trace viewer needs, and
// dropping old events would shuffle span nesting).
//
// Event names and categories are `const char*` and must be string literals
// (or otherwise outlive the recorder): nothing is copied.
//
// Threading contract (why there is no mutex here, unlike MetricsRegistry or
// the flight-recorder rings): the recorder is confined to the simulation
// thread that owns the Cpu whose cycles it timestamps — a lock on Push()
// would put a syscall-capable wait on the logger write path it exists to
// observe. The only members another thread may touch are the two Counters
// below (atomic, snapshot-safe); `events_` and `thread_names_` must not be
// read until the owning thread has quiesced (export happens after Run()).
//
// Export follows the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// a {"traceEvents":[...]} object loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Timestamps convert simulated cycles to microseconds at
// the ParaDiGM clock rate (25 MHz => 1 cycle = 0.04 us).
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/obs/metrics.h"

namespace lvm {
namespace obs {

struct TraceEvent {
  const char* category = "";
  const char* name = "";
  char phase = 'i';  // 'X' complete, 'i' instant, 'C' counter.
  uint32_t tid = 0;
  Cycles ts = 0;
  Cycles dur = 0;
  // Up to two inline numeric args, rendered into the "args" object.
  const char* arg1_name = nullptr;
  uint64_t arg1 = 0;
  const char* arg2_name = nullptr;
  uint64_t arg2 = 0;
};

class TraceRecorder {
 public:
  static constexpr double kCyclesPerMicrosecond = 25.0;  // 25 MHz clock.

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Arms the recorder with a fixed event budget. May be called again to
  // resize; existing events are kept if they fit.
  void Enable(size_t capacity);
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void Instant(const char* category, const char* name, uint32_t tid, Cycles ts) {
    if (!enabled_) {
      return;
    }
    TraceEvent e;
    e.category = category;
    e.name = name;
    e.phase = 'i';
    e.tid = tid;
    e.ts = ts;
    Push(e);
  }

  void Instant(const char* category, const char* name, uint32_t tid, Cycles ts,
               const char* arg1_name, uint64_t arg1) {
    if (!enabled_) {
      return;
    }
    TraceEvent e;
    e.category = category;
    e.name = name;
    e.phase = 'i';
    e.tid = tid;
    e.ts = ts;
    e.arg1_name = arg1_name;
    e.arg1 = arg1;
    Push(e);
  }

  void Complete(const char* category, const char* name, uint32_t tid, Cycles start,
                Cycles end) {
    Complete(category, name, tid, start, end, nullptr, 0, nullptr, 0);
  }

  void Complete(const char* category, const char* name, uint32_t tid, Cycles start, Cycles end,
                const char* arg1_name, uint64_t arg1) {
    Complete(category, name, tid, start, end, arg1_name, arg1, nullptr, 0);
  }

  void Complete(const char* category, const char* name, uint32_t tid, Cycles start, Cycles end,
                const char* arg1_name, uint64_t arg1, const char* arg2_name, uint64_t arg2) {
    if (!enabled_) {
      return;
    }
    TraceEvent e;
    e.category = category;
    e.name = name;
    e.phase = 'X';
    e.tid = tid;
    e.ts = start;
    e.dur = end > start ? end - start : 0;
    e.arg1_name = arg1_name;
    e.arg1 = arg1;
    e.arg2_name = arg2_name;
    e.arg2 = arg2;
    Push(e);
  }

  // Counter track (FIFO occupancy and the like); rendered as ph:'C'.
  void CounterValue(const char* category, const char* name, uint32_t tid, Cycles ts,
                    uint64_t value) {
    if (!enabled_) {
      return;
    }
    TraceEvent e;
    e.category = category;
    e.name = name;
    e.phase = 'C';
    e.tid = tid;
    e.ts = ts;
    e.arg1_name = "value";
    e.arg1 = value;
    Push(e);
  }

  // Names the track for `tid` in the viewer (emitted as an 'M' metadata
  // event). Allocates; call from setup code, not hot paths.
  void SetThreadName(uint32_t tid, const std::string& name) { thread_names_[tid] = name; }

  size_t size() const { return events_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t dropped_events() const { return dropped_events_.value(); }
  uint64_t recorded_events() const { return recorded_events_.value(); }
  const TraceEvent& event(size_t i) const { return events_[i]; }

  void Clear() {
    events_.clear();
    dropped_events_.Reset();
    recorded_events_.Reset();
  }

  // Registers "trace.events_recorded" / "trace.events_dropped" so silent
  // event loss shows up in GetStats() and bench JSON. Call at most once
  // per registry; the recorder must outlive it.
  void RegisterMetrics(MetricsRegistry* registry) const {
    registry->RegisterCounter("trace.events_recorded", &recorded_events_);
    registry->RegisterCounter("trace.events_dropped", &dropped_events_);
  }

  // Serializes all events (plus metadata) as a {"traceEvents":[...]} object.
  void AppendChromeTrace(std::string* out) const;
  std::string ChromeTraceJson() const;
  // Returns false if the file could not be written.
  bool WriteChromeTraceFile(const std::string& path) const;

 private:
  void Push(const TraceEvent& e) {
    if (events_.size() >= capacity_) {
      dropped_events_.Increment();
      return;
    }
    events_.push_back(e);
    recorded_events_.Increment();
  }

  bool enabled_ = false;
  size_t capacity_ = 0;
  // Counters (not plain uint64) so a metrics snapshot taken while another
  // thread records stays a data-race-free read.
  Counter dropped_events_;
  Counter recorded_events_;
  std::vector<TraceEvent> events_;
  std::map<uint32_t, std::string> thread_names_;
};

// RAII span: records a Complete event from construction to destruction using
// a caller-supplied clock (any callable returning Cycles — typically reading
// a Cpu's cycle counter). No-op, no-alloc when the recorder is disabled.
template <typename Clock>
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, const char* category, const char* name, uint32_t tid,
             Clock clock)
      : recorder_(recorder), category_(category), name_(name), tid_(tid),
        clock_(std::move(clock)), start_(recorder->enabled() ? clock_() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void SetArg(const char* arg_name, uint64_t value) {
    arg1_name_ = arg_name;
    arg1_ = value;
  }

  ~ScopedSpan() {
    if (recorder_->enabled()) {
      recorder_->Complete(category_, name_, tid_, start_, clock_(), arg1_name_, arg1_);
    }
  }

 private:
  TraceRecorder* recorder_;
  const char* category_;
  const char* name_;
  uint32_t tid_;
  Clock clock_;
  Cycles start_;
  const char* arg1_name_ = nullptr;
  uint64_t arg1_ = 0;
};

}  // namespace obs
}  // namespace lvm

#endif  // SRC_OBS_TRACE_H_
