// A real memory-mapped file on the host (mmap(2), MAP_SHARED, msync(2)).
//
// The simulated MappedFile above it models the paper's mapped-file story
// inside the simulator; HostMappedFile is its real-hardware counterpart and
// the durability primitive under the hostlvm write-ahead log (DESIGN.md
// §15): bytes stored through data() land in the kernel page cache, survive
// the death of this process, and Sync() forces them to the device with a
// synchronous msync. Nothing in here knows about log framing — it is a
// named, fixed-size, crash-persistent byte array.
#ifndef SRC_MFILE_HOST_MAPPED_FILE_H_
#define SRC_MFILE_HOST_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace lvm {

class HostMappedFile {
 public:
  // Creates `path` (truncating an existing file) with exactly `size_bytes`
  // bytes of zeros and maps it shared + read/write. Returns nullptr and
  // fills `error` (if non-null) on any I/O failure.
  static std::unique_ptr<HostMappedFile> Create(const std::string& path, size_t size_bytes,
                                                std::string* error = nullptr);

  // Maps an existing file read/write at its current size.
  static std::unique_ptr<HostMappedFile> Open(const std::string& path,
                                              std::string* error = nullptr);

  // Open() if `path` exists, Create(path, size_bytes) otherwise. `created`
  // (if non-null) reports which happened.
  static std::unique_ptr<HostMappedFile> OpenOrCreate(const std::string& path,
                                                      size_t size_bytes, bool* created = nullptr,
                                                      std::string* error = nullptr);

  ~HostMappedFile();

  HostMappedFile(const HostMappedFile&) = delete;
  HostMappedFile& operator=(const HostMappedFile&) = delete;

  uint8_t* data() { return base_; }
  const uint8_t* data() const { return base_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  // Synchronously writes the touched range back to the device (msync
  // MS_SYNC over the page-aligned cover of [offset, offset + length)).
  // Returns false on failure; a zero-length sync is a successful no-op.
  bool Sync(size_t offset, size_t length);
  bool SyncAll() { return Sync(0, size_); }

  uint64_t syncs() const { return syncs_; }

 private:
  HostMappedFile(std::string path, int fd, uint8_t* base, size_t size)
      : path_(std::move(path)), fd_(fd), base_(base), size_(size) {}

  // Maps `fd` (taking ownership; closed on failure) and wraps it.
  static std::unique_ptr<HostMappedFile> MapFd(const std::string& path, int fd, size_t size,
                                               std::string* error);

  std::string path_;
  int fd_ = -1;
  uint8_t* base_ = nullptr;
  size_t size_ = 0;
  uint64_t syncs_ = 0;
};

}  // namespace lvm

#endif  // SRC_MFILE_HOST_MAPPED_FILE_H_
