#include "src/mfile/host_mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lvm {

namespace {

constexpr size_t kHostPage = 4096;

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what + ": " + std::strerror(errno);
  }
}

}  // namespace

std::unique_ptr<HostMappedFile> HostMappedFile::MapFd(const std::string& path, int fd,
                                                      size_t size, std::string* error) {
  void* base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    SetError(error, "mmap " + path);
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<HostMappedFile>(
      new HostMappedFile(path, fd, static_cast<uint8_t*>(base), size));
}

std::unique_ptr<HostMappedFile> HostMappedFile::Create(const std::string& path,
                                                       size_t size_bytes, std::string* error) {
  if (size_bytes == 0) {
    if (error != nullptr) {
      *error = "cannot map an empty file: " + path;
    }
    return nullptr;
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError(error, "open " + path);
    return nullptr;
  }
  if (::ftruncate(fd, static_cast<off_t>(size_bytes)) != 0) {
    SetError(error, "ftruncate " + path);
    ::close(fd);
    return nullptr;
  }
  return MapFd(path, fd, size_bytes, error);
}

std::unique_ptr<HostMappedFile> HostMappedFile::Open(const std::string& path,
                                                     std::string* error) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    SetError(error, "open " + path);
    return nullptr;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    SetError(error, "fstat " + path);
    ::close(fd);
    return nullptr;
  }
  return MapFd(path, fd, static_cast<size_t>(st.st_size), error);
}

std::unique_ptr<HostMappedFile> HostMappedFile::OpenOrCreate(const std::string& path,
                                                             size_t size_bytes, bool* created,
                                                             std::string* error) {
  struct stat st;
  const bool exists = ::stat(path.c_str(), &st) == 0;
  if (created != nullptr) {
    *created = !exists;
  }
  return exists ? Open(path, error) : Create(path, size_bytes, error);
}

HostMappedFile::~HostMappedFile() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool HostMappedFile::Sync(size_t offset, size_t length) {
  if (length == 0) {
    return true;
  }
  if (offset > size_ || length > size_ - offset) {
    return false;
  }
  // msync requires a page-aligned start; widen to the page cover.
  const size_t start = offset & ~(kHostPage - 1);
  const size_t end = offset + length;
  if (::msync(base_ + start, end - start, MS_SYNC) != 0) {
    return false;
  }
  ++syncs_;
  return true;
}

}  // namespace lvm
