// Memory-mapped files over the simulated VM system (Section 2.7: logging
// "fits with application structuring required with mapped files and mapped
// I/O").
//
// A SimFile is a named byte array standing in for stable storage. A
// MappedFile materializes the file's pages on demand through a user-level
// segment manager (the paper's SegmentMan) and writes modifications back
// with one of two msync flavours:
//   - Msync(): the conventional whole-page write-back of every
//     materialized page;
//   - MsyncFromLog(): the LVM version — attach a log to the mapping and
//     write back exactly the bytes the log says changed, then truncate.
// For sparse updates the log-based sync writes orders of magnitude fewer
// bytes to the device.
#ifndef SRC_MFILE_MAPPED_FILE_H_
#define SRC_MFILE_MAPPED_FILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"
#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"

namespace lvm {

struct FileIoParams {
  // Device cost of one msync operation.
  uint32_t sync_base_cycles = 3000;
  // Device cost per byte written back.
  uint32_t write_per_byte_cycles = 8;
  // Device cost of paging one page in.
  uint32_t read_page_cycles = 1200;
};

// Simulated stable storage: a named, growable byte array with I/O
// accounting.
class SimFile {
 public:
  SimFile(std::string name, uint32_t size) : name_(std::move(name)), bytes_(size, 0) {}

  const std::string& name() const { return name_; }
  uint32_t size() const { return static_cast<uint32_t>(bytes_.size()); }
  uint8_t* data() { return bytes_.data(); }
  const uint8_t* data() const { return bytes_.data(); }

  uint32_t ReadWord(uint32_t offset) const {
    LVM_CHECK(offset + 4 <= bytes_.size());
    uint32_t value = 0;
    std::memcpy(&value, &bytes_[offset], 4);
    return value;
  }

  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t sync_operations() const { return sync_operations_; }

 private:
  friend class MappedFile;

  std::string name_;
  std::vector<uint8_t> bytes_;
  uint64_t bytes_written_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t sync_operations_ = 0;
};

// A tiny named-file directory.
class FileSystem {
 public:
  SimFile* Create(const std::string& name, uint32_t size) {
    auto [it, inserted] = files_.try_emplace(name, SimFile(name, AlignUp(size, kPageSize)));
    LVM_CHECK_MSG(inserted, "file already exists");
    return &it->second;
  }
  SimFile* Open(const std::string& name) {
    auto it = files_.find(name);
    return it == files_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, SimFile> files_;
};

class MappedFile : public SegmentManager {
 public:
  // Maps `file` into `as`. Pages load from the file on first touch.
  MappedFile(LvmSystem* system, AddressSpace* as, SimFile* file,
             const FileIoParams& params = FileIoParams{});

  VirtAddr base() const { return base_; }
  uint32_t size() const { return file_->size(); }
  Region* region() { return region_; }
  StdSegment* segment() { return segment_; }

  // Switches the mapping to logged mode so MsyncFromLog can work.
  void AttachLogging();
  bool logging() const { return log_ != nullptr; }

  // Conventional msync: every materialized page is written back whole.
  void Msync(Cpu* cpu);

  // LVM msync: write back exactly the logged bytes, then truncate the log.
  // Requires AttachLogging().
  void MsyncFromLog(Cpu* cpu);

  // --- SegmentManager (the user-level pager) ---
  void FillPage(Segment& segment, uint32_t page_index, uint8_t* bytes) override;

 private:
  LvmSystem* system_;
  SimFile* file_;
  FileIoParams params_;
  StdSegment* segment_ = nullptr;
  Region* region_ = nullptr;
  LogSegment* log_ = nullptr;
  VirtAddr base_ = 0;
  // The CPU charged for demand page-ins (the faulting processor).
  Cpu* fault_cpu_ = nullptr;
};

}  // namespace lvm

#endif  // SRC_MFILE_MAPPED_FILE_H_
