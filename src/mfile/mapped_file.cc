#include "src/mfile/mapped_file.h"

#include <cstring>

namespace lvm {

MappedFile::MappedFile(LvmSystem* system, AddressSpace* as, SimFile* file,
                       const FileIoParams& params)
    : system_(system), file_(file), params_(params) {
  segment_ = system->CreateSegment(file->size(), /*flags=*/0, /*manager=*/this);
  region_ = system->CreateRegion(segment_);
  base_ = as->BindRegion(region_);
  fault_cpu_ = &system->cpu(0);
}

void MappedFile::FillPage(Segment& segment, uint32_t page_index, uint8_t* bytes) {
  (void)segment;
  uint32_t offset = page_index * kPageSize;
  LVM_CHECK(offset + kPageSize <= file_->size());
  std::memcpy(bytes, file_->data() + offset, kPageSize);
  file_->bytes_read_ += kPageSize;
  fault_cpu_->AddCycles(params_.read_page_cycles);
}

void MappedFile::AttachLogging() {
  LVM_CHECK(log_ == nullptr);
  log_ = system_->CreateLogSegment(16);
  system_->AttachLog(region_, log_);
}

void MappedFile::Msync(Cpu* cpu) {
  cpu->AddCycles(params_.sync_base_cycles);
  ++file_->sync_operations_;
  for (uint32_t page = 0; page < segment_->page_count(); ++page) {
    if (!segment_->HasFrame(page)) {
      continue;
    }
    // Write the page's effective contents (dirty lines and deferred
    // resolution included) back to the file, whole.
    PhysAddr frame = segment_->FrameAt(page);
    for (uint32_t line = 0; line < kPageSize; line += kLineSize) {
      uint8_t bytes[kLineSize];
      system_->ReadEffectiveLine(frame + line, bytes);
      std::memcpy(file_->data() + page * kPageSize + line, bytes, kLineSize);
    }
    file_->bytes_written_ += kPageSize;
    cpu->AddCycles(static_cast<Cycles>(kPageSize) * params_.write_per_byte_cycles);
  }
  // If logging is attached, the synced state is the new baseline.
  if (log_ != nullptr) {
    system_->TruncateLog(cpu, log_);
  }
}

void MappedFile::MsyncFromLog(Cpu* cpu) {
  LVM_CHECK_MSG(log_ != nullptr, "MsyncFromLog needs AttachLogging()");
  system_->SyncLog(cpu, log_);
  cpu->AddCycles(params_.sync_base_cycles);
  ++file_->sync_operations_;
  LogReader reader(system_->memory(), *log_);
  for (size_t i = 0; i < reader.size(); ++i) {
    LogRecord record = reader.At(i);
    if (record.flags & kRecordFlagOldValue) {
      continue;
    }
    int32_t page_index = segment_->PageIndexOfFrame(record.addr);
    LVM_DCHECK(page_index >= 0);
    uint32_t offset =
        static_cast<uint32_t>(page_index) * kPageSize + PageOffset(record.addr);
    std::memcpy(file_->data() + offset, &record.value, record.size);
    file_->bytes_written_ += record.size;
    cpu->AddCycles(static_cast<Cycles>(record.size) * params_.write_per_byte_cycles +
                   system_->machine().params().log_apply_record_cycles);
  }
  system_->TruncateLog(cpu, log_);
}

}  // namespace lvm
