// Real page-protection machinery on the host Linux kernel.
//
// This is the software-only end of the design space the paper argues about
// (Section 5.1): write-protect a region with mprotect(2), catch the first
// store to each page in a SIGSEGV handler, optionally twin the page, and
// unprotect it. On top of this the repository builds page-granularity
// write logging (WriteProtectLogger), Munin-style word diffs, and Li/Appel
// incremental checkpointing (HostCheckpoint) — all measurable on real
// hardware next to the simulated LVM results.
//
// Signal-handler discipline: everything the handler touches is
// preallocated at registration time (dirty bitmap, twin buffer, registry
// slots), so no allocation happens in signal context.
#ifndef SRC_HOSTLVM_PROTECTED_REGION_H_
#define SRC_HOSTLVM_PROTECTED_REGION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lvm {

class ProtectedRegion {
 public:
  static constexpr size_t kHostPageSize = 4096;

  // Allocates `pages` pages of anonymous memory and registers the region
  // with the global SIGSEGV dispatcher. When `keep_twins` is set, the
  // handler snapshots each page before its first modification.
  ProtectedRegion(size_t pages, bool keep_twins);
  ~ProtectedRegion();

  ProtectedRegion(const ProtectedRegion&) = delete;
  ProtectedRegion& operator=(const ProtectedRegion&) = delete;

  uint8_t* data() { return base_; }
  const uint8_t* data() const { return base_; }
  size_t size_bytes() const { return pages_ * kHostPageSize; }
  size_t pages() const { return pages_; }

  // Write-protects the whole region and clears dirty state. Twins are
  // refreshed lazily at the next fault.
  void Arm();

  // Indices of pages written since the last Arm().
  std::vector<size_t> DirtyPages() const;
  bool IsDirty(size_t page) const { return dirty_[page] != 0; }

  // Pre-modification snapshot of `page` (valid only if dirty and twinning
  // is enabled).
  const uint8_t* Twin(size_t page) const;

  // Copies the twin back over every dirty page (rollback), leaving the
  // region unprotected and clean.
  void RestoreDirtyPagesFromTwins();

  uint64_t faults() const { return faults_; }

 private:
  friend class SegvDispatcher;

  // Handles a fault at `addr` if it falls in this region. Runs in signal
  // context: async-signal-safe only.
  bool HandleFault(void* addr);

  uint8_t* base_ = nullptr;
  size_t pages_ = 0;
  bool keep_twins_ = false;
  bool armed_ = false;
  std::vector<uint8_t> dirty_;
  std::vector<uint8_t> twins_;
  volatile uint64_t faults_ = 0;
};

}  // namespace lvm

#endif  // SRC_HOSTLVM_PROTECTED_REGION_H_
