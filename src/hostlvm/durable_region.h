// Durable transactional memory on the real host (DESIGN.md §15).
//
// DurableTransactionalRegion composes the two halves this layer already
// has — HostTransactionalRegion (mprotect/SIGSEGV transactions with
// word-level redo diffs) and WalArena (the persistent BEGIN/END-framed
// log) — into a region whose commits survive the death of the process:
//
//   auto region = DurableTransactionalRegion::Open("/data/acct", {});
//   region->Begin();
//   region->data<Accounts>()->balance[7] += 100;   // Plain stores.
//   region->Commit();    // Word diff -> WAL append (group-committed).
//   ...crash...
//   auto again = DurableTransactionalRegion::Open("/data/acct", {});
//   // again->data() holds every committed byte; uncommitted stores are gone.
//
// On disk the region is a directory of two files:
//   region.img — the checkpoint image (one byte per region byte);
//   region.wal — the WAL arena holding every commit since the checkpoint.
//
// Open() loads the image, then replays the WAL over it. Checkpoint() folds
// memory into the image (image write, msync, then WAL truncation — in that
// order). A crash at any point is safe: a torn image is always repaired by
// replay, because until Truncate() runs the log still describes, with
// absolute values, every byte by which memory had diverged from the old
// image; and replaying a commit the image already contains is idempotent.
//
// Thread safety: transactions themselves are single-owner (Begin/store/
// Commit run on the owning thread, like HostTransactionalRegion), but the
// durability tail is serialized by mu_ (rank kRankWalRegion): Commit's WAL
// append, Sync, and Checkpoint may be called while a monitor thread forces
// durability or folds the image, and the WAL-append/truncate ordering that
// recovery depends on must not interleave.
#ifndef SRC_HOSTLVM_DURABLE_REGION_H_
#define SRC_HOSTLVM_DURABLE_REGION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>

#include "src/base/lock_order.h"
#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/hostlvm/host_transaction.h"
#include "src/hostlvm/wal_arena.h"
#include "src/mfile/host_mapped_file.h"
#include "src/obs/metrics.h"

namespace lvm {

struct DurableRegionOptions {
  size_t pages = 16;  // Region size when creating; ignored on reopen.
  WalOptions wal;
  // Recovery knobs passed through to WalArena::Replay(). The crash matrix
  // turns verify_checksums off to prove the checksum is load-bearing.
  WalRecoverOptions recover;
};

class DurableTransactionalRegion {
 public:
  // Opens (or creates) the region directory `dir`. On reopen the region
  // size comes from the existing image file and `options.pages` is ignored.
  // Returns nullptr with `*error` set on I/O failure or a corrupt arena.
  static std::unique_ptr<DurableTransactionalRegion> Open(const std::string& dir,
                                                          const DurableRegionOptions& options,
                                                          std::string* error = nullptr);

  ~DurableTransactionalRegion();  // Flushes staged WAL commits.

  DurableTransactionalRegion(const DurableTransactionalRegion&) = delete;
  DurableTransactionalRegion& operator=(const DurableTransactionalRegion&) = delete;

  template <typename T = uint8_t>
  T* data() {
    static_assert(std::is_trivially_copyable_v<T>);
    return region_->data<T>();
  }
  size_t size_bytes() const { return region_->size_bytes(); }

  void Begin() { region_->Begin(); }
  void Abort() { region_->Abort(); }

  // Commits the transaction: the word-level redo diff becomes one WAL
  // commit. Returns the commit's WAL sequence, or 0 for a read-only
  // transaction (nothing to log). If the log is out of space the commit
  // checkpoints first (memory already holds the committed bytes, so the
  // image absorbs them) and then appends to the fresh log.
  uint64_t Commit(uint64_t timestamp_ns = 0);

  // Durability barrier: forces any group-commit-staged WAL entries to disk.
  // Holding mu_ across the flush is the point — a concurrent Checkpoint must
  // not truncate entries a caller is waiting to see durable.
  void Sync() {
    MutexLock lock(mu_);
    LVM_CHECK(wal_->Flush());  // lvm-analyze: allow(lock-blocking)
  }

  // Folds memory into the checkpoint image and truncates the WAL. No
  // transaction may be active.
  void Checkpoint();

  WalArena* wal() { return wal_.get(); }
  HostTransactionalRegion* region() { return region_.get(); }
  const WalRecoveryStats& recovery_stats() const { return recovery_stats_; }
  uint64_t checkpoints() const { return checkpoints_.value(); }

  // Registers the WAL's wal.* metrics plus wal.checkpoints.
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

  // The image/arena paths inside a region directory.
  static std::string ImagePath(const std::string& dir) { return dir + "/region.img"; }
  static std::string WalPath(const std::string& dir) { return dir + "/region.wal"; }

 private:
  DurableTransactionalRegion() = default;

  void CheckpointLocked() LVM_REQUIRES(mu_);

  // Serializes the durability tail: WAL append, flush, image fold, truncate.
  mutable Mutex mu_ LVM_ACQUIRED_AFTER(lockorder::kLevelLogRegistry){
      "DurableTransactionalRegion::mu_", lockorder::kRankWalRegion};
  std::unique_ptr<HostMappedFile> image_;
  std::unique_ptr<WalArena> wal_;
  std::unique_ptr<HostTransactionalRegion> region_;
  WalRecoveryStats recovery_stats_;
  obs::Counter checkpoints_;
};

}  // namespace lvm

#endif  // SRC_HOSTLVM_DURABLE_REGION_H_
