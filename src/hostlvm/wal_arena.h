// Durable write-ahead log arena for the host-native LVM (DESIGN.md §15).
//
// A WalArena is a persistent log on a real mapped file (mfile::HostMappedFile):
// one superblock page followed by fixed-size log blocks chained by explicit
// next-pointers, carrying BEGIN/END-framed commits with per-commit
// timestamps and checksums (wal_layout.h). It turns the hostlvm layer's
// in-memory redo records into something that survives the death of the
// process:
//
//   - Append() stages one commit (a group of absolute-value records);
//   - group commit: staged commits are written and msync'd together once
//     the group window (commits) or byte bound fills — a bounded flush
//     interval — or when Flush() is called explicitly;
//   - Replay() is the recovery path: walk the chain from the superblock's
//     head, validate every frame signature and END checksum, apply each
//     complete commit, and stop at the first torn or missing frame. The
//     superblock's append cursor is a hint only — a commit whose END
//     reached the device replays even if the crash hit before the cursor
//     advanced. Records carry absolute values, so replay is idempotent:
//     applying a commit twice (or over a checkpoint image that already
//     contains it) yields the same bytes.
//
// Crash injection: SetCrashHook() installs a callback invoked at every
// enumerated persist point of the flush path. The crash-matrix test
// (tests/wal_crash_matrix_test.cc) kills a forked child inside these hooks
// and proves recovery is byte-exact from every one of them.
//
// Observability: wal.* counters and histograms register with a
// MetricsRegistry; group flushes, commits and recovery emit flight-recorder
// events; WriteWalBox() dumps the arena's post-mortem state as strict JSON
// (lvm.walbox.v1) — the black box a dying process leaves behind.
//
// Thread safety: none. The arena is owned by one committing thread, like
// the HostTransactionalRegion it serves.
#ifndef SRC_HOSTLVM_WAL_ARENA_H_
#define SRC_HOSTLVM_WAL_ARENA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/hostlvm/wal_layout.h"
#include "src/mfile/host_mapped_file.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/waterfall.h"

namespace lvm {

// The persist steps of one flush, in execution order. The crash matrix
// enumerates all of them.
enum class WalPersistPoint : uint8_t {
  kBeforeBlockWrite,   // Nothing of this commit has touched the file.
  kMidBlockWrite,      // Half the commit's payload bytes are in the file.
  kAfterPayloadWrite,  // BEGIN + records written, END not yet.
  kAfterEndWrite,      // END written; superblock cursor not yet advanced.
  kAfterCommitAdvance, // Superblock cursor advanced and synced.
};
const char* ToString(WalPersistPoint point);

struct WalOptions {
  uint64_t blocks = 256;  // Log blocks; the file is (blocks + 1) pages.
  // Group commit: staged commits flush together once either bound fills.
  uint32_t group_commit_window = 8;
  uint64_t group_commit_bytes = 64 * 1024;
};

struct WalRecoverOptions {
  // The crash matrix proves this flag has teeth: with it off, a commit
  // with a corrupted payload but intact END frame replays garbage.
  bool verify_checksums = true;
};

struct WalRecoveredCommit {
  uint64_t seq = 0;
  uint64_t timestamp_ns = 0;
  std::vector<WalRecord> records;
};

struct WalRecoveryStats {
  uint64_t commits_applied = 0;
  uint64_t records_applied = 0;
  uint64_t last_seq = 0;           // Highest sequence applied (0 if none).
  uint64_t checksum_failures = 0;  // END checksums that did not match.
  bool tail_torn = false;  // Walk ended on a torn/incomplete frame, not clean zeros.
};

class WalArena {
 public:
  using ApplyFn = std::function<void(const WalRecoveredCommit&)>;
  using CrashHook = std::function<void(WalPersistPoint, uint64_t seq)>;

  // Creates a fresh arena file at `path` (truncating any existing file).
  static std::unique_ptr<WalArena> Create(const std::string& path, const WalOptions& options,
                                          std::string* error = nullptr);
  // Maps an existing arena and validates its superblock. The arena is not
  // ready for Append() until Replay() has walked the log and repaired the
  // append cursor.
  static std::unique_ptr<WalArena> Open(const std::string& path, std::string* error = nullptr);
  static std::unique_ptr<WalArena> OpenOrCreate(const std::string& path,
                                                const WalOptions& options,
                                                bool* created = nullptr,
                                                std::string* error = nullptr);

  ~WalArena();  // Flushes staged commits.

  WalArena(const WalArena&) = delete;
  WalArena& operator=(const WalArena&) = delete;

  // Stages one commit and returns its sequence number. Flushes the group
  // when a bound fills. `timestamp_ns` is the caller's commit timestamp
  // (stored in the BEGIN/END frames). Must not be called with `records`
  // empty. Fails (returns 0, nothing staged) only when the arena is out
  // of log space — checkpoint + Truncate() reclaims it. `tokens` are the
  // waterfall provenance tokens riding this commit (see set_waterfall):
  // each is stamped kWalCommit when the commit's group flush persists and
  // completed at kReplay when replay-on-open applies the commit.
  uint64_t Append(const std::vector<WalRecord>& records, uint64_t timestamp_ns = 0,
                  std::vector<uint64_t> tokens = {});

  // Writes every staged commit to the chained blocks, msyncs the touched
  // range, then advances and syncs the superblock cursor. False when the
  // staged bytes do not fit in the remaining chain (nothing is written).
  bool Flush();

  // Recovery: replays complete, valid commits from the superblock head in
  // order, calling `apply` for each with seq > superblock().checkpoint_seq.
  // Repairs the append cursor to the end of the valid stream, making the
  // arena ready for Append(). Safe to call again (idempotent).
  WalRecoveryStats Replay(const ApplyFn& apply, const WalRecoverOptions& options = {});

  // Log truncation after a checkpoint: everything with seq <= checkpoint_seq
  // is now redundant with the caller's checkpoint image, so the chain
  // restarts at block 0 and replay begins after `checkpoint_seq`.
  void Truncate(uint64_t checkpoint_seq);

  // --- crash injection (tests only) ---
  void SetCrashHook(CrashHook hook) { crash_hook_ = std::move(hook); }

  // --- introspection ---
  const WalSuperblock& superblock() const { return superblock_; }
  const std::string& path() const { return file_->path(); }
  uint64_t next_seq() const { return next_seq_; }
  uint64_t pending_commits() const { return staged_.size(); }
  uint64_t blocks_used() const { return cursor_.block + 1; }
  uint64_t block_count() const { return superblock_.block_count; }
  bool recovered() const { return recovered_; }

  // Mutable views of the mapped log bytes, for post-mortem tooling and
  // fault injection. Writing WAL memory through these bypasses the framed
  // append API; the lvm-lint wal-raw-store rule flags any such call
  // outside src/hostlvm (tests are exempt — the crash matrix tears blocks
  // through exactly this).
  uint8_t* raw_block_bytes(uint64_t block);
  uint8_t* raw_superblock_bytes();

  // --- observability ---
  // Registers wal.commits / wal.records / wal.bytes_appended / wal.flushes
  // / wal.syncs / wal.blocks_chained / wal.recovered_commits /
  // wal.recovery_checksum_failures / wal.recovery_torn_tails counters and
  // the wal.commit_records / wal.flush_commits / wal.flush_bytes
  // histograms under `prefix` (default "wal").
  void RegisterMetrics(obs::MetricsRegistry* registry, const std::string& prefix = "wal") const;
  // Routes kWalCommit / kWalGroupFlush / kWalRecovery events to `ring` of
  // `flight` (pass nullptr to detach).
  void SetFlightRecorder(obs::FlightRecorder* flight, int ring = 0);
  // Optional provenance waterfall: tokens passed to Append() are bound to
  // their commit sequence at flush and completed on replay. The tracer
  // must outlive the arena (it usually outlives a close/reopen pair, so a
  // record's waterfall spans both processes' arenas).
  void set_waterfall(obs::WaterfallTracer* waterfall) { waterfall_ = waterfall; }

  // The lvm.walbox.v1 post-mortem dump: superblock state, append cursor,
  // counters, staged-commit count, and the cause. Strict JSON.
  std::string WalBoxJson(const std::string& cause, const std::string& detail = "") const;
  bool WriteWalBox(const std::string& path, const std::string& cause,
                   const std::string& detail = "") const;

  // --- counters (plain members; RegisterMetrics exposes them) ---
  uint64_t commits() const { return commits_.value(); }
  uint64_t bytes_appended() const { return bytes_appended_.value(); }
  uint64_t flushes() const { return flushes_.value(); }

 private:
  struct StagedCommit {
    uint64_t seq = 0;
    uint64_t timestamp_ns = 0;
    std::vector<WalRecord> records;
    // Waterfall tokens riding this commit (empty when tracing is off).
    std::vector<uint64_t> tokens;
  };

  // Stream cursor: a payload byte position inside a block of the chain.
  struct Cursor {
    uint64_t block = 0;
    uint64_t offset = 0;  // Within the block's payload area.
  };

  WalArena(std::unique_ptr<HostMappedFile> file, bool fresh);

  WalBlockHeader* BlockHeader(uint64_t block);
  uint8_t* BlockPayload(uint64_t block);
  // Serialized size of one staged commit.
  static uint64_t CommitBytes(const StagedCommit& commit);
  // Payload bytes still available from `cursor` to the end of the chain.
  uint64_t BytesAvailable(const Cursor& cursor) const;
  // Appends `bytes` to the stream at cursor_, chaining fresh blocks as
  // needed; fires `mid_hook_seq` at the halfway byte if nonzero.
  void StreamWrite(const uint8_t* bytes, uint64_t length, uint64_t mid_hook_seq);
  // Reads `length` stream bytes at `cursor` (advancing it); false if the
  // chain ends first.
  bool StreamRead(Cursor* cursor, uint8_t* out, uint64_t length) const;
  void EnterBlock(uint64_t block, uint64_t first_seq);
  void PersistSuperblock();
  void Hook(WalPersistPoint point, uint64_t seq);
  void SyncTouched();

  std::unique_ptr<HostMappedFile> file_;
  WalSuperblock superblock_;
  Cursor cursor_;          // Append position (valid once recovered_).
  uint64_t next_seq_ = 1;  // Sequence the next Append() hands out.
  bool recovered_ = false;
  std::vector<StagedCommit> staged_;
  uint64_t staged_bytes_ = 0;
  // Touched-range accumulator for the per-flush msync.
  uint64_t touch_lo_ = 0;
  uint64_t touch_hi_ = 0;

  WalOptions options_;
  CrashHook crash_hook_;
  obs::FlightRecorder* flight_ = nullptr;
  int flight_ring_ = 0;
  obs::WaterfallTracer* waterfall_ = nullptr;

  obs::Counter commits_;
  obs::Counter records_;
  obs::Counter bytes_appended_;
  obs::Counter flushes_;
  obs::Counter syncs_;
  obs::Counter blocks_chained_;
  obs::Counter recovered_commits_;
  obs::Counter recovery_checksum_failures_;
  obs::Counter recovery_torn_tails_;
  obs::Histogram commit_records_;
  obs::Histogram flush_commits_;
  obs::Histogram flush_bytes_;
};

}  // namespace lvm

#endif  // SRC_HOSTLVM_WAL_ARENA_H_
