#include "src/hostlvm/wal_arena.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "src/base/check.h"
#include "src/obs/json.h"
#include "src/obs/schema_ids.h"

namespace lvm {

namespace {

// File offset of a log block (block 0 sits after the superblock page).
uint64_t BlockFileOffset(uint64_t block) { return (block + 1) * kWalBlockSize; }

}  // namespace

const char* ToString(WalPersistPoint point) {
  switch (point) {
    case WalPersistPoint::kBeforeBlockWrite:
      return "before_block_write";
    case WalPersistPoint::kMidBlockWrite:
      return "mid_block_write";
    case WalPersistPoint::kAfterPayloadWrite:
      return "after_payload_write";
    case WalPersistPoint::kAfterEndWrite:
      return "after_end_write";
    case WalPersistPoint::kAfterCommitAdvance:
      return "after_commit_advance";
  }
  return "unknown";
}

WalArena::WalArena(std::unique_ptr<HostMappedFile> file, bool fresh) : file_(std::move(file)) {
  if (fresh) {
    recovered_ = true;
  }
}

std::unique_ptr<WalArena> WalArena::Create(const std::string& path, const WalOptions& options,
                                           std::string* error) {
  LVM_CHECK_MSG(options.blocks >= 1, "a WAL arena needs at least one log block");
  const size_t bytes = static_cast<size_t>(options.blocks + 1) * kWalBlockSize;
  std::unique_ptr<HostMappedFile> file = HostMappedFile::Create(path, bytes, error);
  if (file == nullptr) {
    return nullptr;
  }
  auto arena = std::unique_ptr<WalArena>(new WalArena(std::move(file), /*fresh=*/true));
  arena->options_ = options;
  arena->superblock_ = WalSuperblock{};
  arena->superblock_.block_count = options.blocks;
  arena->PersistSuperblock();
  arena->EnterBlock(0, 0);
  arena->SyncTouched();
  return arena;
}

std::unique_ptr<WalArena> WalArena::Open(const std::string& path, std::string* error) {
  std::unique_ptr<HostMappedFile> file = HostMappedFile::Open(path, error);
  if (file == nullptr) {
    return nullptr;
  }
  WalSuperblock sb;
  if (file->size() < sizeof(WalSuperblock)) {
    if (error != nullptr) {
      *error = path + ": too small to hold a WAL superblock";
    }
    return nullptr;
  }
  std::memcpy(&sb, file->data(), sizeof(sb));
  if (sb.magic != kWalMagic || sb.version != kWalVersion || sb.block_size != kWalBlockSize) {
    if (error != nullptr) {
      *error = path + ": not a lvm WAL arena (bad magic/version/block size)";
    }
    return nullptr;
  }
  if (sb.checksum != WalSuperblockChecksum(sb)) {
    if (error != nullptr) {
      *error = path + ": WAL superblock checksum mismatch";
    }
    return nullptr;
  }
  if (file->size() < (sb.block_count + 1) * kWalBlockSize) {
    if (error != nullptr) {
      *error = path + ": WAL arena file shorter than its superblock claims";
    }
    return nullptr;
  }
  auto arena = std::unique_ptr<WalArena>(new WalArena(std::move(file), /*fresh=*/false));
  arena->superblock_ = sb;
  arena->options_.blocks = sb.block_count;
  return arena;
}

std::unique_ptr<WalArena> WalArena::OpenOrCreate(const std::string& path,
                                                 const WalOptions& options, bool* created,
                                                 std::string* error) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (created != nullptr) {
      *created = true;
    }
    return Create(path, options, error);
  }
  if (created != nullptr) {
    *created = false;
  }
  // The file exists: Open validates it and fails loudly on a foreign or
  // corrupt superblock rather than silently truncating someone's data.
  std::unique_ptr<WalArena> arena = Open(path, error);
  if (arena != nullptr) {
    arena->options_.group_commit_window = options.group_commit_window;
    arena->options_.group_commit_bytes = options.group_commit_bytes;
  }
  return arena;
}

WalArena::~WalArena() {
  if (recovered_ && !staged_.empty()) {
    Flush();
  }
}

WalBlockHeader* WalArena::BlockHeader(uint64_t block) {
  LVM_CHECK(block < superblock_.block_count);
  return reinterpret_cast<WalBlockHeader*>(file_->data() + BlockFileOffset(block));
}

uint8_t* WalArena::BlockPayload(uint64_t block) {
  LVM_CHECK(block < superblock_.block_count);
  return file_->data() + BlockFileOffset(block) + sizeof(WalBlockHeader);
}

uint8_t* WalArena::raw_block_bytes(uint64_t block) {
  LVM_CHECK(block < superblock_.block_count);
  return file_->data() + BlockFileOffset(block);
}

uint8_t* WalArena::raw_superblock_bytes() { return file_->data(); }

uint64_t WalArena::CommitBytes(const StagedCommit& commit) {
  return sizeof(WalBeginFrame) + commit.records.size() * sizeof(WalRecord) +
         sizeof(WalEndFrame);
}

uint64_t WalArena::BytesAvailable(const Cursor& cursor) const {
  const uint64_t whole_blocks = superblock_.block_count - cursor.block - 1;
  return (kWalBlockPayload - cursor.offset) + whole_blocks * kWalBlockPayload;
}

uint64_t WalArena::Append(const std::vector<WalRecord>& records, uint64_t timestamp_ns,
                          std::vector<uint64_t> tokens) {
  LVM_CHECK_MSG(recovered_, "WalArena: Replay() must run before Append()");
  LVM_CHECK_MSG(!records.empty(), "WalArena: a commit needs at least one record");
  StagedCommit commit;
  commit.timestamp_ns = timestamp_ns;
  commit.records = records;
  commit.tokens = std::move(tokens);
  const uint64_t bytes = CommitBytes(commit);
  if (staged_bytes_ + bytes > BytesAvailable(cursor_)) {
    return 0;  // Out of log space; checkpoint + Truncate() reclaims it.
  }
  commit.seq = next_seq_++;
  staged_bytes_ += bytes;
  commits_.Increment();
  records_.Add(records.size());
  commit_records_.Record(records.size());
  if (flight_ != nullptr) {
    flight_->Record(flight_ring_, obs::FlightEventKind::kWalCommit, commit.seq, "wal commit",
                    commit.seq, records.size(), bytes);
  }
  const uint64_t seq = commit.seq;
  staged_.push_back(std::move(commit));
  if (staged_.size() >= options_.group_commit_window ||
      staged_bytes_ >= options_.group_commit_bytes) {
    LVM_CHECK(Flush());
  }
  return seq;
}

void WalArena::EnterBlock(uint64_t block, uint64_t first_seq) {
  WalBlockHeader header;
  header.next = kWalNoBlock;
  header.first_seq = first_seq;
  std::memcpy(file_->data() + BlockFileOffset(block), &header, sizeof(header));
  const uint64_t lo = BlockFileOffset(block);
  if (touch_hi_ == 0) {
    touch_lo_ = lo;
  } else if (lo < touch_lo_) {
    touch_lo_ = lo;
  }
  if (lo + sizeof(header) > touch_hi_) {
    touch_hi_ = lo + sizeof(header);
  }
}

void WalArena::StreamWrite(const uint8_t* bytes, uint64_t length, uint64_t mid_hook_seq) {
  const uint64_t half = length / 2;
  uint64_t written = 0;
  bool mid_fired = (mid_hook_seq == 0);
  while (written < length) {
    uint64_t space = kWalBlockPayload - cursor_.offset;
    if (space == 0) {
      const uint64_t next = cursor_.block + 1;
      LVM_CHECK_MSG(next < superblock_.block_count,
                    "WAL chain exhausted mid-write (capacity was pre-checked)");
      // Initialize the fresh block before linking it, so a crash between
      // the two leaves the chain ending cleanly at the old block.
      EnterBlock(next, 0);
      BlockHeader(cursor_.block)->next = next;
      blocks_chained_.Increment();
      cursor_ = Cursor{next, 0};
      space = kWalBlockPayload;
    }
    uint64_t chunk = length - written;
    if (chunk > space) {
      chunk = space;
    }
    // Fire the mid-write hook inside the chunk that crosses the halfway
    // byte: split the copy there so the hook observes a half-written frame.
    if (!mid_fired && written + chunk >= half) {
      const uint64_t first = half - written;
      std::memcpy(BlockPayload(cursor_.block) + cursor_.offset, bytes + written, first);
      mid_fired = true;
      Hook(WalPersistPoint::kMidBlockWrite, mid_hook_seq);
      std::memcpy(BlockPayload(cursor_.block) + cursor_.offset + first, bytes + written + first,
                  chunk - first);
    } else {
      std::memcpy(BlockPayload(cursor_.block) + cursor_.offset, bytes + written, chunk);
    }
    const uint64_t lo =
        BlockFileOffset(cursor_.block) + sizeof(WalBlockHeader) + cursor_.offset;
    if (touch_hi_ == 0) {
      touch_lo_ = lo;
    } else if (lo < touch_lo_) {
      touch_lo_ = lo;
    }
    if (lo + chunk > touch_hi_) {
      touch_hi_ = lo + chunk;
    }
    cursor_.offset += chunk;
    written += chunk;
  }
}

bool WalArena::StreamRead(Cursor* cursor, uint8_t* out, uint64_t length) const {
  uint64_t read = 0;
  Cursor c = *cursor;
  while (read < length) {
    uint64_t space = kWalBlockPayload - c.offset;
    if (space == 0) {
      WalBlockHeader header;
      std::memcpy(&header, file_->data() + BlockFileOffset(c.block), sizeof(header));
      if (header.next == kWalNoBlock || header.next >= superblock_.block_count) {
        return false;
      }
      c = Cursor{header.next, 0};
      space = kWalBlockPayload;
    }
    uint64_t chunk = length - read;
    if (chunk > space) {
      chunk = space;
    }
    std::memcpy(out + read,
                file_->data() + BlockFileOffset(c.block) + sizeof(WalBlockHeader) + c.offset,
                chunk);
    c.offset += chunk;
    read += chunk;
  }
  *cursor = c;
  return true;
}

void WalArena::Hook(WalPersistPoint point, uint64_t seq) {
  if (crash_hook_) {
    crash_hook_(point, seq);
  }
}

void WalArena::SyncTouched() {
  if (touch_hi_ == 0) {
    return;
  }
  LVM_CHECK(file_->Sync(touch_lo_, touch_hi_ - touch_lo_));
  syncs_.Increment();
  touch_lo_ = 0;
  touch_hi_ = 0;
}

void WalArena::PersistSuperblock() {
  superblock_.checksum = WalSuperblockChecksum(superblock_);
  std::memcpy(file_->data(), &superblock_, sizeof(superblock_));
  LVM_CHECK(file_->Sync(0, sizeof(superblock_)));
  syncs_.Increment();
}

bool WalArena::Flush() {
  LVM_CHECK_MSG(recovered_, "WalArena: Replay() must run before Flush()");
  if (staged_.empty()) {
    return true;
  }
  uint64_t total = 0;
  for (const StagedCommit& commit : staged_) {
    total += CommitBytes(commit);
  }
  if (total > BytesAvailable(cursor_)) {
    return false;  // Defensive: Append() pre-checks, so this means misuse.
  }

  const uint64_t first_seq = staged_.front().seq;
  const uint64_t last_seq = staged_.back().seq;
  Hook(WalPersistPoint::kBeforeBlockWrite, first_seq);

  std::vector<uint8_t> payload;
  for (const StagedCommit& commit : staged_) {
    if (BlockHeader(cursor_.block)->first_seq == 0) {
      BlockHeader(cursor_.block)->first_seq = commit.seq;
    }
    // BEGIN + records serialize contiguously; the END checksum covers them.
    WalBeginFrame begin;
    begin.seq = commit.seq;
    begin.record_count = static_cast<uint32_t>(commit.records.size());
    begin.timestamp_ns = commit.timestamp_ns;
    payload.resize(sizeof(begin) + commit.records.size() * sizeof(WalRecord));
    std::memcpy(payload.data(), &begin, sizeof(begin));
    std::memcpy(payload.data() + sizeof(begin), commit.records.data(),
                commit.records.size() * sizeof(WalRecord));
    StreamWrite(payload.data(), payload.size(), /*mid_hook_seq=*/commit.seq);
    Hook(WalPersistPoint::kAfterPayloadWrite, commit.seq);

    WalEndFrame end;
    end.seq = commit.seq;
    end.checksum = WalChecksum(WalChecksumSeed(), payload.data(), payload.size());
    end.timestamp_ns = commit.timestamp_ns;
    StreamWrite(reinterpret_cast<const uint8_t*>(&end), sizeof(end), /*mid_hook_seq=*/0);
    Hook(WalPersistPoint::kAfterEndWrite, commit.seq);
  }
  SyncTouched();

  superblock_.commit_block = cursor_.block;
  superblock_.commit_offset = cursor_.offset;
  superblock_.commit_seq = last_seq;
  PersistSuperblock();
  Hook(WalPersistPoint::kAfterCommitAdvance, last_seq);

  flushes_.Increment();
  bytes_appended_.Add(total);
  flush_commits_.Record(staged_.size());
  flush_bytes_.Record(total);
  if (flight_ != nullptr) {
    flight_->Record(flight_ring_, obs::FlightEventKind::kWalGroupFlush, last_seq,
                    "wal group flush", staged_.size(), total, first_seq);
  }
  if (waterfall_ != nullptr) {
    // The whole group is durable now (END frames synced, cursor advanced):
    // stamp every riding token and bind it to its commit sequence so
    // replay-on-open can find it again.
    for (const StagedCommit& commit : staged_) {
      for (uint64_t token : commit.tokens) {
        waterfall_->BindSeq(token, commit.seq);
        waterfall_->Stamp(token, obs::WaterfallStage::kWalCommit, /*lane=*/0, /*sim_now=*/0,
                          static_cast<uint32_t>(staged_.size()));
      }
    }
  }
  staged_.clear();
  staged_bytes_ = 0;
  return true;
}

WalRecoveryStats WalArena::Replay(const ApplyFn& apply, const WalRecoverOptions& options) {
  WalRecoveryStats stats;
  Cursor cursor{superblock_.head_block, superblock_.head_offset};
  uint64_t expected = superblock_.head_seq;
  // Generous sanity bound: no genuine commit can carry more records than
  // the whole chain holds bytes.
  const uint64_t max_records =
      superblock_.block_count * kWalBlockPayload / sizeof(WalRecord);

  while (true) {
    Cursor probe = cursor;
    WalBeginFrame begin;
    if (!StreamRead(&probe, reinterpret_cast<uint8_t*>(&begin), sizeof(begin))) {
      break;  // Chain exhausted: clean end of the stream.
    }
    if (begin.sig != kWalBeginSig) {
      // Zero fill is the clean tail; anything else is a torn frame.
      stats.tail_torn = begin.sig != 0;
      break;
    }
    if (begin.seq != expected) {
      // A lower sequence is a stale frame from a pre-truncation epoch
      // (normal); anything else is corruption.
      stats.tail_torn = begin.seq >= expected;
      break;
    }
    if (begin.record_count == 0 || begin.record_count > max_records) {
      stats.tail_torn = true;
      break;
    }
    std::vector<WalRecord> records(begin.record_count);
    if (!StreamRead(&probe, reinterpret_cast<uint8_t*>(records.data()),
                    records.size() * sizeof(WalRecord))) {
      stats.tail_torn = true;
      break;
    }
    WalEndFrame end;
    if (!StreamRead(&probe, reinterpret_cast<uint8_t*>(&end), sizeof(end))) {
      stats.tail_torn = true;
      break;
    }
    if (end.sig != kWalEndSig || end.seq != begin.seq) {
      stats.tail_torn = true;  // Missing or half-written END frame.
      break;
    }
    uint64_t checksum = WalChecksum(WalChecksumSeed(), &begin, sizeof(begin));
    checksum = WalChecksum(checksum, records.data(), records.size() * sizeof(WalRecord));
    if (checksum != end.checksum) {
      ++stats.checksum_failures;
      recovery_checksum_failures_.Increment();
      if (options.verify_checksums) {
        stats.tail_torn = true;
        break;
      }
      // Checksum validation disabled: fall through and apply the (possibly
      // corrupt) commit — the crash matrix proves this path produces wrong
      // bytes, i.e. that the checksum is load-bearing.
    }

    cursor = probe;
    if (begin.seq > superblock_.checkpoint_seq && apply) {
      WalRecoveredCommit commit;
      commit.seq = begin.seq;
      commit.timestamp_ns = begin.timestamp_ns;
      commit.records = std::move(records);
      apply(commit);
      ++stats.commits_applied;
      stats.records_applied += commit.records.size();
      recovered_commits_.Increment();
      if (waterfall_ != nullptr) {
        std::vector<uint64_t> tokens;
        waterfall_->TokensForSeq(commit.seq, &tokens);
        for (uint64_t token : tokens) {
          waterfall_->Complete(token, obs::WaterfallStage::kReplay, /*lane=*/0, /*sim_now=*/0,
                               static_cast<uint32_t>(tokens.size()));
        }
      }
    }
    stats.last_seq = begin.seq;
    expected = begin.seq + 1;
  }

  if (stats.tail_torn) {
    recovery_torn_tails_.Increment();
  }
  // Repair the append cursor to the end of the valid stream. The stream
  // beyond it (torn frames, stale epochs) is dead: the next Append()
  // overwrites it, and its first frame will fail the seq check anyway.
  cursor_ = cursor;
  next_seq_ = expected;
  recovered_ = true;
  superblock_.commit_block = cursor_.block;
  superblock_.commit_offset = cursor_.offset;
  superblock_.commit_seq = expected - 1;
  PersistSuperblock();
  if (flight_ != nullptr) {
    flight_->Record(flight_ring_, obs::FlightEventKind::kWalRecovery, stats.last_seq,
                    "wal replay", stats.commits_applied, stats.records_applied,
                    stats.tail_torn ? 1 : 0);
  }
  return stats;
}

void WalArena::Truncate(uint64_t checkpoint_seq) {
  LVM_CHECK_MSG(recovered_, "WalArena: Replay() must run before Truncate()");
  LVM_CHECK_MSG(staged_.empty(), "WalArena: flush staged commits before Truncate()");
  LVM_CHECK_MSG(checkpoint_seq < next_seq_, "cannot checkpoint past the last handed-out seq");
  superblock_.checkpoint_seq = checkpoint_seq;
  superblock_.head_block = 0;
  superblock_.head_offset = 0;
  superblock_.head_seq = next_seq_;
  superblock_.commit_block = 0;
  superblock_.commit_offset = 0;
  superblock_.commit_seq = checkpoint_seq;
  cursor_ = Cursor{0, 0};
  EnterBlock(0, 0);
  // Zero the first frame slot so replay stops cleanly instead of tripping
  // over a stale BEGIN from the previous epoch.
  std::memset(BlockPayload(0), 0, sizeof(WalBeginFrame));
  touch_hi_ = BlockFileOffset(0) + sizeof(WalBlockHeader) + sizeof(WalBeginFrame);
  SyncTouched();
  PersistSuperblock();
}

void WalArena::RegisterMetrics(obs::MetricsRegistry* registry, const std::string& prefix) const {
  registry->RegisterCounter(prefix + ".commits", &commits_);
  registry->RegisterCounter(prefix + ".records", &records_);
  registry->RegisterCounter(prefix + ".bytes_appended", &bytes_appended_);
  registry->RegisterCounter(prefix + ".flushes", &flushes_);
  registry->RegisterCounter(prefix + ".syncs", &syncs_);
  registry->RegisterCounter(prefix + ".blocks_chained", &blocks_chained_);
  registry->RegisterCounter(prefix + ".recovered_commits", &recovered_commits_);
  registry->RegisterCounter(prefix + ".recovery_checksum_failures",
                            &recovery_checksum_failures_);
  registry->RegisterCounter(prefix + ".recovery_torn_tails", &recovery_torn_tails_);
  registry->RegisterHistogram(prefix + ".commit_records", &commit_records_);
  registry->RegisterHistogram(prefix + ".flush_commits", &flush_commits_);
  registry->RegisterHistogram(prefix + ".flush_bytes", &flush_bytes_);
}

void WalArena::SetFlightRecorder(obs::FlightRecorder* flight, int ring) {
  flight_ = flight;
  flight_ring_ = ring;
}

std::string WalArena::WalBoxJson(const std::string& cause, const std::string& detail) const {
  std::string out = "{\"schema\":\"";
  out += obs::kWalBoxSchema;
  out += "\",\"cause\":";
  obs::AppendJsonString(&out, cause);
  out += ",\"detail\":";
  obs::AppendJsonString(&out, detail);
  out += ",\"path\":";
  obs::AppendJsonString(&out, file_->path());
  out += ",\"superblock\":{";
  out += "\"version\":" + obs::JsonNumber(static_cast<uint64_t>(superblock_.version));
  out += ",\"block_count\":" + obs::JsonNumber(superblock_.block_count);
  out += ",\"head_block\":" + obs::JsonNumber(superblock_.head_block);
  out += ",\"head_offset\":" + obs::JsonNumber(superblock_.head_offset);
  out += ",\"head_seq\":" + obs::JsonNumber(superblock_.head_seq);
  out += ",\"checkpoint_seq\":" + obs::JsonNumber(superblock_.checkpoint_seq);
  out += ",\"commit_block\":" + obs::JsonNumber(superblock_.commit_block);
  out += ",\"commit_offset\":" + obs::JsonNumber(superblock_.commit_offset);
  out += ",\"commit_seq\":" + obs::JsonNumber(superblock_.commit_seq);
  out += "},\"cursor\":{\"block\":" + obs::JsonNumber(cursor_.block);
  out += ",\"offset\":" + obs::JsonNumber(cursor_.offset);
  out += "},\"next_seq\":" + obs::JsonNumber(next_seq_);
  out += ",\"pending_commits\":" + obs::JsonNumber(static_cast<uint64_t>(staged_.size()));
  out += ",\"recovered\":";
  out += recovered_ ? "true" : "false";
  out += ",\"counters\":{";
  out += "\"commits\":" + obs::JsonNumber(commits_.value());
  out += ",\"records\":" + obs::JsonNumber(records_.value());
  out += ",\"bytes_appended\":" + obs::JsonNumber(bytes_appended_.value());
  out += ",\"flushes\":" + obs::JsonNumber(flushes_.value());
  out += ",\"syncs\":" + obs::JsonNumber(syncs_.value());
  out += ",\"blocks_chained\":" + obs::JsonNumber(blocks_chained_.value());
  out += ",\"recovered_commits\":" + obs::JsonNumber(recovered_commits_.value());
  out += ",\"recovery_checksum_failures\":" +
         obs::JsonNumber(recovery_checksum_failures_.value());
  out += ",\"recovery_torn_tails\":" + obs::JsonNumber(recovery_torn_tails_.value());
  out += "}}";
  return out;
}

bool WalArena::WriteWalBox(const std::string& path, const std::string& cause,
                           const std::string& detail) const {
  const std::string json = WalBoxJson(cause, detail);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

}  // namespace lvm
