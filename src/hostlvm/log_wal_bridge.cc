#include "src/hostlvm/log_wal_bridge.h"

#include <vector>

#include "src/base/check.h"

namespace lvm {

LogWalBridgeStats BridgeLogToWal(const LogReader& reader, size_t first_record,
                                 size_t record_count, uint32_t records_per_commit,
                                 uint64_t timestamp_ns, WalArena* arena,
                                 obs::WaterfallTracer* waterfall) {
  LVM_CHECK(arena != nullptr);
  LVM_CHECK(records_per_commit > 0);
  LogWalBridgeStats stats;
  size_t end = first_record + record_count;
  LVM_CHECK_MSG(end <= reader.size(), "bridge range beyond the log's append offset");

  std::vector<WalRecord> batch;
  std::vector<uint64_t> tokens;
  batch.reserve(records_per_commit);
  auto flush_batch = [&] {
    if (batch.empty()) {
      return;
    }
    uint64_t seq = arena->Append(batch, timestamp_ns, std::move(tokens));
    if (seq == 0) {
      stats.rejected += batch.size();
    } else {
      ++stats.commits;
      stats.records += batch.size();
    }
    batch.clear();
    tokens = {};
  };

  for (size_t i = first_record; i < end; ++i) {
    LogRecord record = reader.At(i);
    WalRecord wal;
    wal.offset = record.addr;
    wal.value = record.value;
    wal.size = record.size;
    batch.push_back(wal);
    if (waterfall != nullptr && (record.flags & kRecordFlagSampled) != 0) {
      uint64_t token = waterfall->MatchToken(record.addr, record.value, record.timestamp);
      if (token != 0) {
        tokens.push_back(token);
        ++stats.tokens;
      }
    }
    if (batch.size() >= records_per_commit) {
      flush_batch();
    }
  }
  flush_batch();
  return stats;
}

}  // namespace lvm
