// On-disk layout of the hostlvm write-ahead log (DESIGN.md §15).
//
// The shape follows the DudeTM-style persistent log (tinystm-p's
// nv_log_block / nv_log_begin / nv_log_end): a superblock page followed by
// fixed-size log blocks chained by explicit next-pointers, carrying a
// byte stream of BEGIN/END-framed commits. Every struct here is written
// verbatim into the mapped file, so all fields are fixed-width,
// little-endian-as-stored, and trivially copyable; versioned by
// kWalVersion in the superblock.
//
// Stream grammar (offsets within the chained block payload area):
//
//   commit   := begin record* end
//   begin    := WalBeginFrame   (sig kWalBeginSig, seq, record_count, ts)
//   record   := WalRecord       (region byte offset, value, size)
//   end      := WalEndFrame     (sig kWalEndSig, seq, checksum, ts)
//
// The END checksum covers the BEGIN frame and every record, so a torn
// block anywhere inside the commit — including a missing or half-written
// END — invalidates exactly that commit and nothing before it. Replay is
// idempotent: records carry absolute new values, so applying a commit
// twice produces the same bytes as applying it once.
#ifndef SRC_HOSTLVM_WAL_LAYOUT_H_
#define SRC_HOSTLVM_WAL_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace lvm {

inline constexpr uint64_t kWalMagic = 0x31304c41574d564cull;  // "LVMWAL01"
inline constexpr uint32_t kWalVersion = 1;

// Frame signatures, after the exemplar's BEGIN_SIG / END_SIG: values no
// record offset or datum can collide with by accident, and distinct from
// the zero fill of an unused block tail.
inline constexpr uint64_t kWalBeginSig = 0xffffffffffffffffull;
inline constexpr uint64_t kWalEndSig = 0xfffffffffffffffeull;

// Fixed log-block size; the superblock occupies one block-sized header
// page in front of block 0.
inline constexpr uint32_t kWalBlockSize = 4096;

// Marks a block whose next-pointer has not been chained yet.
inline constexpr uint64_t kWalNoBlock = ~uint64_t{0};

// First page of the arena file. `head_*` is the replay start (advanced by
// checkpoint truncation); `commit_*` is a durable append cursor *hint* —
// recovery trusts frames and checksums, not the hint, so a crash after an
// END reached the device but before this page was rewritten still replays
// that commit (persist point kAfterEndWrite in the crash matrix).
struct WalSuperblock {
  uint64_t magic = kWalMagic;
  uint32_t version = kWalVersion;
  uint32_t block_size = kWalBlockSize;
  uint64_t block_count = 0;
  uint64_t head_block = 0;      // Block index replay starts at.
  uint64_t head_offset = 0;     // Payload byte offset within head_block.
  uint64_t head_seq = 1;        // First commit sequence expected there.
  uint64_t checkpoint_seq = 0;  // Last commit folded into the data image.
  uint64_t commit_block = 0;    // Append cursor hint (not trusted).
  uint64_t commit_offset = 0;
  uint64_t commit_seq = 0;      // Last sequence known flushed (hint).
  uint64_t checksum = 0;        // WalChecksum over the fields above.
};
static_assert(std::is_trivially_copyable_v<WalSuperblock>);
static_assert(sizeof(WalSuperblock) <= kWalBlockSize);

// Every log block leads with its chain pointer. `first_seq` names the
// first commit whose BEGIN frame lies in this block (0 if none does), as
// a post-mortem aid; replay follows the stream, not this field.
struct WalBlockHeader {
  uint64_t next = kWalNoBlock;  // Next block in the chain.
  uint64_t first_seq = 0;
};
static_assert(std::is_trivially_copyable_v<WalBlockHeader>);

inline constexpr uint32_t kWalBlockPayload =
    kWalBlockSize - static_cast<uint32_t>(sizeof(WalBlockHeader));

struct WalBeginFrame {
  uint64_t sig = kWalBeginSig;
  uint64_t seq = 0;
  uint32_t record_count = 0;
  uint32_t reserved = 0;
  uint64_t timestamp_ns = 0;  // Caller-supplied commit timestamp.
};
static_assert(sizeof(WalBeginFrame) == 32);

// One logged write: an absolute new value for `size` bytes (1..8) at a
// byte offset inside the durable region.
struct WalRecord {
  uint64_t offset = 0;
  uint64_t value = 0;
  uint32_t size = 4;
  uint32_t reserved = 0;
};
static_assert(sizeof(WalRecord) == 24);

struct WalEndFrame {
  uint64_t sig = kWalEndSig;
  uint64_t seq = 0;
  uint64_t checksum = 0;  // WalChecksum over the BEGIN frame + records.
  uint64_t timestamp_ns = 0;
};
static_assert(sizeof(WalEndFrame) == 32);

// FNV-1a as a running hash: dependency-free, deterministic across builds,
// and plenty to catch torn sectors and scribbles (this is corruption
// *detection* for crash recovery, not an adversarial MAC). Feed
// WalChecksumSeed() into the first call and chain the result, so hashing
// a commit's BEGIN frame then its records equals hashing the concatenated
// bytes in one pass.
inline constexpr uint64_t WalChecksumSeed() { return 0xcbf29ce484222325ull; }

inline uint64_t WalChecksum(uint64_t hash, const void* bytes, size_t length) {
  const auto* p = static_cast<const uint8_t*>(bytes);
  for (size_t i = 0; i < length; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

inline uint64_t WalSuperblockChecksum(const WalSuperblock& sb) {
  return WalChecksum(WalChecksumSeed() ^ kWalMagic, &sb, offsetof(WalSuperblock, checksum));
}

}  // namespace lvm

#endif  // SRC_HOSTLVM_WAL_LAYOUT_H_
