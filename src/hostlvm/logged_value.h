// Instrumented write-barrier logging: the "modify the application code"
// alternative of Section 5.3, done with C++ operator overloading.
//
// A Logged<T> behaves like a T, but every assignment appends a record
// {address, old value, new value} to its HostLog. This is what LVM
// replaces: it needs no hardware, but every logged field must be declared
// as such in the source (thousands of annotations in a non-trivial
// program), it taxes every store, and a missed annotation is silent.
#ifndef SRC_HOSTLVM_LOGGED_VALUE_H_
#define SRC_HOSTLVM_LOGGED_VALUE_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace lvm {

struct HostLogRecord {
  uintptr_t addr = 0;
  uint64_t old_value = 0;
  uint64_t new_value = 0;
  uint32_t size = 0;
};

class HostLog {
 public:
  void Append(const void* addr, uint64_t old_value, uint64_t new_value, uint32_t size) {
    records_.push_back(
        HostLogRecord{reinterpret_cast<uintptr_t>(addr), old_value, new_value, size});
  }

  const std::vector<HostLogRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  void Truncate() { records_.clear(); }

  // Undoes the logged writes (newest first) by storing old values back.
  void UndoAll() {
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
      std::memcpy(reinterpret_cast<void*>(it->addr), &it->old_value, it->size);
    }
    records_.clear();
  }

 private:
  std::vector<HostLogRecord> records_;
};

template <typename T>
class Logged {
  static_assert(sizeof(T) <= sizeof(uint64_t), "Logged<T> supports word-sized types");

 public:
  Logged(HostLog* log, T initial = T{}) : log_(log), value_(initial) {}

  Logged& operator=(T value) {
    log_->Append(&value_, static_cast<uint64_t>(value_), static_cast<uint64_t>(value),
                 sizeof(T));
    value_ = value;
    return *this;
  }
  Logged& operator+=(T delta) { return *this = static_cast<T>(value_ + delta); }
  Logged& operator-=(T delta) { return *this = static_cast<T>(value_ - delta); }

  operator T() const { return value_; }  // NOLINT(google-explicit-constructor)
  T value() const { return value_; }

 private:
  HostLog* log_;
  T value_;
};

}  // namespace lvm

#endif  // SRC_HOSTLVM_LOGGED_VALUE_H_
