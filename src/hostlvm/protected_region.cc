#include "src/hostlvm/protected_region.h"

#include <signal.h>
#include <string.h>
#include <sys/mman.h>

#include <cstdio>
#include <cstdlib>

#include "src/base/check.h"

namespace lvm {

// Global SIGSEGV dispatcher: routes faults to the owning ProtectedRegion.
// Registration happens on the normal path (constructor/destructor); the
// handler only reads the fixed-size table.
class SegvDispatcher {
 public:
  static constexpr int kMaxRegions = 64;

  static SegvDispatcher& Instance() {
    static SegvDispatcher instance;
    return instance;
  }

  void Register(ProtectedRegion* region) {
    EnsureHandlerInstalled();
    for (auto& slot : regions_) {
      if (slot == nullptr) {
        slot = region;
        return;
      }
    }
    LVM_CHECK_MSG(false, "too many protected regions");
  }

  void Unregister(ProtectedRegion* region) {
    for (auto& slot : regions_) {
      if (slot == region) {
        slot = nullptr;
      }
    }
  }

 private:
  SegvDispatcher() {
    for (auto& slot : regions_) {
      slot = nullptr;
    }
  }

  void EnsureHandlerInstalled() {
    if (installed_) {
      return;
    }
    struct sigaction action;
    memset(&action, 0, sizeof(action));
    action.sa_sigaction = &SegvDispatcher::HandleSignal;
    action.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&action.sa_mask);
    int rc = sigaction(SIGSEGV, &action, &previous_);
    LVM_CHECK(rc == 0);
    installed_ = true;
  }

  static void HandleSignal(int signo, siginfo_t* info, void* context) {
    SegvDispatcher& dispatcher = Instance();
    for (ProtectedRegion* region : dispatcher.regions_) {
      if (region != nullptr && region->HandleFault(info->si_addr)) {
        return;
      }
    }
    // Not ours: restore the previous disposition and re-raise so genuine
    // crashes still crash.
    sigaction(SIGSEGV, &dispatcher.previous_, nullptr);
    (void)signo;
    (void)context;
  }

  ProtectedRegion* regions_[kMaxRegions] = {};
  struct sigaction previous_ = {};
  bool installed_ = false;
};

ProtectedRegion::ProtectedRegion(size_t pages, bool keep_twins)
    : pages_(pages), keep_twins_(keep_twins), dirty_(pages, 0) {
  LVM_CHECK(pages > 0);
  void* mem = mmap(nullptr, pages * kHostPageSize, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  LVM_CHECK_MSG(mem != MAP_FAILED, "mmap failed");
  base_ = static_cast<uint8_t*>(mem);
  if (keep_twins_) {
    twins_.resize(pages * kHostPageSize);
  }
  SegvDispatcher::Instance().Register(this);
}

ProtectedRegion::~ProtectedRegion() {
  SegvDispatcher::Instance().Unregister(this);
  munmap(base_, pages_ * kHostPageSize);
}

void ProtectedRegion::Arm() {
  int rc = mprotect(base_, pages_ * kHostPageSize, PROT_READ);
  LVM_CHECK(rc == 0);
  std::fill(dirty_.begin(), dirty_.end(), 0);
  armed_ = true;
}

bool ProtectedRegion::HandleFault(void* addr) {
  auto* byte_addr = static_cast<uint8_t*>(addr);
  if (!armed_ || byte_addr < base_ || byte_addr >= base_ + pages_ * kHostPageSize) {
    return false;
  }
  size_t page = static_cast<size_t>(byte_addr - base_) / kHostPageSize;
  if (keep_twins_) {
    memcpy(&twins_[page * kHostPageSize], base_ + page * kHostPageSize, kHostPageSize);
  }
  dirty_[page] = 1;
  faults_ = faults_ + 1;
  mprotect(base_ + page * kHostPageSize, kHostPageSize, PROT_READ | PROT_WRITE);
  return true;
}

std::vector<size_t> ProtectedRegion::DirtyPages() const {
  std::vector<size_t> pages;
  for (size_t i = 0; i < pages_; ++i) {
    if (dirty_[i] != 0) {
      pages.push_back(i);
    }
  }
  return pages;
}

const uint8_t* ProtectedRegion::Twin(size_t page) const {
  LVM_CHECK(keep_twins_ && page < pages_);
  return &twins_[page * kHostPageSize];
}

void ProtectedRegion::RestoreDirtyPagesFromTwins() {
  LVM_CHECK(keep_twins_);
  // Make everything writable first, then copy the twins back.
  int rc = mprotect(base_, pages_ * kHostPageSize, PROT_READ | PROT_WRITE);
  LVM_CHECK(rc == 0);
  armed_ = false;
  for (size_t page = 0; page < pages_; ++page) {
    if (dirty_[page] != 0) {
      memcpy(base_ + page * kHostPageSize, &twins_[page * kHostPageSize], kHostPageSize);
      dirty_[page] = 0;
    }
  }
}

}  // namespace lvm
