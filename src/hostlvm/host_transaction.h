// Transactional memory region on the real host: composes the
// mprotect/SIGSEGV machinery into begin/commit/abort semantics over
// ordinary heap-like memory — the closest a stock Unix process gets to the
// paper's RLVM without hardware logging.
//
//   HostTransactionalRegion region(64);
//   auto* data = region.data<MyStruct>();
//   region.Begin();
//   data->field = 42;        // Plain stores; faults track dirty pages.
//   region.Abort();          // Page-granularity rollback, no undo code.
//
// Commit additionally reports the word-level updates of the transaction
// (by diffing dirty pages against their twins), usable as a redo log.
#ifndef SRC_HOSTLVM_HOST_TRANSACTION_H_
#define SRC_HOSTLVM_HOST_TRANSACTION_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "src/base/check.h"
#include "src/hostlvm/protected_region.h"
#include "src/hostlvm/write_protect_logger.h"

namespace lvm {

class HostTransactionalRegion {
 public:
  explicit HostTransactionalRegion(size_t pages) : region_(pages, /*keep_twins=*/true) {}

  template <typename T = uint8_t>
  T* data() {
    static_assert(std::is_trivially_copyable_v<T>);
    return reinterpret_cast<T*>(region_.data());
  }
  size_t size_bytes() const { return region_.size_bytes(); }

  void Begin() {
    LVM_CHECK_MSG(!active_, "transactions do not nest");
    region_.Arm();
    active_ = true;
  }

  // Commits: returns the word-level redo records of the transaction.
  std::vector<HostWordUpdate> Commit() {
    LVM_CHECK(active_);
    std::vector<HostWordUpdate> updates;
    for (size_t page : region_.DirtyPages()) {
      const uint8_t* current = region_.data() + page * ProtectedRegion::kHostPageSize;
      const uint8_t* twin = region_.Twin(page);
      for (size_t offset = 0; offset < ProtectedRegion::kHostPageSize; offset += 4) {
        uint32_t now_value = 0;
        uint32_t old_value = 0;
        std::memcpy(&now_value, current + offset, 4);
        std::memcpy(&old_value, twin + offset, 4);
        if (now_value != old_value) {
          updates.push_back(
              HostWordUpdate{page * ProtectedRegion::kHostPageSize + offset, now_value});
        }
      }
    }
    active_ = false;
    ++commits_;
    return updates;
  }

  void Abort() {
    LVM_CHECK(active_);
    region_.RestoreDirtyPagesFromTwins();
    active_ = false;
    ++aborts_;
  }

  uint64_t faults() const { return region_.faults(); }
  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }

 private:
  ProtectedRegion region_;
  bool active_ = false;
  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
};

}  // namespace lvm

#endif  // SRC_HOSTLVM_HOST_TRANSACTION_H_
