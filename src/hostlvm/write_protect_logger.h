// Page-protection write logging on the real host (the practical cousin of
// the paper's LVM for machines without logging hardware).
//
// WriteProtectLogger tracks which pages of a region were written between
// synchronization points (page-granularity logging) and, with twinning
// enabled, produces Munin-style word-level update lists by diffing each
// dirty page against its pre-modification twin — the exact mechanism
// Section 2.6 describes for write-shared objects.
#ifndef SRC_HOSTLVM_WRITE_PROTECT_LOGGER_H_
#define SRC_HOSTLVM_WRITE_PROTECT_LOGGER_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/hostlvm/protected_region.h"

namespace lvm {

struct HostWordUpdate {
  uint64_t offset = 0;  // Byte offset within the region.
  uint32_t value = 0;   // New 32-bit value.
};

class WriteProtectLogger {
 public:
  // `word_level`: keep twins and report word diffs; otherwise only dirty
  // pages are reported.
  WriteProtectLogger(size_t pages, bool word_level)
      : region_(pages, /*keep_twins=*/word_level), word_level_(word_level) {
    region_.Arm();
  }

  uint8_t* data() { return region_.data(); }
  size_t size_bytes() const { return region_.size_bytes(); }

  // Synchronization point: returns the pages written since the last call
  // and re-arms protection.
  std::vector<size_t> CollectDirtyPages() {
    std::vector<size_t> pages = region_.DirtyPages();
    region_.Arm();
    return pages;
  }

  // Synchronization point for word-level mode: diffs every dirty page
  // against its twin, returns the changed words, re-arms.
  std::vector<HostWordUpdate> CollectWordUpdates() {
    std::vector<HostWordUpdate> updates;
    for (size_t page : region_.DirtyPages()) {
      const uint8_t* current = region_.data() + page * ProtectedRegion::kHostPageSize;
      const uint8_t* twin = region_.Twin(page);
      for (size_t offset = 0; offset < ProtectedRegion::kHostPageSize; offset += 4) {
        uint32_t now_value = 0;
        uint32_t old_value = 0;
        std::memcpy(&now_value, current + offset, 4);
        std::memcpy(&old_value, twin + offset, 4);
        if (now_value != old_value) {
          updates.push_back(HostWordUpdate{
              page * ProtectedRegion::kHostPageSize + offset, now_value});
        }
      }
    }
    region_.Arm();
    return updates;
  }

  uint64_t faults() const { return region_.faults(); }
  bool word_level() const { return word_level_; }

 private:
  ProtectedRegion region_;
  bool word_level_;
};

}  // namespace lvm

#endif  // SRC_HOSTLVM_WRITE_PROTECT_LOGGER_H_
