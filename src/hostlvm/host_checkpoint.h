// Li/Appel-style incremental checkpointing on the real host (the Section
// 5.1 comparator, working for real): after Checkpoint(), the first write
// to each page traps and saves a copy; Restore() rolls every modified page
// back to the checkpoint.
#ifndef SRC_HOSTLVM_HOST_CHECKPOINT_H_
#define SRC_HOSTLVM_HOST_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>

#include "src/hostlvm/protected_region.h"

namespace lvm {

class HostCheckpoint {
 public:
  explicit HostCheckpoint(size_t pages) : region_(pages, /*keep_twins=*/true) {
    region_.Arm();
  }

  uint8_t* data() { return region_.data(); }
  size_t size_bytes() const { return region_.size_bytes(); }

  // Commits the current state as the new checkpoint.
  void Checkpoint() { region_.Arm(); }

  // Rolls back to the last checkpoint and starts a fresh interval.
  void Restore() {
    region_.RestoreDirtyPagesFromTwins();
    region_.Arm();
  }

  size_t dirty_pages() const { return region_.DirtyPages().size(); }
  uint64_t faults() const { return region_.faults(); }

 private:
  ProtectedRegion region_;
};

}  // namespace lvm

#endif  // SRC_HOSTLVM_HOST_CHECKPOINT_H_
