// Bridges a simulated log segment into a durable WAL arena.
//
// The simulator's LogSegment holds 16-byte LogRecords in simulated memory;
// the WalArena persists WalRecords on a real mapped file. BridgeLogToWal
// reads a record range through a LogReader, converts each record
// (record.addr becomes the WAL offset), groups them into commits of
// `records_per_commit`, and appends them to the arena — the durable half
// of a logged region's life.
//
// Provenance: records flagged kRecordFlagSampled have an in-flight
// waterfall token recovered by identity (WaterfallTracer::MatchToken) and
// passed to WalArena::Append, so a sampled write's waterfall continues
// through kWalCommit at group flush and closes at kReplay on the next
// replay-on-open. Pass a null tracer to bridge without tracing.
//
// Built as its own target (lvm_walbridge): it is the only code that needs
// both lvm_core (LogReader) and lvm_hostlvm (WalArena).
#ifndef SRC_HOSTLVM_LOG_WAL_BRIDGE_H_
#define SRC_HOSTLVM_LOG_WAL_BRIDGE_H_

#include <cstddef>
#include <cstdint>

#include "src/hostlvm/wal_arena.h"
#include "src/lvm/log_reader.h"
#include "src/obs/waterfall.h"

namespace lvm {

struct LogWalBridgeStats {
  uint64_t commits = 0;  // WAL commits appended.
  uint64_t records = 0;  // Log records bridged.
  uint64_t tokens = 0;   // Waterfall tokens recovered and attached.
  // Records that could not be staged (arena out of log space).
  uint64_t rejected = 0;
};

// Bridges records [first_record, first_record + record_count) of `reader`
// into `arena` as commits of at most `records_per_commit` records each,
// stamped with `timestamp_ns`. The caller must have synchronized with the
// end of the log (LvmSystem::SyncLog) first.
LogWalBridgeStats BridgeLogToWal(const LogReader& reader, size_t first_record,
                                 size_t record_count, uint32_t records_per_commit,
                                 uint64_t timestamp_ns, WalArena* arena,
                                 obs::WaterfallTracer* waterfall);

}  // namespace lvm

#endif  // SRC_HOSTLVM_LOG_WAL_BRIDGE_H_
