#include "src/hostlvm/durable_region.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>

#include "src/base/check.h"

namespace lvm {

std::unique_ptr<DurableTransactionalRegion> DurableTransactionalRegion::Open(
    const std::string& dir, const DurableRegionOptions& options, std::string* error) {
  LVM_CHECK_MSG(options.pages >= 1, "a durable region needs at least one page");
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    if (error != nullptr) {
      *error = "mkdir " + dir + ": " + std::strerror(errno);
    }
    return nullptr;
  }

  auto region = std::unique_ptr<DurableTransactionalRegion>(new DurableTransactionalRegion());
  bool image_created = false;
  region->image_ = HostMappedFile::OpenOrCreate(
      ImagePath(dir), options.pages * ProtectedRegion::kHostPageSize, &image_created, error);
  if (region->image_ == nullptr) {
    return nullptr;
  }
  const size_t image_bytes = region->image_->size();
  if (image_bytes % ProtectedRegion::kHostPageSize != 0 || image_bytes == 0) {
    if (error != nullptr) {
      *error = ImagePath(dir) + ": image size is not a whole number of pages";
    }
    return nullptr;
  }

  region->wal_ = WalArena::OpenOrCreate(WalPath(dir), options.wal, nullptr, error);
  if (region->wal_ == nullptr) {
    return nullptr;
  }

  region->region_ =
      std::make_unique<HostTransactionalRegion>(image_bytes / ProtectedRegion::kHostPageSize);
  std::memcpy(region->region_->data(), region->image_->data(), image_bytes);

  // Replay every commit past the checkpoint over the image bytes. Records
  // carry absolute values, so commits the image already absorbed (a crash
  // between the image sync and the WAL truncation) reapply harmlessly.
  uint8_t* base = region->region_->data();
  region->recovery_stats_ = region->wal_->Replay(
      [base, image_bytes](const WalRecoveredCommit& commit) {
        for (const WalRecord& record : commit.records) {
          LVM_CHECK_MSG(record.size >= 1 && record.size <= sizeof(record.value),
                        "WAL record size out of range");
          LVM_CHECK_MSG(record.offset + record.size <= image_bytes,
                        "WAL record points outside the region");
          std::memcpy(base + record.offset, &record.value, record.size);
        }
      },
      options.recover);
  return region;
}

DurableTransactionalRegion::~DurableTransactionalRegion() = default;

uint64_t DurableTransactionalRegion::Commit(uint64_t timestamp_ns) {
  // Resolve the transaction (mprotect dance, owning thread only) before
  // taking mu_ — only the durability tail below needs serializing.
  const std::vector<HostWordUpdate> updates = region_->Commit();
  if (updates.empty()) {
    return 0;  // Read-only transaction: nothing to make durable.
  }
  std::vector<WalRecord> records;
  records.reserve(updates.size());
  for (const HostWordUpdate& update : updates) {
    WalRecord record;
    record.offset = update.offset;
    record.value = update.value;
    record.size = 4;
    records.push_back(record);
  }
  MutexLock lock(mu_);
  // Append may group-commit-flush (and so block on fdatasync) under mu_:
  // durability under the lock is the contract, not an accident.
  uint64_t seq = wal_->Append(records, timestamp_ns);  // lvm-analyze: allow(lock-blocking)
  if (seq == 0) {
    // Out of log space. Memory already holds the committed bytes, so a
    // checkpoint absorbs them into the image and empties the log; the
    // append then lands in a fresh chain. (Replaying it over the image is
    // idempotent even though the image already contains these bytes.)
    CheckpointLocked();  // lvm-analyze: allow(lock-blocking)
    seq = wal_->Append(records, timestamp_ns);  // lvm-analyze: allow(lock-blocking)
    LVM_CHECK_MSG(seq != 0, "one commit larger than the whole WAL arena");
  }
  return seq;
}

void DurableTransactionalRegion::Checkpoint() {
  MutexLock lock(mu_);
  // The whole flush/fold/truncate sequence blocks under mu_ by design.
  CheckpointLocked();  // lvm-analyze: allow(lock-blocking)
}

void DurableTransactionalRegion::CheckpointLocked() {
  // Order is the crash-safety argument (see the header comment):
  //  1. flush the WAL — every commit memory contains is now replayable;
  //  2. write + sync the image — may tear, replay repairs it;
  //  3. truncate the WAL — only after the image is durable.
  // The flush and image sync block under mu_ by design: the checkpoint's
  // flush/fold/truncate sequence must be atomic against Commit and Sync.
  LVM_CHECK(wal_->Flush());  // lvm-analyze: allow(lock-blocking)
  std::memcpy(image_->data(), region_->data(), image_->size());
  LVM_CHECK(image_->SyncAll());  // lvm-analyze: allow(lock-blocking)
  wal_->Truncate(wal_->next_seq() - 1);
  checkpoints_.Increment();
}

void DurableTransactionalRegion::RegisterMetrics(obs::MetricsRegistry* registry) const {
  wal_->RegisterMetrics(registry);
  registry->RegisterCounter("wal.checkpoints", &checkpoints_);
}

}  // namespace lvm
