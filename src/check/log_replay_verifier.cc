#include "src/check/log_replay_verifier.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>

#include "src/base/check.h"
#include "src/lvm/log_reader.h"

namespace lvm {

std::vector<uint8_t> LogReplayVerifier::EffectivePage(PhysAddr frame) {
  std::vector<uint8_t> bytes(kPageSize);
  for (uint32_t line = 0; line < kPageSize; line += kLineSize) {
    system_->ReadEffectiveLine(frame + line, &bytes[line]);
  }
  return bytes;
}

void LogReplayVerifier::Snapshot(Cpu* cpu, Segment* segment, LogSegment* log) {
  LVM_CHECK(segment != nullptr && log != nullptr);
  segment_ = segment;
  log_ = log;
  system_->SyncLog(cpu, log);
  snapshot_records_ = log->append_offset / kLogRecordSize;
  shadow_.clear();
  for (uint32_t page = 0; page < segment->page_count(); ++page) {
    if (segment->HasFrame(page)) {
      shadow_[page] = EffectivePage(segment->FrameAt(page));
    }
  }
}

std::vector<ReplayMismatch> LogReplayVerifier::Verify(Cpu* cpu, size_t max_mismatches,
                                                      const Region* region) {
  LVM_CHECK_MSG(segment_ != nullptr, "Verify without a Snapshot");
  system_->SyncLog(cpu, log_);
  LogReader reader(system_->memory(), *log_);
  LVM_CHECK_MSG(reader.size() >= snapshot_records_,
                "log was truncated across the replay window");

  // Replay the appended records over the shadow.
  Shadow replayed = shadow_;
  obs::WaterfallTracer* waterfall = system_->waterfall();
  for (size_t i = snapshot_records_; i < reader.size(); ++i) {
    LogRecord record = reader.At(i);
    if (waterfall != nullptr && (record.flags & kRecordFlagSampled) != 0) {
      // A sampled record reached replay: close its waterfall.
      uint64_t token = waterfall->MatchToken(record.addr, record.value, record.timestamp);
      if (token != 0) {
        waterfall->Complete(token, obs::WaterfallStage::kReplay, cpu != nullptr ? cpu->id() : 0,
                            cpu != nullptr ? cpu->now() : 0,
                            static_cast<uint32_t>(reader.size() - i));
      }
    }
    int32_t page = segment_->PageIndexOfFrame(PageBase(record.addr));
    if (page < 0 && region != nullptr && region->Contains(record.addr)) {
      // Virtually-addressed record (reverse translation / on-chip logger).
      page = static_cast<int32_t>(region->PageIndexOf(record.addr));
    }
    if (page < 0) {
      continue;  // Another segment's record (shared log) — not ours to check.
    }
    auto [it, inserted] = replayed.try_emplace(static_cast<uint32_t>(page));
    if (inserted) {
      it->second.assign(kPageSize, 0);  // Frame was born zero-filled.
    }
    uint32_t offset = PageOffset(record.addr);
    uint32_t len = record.size;
    LVM_CHECK_MSG(offset + len <= kPageSize, "record write crosses its page");
    std::memcpy(&it->second[offset], &record.value, len);
  }

  // Diff the replayed image against the segment's current contents.
  std::vector<ReplayMismatch> mismatches;
  for (uint32_t page = 0; page < segment_->page_count(); ++page) {
    if (!segment_->HasFrame(page)) {
      continue;  // Never materialized: no frame, no writes, nothing to diff.
    }
    std::vector<uint8_t> actual = EffectivePage(segment_->FrameAt(page));
    auto it = replayed.find(page);
    const uint8_t* expect =
        it != replayed.end() ? it->second.data() : nullptr;  // null: all zero
    for (uint32_t offset = 0; offset < kPageSize; ++offset) {
      uint8_t want = expect != nullptr ? expect[offset] : 0;
      if (actual[offset] != want) {
        mismatches.push_back(ReplayMismatch{page, offset, want, actual[offset]});
        if (mismatches.size() >= max_mismatches) {
          return mismatches;
        }
      }
    }
  }
  return mismatches;
}

std::vector<ReplayMismatch> LogReplayVerifier::CrossCheckTail(
    const std::vector<LogRecord>& tail_records,
    const std::vector<std::pair<PhysAddr, std::vector<uint8_t>>>& memory,
    size_t max_mismatches) {
  // Last-wins byte image of what the tail says memory should hold. An
  // ordered map keeps the mismatch report deterministic.
  std::map<PhysAddr, uint8_t> replayed;
  for (const LogRecord& record : tail_records) {
    if ((record.flags & kRecordFlagOldValue) != 0) {
      continue;  // Old-value records describe the pre-write datum.
    }
    uint32_t len = std::min<uint32_t>(record.size, sizeof(record.value));
    for (uint32_t i = 0; i < len; ++i) {
      replayed[record.addr + i] = static_cast<uint8_t>(record.value >> (8 * i));
    }
  }
  std::vector<ReplayMismatch> mismatches;
  for (const auto& [addr, want] : replayed) {
    for (const auto& [base, bytes] : memory) {
      if (addr < base || addr - base >= bytes.size()) {
        continue;
      }
      uint8_t actual = bytes[addr - base];
      if (actual != want) {
        mismatches.push_back(
            ReplayMismatch{addr >> kPageShift, PageOffset(addr), want, actual});
        if (mismatches.size() >= max_mismatches) {
          return mismatches;
        }
      }
      break;
    }
  }
  return mismatches;
}

std::vector<ReplayMismatch> LogReplayVerifier::CrossCheckImage(
    const std::vector<LogRecord>& tail_records, PhysAddr base, const uint8_t* bytes,
    size_t length, size_t max_mismatches) {
  std::vector<std::pair<PhysAddr, std::vector<uint8_t>>> memory;
  memory.emplace_back(base, std::vector<uint8_t>(bytes, bytes + length));
  return CrossCheckTail(tail_records, memory, max_mismatches);
}

std::string LogReplayVerifier::Describe(const std::vector<ReplayMismatch>& mismatches) {
  std::ostringstream out;
  for (const ReplayMismatch& m : mismatches) {
    out << "page " << m.page_index << " +0x" << std::hex << m.offset_in_page
        << ": log replays 0x" << static_cast<int>(m.replayed) << ", memory holds 0x"
        << static_cast<int>(m.actual) << std::dec << "\n";
  }
  return out.str();
}

}  // namespace lvm
