#include "src/check/invariant_checker.h"

#include <sstream>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/obs/flight_recorder.h"

namespace lvm {

namespace {

std::string Hex(uint64_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

}  // namespace

const char* ToString(InvariantChecker::Violation::Kind kind) {
  using Kind = InvariantChecker::Violation::Kind;
  switch (kind) {
    case Kind::kMissingRecord:
      return "missing-record";
    case Kind::kUnmatchedRetire:
      return "unmatched-retire";
    case Kind::kRetireOrderMismatch:
      return "retire-order-mismatch";
    case Kind::kAddressMismatch:
      return "address-mismatch";
    case Kind::kValueMismatch:
      return "value-mismatch";
    case Kind::kSizeMismatch:
      return "size-mismatch";
    case Kind::kTimestampMismatch:
      return "timestamp-mismatch";
    case Kind::kTimestampRegression:
      return "timestamp-regression";
    case Kind::kTailDiscontinuity:
      return "tail-discontinuity";
    case Kind::kTailNotAdvanced:
      return "tail-not-advanced";
    case Kind::kRecordStraddlesPage:
      return "record-straddles-page";
    case Kind::kTailOutOfSegment:
      return "tail-out-of-segment";
    case Kind::kOverloadMissed:
      return "overload-missed";
    case Kind::kFifoNotDrained:
      return "fifo-not-drained";
    case Kind::kPteInconsistent:
      return "pte-inconsistent";
    case Kind::kMappingTableMismatch:
      return "mapping-table-mismatch";
    case Kind::kStaleDeferredCopyLine:
      return "stale-deferred-copy-line";
    case Kind::kUnorderedLoggedWrites:
      return "unordered-logged-writes";
    case Kind::kProfilerCycleLeak:
      return "profiler-cycle-leak";
  }
  return "unknown";
}

InvariantChecker::InvariantChecker(LvmSystem* system)
    : system_(system), logger_(system->bus_logger()) {
  LVM_CHECK_MSG(logger_ != nullptr,
                "InvariantChecker cross-checks the bus logger; configure "
                "LoggerKind::kBusLogger");
  // Snoop ahead of the logger: its overload drain retires entries
  // synchronously inside its own OnBusWrite, so the checker must already
  // hold the write's ground truth by then.
  system_->machine().bus().AddSnooperFront(this);
  logger_->set_observer(this);
  logger_->log_table().set_tail_listener(this);
}

InvariantChecker::~InvariantChecker() {
  logger_->log_table().set_tail_listener(nullptr);
  logger_->set_observer(nullptr);
  system_->machine().bus().RemoveSnooper(this);
}

void InvariantChecker::Add(Violation::Kind kind, std::string message) {
  violations_.push_back(Violation{kind, std::move(message)});
  obs::FlightRecorder& flight = system_->flight();
  flight.Record(flight.kernel_ring(), obs::FlightEventKind::kInvariantViolation,
                system_->machine().cpu(0).now(), ToString(kind),
                static_cast<uint64_t>(kind), violations_.size(), 0);
  if (!blackbox_path_.empty() && !blackbox_written_) {
    // Dump on the *first* violation: the flight rings still hold the events
    // leading up to it. Mark written first so a CHECK inside the dumper
    // cannot re-enter.
    blackbox_written_ = true;
    std::vector<std::pair<std::string, std::string>> entries;
    entries.reserve(violations_.size());
    for (const Violation& violation : violations_) {
      entries.emplace_back(ToString(violation.kind), violation.message);
    }
    system_->DumpBlackBox(blackbox_path_, "invariant_violation", violations_.back().message,
                          entries);
  }
}

bool InvariantChecker::Has(Violation::Kind kind) const {
  for (const Violation& violation : violations_) {
    if (violation.kind == kind) {
      return true;
    }
  }
  return false;
}

std::string InvariantChecker::Report() const {
  std::ostringstream out;
  for (const Violation& violation : violations_) {
    out << "[" << ToString(violation.kind) << "] " << violation.message << "\n";
  }
  return out.str();
}

void InvariantChecker::OnBusWrite(PhysAddr paddr, uint32_t value, uint8_t size, bool logged,
                                  Cycles time, int cpu_id) {
  if (!logged) {
    return;
  }
  // Pre-push occupancy: any time occupancy reaches the threshold the logger
  // must have drained the FIFOs before the next write can arrive.
  const MachineParams& params = system_->machine().params();
  size_t occupancy = logger_->fifo_occupancy();
  if (occupancy >= params.logger_fifo_threshold) {
    Add(Violation::Kind::kOverloadMissed,
        "FIFO occupancy " + std::to_string(occupancy) + " reached threshold " +
            std::to_string(params.logger_fifo_threshold) + " without an overload drain");
  }
  ++logged_writes_seen_;
  pending_.push_back(PendingWrite{paddr, value, size, static_cast<uint8_t>(cpu_id), time});
}

void InvariantChecker::OnWriteRetired(const RetiredWrite& retired) {
  if (pending_.empty()) {
    Add(Violation::Kind::kUnmatchedRetire,
        "logger retired a write at paddr " + Hex(retired.write_paddr) +
            " but every snooped logged write is accounted for");
    return;
  }
  PendingWrite expect = pending_.front();
  pending_.pop_front();

  // The FIFO preserves bus order, so retirements must replay the snoop
  // stream exactly.
  if (retired.write_paddr != expect.paddr || retired.value != expect.value ||
      retired.size != expect.size) {
    Add(Violation::Kind::kRetireOrderMismatch,
        "retired write (paddr " + Hex(retired.write_paddr) + ", value " + Hex(retired.value) +
            ", size " + std::to_string(retired.size) + ") does not match bus order (paddr " +
            Hex(expect.paddr) + ", value " + Hex(expect.value) + ", size " +
            std::to_string(expect.size) + ")");
    return;
  }

  switch (retired.kind) {
    case RetiredWrite::Kind::kDropped:
      // Kernel-sanctioned drop (page no longer logged / log exhausted with
      // no absorb target): one write, zero records — still balanced.
      ++drops_seen_;
      return;
    case RetiredWrite::Kind::kDirectMapped:
      ++records_checked_;
      if (PageOffset(retired.stored_at) != PageOffset(expect.paddr)) {
        Add(Violation::Kind::kAddressMismatch,
            "direct-mapped datum stored at offset " + Hex(PageOffset(retired.stored_at)) +
                " of its mirror frame, expected offset " + Hex(PageOffset(expect.paddr)));
      }
      CheckSegmentBounds(retired);
      return;
    case RetiredWrite::Kind::kIndexed:
      ++records_checked_;
      CheckIndexedRetire(retired);
      return;
    case RetiredWrite::Kind::kRecord:
      ++records_checked_;
      CheckRecordRetire(retired, expect);
      return;
  }
}

void InvariantChecker::CheckRecordRetire(const RetiredWrite& retired,
                                         const PendingWrite& expect) {
  const MachineParams& params = system_->machine().params();
  const LogRecord& record = retired.record;

  // Offsets agree whether the record carries the physical address or the
  // reverse-translated virtual one (both map the same page).
  if (PageOffset(record.addr) != PageOffset(expect.paddr)) {
    Add(Violation::Kind::kAddressMismatch,
        "record addr " + Hex(record.addr) + " has page offset " +
            Hex(PageOffset(record.addr)) + ", snooped write was at offset " +
            Hex(PageOffset(expect.paddr)));
  }
  if (record.value != expect.value) {
    Add(Violation::Kind::kValueMismatch,
        "record value " + Hex(record.value) + " != snooped value " + Hex(expect.value) +
            " for write at " + Hex(expect.paddr));
  }
  if (record.size != expect.size) {
    Add(Violation::Kind::kSizeMismatch,
        "record size " + std::to_string(record.size) + " != snooped size " +
            std::to_string(expect.size) + " for write at " + Hex(expect.paddr));
  }
  uint32_t expected_ts = static_cast<uint32_t>(expect.time / params.timestamp_divider);
  if (record.timestamp != expected_ts) {
    Add(Violation::Kind::kTimestampMismatch,
        "record timestamp " + std::to_string(record.timestamp) + " != bus grant tick " +
            std::to_string(expected_ts));
  }
  LogState& state = logs_[retired.log_index];
  if (state.ts_known && record.timestamp < state.last_timestamp) {
    Add(Violation::Kind::kTimestampRegression,
        "log " + std::to_string(retired.log_index) + " timestamp went backwards: " +
            std::to_string(record.timestamp) + " after " +
            std::to_string(state.last_timestamp));
  }
  state.ts_known = true;
  state.last_timestamp = record.timestamp;

  if (retired.stored_at != retired.tail_before) {
    Add(Violation::Kind::kTailDiscontinuity,
        "record stored at " + Hex(retired.stored_at) + " but the tail was " +
            Hex(retired.tail_before));
  }
  if (PageNumber(retired.stored_at) != PageNumber(retired.stored_at + kLogRecordSize - 1)) {
    Add(Violation::Kind::kRecordStraddlesPage,
        "record at " + Hex(retired.stored_at) + " straddles a page boundary");
  }
  CheckTailContinuity(retired, kLogRecordSize);
  CheckSegmentBounds(retired);
}

void InvariantChecker::CheckIndexedRetire(const RetiredWrite& retired) {
  if (retired.stored_at != retired.tail_before) {
    Add(Violation::Kind::kTailDiscontinuity,
        "indexed datum stored at " + Hex(retired.stored_at) + " but the tail was " +
            Hex(retired.tail_before));
  }
  CheckTailContinuity(retired, retired.size);
  CheckSegmentBounds(retired);
}

void InvariantChecker::CheckTailContinuity(const RetiredWrite& retired, uint32_t stored_bytes) {
  if (retired.tail_after == retired.tail_before) {
    Add(Violation::Kind::kTailNotAdvanced,
        "log " + std::to_string(retired.log_index) + " tail stuck at " +
            Hex(retired.tail_before) + " across an emission");
  } else if (retired.tail_after != retired.tail_before + stored_bytes) {
    Add(Violation::Kind::kTailDiscontinuity,
        "log " + std::to_string(retired.log_index) + " tail advanced " +
            std::to_string(retired.tail_after - retired.tail_before) + " bytes for a " +
            std::to_string(stored_bytes) + "-byte emission");
  }
  LogState& state = logs_[retired.log_index];
  if (state.tail_known && retired.tail_before != state.expected_tail) {
    Add(Violation::Kind::kTailDiscontinuity,
        "log " + std::to_string(retired.log_index) + " tail jumped to " +
            Hex(retired.tail_before) + " (expected " + Hex(state.expected_tail) +
            ") without a kernel tail load");
  }
  // A tail that crosses its page boundary is invalidated; the kernel's next
  // SetTail re-establishes the expectation.
  state.expected_tail = retired.tail_after;
  state.tail_known = PageOffset(retired.tail_after) != 0;
}

void InvariantChecker::CheckSegmentBounds(const RetiredWrite& retired) {
  PhysAddr frame = PageBase(retired.stored_at);
  if (frame == PageBase(system_->absorb_frame())) {
    return;  // Overflow records legitimately land in the absorb page.
  }
  LogSegment* log = system_->FindLogByIndex(retired.log_index);
  if (log == nullptr) {
    Add(Violation::Kind::kTailOutOfSegment,
        "emission for log " + std::to_string(retired.log_index) +
            " which is not registered with the kernel");
    return;
  }
  if (log->PageIndexOfFrame(frame) < 0) {
    Add(Violation::Kind::kTailOutOfSegment,
        "log " + std::to_string(retired.log_index) + " emission at " +
            Hex(retired.stored_at) + " lies outside its log segment");
  }
}

void InvariantChecker::OnOverloadDrain(Cycles interrupt_time, Cycles drain_complete) {
  ++overloads_seen_;
  if (drain_complete < interrupt_time) {
    Add(Violation::Kind::kFifoNotDrained,
        "overload drain completed at " + std::to_string(drain_complete) +
            ", before the interrupt at " + std::to_string(interrupt_time));
  }
  if (logger_->fifo_occupancy() != 0) {
    Add(Violation::Kind::kFifoNotDrained,
        "overload drain left " + std::to_string(logger_->fifo_occupancy()) +
            " entries in the FIFO");
  }
}

void InvariantChecker::OnTailSet(uint32_t log_index, PhysAddr tail) {
  LogState& state = logs_[log_index];
  state.tail_known = true;
  state.expected_tail = tail;
}

void InvariantChecker::CheckDrained() {
  if (!pending_.empty()) {
    const PendingWrite& first = pending_.front();
    Add(Violation::Kind::kMissingRecord,
        std::to_string(pending_.size()) + " logged write(s) never produced a record; first: "
            "paddr " + Hex(first.paddr) + ", value " + Hex(first.value));
  }
  if (logger_->fifo_occupancy() != 0) {
    Add(Violation::Kind::kFifoNotDrained,
        "FIFO still holds " + std::to_string(logger_->fifo_occupancy()) +
            " entries after synchronization");
  }
}

void InvariantChecker::CheckLoggedPte(const Region& region, VirtAddr va,
                                      const AddressSpace::Pte& pte) {
  // Section 3.2: a logged page runs write-through so every write reaches
  // the bus where the logger snoops it.
  if (!pte.write_through) {
    Add(Violation::Kind::kPteInconsistent,
        "logged page at va " + Hex(va) + " is not mapped write-through");
  }
  const PageMappingTable::Entry* mapping =
      logger_->page_mapping_table().Lookup(pte.frame);
  if (mapping == nullptr) {
    // Displaced by a direct-mapped conflict: legal, reloaded on the next
    // logging fault.
    return;
  }
  uint32_t expected_index = region.log_segment()->log_index;
  if (mapping->log_index != expected_index) {
    Add(Violation::Kind::kMappingTableMismatch,
        "page mapping for frame " + Hex(pte.frame) + " points at log " +
            std::to_string(mapping->log_index) + ", region's log is " +
            std::to_string(expected_index));
  }
  if (mapping->per_cpu != region.per_cpu_logging()) {
    Add(Violation::Kind::kMappingTableMismatch,
        "page mapping for frame " + Hex(pte.frame) +
            " disagrees with the region about per-CPU logging");
  }
}

void InvariantChecker::CheckVmState() {
  for (AddressSpace* as : system_->AddressSpaces()) {
    for (Region* region : as->regions()) {
      bool expect_logged = region->logging_enabled() && region->log_segment() != nullptr;
      for (uint32_t offset = 0; offset < region->size(); offset += kPageSize) {
        VirtAddr va = region->base() + offset;
        const AddressSpace::Pte* pte = as->FindPte(va);
        if (pte == nullptr) {
          continue;
        }
        if (pte->logged != expect_logged) {
          Add(Violation::Kind::kPteInconsistent,
              "page at va " + Hex(va) + (pte->logged ? " is" : " is not") +
                  " marked logged but its region " + (expect_logged ? "is" : "is not") +
                  " logging");
          continue;
        }
        if (pte->logged) {
          CheckLoggedPte(*region, va, *pte);
        } else if (pte->write_through) {
          Add(Violation::Kind::kPteInconsistent,
              "unlogged page at va " + Hex(va) + " is mapped write-through");
        }
      }
    }
  }
}

void InvariantChecker::CheckDeferredCopyReset(AddressSpace* as, VirtAddr start, VirtAddr end) {
  for (VirtAddr va = PageBase(start); va < end; va += kPageSize) {
    const AddressSpace::Pte* pte = as->FindPte(va);
    if (pte == nullptr || !system_->deferred_copy().IsMapped(pte->frame)) {
      continue;
    }
    if (system_->machine().l2().PageDirty(pte->frame)) {
      Add(Violation::Kind::kStaleDeferredCopyLine,
          "deferred-copy destination frame " + Hex(pte->frame) +
              " retains a dirty second-level line after reset");
    }
    uint32_t written_back = system_->deferred_copy().WrittenBackLines(pte->frame);
    if (written_back != 0) {
      Add(Violation::Kind::kStaleDeferredCopyLine,
          "deferred-copy destination frame " + Hex(pte->frame) + " retains " +
              std::to_string(written_back) + " written-back line source pointer(s) after reset");
    }
  }
}

void InvariantChecker::CheckRaceFree(const race::RaceDetector& detector) {
  for (const race::RaceReport& report : detector.Reports()) {
    if (report.kind != race::RaceKind::kWriteWrite || !report.logged) {
      continue;
    }
    Add(Violation::Kind::kUnorderedLoggedWrites,
        "log records for paddr " + Hex(report.paddr) + " from cpu " +
            std::to_string(report.cpu_a) + " (clock " + std::to_string(report.clock_a) +
            ") and cpu " + std::to_string(report.cpu_b) + " (clock " +
            std::to_string(report.clock_b) +
            ") are unordered by happens-before; replay order is undefined (" +
            std::to_string(report.count) + " occurrence(s))");
  }
}

void InvariantChecker::CheckProfilerConservation() {
  obs::Profiler* profiler = system_->profiler();
  if (profiler == nullptr) {
    return;
  }
  for (int i = 0; i < system_->machine().num_cpus(); ++i) {
    Cycles attributed = profiler->LaneAttributed(i);
    Cycles baseline = profiler->lane_baseline(i);
    Cycles clock = system_->machine().cpu(i).now();
    Cycles expected = clock - baseline;
    if (attributed != expected) {
      Add(Violation::Kind::kProfilerCycleLeak,
          "cpu" + std::to_string(i) + " attributed " + std::to_string(attributed) +
              " cycles but its clock advanced " + std::to_string(expected) +
              " (baseline " + std::to_string(baseline) + ", now " + std::to_string(clock) +
              "); " + std::to_string(profiler->dropped_charges()) +
              " charge(s) dropped to pool exhaustion");
    }
  }
}

}  // namespace lvm
