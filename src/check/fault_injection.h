// Scripted fault injection for the logger's record-emission path.
//
// ScriptedFaultInjector plugs into HardwareLogger::set_fault_injector and
// misbehaves on demand: drop, duplicate, or store-without-tail-advance for
// the nth emission of a chosen log, or an arbitrary record mutation (value,
// size, timestamp corruption). Each seeded fault models broken logging
// hardware — the logger's own accounting still believes the emission
// succeeded — and exists to prove the InvariantChecker / LogReplayVerifier
// catch the violation (tests/checker_test.cc).
#ifndef SRC_CHECK_FAULT_INJECTION_H_
#define SRC_CHECK_FAULT_INJECTION_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/logger/hardware_logger.h"
#include "src/logger/log_record.h"

namespace lvm {

class ScriptedFaultInjector : public LogFaultInjector {
 public:
  // Arms `action` for the `nth` (0-based) record emitted on `log_index`.
  void Arm(uint32_t log_index, uint64_t nth, Action action) {
    faults_[log_index].push_back(Fault{nth, action, nullptr, false});
  }

  // Arms a record mutation (corruption) for the `nth` emission on
  // `log_index`; the record is stored and reported mutated.
  void ArmCorruption(uint32_t log_index, uint64_t nth,
                     std::function<void(LogRecord*)> mutate) {
    faults_[log_index].push_back(Fault{nth, Action::kNone, std::move(mutate), false});
  }

  // Emissions seen so far on `log_index`.
  uint64_t emissions(uint32_t log_index) const {
    auto it = counts_.find(log_index);
    return it == counts_.end() ? 0 : it->second;
  }

  // Whether every armed fault has fired.
  bool AllFired() const {
    for (const auto& [index, faults] : faults_) {
      for (const Fault& fault : faults) {
        if (!fault.fired) {
          return false;
        }
      }
    }
    return true;
  }

  // --- logger::LogFaultInjector ---
  Action OnEmit(uint32_t log_index, LogRecord* record) override {
    uint64_t nth = counts_[log_index]++;
    auto it = faults_.find(log_index);
    if (it == faults_.end()) {
      return Action::kNone;
    }
    Action action = Action::kNone;
    for (Fault& fault : it->second) {
      if (fault.nth != nth || fault.fired) {
        continue;
      }
      fault.fired = true;
      if (fault.mutate) {
        fault.mutate(record);
      }
      action = fault.action;
    }
    return action;
  }

 private:
  struct Fault {
    uint64_t nth = 0;
    Action action = Action::kNone;
    std::function<void(LogRecord*)> mutate;
    bool fired = false;
  };

  std::unordered_map<uint32_t, std::vector<Fault>> faults_;
  std::unordered_map<uint32_t, uint64_t> counts_;
};

}  // namespace lvm

#endif  // SRC_CHECK_FAULT_INJECTION_H_
