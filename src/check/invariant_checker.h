// Always-on invariant checking for the logged virtual memory system.
//
// The InvariantChecker is a BusSnooper registered on the Bus *ahead of* the
// hardware logger: it records the ground truth of every logged bus write
// before the logger can consume it, then cross-checks the logger's
// retirement stream (reported through LoggerObserver) record by record:
//
//   - every logged bus write retires as exactly one record (or an explicit
//     kernel-sanctioned drop), in bus order, with matching address offset,
//     value, size and timestamp (Section 3.1's one-record-per-write rule);
//   - the hardware log tail advances monotonically by exactly the bytes
//     stored, stays inside the log segment (or the default absorb page),
//     never straddles a page boundary, and only jumps when the kernel
//     reloads it (LogTable::SetTail);
//   - FIFO occupancy never reaches the overload threshold without the
//     overload drain firing, and a drain leaves the FIFOs empty
//     (Section 3.1.3);
//   - logged pages are mapped write-through with consistent logger tables
//     (Section 3.2), checked on demand by CheckVmState();
//   - resetDeferredCopy() leaves no stale dirty lines or written-back
//     source pointers (Section 3.3), checked by CheckDeferredCopyReset().
//
// Violations accumulate rather than abort, so tests can assert that a
// seeded fault is caught; Report() renders them for humans. The checker
// supports the bus logger (LoggerKind::kBusLogger) only — the on-chip
// logger has no bus-visible write stream to check against.
#ifndef SRC_CHECK_INVARIANT_CHECKER_H_
#define SRC_CHECK_INVARIANT_CHECKER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/types.h"
#include "src/logger/hardware_logger.h"
#include "src/logger/tables.h"
#include "src/lvm/lvm_system.h"
#include "src/sim/interfaces.h"

namespace lvm {

class InvariantChecker : public BusSnooper, public LoggerObserver, public LogTailListener {
 public:
  struct Violation {
    enum class Kind : uint8_t {
      // One logged bus write must yield exactly one record.
      kMissingRecord,    // A logged write was never retired by the logger.
      kUnmatchedRetire,  // The logger retired more writes than the bus saw.
      kRetireOrderMismatch,  // Retired write does not match bus (FIFO) order.
      // Record contents versus the snooped ground truth.
      kAddressMismatch,
      kValueMismatch,
      kSizeMismatch,
      kTimestampMismatch,
      kTimestampRegression,
      // Log tail discipline.
      kTailDiscontinuity,    // Tail moved without a kernel SetTail.
      kTailNotAdvanced,      // Emission did not advance the tail.
      kRecordStraddlesPage,  // A record crosses a page boundary.
      kTailOutOfSegment,     // Stored outside the log segment / absorb page.
      // FIFO / overload discipline.
      kOverloadMissed,   // Occupancy at/above threshold without a drain.
      kFifoNotDrained,   // FIFO not empty after an overload drain / sync.
      // VM state (CheckVmState / CheckDeferredCopyReset).
      kPteInconsistent,        // logged/write-through PTE flags wrong.
      kMappingTableMismatch,   // Logger page mapping points at wrong log.
      kStaleDeferredCopyLine,  // Reset left a dirty line or source pointer.
      // Race cross-check (CheckRaceFree): two log records for the same
      // address whose source CPUs are unordered by happens-before — replay
      // and rollback order for that address is undefined.
      kUnorderedLoggedWrites,
      // Profiler conservation (CheckProfilerConservation): a CPU lane's
      // attributed cycles do not equal the cycles its clock advanced —
      // some Bump/AdvanceTo site is missing its profiler charge.
      kProfilerCycleLeak,
    };
    Kind kind;
    std::string message;
  };

  // Attaches to `system`'s bus logger: registers on the bus ahead of the
  // logger, and as the logger's observer and tail listener. The system must
  // outlive the checker; only one checker may be attached at a time.
  explicit InvariantChecker(LvmSystem* system);
  ~InvariantChecker() override;

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  // --- sim::BusSnooper ---
  void OnBusWrite(PhysAddr paddr, uint32_t value, uint8_t size, bool logged, Cycles time,
                  int cpu_id) override;

  // --- logger::LoggerObserver ---
  void OnWriteRetired(const RetiredWrite& retired) override;
  void OnOverloadDrain(Cycles interrupt_time, Cycles drain_complete) override;

  // --- logger::LogTailListener ---
  void OnTailSet(uint32_t log_index, PhysAddr tail) override;

  // End-of-run check: every snooped logged write has been retired and the
  // FIFO is empty. Call after LvmSystem::SyncLog / HardwareLogger::SyncDrain.
  void CheckDrained();

  // Walks every address space: logged PTE flags must match the owning
  // region's logging state, logged pages must be write-through, and a
  // present page-mapping-table entry must point at the region's log.
  void CheckVmState();

  // After ResetDeferredCopy(as, start, end): no deferred-copy destination
  // page in [start, end) may retain a dirty second-level line or a
  // written-back (stale) line source pointer.
  void CheckDeferredCopyReset(AddressSpace* as, VirtAddr start, VirtAddr end);

  // Cross-check against the src/race happens-before detector: every
  // logged write-write race it found is a pair of log records for the
  // same address whose source CPUs are unordered — the log no longer
  // determines replay order for that address (kUnorderedLoggedWrites).
  // The detector does the happens-before math (vector clocks over the
  // engine's sync edges and GuestSyncEvent annotations); this check turns
  // its verdict into a log-soundness violation.
  void CheckRaceFree(const race::RaceDetector& detector);

  // Conservation cross-check for the cycle-attribution profiler: for every
  // CPU lane, the cycles attributed to cost centers must equal the cycles
  // the CPU clock advanced since the profiler's baseline. Attribution is
  // charged at the same funnel that moves the clocks (Cpu::Bump /
  // Cpu::AdvanceTo), so any mismatch means a charge site was bypassed
  // (kProfilerCycleLeak). No-op when the system has no profiler enabled.
  void CheckProfilerConservation();

  // Arms black-box capture: the first violation added after this call makes
  // the attached system dump `lvm.blackbox.v1` JSON to `path` (carrying the
  // full violation list collected so far). Later violations only accumulate;
  // pass "" to disarm. Every violation, armed or not, is also recorded in
  // the system's flight recorder (kernel ring, kInvariantViolation).
  void ArmBlackBox(std::string path) {
    blackbox_path_ = std::move(path);
    blackbox_written_ = false;
  }

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  bool Has(Violation::Kind kind) const;
  // Human-readable summary of every violation (empty string when ok).
  std::string Report() const;

  // --- counters ---
  uint64_t logged_writes_seen() const { return logged_writes_seen_; }
  uint64_t records_checked() const { return records_checked_; }
  uint64_t drops_seen() const { return drops_seen_; }
  uint64_t overloads_seen() const { return overloads_seen_; }

 private:
  // Ground truth for one snooped logged write, pending retirement.
  struct PendingWrite {
    PhysAddr paddr = 0;
    uint32_t value = 0;
    uint8_t size = 0;
    uint8_t cpu_id = 0;
    Cycles time = 0;
  };

  // Per-log tail / timestamp tracking.
  struct LogState {
    bool tail_known = false;
    PhysAddr expected_tail = 0;
    bool ts_known = false;
    uint32_t last_timestamp = 0;
  };

  void Add(Violation::Kind kind, std::string message);
  void CheckRecordRetire(const RetiredWrite& retired, const PendingWrite& expect);
  void CheckIndexedRetire(const RetiredWrite& retired);
  void CheckTailContinuity(const RetiredWrite& retired, uint32_t stored_bytes);
  void CheckSegmentBounds(const RetiredWrite& retired);
  void CheckLoggedPte(const Region& region, VirtAddr va, const AddressSpace::Pte& pte);

  LvmSystem* system_;
  HardwareLogger* logger_;
  std::deque<PendingWrite> pending_;
  std::string blackbox_path_;
  bool blackbox_written_ = false;
  std::unordered_map<uint32_t, LogState> logs_;
  std::vector<Violation> violations_;

  uint64_t logged_writes_seen_ = 0;
  uint64_t records_checked_ = 0;
  uint64_t drops_seen_ = 0;
  uint64_t overloads_seen_ = 0;
};

// Renders a violation kind as a stable identifier (for messages and tests).
const char* ToString(InvariantChecker::Violation::Kind kind);

}  // namespace lvm

#endif  // SRC_CHECK_INVARIANT_CHECKER_H_
