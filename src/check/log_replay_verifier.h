// Whole-log verification by replay (src/check).
//
// The logger's correctness claim is that a log segment is a complete,
// ordered description of every write to the logged region. The verifier
// tests exactly that: Snapshot() captures a shadow image of the data
// segment's effective contents, the workload runs, and Verify() replays the
// records appended since the snapshot over the shadow and diffs the result
// against the segment's current effective contents. Any dropped, reordered
// or corrupted record surfaces as a byte mismatch.
//
// Requirements: the segment must only be written through logged mappings
// between Snapshot() and Verify() (true for any logged region — logged
// pages are write-through, so every write is on the bus), the log must be a
// normal-mode log, and it must not be truncated or compacted across the
// window.
#ifndef SRC_CHECK_LOG_REPLAY_VERIFIER_H_
#define SRC_CHECK_LOG_REPLAY_VERIFIER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/types.h"
#include "src/logger/log_record.h"
#include "src/lvm/lvm_system.h"
#include "src/vm/region.h"
#include "src/vm/segment.h"

namespace lvm {

// One byte the replayed log disagrees with the memory image about.
struct ReplayMismatch {
  uint32_t page_index = 0;
  uint32_t offset_in_page = 0;
  uint8_t replayed = 0;  // What the log says the byte should be.
  uint8_t actual = 0;    // What the segment's memory actually holds.
};

class LogReplayVerifier {
 public:
  // `system` must outlive the verifier.
  explicit LogReplayVerifier(LvmSystem* system) : system_(system) {}

  // Captures `segment`'s current effective contents as the replay baseline
  // and remembers the log's current length; records appended later are the
  // replay set. Synchronizes the log first.
  void Snapshot(Cpu* cpu, Segment* segment, LogSegment* log);

  // Replays records appended since Snapshot() over the baseline and diffs
  // against the segment's current effective contents. Returns at most
  // `max_mismatches` differences (empty means the log reproduces memory).
  // Physically-addressed records are resolved through the segment's frames;
  // pass `region` to also resolve virtually-addressed records (reverse
  // translation / on-chip logs).
  std::vector<ReplayMismatch> Verify(Cpu* cpu, size_t max_mismatches = 16,
                                     const Region* region = nullptr);

  // Renders mismatches for humans.
  static std::string Describe(const std::vector<ReplayMismatch>& mismatches);

  // Post-mortem variant for black-box dumps (lvm-inspect --replay-check):
  // no live system, just the dump's physically-addressed tail records and
  // the memory extents captured alongside them. Replays the records
  // byte-wise (last record wins, old-value records skipped) and diffs every
  // replayed byte that falls inside an extent; bytes outside the captured
  // extents cannot be checked and are ignored. A mismatch means the tail of
  // the log no longer reproduces memory — a dropped, reordered or corrupted
  // record. `page_index`/`offset_in_page` in the result are the *physical*
  // page number and offset.
  static std::vector<ReplayMismatch> CrossCheckTail(
      const std::vector<LogRecord>& tail_records,
      const std::vector<std::pair<PhysAddr, std::vector<uint8_t>>>& memory,
      size_t max_mismatches = 16);

  // CrossCheckTail over one contiguous image starting at `base`: the shape
  // recovered durable regions come in (tests/wal_crash_matrix_test.cc
  // replays the WAL's records against the recovered region bytes).
  static std::vector<ReplayMismatch> CrossCheckImage(const std::vector<LogRecord>& tail_records,
                                                     PhysAddr base, const uint8_t* bytes,
                                                     size_t length, size_t max_mismatches = 16);

 private:
  // Shadow page bytes by page index; pages missing from the map were not
  // materialized at snapshot time and start as the zero image their frame
  // is born with.
  using Shadow = std::unordered_map<uint32_t, std::vector<uint8_t>>;

  // Effective bytes of one materialized segment page (dirty second-level
  // lines and deferred-copy resolution honored).
  std::vector<uint8_t> EffectivePage(PhysAddr frame);

  LvmSystem* system_;
  Segment* segment_ = nullptr;
  LogSegment* log_ = nullptr;
  Shadow shadow_;
  size_t snapshot_records_ = 0;
};

}  // namespace lvm

#endif  // SRC_CHECK_LOG_REPLAY_VERIFIER_H_
