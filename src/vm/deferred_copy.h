// Deferred-copy state: the software half of Section 3.3.
//
// A deferred-copy mapping associates each page frame of a destination
// segment with the corresponding frame of its source segment. Reads of data
// the application has not modified resolve to the source frame; a line that
// has been written back from the second-level cache has its "source address
// set to the destination" so later loads come from the destination. The map
// implements sim::DeferredCopyPolicy, which the L2 cache consults on every
// clean-line access.
#ifndef SRC_VM_DEFERRED_COPY_H_
#define SRC_VM_DEFERRED_COPY_H_

#include <bitset>
#include <cstdint>
#include <unordered_map>

#include "src/base/types.h"
#include "src/sim/interfaces.h"

namespace lvm {

class DeferredCopyMap : public DeferredCopyPolicy {
 public:
  // Declares `source_frame` as the deferred-copy source for `dest_frame`.
  // Any previous state for the destination page is discarded.
  void MapPage(PhysAddr dest_frame, PhysAddr source_frame) {
    PageState& state = pages_[PageBase(dest_frame)];
    state.source_frame = PageBase(source_frame);
    state.written_back.reset();
  }

  void UnmapPage(PhysAddr dest_frame) { pages_.erase(PageBase(dest_frame)); }

  bool IsMapped(PhysAddr dest_frame) const {
    return pages_.find(PageBase(dest_frame)) != pages_.end();
  }

  // Number of lines of `dest_frame` whose source currently points at the
  // destination (i.e. lines written back since the last reset).
  uint32_t WrittenBackLines(PhysAddr dest_frame) const {
    auto it = pages_.find(PageBase(dest_frame));
    return it == pages_.end() ? 0 : static_cast<uint32_t>(it->second.written_back.count());
  }

  // Marks every line of `dest_frame` as diverged from the source (used when
  // a whole-segment copy overwrites the destination).
  void MarkAllWrittenBack(PhysAddr dest_frame) {
    auto it = pages_.find(PageBase(dest_frame));
    if (it != pages_.end()) {
      it->second.written_back.set();
    }
  }

  // Points one line's source back at the source segment (used by CULT when
  // a line's contents have been folded into the advanced checkpoint).
  void ResetLine(PhysAddr line_paddr) {
    auto it = pages_.find(PageBase(line_paddr));
    if (it != pages_.end()) {
      it->second.written_back.reset(LineIndexInPage(line_paddr));
    }
  }

  // resetDeferredCopy() for one page: points every line's source back at the
  // source segment. Returns how many line sources had to be reset.
  uint32_t ResetPage(PhysAddr dest_frame) {
    auto it = pages_.find(PageBase(dest_frame));
    if (it == pages_.end()) {
      return 0;
    }
    auto count = static_cast<uint32_t>(it->second.written_back.count());
    it->second.written_back.reset();
    return count;
  }

  // --- sim::DeferredCopyPolicy ---
  PhysAddr ResolveClean(PhysAddr paddr) override {
    auto it = pages_.find(PageBase(paddr));
    if (it == pages_.end()) {
      return paddr;
    }
    const PageState& state = it->second;
    if (state.written_back.test(LineIndexInPage(paddr))) {
      return paddr;
    }
    return state.source_frame + PageOffset(paddr);
  }

  void OnLineWriteback(PhysAddr line_paddr) override {
    auto it = pages_.find(PageBase(line_paddr));
    if (it != pages_.end()) {
      it->second.written_back.set(LineIndexInPage(line_paddr));
    }
  }

 private:
  struct PageState {
    PhysAddr source_frame = 0;
    std::bitset<kLinesPerPage> written_back;
  };

  std::unordered_map<PhysAddr, PageState> pages_;
};

}  // namespace lvm

#endif  // SRC_VM_DEFERRED_COPY_H_
