// Regions: mappings of segments into an address space (Table 1).
//
// A region is created for a segment and later bound into an address space.
// Declaring a log segment for a region makes it a *logged region*: every
// write through it produces a log record. Logging can be enabled and
// disabled dynamically, orthogonal to the data's type (Section 2.7) — a
// debugger can attach a log to another program's region with no change to
// the program binary.
#ifndef SRC_VM_REGION_H_
#define SRC_VM_REGION_H_

#include <cstdint>

#include "src/base/check.h"
#include "src/base/types.h"
#include "src/logger/tables.h"
#include "src/vm/segment.h"

namespace lvm {

class AddressSpace;

class Region {
 public:
  // Paper: new StdRegion(segment). The single concrete region type maps the
  // whole segment.
  explicit Region(Segment* segment) : segment_(segment) { LVM_CHECK(segment != nullptr); }

  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

  Segment* segment() const { return segment_; }
  uint32_t size() const { return segment_->size(); }

  // Table 1: Region::log(ls). Declares `log_segment` as the log for this
  // region; records for all writes through it appear there. Must be set
  // before the region's pages are first touched or re-armed through
  // LvmSystem::SetRegionLogging.
  void SetLogSegment(LogSegment* log_segment, LogMode mode = LogMode::kNormal) {
    log_segment_ = log_segment;
    log_mode_ = mode;
    logging_enabled_ = log_segment != nullptr;
  }
  LogSegment* log_segment() const { return log_segment_; }
  LogMode log_mode() const { return log_mode_; }

  bool logging_enabled() const { return logging_enabled_; }
  // Section 3.1.2 extension: writes from each processor go to that
  // processor's own log of the group (set via LvmSystem::AttachPerCpuLogs).
  bool per_cpu_logging() const { return per_cpu_logging_; }

  // Binding state, maintained by AddressSpace::BindRegion.
  AddressSpace* address_space() const { return address_space_; }
  VirtAddr base() const { return base_; }
  bool bound() const { return address_space_ != nullptr; }
  // Whether `va` falls inside this (bound) region.
  bool Contains(VirtAddr va) const {
    return bound() && va >= base_ && va - base_ < size();
  }
  // Segment page index for a virtual address inside the region.
  uint32_t PageIndexOf(VirtAddr va) const {
    LVM_DCHECK(Contains(va));
    return PageNumber(va - base_);
  }

 private:
  friend class AddressSpace;
  friend class LvmSystem;

  Segment* segment_;
  LogSegment* log_segment_ = nullptr;
  LogMode log_mode_ = LogMode::kNormal;
  bool logging_enabled_ = false;
  bool per_cpu_logging_ = false;

  AddressSpace* address_space_ = nullptr;
  VirtAddr base_ = 0;
};

// Alias matching the paper's concrete class name.
using StdRegion = Region;

}  // namespace lvm

#endif  // SRC_VM_REGION_H_
