// Address spaces: region bindings plus the page table the simulated CPU
// translates through.
#ifndef SRC_VM_ADDRESS_SPACE_H_
#define SRC_VM_ADDRESS_SPACE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"
#include "src/sim/interfaces.h"
#include "src/vm/region.h"

namespace lvm {

class AddressSpace final : public AddressTranslator {
 public:
  struct Pte {
    PhysAddr frame = 0;
    bool write_through = false;
    bool logged = false;
    Region* region = nullptr;
  };

  AddressSpace() = default;

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Table 1: Region::bind(as, virtaddr). Binds `region` at `va` (page
  // aligned), or at a kernel-chosen address when `va` is 0. Returns the
  // binding address.
  VirtAddr BindRegion(Region* region, VirtAddr va = 0);

  // Region containing `va`, or nullptr.
  Region* FindRegion(VirtAddr va) const;

  // Removes `region` from this space (its PTEs must already be gone; the
  // kernel's LvmSystem::UnbindRegion handles the full teardown).
  void UnbindRegion(Region* region);

  const std::vector<Region*>& regions() const { return regions_; }

  // --- page table ---
  void InstallPte(VirtAddr va, const Pte& pte) { page_table_[PageNumber(va)] = pte; }
  // Entry covering `va`, or nullptr if not mapped.
  Pte* FindPte(VirtAddr va) {
    auto it = page_table_.find(PageNumber(va));
    return it == page_table_.end() ? nullptr : &it->second;
  }
  const Pte* FindPte(VirtAddr va) const {
    auto it = page_table_.find(PageNumber(va));
    return it == page_table_.end() ? nullptr : &it->second;
  }
  void RemovePte(VirtAddr va) { page_table_.erase(PageNumber(va)); }
  size_t mapped_pages() const { return page_table_.size(); }

  // --- sim::AddressTranslator ---
  bool Translate(VirtAddr va, AccessKind access, Translation* out) override {
    (void)access;
    const Pte* pte = FindPte(va);
    if (pte == nullptr) {
      return false;
    }
    out->paddr = pte->frame + PageOffset(va);
    out->write_through = pte->write_through;
    out->logged = pte->logged;
    return true;
  }

 private:
  // Virtual addresses below this are never handed out, so null-ish pointers
  // fault loudly.
  static constexpr VirtAddr kFirstUserAddress = 0x0040'0000;

  std::vector<Region*> regions_;
  std::unordered_map<uint32_t, Pte> page_table_;
  VirtAddr next_va_ = kFirstUserAddress;
};

}  // namespace lvm

#endif  // SRC_VM_ADDRESS_SPACE_H_
