// Memory segments: the virtual memory system objects mapped by regions
// (Table 1 of the paper).
//
// A Segment names a contiguous extent of backing store, materialized as
// physical page frames on demand. StdSegment is the standard implementation
// of the abstract base (optionally paged by a user-level SegmentManager);
// LogSegment holds log records and grows by explicit extension, normally in
// advance of the logger reaching the end (Section 3.2).
#ifndef SRC_VM_SEGMENT_H_
#define SRC_VM_SEGMENT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"
#include "src/vm/frame_allocator.h"

namespace lvm {

class Segment;

// User-level page-fault handling hook (the paper's SegmentMan argument to
// StdSegment): provides initial contents for freshly allocated pages.
class SegmentManager {
 public:
  virtual ~SegmentManager() = default;
  // `bytes` addresses the zero-filled kPageSize-byte frame for
  // `page_index`; the manager may fill it with initial data.
  virtual void FillPage(Segment& segment, uint32_t page_index, uint8_t* bytes) = 0;
};

class Segment {
 public:
  static constexpr PhysAddr kNoFrame = ~PhysAddr{0};

  virtual ~Segment() = default;

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  uint32_t size() const { return static_cast<uint32_t>(frames_.size()) * kPageSize; }
  uint32_t page_count() const { return static_cast<uint32_t>(frames_.size()); }

  // Frame backing page `page_index`, allocated (and filled) on first use.
  PhysAddr EnsureFrame(uint32_t page_index);

  // Frame backing page `page_index`, or kNoFrame if never materialized.
  PhysAddr FrameAt(uint32_t page_index) const { return frames_.at(page_index); }
  bool HasFrame(uint32_t page_index) const { return frames_.at(page_index) != kNoFrame; }

  // Reverse lookup: page index owning `frame`, or -1 if the frame does not
  // back this segment. Used to retarget physical log-record addresses at a
  // checkpoint copy of the segment.
  int32_t PageIndexOfFrame(PhysAddr frame) const {
    auto it = frame_to_page_.find(PageBase(frame));
    return it == frame_to_page_.end() ? -1 : static_cast<int32_t>(it->second);
  }

  // Table 1: Segment::sourceSegment(source, offset). Declares `source` as
  // the deferred-copy source for this segment starting at byte `offset`
  // (page aligned) within the source.
  void SetSourceSegment(Segment* source, uint32_t offset = 0) {
    LVM_CHECK(source != this);
    LVM_CHECK_MSG(PageOffset(offset) == 0, "deferred-copy source offset must be page aligned");
    source_segment_ = source;
    source_offset_ = offset;
  }
  Segment* source_segment() const { return source_segment_; }
  uint32_t source_offset() const { return source_offset_; }

  FrameAllocator& frames() const { return *allocator_; }

 protected:
  Segment(FrameAllocator* allocator, uint32_t size_bytes)
      : allocator_(allocator), frames_(PageNumber(AlignUp(size_bytes, kPageSize)), kNoFrame) {
    LVM_CHECK(allocator != nullptr);
  }

  // Invoked after a frame is allocated and zero-filled, before first use.
  virtual void OnNewFrame(uint32_t page_index, uint8_t* bytes) {
    (void)page_index;
    (void)bytes;
  }

  // Appends a fresh frame (LogSegment growth).
  PhysAddr AppendFrame() {
    PhysAddr frame = allocator_->Allocate();
    frames_.push_back(frame);
    frame_to_page_[frame] = static_cast<uint32_t>(frames_.size()) - 1;
    return frame;
  }

 private:
  friend class LvmSystem;

  FrameAllocator* allocator_;
  std::vector<PhysAddr> frames_;
  std::unordered_map<PhysAddr, uint32_t> frame_to_page_;
  Segment* source_segment_ = nullptr;
  uint32_t source_offset_ = 0;
};

// The standard segment: zero-filled on demand, or paged by a user-level
// segment manager.
class StdSegment : public Segment {
 public:
  StdSegment(FrameAllocator* allocator, uint32_t size_bytes, uint32_t flags = 0,
             SegmentManager* manager = nullptr)
      : Segment(allocator, size_bytes), flags_(flags), manager_(manager) {}

  uint32_t flags() const { return flags_; }

 protected:
  void OnNewFrame(uint32_t page_index, uint8_t* bytes) override {
    if (manager_ != nullptr) {
      manager_->FillPage(*this, page_index, bytes);
    }
  }

 private:
  uint32_t flags_;
  SegmentManager* manager_;
};

// A segment holding log records. Created empty; the application (or the
// kernel on its behalf) extends it in advance of the logger reaching the
// end. The kernel-side bookkeeping (active frame, append offset, hardware
// log index) is managed by LvmSystem.
class LogSegment : public Segment {
 public:
  explicit LogSegment(FrameAllocator* allocator) : Segment(allocator, 0) {}

  // Grows the log by `pages` zero-filled frames.
  void Extend(uint32_t pages) {
    for (uint32_t i = 0; i < pages; ++i) {
      AppendFrame();
    }
  }

  // --- kernel bookkeeping (LvmSystem) ---
  static constexpr uint32_t kUnregistered = ~0u;

  // Hardware log-table index, or kUnregistered.
  uint32_t log_index = kUnregistered;
  // Index of the frame currently holding the hardware tail.
  uint32_t active_frame = 0;
  // Byte offset of the end of the log data, maintained on synchronization
  // and at tail faults.
  uint32_t append_offset = 0;
  // Whether the hardware tail has ever been pointed into this segment.
  bool hw_tail_initialized = false;
  // Records absorbed by the default page because the log ran out of frames.
  uint64_t records_lost = 0;
};

}  // namespace lvm

#endif  // SRC_VM_SEGMENT_H_
