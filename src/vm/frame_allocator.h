// Physical page-frame allocator for the simulated machine.
//
// Allocate/Free are serialized by an internal mutex so the parallel
// engine's log shards can extend their log segments concurrently; frame
// allocation is a cold path, so an uncontended lock is fine.
#ifndef SRC_VM_FRAME_ALLOCATOR_H_
#define SRC_VM_FRAME_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/lock_order.h"
#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/base/types.h"
#include "src/sim/phys_mem.h"

namespace lvm {

class FrameAllocator {
 public:
  // Manages frames in [first_frame_addr, memory->size()). The low frames are
  // reserved (kernel, logger absorb page) so physical address 0 never backs
  // user data.
  explicit FrameAllocator(PhysicalMemory* memory, PhysAddr first_frame_addr = kPageSize)
      : memory_(memory), next_(AlignUp(first_frame_addr, kPageSize)) {
    LVM_CHECK(next_ < memory->size());
  }

  PhysicalMemory& memory() { return *memory_; }

  // Allocates a zero-filled frame. Aborts when physical memory is exhausted
  // (the simulated experiments size memory generously).
  PhysAddr Allocate() {
    MutexLock lock(mu_);
    if (!free_list_.empty()) {
      PhysAddr frame = free_list_.back();
      free_list_.pop_back();
      memory_->Zero(frame, kPageSize);
      return frame;
    }
    LVM_CHECK_MSG(next_ + kPageSize <= memory_->size(), "out of physical frames");
    PhysAddr frame = next_;
    next_ += kPageSize;
    memory_->Zero(frame, kPageSize);
    return frame;
  }

  void Free(PhysAddr frame) {
    LVM_DCHECK(PageOffset(frame) == 0);
    MutexLock lock(mu_);
    free_list_.push_back(frame);
  }

  uint32_t allocated_frames() const {
    MutexLock lock(mu_);
    return (next_ / kPageSize) - 1 - static_cast<uint32_t>(free_list_.size());
  }

 private:
  mutable Mutex mu_ LVM_ACQUIRED_AFTER(lockorder::kLevelL2Stripe){
      "FrameAllocator::mu_", lockorder::kRankFrame};
  PhysicalMemory* memory_;
  PhysAddr next_ LVM_GUARDED_BY(mu_);
  std::vector<PhysAddr> free_list_ LVM_GUARDED_BY(mu_);
};

}  // namespace lvm

#endif  // SRC_VM_FRAME_ALLOCATOR_H_
