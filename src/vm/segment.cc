#include "src/vm/segment.h"

namespace lvm {

PhysAddr Segment::EnsureFrame(uint32_t page_index) {
  PhysAddr& slot = frames_.at(page_index);
  if (slot == kNoFrame) {
    slot = allocator_->Allocate();
    frame_to_page_[slot] = page_index;
    // Frames come back zero-filled; give derived segments (user-level
    // segment managers) a chance to install initial contents.
    OnNewFrame(page_index, allocator_->memory().raw_mutable(slot));
  }
  return slot;
}

}  // namespace lvm
