#include "src/vm/address_space.h"

namespace lvm {

VirtAddr AddressSpace::BindRegion(Region* region, VirtAddr va) {
  LVM_CHECK(region != nullptr);
  LVM_CHECK_MSG(!region->bound(), "region is already bound to an address space");
  LVM_CHECK_MSG(PageOffset(va) == 0, "binding address must be page aligned");
  uint32_t span = AlignUp(region->size(), kPageSize);
  LVM_CHECK_MSG(span > 0, "cannot bind a region over an empty segment");
  if (va == 0) {
    va = next_va_;
    next_va_ += span + kPageSize;  // One guard page between regions.
  } else {
    LVM_CHECK_MSG(va >= kFirstUserAddress, "binding address below the user range");
    for (const Region* existing : regions_) {
      bool overlaps = va < existing->base() + existing->size() && existing->base() < va + span;
      LVM_CHECK_MSG(!overlaps, "region binding overlaps an existing region");
    }
    if (va + span + kPageSize > next_va_) {
      next_va_ = va + span + kPageSize;
    }
  }
  region->address_space_ = this;
  region->base_ = va;
  regions_.push_back(region);
  return va;
}

void AddressSpace::UnbindRegion(Region* region) {
  LVM_CHECK(region != nullptr && region->address_space() == this);
  for (auto it = regions_.begin(); it != regions_.end(); ++it) {
    if (*it == region) {
      regions_.erase(it);
      break;
    }
  }
  region->address_space_ = nullptr;
  region->base_ = 0;
}

Region* AddressSpace::FindRegion(VirtAddr va) const {
  for (Region* region : regions_) {
    if (region->Contains(va)) {
      return region;
    }
  }
  return nullptr;
}

}  // namespace lvm
