file(REMOVE_RECURSE
  "CMakeFiles/mfile_property_test.dir/mfile_property_test.cc.o"
  "CMakeFiles/mfile_property_test.dir/mfile_property_test.cc.o.d"
  "mfile_property_test"
  "mfile_property_test.pdb"
  "mfile_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfile_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
