# Empty dependencies file for mfile_property_test.
# This may be replaced when dependencies are built.
