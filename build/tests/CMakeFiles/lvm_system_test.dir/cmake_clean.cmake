file(REMOVE_RECURSE
  "CMakeFiles/lvm_system_test.dir/lvm_system_test.cc.o"
  "CMakeFiles/lvm_system_test.dir/lvm_system_test.cc.o.d"
  "lvm_system_test"
  "lvm_system_test.pdb"
  "lvm_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
