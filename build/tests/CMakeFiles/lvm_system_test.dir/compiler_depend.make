# Empty compiler generated dependencies file for lvm_system_test.
# This may be replaced when dependencies are built.
