# Empty dependencies file for timewarp_property_test.
# This may be replaced when dependencies are built.
