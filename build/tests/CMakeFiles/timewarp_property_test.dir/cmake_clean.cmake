file(REMOVE_RECURSE
  "CMakeFiles/timewarp_property_test.dir/timewarp_property_test.cc.o"
  "CMakeFiles/timewarp_property_test.dir/timewarp_property_test.cc.o.d"
  "timewarp_property_test"
  "timewarp_property_test.pdb"
  "timewarp_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timewarp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
