# Empty dependencies file for per_cpu_logs_test.
# This may be replaced when dependencies are built.
