file(REMOVE_RECURSE
  "CMakeFiles/per_cpu_logs_test.dir/per_cpu_logs_test.cc.o"
  "CMakeFiles/per_cpu_logs_test.dir/per_cpu_logs_test.cc.o.d"
  "per_cpu_logs_test"
  "per_cpu_logs_test.pdb"
  "per_cpu_logs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/per_cpu_logs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
