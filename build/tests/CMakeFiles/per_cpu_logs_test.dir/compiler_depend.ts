# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for per_cpu_logs_test.
