file(REMOVE_RECURSE
  "CMakeFiles/deferred_property_test.dir/deferred_property_test.cc.o"
  "CMakeFiles/deferred_property_test.dir/deferred_property_test.cc.o.d"
  "deferred_property_test"
  "deferred_property_test.pdb"
  "deferred_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deferred_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
