# Empty dependencies file for deferred_property_test.
# This may be replaced when dependencies are built.
