file(REMOVE_RECURSE
  "CMakeFiles/logger_modes_test.dir/logger_modes_test.cc.o"
  "CMakeFiles/logger_modes_test.dir/logger_modes_test.cc.o.d"
  "logger_modes_test"
  "logger_modes_test.pdb"
  "logger_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logger_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
