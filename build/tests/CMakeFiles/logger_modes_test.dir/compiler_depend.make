# Empty compiler generated dependencies file for logger_modes_test.
# This may be replaced when dependencies are built.
