file(REMOVE_RECURSE
  "CMakeFiles/timewarp_onchip_test.dir/timewarp_onchip_test.cc.o"
  "CMakeFiles/timewarp_onchip_test.dir/timewarp_onchip_test.cc.o.d"
  "timewarp_onchip_test"
  "timewarp_onchip_test.pdb"
  "timewarp_onchip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timewarp_onchip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
