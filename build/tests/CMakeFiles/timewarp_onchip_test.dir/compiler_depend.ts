# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for timewarp_onchip_test.
