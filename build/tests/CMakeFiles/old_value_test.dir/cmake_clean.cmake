file(REMOVE_RECURSE
  "CMakeFiles/old_value_test.dir/old_value_test.cc.o"
  "CMakeFiles/old_value_test.dir/old_value_test.cc.o.d"
  "old_value_test"
  "old_value_test.pdb"
  "old_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/old_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
