# Empty dependencies file for old_value_test.
# This may be replaced when dependencies are built.
