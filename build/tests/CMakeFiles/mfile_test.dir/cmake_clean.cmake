file(REMOVE_RECURSE
  "CMakeFiles/mfile_test.dir/mfile_test.cc.o"
  "CMakeFiles/mfile_test.dir/mfile_test.cc.o.d"
  "mfile_test"
  "mfile_test.pdb"
  "mfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
