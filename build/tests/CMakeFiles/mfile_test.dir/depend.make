# Empty dependencies file for mfile_test.
# This may be replaced when dependencies are built.
