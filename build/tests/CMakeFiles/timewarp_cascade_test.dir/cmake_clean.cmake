file(REMOVE_RECURSE
  "CMakeFiles/timewarp_cascade_test.dir/timewarp_cascade_test.cc.o"
  "CMakeFiles/timewarp_cascade_test.dir/timewarp_cascade_test.cc.o.d"
  "timewarp_cascade_test"
  "timewarp_cascade_test.pdb"
  "timewarp_cascade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timewarp_cascade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
