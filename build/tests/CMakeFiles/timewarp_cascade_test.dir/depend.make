# Empty dependencies file for timewarp_cascade_test.
# This may be replaced when dependencies are built.
