file(REMOVE_RECURSE
  "CMakeFiles/rvm_test.dir/rvm_test.cc.o"
  "CMakeFiles/rvm_test.dir/rvm_test.cc.o.d"
  "rvm_test"
  "rvm_test.pdb"
  "rvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
