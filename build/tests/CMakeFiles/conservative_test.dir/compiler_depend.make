# Empty compiler generated dependencies file for conservative_test.
# This may be replaced when dependencies are built.
