file(REMOVE_RECURSE
  "CMakeFiles/conservative_test.dir/conservative_test.cc.o"
  "CMakeFiles/conservative_test.dir/conservative_test.cc.o.d"
  "conservative_test"
  "conservative_test.pdb"
  "conservative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conservative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
