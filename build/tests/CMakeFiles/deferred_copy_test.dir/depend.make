# Empty dependencies file for deferred_copy_test.
# This may be replaced when dependencies are built.
