file(REMOVE_RECURSE
  "CMakeFiles/deferred_copy_test.dir/deferred_copy_test.cc.o"
  "CMakeFiles/deferred_copy_test.dir/deferred_copy_test.cc.o.d"
  "deferred_copy_test"
  "deferred_copy_test.pdb"
  "deferred_copy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deferred_copy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
