file(REMOVE_RECURSE
  "CMakeFiles/rvm_property_test.dir/rvm_property_test.cc.o"
  "CMakeFiles/rvm_property_test.dir/rvm_property_test.cc.o.d"
  "rvm_property_test"
  "rvm_property_test.pdb"
  "rvm_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
