# Empty dependencies file for rvm_property_test.
# This may be replaced when dependencies are built.
