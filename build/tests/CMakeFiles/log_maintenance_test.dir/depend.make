# Empty dependencies file for log_maintenance_test.
# This may be replaced when dependencies are built.
