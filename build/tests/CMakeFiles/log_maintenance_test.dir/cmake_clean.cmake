file(REMOVE_RECURSE
  "CMakeFiles/log_maintenance_test.dir/log_maintenance_test.cc.o"
  "CMakeFiles/log_maintenance_test.dir/log_maintenance_test.cc.o.d"
  "log_maintenance_test"
  "log_maintenance_test.pdb"
  "log_maintenance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_maintenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
