# Empty compiler generated dependencies file for timewarp_test.
# This may be replaced when dependencies are built.
