file(REMOVE_RECURSE
  "CMakeFiles/timewarp_test.dir/timewarp_test.cc.o"
  "CMakeFiles/timewarp_test.dir/timewarp_test.cc.o.d"
  "timewarp_test"
  "timewarp_test.pdb"
  "timewarp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timewarp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
