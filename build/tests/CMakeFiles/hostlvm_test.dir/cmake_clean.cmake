file(REMOVE_RECURSE
  "CMakeFiles/hostlvm_test.dir/hostlvm_test.cc.o"
  "CMakeFiles/hostlvm_test.dir/hostlvm_test.cc.o.d"
  "hostlvm_test"
  "hostlvm_test.pdb"
  "hostlvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostlvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
