# Empty dependencies file for hostlvm_test.
# This may be replaced when dependencies are built.
