# Empty dependencies file for lvm_property_test.
# This may be replaced when dependencies are built.
