file(REMOVE_RECURSE
  "CMakeFiles/lvm_property_test.dir/lvm_property_test.cc.o"
  "CMakeFiles/lvm_property_test.dir/lvm_property_test.cc.o.d"
  "lvm_property_test"
  "lvm_property_test.pdb"
  "lvm_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
