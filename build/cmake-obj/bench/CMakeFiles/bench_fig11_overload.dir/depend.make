# Empty dependencies file for bench_fig11_overload.
# This may be replaced when dependencies are built.
