file(REMOVE_RECURSE
  "../../bench/bench_fig11_overload"
  "../../bench/bench_fig11_overload.pdb"
  "CMakeFiles/bench_fig11_overload.dir/bench_fig11_overload.cc.o"
  "CMakeFiles/bench_fig11_overload.dir/bench_fig11_overload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
