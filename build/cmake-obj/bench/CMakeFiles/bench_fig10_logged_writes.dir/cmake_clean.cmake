file(REMOVE_RECURSE
  "../../bench/bench_fig10_logged_writes"
  "../../bench/bench_fig10_logged_writes.pdb"
  "CMakeFiles/bench_fig10_logged_writes.dir/bench_fig10_logged_writes.cc.o"
  "CMakeFiles/bench_fig10_logged_writes.dir/bench_fig10_logged_writes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_logged_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
