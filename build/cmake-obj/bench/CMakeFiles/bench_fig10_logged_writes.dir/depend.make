# Empty dependencies file for bench_fig10_logged_writes.
# This may be replaced when dependencies are built.
