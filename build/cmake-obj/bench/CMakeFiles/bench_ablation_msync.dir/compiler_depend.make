# Empty compiler generated dependencies file for bench_ablation_msync.
# This may be replaced when dependencies are built.
