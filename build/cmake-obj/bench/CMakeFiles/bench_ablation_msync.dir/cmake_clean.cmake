file(REMOVE_RECURSE
  "../../bench/bench_ablation_msync"
  "../../bench/bench_ablation_msync.pdb"
  "CMakeFiles/bench_ablation_msync.dir/bench_ablation_msync.cc.o"
  "CMakeFiles/bench_ablation_msync.dir/bench_ablation_msync.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_msync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
