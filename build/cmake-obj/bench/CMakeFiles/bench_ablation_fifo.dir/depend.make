# Empty dependencies file for bench_ablation_fifo.
# This may be replaced when dependencies are built.
