file(REMOVE_RECURSE
  "../../bench/bench_ablation_fifo"
  "../../bench/bench_ablation_fifo.pdb"
  "CMakeFiles/bench_ablation_fifo.dir/bench_ablation_fifo.cc.o"
  "CMakeFiles/bench_ablation_fifo.dir/bench_ablation_fifo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
