# Empty compiler generated dependencies file for bench_ablation_txlen.
# This may be replaced when dependencies are built.
