file(REMOVE_RECURSE
  "../../bench/bench_ablation_txlen"
  "../../bench/bench_ablation_txlen.pdb"
  "CMakeFiles/bench_ablation_txlen.dir/bench_ablation_txlen.cc.o"
  "CMakeFiles/bench_ablation_txlen.dir/bench_ablation_txlen.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_txlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
