file(REMOVE_RECURSE
  "../../bench/bench_fig7_checkpointing"
  "../../bench/bench_fig7_checkpointing.pdb"
  "CMakeFiles/bench_fig7_checkpointing.dir/bench_fig7_checkpointing.cc.o"
  "CMakeFiles/bench_fig7_checkpointing.dir/bench_fig7_checkpointing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
