file(REMOVE_RECURSE
  "../../bench/bench_ablation_conservative"
  "../../bench/bench_ablation_conservative.pdb"
  "CMakeFiles/bench_ablation_conservative.dir/bench_ablation_conservative.cc.o"
  "CMakeFiles/bench_ablation_conservative.dir/bench_ablation_conservative.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_conservative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
