# Empty compiler generated dependencies file for bench_hostlvm.
# This may be replaced when dependencies are built.
