file(REMOVE_RECURSE
  "../../bench/bench_hostlvm"
  "../../bench/bench_hostlvm.pdb"
  "CMakeFiles/bench_hostlvm.dir/bench_hostlvm.cc.o"
  "CMakeFiles/bench_hostlvm.dir/bench_hostlvm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hostlvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
