# Empty dependencies file for bench_fig12_overload_events.
# This may be replaced when dependencies are built.
