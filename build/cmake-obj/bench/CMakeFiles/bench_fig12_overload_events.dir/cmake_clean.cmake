file(REMOVE_RECURSE
  "../../bench/bench_fig12_overload_events"
  "../../bench/bench_fig12_overload_events.pdb"
  "CMakeFiles/bench_fig12_overload_events.dir/bench_fig12_overload_events.cc.o"
  "CMakeFiles/bench_fig12_overload_events.dir/bench_fig12_overload_events.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_overload_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
