# Empty dependencies file for bench_fig8_writes.
# This may be replaced when dependencies are built.
