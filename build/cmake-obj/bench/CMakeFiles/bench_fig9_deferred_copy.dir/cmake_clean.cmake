file(REMOVE_RECURSE
  "../../bench/bench_fig9_deferred_copy"
  "../../bench/bench_fig9_deferred_copy.pdb"
  "CMakeFiles/bench_fig9_deferred_copy.dir/bench_fig9_deferred_copy.cc.o"
  "CMakeFiles/bench_fig9_deferred_copy.dir/bench_fig9_deferred_copy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_deferred_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
