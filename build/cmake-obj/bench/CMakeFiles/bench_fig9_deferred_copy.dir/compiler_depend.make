# Empty compiler generated dependencies file for bench_fig9_deferred_copy.
# This may be replaced when dependencies are built.
