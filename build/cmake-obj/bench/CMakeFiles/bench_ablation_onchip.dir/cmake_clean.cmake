file(REMOVE_RECURSE
  "../../bench/bench_ablation_onchip"
  "../../bench/bench_ablation_onchip.pdb"
  "CMakeFiles/bench_ablation_onchip.dir/bench_ablation_onchip.cc.o"
  "CMakeFiles/bench_ablation_onchip.dir/bench_ablation_onchip.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_onchip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
