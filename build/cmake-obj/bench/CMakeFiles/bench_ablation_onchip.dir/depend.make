# Empty dependencies file for bench_ablation_onchip.
# This may be replaced when dependencies are built.
