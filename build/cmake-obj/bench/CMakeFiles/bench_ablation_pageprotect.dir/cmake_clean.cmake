file(REMOVE_RECURSE
  "../../bench/bench_ablation_pageprotect"
  "../../bench/bench_ablation_pageprotect.pdb"
  "CMakeFiles/bench_ablation_pageprotect.dir/bench_ablation_pageprotect.cc.o"
  "CMakeFiles/bench_ablation_pageprotect.dir/bench_ablation_pageprotect.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pageprotect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
