# Empty compiler generated dependencies file for bench_ablation_pageprotect.
# This may be replaced when dependencies are built.
