file(REMOVE_RECURSE
  "../../bench/bench_table3_rvm"
  "../../bench/bench_table3_rvm.pdb"
  "CMakeFiles/bench_table3_rvm.dir/bench_table3_rvm.cc.o"
  "CMakeFiles/bench_table3_rvm.dir/bench_table3_rvm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_rvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
