# Empty dependencies file for bench_table3_rvm.
# This may be replaced when dependencies are built.
