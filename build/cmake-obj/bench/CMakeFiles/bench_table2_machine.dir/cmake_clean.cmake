file(REMOVE_RECURSE
  "../../bench/bench_table2_machine"
  "../../bench/bench_table2_machine.pdb"
  "CMakeFiles/bench_table2_machine.dir/bench_table2_machine.cc.o"
  "CMakeFiles/bench_table2_machine.dir/bench_table2_machine.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
