# Empty dependencies file for bench_table2_machine.
# This may be replaced when dependencies are built.
