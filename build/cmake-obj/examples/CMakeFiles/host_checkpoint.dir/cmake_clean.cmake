file(REMOVE_RECURSE
  "../../examples/host_checkpoint"
  "../../examples/host_checkpoint.pdb"
  "CMakeFiles/host_checkpoint.dir/host_checkpoint.cpp.o"
  "CMakeFiles/host_checkpoint.dir/host_checkpoint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
