# Empty dependencies file for host_checkpoint.
# This may be replaced when dependencies are built.
