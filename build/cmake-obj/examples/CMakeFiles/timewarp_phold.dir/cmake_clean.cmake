file(REMOVE_RECURSE
  "../../examples/timewarp_phold"
  "../../examples/timewarp_phold.pdb"
  "CMakeFiles/timewarp_phold.dir/timewarp_phold.cpp.o"
  "CMakeFiles/timewarp_phold.dir/timewarp_phold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timewarp_phold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
