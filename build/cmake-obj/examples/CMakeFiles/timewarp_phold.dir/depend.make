# Empty dependencies file for timewarp_phold.
# This may be replaced when dependencies are built.
