file(REMOVE_RECURSE
  "../../examples/visualization_output"
  "../../examples/visualization_output.pdb"
  "CMakeFiles/visualization_output.dir/visualization_output.cpp.o"
  "CMakeFiles/visualization_output.dir/visualization_output.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualization_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
