# Empty dependencies file for visualization_output.
# This may be replaced when dependencies are built.
