file(REMOVE_RECURSE
  "../../examples/persistent_objects"
  "../../examples/persistent_objects.pdb"
  "CMakeFiles/persistent_objects.dir/persistent_objects.cpp.o"
  "CMakeFiles/persistent_objects.dir/persistent_objects.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
