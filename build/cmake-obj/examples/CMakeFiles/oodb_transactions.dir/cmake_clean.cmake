file(REMOVE_RECURSE
  "../../examples/oodb_transactions"
  "../../examples/oodb_transactions.pdb"
  "CMakeFiles/oodb_transactions.dir/oodb_transactions.cpp.o"
  "CMakeFiles/oodb_transactions.dir/oodb_transactions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
