# Empty dependencies file for oodb_transactions.
# This may be replaced when dependencies are built.
