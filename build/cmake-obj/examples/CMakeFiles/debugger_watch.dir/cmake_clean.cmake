file(REMOVE_RECURSE
  "../../examples/debugger_watch"
  "../../examples/debugger_watch.pdb"
  "CMakeFiles/debugger_watch.dir/debugger_watch.cpp.o"
  "CMakeFiles/debugger_watch.dir/debugger_watch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugger_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
