# Empty compiler generated dependencies file for debugger_watch.
# This may be replaced when dependencies are built.
