file(REMOVE_RECURSE
  "../../examples/host_transactions"
  "../../examples/host_transactions.pdb"
  "CMakeFiles/host_transactions.dir/host_transactions.cpp.o"
  "CMakeFiles/host_transactions.dir/host_transactions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
