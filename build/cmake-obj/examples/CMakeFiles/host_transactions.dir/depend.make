# Empty dependencies file for host_transactions.
# This may be replaced when dependencies are built.
