# Empty dependencies file for dsm_consistency.
# This may be replaced when dependencies are built.
