file(REMOVE_RECURSE
  "../../examples/dsm_consistency"
  "../../examples/dsm_consistency.pdb"
  "CMakeFiles/dsm_consistency.dir/dsm_consistency.cpp.o"
  "CMakeFiles/dsm_consistency.dir/dsm_consistency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
