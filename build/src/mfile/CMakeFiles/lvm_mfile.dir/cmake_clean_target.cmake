file(REMOVE_RECURSE
  "liblvm_mfile.a"
)
