# Empty compiler generated dependencies file for lvm_mfile.
# This may be replaced when dependencies are built.
