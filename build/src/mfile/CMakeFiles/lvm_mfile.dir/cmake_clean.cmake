file(REMOVE_RECURSE
  "CMakeFiles/lvm_mfile.dir/mapped_file.cc.o"
  "CMakeFiles/lvm_mfile.dir/mapped_file.cc.o.d"
  "liblvm_mfile.a"
  "liblvm_mfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_mfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
