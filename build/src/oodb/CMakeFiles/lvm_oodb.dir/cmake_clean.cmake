file(REMOVE_RECURSE
  "CMakeFiles/lvm_oodb.dir/object_store.cc.o"
  "CMakeFiles/lvm_oodb.dir/object_store.cc.o.d"
  "CMakeFiles/lvm_oodb.dir/persistent_map.cc.o"
  "CMakeFiles/lvm_oodb.dir/persistent_map.cc.o.d"
  "CMakeFiles/lvm_oodb.dir/persistent_queue.cc.o"
  "CMakeFiles/lvm_oodb.dir/persistent_queue.cc.o.d"
  "liblvm_oodb.a"
  "liblvm_oodb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_oodb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
