file(REMOVE_RECURSE
  "liblvm_oodb.a"
)
