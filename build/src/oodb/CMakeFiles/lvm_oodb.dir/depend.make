# Empty dependencies file for lvm_oodb.
# This may be replaced when dependencies are built.
