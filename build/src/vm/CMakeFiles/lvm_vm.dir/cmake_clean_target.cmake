file(REMOVE_RECURSE
  "liblvm_vm.a"
)
