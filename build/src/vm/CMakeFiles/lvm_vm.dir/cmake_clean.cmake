file(REMOVE_RECURSE
  "CMakeFiles/lvm_vm.dir/address_space.cc.o"
  "CMakeFiles/lvm_vm.dir/address_space.cc.o.d"
  "CMakeFiles/lvm_vm.dir/segment.cc.o"
  "CMakeFiles/lvm_vm.dir/segment.cc.o.d"
  "liblvm_vm.a"
  "liblvm_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
