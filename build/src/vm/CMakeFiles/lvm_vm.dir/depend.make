# Empty dependencies file for lvm_vm.
# This may be replaced when dependencies are built.
