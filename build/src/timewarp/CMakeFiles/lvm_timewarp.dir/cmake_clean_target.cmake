file(REMOVE_RECURSE
  "liblvm_timewarp.a"
)
