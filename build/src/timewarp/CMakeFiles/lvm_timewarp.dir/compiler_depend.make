# Empty compiler generated dependencies file for lvm_timewarp.
# This may be replaced when dependencies are built.
