file(REMOVE_RECURSE
  "CMakeFiles/lvm_timewarp.dir/copy_state_saver.cc.o"
  "CMakeFiles/lvm_timewarp.dir/copy_state_saver.cc.o.d"
  "CMakeFiles/lvm_timewarp.dir/lvm_state_saver.cc.o"
  "CMakeFiles/lvm_timewarp.dir/lvm_state_saver.cc.o.d"
  "CMakeFiles/lvm_timewarp.dir/models.cc.o"
  "CMakeFiles/lvm_timewarp.dir/models.cc.o.d"
  "CMakeFiles/lvm_timewarp.dir/scheduler.cc.o"
  "CMakeFiles/lvm_timewarp.dir/scheduler.cc.o.d"
  "CMakeFiles/lvm_timewarp.dir/simulation.cc.o"
  "CMakeFiles/lvm_timewarp.dir/simulation.cc.o.d"
  "liblvm_timewarp.a"
  "liblvm_timewarp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_timewarp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
