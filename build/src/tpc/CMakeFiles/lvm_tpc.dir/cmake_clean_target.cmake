file(REMOVE_RECURSE
  "liblvm_tpc.a"
)
