# Empty dependencies file for lvm_tpc.
# This may be replaced when dependencies are built.
