file(REMOVE_RECURSE
  "CMakeFiles/lvm_tpc.dir/tpca.cc.o"
  "CMakeFiles/lvm_tpc.dir/tpca.cc.o.d"
  "liblvm_tpc.a"
  "liblvm_tpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_tpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
