file(REMOVE_RECURSE
  "CMakeFiles/lvm_ckpt.dir/page_protect.cc.o"
  "CMakeFiles/lvm_ckpt.dir/page_protect.cc.o.d"
  "liblvm_ckpt.a"
  "liblvm_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
