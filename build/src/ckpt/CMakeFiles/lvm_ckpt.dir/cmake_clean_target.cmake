file(REMOVE_RECURSE
  "liblvm_ckpt.a"
)
