# Empty dependencies file for lvm_ckpt.
# This may be replaced when dependencies are built.
