file(REMOVE_RECURSE
  "liblvm_sim.a"
)
