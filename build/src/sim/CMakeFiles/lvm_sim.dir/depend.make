# Empty dependencies file for lvm_sim.
# This may be replaced when dependencies are built.
