file(REMOVE_RECURSE
  "CMakeFiles/lvm_sim.dir/cpu.cc.o"
  "CMakeFiles/lvm_sim.dir/cpu.cc.o.d"
  "CMakeFiles/lvm_sim.dir/l2_cache.cc.o"
  "CMakeFiles/lvm_sim.dir/l2_cache.cc.o.d"
  "liblvm_sim.a"
  "liblvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
