# Empty compiler generated dependencies file for lvm_logger.
# This may be replaced when dependencies are built.
