file(REMOVE_RECURSE
  "CMakeFiles/lvm_logger.dir/hardware_logger.cc.o"
  "CMakeFiles/lvm_logger.dir/hardware_logger.cc.o.d"
  "CMakeFiles/lvm_logger.dir/onchip_logger.cc.o"
  "CMakeFiles/lvm_logger.dir/onchip_logger.cc.o.d"
  "liblvm_logger.a"
  "liblvm_logger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_logger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
