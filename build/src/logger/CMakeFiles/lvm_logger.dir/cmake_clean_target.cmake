file(REMOVE_RECURSE
  "liblvm_logger.a"
)
