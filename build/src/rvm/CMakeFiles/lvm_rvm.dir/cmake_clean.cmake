file(REMOVE_RECURSE
  "CMakeFiles/lvm_rvm.dir/rlvm.cc.o"
  "CMakeFiles/lvm_rvm.dir/rlvm.cc.o.d"
  "CMakeFiles/lvm_rvm.dir/rvm.cc.o"
  "CMakeFiles/lvm_rvm.dir/rvm.cc.o.d"
  "liblvm_rvm.a"
  "liblvm_rvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_rvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
