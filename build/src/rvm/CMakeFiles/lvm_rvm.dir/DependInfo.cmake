
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rvm/rlvm.cc" "src/rvm/CMakeFiles/lvm_rvm.dir/rlvm.cc.o" "gcc" "src/rvm/CMakeFiles/lvm_rvm.dir/rlvm.cc.o.d"
  "/root/repo/src/rvm/rvm.cc" "src/rvm/CMakeFiles/lvm_rvm.dir/rvm.cc.o" "gcc" "src/rvm/CMakeFiles/lvm_rvm.dir/rvm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lvm/CMakeFiles/lvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/lvm_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/logger/CMakeFiles/lvm_logger.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/lvm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
