# Empty dependencies file for lvm_rvm.
# This may be replaced when dependencies are built.
