file(REMOVE_RECURSE
  "liblvm_rvm.a"
)
