# Empty compiler generated dependencies file for lvm_hostlvm.
# This may be replaced when dependencies are built.
