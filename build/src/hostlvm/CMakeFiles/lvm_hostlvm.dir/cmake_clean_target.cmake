file(REMOVE_RECURSE
  "liblvm_hostlvm.a"
)
