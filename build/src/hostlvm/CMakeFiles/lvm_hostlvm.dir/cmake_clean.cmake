file(REMOVE_RECURSE
  "CMakeFiles/lvm_hostlvm.dir/protected_region.cc.o"
  "CMakeFiles/lvm_hostlvm.dir/protected_region.cc.o.d"
  "liblvm_hostlvm.a"
  "liblvm_hostlvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_hostlvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
