file(REMOVE_RECURSE
  "liblvm_base.a"
)
