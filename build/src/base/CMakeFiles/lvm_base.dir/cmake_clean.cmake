file(REMOVE_RECURSE
  "CMakeFiles/lvm_base.dir/check.cc.o"
  "CMakeFiles/lvm_base.dir/check.cc.o.d"
  "liblvm_base.a"
  "liblvm_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
