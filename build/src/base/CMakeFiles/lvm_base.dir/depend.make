# Empty dependencies file for lvm_base.
# This may be replaced when dependencies are built.
