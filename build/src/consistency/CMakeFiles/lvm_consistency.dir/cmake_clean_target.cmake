file(REMOVE_RECURSE
  "liblvm_consistency.a"
)
