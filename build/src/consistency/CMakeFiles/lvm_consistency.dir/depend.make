# Empty dependencies file for lvm_consistency.
# This may be replaced when dependencies are built.
