file(REMOVE_RECURSE
  "CMakeFiles/lvm_consistency.dir/protocols.cc.o"
  "CMakeFiles/lvm_consistency.dir/protocols.cc.o.d"
  "liblvm_consistency.a"
  "liblvm_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
