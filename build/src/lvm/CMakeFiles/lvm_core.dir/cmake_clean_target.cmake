file(REMOVE_RECURSE
  "liblvm_core.a"
)
