file(REMOVE_RECURSE
  "CMakeFiles/lvm_core.dir/log_reader.cc.o"
  "CMakeFiles/lvm_core.dir/log_reader.cc.o.d"
  "CMakeFiles/lvm_core.dir/lvm_system.cc.o"
  "CMakeFiles/lvm_core.dir/lvm_system.cc.o.d"
  "CMakeFiles/lvm_core.dir/trace_stats.cc.o"
  "CMakeFiles/lvm_core.dir/trace_stats.cc.o.d"
  "CMakeFiles/lvm_core.dir/watch.cc.o"
  "CMakeFiles/lvm_core.dir/watch.cc.o.d"
  "liblvm_core.a"
  "liblvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
