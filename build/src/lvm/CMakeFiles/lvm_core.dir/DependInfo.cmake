
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lvm/log_reader.cc" "src/lvm/CMakeFiles/lvm_core.dir/log_reader.cc.o" "gcc" "src/lvm/CMakeFiles/lvm_core.dir/log_reader.cc.o.d"
  "/root/repo/src/lvm/lvm_system.cc" "src/lvm/CMakeFiles/lvm_core.dir/lvm_system.cc.o" "gcc" "src/lvm/CMakeFiles/lvm_core.dir/lvm_system.cc.o.d"
  "/root/repo/src/lvm/trace_stats.cc" "src/lvm/CMakeFiles/lvm_core.dir/trace_stats.cc.o" "gcc" "src/lvm/CMakeFiles/lvm_core.dir/trace_stats.cc.o.d"
  "/root/repo/src/lvm/watch.cc" "src/lvm/CMakeFiles/lvm_core.dir/watch.cc.o" "gcc" "src/lvm/CMakeFiles/lvm_core.dir/watch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/lvm_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/logger/CMakeFiles/lvm_logger.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/lvm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
