# Empty dependencies file for lvm_core.
# This may be replaced when dependencies are built.
