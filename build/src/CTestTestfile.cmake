# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("sim")
subdirs("logger")
subdirs("vm")
subdirs("lvm")
subdirs("rvm")
subdirs("oodb")
subdirs("mfile")
subdirs("tpc")
subdirs("timewarp")
subdirs("consistency")
subdirs("ckpt")
subdirs("hostlvm")
