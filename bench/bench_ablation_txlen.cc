// Ablation A8: transaction length (Section 4.2's closing observation).
//
// "Longer transactions would also show greater benefit from LVM, assuming
// correspondingly more write operations as well. TPC-A is a sequence of
// simple debit-credit operations. Transactions in object-oriented database
// systems tend to be longer and involve far more processing."
//
// Sweeps the number of recoverable writes per transaction: the commit and
// force costs amortize, so the set_range overhead inside the transaction
// becomes the dominant term and RLVM's advantage grows toward the raw
// single-write ratio.
#include <cstdio>
#include <memory>

#include "bench/bench_profile.h"
#include "bench/bench_util.h"
#include "src/base/rng.h"
#include "src/rvm/ram_disk.h"
#include "src/rvm/rlvm.h"
#include "src/rvm/rvm.h"

namespace lvm {
namespace {

template <typename StoreT>
Cycles PerTransactionCycles(uint32_t writes_per_tx,
                            const std::string& profile_path = std::string(),
                            const std::string& waterfall_path = std::string()) {
  LvmSystem system;
  bench::EnableProfilerIfRequested(profile_path, &system);
  bench::EnableWaterfallIfRequested(waterfall_path, &system);
  RamDisk disk;
  AddressSpace* as = system.CreateAddressSpace();
  StoreT store(&system, as, &disk, 2u << 20);
  system.Activate(as);
  Cpu& cpu = system.cpu();
  Rng rng(9);

  constexpr int kTransactions = 60;
  // Warm one transaction.
  store.Begin(&cpu);
  store.SetRange(&cpu, store.data_base(), 4);
  store.Write(&cpu, store.data_base(), 1);
  store.Commit(&cpu);

  Cycles t0 = cpu.now();
  for (int tx = 0; tx < kTransactions; ++tx) {
    store.Begin(&cpu);
    for (uint32_t w = 0; w < writes_per_tx; ++w) {
      uint32_t offset = static_cast<uint32_t>(rng.Uniform((1u << 20) / 4)) * 4;
      store.SetRange(&cpu, store.data_base() + offset, 4);
      store.Write(&cpu, store.data_base() + offset, w);
      cpu.Compute(200);  // The "far more processing" of OODB transactions.
    }
    store.Commit(&cpu);
    store.MaybeTruncate(&cpu);
  }
  Cycles per_tx = (cpu.now() - t0) / kTransactions;
  bench::WriteProfileIfRequested(profile_path, system);
  bench::WriteWaterfallIfRequested(waterfall_path, system);
  return per_tx;
}

void Run(const bench::Options& opts) {
  const char* claim =
      "commit/force amortize with longer transactions, so RLVM's advantage "
      "grows toward the single-write ratio";
  bench::Header("Ablation A8: Transaction Length (Section 4.2)", claim);
  bench::JsonTable table("ablation_txlen", claim);

  std::printf("%-14s %-18s %-18s %-10s\n", "writes/tx", "RVM (kcyc/tx)", "RLVM (kcyc/tx)",
              "speedup");
  for (uint32_t writes : {4u, 16u, 64u, 256u, 1024u}) {
    Cycles rvm = PerTransactionCycles<Rvm>(writes);
    Cycles rlvm = PerTransactionCycles<Rlvm>(writes);
    bench::Row("%-14u %-18.1f %-18.1f %.2fx", writes, rvm / 1000.0, rlvm / 1000.0,
               static_cast<double>(rvm) / static_cast<double>(rlvm));
    table.BeginRow();
    table.Value("writes_per_tx", writes);
    table.Value("rvm_cycles_per_tx", rvm);
    table.Value("rlvm_cycles_per_tx", rlvm);
    table.Value("speedup", static_cast<double>(rvm) / static_cast<double>(rlvm));
  }
  std::printf("\n");
  bench::WriteJsonIfRequested(opts, table);

  if (!opts.profile_path.empty() || !opts.waterfall_path.empty()) {
    // Profile the long-transaction RLVM case the ablation argues for.
    PerTransactionCycles<Rlvm>(256, opts.profile_path, opts.waterfall_path);
  }
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
