// Ablation A4: the cost of one logged write across every mechanism the
// paper discusses (Sections 4.5, 4.6, 5.1, 5.3).
//
//   - unlogged write (baseline)
//   - LVM, bus logger (prototype): write-through word
//   - LVM, on-chip logger (next generation): copyback write + record DMA
//   - page-protect trap per write (the OS-only approach: >300 cycles)
//   - instrumented application code (software write barrier)
#include <cstdio>

#include "bench/bench_profile.h"
#include "bench/bench_util.h"
#include "src/ckpt/page_protect.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

constexpr uint32_t kBytes = 64 * kPageSize;
constexpr uint32_t kWrites = 5000;
constexpr uint32_t kSpacing = 60;  // Compute cycles between writes.

double LvmWriteCost(LoggerKind kind, bool logged,
                    const std::string& profile_path = std::string(),
                    const std::string& waterfall_path = std::string()) {
  LvmConfig config;
  config.logger_kind = kind;
  LvmSystem system(config);
  bench::EnableProfilerIfRequested(profile_path, &system);
  bench::EnableWaterfallIfRequested(waterfall_path, &system);
  Cpu& cpu = system.cpu();
  StdSegment* segment = system.CreateSegment(kBytes);
  Region* region = system.CreateRegion(segment);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  if (logged) {
    LogSegment* log = system.CreateLogSegment(64);
    system.AttachLog(region, log);
  }
  system.Activate(as);
  system.TouchRegion(&cpu, region);
  cpu.DrainWriteBuffer();
  Cycles t0 = cpu.now();
  for (uint32_t i = 0; i < kWrites; ++i) {
    cpu.Write(base + 4 * (i % (kBytes / 4)), i);
    cpu.Compute(kSpacing);
  }
  cpu.DrainWriteBuffer();
  double per_write =
      static_cast<double>(cpu.now() - t0 - static_cast<Cycles>(kWrites) * kSpacing) /
      kWrites;
  bench::WriteProfileIfRequested(profile_path, system);
  bench::WriteWaterfallIfRequested(waterfall_path, system);
  return per_write;
}

double TrapWriteCost() {
  LvmSystem system;
  PageProtectWriteLogger logger(&system, kBytes);
  Cpu& cpu = system.cpu();
  logger.Write(&cpu, 0, 0);
  Cycles t0 = cpu.now();
  for (uint32_t i = 0; i < kWrites; ++i) {
    logger.Write(&cpu, 4 * (i % (kBytes / 4)), i);
    cpu.Compute(kSpacing);
  }
  return static_cast<double>(cpu.now() - t0 - static_cast<Cycles>(kWrites) * kSpacing) /
         kWrites;
}

double InstrumentedWriteCost() {
  // Software write barrier: the data write plus an explicit record append
  // into an ordinary (unlogged) log buffer, as inserted logging code does.
  LvmSystem system;
  Cpu& cpu = system.cpu();
  StdSegment* data = system.CreateSegment(kBytes);
  StdSegment* log = system.CreateSegment(kBytes);
  Region* data_region = system.CreateRegion(data);
  Region* log_region = system.CreateRegion(log);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr data_base = as->BindRegion(data_region);
  VirtAddr log_base = as->BindRegion(log_region);
  system.Activate(as);
  system.TouchRegion(&cpu, data_region);
  system.TouchRegion(&cpu, log_region);
  Cycles t0 = cpu.now();
  uint32_t tail = 0;
  for (uint32_t i = 0; i < kWrites; ++i) {
    VirtAddr addr = data_base + 4 * (i % (kBytes / 4));
    cpu.Write(addr, i);
    // The barrier: store the address and value, bump the tail, check for
    // wrap (a handful of instructions per logged store).
    cpu.Write(log_base + tail, addr);
    cpu.Write(log_base + tail + 4, i);
    cpu.Compute(6);  // Tail arithmetic + wrap test.
    tail = (tail + 8) % kBytes;
    cpu.Compute(kSpacing);
  }
  return static_cast<double>(cpu.now() - t0 - static_cast<Cycles>(kWrites) * kSpacing) /
         kWrites;
}

void Run(const bench::Options& opts) {
  const char* claim =
      "LVM ~write-through cost; page-protect traps >300 cycles (Section 5.1); "
      "instrumented code taxes every store";
  bench::Header("Ablation A4: Cost of One Logged Write, Mechanism by Mechanism", claim);
  bench::JsonTable table("ablation_pageprotect", claim);

  struct Mechanism {
    const char* label;
    const char* key;
    double cycles_per_write;
  };
  const Mechanism mechanisms[] = {
      {"unlogged (baseline)", "unlogged", LvmWriteCost(LoggerKind::kBusLogger, false)},
      {"LVM, bus logger (prototype)", "lvm_bus_logger",
       LvmWriteCost(LoggerKind::kBusLogger, true)},
      {"LVM, on-chip logger (Section 4.6)", "lvm_onchip_logger",
       LvmWriteCost(LoggerKind::kOnChip, true)},
      {"instrumented code (write barrier)", "instrumented_code", InstrumentedWriteCost()},
      {"page-protect trap per write", "page_protect_trap", TrapWriteCost()},
  };

  std::printf("%-34s %-14s\n", "mechanism", "cycles/write");
  for (const Mechanism& m : mechanisms) {
    bench::Row("%-34s %-14.2f", m.label, m.cycles_per_write);
    table.BeginRow();
    table.Value("mechanism", m.key);
    table.Value("cycles_per_write", m.cycles_per_write);
  }
  std::printf("\n");
  bench::WriteJsonIfRequested(opts, table);

  if (!opts.profile_path.empty() || !opts.waterfall_path.empty()) {
    // Profile the prototype mechanism the paper builds: the bus logger.
    LvmWriteCost(LoggerKind::kBusLogger, true, opts.profile_path, opts.waterfall_path);
  }
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
