// Ablation A1: next-generation on-chip logger (Section 4.6) versus the
// prototype's bus logger.
//
// With logging support inside the CPU's VM unit there are no FIFOs to
// overload and no write-through mode: a logged write should cost
// essentially the same as an unlogged write (plus the bus overhead of the
// record), at any write rate.
#include <cstdio>

#include "bench/bench_profile.h"
#include "bench/bench_util.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

struct Point {
  double cycles_per_write = 0;
  uint64_t overloads = 0;
};

Point Measure(LoggerKind kind, bool logged, uint32_t compute,
              const std::string& profile_path = std::string(),
              const std::string& waterfall_path = std::string()) {
  LvmConfig config;
  config.logger_kind = kind;
  LvmSystem system(config);
  bench::EnableProfilerIfRequested(profile_path, &system);
  bench::EnableWaterfallIfRequested(waterfall_path, &system);
  Cpu& cpu = system.cpu();
  uint32_t span = 64 * kPageSize;
  StdSegment* segment = system.CreateSegment(span);
  Region* region = system.CreateRegion(segment);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  if (logged) {
    LogSegment* log = system.CreateLogSegment(128);
    system.AttachLog(region, log);
  }
  system.Activate(as);
  system.TouchRegion(&cpu, region);
  cpu.DrainWriteBuffer();

  constexpr uint32_t kIterations = 20000;
  Cycles start = cpu.now();
  uint32_t address = 0;
  for (uint32_t i = 0; i < kIterations; ++i) {
    cpu.Compute(compute);
    cpu.Write(base + address, i);
    address = (address + 4) % span;
  }
  cpu.DrainWriteBuffer();
  Point point;
  point.cycles_per_write =
      static_cast<double>(cpu.now() - start - static_cast<Cycles>(kIterations) * compute) /
      kIterations;
  point.overloads = system.overload_suspensions();
  bench::WriteProfileIfRequested(profile_path, system);
  bench::WriteWaterfallIfRequested(waterfall_path, system);
  return point;
}

void Run(const bench::Options& opts) {
  const char* claim =
      "on-chip: logged ~= unlogged at any rate, no overload; bus logger "
      "overloads below c~27";
  bench::Header("Ablation A1: On-chip Logger (Section 4.6) vs Bus Logger", claim);
  bench::JsonTable table("ablation_onchip", claim);

  std::printf("%-8s %-14s %-16s %-14s %-12s\n", "c", "bus logged", "onchip logged",
              "unlogged", "bus overloads");
  for (uint32_t c : {0u, 5u, 10u, 20u, 27u, 40u, 80u, 200u}) {
    Point bus = Measure(LoggerKind::kBusLogger, true, c);
    Point onchip = Measure(LoggerKind::kOnChip, true, c);
    Point plain = Measure(LoggerKind::kBusLogger, false, c);
    bench::Row("%-8u %-14.2f %-16.2f %-14.2f %-12llu", c, bus.cycles_per_write,
               onchip.cycles_per_write, plain.cycles_per_write,
               static_cast<unsigned long long>(bus.overloads));
    table.BeginRow();
    table.Value("c", c);
    table.Value("bus_logged_cycles_per_write", bus.cycles_per_write);
    table.Value("onchip_logged_cycles_per_write", onchip.cycles_per_write);
    table.Value("unlogged_cycles_per_write", plain.cycles_per_write);
    table.Value("bus_overloads", bus.overloads);
  }
  std::printf("\n");
  bench::WriteJsonIfRequested(opts, table);

  if (!opts.profile_path.empty() || !opts.waterfall_path.empty()) {
    // Profile the bus logger at c=0, the overload-dominated contrast case.
    Measure(LoggerKind::kBusLogger, true, 0, opts.profile_path, opts.waterfall_path);
  }
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
