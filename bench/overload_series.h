// The Section 4.5.3 measurement series shared by the Figure 11 and Figure
// 12 benchmarks: iterations of c compute cycles plus one logged write.
#ifndef BENCH_OVERLOAD_SERIES_H_
#define BENCH_OVERLOAD_SERIES_H_

#include <cstdint>
#include <string>

#include "bench/bench_profile.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace bench {

struct OverloadSeries {
  double cycles_per_iteration = 0;
  double overloads_per_1000 = 0;
};

// Runs one point of the series. When `trace_path` is non-empty the run is
// traced (bounded event budget; overload interrupt/drain spans cluster at
// low c, so the drop-new policy still captures them) and the Chrome trace
// is written before the system is torn down. When `profile_path` is
// non-empty the run is profiled and the lvm.profile.v1 export written: at
// low c the CPU lane is dominated by overload/park and the logger lane by
// log/drain — the attribution of the paper's overload threshold.
inline OverloadSeries RunOverloadSeries(bool logged, uint32_t compute,
                                        uint32_t iterations = 20000,
                                        const std::string& trace_path = std::string(),
                                        const std::string& profile_path = std::string(),
                                        const std::string& waterfall_path = std::string()) {
  LvmSystem system;
  if (!trace_path.empty()) {
    system.EnableTracing(1u << 16);
  }
  EnableProfilerIfRequested(profile_path, &system);
  EnableWaterfallIfRequested(waterfall_path, &system);
  Cpu& cpu = system.cpu();
  uint32_t span = 64 * kPageSize;
  StdSegment* segment = system.CreateSegment(span);
  Region* region = system.CreateRegion(segment);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  if (logged) {
    LogSegment* log = system.CreateLogSegment(128);
    system.AttachLog(region, log);
  }
  system.Activate(as);
  system.TouchRegion(&cpu, region);
  cpu.DrainWriteBuffer();

  Cycles start = cpu.now();
  uint32_t address = 0;
  for (uint32_t i = 0; i < iterations; ++i) {
    cpu.Compute(compute);
    cpu.Write(base + address, i);
    address = (address + 4) % span;
  }
  cpu.DrainWriteBuffer();

  OverloadSeries series;
  series.cycles_per_iteration = static_cast<double>(cpu.now() - start) / iterations;
  series.overloads_per_1000 =
      1000.0 * static_cast<double>(system.overload_suspensions()) / iterations;
  if (!trace_path.empty()) {
    system.WriteTrace(trace_path);
  }
  WriteProfileIfRequested(profile_path, system);
  WriteWaterfallIfRequested(waterfall_path, system);
  return series;
}

}  // namespace bench
}  // namespace lvm

#endif  // BENCH_OVERLOAD_SERIES_H_
