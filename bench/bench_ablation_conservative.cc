// Ablation A6: optimistic (Time Warp + LVM) versus conservative execution.
//
// Section 2.4: "a process proceeding ahead in virtual time can be thought
// of as performing speculative execution as an alternative to going idle
// waiting for the bottleneck process, as would occur in conservative
// simulation." A closed queueing network with mostly-local routing is run
// on four processors under (a) conservative lookahead-limited execution,
// (b) Time Warp with copy-based state saving, and (c) Time Warp with LVM
// state saving, sweeping the routing locality (more remote traffic = more
// rollbacks for the optimists, but also more synchronization for the
// conservatives).
#include <cstdio>
#include <vector>

#include "bench/bench_profile.h"
#include "bench/bench_util.h"
#include "src/timewarp/models.h"
#include "src/timewarp/simulation.h"

namespace lvm {
namespace {

struct RunResult {
  Cycles elapsed = 0;
  uint64_t events = 0;
  uint64_t rollbacks = 0;
};

RunResult RunOne(bool conservative, StateSaving saving, double locality,
                 const std::vector<Event>& bootstrap,
                 const std::string& profile_path = std::string(),
                 const std::string& waterfall_path = std::string()) {
  QueueingNetworkModel::Params params;
  params.compute_cycles = 1500;
  params.locality = locality;
  params.locality_domain = 4;
  QueueingNetworkModel model(params);

  LvmConfig machine_config;
  machine_config.num_cpus = 4;
  LvmSystem system(machine_config);
  bench::EnableProfilerIfRequested(profile_path, &system);
  bench::EnableWaterfallIfRequested(waterfall_path, &system);

  TimeWarpConfig config;
  config.num_schedulers = 4;
  config.objects_per_scheduler = 4;
  config.object_size = 64;
  config.state_saving = saving;
  config.cult_interval = 64;
  config.conservative = conservative;
  config.lookahead = model.MinIncrement();
  TimeWarpSimulation sim(&system, &model, config);
  for (const Event& event : bootstrap) {
    sim.Bootstrap(event);
  }
  sim.Run(2000);
  RunResult result{sim.ElapsedCycles(), sim.total_events_processed(), sim.total_rollbacks()};
  bench::WriteProfileIfRequested(profile_path, system);
  bench::WriteWaterfallIfRequested(waterfall_path, system);
  return result;
}

void Run(const bench::Options& opts) {
  const char* claim =
      "speculation replaces idling; LVM removes the speculation's state-saving "
      "tax (Section 2.4)";
  bench::Header("Ablation A6: Optimistic (Time Warp) vs Conservative Execution", claim);
  bench::JsonTable table("ablation_conservative", claim);

  std::vector<Event> bootstrap;
  Rng rng(8080);
  for (int job = 0; job < 8; ++job) {
    bootstrap.push_back(QueueingNetworkModel::JobArrival(
        1 + rng.Uniform(4), static_cast<uint32_t>(rng.Uniform(16)), rng.Next64()));
  }

  std::printf("%-10s %-22s %-22s %-22s %-10s\n", "locality", "conservative (kcyc)",
              "optimistic+copy (kcyc)", "optimistic+LVM (kcyc)", "rollbacks");
  for (double locality : {0.95, 0.8, 0.5, 0.0}) {
    RunResult conservative = RunOne(true, StateSaving::kCopy, locality, bootstrap);
    RunResult copy = RunOne(false, StateSaving::kCopy, locality, bootstrap);
    RunResult lvm = RunOne(false, StateSaving::kLvm, locality, bootstrap);
    bench::Row("%-10.2f %-22.0f %-22.0f %-22.0f %llu", locality,
               conservative.elapsed / 1000.0, copy.elapsed / 1000.0, lvm.elapsed / 1000.0,
               static_cast<unsigned long long>(lvm.rollbacks));
    table.BeginRow();
    table.Value("locality", locality);
    table.Value("conservative_cycles", conservative.elapsed);
    table.Value("optimistic_copy_cycles", copy.elapsed);
    table.Value("optimistic_lvm_cycles", lvm.elapsed);
    table.Value("lvm_rollbacks", lvm.rollbacks);
  }
  std::printf("\n");
  bench::WriteJsonIfRequested(opts, table);

  if (!opts.profile_path.empty() || !opts.waterfall_path.empty()) {
    // Profile the rollback-heavy point: optimistic+LVM with no locality.
    RunOne(false, StateSaving::kLvm, 0.0, bootstrap, opts.profile_path,
           opts.waterfall_path);
  }
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
