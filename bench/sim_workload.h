// The Section 4.3 "'simulated' simulation" forward-execution workload used
// by the Figure 7 and Figure 8 benchmarks.
//
// Per event: the scheduler's LVT marker write, the state-saving work
// (nothing for LVM, an object copy for the conventional approach), w word
// writes to an object of s bytes, and c cycles of computation. As in the
// paper, the measurements exclude rollbacks, GVT advancement and log
// truncation (checkpoint maintenance runs but its cycles are subtracted).
#ifndef BENCH_SIM_WORKLOAD_H_
#define BENCH_SIM_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "bench/bench_profile.h"
#include "src/lvm/lvm_system.h"
#include "src/timewarp/copy_state_saver.h"
#include "src/timewarp/lvm_state_saver.h"
#include "src/timewarp/simulation.h"

namespace lvm {
namespace bench {

struct ForwardParams {
  uint32_t compute_cycles = 512;  // c
  uint32_t object_size = 64;      // s (bytes)
  uint32_t writes = 2;            // w (word writes per event)
  uint32_t objects = 16;
  uint32_t events = 20000;
  uint32_t checkpoint_every = 2048;  // CULT interval (cycles excluded).
};

struct ForwardResult {
  Cycles elapsed = 0;           // Event-processing cycles (CULT excluded).
  uint64_t overload_events = 0; // Logger overload suspensions (LVM only).
};

// `profile_path`: when non-empty, the run is profiled and the
// lvm.profile.v1 export written before teardown (see bench_profile.h).
// `waterfall_path`: same contract for the lvm.waterfall.v1 trace.
inline ForwardResult RunForward(StateSaving saving, const ForwardParams& params,
                                const std::string& profile_path = std::string(),
                                const std::string& waterfall_path = std::string()) {
  LvmSystem system;
  EnableProfilerIfRequested(profile_path, &system);
  EnableWaterfallIfRequested(waterfall_path, &system);
  Cpu& cpu = system.cpu();
  std::unique_ptr<StateSaver> saver;
  if (saving == StateSaving::kLvm) {
    saver = std::make_unique<LvmStateSaver>();
  } else {
    saver = std::make_unique<CopyStateSaver>();
  }
  AddressSpace* as = system.CreateAddressSpace();
  uint32_t bytes = Scheduler::kStateHeaderBytes + params.objects * params.object_size;
  StateSaver::StateLayout layout = saver->Setup(&system, as, bytes);
  system.Activate(as);

  // Fault everything in before timing.
  for (Region* r : as->regions()) {
    system.TouchRegion(&cpu, r);
  }
  cpu.DrainWriteBuffer();

  Cycles excluded = 0;
  Cycles start = cpu.now();
  for (uint32_t e = 0; e < params.events; ++e) {
    VirtualTime t = e + 1;
    uint32_t object = e % params.objects;
    VirtAddr object_base =
        layout.state_base + Scheduler::kStateHeaderBytes + object * params.object_size;

    saver->OnLvtAdvance(&cpu, t);
    Event event;
    event.time = t;
    event.target_object = object;
    saver->BeforeEvent(&cpu, event, object_base, params.object_size);
    for (uint32_t w = 0; w < params.writes; ++w) {
      uint32_t offset = ((static_cast<uint64_t>(e) * params.writes + w) * 4) %
                        params.object_size;
      cpu.Write(object_base + offset, e * 2654435761u + w);
    }
    cpu.Compute(params.compute_cycles);

    if ((e + 1) % params.checkpoint_every == 0) {
      // Checkpoint maintenance runs for realism but does not count: the
      // paper's Figure 7/8 measurements exclude CULT.
      Cycles t0 = cpu.now();
      saver->AdvanceCheckpoint(&cpu, t + 1);
      cpu.DrainWriteBuffer();
      excluded += cpu.now() - t0;
    }
  }
  cpu.DrainWriteBuffer();

  ForwardResult result;
  result.elapsed = cpu.now() - start - excluded;
  result.overload_events = system.overload_suspensions();
  WriteProfileIfRequested(profile_path, system);
  WriteWaterfallIfRequested(waterfall_path, system);
  return result;
}

// Speedup of LVM state saving over copy-based state saving for one
// parameter point (elapsed-time ratio, as Figures 7 and 8 plot).
inline double ForwardSpeedup(const ForwardParams& params, uint64_t* overloads = nullptr) {
  ForwardResult copy = RunForward(StateSaving::kCopy, params);
  ForwardResult lvm = RunForward(StateSaving::kLvm, params);
  if (overloads != nullptr) {
    *overloads = lvm.overload_events;
  }
  return static_cast<double>(copy.elapsed) / static_cast<double>(lvm.elapsed);
}

}  // namespace bench
}  // namespace lvm

#endif  // BENCH_SIM_WORKLOAD_H_
