// Table 2: basic machine performance.
//
//   Operation            Total time   Bus time
//   Word write-through   6 cycles     5 cycles
//   Cache block write    9 cycles     8 cycles
//   Log-record DMA       18 cycles    8 cycles
//
// Measures each operation on the simulated machine: the write-through word
// end to end (with bus occupancy deltas), the block writeback charge, and
// the logger's per-record DMA rate observed during an overload drain.
#include <cstdio>

#include "bench/bench_profile.h"
#include "bench/bench_util.h"
#include "src/logger/hardware_logger.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

// Measures the per-record drain rate of the logger by timing an overload
// drain of a full FIFO.
Cycles MeasureDmaRate() {
  struct Client : LoggerFaultClient {
    explicit Client(HardwareLogger* hw_logger) : logger(hw_logger) {}
    bool OnMappingFault(PhysAddr, Cycles) override { return false; }
    bool OnLogTailFault(uint32_t log_index, Cycles) override {
      logger->log_table().SetTail(log_index, next_frame);
      next_frame += kPageSize;
      return true;
    }
    void OnOverload(Cycles interrupt_time, Cycles drain_complete) override {
      drain_cycles = drain_complete - interrupt_time;
    }
    HardwareLogger* logger;
    PhysAddr next_frame = 0x40000;
    Cycles drain_cycles = 0;
  };

  MachineParams params;
  PhysicalMemory memory(1u << 20);
  Bus bus;
  HardwareLogger logger(&params, &memory, &bus);
  Client client(&logger);
  logger.set_fault_client(&client);
  uint32_t index = 0;
  logger.log_table().Allocate(LogMode::kNormal, &index);
  logger.page_mapping_table().Load(0x10000, static_cast<uint16_t>(index));
  uint32_t n = params.logger_fifo_threshold;
  for (uint32_t i = 0; i < n + 4; ++i) {
    // All at time 0: an instantaneous burst that forces the overload drain.
    logger.OnBusWrite(0x10000 + 4 * (i % 1024), i, 4, true, 0, 0);
  }
  return client.drain_cycles / n;
}

void Run(const bench::Options& opts) {
  const char* claim =
      "word write-through 6 cyc (5 bus); cache block write 9 (8); "
      "log-record DMA 18 (8)";
  bench::Header("Table 2: Basic Machine Performance", claim);
  bench::JsonTable table("table2_machine", claim);

  LvmSystem system;
  // The bench's own system persists across the measurements, so it is its
  // own representative profiled run (MeasureDmaRate's raw logger excepted).
  bench::EnableProfilerIfRequested(opts.profile_path, &system);
  bench::EnableWaterfallIfRequested(opts.waterfall_path, &system);
  Cpu& cpu = system.cpu();
  const MachineParams& params = system.machine().params();

  // A logged region gives us write-through pages.
  StdSegment* segment = system.CreateSegment(16 * kPageSize);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment(64);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  system.TouchRegion(&cpu, region);

  // --- Word write-through: one isolated write, end to end. ---
  cpu.DrainWriteBuffer();
  cpu.Compute(10000);
  Cycles t0 = cpu.now();
  uint64_t bus0 = system.machine().bus().busy_cycles();
  cpu.Write(base + 0x100, 42);
  cpu.DrainWriteBuffer();
  Cycles write_through_total = cpu.now() - t0;
  auto write_through_bus =
      static_cast<Cycles>(system.machine().bus().busy_cycles() - bus0);

  // --- Cache block write: writing one dirty line back to the bus. ---
  system.FlushSegment(&cpu, segment);  // Clean slate.
  cpu.Write(base + 0x200, 7);
  cpu.DrainWriteBuffer();
  t0 = cpu.now();
  system.FlushSegment(&cpu, segment);  // Exactly one dirty line now.
  Cycles block_write_total = cpu.now() - t0;

  // --- Log-record DMA rate. ---
  Cycles dma_rate = MeasureDmaRate();

  std::printf("%-26s %-10s %-10s %s\n", "Operation", "Total", "Bus", "Paper");
  bench::Row("%-26s %-10llu %-10llu %s", "Word write-through",
             static_cast<unsigned long long>(write_through_total),
             static_cast<unsigned long long>(write_through_bus), "6 (5 bus)");
  bench::Row("%-26s %-10llu %-10u %s", "Cache block write",
             static_cast<unsigned long long>(block_write_total), params.cache_block_write_bus,
             "9 (8 bus)");
  bench::Row("%-26s %-10llu %-10u %s", "Log-record DMA",
             static_cast<unsigned long long>(dma_rate), params.log_record_dma_bus,
             "18 (8 bus)");
  std::printf("\n");

  table.BeginRow();
  table.Value("operation", "word_write_through");
  table.Value("total_cycles", write_through_total);
  table.Value("bus_cycles", write_through_bus);
  table.Value("paper_total_cycles", 6);
  table.BeginRow();
  table.Value("operation", "cache_block_write");
  table.Value("total_cycles", block_write_total);
  table.Value("bus_cycles", params.cache_block_write_bus);
  table.Value("paper_total_cycles", 9);
  table.BeginRow();
  table.Value("operation", "log_record_dma");
  table.Value("total_cycles", dma_rate);
  table.Value("bus_cycles", params.log_record_dma_bus);
  table.Value("paper_total_cycles", 18);
  bench::WriteJsonIfRequested(opts, table);
  bench::WriteProfileIfRequested(opts.profile_path, system);
  bench::WriteWaterfallIfRequested(opts.waterfall_path, system);
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
