// Parallel engine scaling: simulated log-append throughput versus worker
// count.
//
// Each worker drives its own CPU through a paced logged-write loop against
// a private region and log shard (src/par). Throughput is measured in
// *simulated* time — records per simulated second at 25 MHz, using the
// maximum CPU cycle count as the makespan — consistent with the rest of
// the benchmarks; host wall-clock time is reported informationally only
// (the suite also runs on single-core CI machines, where wall time says
// nothing about the engine). With per-CPU shards replacing the global
// write FIFO and the bus free-running, workers' simulated timelines are
// independent and throughput must scale near-linearly.
//
// Each worker count is run twice: detector-off (the baseline rows CI greps
// for) and with the guest race detector enabled. The detector charges no
// simulated cycles, so racecheck_overhead_x must stay at 1.0 in simulated
// time (the acceptance bound is 2.5x); the detector's real cost is host
// wall time, reported per row.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_profile.h"
#include "bench/bench_util.h"
#include "src/lvm/log_reader.h"
#include "src/lvm/lvm_system.h"
#include "src/par/engine.h"

namespace lvm {
namespace {

constexpr uint32_t kWritesPerWorker = 40000;
// Pacing above the 27-cycle shard service rate, so rings stay shallow and
// the measurement is the steady-state logging path, not overload.
constexpr uint32_t kComputeCycles = 32;

struct ScalingPoint {
  int workers = 0;
  uint64_t records = 0;
  Cycles makespan = 0;  // max over CPUs of cycles consumed.
  double records_per_sim_sec = 0;
  double wall_ms = 0;
  uint64_t race_reports = 0;
};

ScalingPoint RunWorkers(int workers, bool racecheck,
                        const std::string& profile_path = std::string(),
                        uint32_t writes_per_worker = kWritesPerWorker,
                        const std::string& waterfall_path = std::string()) {
  LvmConfig config;
  config.num_cpus = workers;
  LvmSystem system(config);
  if (!profile_path.empty()) {
    // Default config, wall sampling included: this is the run the <=5%
    // enabled-overhead acceptance bound is measured on.
    system.EnableProfiler();
  }
  bench::EnableWaterfallIfRequested(waterfall_path, &system);
  if (racecheck) {
    system.EnableRaceDetection();
  }
  AddressSpace* as = system.CreateAddressSpace();
  std::vector<Region*> regions;
  std::vector<LogSegment*> logs;
  std::vector<VirtAddr> bases;
  for (int i = 0; i < workers; ++i) {
    Region* region = system.CreateRegion(system.CreateSegment(4 * kPageSize));
    bases.push_back(as->BindRegion(region));
    LogSegment* log = system.CreateLogSegment(8);
    system.AttachLog(region, log);
    regions.push_back(region);
    logs.push_back(log);
  }
  for (int i = 0; i < workers; ++i) {
    system.Activate(as, i);
  }

  par::ParallelEngine engine(&system, par::EngineConfig{});
  for (int i = 0; i < workers; ++i) {
    system.TouchRegion(&system.cpu(i), regions[i]);
    VirtAddr base = bases[i];
    engine.AddWorker(logs[i], [base, writes_per_worker](Cpu& cpu, uint64_t step) {
      cpu.Write(base + 4 * (step % 4096), static_cast<uint32_t>(step));
      cpu.Compute(kComputeCycles);
      return step + 1 < writes_per_worker;
    });
  }

  auto start = std::chrono::steady_clock::now();
  engine.Run();
  auto end = std::chrono::steady_clock::now();

  ScalingPoint point;
  point.workers = workers;
  for (int i = 0; i < workers; ++i) {
    LogReader reader(system.memory(), *logs[i]);
    point.records += reader.size();
    Cycles cycles = system.cpu(i).now();
    if (cycles > point.makespan) {
      point.makespan = cycles;
    }
  }
  point.records_per_sim_sec =
      static_cast<double>(point.records) / bench::CyclesToSeconds(point.makespan);
  point.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(end - start)
          .count();
  point.race_reports = static_cast<uint64_t>(system.GetRaceReports().size());
  bench::WriteProfileIfRequested(profile_path, system);
  bench::WriteWaterfallIfRequested(waterfall_path, system);
  return point;
}

void Run(const bench::Options& opts) {
  const char* claim =
      "sharded per-CPU log append scales near-linearly in simulated time: "
      ">=2.5x records/sec at 4 workers vs 1";
  bench::Header("Parallel Scaling: Sharded Log Append Throughput", claim);
  bench::JsonTable table("parallel_scaling", claim);

  std::printf("%-8s %-12s %-14s %-18s %-10s %-10s %-12s\n", "workers", "records", "makespan",
              "records/sim-sec", "speedup", "wall ms", "racecheck x");
  double baseline = 0;
  for (int workers : {1, 2, 4, 8}) {
    ScalingPoint point = RunWorkers(workers, /*racecheck=*/false);
    ScalingPoint checked = RunWorkers(workers, /*racecheck=*/true);
    if (workers == 1) {
      baseline = point.records_per_sim_sec;
    }
    double speedup = point.records_per_sim_sec / baseline;
    // Simulated-time slowdown factor with the detector on (1.0 = free).
    double overhead = point.records_per_sim_sec / checked.records_per_sim_sec;
    bench::Row("%-8d %-12llu %-14llu %-18.0f %-10.2f %-10.2f %-12.2f", point.workers,
               static_cast<unsigned long long>(point.records),
               static_cast<unsigned long long>(point.makespan), point.records_per_sim_sec,
               speedup, point.wall_ms, overhead);
    table.BeginRow();
    table.Value("workers", point.workers);
    table.Value("records", point.records);
    table.Value("makespan_cycles", point.makespan);
    table.Value("records_per_sim_sec", point.records_per_sim_sec);
    table.Value("speedup_vs_1", speedup);
    table.Value("wall_ms", point.wall_ms);
    table.Value("racecheck_records_per_sim_sec", checked.records_per_sim_sec);
    table.Value("racecheck_overhead_x", overhead);
    table.Value("racecheck_wall_ms", checked.wall_ms);
    table.Value("racecheck_reports", checked.race_reports);
  }
  std::printf("\n");
  bench::WriteJsonIfRequested(opts, table);

  if (!opts.profile_path.empty()) {
    // Dedicated profiled run at 4 workers, against an unprofiled twin.
    // Charges never advance simulated clocks, so the makespans must be
    // identical; the host wall-clock overhead is reported informationally
    // (acceptance bound: <=5% at the default sampling config). The
    // comparison runs a 4x-longer workload as six back-to-back
    // plain/profiled pairs and reports the median per-pair ratio: host
    // interference is bursty but temporally correlated, so it largely
    // cancels within a pair, and the median discards pairs that straddled
    // a burst. Pairs alternate ABBA order so a load ramp across the trial
    // doesn't systematically penalize whichever side runs second.
    constexpr uint32_t kOverheadWrites = 4 * kWritesPerWorker;
    constexpr int kOverheadPairs = 6;
    ScalingPoint plain, profiled;
    std::vector<double> ratios;
    for (int rep = 0; rep < kOverheadPairs; ++rep) {
      if (rep % 2 == 0) {
        plain = RunWorkers(4, /*racecheck=*/false, std::string(), kOverheadWrites);
        profiled = RunWorkers(4, /*racecheck=*/false, opts.profile_path, kOverheadWrites);
      } else {
        profiled = RunWorkers(4, /*racecheck=*/false, opts.profile_path, kOverheadWrites);
        plain = RunWorkers(4, /*racecheck=*/false, std::string(), kOverheadWrites);
      }
      if (plain.wall_ms > 0) {
        ratios.push_back(profiled.wall_ms / plain.wall_ms);
      }
    }
    std::sort(ratios.begin(), ratios.end());
    double overhead_pct =
        ratios.empty() ? 0.0 : 100.0 * (ratios[ratios.size() / 2] - 1.0);
    std::printf("profiler: makespan %llu -> %llu cycles (%s), wall %.2f -> %.2f ms "
                "(%+.1f%% median overhead over %d pairs)\n",
                static_cast<unsigned long long>(plain.makespan),
                static_cast<unsigned long long>(profiled.makespan),
                plain.makespan == profiled.makespan ? "unperturbed" : "PERTURBED",
                plain.wall_ms, profiled.wall_ms, overhead_pct, kOverheadPairs);
  }

  if (!opts.waterfall_path.empty()) {
    // Dedicated traced run at 4 workers: the per-CPU shard path is the
    // hop sequence this bench exists to exercise.
    RunWorkers(4, /*racecheck=*/false, std::string(), kWritesPerWorker,
               opts.waterfall_path);
  }
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
