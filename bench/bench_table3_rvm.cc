// Table 3: performance of RVM with and without LVM.
//
//   Benchmark            RVM              RLVM
//   Single write         3515 cycles      ~16 cycles
//   TPC-A throughput     418 trans/sec    552 trans/sec
//
// The single-write row measures one write to recoverable memory including
// everything needed to make it recoverable (set_range bookkeeping and the
// old-value copy under RVM; nothing but the logged write-through under
// RLVM). The TPC-A row runs the debit-credit workload against a RAM-disk
// redo log; LVM removes the in-transaction overhead but not the commit and
// truncation costs, so the throughput gap is far smaller than the
// single-write gap (Section 4.2).
#include <cstdio>
#include <memory>

#include "bench/bench_profile.h"
#include "bench/bench_util.h"
#include "src/rvm/ram_disk.h"
#include "src/rvm/rlvm.h"
#include "src/rvm/rvm.h"
#include "src/tpc/tpca.h"

namespace lvm {
namespace {

// Measures the steady-state cost of one recoverable write.
template <typename StoreT>
Cycles SingleWriteCycles() {
  LvmSystem system;
  RamDisk disk;
  AddressSpace* as = system.CreateAddressSpace();
  StoreT store(&system, as, &disk, 1u << 20);
  system.Activate(as);
  Cpu& cpu = system.cpu();
  VirtAddr a = store.data_base();

  store.Begin(&cpu);
  // Warm up: map the page, load the caches.
  store.SetRange(&cpu, a, 4);
  store.Write(&cpu, a, 1);
  cpu.Compute(5000);

  constexpr int kWrites = 64;
  Cycles elapsed = 0;
  for (int i = 0; i < kWrites; ++i) {
    cpu.Compute(300);  // Spacing between recoverable writes.
    Cycles t0 = cpu.now();
    store.SetRange(&cpu, a + 8 * (i % 16), 4);
    store.Write(&cpu, a + 8 * (i % 16), static_cast<uint32_t>(i));
    cpu.DrainWriteBuffer();  // End to end, including the bus transfer.
    elapsed += cpu.now() - t0;
  }
  store.Commit(&cpu);
  return elapsed / kWrites;
}

template <typename StoreT>
double TpcAThroughput(const std::string& profile_path = std::string(),
                      const std::string& waterfall_path = std::string()) {
  LvmSystem system;
  bench::EnableProfilerIfRequested(profile_path, &system);
  bench::EnableWaterfallIfRequested(waterfall_path, &system);
  RamDisk disk;
  AddressSpace* as = system.CreateAddressSpace();
  StoreT store(&system, as, &disk, 2u << 20);
  system.Activate(as);
  Cpu& cpu = system.cpu();

  TpcAConfig config;
  config.accounts = 10000;
  config.history_slots = 4096;
  TpcA tpc(&store, config);
  tpc.Setup(&cpu);

  constexpr int kTransactions = 2000;
  Cycles t0 = cpu.now();
  for (int i = 0; i < kTransactions; ++i) {
    tpc.RunTransaction(&cpu);
  }
  double seconds = bench::CyclesToSeconds(cpu.now() - t0);
  bench::WriteProfileIfRequested(profile_path, system);
  bench::WriteWaterfallIfRequested(waterfall_path, system);
  return kTransactions / seconds;
}

void Run(const bench::Options& opts) {
  const char* claim =
      "single write 3515 vs ~16 cycles; TPC-A 418 vs 552 trans/sec "
      "(25 MHz, RAM-disk log)";
  bench::Header("Table 3: Performance of RVM with and without LVM", claim);
  bench::JsonTable table("table3_rvm", claim);

  Cycles rvm_write = SingleWriteCycles<Rvm>();
  Cycles rlvm_write = SingleWriteCycles<Rlvm>();
  double rvm_tps = TpcAThroughput<Rvm>();
  // The profiled run is the RLVM TPC-A workload: the interesting cycle mix
  // (logged write-through + commit + truncation) is the LVM-backed one.
  double rlvm_tps = TpcAThroughput<Rlvm>(opts.profile_path, opts.waterfall_path);

  std::printf("%-22s %-16s %-16s %s\n", "Benchmark", "RVM", "RLVM", "Paper (RVM / RLVM)");
  bench::Row("%-22s %-16llu %-16llu %s", "Single write (cycles)",
             static_cast<unsigned long long>(rvm_write),
             static_cast<unsigned long long>(rlvm_write), "3515 / 16");
  bench::Row("%-22s %-16.0f %-16.0f %s", "TPC-A (trans/sec)", rvm_tps, rlvm_tps, "418 / 552");
  bench::Row("%-22s %-16s %.1fx write, %.2fx TPC-A", "Speedup", "",
             static_cast<double>(rvm_write) / static_cast<double>(rlvm_write),
             rlvm_tps / rvm_tps);
  std::printf("\n");

  table.BeginRow();
  table.Value("benchmark", "single_write_cycles");
  table.Value("rvm", rvm_write);
  table.Value("rlvm", rlvm_write);
  table.Value("paper_rvm", 3515);
  table.Value("paper_rlvm", 16);
  table.BeginRow();
  table.Value("benchmark", "tpca_trans_per_sec");
  table.Value("rvm", rvm_tps);
  table.Value("rlvm", rlvm_tps);
  table.Value("paper_rvm", 418);
  table.Value("paper_rlvm", 552);
  bench::WriteJsonIfRequested(opts, table);
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
