// Ablation A9: the Figure 7 comparison run through the *full* Time Warp
// engine (rollbacks, GVT, CULT, anti-messages and engine dispatch costs
// included — everything the paper's Figure 7/8 measurements exclude),
// sweeping the object size on the four-processor machine.
//
// The forward-execution advantage survives the end-to-end overheads once
// objects are large enough; small objects leave copy-based state saving
// competitive because the per-event copy is cheap while log-based rollback
// still pays roll-forward.
#include <cstdio>
#include <vector>

#include "bench/bench_profile.h"
#include "bench/bench_util.h"
#include "src/timewarp/models.h"
#include "src/timewarp/simulation.h"

namespace lvm {
namespace {

struct RunResult {
  Cycles elapsed = 0;
  uint64_t rollbacks = 0;
  double efficiency = 0;
};

RunResult RunOne(StateSaving saving, uint32_t object_size,
                 const std::vector<Event>& bootstrap,
                 const std::string& profile_path = std::string(),
                 const std::string& waterfall_path = std::string()) {
  PholdModel::Params model_params;
  model_params.mean_delay = 8.0;
  model_params.compute_cycles = 1024;
  model_params.writes = 4;
  model_params.locality = 0.95;
  model_params.locality_domain = 8;
  PholdModel model(model_params);

  LvmConfig machine_config;
  machine_config.num_cpus = 4;
  LvmSystem system(machine_config);
  bench::EnableProfilerIfRequested(profile_path, &system);
  bench::EnableWaterfallIfRequested(waterfall_path, &system);

  TimeWarpConfig config;
  config.num_schedulers = 4;
  config.objects_per_scheduler = 8;
  config.object_size = object_size;
  config.state_saving = saving;
  config.cult_interval = 32;
  TimeWarpSimulation sim(&system, &model, config);
  for (const Event& event : bootstrap) {
    sim.Bootstrap(event);
  }
  sim.Run(3000);
  RunResult result{sim.ElapsedCycles(), sim.total_rollbacks(), sim.Efficiency()};
  bench::WriteProfileIfRequested(profile_path, system);
  bench::WriteWaterfallIfRequested(waterfall_path, system);
  return result;
}

void Run(const bench::Options& opts) {
  const char* claim =
      "unlike Figure 7, every overhead (rollback, GVT, CULT, cancellation) "
      "is included; larger objects favour LVM";
  bench::Header("Ablation A9: End-to-end Time Warp, LVM vs copy state saving", claim);
  bench::JsonTable table("ablation_engine", claim);

  std::vector<Event> bootstrap;
  Rng rng(2024);
  for (int job = 0; job < 32; ++job) {
    Event event;
    event.time = 1 + rng.Uniform(8);
    event.target_object = static_cast<uint32_t>(rng.Uniform(32));
    event.payload = rng.Next64();
    bootstrap.push_back(event);
  }

  std::printf("%-14s %-18s %-18s %-10s %-12s %-12s\n", "object bytes", "copy (kcyc)",
              "LVM (kcyc)", "speedup", "rollbacks", "efficiency");
  for (uint32_t size : {64u, 128u, 256u, 512u, 1024u}) {
    RunResult copy = RunOne(StateSaving::kCopy, size, bootstrap);
    RunResult lvm = RunOne(StateSaving::kLvm, size, bootstrap);
    bench::Row("%-14u %-18.0f %-18.0f %-10.3f %-12llu %-12.3f", size, copy.elapsed / 1000.0,
               lvm.elapsed / 1000.0,
               static_cast<double>(copy.elapsed) / static_cast<double>(lvm.elapsed),
               static_cast<unsigned long long>(lvm.rollbacks), lvm.efficiency);
    table.BeginRow();
    table.Value("object_bytes", size);
    table.Value("copy_cycles", copy.elapsed);
    table.Value("lvm_cycles", lvm.elapsed);
    table.Value("speedup", static_cast<double>(copy.elapsed) / static_cast<double>(lvm.elapsed));
    table.Value("lvm_rollbacks", lvm.rollbacks);
    table.Value("lvm_efficiency", lvm.efficiency);
  }
  std::printf("\n");
  bench::WriteJsonIfRequested(opts, table);

  if (!opts.profile_path.empty() || !opts.waterfall_path.empty()) {
    // Profile the LVM end-to-end run at 256-byte objects: rollback and
    // CULT costs appear as timewarp/rollback and ckpt/log centers.
    RunOne(StateSaving::kLvm, 256, bootstrap, opts.profile_path, opts.waterfall_path);
  }
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
