// LvmSystem-side helpers for the benches' `--profile=PATH` option.
//
// Separate from bench_util.h on purpose: bench_hostlvm links only the
// host-side libraries (lvm_hostlvm + lvm_obs) and must not pull in
// src/lvm/lvm_system.h; everything here needs it.
//
// The sweeps tear through many short-lived systems, so the profile is a
// *representative instrumented run*: each bench re-runs one characteristic
// point of its own workload with the profiler enabled and writes the
// lvm.profile.v1 export. Enabling the profiler never advances a simulated
// clock (src/obs/profiler.h rule 1), so the profiled run's numbers are the
// numbers the table showed.
#ifndef BENCH_BENCH_PROFILE_H_
#define BENCH_BENCH_PROFILE_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace bench {

// Enables the profiler on `system` when the run is meant to be profiled
// (`profile_path` non-empty). Wall sampling stays off: bench runs are
// short, and the host-time census would only add noise to the artifact.
inline void EnableProfilerIfRequested(const std::string& profile_path, LvmSystem* system) {
  if (profile_path.empty()) {
    return;
  }
  obs::ProfilerConfig config;
  config.wall_sampling = false;
  system->EnableProfiler(config);
}

// Writes the profile at the end of the instrumented run; exits nonzero on
// I/O failure so scripts/bench.sh catches a broken emitter.
inline void WriteProfileIfRequested(const std::string& profile_path, LvmSystem& system) {
  if (profile_path.empty() || system.profiler() == nullptr) {
    return;
  }
  if (!system.WriteProfile(profile_path)) {
    std::fprintf(stderr, "failed to write %s\n", profile_path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", profile_path.c_str());
}

// Enables the provenance waterfall on `system` when the run is meant to be
// traced (`waterfall_path` non-empty). A dense 1/16 sampling stride: bench
// runs are short and the artifact exists so scripts/bench.sh can validate
// the export and lvm-trace has real records to render. Like the profiler,
// the tracer never advances a simulated clock, so the instrumented run's
// table numbers are unchanged.
inline void EnableWaterfallIfRequested(const std::string& waterfall_path, LvmSystem* system) {
  if (waterfall_path.empty()) {
    return;
  }
  obs::WaterfallConfig config;
  config.sample_shift = 4;
  system->EnableWaterfall(config);
}

// Writes the waterfall export at the end of the instrumented run
// (completing any still-in-flight records at their last stamped hop);
// exits nonzero on I/O failure so scripts/bench.sh catches a broken
// emitter.
inline void WriteWaterfallIfRequested(const std::string& waterfall_path, LvmSystem& system) {
  if (waterfall_path.empty() || system.waterfall() == nullptr) {
    return;
  }
  if (!system.WriteWaterfall(waterfall_path)) {
    std::fprintf(stderr, "failed to write %s\n", waterfall_path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", waterfall_path.c_str());
}

}  // namespace bench
}  // namespace lvm

#endif  // BENCH_BENCH_PROFILE_H_
