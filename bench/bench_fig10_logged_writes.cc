// Figure 10: CPU cost of logged writes.
//
// The Section 4.5.1 loop — per iteration: c compute cycles then a cluster
// of 2, 4 or 8 writes — run once against a logged region and once against
// an ordinary region. Plots cycles per write versus compute cycles per
// iteration. The paper reports overload-induced blowup at small c, then a
// flat region where the logged/unlogged difference is the write-through
// cost, growing with the cluster size the write buffer cannot absorb.
#include <cstdio>

#include "bench/bench_profile.h"
#include "bench/bench_util.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

// Runs the measurement loop; returns cycles per write beyond the compute
// time.
double CyclesPerWrite(bool logged, uint32_t cluster, uint32_t compute,
                      const std::string& profile_path = std::string(),
                      const std::string& waterfall_path = std::string()) {
  LvmSystem system;
  bench::EnableProfilerIfRequested(profile_path, &system);
  bench::EnableWaterfallIfRequested(waterfall_path, &system);
  Cpu& cpu = system.cpu();
  constexpr uint32_t kIterations = 4000;
  uint32_t span = 64 * kPageSize;
  StdSegment* segment = system.CreateSegment(span);
  Region* region = system.CreateRegion(segment);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  if (logged) {
    LogSegment* log = system.CreateLogSegment(64);
    system.AttachLog(region, log);
  }
  system.Activate(as);
  system.TouchRegion(&cpu, region);
  cpu.DrainWriteBuffer();

  Cycles start = cpu.now();
  uint32_t address = 0;
  for (uint32_t i = 0; i < kIterations; ++i) {
    cpu.Compute(compute);
    for (uint32_t w = 0; w < cluster; ++w) {
      // Increasing addresses: hits the second-level cache, not generally
      // the on-chip cache (Section 4.5.1).
      cpu.Write(base + address, i + w);
      address = (address + 4) % span;
    }
  }
  cpu.DrainWriteBuffer();
  Cycles elapsed = cpu.now() - start;
  Cycles write_cycles = elapsed - static_cast<Cycles>(kIterations) * compute;
  bench::WriteProfileIfRequested(profile_path, system);
  bench::WriteWaterfallIfRequested(waterfall_path, system);
  return static_cast<double>(write_cycles) / (static_cast<double>(kIterations) * cluster);
}

void Run(const bench::Options& opts) {
  const char* claim =
      "overload blowup at small c; flat region gap = write-through cost, "
      "growing with cluster size";
  bench::Header("Figure 10: CPU Cost of Logged Writes", claim);
  bench::JsonTable table("fig10_logged_writes", claim);

  const uint32_t clusters[] = {2, 4, 8};
  const uint32_t compute_points[] = {0, 25, 50, 100, 150, 200, 300, 400, 600, 800};

  for (uint32_t cluster : clusters) {
    std::printf("--- cluster of %u writes ---\n", cluster);
    std::printf("%-10s %-18s %-18s\n", "c", "logged cyc/write", "unlogged cyc/write");
    for (uint32_t c : compute_points) {
      double with_logging = CyclesPerWrite(true, cluster, c);
      double without_logging = CyclesPerWrite(false, cluster, c);
      bench::Row("%-10u %-18.2f %-18.2f", c, with_logging, without_logging);
      table.BeginRow();
      table.Value("cluster", cluster);
      table.Value("c", c);
      table.Value("logged_cycles_per_write", with_logging);
      table.Value("unlogged_cycles_per_write", without_logging);
    }
    std::printf("\n");
  }
  bench::WriteJsonIfRequested(opts, table);

  if (!opts.profile_path.empty() || !opts.waterfall_path.empty()) {
    // Profile the flat region of the cluster-of-8 curve: the logged/
    // unlogged gap there is the write-through cost, visible as mem/write
    // plus bus/contention the write buffer could not hide.
    CyclesPerWrite(/*logged=*/true, 8, 200, opts.profile_path, opts.waterfall_path);
  }
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
