// Durable-WAL commit throughput versus the group-commit window (real host,
// wall clock — the durability companion to ablation A5).
//
// Sweeps WalOptions::group_commit_window over a fixed commit workload: each
// run appends the same sequence of framed commits to a fresh arena, then
// reopens and replays it like a recovering process would. A window of 1
// msyncs every commit (the conventional synchronous WAL); wider windows
// amortize the sync over the group, which is where group commit earns its
// keep. The framing work (checksums, block chaining) is identical across
// windows, so the sweep isolates the sync cost.
//
// The deterministic columns (flushes, bytes appended, recovered commits)
// are exact functions of the workload and land in the JSON for regression
// diffing; wall-clock timings use *_wall_ms keys, which scripts/perf_diff.py
// ignores by convention.
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/hostlvm/wal_arena.h"
#include "src/hostlvm/wal_layout.h"
#include "src/obs/profiler.h"
#include "src/obs/waterfall.h"

namespace lvm {
namespace {

constexpr uint64_t kCommits = 2000;
constexpr uint32_t kRecordsPerCommit = 16;
constexpr uint64_t kBlocks = 512;  // Holds the whole workload untruncated.

struct RunResult {
  double append_wall_ms = 0;
  double replay_wall_ms = 0;
  uint64_t bytes_appended = 0;
  uint64_t flushes = 0;
  uint64_t recovered_commits = 0;
};

std::string ArenaPath() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/bench_wal_commit.wal";
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

RunResult RunWindow(uint32_t window) {
  const std::string path = ArenaPath();
  WalOptions options;
  options.blocks = kBlocks;
  options.group_commit_window = window;
  options.group_commit_bytes = ~uint64_t{0};  // The window is the only bound.
  std::string error;
  RunResult result;
  {
    auto wal = WalArena::Create(path, options, &error);
    if (wal == nullptr) {
      std::fprintf(stderr, "WalArena::Create: %s\n", error.c_str());
      std::exit(1);
    }
    std::vector<WalRecord> records(kRecordsPerCommit);
    auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kCommits; ++i) {
      for (uint32_t j = 0; j < kRecordsPerCommit; ++j) {
        records[j].offset = (i * 52 + j * 28) % 4096 & ~uint64_t{3};
        records[j].value = static_cast<uint32_t>(i * kRecordsPerCommit + j + 1);
        records[j].size = 4;
      }
      uint64_t seq = wal->Append(records, /*timestamp_ns=*/i);
      if (seq == 0) {
        std::fprintf(stderr, "WAL arena out of space at commit %llu\n",
                     static_cast<unsigned long long>(i));
        std::exit(1);
      }
    }
    if (!wal->Flush()) {
      std::fprintf(stderr, "final flush failed\n");
      std::exit(1);
    }
    result.append_wall_ms = MsSince(start);
    result.bytes_appended = wal->bytes_appended();
    result.flushes = wal->flushes();
  }
  {
    auto wal = WalArena::Open(path, &error);
    if (wal == nullptr) {
      std::fprintf(stderr, "WalArena::Open: %s\n", error.c_str());
      std::exit(1);
    }
    auto start = std::chrono::steady_clock::now();
    WalRecoveryStats stats = wal->Replay([](const WalRecoveredCommit&) {});
    result.replay_wall_ms = MsSince(start);
    result.recovered_commits = stats.commits_applied;
  }
  std::remove(path.c_str());
  return result;
}

void Run(const bench::Options& opts) {
  const char* claim =
      "group commit amortizes the per-flush msync: throughput rises with the "
      "window while the framed bytes stay constant";
  bench::Header("WAL commit throughput vs group-commit window", claim);
  bench::JsonTable table("wal_commit", claim);

  std::printf("%-10s %-14s %-14s %-12s %-14s %-14s\n", "window", "append (ms)", "commits/s",
              "flushes", "bytes", "replay (ms)");
  for (uint32_t window : {1u, 2u, 4u, 8u, 16u, 32u}) {
    RunResult r = RunWindow(window);
    const double commits_per_sec =
        r.append_wall_ms > 0 ? kCommits * 1000.0 / r.append_wall_ms : 0;
    bench::Row("%-10u %-14.2f %-14.0f %-12llu %-14llu %-14.2f", window, r.append_wall_ms,
               commits_per_sec, static_cast<unsigned long long>(r.flushes),
               static_cast<unsigned long long>(r.bytes_appended), r.replay_wall_ms);
    table.BeginRow();
    table.Value("window", window);
    table.Value("commits", kCommits);
    table.Value("records_per_commit", kRecordsPerCommit);
    table.Value("flushes", r.flushes);
    table.Value("bytes_appended", r.bytes_appended);
    table.Value("recovered_commits", r.recovered_commits);
    table.Value("append_wall_ms", r.append_wall_ms);
    table.Value("replay_wall_ms", r.replay_wall_ms);
  }
  std::printf("\n");
  bench::WriteJsonIfRequested(opts, table);

  if (!opts.waterfall_path.empty()) {
    // Provenance trace of a *separate* small instrumented WAL phase, run
    // after the sweep so sampling never touches the measured loops above.
    // Host-only path: a record's waterfall here is record -> wal_commit ->
    // replay (no simulated log stages).
    obs::WaterfallConfig config;
    config.sample_shift = 4;
    obs::WaterfallTracer waterfall(/*lanes=*/1, config);
    const std::string path = ArenaPath();
    WalOptions options;
    options.blocks = kBlocks;
    std::string error;
    {
      auto wal = WalArena::Create(path, options, &error);
      if (wal == nullptr) {
        std::fprintf(stderr, "WalArena::Create: %s\n", error.c_str());
        std::exit(1);
      }
      wal->set_waterfall(&waterfall);
      std::vector<WalRecord> records(kRecordsPerCommit);
      for (uint64_t i = 0; i < 64; ++i) {
        std::vector<uint64_t> tokens;
        for (uint32_t j = 0; j < kRecordsPerCommit; ++j) {
          records[j].offset = (i * 52 + j * 28) % 4096 & ~uint64_t{3};
          records[j].value = static_cast<uint32_t>(i * kRecordsPerCommit + j + 1);
          records[j].size = 4;
          uint64_t token = waterfall.SampleRecord(/*lane=*/0, /*sim_now=*/0,
                                                  /*queue_depth=*/j);
          if (token != 0) {
            tokens.push_back(token);
          }
        }
        if (wal->Append(records, /*timestamp_ns=*/i, std::move(tokens)) == 0) {
          std::fprintf(stderr, "WAL arena out of space in traced phase\n");
          std::exit(1);
        }
      }
      if (!wal->Flush()) {
        std::fprintf(stderr, "traced-phase flush failed\n");
        std::exit(1);
      }
    }
    {
      auto wal = WalArena::Open(path, &error);
      if (wal == nullptr) {
        std::fprintf(stderr, "WalArena::Open: %s\n", error.c_str());
        std::exit(1);
      }
      wal->set_waterfall(&waterfall);
      wal->Replay([](const WalRecoveredCommit&) {});
    }
    std::remove(path.c_str());
    waterfall.FinishInFlight();
    if (!waterfall.WriteJsonFile(opts.waterfall_path)) {
      std::fprintf(stderr, "failed to write %s\n", opts.waterfall_path.c_str());
      std::exit(1);
    }
    std::printf("wrote %s\n", opts.waterfall_path.c_str());
  }

  if (!opts.profile_path.empty()) {
    // Wall-clock bench: no simulated cycles to attribute. Honour the
    // repo-wide --profile= contract with an empty-but-valid profile.
    obs::ProfilerConfig config;
    config.wall_sampling = false;
    obs::Profiler profiler(1, config);
    std::vector<Cycles> clocks(static_cast<size_t>(profiler.num_lanes()), 0);
    if (!profiler.WriteJsonFile(opts.profile_path, clocks)) {
      std::fprintf(stderr, "failed to write %s\n", opts.profile_path.c_str());
      std::exit(1);
    }
    std::printf("wrote %s\n", opts.profile_path.c_str());
  }
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
