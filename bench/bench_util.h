// Shared helpers for the reproduction benchmarks.
//
// The simulated experiments are deterministic cycle-accounted runs, so the
// benchmarks print the paper's tables and series directly rather than
// sampling wall-clock time. Each binary reproduces one table or figure and
// states what shape the paper reports.
//
// Every bench accepts `--json=PATH` to additionally write its table as
// structured rows ({"bench":..., "claim":..., "rows":[...]}),
// `--trace=PATH` where supported to dump a Chrome trace of an instrumented
// run, `--profile=PATH` to write an lvm.profile.v1 cycle-attribution
// profile of a representative instrumented run, and `--waterfall=PATH` to
// write an lvm.waterfall.v1 per-record provenance trace of the same run
// (bench_profile.h has the LvmSystem-side helpers). scripts/bench.sh
// drives the full set and collects BENCH_<name>.json / PROFILE_<name>.json
// / WATERFALL_<name>.json.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/base/types.h"
#include "src/obs/json.h"

namespace lvm {
namespace bench {

// The prototype's 25 MHz clock.
inline constexpr double kCyclesPerSecond = 25e6;

inline double CyclesToSeconds(Cycles cycles) {
  return static_cast<double>(cycles) / kCyclesPerSecond;
}

inline void Header(const char* experiment, const char* claim) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  paper: %s\n", claim);
  std::printf("==============================================================================\n");
}

inline void Row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vprintf(format, args);
  va_end(args);
  std::printf("\n");
}

// Command-line options common to every bench binary.
struct Options {
  std::string json_path;       // --json=PATH: write the table as JSON rows.
  std::string trace_path;      // --trace=PATH: write a Chrome trace (if supported).
  std::string profile_path;    // --profile=PATH: write an lvm.profile.v1 profile.
  std::string waterfall_path;  // --waterfall=PATH: write an lvm.waterfall.v1 trace.
};

inline Options ParseOptions(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      opts.json_path = arg.substr(7);
    } else if (arg.rfind("--trace=", 0) == 0) {
      opts.trace_path = arg.substr(8);
    } else if (arg.rfind("--profile=", 0) == 0) {
      opts.profile_path = arg.substr(10);
    } else if (arg.rfind("--waterfall=", 0) == 0) {
      opts.waterfall_path = arg.substr(12);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json=PATH] [--trace=PATH] [--profile=PATH] "
                   "[--waterfall=PATH]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opts;
}

// Accumulates the same rows the printf table shows, as key/value pairs, and
// serializes them to {"bench":..., "claim":..., "rows":[{...}, ...]}.
class JsonTable {
 public:
  JsonTable(std::string bench, std::string claim)
      : bench_(std::move(bench)), claim_(std::move(claim)) {}

  void BeginRow() { rows_.emplace_back(); }

  void Value(const std::string& key, double value) { Add(key, obs::JsonNumber(value)); }

  void Value(const std::string& key, const std::string& value) {
    std::string encoded;
    obs::AppendJsonString(&encoded, value);
    Add(key, encoded);
  }

  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  void Value(const std::string& key, T value) {
    if constexpr (std::is_signed_v<T>) {
      Add(key, obs::JsonNumber(static_cast<int64_t>(value)));
    } else {
      Add(key, obs::JsonNumber(static_cast<uint64_t>(value)));
    }
  }

  size_t row_count() const { return rows_.size(); }

  std::string Json() const {
    std::string out = "{\"bench\":";
    obs::AppendJsonString(&out, bench_);
    out.append(",\"claim\":");
    obs::AppendJsonString(&out, claim_);
    out.append(",\"rows\":[");
    for (size_t r = 0; r < rows_.size(); ++r) {
      if (r != 0) {
        out.push_back(',');
      }
      out.push_back('{');
      for (size_t f = 0; f < rows_[r].size(); ++f) {
        if (f != 0) {
          out.push_back(',');
        }
        obs::AppendJsonString(&out, rows_[r][f].first);
        out.push_back(':');
        out.append(rows_[r][f].second);
      }
      out.push_back('}');
    }
    out.append("]}");
    return out;
  }

  bool WriteFile(const std::string& path) const {
    std::string json = Json();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    bool ok = written == json.size();
    ok = (std::fclose(f) == 0) && ok;
    return ok;
  }

 private:
  void Add(const std::string& key, std::string encoded_value) {
    if (rows_.empty()) {
      rows_.emplace_back();
    }
    rows_.back().emplace_back(key, std::move(encoded_value));
  }

  std::string bench_;
  std::string claim_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

// Writes the table to opts.json_path if --json was given; exits nonzero on
// I/O failure so CI catches a broken emitter.
inline void WriteJsonIfRequested(const Options& opts, const JsonTable& table) {
  if (opts.json_path.empty()) {
    return;
  }
  if (!table.WriteFile(opts.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", opts.json_path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (%zu rows)\n", opts.json_path.c_str(), table.row_count());
}

}  // namespace bench
}  // namespace lvm

#endif  // BENCH_BENCH_UTIL_H_
