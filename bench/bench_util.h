// Shared helpers for the reproduction benchmarks.
//
// The simulated experiments are deterministic cycle-accounted runs, so the
// benchmarks print the paper's tables and series directly rather than
// sampling wall-clock time. Each binary reproduces one table or figure and
// states what shape the paper reports.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdint>
#include <cstdio>

#include "src/base/types.h"

namespace lvm {
namespace bench {

// The prototype's 25 MHz clock.
inline constexpr double kCyclesPerSecond = 25e6;

inline double CyclesToSeconds(Cycles cycles) {
  return static_cast<double>(cycles) / kCyclesPerSecond;
}

inline void Header(const char* experiment, const char* claim) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  paper: %s\n", claim);
  std::printf("==============================================================================\n");
}

inline void Row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vprintf(format, args);
  va_end(args);
  std::printf("\n");
}

}  // namespace bench
}  // namespace lvm

#endif  // BENCH_BENCH_UTIL_H_
