// Ablation A2: sensitivity to the logger FIFO threshold and the CPU write
// buffer depth.
//
// The FIFO absorbs bursts (Section 3.1.3) but its threshold only delays
// overload under a sustained rate; the write buffer determines how much of
// the write-through cost bursts can hide (Section 4.5.2: "a larger write
// buffer in the processor would largely eliminate the difference").
#include <cstdio>

#include "bench/bench_profile.h"
#include "bench/bench_util.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

struct Point {
  double cycles_per_iteration = 0;
  uint64_t overloads = 0;
};

Point Measure(const MachineParams& params, uint32_t compute, uint32_t cluster,
              const std::string& profile_path = std::string(),
              const std::string& waterfall_path = std::string()) {
  LvmConfig config;
  config.params = params;
  LvmSystem system(config);
  bench::EnableProfilerIfRequested(profile_path, &system);
  bench::EnableWaterfallIfRequested(waterfall_path, &system);
  Cpu& cpu = system.cpu();
  uint32_t span = 64 * kPageSize;
  StdSegment* segment = system.CreateSegment(span);
  Region* region = system.CreateRegion(segment);
  LogSegment* log = system.CreateLogSegment(256);
  AddressSpace* as = system.CreateAddressSpace();
  VirtAddr base = as->BindRegion(region);
  system.AttachLog(region, log);
  system.Activate(as);
  system.TouchRegion(&cpu, region);
  cpu.DrainWriteBuffer();

  constexpr uint32_t kIterations = 10000;
  Cycles start = cpu.now();
  uint32_t address = 0;
  for (uint32_t i = 0; i < kIterations; ++i) {
    cpu.Compute(compute);
    for (uint32_t w = 0; w < cluster; ++w) {
      cpu.Write(base + address, i);
      address = (address + 4) % span;
    }
  }
  cpu.DrainWriteBuffer();
  Point point;
  point.cycles_per_iteration = static_cast<double>(cpu.now() - start) / kIterations;
  point.overloads = system.overload_suspensions();
  bench::WriteProfileIfRequested(profile_path, system);
  bench::WriteWaterfallIfRequested(waterfall_path, system);
  return point;
}

void Run(const bench::Options& opts) {
  const char* claim =
      "threshold delays but cannot prevent sustained overload; deeper write "
      "buffers absorb bigger bursts";
  bench::Header("Ablation A2: FIFO Threshold and Write Buffer Depth", claim);
  bench::JsonTable table("ablation_fifo", claim);

  std::printf("--- FIFO threshold sweep (c=10, one logged write/iteration) ---\n");
  std::printf("%-12s %-18s %-12s\n", "threshold", "cycles/iter", "overloads");
  for (uint32_t threshold : {64u, 128u, 256u, 512u, 768u}) {
    MachineParams params;
    params.logger_fifo_threshold = threshold;
    params.logger_fifo_capacity = threshold + 307;
    Point point = Measure(params, 10, 1);
    bench::Row("%-12u %-18.1f %-12llu", threshold, point.cycles_per_iteration,
               static_cast<unsigned long long>(point.overloads));
    table.BeginRow();
    table.Value("sweep", "fifo_threshold");
    table.Value("threshold", threshold);
    table.Value("cycles_per_iteration", point.cycles_per_iteration);
    table.Value("overloads", point.overloads);
  }

  std::printf("\n--- Write buffer depth sweep (c=200, cluster of 8 writes) ---\n");
  std::printf("%-12s %-18s\n", "depth", "cycles/iter");
  for (uint32_t depth : {1u, 2u, 4u, 8u, 16u}) {
    MachineParams params;
    params.write_buffer_depth = depth;
    Point point = Measure(params, 200, 8);
    bench::Row("%-12u %-18.1f", depth, point.cycles_per_iteration);
    table.BeginRow();
    table.Value("sweep", "write_buffer_depth");
    table.Value("depth", depth);
    table.Value("cycles_per_iteration", point.cycles_per_iteration);
  }
  std::printf("\n");
  bench::WriteJsonIfRequested(opts, table);

  if (!opts.profile_path.empty() || !opts.waterfall_path.empty()) {
    // Profile the default-threshold point of the sustained-rate sweep.
    Measure(MachineParams{}, 10, 1, opts.profile_path, opts.waterfall_path);
  }
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
