// Ablation A7: msync of a memory-mapped file — whole-page write-back
// versus log-based incremental sync (the mapped-file structuring of
// Section 2.7 plus the output discipline of Section 2.6).
//
// Sweeps the update density over a 1 MB mapping: the conventional msync
// writes every materialized page; the LVM msync writes exactly the logged
// bytes. The crossover sits where updates approach the page size.
#include <cstdio>

#include "bench/bench_profile.h"
#include "bench/bench_util.h"
#include "src/mfile/mapped_file.h"

namespace lvm {
namespace {

struct SyncResult {
  Cycles cycles = 0;
  uint64_t device_bytes = 0;
};

SyncResult RunSync(bool log_based, uint32_t words_per_page,
                   const std::string& profile_path = std::string(),
                   const std::string& waterfall_path = std::string()) {
  LvmSystem system;
  bench::EnableProfilerIfRequested(profile_path, &system);
  bench::EnableWaterfallIfRequested(waterfall_path, &system);
  FileSystem fs;
  constexpr uint32_t kPages = 256;  // 1 MB file.
  SimFile* file = fs.Create("volume.db", kPages * kPageSize);
  AddressSpace* as = system.CreateAddressSpace();
  MappedFile mapped(&system, as, file);
  system.Activate(as);
  Cpu& cpu = system.cpu();
  if (log_based) {
    mapped.AttachLogging();
  }

  // Touch every page, then update `words_per_page` words on each.
  for (uint32_t page = 0; page < kPages; ++page) {
    for (uint32_t w = 0; w < words_per_page; ++w) {
      cpu.Write(mapped.base() + page * kPageSize + 4 * w, page * 131 + w);
      cpu.Compute(60);
    }
  }
  uint64_t device_before = file->bytes_written();
  Cycles t0 = cpu.now();
  if (log_based) {
    mapped.MsyncFromLog(&cpu);
  } else {
    mapped.Msync(&cpu);
  }
  SyncResult result{cpu.now() - t0, file->bytes_written() - device_before};
  bench::WriteProfileIfRequested(profile_path, system);
  bench::WriteWaterfallIfRequested(waterfall_path, system);
  return result;
}

void Run(const bench::Options& opts) {
  const char* claim =
      "log-based sync writes only updated bytes; whole-page sync cost is "
      "flat in the update density";
  bench::Header("Ablation A7: msync — whole pages vs the LVM log", claim);
  bench::JsonTable table("ablation_msync", claim);

  std::printf("%-18s %-22s %-22s %-16s %-16s\n", "words/page", "page msync (kcyc)",
              "log msync (kcyc)", "page bytes", "log bytes");
  for (uint32_t words : {1u, 8u, 64u, 256u, 1024u}) {
    SyncResult pages = RunSync(false, words);
    SyncResult logged = RunSync(true, words);
    bench::Row("%-18u %-22.1f %-22.1f %-16llu %-16llu", words, pages.cycles / 1000.0,
               logged.cycles / 1000.0, static_cast<unsigned long long>(pages.device_bytes),
               static_cast<unsigned long long>(logged.device_bytes));
    table.BeginRow();
    table.Value("words_per_page", words);
    table.Value("page_msync_cycles", pages.cycles);
    table.Value("log_msync_cycles", logged.cycles);
    table.Value("page_device_bytes", pages.device_bytes);
    table.Value("log_device_bytes", logged.device_bytes);
  }
  std::printf("\n");
  bench::WriteJsonIfRequested(opts, table);

  if (!opts.profile_path.empty() || !opts.waterfall_path.empty()) {
    // Profile the log-based sync at a sparse density, its winning case.
    RunSync(/*log_based=*/true, 8, opts.profile_path, opts.waterfall_path);
  }
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
