// Ablation A5: real-host measurements (google-benchmark, wall clock).
//
// The software mechanisms LVM competes against, measured on the machine
// this runs on: plain stores, instrumented (write-barrier) stores, the cost
// of a write-protection fault, dirty-page collection, Munin-style word
// diffing, and Li/Appel checkpoint/restore. These are the real-hardware
// companions to the simulated Section 5.1/5.3 comparisons: page-protection
// faults cost microseconds (thousands of cycles), which is exactly why the
// paper argues for hardware logging support.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/types.h"
#include "src/hostlvm/host_checkpoint.h"
#include "src/obs/profiler.h"
#include "src/obs/waterfall.h"
#include "src/hostlvm/host_transaction.h"
#include "src/hostlvm/logged_value.h"
#include "src/hostlvm/protected_region.h"
#include "src/hostlvm/write_protect_logger.h"

namespace lvm {
namespace {

constexpr size_t kPages = 256;

void BM_PlainWrite(benchmark::State& state) {
  std::vector<uint32_t> data(kPages * 1024);
  size_t i = 0;
  for (auto _ : state) {
    data[i % data.size()] = static_cast<uint32_t>(i);
    benchmark::ClobberMemory();
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlainWrite);

void BM_WriteBarrierLogged(benchmark::State& state) {
  HostLog log;
  Logged<uint32_t> value(&log, 0);
  uint32_t i = 0;
  for (auto _ : state) {
    value = i++;
    benchmark::ClobberMemory();
    if (log.size() > 1u << 20) {
      log.Truncate();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteBarrierLogged);

void BM_ProtectionFaultPerPage(benchmark::State& state) {
  // One write-protection fault per iteration: write to a fresh page, then
  // re-arm. Dominated by the SIGSEGV round trip + mprotect.
  ProtectedRegion region(kPages, /*keep_twins=*/false);
  size_t page = 0;
  for (auto _ : state) {
    state.PauseTiming();
    region.Arm();
    state.ResumeTiming();
    region.data()[page * ProtectedRegion::kHostPageSize] = 1;
    page = (page + 1) % kPages;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProtectionFaultPerPage);

void BM_ProtectionFaultWithTwin(benchmark::State& state) {
  // Fault plus the 4 KB twin copy (Munin / Li-Appel first-write cost).
  ProtectedRegion region(kPages, /*keep_twins=*/true);
  size_t page = 0;
  for (auto _ : state) {
    state.PauseTiming();
    region.Arm();
    state.ResumeTiming();
    region.data()[page * ProtectedRegion::kHostPageSize] = 1;
    page = (page + 1) % kPages;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProtectionFaultWithTwin);

void BM_CollectDirtyPages(benchmark::State& state) {
  // A release interval: dirty 16 pages, collect, re-arm.
  WriteProtectLogger logger(kPages, /*word_level=*/false);
  for (auto _ : state) {
    for (size_t page = 0; page < 16; ++page) {
      logger.data()[page * ProtectedRegion::kHostPageSize + 8] = 1;
    }
    auto pages = logger.CollectDirtyPages();
    benchmark::DoNotOptimize(pages);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_CollectDirtyPages);

void BM_MuninWordDiffInterval(benchmark::State& state) {
  // Munin-style interval: sparse writes to 16 pages, then word-level diff.
  WriteProtectLogger logger(kPages, /*word_level=*/true);
  uint32_t i = 0;
  for (auto _ : state) {
    auto* words = reinterpret_cast<uint32_t*>(logger.data());
    for (size_t page = 0; page < 16; ++page) {
      words[page * 1024 + 3] = ++i;
    }
    auto updates = logger.CollectWordUpdates();
    benchmark::DoNotOptimize(updates);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_MuninWordDiffInterval);

void BM_CheckpointRestore(benchmark::State& state) {
  // Li/Appel interval: dirty `pages` pages, then roll back.
  const auto pages = static_cast<size_t>(state.range(0));
  HostCheckpoint ckpt(kPages);
  for (auto _ : state) {
    for (size_t page = 0; page < pages; ++page) {
      ckpt.data()[page * ProtectedRegion::kHostPageSize + 16] = 1;
    }
    ckpt.Restore();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pages) *
                          static_cast<int64_t>(ProtectedRegion::kHostPageSize));
}
BENCHMARK(BM_CheckpointRestore)->Arg(1)->Arg(16)->Arg(128);

void BM_HostTransactionCommit(benchmark::State& state) {
  // One transaction touching `pages` pages, committed (twin + diff cost).
  const auto pages = static_cast<size_t>(state.range(0));
  HostTransactionalRegion region(kPages);
  uint32_t i = 0;
  for (auto _ : state) {
    region.Begin();
    for (size_t page = 0; page < pages; ++page) {
      region.data<uint32_t>()[page * 1024 + 5] = ++i;
    }
    auto redo = region.Commit();
    benchmark::DoNotOptimize(redo);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostTransactionCommit)->Arg(1)->Arg(8)->Arg(64);

void BM_HostTransactionAbort(benchmark::State& state) {
  const auto pages = static_cast<size_t>(state.range(0));
  HostTransactionalRegion region(kPages);
  uint32_t i = 0;
  for (auto _ : state) {
    region.Begin();
    for (size_t page = 0; page < pages; ++page) {
      region.data<uint32_t>()[page * 1024 + 5] = ++i;
    }
    region.Abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostTransactionAbort)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
}  // namespace lvm

// google-benchmark has native machine-readable output; translate the
// repo-wide --json=PATH convention into its flags so scripts/bench.sh can
// drive every bench binary uniformly.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  storage.reserve(static_cast<size_t>(argc) + 1);
  storage.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      storage.emplace_back(std::string("--benchmark_out=").append(arg.substr(7)));
      storage.emplace_back("--benchmark_out_format=json");
    } else if (arg.rfind("--profile=", 0) == 0) {
      // The host benches measure wall clock, not simulated cycles — there
      // is nothing to attribute. Still honour the repo-wide --profile=
      // contract with an empty-but-valid lvm.profile.v1 artifact.
      std::string path(arg.substr(10));
      lvm::obs::ProfilerConfig config;
      config.wall_sampling = false;
      lvm::obs::Profiler profiler(1, config);
      std::vector<lvm::Cycles> clocks(static_cast<size_t>(profiler.num_lanes()), 0);
      if (!profiler.WriteJsonFile(path, clocks)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", path.c_str());
    } else if (arg.rfind("--waterfall=", 0) == 0) {
      // Same story for --waterfall=: google-benchmark owns the measured
      // loops here, so there is no log path to thread tokens through.
      // Honour the contract with an empty-but-valid lvm.waterfall.v1
      // artifact.
      std::string path(arg.substr(12));
      lvm::obs::WaterfallTracer waterfall(/*lanes=*/1);
      if (!waterfall.WriteJsonFile(path)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", path.c_str());
    } else {
      storage.emplace_back(arg);
    }
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) {
    args.push_back(s.data());
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
