// Figure 8: effect of the number of writes on LVM performance.
//
// Speedup of LVM over copy-based checkpointing as a function of the
// fraction of the object written per event, for the paper's four curves
// (s=32,c=256) (s=64,c=512) (s=128,c=1024) (s=256,c=2048). The paper
// reports a slow decrease as the fraction grows, with the difference only
// becoming significant as the fraction approaches one (write-through
// overhead), up to the onset of logger overload.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sim_workload.h"

namespace lvm {
namespace {

void Run(const bench::Options& opts) {
  const char* claim =
      "speedup decreases slowly with fraction written; significant only as "
      "the fraction approaches 1";
  bench::Header("Figure 8: Effect of Number of Writes on LVM Performance", claim);
  bench::JsonTable table("fig8_writes", claim);

  struct Curve {
    uint32_t object_size;
    uint32_t compute_cycles;
  };
  const Curve curves[] = {{32, 256}, {64, 512}, {128, 1024}, {256, 2048}};
  const double fractions[] = {0.125, 0.25, 0.5, 0.75, 1.0};

  std::printf("%-10s", "fraction");
  for (const Curve& curve : curves) {
    std::printf("  s=%u,c=%-6u", curve.object_size, curve.compute_cycles);
  }
  std::printf("\n");

  for (double fraction : fractions) {
    std::printf("%-10.3f", fraction);
    for (const Curve& curve : curves) {
      auto writes = static_cast<uint32_t>(fraction * curve.object_size / 4.0);
      if (writes == 0) {
        writes = 1;
      }
      bench::ForwardParams params;
      params.compute_cycles = curve.compute_cycles;
      params.object_size = curve.object_size;
      params.writes = writes;
      params.events = 8000;
      uint64_t overloads = 0;
      double speedup = bench::ForwardSpeedup(params, &overloads);
      std::printf("  %9.3f%s ", speedup, overloads > 0 ? "*" : " ");
      table.BeginRow();
      table.Value("fraction", fraction);
      table.Value("object_size", curve.object_size);
      table.Value("c", curve.compute_cycles);
      table.Value("writes", writes);
      table.Value("speedup", speedup);
      table.Value("overloads", overloads);
    }
    std::printf("\n");
  }
  std::printf("(* = logger overload occurred)\n\n");
  bench::WriteJsonIfRequested(opts, table);

  if (!opts.profile_path.empty() || !opts.waterfall_path.empty()) {
    // Profile the fraction=1 point of the s=64 curve, where the
    // write-through overhead is at its most visible.
    bench::ForwardParams params;
    params.object_size = 64;
    params.compute_cycles = 512;
    params.writes = 16;
    params.events = 8000;
    bench::RunForward(StateSaving::kLvm, params, opts.profile_path, opts.waterfall_path);
  }
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
