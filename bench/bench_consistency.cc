// Ablation A3: log-based consistency versus Munin twin/diff (Section 2.6).
//
// Producer cycles and bytes transmitted per release interval, across write
// patterns: sparse scattered updates (LVM's sweet spot: no twin copies, no
// full-page diff scans, only updated words travel), dense single-page
// updates, and a hot spot rewritten many times (the paper's caveat: LVM
// transmits every write, Munin coalesces).
#include <cstdio>
#include <functional>

#include "bench/bench_profile.h"
#include "bench/bench_util.h"
#include "src/consistency/protocols.h"

namespace lvm {
namespace {

constexpr uint32_t kRegionBytes = 32 * kPageSize;

using IntervalGenerator =
    std::function<void(uint32_t interval, const std::function<void(uint32_t, uint32_t)>&)>;

template <typename Protocol>
void Measure(const char* pattern_name, const IntervalGenerator& gen,
             const char* protocol_name, bench::JsonTable* table,
             const std::string& profile_path = std::string(),
             const std::string& waterfall_path = std::string()) {
  LvmSystem system;
  bench::EnableProfilerIfRequested(profile_path, &system);
  bench::EnableWaterfallIfRequested(waterfall_path, &system);
  Protocol protocol(&system, kRegionBytes, ConsistencyCosts{});
  Cpu& cpu = system.cpu();
  // Warm one interval (page faults, twin state) then measure five.
  gen(0, [&](uint32_t offset, uint32_t value) { protocol.Write(&cpu, offset, value); });
  protocol.Release(&cpu);
  uint64_t bytes_before = protocol.channel().bytes_sent();
  Cycles t0 = cpu.now();
  constexpr uint32_t kIntervals = 5;
  for (uint32_t i = 1; i <= kIntervals; ++i) {
    gen(i, [&](uint32_t offset, uint32_t value) { protocol.Write(&cpu, offset, value); });
    protocol.Release(&cpu);
  }
  Cycles per_interval = (cpu.now() - t0) / kIntervals;
  uint64_t bytes_per_interval =
      (protocol.channel().bytes_sent() - bytes_before) / kIntervals;
  bench::Row("%-12s %-12s %-18llu %-16llu", pattern_name, protocol_name,
             static_cast<unsigned long long>(per_interval),
             static_cast<unsigned long long>(bytes_per_interval));
  table->BeginRow();
  table->Value("pattern", pattern_name);
  table->Value("protocol", protocol_name);
  table->Value("cycles_per_interval", per_interval);
  table->Value("bytes_per_interval", bytes_per_interval);
  bench::WriteProfileIfRequested(profile_path, system);
  bench::WriteWaterfallIfRequested(waterfall_path, system);
}

void Run(const bench::Options& opts) {
  const char* claim =
      "LVM: cheap update identification, only updated data travels; Munin "
      "coalesces hot-spot rewrites but pays twins + diff scans";
  bench::Header("Ablation A3: Log-based Consistency vs Munin Twin/Diff", claim);
  bench::JsonTable table("consistency", claim);

  std::printf("%-12s %-12s %-18s %-16s\n", "pattern", "protocol", "cycles/interval",
              "bytes/interval");

  IntervalGenerator sparse = [](uint32_t interval,
                                const std::function<void(uint32_t, uint32_t)>& write) {
    // One word on each of 16 pages, fresh values each interval.
    for (uint32_t page = 0; page < 16; ++page) {
      write(page * kPageSize + 128, interval * 1000 + page + 1);
    }
  };
  IntervalGenerator dense = [](uint32_t interval,
                               const std::function<void(uint32_t, uint32_t)>& write) {
    // Half of one page, word by word.
    for (uint32_t i = 0; i < kPageSize / 8; i += 4) {
      write(i, interval * 100000 + i * 3 + 1);
    }
  };
  IntervalGenerator hotspot = [](uint32_t interval,
                                 const std::function<void(uint32_t, uint32_t)>& write) {
    // The same word rewritten 256 times.
    for (uint32_t i = 0; i < 256; ++i) {
      write(64, interval * 1000 + i + 1);
    }
  };

  Measure<LogBasedProtocol>("sparse", sparse, "lvm", &table);
  Measure<MuninTwinProtocol>("sparse", sparse, "munin", &table);
  Measure<LogBasedProtocol>("dense", dense, "lvm", &table);
  Measure<MuninTwinProtocol>("dense", dense, "munin", &table);
  // The profiled run is the log-based hot spot: the caveat case, where
  // every rewrite becomes a log record.
  Measure<LogBasedProtocol>("hotspot", hotspot, "lvm", &table, opts.profile_path,
                            opts.waterfall_path);
  Measure<MuninTwinProtocol>("hotspot", hotspot, "munin", &table);
  std::printf("\n");
  bench::WriteJsonIfRequested(opts, table);
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
