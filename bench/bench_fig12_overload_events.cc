// Figure 12: overload events.
//
// For the l=1 series of Section 4.5.3, how often the logger's FIFO
// threshold is exceeded (overload events per 1000 iterations) as a function
// of compute cycles per iteration. The paper reports events fading to zero
// once there is no more than one logged write per ~27 compute cycles.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/overload_series.h"

namespace lvm {
namespace {

void Run(const bench::Options& opts) {
  const char* claim = "overload events per 1000 iterations drop to zero around c ~= 27-30";
  bench::Header("Figure 12: Overload Events (l=1)", claim);
  bench::JsonTable table("fig12_overload_events", claim);

  std::printf("%-8s %-24s\n", "c", "overloads / 1000 iter");
  for (uint32_t c = 0; c <= 63; c += 3) {
    bench::OverloadSeries series = bench::RunOverloadSeries(/*logged=*/true, c);
    bench::Row("%-8u %-24.2f", c, series.overloads_per_1000);
    table.BeginRow();
    table.Value("c", c);
    table.Value("overloads_per_1000_iterations", series.overloads_per_1000);
  }
  std::printf("\n");
  bench::WriteJsonIfRequested(opts, table);

  if (!opts.profile_path.empty() || !opts.waterfall_path.empty()) {
    // Profile the overload-dominated end of the series (c=0).
    bench::RunOverloadSeries(/*logged=*/true, 0, 20000, std::string(), opts.profile_path,
                             opts.waterfall_path);
  }
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
