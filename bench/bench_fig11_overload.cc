// Figure 11: total cost of a logged write under overload.
//
// The Section 4.5.3 series: iterations of c compute cycles plus one logged
// write (l=1), sweeping c over [0..63]. Plots average cycles per iteration
// with and without logging. The paper reports overload so expensive that
// the time per iteration *decreases* as computation per loop increases,
// until overload vanishes and the c term dominates.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/overload_series.h"

namespace lvm {
namespace {

void Run(const bench::Options& opts) {
  const char* claim =
      "with logging, time/iteration decreases as c grows while overloads "
      "fade out; each overload costs >30k cycles";
  bench::Header("Figure 11: Total Cost of Logged Write (l=1, c=[0..63])", claim);
  bench::JsonTable table("fig11_overload", claim);

  std::printf("%-8s %-22s %-22s\n", "c", "logged cyc/iter", "unlogged cyc/iter");
  for (uint32_t c = 0; c <= 63; c += 3) {
    bench::OverloadSeries logged = bench::RunOverloadSeries(true, c);
    bench::OverloadSeries unlogged = bench::RunOverloadSeries(false, c);
    bench::Row("%-8u %-22.1f %-22.1f", c, logged.cycles_per_iteration,
               unlogged.cycles_per_iteration);
    table.BeginRow();
    table.Value("c", c);
    table.Value("logged_cycles_per_iteration", logged.cycles_per_iteration);
    table.Value("unlogged_cycles_per_iteration", unlogged.cycles_per_iteration);
    table.Value("overloads_per_1000_iterations", logged.overloads_per_1000);
  }
  std::printf("\n");
  bench::WriteJsonIfRequested(opts, table);

  if (!opts.trace_path.empty()) {
    // A dedicated traced run at c=0, where overload is constant: the trace
    // shows the overload interrupt -> drain -> kernel-suspend pattern.
    bench::RunOverloadSeries(true, 0, 4000, opts.trace_path);
    std::printf("wrote %s\n", opts.trace_path.c_str());
  }
  if (!opts.profile_path.empty() || !opts.waterfall_path.empty()) {
    // A dedicated profiled run at c=0: the profile attributes the overload
    // threshold on sight — overload/park dominates the CPU lane and
    // log/drain dwarfs log/emit on the logger lane.
    bench::RunOverloadSeries(true, 0, 20000, std::string(), opts.profile_path,
                             opts.waterfall_path);
  }
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
