// Figure 11: total cost of a logged write under overload.
//
// The Section 4.5.3 series: iterations of c compute cycles plus one logged
// write (l=1), sweeping c over [0..63]. Plots average cycles per iteration
// with and without logging. The paper reports overload so expensive that
// the time per iteration *decreases* as computation per loop increases,
// until overload vanishes and the c term dominates.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/overload_series.h"

namespace lvm {
namespace {

void Run() {
  bench::Header("Figure 11: Total Cost of Logged Write (l=1, c=[0..63])",
                "with logging, time/iteration decreases as c grows while overloads "
                "fade out; each overload costs >30k cycles");

  std::printf("%-8s %-22s %-22s\n", "c", "logged cyc/iter", "unlogged cyc/iter");
  for (uint32_t c = 0; c <= 63; c += 3) {
    bench::OverloadSeries logged = bench::RunOverloadSeries(true, c);
    bench::OverloadSeries unlogged = bench::RunOverloadSeries(false, c);
    bench::Row("%-8u %-22.1f %-22.1f", c, logged.cycles_per_iteration,
               unlogged.cycles_per_iteration);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace lvm

int main() {
  lvm::Run();
  return 0;
}
