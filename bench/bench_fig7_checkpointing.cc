// Figure 7: LVM versus copy-based checkpointing.
//
// Speedup (elapsed-time ratio) of LVM state saving over the conventional
// copy-before-each-event approach, as a function of compute cycles per
// event c, for the paper's four curves (w=1,s=32) (w=2,s=64) (w=4,s=128)
// (w=8,s=256). The paper reports speedups from ~3% at large c up to ~25%
// at small c, larger objects benefiting most, and a drop-off for large w
// below c ~= 200 where the prototype logger overloads.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sim_workload.h"

namespace lvm {
namespace {

void Run(const bench::Options& opts) {
  const char* claim =
      "speedup 1.03 (large c) to ~1.25 (small c); larger s helps more; "
      "w=8 drops off below c~200 (logger overload)";
  bench::Header("Figure 7: LVM versus Copy-based Checkpointing", claim);
  bench::JsonTable table("fig7_checkpointing", claim);

  struct Curve {
    uint32_t writes;
    uint32_t object_size;
  };
  const Curve curves[] = {{1, 32}, {2, 64}, {4, 128}, {8, 256}};
  const uint32_t compute_points[] = {64, 128, 256, 512, 1024, 2048, 4096, 8192};

  std::printf("%-10s", "c");
  for (const Curve& curve : curves) {
    std::printf("  w=%u,s=%-6u", curve.writes, curve.object_size);
  }
  std::printf("\n");

  for (uint32_t c : compute_points) {
    std::printf("%-10u", c);
    for (const Curve& curve : curves) {
      bench::ForwardParams params;
      params.compute_cycles = c;
      params.writes = curve.writes;
      params.object_size = curve.object_size;
      params.events = 8000;
      uint64_t overloads = 0;
      double speedup = bench::ForwardSpeedup(params, &overloads);
      std::printf("  %8.3f%s ", speedup, overloads > 0 ? "*" : " ");
      table.BeginRow();
      table.Value("c", c);
      table.Value("writes", curve.writes);
      table.Value("object_size", curve.object_size);
      table.Value("speedup", speedup);
      table.Value("overloads", overloads);
    }
    std::printf("\n");
  }
  std::printf("(* = logger overload occurred: the prototype artifact the paper notes)\n\n");
  bench::WriteJsonIfRequested(opts, table);

  if (!opts.profile_path.empty() || !opts.waterfall_path.empty()) {
    // Profile the paper's middle curve (w=2, s=64) at c=512: checkpoint
    // maintenance and the logging path show up as ckpt/* and log/* centers.
    bench::ForwardParams params;
    params.events = 8000;
    bench::RunForward(StateSaving::kLvm, params, opts.profile_path, opts.waterfall_path);
  }
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
