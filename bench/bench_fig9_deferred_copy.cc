// Figure 9: execution time of resetDeferredCopy() versus bcopy().
//
// For 32 KB, 512 KB and 2 MB segment pairs, time resetDeferredCopy() as a
// function of how much of the destination is dirty, against the flat cost
// of copying the whole segment. The paper reports resetDeferredCopy()
// beating the raw copy whenever less than about two-thirds of the segment
// is dirty.
#include <cstdio>

#include "bench/bench_profile.h"
#include "bench/bench_util.h"
#include "src/lvm/lvm_system.h"

namespace lvm {
namespace {

struct Sample {
  uint32_t dirty_kb;
  Cycles reset_cycles;
  Cycles bcopy_cycles;
};

// `profile_path`: profiles the half-dirty point of this segment size (the
// most even reset/bcopy split) and writes the lvm.profile.v1 export —
// vm/deferred_copy versus ckpt/copy is the figure's comparison, as cost
// centers.
void RunSegment(uint32_t segment_bytes, bench::JsonTable* table,
                const std::string& profile_path = std::string(),
                const std::string& waterfall_path = std::string()) {
  std::printf("--- %u KB segment ---\n", segment_bytes / 1024);
  std::printf("%-12s %-16s %-16s\n", "dirty KB", "reset (kcyc)", "bcopy (kcyc)");

  const double fractions[] = {0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.6667, 0.75, 0.875, 1.0};
  double crossover = -1.0;
  double prev_fraction = 0.0;
  double prev_reset = 0.0;
  double prev_bcopy = 0.0;

  for (double fraction : fractions) {
    LvmConfig config;
    config.memory_size = 96u << 20;
    LvmSystem system(config);
    const bool profiled = (!profile_path.empty() || !waterfall_path.empty()) &&
                          fraction == 0.5;
    if (profiled) {
      bench::EnableProfilerIfRequested(profile_path, &system);
      bench::EnableWaterfallIfRequested(waterfall_path, &system);
    }
    Cpu& cpu = system.cpu();
    StdSegment* checkpoint = system.CreateSegment(segment_bytes);
    StdSegment* working = system.CreateSegment(segment_bytes);
    working->SetSourceSegment(checkpoint);
    Region* region = system.CreateRegion(working);
    AddressSpace* as = system.CreateAddressSpace();
    VirtAddr base = as->BindRegion(region);
    system.Activate(as);
    system.TouchRegion(&cpu, region);

    // Dirty whole pages up to the requested fraction, as the paper varies
    // the fraction of dirty pages.
    uint32_t dirty_pages = static_cast<uint32_t>(fraction * (segment_bytes / kPageSize));
    for (uint32_t p = 0; p < dirty_pages; ++p) {
      for (uint32_t offset = 0; offset < kPageSize; offset += 4) {
        cpu.Write(base + p * kPageSize + offset, p ^ offset);
      }
    }
    cpu.DrainWriteBuffer();

    Cycles t0 = cpu.now();
    system.ResetDeferredCopy(&cpu, as, base, base + segment_bytes);
    Cycles reset_cycles = cpu.now() - t0;

    t0 = cpu.now();
    system.CopySegment(&cpu, working, checkpoint);
    Cycles bcopy_cycles = cpu.now() - t0;
    if (profiled) {
      bench::WriteProfileIfRequested(profile_path, system);
      bench::WriteWaterfallIfRequested(waterfall_path, system);
    }

    if (crossover < 0 && reset_cycles > bcopy_cycles && fraction > 0) {
      // Linear interpolation between the bracketing samples.
      double margin_before = prev_bcopy - prev_reset;
      double margin_after = static_cast<double>(reset_cycles) -
                            static_cast<double>(bcopy_cycles);
      crossover = prev_fraction +
                  (fraction - prev_fraction) * margin_before / (margin_before + margin_after);
    }
    prev_fraction = fraction;
    prev_reset = static_cast<double>(reset_cycles);
    prev_bcopy = static_cast<double>(bcopy_cycles);
    bench::Row("%-12u %-16.1f %-16.1f", dirty_pages * (kPageSize / 1024),
               reset_cycles / 1000.0, bcopy_cycles / 1000.0);
    table->BeginRow();
    table->Value("segment_kb", segment_bytes / 1024);
    table->Value("dirty_kb", dirty_pages * (kPageSize / 1024));
    table->Value("reset_cycles", reset_cycles);
    table->Value("bcopy_cycles", bcopy_cycles);
  }
  if (crossover >= 0) {
    std::printf("crossover: reset slower than bcopy above ~%.0f%% dirty (paper: ~67%%)\n\n",
                crossover * 100);
  } else {
    std::printf("crossover: reset never slower in the sampled range\n\n");
  }
}

void Run(const bench::Options& opts) {
  const char* claim = "reset wins below ~2/3 dirty; bcopy flat; 32KB/512KB/2MB segments";
  bench::Header("Figure 9: Execution time of resetDeferredCopy() vs bcopy()", claim);
  bench::JsonTable table("fig9_deferred_copy", claim);
  RunSegment(32u << 10, &table);
  RunSegment(512u << 10, &table, opts.profile_path, opts.waterfall_path);
  RunSegment(2u << 20, &table);
  bench::WriteJsonIfRequested(opts, table);
}

}  // namespace
}  // namespace lvm

int main(int argc, char** argv) {
  lvm::Run(lvm::bench::ParseOptions(argc, argv));
  return 0;
}
