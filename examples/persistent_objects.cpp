// Persistent C++-style objects on the object store (Sections 1, 2.5): an
// order-processing database whose allocator, root directory, index
// structure and object contents are all recoverable — abort rolls back
// pointer surgery and allocations together, with no undo code anywhere.
#include <cstdio>

#include "src/oodb/object_store.h"
#include "src/oodb/persistent_map.h"
#include "src/rvm/ram_disk.h"
#include "src/rvm/rlvm.h"

namespace {

// Order object layout: [0] customer, [1] amount, [2] status.
constexpr uint32_t kTypeOrder = 0x071de7;
constexpr uint32_t kStatusOpen = 1;
constexpr uint32_t kStatusShipped = 2;

}  // namespace

int main() {
  lvm::LvmSystem system;
  lvm::RamDisk disk;
  lvm::AddressSpace* as = system.CreateAddressSpace();
  lvm::Rlvm backing(&system, as, &disk, 512 * 1024);
  system.Activate(as);
  lvm::Cpu& cpu = system.cpu();

  lvm::ObjectStore db(&backing, &cpu);
  lvm::PersistentMap orders(&db, "orders-by-id", 16);

  // Transaction 1: create three orders, indexed by id.
  db.Begin();
  for (uint32_t id = 1; id <= 3; ++id) {
    lvm::ObjRef order = db.Allocate(12, kTypeOrder);
    db.WriteField(order, 0, 1000 + id);  // Customer.
    db.WriteField(order, 1, 250 * id);   // Amount.
    db.WriteField(order, 2, kStatusOpen);
    orders.Put(id, order);
  }
  db.Commit();
  std::printf("committed %u orders, heap break at %u bytes\n", orders.size(),
              db.heap_break());

  // Transaction 2: ship order 2 and cancel (delete) order 3 -- then abort.
  db.Begin();
  uint32_t ref_value = 0;
  orders.Get(2, &ref_value);
  db.WriteField(ref_value, 2, kStatusShipped);
  orders.Get(3, &ref_value);
  orders.Remove(3);
  db.Free(ref_value);
  std::printf("in flight: order 3 deleted, %u orders, %u free blocks ... aborting\n",
              orders.size(), db.live_free_blocks());
  db.Abort();
  std::printf("aborted: %u orders, %u free blocks (allocator state rolled back too)\n",
              orders.size(), db.live_free_blocks());

  // Transaction 3: do it for real.
  db.Begin();
  orders.Get(2, &ref_value);
  db.WriteField(ref_value, 2, kStatusShipped);
  orders.Get(3, &ref_value);
  orders.Remove(3);
  db.Free(ref_value);
  db.Commit();

  std::printf("\nfinal database:\n");
  for (uint32_t id = 1; id <= 3; ++id) {
    if (!orders.Get(id, &ref_value)) {
      std::printf("  order %u: (cancelled)\n", id);
      continue;
    }
    std::printf("  order %u: customer=%u amount=%u status=%s\n", id,
                db.ReadField(ref_value, 0), db.ReadField(ref_value, 1),
                db.ReadField(ref_value, 2) == kStatusShipped ? "shipped" : "open");
  }
  std::printf("\n%llu redo bytes forced to the RAM disk across %llu commits\n",
              static_cast<unsigned long long>(disk.total_bytes_logged()),
              static_cast<unsigned long long>(disk.forces()));
  return 0;
}
